(* Tests for the typed whole-program pass (lib/ccdeps): the taint,
   domain-escape and layering analyses each pinned by a violating and a
   clean fixture, manifest parsing/validation, trust boundaries, the
   registry wiring of the int/ and arch/ rule families, and allowlist
   prune semantics.

   Fixtures are typechecked in-process (Typecheck.summarize), so a local
   [module Par = struct module Pool = ... end] stub yields the exact
   "Par.Pool.map_list_exn" path spellings the real library produces. *)

let manifest_exn src =
  match Ccdeps.Manifest.parse_string ~file:".ccdeps-test" src with
  | Ok m -> m
  | Error msg -> Alcotest.failf "manifest fixture did not parse: %s" msg

let summarize ~lib ~modname src =
  Ccdeps.Typecheck.summarize ~lib ~modname
    ~file:(Printf.sprintf "lib/%s/fix.ml" lib)
    src

(* The exact (sorted, deduplicated) rule-id set a fixture fires. *)
let check_ids what expected diags =
  Alcotest.(check (list string)) what expected
    (Srclint.Diagnostic.rule_ids diags)

let run_typed ~manifest mods =
  let libs =
    List.sort_uniq String.compare
      (List.map (fun (m : Ccdeps.Summary.moddef) -> m.Ccdeps.Summary.m_lib)
         mods)
  in
  let heads = Hashtbl.create 8 in
  List.iter
    (fun (m : Ccdeps.Summary.moddef) ->
       Hashtbl.replace heads
         (Ccdeps.Names.head m.Ccdeps.Summary.m_name)
         m.Ccdeps.Summary.m_lib)
    mods;
  Ccdeps.Analysis.run ~manifest ~libs ~lib_of_module:(Hashtbl.find_opt heads)
    mods

(* --- effect/determinism taint --- *)

(* Two hops above the source: kernel -> mid -> Impl.stamp -> Sys.time. *)
let tainted_kernel =
  "module Impl = struct\n\
  \  let stamp () = Sys.time ()\n\
   end\n\
   let mid () = Impl.stamp () +. 1.0\n\
   let kernel () = mid () *. 2.0\n"

let clean_kernel =
  "module Impl = struct\n\
  \  let stamp () = 41.0\n\
   end\n\
   let mid () = Impl.stamp () +. 1.0\n\
   let kernel () = mid () *. 2.0\n"

let test_taint_chain () =
  let manifest = manifest_exn "layer fixkern 0\npure fixkern : fixture" in
  let mods = [ summarize ~lib:"fixkern" ~modname:"Fixkern" tainted_kernel ] in
  let diags = run_typed ~manifest mods in
  check_ids "transitively tainted kernel" [ "int/taint-wall-clock" ] diags;
  Alcotest.(check int) "all three defs on the chain flagged" 3
    (List.length diags);
  let kernel_diag =
    List.find
      (fun (d : Srclint.Diagnostic.t) -> d.Srclint.Diagnostic.line = 5)
      diags
  in
  Alcotest.(check bool) "detail names the full call chain" true
    (let open Srclint.Diagnostic in
     let contains ~sub s =
       let n = String.length sub in
       let rec go i =
         i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
       in
       go 0
     in
     contains
       ~sub:"Fixkern.kernel -> Fixkern.mid -> Fixkern.Impl.stamp -> Sys.time"
       kernel_diag.detail)

let test_taint_clean () =
  let manifest = manifest_exn "layer fixkern 0\npure fixkern : fixture" in
  let mods = [ summarize ~lib:"fixkern" ~modname:"Fixkern" clean_kernel ] in
  check_ids "same shape without the source is clean" []
    (run_typed ~manifest mods)

let test_taint_impure_lib_exempt () =
  (* The identical tainted chain in a lib with no purity contract is not
     a finding — the contract is what the manifest says it is. *)
  let manifest = manifest_exn "layer fixkern 0" in
  let mods = [ summarize ~lib:"fixkern" ~modname:"Fixkern" tainted_kernel ] in
  check_ids "no pure contract, no finding" [] (run_typed ~manifest mods)

let test_taint_trust_boundary () =
  (* Trusting the module holding the source stops propagation: callers
     are clean, and the trusted def itself is exempt. *)
  let manifest =
    manifest_exn
      "layer fixkern 0\npure fixkern : fixture\ntrust Fixkern.Impl : audited"
  in
  let mods = [ summarize ~lib:"fixkern" ~modname:"Fixkern" tainted_kernel ] in
  check_ids "trusted boundary stops the taint" [] (run_typed ~manifest mods)

let test_taint_kinds () =
  let manifest = manifest_exn "layer fixkern 0\npure fixkern : fixture" in
  let check src expected =
    let mods = [ summarize ~lib:"fixkern" ~modname:"Fixkern" src ] in
    check_ids src expected (run_typed ~manifest mods)
  in
  check "let k () = Random.int 6" [ "int/taint-random" ];
  check "let k () = Sys.getenv_opt \"HOME\"" [ "int/taint-getenv" ];
  check "let k () = Gc.compact ()" [ "int/taint-gc" ];
  check "let k () = print_string \"hi\"" [ "int/taint-print" ];
  (* explicit Random.State is the sanctioned idiom *)
  check "let k st = Random.State.int st 6" []

(* --- domain-escape race detection --- *)

let par_stub =
  "module Par = struct\n\
  \  module Pool = struct\n\
  \    let map_list_exn ?jobs f xs = ignore jobs; List.map f xs\n\
  \  end\n\
   end\n"

let escaping_closure =
  par_stub
  ^ "let total = ref 0\n\
     let sum xs = Par.Pool.map_list_exn (fun x -> total := !total + x) xs\n"

let clean_closure =
  par_stub ^ "let sum xs = Par.Pool.map_list_exn (fun x -> x * 2) xs\n"

let escape_manifest =
  "layer fixesc 0\npure fixesc : fixture\ntrust Par : fixture stub"

let test_escape_capture () =
  let manifest = manifest_exn escape_manifest in
  let mods = [ summarize ~lib:"fixesc" ~modname:"Fixesc" escaping_closure ] in
  check_ids "mutable capture escapes into the pool closure"
    [ "int/domain-escape" ]
    (run_typed ~manifest mods)

let test_escape_clean () =
  let manifest = manifest_exn escape_manifest in
  let mods = [ summarize ~lib:"fixesc" ~modname:"Fixesc" clean_closure ] in
  check_ids "pure task closure is clean" [] (run_typed ~manifest mods)

let test_escape_via_callee () =
  (* The write hides one call away: the task calls a module sibling that
     mutates module-level state. *)
  let src =
    par_stub
    ^ "let tally = Hashtbl.create 16\n\
       let bump k = Hashtbl.replace tally k ()\n\
       let scan xs = Par.Pool.map_list_exn (fun x -> bump x) xs\n"
  in
  let manifest = manifest_exn escape_manifest in
  let mods = [ summarize ~lib:"fixesc" ~modname:"Fixesc" src ] in
  let diags = run_typed ~manifest mods in
  check_ids "escape through a callee chain" [ "int/domain-escape" ] diags

let test_escape_closure_local_state_ok () =
  (* State created inside the task is per-call: no cross-domain race. *)
  let src =
    par_stub
    ^ "let sum xs =\n\
      \  Par.Pool.map_list_exn\n\
      \    (fun x -> let acc = ref 0 in acc := x; !acc) xs\n"
  in
  let manifest = manifest_exn escape_manifest in
  let mods = [ summarize ~lib:"fixesc" ~modname:"Fixesc" src ] in
  check_ids "closure-local ref is fine" [] (run_typed ~manifest mods)

(* --- architecture layering --- *)

let edge ?(file = "lib/alib/a.ml") ?(line = 3) e_src e_dst =
  { Ccdeps.Analysis.e_src; e_dst; e_file = file; e_line = line }

let layering ~manifest ~libs edges =
  Ccdeps.Analysis.layering ~manifest ~libs edges

let test_layer_violation () =
  let manifest = manifest_exn "layer alib 0\nlayer blib 1" in
  check_ids "upward edge violates the DAG" [ "arch/layer-violation" ]
    (layering ~manifest ~libs:[ "alib"; "blib" ] [ edge "alib" "blib" ]);
  check_ids "downward edge is clean" []
    (layering ~manifest ~libs:[ "alib"; "blib" ] [ edge "blib" "alib" ])

let test_forbidden_dep () =
  let manifest =
    manifest_exn "layer alib 1\nlayer blib 0\nforbid alib blib : decoupled"
  in
  check_ids "rank-legal but forbidden edge" [ "arch/forbidden-dep" ]
    (layering ~manifest ~libs:[ "alib"; "blib" ] [ edge "alib" "blib" ])

let test_layer_cycle () =
  (* dune prevents real cycles, so the detector is pinned on synthetic
     edges; with equal ranks both directions also violate the DAG. *)
  let manifest = manifest_exn "layer alib 0\nlayer blib 0" in
  check_ids "two-lib cycle"
    [ "arch/layer-cycle"; "arch/layer-violation" ]
    (layering ~manifest ~libs:[ "alib"; "blib" ]
       [ edge "alib" "blib";
         edge ~file:"lib/blib/b.ml" ~line:7 "blib" "alib" ]);
  check_ids "acyclic graph is clean" []
    (manifest_exn "layer alib 1\nlayer blib 0"
     |> fun manifest ->
     layering ~manifest ~libs:[ "alib"; "blib" ] [ edge "alib" "blib" ])

let test_undeclared_lib () =
  let manifest = manifest_exn "layer alib 0" in
  check_ids "unranked lib must be placed" [ "arch/undeclared-lib" ]
    (layering ~manifest ~libs:[ "alib"; "blib" ] [])

(* --- the manifest itself --- *)

let test_manifest_parse () =
  let m =
    manifest_exn
      "# comment\n\
       layer geom 0\n\
       forbid ccplace qor : no scoring in kernels\n\
       pure geom : pure\n\
       trust Par : audited\n"
  in
  Alcotest.(check (option int)) "rank" (Some 0)
    (Ccdeps.Manifest.rank m "geom");
  Alcotest.(check (option string)) "forbid reason"
    (Some "no scoring in kernels")
    (Ccdeps.Manifest.forbidden m ~src:"ccplace" ~dst:"qor");
  Alcotest.(check bool) "pure" true (Ccdeps.Manifest.is_pure m "geom");
  Alcotest.(check bool) "trust covers submodules" true
    (Ccdeps.Manifest.is_trusted m "Par.Pool.map");
  Alcotest.(check bool) "trust is component-wise" false
    (Ccdeps.Manifest.is_trusted m "Parasitic.x")

let test_manifest_malformed () =
  (match Ccdeps.Manifest.parse_string ~file:"f" "layer geom zero" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "non-integer rank must not parse");
  match Ccdeps.Manifest.parse_string ~file:"f" "bogus x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown directive must not parse"

let test_manifest_validate () =
  let m = manifest_exn "layer nosuch 0\nlayer geom 0\nlayer geom 1" in
  check_ids "unknown lib and duplicate layer" [ "meta/ccdeps-manifest" ]
    (Ccdeps.Manifest.validate m ~libs:[ "geom" ]);
  Alcotest.(check int) "one per offence" 2
    (List.length (Ccdeps.Manifest.validate m ~libs:[ "geom" ]))

(* --- registry + engine wiring --- *)

let test_registry_has_typed_rules () =
  List.iter
    (fun id ->
       Alcotest.(check bool) (id ^ " registered") true
         (List.mem id Srclint.Registry.ids))
    [ "int/taint-wall-clock"; "int/taint-random"; "int/taint-getenv";
      "int/taint-gc"; "int/taint-print"; "int/domain-escape";
      "arch/layer-violation"; "arch/forbidden-dep"; "arch/layer-cycle";
      "arch/undeclared-lib"; "meta/cmt-error"; "meta/ccdeps-manifest" ]

let test_typed_rule_id_predicate () =
  List.iter
    (fun (id, want) ->
       Alcotest.(check bool) id want (Srclint.Typed_rules.is_typed_rule_id id))
    [ ("int/domain-escape", true); ("arch/layer-cycle", true);
      ("meta/cmt-error", true); ("det/wall-clock", false);
      ("meta/stale-suppression", false) ]

(* The committed .ccdeps parses and places every current sublibrary.
   Under `dune runtest` the cwd is _build/default/test; under
   `dune exec` it is the workspace root. *)
let test_committed_manifest () =
  let path =
    List.find_opt Sys.file_exists [ "../.ccdeps"; ".ccdeps" ]
    |> Option.value ~default:"../.ccdeps"
  in
  match Ccdeps.Manifest.load path with
  | Error msg -> Alcotest.failf "committed .ccdeps: %s" msg
  | Ok m ->
    Alcotest.(check bool) "manifest is non-empty" true
      (m.Ccdeps.Manifest.layers <> []);
    List.iter
      (fun lib ->
         Alcotest.(check bool) ("layer for " ^ lib) true
           (Ccdeps.Manifest.rank m lib <> None))
      [ "geom"; "tech"; "capmodel"; "ccgrid"; "ccplace"; "ccroute";
        "rcnet"; "extract"; "dacmodel"; "verify"; "lvs"; "core"; "qor";
        "telemetry"; "par"; "srclint"; "ccdeps" ]

(* When the typed pass does not run, its allowlist entries are exempt
   from the stale check; a typed run that found nothing stale-checks
   them normally. *)
let test_typed_allowlist_exemption () =
  let dir = Filename.temp_file "ccdeps-typed" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Sys.mkdir (Filename.concat dir "lib") 0o755;
  let src_path = Filename.concat dir "lib/k.ml" in
  Out_channel.with_open_bin src_path (fun oc ->
      Out_channel.output_string oc "let id x = x\n");
  let allowlist =
    match
      Srclint.Allowlist.parse_string ~file:".cclint"
        "int/domain-escape lib/k.ml : raced before the rework landed\n"
    with
    | Ok a -> a
    | Error msg -> Alcotest.fail msg
  in
  let off = Srclint.Engine.run ~allowlist ~root:dir () in
  Alcotest.(check (list string)) "pass off: typed entry not stale" []
    (Srclint.Diagnostic.rule_ids off.Srclint.Engine.diagnostics);
  let on = Srclint.Engine.run ~allowlist ~typed:[] ~root:dir () in
  Alcotest.(check (list string)) "pass ran clean: typed entry is stale"
    [ "meta/stale-suppression" ]
    (Srclint.Diagnostic.rule_ids on.Srclint.Engine.diagnostics);
  Sys.remove src_path;
  Sys.rmdir (Filename.concat dir "lib");
  Sys.rmdir dir

(* --- cclint --prune (shared CLI helper) --- *)

let test_prune () =
  let dir = Filename.temp_file "ccdeps-prune" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let path = Filename.concat dir ".cclint" in
  let contents =
    "# keep this comment\n\
     det/wall-clock lib/live.ml : still real\n\
     det/getenv lib/gone.ml : fixed long ago\n"
  in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc contents);
  let allowlist =
    match Srclint.Allowlist.load path with
    | Ok a -> a
    | Error msg -> Alcotest.failf "load: %s" msg
  in
  let live, stale =
    match allowlist.Srclint.Allowlist.entries with
    | [ a; b ] -> (a, b)
    | _ -> Alcotest.fail "expected two entries"
  in
  let result =
    { Srclint.Engine.files_scanned = 1;
      diagnostics = [];
      suppressions =
        [ { Srclint.Engine.entry = live; matched = 1 };
          { Srclint.Engine.entry = stale; matched = 0 } ] }
  in
  Devlint_cli.prune ~root:dir ~allowlist_path:".cclint" result;
  let after = In_channel.with_open_bin path In_channel.input_all in
  Alcotest.(check string) "stale entry dropped, comment and live kept"
    "# keep this comment\ndet/wall-clock lib/live.ml : still real\n" after;
  Sys.remove path;
  Sys.rmdir dir

let () =
  Alcotest.run "ccdeps"
    [ ( "taint",
        [ Alcotest.test_case "chain" `Quick test_taint_chain;
          Alcotest.test_case "clean" `Quick test_taint_clean;
          Alcotest.test_case "impure-exempt" `Quick
            test_taint_impure_lib_exempt;
          Alcotest.test_case "trust-boundary" `Quick
            test_taint_trust_boundary;
          Alcotest.test_case "kinds" `Quick test_taint_kinds ] );
      ( "escape",
        [ Alcotest.test_case "capture" `Quick test_escape_capture;
          Alcotest.test_case "clean" `Quick test_escape_clean;
          Alcotest.test_case "via-callee" `Quick test_escape_via_callee;
          Alcotest.test_case "closure-local-ok" `Quick
            test_escape_closure_local_state_ok ] );
      ( "layering",
        [ Alcotest.test_case "violation" `Quick test_layer_violation;
          Alcotest.test_case "forbidden" `Quick test_forbidden_dep;
          Alcotest.test_case "cycle" `Quick test_layer_cycle;
          Alcotest.test_case "undeclared" `Quick test_undeclared_lib ] );
      ( "manifest",
        [ Alcotest.test_case "parse" `Quick test_manifest_parse;
          Alcotest.test_case "malformed" `Quick test_manifest_malformed;
          Alcotest.test_case "validate" `Quick test_manifest_validate;
          Alcotest.test_case "committed" `Quick test_committed_manifest ] );
      ( "wiring",
        [ Alcotest.test_case "registry" `Quick test_registry_has_typed_rules;
          Alcotest.test_case "typed-rule-ids" `Quick
            test_typed_rule_id_predicate;
          Alcotest.test_case "typed-allowlist-exemption" `Quick
            test_typed_allowlist_exemption;
          Alcotest.test_case "prune" `Quick test_prune ] ) ]
