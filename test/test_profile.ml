(* Tests for generalised variation profiles (linear / quadratic / saddle)
   and the curvature ablation: common-centroid symmetry cancels linear
   gradients but not curvature — only dispersion fights the latter. *)

let tech = Tech.Process.finfet_12nm
let point ~x ~y = Geom.Point.make ~x ~y
let check_float = Alcotest.(check (float 1e-9))

let test_linear_matches_gradient_module () =
  let profile = Capmodel.Profile.of_tech tech in
  let ps = [| point ~x:3. ~y:(-7.); point ~x:(-1.) ~y:4. |] in
  check_float "same shift"
    (Capmodel.Gradient.systematic_shift tech ps)
    (Capmodel.Profile.systematic_shift tech profile ps)

let test_quadratic_zero_at_center () =
  let c = point ~x:2. ~y:3. in
  let profile = Capmodel.Profile.quadratic ~ppm_per_um2:100. ~center:c in
  check_float "zero at centre" 0. (Capmodel.Profile.deviation profile c);
  Alcotest.(check bool) "grows outward" true
    (Capmodel.Profile.deviation profile (point ~x:10. ~y:3.) > 0.)

let test_quadratic_radially_symmetric () =
  let profile =
    Capmodel.Profile.quadratic ~ppm_per_um2:50. ~center:Geom.Point.origin
  in
  check_float "radial"
    (Capmodel.Profile.deviation profile (point ~x:3. ~y:4.))
    (Capmodel.Profile.deviation profile (point ~x:5. ~y:0.))

let test_saddle_signs () =
  let profile = Capmodel.Profile.saddle ~ppm_per_um2:100. in
  Alcotest.(check bool) "positive on x axis" true
    (Capmodel.Profile.deviation profile (point ~x:5. ~y:0.) > 0.);
  Alcotest.(check bool) "negative on y axis" true
    (Capmodel.Profile.deviation profile (point ~x:0. ~y:5.) < 0.);
  check_float "zero on diagonal" 0.
    (Capmodel.Profile.deviation profile (point ~x:3. ~y:3.))

let test_combine_sums () =
  let a = Capmodel.Profile.custom (fun _ -> 1e-6) in
  let b = Capmodel.Profile.custom (fun _ -> 2e-6) in
  check_float "sum" 3e-6
    (Capmodel.Profile.deviation (Capmodel.Profile.combine [ a; b ])
       Geom.Point.origin)

let test_unit_value_inverse_thickness () =
  let profile = Capmodel.Profile.custom (fun _ -> 0.01) in
  check_float "Cu / 1.01" (tech.Tech.Process.unit_cap /. 1.01)
    (Capmodel.Profile.unit_value tech profile Geom.Point.origin)

(* the physics: a centred mirror pair cancels a linear profile to first
   order but adds up under a centred quadratic profile *)
let test_mirror_pair_cancellation () =
  let p = point ~x:6. ~y:2. in
  let pair = [| p; Geom.Point.neg p |] in
  let lin =
    Capmodel.Profile.linear ~ppm_per_um:100. ~theta:(Float.pi /. 7.)
  in
  let quad =
    Capmodel.Profile.quadratic ~ppm_per_um2:100. ~center:Geom.Point.origin
  in
  let lin_shift =
    Float.abs (Capmodel.Profile.systematic_shift tech lin pair)
  in
  let quad_shift =
    Float.abs (Capmodel.Profile.systematic_shift tech quad pair)
  in
  Alcotest.(check bool)
    (Printf.sprintf "quad residue %.2e >> linear residue %.2e" quad_shift
       lin_shift)
    true
    (quad_shift > 50. *. lin_shift)

(* the ablation: under curvature, the dispersed chessboard keeps much
   better systematic INL than the clustered spiral (with the linear
   gradient both are near-perfect, the paper's regime) *)
let test_curvature_favours_dispersion () =
  let no_random = { tech with Tech.Process.mismatch_coeff = 0. } in
  let bowl =
    Capmodel.Profile.quadratic ~ppm_per_um2:200. ~center:Geom.Point.origin
  in
  let inl style =
    let p = Ccplace.Style.place ~bits:8 style in
    (Dacmodel.Nonlinearity.analyze no_random ~profile:bowl p)
      .Dacmodel.Nonlinearity.max_abs_inl
  in
  let spiral = inl Ccplace.Style.Spiral in
  let chess = inl Ccplace.Style.Chessboard in
  Alcotest.(check bool)
    (Printf.sprintf "chessboard %.4f < spiral %.4f under bowl" chess spiral)
    true (chess < spiral);
  (* and the linear gradient is cancelled by both (paper regime) *)
  let linear_inl style =
    let p = Ccplace.Style.place ~bits:8 style in
    (Dacmodel.Nonlinearity.analyze no_random p).Dacmodel.Nonlinearity.max_abs_inl
  in
  Alcotest.(check bool) "linear regime near-perfect" true
    (linear_inl Ccplace.Style.Spiral < 1e-3)

let prop_linear_profile_antisymmetric =
  QCheck.Test.make ~name:"linear profile is odd" ~count:100
    QCheck.(triple (float_range (-20.) 20.) (float_range (-20.) 20.)
              (float_range 0. 3.))
    (fun (x, y, theta) ->
       let profile = Capmodel.Profile.linear ~ppm_per_um:10. ~theta in
       let p = point ~x ~y in
       Float.abs
         (Capmodel.Profile.deviation profile p
          +. Capmodel.Profile.deviation profile (Geom.Point.neg p))
       < 1e-12)

let () =
  Alcotest.run "profile"
    [ ( "profiles",
        [ Alcotest.test_case "linear = gradient" `Quick test_linear_matches_gradient_module;
          Alcotest.test_case "quadratic centre" `Quick test_quadratic_zero_at_center;
          Alcotest.test_case "quadratic radial" `Quick test_quadratic_radially_symmetric;
          Alcotest.test_case "saddle" `Quick test_saddle_signs;
          Alcotest.test_case "combine" `Quick test_combine_sums;
          Alcotest.test_case "unit value" `Quick test_unit_value_inverse_thickness ] );
      ( "physics",
        [ Alcotest.test_case "mirror cancellation" `Quick test_mirror_pair_cancellation;
          Alcotest.test_case "curvature vs dispersion" `Quick test_curvature_favours_dispersion ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_linear_profile_antisymmetric ] ) ]
