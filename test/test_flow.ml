(* Tests for the top-level flow, sweeps and reports. *)

let run6 = Ccdac.Flow.run ~bits:6 Ccplace.Style.Spiral

let test_flow_fields_consistent () =
  Alcotest.(check int) "bits" 6 run6.Ccdac.Flow.bits;
  Alcotest.(check (float 1e-9)) "inl copied"
    run6.Ccdac.Flow.nonlinearity.Dacmodel.Nonlinearity.max_abs_inl
    run6.Ccdac.Flow.max_inl;
  Alcotest.(check (float 1e-9)) "tau copied"
    run6.Ccdac.Flow.parasitics.Extract.Parasitics.critical_elmore_fs
    run6.Ccdac.Flow.tau_fs;
  Alcotest.(check (float 1e-6)) "f3dB from tau"
    (Dacmodel.Speed.f3db_mhz ~bits:6 ~tau_fs:run6.Ccdac.Flow.tau_fs)
    run6.Ccdac.Flow.f3db_mhz;
  Alcotest.(check bool) "area positive" true (run6.Ccdac.Flow.area > 0.);
  Alcotest.(check bool) "elapsed recorded" true
    (run6.Ccdac.Flow.elapsed_place_route_s >= 0.)

let test_flow_critical_bit_in_range () =
  Alcotest.(check bool) "critical in range" true
    (run6.Ccdac.Flow.critical_bit >= 0 && run6.Ccdac.Flow.critical_bit <= 6)

let test_default_parallel_policy () =
  let p_s = Ccdac.Flow.default_parallel ~bits:8 Ccplace.Style.Spiral in
  let p_c = Ccdac.Flow.default_parallel ~bits:8 Ccplace.Style.Chessboard in
  Alcotest.(check bool) "spiral MSB parallel" true (p_s 8 > 1);
  Alcotest.(check int) "spiral LSB single" 1 (p_s 2);
  Alcotest.(check int) "chessboard single" 1 (p_c 8)

let test_place_route_only () =
  let layout, elapsed = Ccdac.Flow.place_route ~bits:6 Ccplace.Style.Chessboard in
  Alcotest.(check bool) "layout produced" true
    (layout.Ccroute.Layout.width > 0.);
  Alcotest.(check bool) "fast" true (elapsed < 10.)

let test_custom_tech () =
  let r = Ccdac.Flow.run ~tech:Tech.Process.bulk_legacy ~bits:6 Ccplace.Style.Spiral in
  Alcotest.(check bool) "runs on bulk" true (r.Ccdac.Flow.f3db_mhz > 0.)

(* The Table III runtime must be exactly the place and route stage times
   on the monotonic clock — the verification gate runs on its own stage
   and is excluded (it would otherwise bias the paper-comparable number
   by the full lint cost). *)
let test_elapsed_excludes_verify_gate () =
  let r = run6 in
  let t = r.Ccdac.Flow.telemetry in
  let stage n =
    match Telemetry.Summary.stage_seconds t n with
    | Some s -> s
    | None -> Alcotest.failf "stage %s missing" n
  in
  Alcotest.(check (float 1e-12)) "elapsed = place + route"
    (stage "place" +. stage "route")
    (Ccdac.Flow.elapsed_place_route_s r);
  (* the gate did run and was timed — it is excluded, not skipped *)
  Alcotest.(check bool) "verify stage present" true
    (List.mem "verify" (Telemetry.Summary.stage_names t));
  Alcotest.(check bool) "verify not in elapsed" true
    (r.Ccdac.Flow.elapsed_place_route_s
     <= t.Telemetry.Summary.total_s -. stage "verify" +. 1e-9)

let test_run_placement_refined () =
  let placement = Ccplace.Spiral.place ~bits:6 in
  let refined, _ =
    Ccplace.Refine.refine Tech.Process.finfet_12nm ~max_swaps:10 placement
  in
  let r = Ccdac.Flow.run_placement refined in
  Alcotest.(check int) "bits" 6 r.Ccdac.Flow.bits;
  Alcotest.(check bool) "analysed" true (r.Ccdac.Flow.f3db_mhz > 0.)

let test_run_placement_rejects_general_ratios () =
  let p = Ccplace.General.clustered ~counts:[| 2; 2; 4 |] in
  Alcotest.(check bool) "non-binary rejected" true
    (try ignore (Ccdac.Flow.run_placement p); false
     with Invalid_argument _ -> true)

(* --- sweep --- *)

let test_best_block_is_block () =
  let r = Ccdac.Sweep.best_block ~bits:6 () in
  match r.Ccdac.Flow.style with
  | Ccplace.Style.Block_chess _ -> ()
  | Ccplace.Style.Spiral | Ccplace.Style.Chessboard | Ccplace.Style.Rowwise ->
    Alcotest.fail "best_block must return a BC result"

let test_best_block_beats_family_on_f3db () =
  let best = Ccdac.Sweep.best_block ~bits:6 () in
  List.iter
    (fun style ->
       let r = Ccdac.Flow.run ~bits:6 style in
       Alcotest.(check bool) "best is max (among acceptable)" true
         (best.Ccdac.Flow.f3db_mhz >= r.Ccdac.Flow.f3db_mhz -. 1e-9
          || r.Ccdac.Flow.max_inl > 0.5 || r.Ccdac.Flow.max_dnl > 0.5))
    (Ccplace.Style.block_family ~bits:6)

let test_row_shape () =
  let rows = Ccdac.Sweep.row ~bits:6 () in
  Alcotest.(check int) "four methods" 4 (List.length rows);
  match List.map (fun r -> Ccplace.Style.label r.Ccdac.Flow.style) rows with
  | [ "[1]"; "[7]"; "S"; "BC" ] -> ()
  | labels -> Alcotest.failf "unexpected order: %s" (String.concat "," labels)

let test_parallel_sweep () =
  let points =
    Ccdac.Sweep.parallel_sweep ~bits:6 ~style:Ccplace.Style.Spiral [ 1; 2; 4 ]
  in
  Alcotest.(check int) "three points" 3 (List.length points);
  match points with
  | (1, f1) :: (2, f2) :: (4, f4) :: [] ->
    Alcotest.(check bool) "k=2 improves" true (f2 > f1);
    Alcotest.(check bool) "k=4 at least k=2" true (f4 >= f2 *. 0.8)
  | _ -> Alcotest.fail "unexpected shape"

(* --- report --- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
  m = 0 || scan 0

let rows6 = [ (6, Ccdac.Sweep.row ~bits:6 ()) ]

let test_report_table1 () =
  let s = Ccdac.Report.table1 rows6 in
  Alcotest.(check bool) "header" true (contains s "Table I");
  Alcotest.(check bool) "methods" true
    (contains s "[1]" && contains s "[7]" && contains s "S" && contains s "BC")

let test_report_table2 () =
  let s = Ccdac.Report.table2 rows6 in
  Alcotest.(check bool) "header" true (contains s "Table II");
  Alcotest.(check bool) "f3dB column" true (contains s "f3dB")

let test_report_table3 () =
  let s = Ccdac.Report.table3 [ (6, 0.01, 0.02); (7, 0.03, 0.04) ] in
  Alcotest.(check bool) "header" true (contains s "Table III");
  Alcotest.(check bool) "rows" true (contains s "0.0100" && contains s "0.0400")

let test_report_fig6 () =
  let a = Ccdac.Report.fig6a [ (6, [ (1, 100.); (2, 220.) ]) ] in
  Alcotest.(check bool) "normalised" true (contains a "k=1:1.00x");
  Alcotest.(check bool) "factor" true (contains a "k=2:2.20x");
  let b = Ccdac.Report.fig6b rows6 in
  Alcotest.(check bool) "spiral is 1.0" true (contains b "S:1.0000")

let test_csv_metrics () =
  let s = Ccdac.Csv.metrics_rows rows6 in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' s) in
  (* header + 4 methods *)
  Alcotest.(check int) "lines" 5 (List.length lines);
  (match lines with
   | header :: _ ->
     Alcotest.(check string) "header" Ccdac.Csv.metrics_header header
   | [] -> Alcotest.fail "empty csv");
  List.iter
    (fun line ->
       Alcotest.(check int) "field count"
         (List.length (String.split_on_char ',' Ccdac.Csv.metrics_header))
         (List.length (String.split_on_char ',' line)))
    lines

let test_csv_parallel_sweep () =
  let s = Ccdac.Csv.parallel_sweep_csv [ (6, [ (1, 100.); (2, 250.) ]) ] in
  Alcotest.(check bool) "header" true (contains s "bits,k,f3db_mhz,improvement");
  Alcotest.(check bool) "row" true (contains s "6,2,250.000,2.5000")

let test_csv_write () =
  let path = Filename.temp_file "ccdac" ".csv" in
  Ccdac.Csv.write ~path "a,b\n1,2\n";
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "roundtrip" "a,b" line

let test_report_summary () =
  let s = Ccdac.Report.summary run6 in
  Alcotest.(check bool) "style" true (contains s "spiral");
  Alcotest.(check bool) "f3dB" true (contains s "f3dB")

let () =
  Alcotest.run "ccdac"
    [ ( "flow",
        [ Alcotest.test_case "fields" `Quick test_flow_fields_consistent;
          Alcotest.test_case "critical bit" `Quick test_flow_critical_bit_in_range;
          Alcotest.test_case "parallel policy" `Quick test_default_parallel_policy;
          Alcotest.test_case "place_route" `Quick test_place_route_only;
          Alcotest.test_case "custom tech" `Quick test_custom_tech;
          Alcotest.test_case "verify-gate time excluded" `Quick
            test_elapsed_excludes_verify_gate;
          Alcotest.test_case "run_placement refined" `Quick test_run_placement_refined;
          Alcotest.test_case "run_placement general" `Quick test_run_placement_rejects_general_ratios ] );
      ( "sweep",
        [ Alcotest.test_case "best block is BC" `Quick test_best_block_is_block;
          Alcotest.test_case "best block max" `Quick test_best_block_beats_family_on_f3db;
          Alcotest.test_case "row shape" `Quick test_row_shape;
          Alcotest.test_case "parallel sweep" `Quick test_parallel_sweep ] );
      ( "report",
        [ Alcotest.test_case "table1" `Quick test_report_table1;
          Alcotest.test_case "table2" `Quick test_report_table2;
          Alcotest.test_case "table3" `Quick test_report_table3;
          Alcotest.test_case "fig6" `Quick test_report_fig6;
          Alcotest.test_case "csv metrics" `Quick test_csv_metrics;
          Alcotest.test_case "csv sweep" `Quick test_csv_parallel_sweep;
          Alcotest.test_case "csv write" `Quick test_csv_write;
          Alcotest.test_case "summary" `Quick test_report_summary ] ) ]
