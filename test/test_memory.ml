(* Tests for Telemetry.Memory: allocation-delta sanity, the
   pay-nothing-when-inactive contract, bitwise determinism of flow
   results with sampling on vs off at several --jobs values, and
   cross-domain attribution — a stage span that fans out through
   Par.Pool must absorb its workers' allocation, and only its own. *)

module T = Telemetry

let words_per_mb = 1048576 / (Sys.word_size / 8)

(* Allocate [mb] mebibytes in sub-Max_young_wosize chunks so every word
   goes through the minor heap, where Gc.minor_words tracks the live
   allocation pointer exactly (large arrays go straight to the major
   heap, whose counters only refresh at GC events). *)
let churn_mb mb =
  let chunks = mb * words_per_mb / 128 in
  let keep = ref 0. in
  for _ = 1 to chunks do
    let a = Sys.opaque_identity (Array.make 128 1.) in
    keep := !keep +. a.(0)
  done;
  !keep

let test_disabled_is_free () =
  Alcotest.(check bool) "sampling off by default" false (T.Memory.enabled ());
  Alcotest.(check bool) "start yields nothing" true (T.Memory.start () = None);
  let (), spans =
    T.Span.collect (fun () ->
        T.Span.with_ ~name:"quiet" (fun () -> ignore (churn_mb 1)))
  in
  List.iter
    (fun s ->
       Alcotest.(check bool) "span carries no delta" true (s.T.Span.mem = None))
    spans

let test_alloc_delta_sanity () =
  T.Memory.with_enabled true @@ fun () ->
  let (), spans =
    T.Span.collect (fun () ->
        T.Span.with_ ~name:"churn" (fun () -> ignore (churn_mb 8)))
  in
  match (List.hd spans).T.Span.mem with
  | None -> Alcotest.fail "sampling on but span has no delta"
  | Some d ->
    let mb = T.Memory.allocated_mb d in
    Alcotest.(check bool)
      (Printf.sprintf "churn of 8 MB reports >= 8 MB (got %.2f)" mb)
      true (mb >= 8.);
    (* headers add < 2 words per 128-word chunk; anything past 2x means
       double counting (own delta + ledger echo) *)
    Alcotest.(check bool)
      (Printf.sprintf "no double counting (got %.2f)" mb)
      true (mb < 16.);
    Alcotest.(check bool) "collections are non-negative" true
      (d.T.Memory.minor_collections >= 0 && d.T.Memory.major_collections >= 0)

(* The inactive fast path: sampling off, no span sinks — a span must cost
   (almost) nothing, allocation included.  The bound is generous (64
   words/span covers the closure the optional-argument wrapper builds)
   but catches any accidental Gc.quick_stat record on the fast path
   (~250 words each). *)
let test_inactive_overhead () =
  let body () = Sys.opaque_identity 0 in
  let n = 1000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to n do
    ignore (T.Span.with_ ~name:"idle" body)
  done;
  let per_span = (Gc.minor_words () -. w0) /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "inactive span allocates < 64 words (got %.1f)" per_span)
    true (per_span < 64.)

(* Sampling must be a pure observer: the flow's numerical results are
   bitwise identical with it on or off, at any worker count. *)
let test_flow_bitwise_invariant () =
  let fingerprint sampled =
    T.Memory.with_enabled sampled @@ fun () ->
    let r = Ccdac.Flow.run ~bits:6 Ccplace.Style.Spiral in
    ( List.map Int64.bits_of_float
        [ r.Ccdac.Flow.f3db_mhz; r.Ccdac.Flow.max_inl; r.Ccdac.Flow.max_dnl;
          r.Ccdac.Flow.tau_fs; r.Ccdac.Flow.area;
          r.Ccdac.Flow.parasitics.Extract.Parasitics.total_wirelength ],
      r.Ccdac.Flow.parasitics.Extract.Parasitics.total_via_cuts )
  in
  List.iter
    (fun jobs ->
       Par.Jobs.set_default jobs;
       Fun.protect ~finally:Par.Jobs.clear_default @@ fun () ->
       let off = fingerprint false and on = fingerprint true in
       Alcotest.(check (pair (list int64) int))
         (Printf.sprintf "jobs=%d: sampling is a pure observer" jobs)
         off on)
    [ 1; 4 ]

(* Worker-domain attribution: a span fanning 16 MB of allocation out
   through a 4-worker pool reports it all (the submitter's counters see
   none of it without the ledger), while a sibling span doing trivial
   work stays near zero — workers' allocation lands on the right span. *)
let test_parallel_attribution () =
  T.Memory.with_enabled true @@ fun () ->
  let (), spans =
    T.Span.collect (fun () ->
        T.Span.with_ ~name:"fan" (fun () ->
            ignore
              (Par.Pool.map_list_exn ~jobs:4
                 (fun _ -> churn_mb 2)
                 [ 1; 2; 3; 4; 5; 6; 7; 8 ]));
        T.Span.with_ ~name:"quiet" (fun () -> Sys.opaque_identity ()))
  in
  let mem name =
    match
      (List.find (fun s -> String.equal s.T.Span.name name) spans).T.Span.mem
    with
    | Some d -> T.Memory.allocated_mb d
    | None -> Alcotest.fail (name ^ ": no delta")
  in
  let fan = mem "fan" and quiet = mem "quiet" in
  Alcotest.(check bool)
    (Printf.sprintf "fan-out span absorbs worker allocation (got %.2f)" fan)
    true (fan >= 16.);
  Alcotest.(check bool)
    (Printf.sprintf "no double counting across ledger (got %.2f)" fan)
    true (fan < 32.);
  Alcotest.(check bool)
    (Printf.sprintf "sibling span stays clean (got %.3f)" quiet)
    true (quiet < 1.)

(* Summary plumbing: a recorded flow summary exposes per-stage deltas
   that add up (within rounding slack) to the root total. *)
let test_summary_memory () =
  T.Memory.with_enabled true @@ fun () ->
  let r = Ccdac.Flow.run ~bits:6 Ccplace.Style.Spiral in
  let s = r.Ccdac.Flow.telemetry in
  (match T.Summary.total_memory s with
   | None -> Alcotest.fail "flow summary has no memory total"
   | Some total ->
     let stage_sum =
       List.fold_left
         (fun acc (_, d) -> acc +. T.Memory.allocated_mb d)
         0. (T.Summary.memory_stages s)
     in
     let total_mb = T.Memory.allocated_mb total in
     Alcotest.(check bool)
       (Printf.sprintf "stages (%.2f MB) <= total (%.2f MB)" stage_sum
          total_mb)
       true (stage_sum <= total_mb +. 0.1));
  List.iter
    (fun stage ->
       Alcotest.(check bool) (stage ^ " has a delta") true
         (T.Summary.stage_memory s stage <> None))
    [ "place"; "route"; "extract"; "analyse" ]

let () =
  Alcotest.run "memory"
    [ ( "sampling",
        [ Alcotest.test_case "disabled is free" `Quick test_disabled_is_free;
          Alcotest.test_case "alloc delta sanity" `Quick
            test_alloc_delta_sanity;
          Alcotest.test_case "inactive overhead" `Quick test_inactive_overhead
        ] );
      ( "determinism",
        [ Alcotest.test_case "flow bitwise invariant" `Quick
            test_flow_bitwise_invariant ] );
      ( "domains",
        [ Alcotest.test_case "parallel attribution" `Quick
            test_parallel_attribution ] );
      ( "summary",
        [ Alcotest.test_case "flow summary memory" `Quick test_summary_memory
        ] ) ]
