(* Tests for the backward-Euler transient solver, including cross-checks
   against the Elmore delay and the analytic single-RC response. *)

let node tree label cap = Rcnet.Rctree.add_node tree ~label ~cap ()

let single_rc r c =
  let t = Rcnet.Rctree.create () in
  let root = node t "drv" 0. in
  let load = node t "load" c in
  Rcnet.Rctree.add_edge t root load ~r;
  (t, root, load)

let test_single_rc_exponential () =
  (* v(t) = 1 - exp(-t/RC); check a few points within 2% *)
  let r = 100. and c = 10. in
  let tree, root, load = single_rc r c in
  let tau = r *. c in
  let wf =
    Rcnet.Transient.simulate tree ~root ~vstep:1. ~dt_fs:(tau /. 200.)
      ~steps:600
  in
  let load_i = (load : Rcnet.Rctree.node :> int) in
  List.iter
    (fun step ->
       let t = wf.Rcnet.Transient.times_fs.(step) in
       let v = wf.Rcnet.Transient.voltages.(step).(load_i) in
       let expected = 1. -. Float.exp (-.t /. tau) in
       if Float.abs (v -. expected) > 0.02 then
         Alcotest.failf "t=%.0f: v=%.4f expected %.4f" t v expected)
    [ 100; 200; 400; 600 ]

let test_root_clamped () =
  let tree, root, _ = single_rc 50. 5. in
  let wf = Rcnet.Transient.simulate tree ~root ~vstep:0.8 ~dt_fs:10. ~steps:20 in
  let root_i = (root : Rcnet.Rctree.node :> int) in
  for s = 1 to 20 do
    Alcotest.(check (float 1e-9)) "root at vstep" 0.8
      wf.Rcnet.Transient.voltages.(s).(root_i)
  done

let test_monotone_rise () =
  let tree, root, load = single_rc 100. 10. in
  let wf = Rcnet.Transient.simulate tree ~root ~vstep:1. ~dt_fs:50. ~steps:100 in
  let load_i = (load : Rcnet.Rctree.node :> int) in
  let prev = ref (-1.) in
  Array.iter
    (fun v ->
       Alcotest.(check bool) "monotone" true (v.(load_i) >= !prev -. 1e-12);
       prev := v.(load_i))
    wf.Rcnet.Transient.voltages

let test_settling_vs_analytic () =
  (* settling to within tol: t = -RC ln(tol) *)
  let r = 200. and c = 20. in
  let tree, root, load = single_rc r c in
  let tol = 0.01 in
  let t_settle =
    Rcnet.Transient.settling_time_fs tree ~root ~vstep:1. ~tolerance:tol
      ~node:load
  in
  let expected = -.(r *. c) *. Float.log tol in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.0f vs analytic %.0f" t_settle expected)
    true
    (Float.abs (t_settle -. expected) /. expected < 0.1)

let test_rejects_bad_args () =
  let tree, root, load = single_rc 1. 1. in
  Alcotest.(check bool) "dt <= 0" true
    (try ignore (Rcnet.Transient.simulate tree ~root ~vstep:1. ~dt_fs:0. ~steps:5); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "steps < 1" true
    (try ignore (Rcnet.Transient.simulate tree ~root ~vstep:1. ~dt_fs:1. ~steps:0); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "tolerance <= 0" true
    (try
       ignore
         (Rcnet.Transient.settling_time_fs tree ~root ~vstep:1. ~tolerance:0.
            ~node:load);
       false
     with Invalid_argument _ -> true)

(* the paper's settling model (Eq. 15): settle to 1/4 LSB of an N-bit DAC
   takes ln(2^(N+2)) tau for a single-pole network *)
let test_eq15_on_single_pole () =
  let bits = 8 in
  let r = 100. and c = 50. in
  let tree, root, load = single_rc r c in
  let tolerance = 1. /. float_of_int (4 * (1 lsl bits)) in
  let measured =
    Rcnet.Transient.settling_time_fs tree ~root ~vstep:1. ~tolerance ~node:load
  in
  let eq15 = Dacmodel.Speed.settling_time_fs ~bits ~tau_fs:(r *. c) in
  Alcotest.(check bool)
    (Printf.sprintf "Eq.15 %.0f vs transient %.0f" eq15 measured)
    true
    (Float.abs (measured -. eq15) /. eq15 < 0.1)

(* cross-check the layout flow: the transient settling time of the real
   spiral MSB net should track its Elmore-based estimate within a small
   factor (Elmore is a first moment, not exact for distributed meshes) *)
let test_layout_net_settling_tracks_elmore () =
  let tech = Tech.Process.finfet_12nm in
  let p = Ccplace.Spiral.place ~bits:6 in
  let layout = Ccroute.Layout.route tech p in
  let net = Extract.Netbuild.build layout ~cap:6 in
  let elmore = Extract.Netbuild.worst_elmore_fs net in
  let worst_cell =
    (* the cell with the largest Elmore delay *)
    let d =
      Rcnet.Elmore.delays net.Extract.Netbuild.tree
        ~root:net.Extract.Netbuild.root
    in
    match net.Extract.Netbuild.cell_nodes with
    | [] -> Alcotest.fail "net has no cells"
    | first :: rest ->
      let best = ref first in
      List.iter
        (fun (c, n) ->
           let _, bn = !best in
           if d.((n : Rcnet.Rctree.node :> int))
              > d.((bn : Rcnet.Rctree.node :> int))
           then best := (c, n))
        rest;
      snd !best
  in
  let bits = 6 in
  let tolerance = 1. /. float_of_int (4 * (1 lsl bits)) in
  let measured =
    Rcnet.Transient.settling_time_fs net.Extract.Netbuild.tree
      ~root:net.Extract.Netbuild.root ~vstep:1. ~tolerance ~node:worst_cell
  in
  let eq15 = Dacmodel.Speed.settling_time_fs ~bits ~tau_fs:elmore in
  let ratio = measured /. eq15 in
  Alcotest.(check bool)
    (Printf.sprintf "transient %.0f fs vs Eq.15-from-Elmore %.0f fs" measured eq15)
    true
    (ratio > 0.2 && ratio < 2.5)

let prop_settling_scales_with_rc =
  QCheck.Test.make ~name:"settling scales linearly with RC" ~count:30
    QCheck.(pair (float_range 10. 500.) (float_range 1. 50.))
    (fun (r, c) ->
       let tree1, root1, load1 = single_rc r c in
       let tree2, root2, load2 = single_rc (2. *. r) c in
       let settle t root load =
         Rcnet.Transient.settling_time_fs t ~root ~vstep:1. ~tolerance:0.05
           ~node:load
       in
       let s1 = settle tree1 root1 load1 and s2 = settle tree2 root2 load2 in
       Float.abs ((s2 /. s1) -. 2.) < 0.3)

let () =
  Alcotest.run "transient"
    [ ( "single RC",
        [ Alcotest.test_case "exponential" `Quick test_single_rc_exponential;
          Alcotest.test_case "root clamped" `Quick test_root_clamped;
          Alcotest.test_case "monotone" `Quick test_monotone_rise;
          Alcotest.test_case "settling analytic" `Quick test_settling_vs_analytic;
          Alcotest.test_case "bad args" `Quick test_rejects_bad_args;
          Alcotest.test_case "Eq. 15" `Quick test_eq15_on_single_pole ] );
      ( "layout nets",
        [ Alcotest.test_case "tracks Elmore" `Slow test_layout_net_settling_tracks_elmore ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_settling_scales_with_rc ] ) ]
