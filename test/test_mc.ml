(* Tests for correlated Gaussian sampling and the Monte-Carlo linearity
   engine. *)

let tech = Tech.Process.finfet_12nm
let spiral8 = Ccplace.Spiral.place ~bits:8

(* --- cholesky --- *)

let test_cholesky_identity () =
  let l = Capmodel.Gauss.cholesky [| [| 1.; 0. |]; [| 0.; 1. |] |] in
  Alcotest.(check (float 1e-6)) "l00" 1. l.(0).(0);
  Alcotest.(check (float 1e-6)) "l10" 0. l.(1).(0);
  Alcotest.(check (float 1e-6)) "l11" 1. l.(1).(1)

let test_cholesky_reconstructs () =
  let m = [| [| 4.; 2.; 0.5 |]; [| 2.; 5.; 1. |]; [| 0.5; 1.; 3. |] |] in
  let l = Capmodel.Gauss.cholesky m in
  let n = 3 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let v = ref 0. in
      for k = 0 to n - 1 do
        v := !v +. (l.(i).(k) *. l.(j).(k))
      done;
      if Float.abs (!v -. m.(i).(j)) > 1e-6 then
        Alcotest.failf "(%d,%d): %f vs %f" i j !v m.(i).(j)
    done
  done

let test_cholesky_rejects_non_psd () =
  Alcotest.(check bool) "negative definite" true
    (try ignore (Capmodel.Gauss.cholesky [| [| -1. |] |]); false
     with Invalid_argument _ -> true)

let test_cholesky_rejects_non_square () =
  Alcotest.(check bool) "ragged" true
    (try ignore (Capmodel.Gauss.cholesky [| [| 1.; 0. |]; [| 0. |] |]); false
     with Invalid_argument _ -> true)

let test_cholesky_handles_semidefinite () =
  (* perfectly correlated pair: singular but should factor with jitter *)
  let l = Capmodel.Gauss.cholesky [| [| 1.; 1. |]; [| 1.; 1. |] |] in
  Alcotest.(check bool) "factors" true (l.(0).(0) > 0.)

(* --- standard normal --- *)

let test_standard_normal_moments () =
  let state = Random.State.make [| 42 |] in
  let n = 20000 in
  let sum = ref 0. and sum2 = ref 0. in
  for _ = 1 to n do
    let z = Capmodel.Gauss.standard_normal state in
    sum := !sum +. z;
    sum2 := !sum2 +. (z *. z)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sum2 /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs mean < 0.03);
  Alcotest.(check bool) "var ~ 1" true (Float.abs (var -. 1.) < 0.05)

(* --- sampler --- *)

let cov8 =
  lazy
    (Capmodel.Covariance.build tech
       (Ccgrid.Placement.positions_by_cap tech spiral8))

let test_sampler_dimensions () =
  let s = Capmodel.Gauss.sampler (Lazy.force cov8) in
  Alcotest.(check int) "9 capacitors" 9 (Array.length (Capmodel.Gauss.draw s))

let test_sampler_reproducible () =
  let draw_first seed =
    Capmodel.Gauss.draw (Capmodel.Gauss.sampler ~seed (Lazy.force cov8))
  in
  Alcotest.(check bool) "same seed, same draw" true
    (draw_first 7 = draw_first 7);
  Alcotest.(check bool) "different seeds differ" true
    (draw_first 7 <> draw_first 8)

let test_sampler_variance_matches_model () =
  (* the MSB sample variance must approach sigma_N^2 from Eq. 6 *)
  let cov = Lazy.force cov8 in
  let s = Capmodel.Gauss.sampler cov in
  let n = 4000 in
  let sum2 = ref 0. in
  for _ = 1 to n do
    let x = (Capmodel.Gauss.draw s).(8) in
    sum2 := !sum2 +. (x *. x)
  done;
  let sample_var = !sum2 /. float_of_int n in
  let model_var = Capmodel.Covariance.variance cov 8 in
  Alcotest.(check bool)
    (Printf.sprintf "sample %.4f vs model %.4f" sample_var model_var)
    true
    (Float.abs (sample_var -. model_var) /. model_var < 0.12)

(* --- montecarlo --- *)

let test_mc_fields_sane () =
  let mc = Dacmodel.Montecarlo.run tech ~trials:100 spiral8 in
  Alcotest.(check int) "trials" 100 mc.Dacmodel.Montecarlo.trials;
  Alcotest.(check bool) "yield in [0,1]" true
    (mc.Dacmodel.Montecarlo.yield >= 0. && mc.Dacmodel.Montecarlo.yield <= 1.);
  Alcotest.(check bool) "mean <= p95 <= max (INL)" true
    (mc.Dacmodel.Montecarlo.mean_inl <= mc.Dacmodel.Montecarlo.p95_inl +. 1e-9
     && mc.Dacmodel.Montecarlo.p95_inl <= mc.Dacmodel.Montecarlo.max_inl +. 1e-9)

let test_mc_reproducible () =
  let run () = Dacmodel.Montecarlo.run tech ~seed:3 ~trials:50 spiral8 in
  let a = run () and b = run () in
  Alcotest.(check (float 1e-12)) "deterministic" a.Dacmodel.Montecarlo.mean_inl
    b.Dacmodel.Montecarlo.mean_inl

let test_mc_trials_required () =
  Alcotest.(check bool) "trials >= 1" true
    (try ignore (Dacmodel.Montecarlo.run tech ~trials:0 spiral8); false
     with Invalid_argument _ -> true)

let test_mc_perfect_process_perfect_yield () =
  let ideal = { tech with Tech.Process.mismatch_coeff = 0.; gradient_ppm = 0. } in
  let mc = Dacmodel.Montecarlo.run ideal ~trials:50 spiral8 in
  Alcotest.(check (float 1e-9)) "yield 1" 1. mc.Dacmodel.Montecarlo.yield;
  (* the Cholesky jitter leaves femto-scale shifts, hence the loose bound *)
  Alcotest.(check bool) "INL ~ 0" true (mc.Dacmodel.Montecarlo.max_inl < 1e-3)

let test_mc_dispersion_ordering () =
  (* the chessboard's Monte-Carlo DNL distribution must sit below the
     spiral's — the same ordering the 3-sigma model shows *)
  let chess = Ccplace.Chessboard.place ~bits:8 in
  let mc_s = Dacmodel.Montecarlo.run tech ~seed:1 ~trials:150 spiral8 in
  let mc_c = Dacmodel.Montecarlo.run tech ~seed:1 ~trials:150 chess in
  Alcotest.(check bool) "chessboard mean DNL lower" true
    (mc_c.Dacmodel.Montecarlo.mean_dnl < mc_s.Dacmodel.Montecarlo.mean_dnl)

let test_mc_consistent_with_3sigma () =
  (* the analytical 3-sigma DNL should be an upper-tail statement: the MC
     p95 must not exceed it wildly, and the MC mean must stay below it *)
  let analytic = Dacmodel.Nonlinearity.analyze tech spiral8 in
  let mc = Dacmodel.Montecarlo.run tech ~trials:300 spiral8 in
  Alcotest.(check bool) "MC mean below 3-sigma point" true
    (mc.Dacmodel.Montecarlo.mean_dnl
     < analytic.Dacmodel.Nonlinearity.max_abs_dnl);
  Alcotest.(check bool) "3-sigma within 3x of MC p95" true
    (analytic.Dacmodel.Nonlinearity.max_abs_dnl
     < 3. *. mc.Dacmodel.Montecarlo.p95_dnl +. 1e-6)

let test_trial_curves_length () =
  let curves = Dacmodel.Montecarlo.trial_curves tech ~trials:17 spiral8 in
  Alcotest.(check int) "17 trials" 17 (List.length curves)

let prop_yield_monotone_in_bound =
  QCheck.Test.make ~name:"looser bound, higher yield" ~count:10
    QCheck.(pair (float_range 0.05 0.3) (float_range 0.35 1.0))
    (fun (tight, loose) ->
       let run bound =
         (Dacmodel.Montecarlo.run tech ~seed:5 ~trials:60 ~bound spiral8)
           .Dacmodel.Montecarlo.yield
       in
       run loose >= run tight)

let () =
  Alcotest.run "montecarlo"
    [ ( "cholesky",
        [ Alcotest.test_case "identity" `Quick test_cholesky_identity;
          Alcotest.test_case "reconstructs" `Quick test_cholesky_reconstructs;
          Alcotest.test_case "rejects non-psd" `Quick test_cholesky_rejects_non_psd;
          Alcotest.test_case "rejects non-square" `Quick test_cholesky_rejects_non_square;
          Alcotest.test_case "semidefinite" `Quick test_cholesky_handles_semidefinite ] );
      ( "normal",
        [ Alcotest.test_case "moments" `Quick test_standard_normal_moments ] );
      ( "sampler",
        [ Alcotest.test_case "dimensions" `Quick test_sampler_dimensions;
          Alcotest.test_case "reproducible" `Quick test_sampler_reproducible;
          Alcotest.test_case "variance" `Quick test_sampler_variance_matches_model ] );
      ( "montecarlo",
        [ Alcotest.test_case "fields" `Quick test_mc_fields_sane;
          Alcotest.test_case "reproducible" `Quick test_mc_reproducible;
          Alcotest.test_case "trials >= 1" `Quick test_mc_trials_required;
          Alcotest.test_case "perfect process" `Quick test_mc_perfect_process_perfect_yield;
          Alcotest.test_case "dispersion ordering" `Slow test_mc_dispersion_ordering;
          Alcotest.test_case "vs 3-sigma" `Slow test_mc_consistent_with_3sigma;
          Alcotest.test_case "trial curves" `Quick test_trial_curves_length ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_yield_monotone_in_bound ] ) ]
