(* Miscellaneous behaviours not covered by the per-module suites:
   pretty-printers, small accessors, and defensive error paths. *)

let tech = Tech.Process.finfet_12nm

let fmt_to_string pp v = Format.asprintf "%a" pp v

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
  m = 0 || scan 0

(* --- pretty printers --- *)

let test_layer_pp () =
  Alcotest.(check string) "M1" "M1" (fmt_to_string Tech.Layer.pp_name Tech.Layer.M1);
  Alcotest.(check string) "M3" "M3" (fmt_to_string Tech.Layer.pp_name Tech.Layer.M3)

let test_process_pp () =
  let s = fmt_to_string Tech.Process.pp tech in
  Alcotest.(check bool) "names process" true (contains s "finfet");
  Alcotest.(check bool) "mentions Cu" true (contains s "Cu=5.00")

let test_axis_pp () =
  Alcotest.(check string) "horizontal" "horizontal"
    (Geom.Axis.to_string Geom.Axis.Horizontal)

let test_sizing_pp () =
  let s =
    fmt_to_string Ccgrid.Sizing.pp (Ccgrid.Sizing.compute ~total_units:512)
  in
  Alcotest.(check string) "formats" "23x23 (+17 dummies)" s

let test_placement_pp () =
  let p = Ccplace.Spiral.place ~bits:6 in
  let s = fmt_to_string Ccgrid.Placement.pp p in
  Alcotest.(check bool) "mentions style" true (contains s "spiral");
  Alcotest.(check bool) "mentions dims" true (contains s "8x8")

let test_cell_pp () =
  Alcotest.(check string) "cell" "(2, 5)"
    (fmt_to_string Ccgrid.Cell.pp (Ccgrid.Cell.make ~row:2 ~col:5))

let test_group_pp () =
  let groups = Ccroute.Group.of_placement (Ccplace.Spiral.place ~bits:6) in
  match groups with
  | g :: _ ->
    let s = fmt_to_string Ccroute.Group.pp g in
    Alcotest.(check bool) "mentions cap" true (contains s "C_0")
  | [] -> Alcotest.fail "no groups"

let test_style_pp () =
  Alcotest.(check string) "spiral" "spiral"
    (fmt_to_string Ccplace.Style.pp Ccplace.Style.Spiral);
  Alcotest.(check bool) "style equal" true
    (Ccplace.Style.equal Ccplace.Style.Rowwise Ccplace.Style.Rowwise);
  Alcotest.(check bool) "style differ" false
    (Ccplace.Style.equal Ccplace.Style.Rowwise Ccplace.Style.Spiral)

(* --- render on a doubled array --- *)

let test_render_doubled_chessboard () =
  let p = Ccplace.Chessboard.place ~bits:7 in
  let s = Ccgrid.Render.ascii p in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' s) in
  Alcotest.(check int) "16 rows" 16 (List.length lines)

(* --- dispersion bounds --- *)

let test_dispersion_overall_bounded () =
  List.iter
    (fun style ->
       let p = Ccplace.Style.place ~bits:8 style in
       let d = Ccgrid.Dispersion.overall tech p in
       Alcotest.(check bool)
         (Printf.sprintf "%s in (0, 1.6)" (Ccplace.Style.name style))
         true
         (d > 0. && d < 1.6))
    [ Ccplace.Style.Spiral; Ccplace.Style.Chessboard; Ccplace.Style.Rowwise ]

(* --- defensive error paths --- *)

let test_layout_net_bad_id () =
  let layout = Ccroute.Layout.route tech (Ccplace.Spiral.place ~bits:6) in
  Alcotest.(check bool) "bad id" true
    (try ignore (Ccroute.Layout.net layout 99); false
     with Invalid_argument _ -> true)

let test_weights_scale_bad_factor () =
  Alcotest.(check bool) "factor 0" true
    (try ignore (Ccgrid.Weights.scale [| 1; 2 |] ~by:0); false
     with Invalid_argument _ -> true)

let test_sizing_bad_total () =
  Alcotest.(check bool) "zero units" true
    (try ignore (Ccgrid.Sizing.compute ~total_units:0); false
     with Invalid_argument _ -> true)

let test_interleave_bad_weight () =
  Alcotest.(check bool) "weight 0" true
    (try ignore (Ccplace.Interleave.schedule [ ("a", 0) ]); false
     with Invalid_argument _ -> true)

let test_transfer_bit_bad_k () =
  Alcotest.(check bool) "k 0" true
    (try ignore (Dacmodel.Transfer.bit ~code:3 0); false
     with Invalid_argument _ -> true)

let test_speed_bad_bits () =
  Alcotest.(check bool) "bits 0" true
    (try ignore (Dacmodel.Speed.f3db_mhz ~bits:0 ~tau_fs:1.); false
     with Invalid_argument _ -> true)

let test_improvement_bad_base () =
  Alcotest.(check bool) "base 0" true
    (try ignore (Dacmodel.Speed.improvement_factor ~base_mhz:0. ~mhz:1.); false
     with Invalid_argument _ -> true)

let test_transfer_perturbed_bad_denominator () =
  Alcotest.(check bool) "C_T + dC_T <= 0" true
    (try
       ignore
         (Dacmodel.Transfer.perturbed ~vref:1. ~c_on:1. ~delta_on:0. ~c_t:1.
            ~delta_t:(-2.));
       false
     with Invalid_argument _ -> true)

let test_placement_cells_of_bad_id () =
  let p = Ccplace.Spiral.place ~bits:6 in
  Alcotest.(check bool) "bad id" true
    (try ignore (Ccgrid.Placement.cells_of p 7); false
     with Invalid_argument _ -> true)

(* --- cross-module consistency --- *)

let test_layout_cell_center_matches_arrays () =
  let layout = Ccroute.Layout.route tech (Ccplace.Spiral.place ~bits:6) in
  let c = Ccgrid.Cell.make ~row:2 ~col:5 in
  let p = Ccroute.Layout.cell_center layout c in
  Alcotest.(check (float 1e-12)) "x" layout.Ccroute.Layout.col_x.(5) p.Geom.Point.x;
  Alcotest.(check (float 1e-12)) "y" layout.Ccroute.Layout.row_y.(2) p.Geom.Point.y

let test_wire_length_axis_aligned () =
  let w =
    { Ccroute.Layout.w_cap = 0; w_kind = Ccroute.Layout.Trunk;
      w_layer = Tech.Layer.M3; w_ax = 1.; w_ay = 2.; w_bx = 1.; w_by = 7.;
      w_p = 1 }
  in
  Alcotest.(check (float 1e-12)) "length" 5. (Ccroute.Layout.wire_length w)

let test_flow_theta_changes_little_for_cc () =
  (* exact CC placements barely react to the gradient angle *)
  let a = Ccdac.Flow.run ~bits:6 ~theta:0. Ccplace.Style.Spiral in
  let b = Ccdac.Flow.run ~bits:6 ~theta:1.2 Ccplace.Style.Spiral in
  Alcotest.(check bool) "small angle sensitivity" true
    (Float.abs (a.Ccdac.Flow.max_inl -. b.Ccdac.Flow.max_inl) < 0.01)

let test_sweep_row_respects_tech () =
  let rows = Ccdac.Sweep.row ~tech:Tech.Process.bulk_legacy ~bits:6 () in
  List.iter
    (fun (r : Ccdac.Flow.result) ->
       Alcotest.(check string) "tech carried" "bulk-legacy"
         r.Ccdac.Flow.tech.Tech.Process.name)
    rows

let () =
  Alcotest.run "misc"
    [ ( "printers",
        [ Alcotest.test_case "layer" `Quick test_layer_pp;
          Alcotest.test_case "process" `Quick test_process_pp;
          Alcotest.test_case "axis" `Quick test_axis_pp;
          Alcotest.test_case "sizing" `Quick test_sizing_pp;
          Alcotest.test_case "placement" `Quick test_placement_pp;
          Alcotest.test_case "cell" `Quick test_cell_pp;
          Alcotest.test_case "group" `Quick test_group_pp;
          Alcotest.test_case "style" `Quick test_style_pp ] );
      ( "rendering",
        [ Alcotest.test_case "doubled chessboard" `Quick test_render_doubled_chessboard;
          Alcotest.test_case "dispersion bounds" `Quick test_dispersion_overall_bounded ] );
      ( "error paths",
        [ Alcotest.test_case "layout net" `Quick test_layout_net_bad_id;
          Alcotest.test_case "weights scale" `Quick test_weights_scale_bad_factor;
          Alcotest.test_case "sizing" `Quick test_sizing_bad_total;
          Alcotest.test_case "interleave" `Quick test_interleave_bad_weight;
          Alcotest.test_case "transfer bit" `Quick test_transfer_bit_bad_k;
          Alcotest.test_case "speed bits" `Quick test_speed_bad_bits;
          Alcotest.test_case "improvement base" `Quick test_improvement_bad_base;
          Alcotest.test_case "perturbed denominator" `Quick test_transfer_perturbed_bad_denominator;
          Alcotest.test_case "cells_of" `Quick test_placement_cells_of_bad_id ] );
      ( "consistency",
        [ Alcotest.test_case "cell center" `Quick test_layout_cell_center_matches_arrays;
          Alcotest.test_case "wire length" `Quick test_wire_length_axis_aligned;
          Alcotest.test_case "theta insensitivity" `Quick test_flow_theta_changes_little_for_cc;
          Alcotest.test_case "sweep tech" `Quick test_sweep_row_respects_tech ] ) ]
