(* Direct tests for the mirrored-assignment placement builder. *)

open Ccgrid

let counts3 = Weights.unit_counts ~bits:3 (* [|1;1;2;4|], total 8 *)

let fresh () =
  Ccplace.Builder.make ~bits:3 ~rows:3 ~cols:3 ~unit_multiplier:1
    ~counts:counts3

let test_make_rejects_small_grid () =
  Alcotest.(check bool) "grid too small" true
    (try
       ignore
         (Ccplace.Builder.make ~bits:3 ~rows:2 ~cols:2 ~unit_multiplier:1
            ~counts:counts3);
       false
     with Invalid_argument _ -> true)

let test_make_rejects_bad_counts_length () =
  Alcotest.(check bool) "length" true
    (try
       ignore
         (Ccplace.Builder.make ~bits:4 ~rows:4 ~cols:4 ~unit_multiplier:1
            ~counts:counts3);
       false
     with Invalid_argument _ -> true)

let test_assign_pair_mirrors () =
  let b = fresh () in
  let c = Cell.make ~row:0 ~col:0 in
  Ccplace.Builder.assign_pair b c 3;
  Alcotest.(check bool) "cell taken" false (Ccplace.Builder.is_free b c);
  Alcotest.(check bool) "mirror taken" false
    (Ccplace.Builder.is_free b (Ccplace.Builder.mirror b c));
  Alcotest.(check int) "budget decremented" 2 (Ccplace.Builder.remaining b 3)

let test_assign_pair_rejects_occupied () =
  let b = fresh () in
  let c = Cell.make ~row:0 ~col:0 in
  Ccplace.Builder.assign_pair b c 3;
  Alcotest.(check bool) "occupied" true
    (try Ccplace.Builder.assign_pair b c 2; false
     with Invalid_argument _ -> true)

let test_assign_pair_rejects_self_mirror () =
  let b = fresh () in
  let center = Cell.make ~row:1 ~col:1 in
  Alcotest.(check bool) "self mirror" true
    (try Ccplace.Builder.assign_pair b center 3; false
     with Invalid_argument _ -> true)

let test_assign_pair_rejects_exhausted_budget () =
  let b = fresh () in
  (* C_2 has 2 cells: one pair exhausts it *)
  Ccplace.Builder.assign_pair b (Cell.make ~row:0 ~col:0) 2;
  Alcotest.(check bool) "budget" true
    (try Ccplace.Builder.assign_pair b (Cell.make ~row:0 ~col:1) 2; false
     with Invalid_argument _ -> true)

let test_split_pair () =
  let b = fresh () in
  let c = Cell.make ~row:0 ~col:1 in
  Ccplace.Builder.assign_split_pair b c ~at:1 ~at_mirror:0;
  Alcotest.(check int) "C_1 done" 0 (Ccplace.Builder.remaining b 1);
  Alcotest.(check int) "C_0 done" 0 (Ccplace.Builder.remaining b 0)

let test_center_single () =
  let b = fresh () in
  Ccplace.Builder.assign_center_single b 0;
  Alcotest.(check bool) "centre taken" false
    (Ccplace.Builder.is_free b (Cell.make ~row:1 ~col:1));
  Alcotest.(check int) "C_0 done" 0 (Ccplace.Builder.remaining b 0)

let test_center_single_rejects_even_grid () =
  let b =
    Ccplace.Builder.make ~bits:2 ~rows:2 ~cols:2 ~unit_multiplier:1
      ~counts:(Weights.unit_counts ~bits:2)
  in
  Alcotest.(check bool) "no centre" true
    (try Ccplace.Builder.assign_center_single b 0; false
     with Invalid_argument _ -> true)

let test_reserve_center_dummy_idempotent () =
  let b = fresh () in
  Ccplace.Builder.reserve_center_dummy b;
  Ccplace.Builder.reserve_center_dummy b;
  Alcotest.(check bool) "centre reserved" false
    (Ccplace.Builder.is_free b (Cell.make ~row:1 ~col:1))

let test_finish_requires_full_budget () =
  let b = fresh () in
  Alcotest.(check bool) "unfinished rejected" true
    (try ignore (Ccplace.Builder.finish b ~style_name:"partial"); false
     with Invalid_argument _ -> true)

let test_finish_fills_dummies () =
  let b = fresh () in
  (* 3x3 grid, 8 cells of capacitors, 1 dummy at centre *)
  Ccplace.Builder.reserve_center_dummy b;
  Ccplace.Builder.assign_split_pair b (Cell.make ~row:0 ~col:0) ~at:1 ~at_mirror:0;
  Ccplace.Builder.assign_pair b (Cell.make ~row:0 ~col:1) 2;
  Ccplace.Builder.assign_pair b (Cell.make ~row:0 ~col:2) 3;
  Ccplace.Builder.assign_pair b (Cell.make ~row:1 ~col:0) 3;
  let p = Ccplace.Builder.finish b ~style_name:"manual" in
  (match Placement.validate p with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  Alcotest.(check int) "one dummy" 1 (List.length (Placement.dummy_cells p));
  Alcotest.(check string) "style" "manual" p.Placement.style_name

let test_first_free_in_order () =
  let b = fresh () in
  Ccplace.Builder.assign_pair b (Cell.make ~row:0 ~col:0) 3;
  let order =
    [ Cell.make ~row:0 ~col:0; Cell.make ~row:0 ~col:1; Cell.make ~row:0 ~col:2 ]
  in
  (match Ccplace.Builder.first_free_in b order with
   | Some c -> Alcotest.(check bool) "skips taken" true
                 (Cell.equal c (Cell.make ~row:0 ~col:1))
   | None -> Alcotest.fail "expected a free cell")

let test_first_free_in_none () =
  let b = fresh () in
  Alcotest.(check bool) "empty order" true
    (Ccplace.Builder.first_free_in b [] = None)

let () =
  Alcotest.run "builder"
    [ ( "construction",
        [ Alcotest.test_case "small grid" `Quick test_make_rejects_small_grid;
          Alcotest.test_case "bad counts" `Quick test_make_rejects_bad_counts_length ] );
      ( "assignment",
        [ Alcotest.test_case "pair mirrors" `Quick test_assign_pair_mirrors;
          Alcotest.test_case "occupied" `Quick test_assign_pair_rejects_occupied;
          Alcotest.test_case "self mirror" `Quick test_assign_pair_rejects_self_mirror;
          Alcotest.test_case "budget" `Quick test_assign_pair_rejects_exhausted_budget;
          Alcotest.test_case "split pair" `Quick test_split_pair;
          Alcotest.test_case "centre single" `Quick test_center_single;
          Alcotest.test_case "centre on even grid" `Quick test_center_single_rejects_even_grid;
          Alcotest.test_case "reserve dummy" `Quick test_reserve_center_dummy_idempotent ] );
      ( "finish",
        [ Alcotest.test_case "requires budget" `Quick test_finish_requires_full_budget;
          Alcotest.test_case "fills dummies" `Quick test_finish_fills_dummies;
          Alcotest.test_case "first free" `Quick test_first_free_in_order;
          Alcotest.test_case "first free none" `Quick test_first_free_in_none ] ) ]
