(* Tests for post-route verification (Check) and SVG export. *)

let tech = Tech.Process.finfet_12nm

let layout_of ?p_of_cap style bits =
  let p = Ccplace.Style.place ~bits style in
  Ccroute.Layout.route tech ?p_of_cap p

let spiral6 = layout_of Ccplace.Style.Spiral 6

(* --- check --- *)

let test_all_styles_clean () =
  for bits = 2 to 9 do
    List.iter
      (fun style ->
         let layout =
           layout_of ~p_of_cap:(Ccdac.Flow.default_parallel ~bits style) style
             bits
         in
         match Ccroute.Check.run layout with
         | [] -> ()
         | v :: _ ->
           Alcotest.failf "%s %d-bit: %s" (Ccplace.Style.name style) bits
             (Format.asprintf "%a" Ccroute.Check.pp_violation v))
      (Ccplace.Style.Spiral :: Ccplace.Style.Chessboard :: Ccplace.Style.Rowwise
       :: Ccplace.Style.block_family ~bits)
  done

let test_assert_clean_passes () = Ccroute.Check.assert_clean spiral6

let test_detects_corrupted_parallel () =
  (* forge a layout with an inconsistent via bundle *)
  let bad_via =
    { Ccroute.Layout.v_cap = 6; v_x = 1.; v_y = 1.; v_p = 3 }
  in
  let corrupted =
    { spiral6 with Ccroute.Layout.vias = bad_via :: spiral6.Ccroute.Layout.vias }
  in
  let violations = Ccroute.Check.run corrupted in
  Alcotest.(check bool) "parallel-consistency caught" true
    (List.exists
       (fun (v : Ccroute.Check.violation) ->
          v.Ccroute.Check.rule = "parallel-consistency")
       violations)

let test_detects_escaping_wire () =
  let bad_wire =
    { Ccroute.Layout.w_cap = 3; w_kind = Ccroute.Layout.Stub;
      w_layer = Tech.Layer.M1; w_ax = -5.; w_ay = 1.; w_bx = 1.; w_by = 1.;
      w_p = 1 }
  in
  let corrupted =
    { spiral6 with
      Ccroute.Layout.wires = bad_wire :: spiral6.Ccroute.Layout.wires }
  in
  let violations = Ccroute.Check.run corrupted in
  Alcotest.(check bool) "wire-in-outline caught" true
    (List.exists
       (fun (v : Ccroute.Check.violation) ->
          v.Ccroute.Check.rule = "wire-in-outline")
       violations)

let test_assert_clean_raises_on_corruption () =
  let bad_via = { Ccroute.Layout.v_cap = 6; v_x = 1.; v_y = 1.; v_p = 3 } in
  let corrupted =
    { spiral6 with Ccroute.Layout.vias = bad_via :: spiral6.Ccroute.Layout.vias }
  in
  Alcotest.(check bool) "raises" true
    (try Ccroute.Check.assert_clean corrupted; false
     with Invalid_argument _ -> true)

(* --- svg --- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
  m = 0 || scan 0

let test_svg_well_formed () =
  let svg = Ccroute.Svg.render spiral6 in
  Alcotest.(check bool) "opens" true (contains svg "<svg xmlns");
  Alcotest.(check bool) "closes" true (contains svg "</svg>");
  Alcotest.(check bool) "has cells" true (contains svg "<rect");
  Alcotest.(check bool) "has wires" true (contains svg "<line");
  Alcotest.(check bool) "has vias" true (contains svg "<circle");
  Alcotest.(check bool) "caption" true (contains svg "spiral 6-bit")

let test_svg_cell_count () =
  let svg = Ccroute.Svg.render spiral6 in
  let count sub =
    let rec walk i acc =
      if i + String.length sub > String.length svg then acc
      else if String.sub svg i (String.length sub) = sub then
        walk (i + 1) (acc + 1)
      else walk (i + 1) acc
    in
    walk 0 0
  in
  (* one rect per cell plus the background *)
  Alcotest.(check int) "rects" (64 + 1) (count "<rect")

let test_svg_hide_top () =
  let with_top = Ccroute.Svg.render ~show_top:true spiral6 in
  let without = Ccroute.Svg.render ~show_top:false spiral6 in
  Alcotest.(check bool) "fewer lines without top plate" true
    (String.length without < String.length with_top)

let test_svg_write_roundtrip () =
  let path = Filename.temp_file "ccdac" ".svg" in
  Ccroute.Svg.write spiral6 ~path;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "non-empty file" true (len > 1000)

let () =
  Alcotest.run "verify"
    [ ( "check",
        [ Alcotest.test_case "all styles clean" `Slow test_all_styles_clean;
          Alcotest.test_case "assert_clean" `Quick test_assert_clean_passes;
          Alcotest.test_case "bad parallel" `Quick test_detects_corrupted_parallel;
          Alcotest.test_case "escaping wire" `Quick test_detects_escaping_wire;
          Alcotest.test_case "assert raises" `Quick test_assert_clean_raises_on_corruption ] );
      ( "svg",
        [ Alcotest.test_case "well-formed" `Quick test_svg_well_formed;
          Alcotest.test_case "cell count" `Quick test_svg_cell_count;
          Alcotest.test_case "hide top" `Quick test_svg_hide_top;
          Alcotest.test_case "write" `Quick test_svg_write_roundtrip ] ) ]
