(* Tests for the verification engine: the rule registry, the stage
   checkers and their negative paths (deliberately corrupted placements,
   layouts, tech files and style configs), the post-route Check module it
   absorbs, and SVG export. *)

let tech = Tech.Process.finfet_12nm

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec walk i = i + m <= n && (String.sub s i m = sub || walk (i + 1)) in
  walk 0

let layout_of ?p_of_cap style bits =
  let p = Ccplace.Style.place ~bits style in
  Ccroute.Layout.route tech ?p_of_cap p

let spiral6 = layout_of Ccplace.Style.Spiral 6

(* deep-copy a placement so tests can corrupt it in place *)
let clone (p : Ccgrid.Placement.t) =
  { p with
    Ccgrid.Placement.assign = Array.map Array.copy p.Ccgrid.Placement.assign;
    counts = Array.copy p.Ccgrid.Placement.counts }

let cell_of p k = List.hd (Ccgrid.Placement.cells_of p k)

let set (p : Ccgrid.Placement.t) (c : Ccgrid.Cell.t) id =
  p.Ccgrid.Placement.assign.(c.Ccgrid.Cell.row).(c.Ccgrid.Cell.col) <- id

let fired diags = Verify.Diagnostic.rule_ids diags

let check_fired what expected diags =
  Alcotest.(check (list string)) what expected (fired diags)

(* --- registry --- *)

let test_registry_unique_sorted () =
  let ids = Verify.Registry.ids in
  Alcotest.(check (list string)) "sorted and unique"
    (List.sort_uniq String.compare ids)
    ids;
  Alcotest.(check bool) "non-trivial catalogue" true (List.length ids >= 20)

let test_registry_find () =
  Alcotest.(check bool) "finds place/centroid" true
    (Verify.Registry.find "place/centroid" <> None);
  Alcotest.(check bool) "unknown id" true
    (Verify.Registry.find "place/no-such-rule" = None)

let test_registry_docs () =
  List.iter
    (fun (r : Verify.Rule.t) ->
       Alcotest.(check bool) (r.Verify.Rule.id ^ " documented") true
         (String.length r.Verify.Rule.doc > 10))
    Verify.Registry.all

let test_registry_categories () =
  List.iter
    (fun (cat, prefix) ->
       let rules = Verify.Registry.by_category cat in
       Alcotest.(check bool)
         (prefix ^ " rules present") true
         (rules <> []);
       List.iter
         (fun (r : Verify.Rule.t) ->
            Alcotest.(check bool)
              (r.Verify.Rule.id ^ " prefixed " ^ prefix)
              true
              (String.length r.Verify.Rule.id > String.length prefix
               && String.sub r.Verify.Rule.id 0 (String.length prefix) = prefix))
         rules)
    [ (Verify.Rule.Placement, "place/"); (Verify.Rule.Routing, "route/");
      (Verify.Rule.Tech, "tech/"); (Verify.Rule.Style, "style/");
      (Verify.Rule.Lvs, "lvs/") ]

(* --- clean paths --- *)

let test_lint_all_styles_clean () =
  for bits = 4 to 10 do
    List.iter
      (fun style ->
         let parallel = Ccdac.Flow.default_parallel ~bits style in
         match Verify.Engine.lint ~parallel ~tech ~bits style with
         | [] -> ()
         | diags ->
           Alcotest.failf "%s %d-bit: %s" (Ccplace.Style.name style) bits
             (Verify.Report.text diags))
      (Ccplace.Style.Spiral :: Ccplace.Style.Chessboard :: Ccplace.Style.Rowwise
       :: Ccplace.Style.block_family ~bits)
  done

let test_builtin_techs_clean () =
  Alcotest.(check (list string)) "finfet" []
    (fired (Verify.Engine.check_tech Tech.Process.finfet_12nm));
  Alcotest.(check (list string)) "bulk" []
    (fired (Verify.Engine.check_tech Tech.Process.bulk_legacy))

(* --- corrupted placements --- *)

let spiral5 = Ccplace.Style.place ~bits:5 Ccplace.Style.Spiral
let spiral6p = Ccplace.Style.place ~bits:6 Ccplace.Style.Spiral

let test_bad_cell_count () =
  let p = clone spiral6p in
  set p (cell_of p 3) 2;
  check_fired "reassigned cell"
    [ "place/cell-count"; "place/centroid"; "place/mirror-symmetry" ]
    (Verify.Engine.check_placement tech p)

let test_bad_counts_array () =
  let p = clone spiral6p in
  p.Ccgrid.Placement.counts.(2) <- p.Ccgrid.Placement.counts.(2) + 1;
  check_fired "corrupted counts"
    [ "place/binary-weights"; "place/cell-count" ]
    (Verify.Engine.check_placement tech p)

let test_bad_grid_coverage () =
  let p = clone spiral5 in
  (match Ccgrid.Placement.dummy_cells p with
   | [] -> Alcotest.fail "expected dummies at 5 bits"
   | d :: _ -> set p d 99);
  check_fired "hole in the grid" [ "place/grid-coverage" ]
    (Verify.Engine.check_placement tech p)

let test_bad_centroid () =
  let p = clone spiral5 in
  let c = cell_of p 2 in
  (match Ccgrid.Placement.dummy_cells p with
   | [] -> Alcotest.fail "expected dummies at 5 bits"
   | d :: _ ->
     set p d 2;
     set p c Ccgrid.Placement.dummy);
  check_fired "off-centre capacitor"
    [ "place/centroid"; "place/mirror-symmetry" ]
    (Verify.Engine.check_placement tech p)

let test_bad_lsb_pair () =
  let p = clone spiral6p in
  let a = cell_of p 0 and b = cell_of p 2 in
  set p a 2;
  set p b 0;
  check_fired "split pair broken"
    [ "place/centroid"; "place/lsb-pair-centroid"; "place/mirror-symmetry" ]
    (Verify.Engine.check_placement tech p)

let test_bad_structure () =
  let p = { (clone spiral6p) with Ccgrid.Placement.counts = [| 1; 1 |] } in
  check_fired "broken record" [ "place/well-formed" ]
    (Verify.Engine.check_placement tech p)

let test_bad_multiplier () =
  let p = { (clone spiral6p) with Ccgrid.Placement.unit_multiplier = 3 } in
  check_fired "wrong multiplier" [ "place/binary-weights" ]
    (Verify.Engine.check_placement tech p)

let test_dispersion_bound () =
  let diags =
    Verify.Engine.check_placement ~dispersion_bound:0.5 tech spiral6p
  in
  check_fired "tight bound" [ "place/dispersion" ] diags;
  Alcotest.(check bool) "warning only, passes gate" true
    (Result.is_ok (Verify.Engine.gate diags));
  Alcotest.(check bool) "werror promotes" true
    (Result.is_error (Verify.Engine.gate ~werror:true diags))

(* --- corrupted tech --- *)

let test_bad_tech_resistance () =
  check_fired "zero via resistance" [ "tech/positive-resistance" ]
    (Verify.Engine.check_tech { tech with Tech.Process.via_resistance = 0. })

let test_bad_tech_capacitance () =
  check_fired "negative unit cap" [ "tech/positive-capacitance" ]
    (Verify.Engine.check_tech { tech with Tech.Process.unit_cap = -1. })

let test_bad_tech_stack () =
  check_fired "reversed stack" [ "tech/layer-stack" ]
    (Verify.Engine.check_tech
       { tech with Tech.Process.stack = List.rev tech.Tech.Process.stack })

let test_bad_tech_geometry () =
  check_fired "zero wire pitch" [ "tech/geometry" ]
    (Verify.Engine.check_tech { tech with Tech.Process.wire_pitch = 0. })

let test_bad_tech_statistics () =
  check_fired "rho_u out of range" [ "tech/statistics" ]
    (Verify.Engine.check_tech { tech with Tech.Process.rho_u = 1.5 })

(* --- bad style configs --- *)

let test_bad_style_core_bits () =
  check_fired "core too small" [ "style/block-core-bits" ]
    (Verify.Engine.check_style ~bits:6
       (Ccplace.Style.Block_chess { core_bits = 0; granularity = 2 }))

let test_bad_style_granularity () =
  check_fired "zero granularity" [ "style/block-granularity" ]
    (Verify.Engine.check_style ~bits:6
       (Ccplace.Style.Block_chess { core_bits = 4; granularity = 0 }))

let test_bad_style_bits () =
  check_fired "bits out of range" [ "style/bits-range" ]
    (Verify.Engine.check_style ~bits:20 Ccplace.Style.Spiral)

let test_unswept_granularity () =
  let diags =
    Verify.Engine.check_style ~bits:6
      (Ccplace.Style.Block_chess { core_bits = 4; granularity = 3 })
  in
  check_fired "unswept granularity" [ "style/block-granularity-unswept" ] diags;
  Alcotest.(check bool) "warning only" true
    (Result.is_ok (Verify.Engine.gate diags))

(* --- corrupted layouts (through the registry) --- *)

let test_bad_layout_parallel () =
  let bad_via = { Ccroute.Layout.v_cap = 6; v_x = 1.; v_y = 1.; v_p = 3 } in
  let corrupted =
    { spiral6 with Ccroute.Layout.vias = bad_via :: spiral6.Ccroute.Layout.vias }
  in
  check_fired "inconsistent via bundle" [ "route/parallel-consistency" ]
    (Verify.Engine.check_layout corrupted)

let test_bad_layout_outline () =
  let bad_wire =
    { Ccroute.Layout.w_cap = 3; w_kind = Ccroute.Layout.Stub;
      w_layer = Tech.Layer.M1; w_ax = -5.; w_ay = 1.; w_bx = 1.; w_by = 1.;
      w_p = 1 }
  in
  let corrupted =
    { spiral6 with
      Ccroute.Layout.wires = bad_wire :: spiral6.Ccroute.Layout.wires }
  in
  check_fired "escaping wire" [ "route/wire-in-outline" ]
    (Verify.Engine.check_layout corrupted)

let test_bad_layout_parallel_plan () =
  let p_of_cap = Array.copy spiral6.Ccroute.Layout.p_of_cap in
  p_of_cap.(6) <- 0;
  let corrupted = { spiral6 with Ccroute.Layout.p_of_cap } in
  check_fired "zero parallel count"
    [ "route/parallel-consistency"; "route/parallel-positive" ]
    (Verify.Engine.check_layout corrupted)

let test_bad_layout_top_plate () =
  let corrupted = { spiral6 with Ccroute.Layout.top_wires = [] } in
  check_fired "missing top plate" [ "route/top-plate" ]
    (Verify.Engine.check_layout corrupted)

(* --- the flow gate --- *)

let test_flow_rejects_corrupted () =
  let p = clone spiral6p in
  let c = cell_of p 2 in
  (* move one C_2 cell to its row neighbour's dummy-free grid? no — swap
     with a dummy is impossible at 6 bits (no dummies); swap two caps *)
  let d = cell_of p 3 in
  set p c 3;
  set p d 2;
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Ccdac.Flow.run_placement p);
       false
     with Verify.Engine.Rejected _ -> true);
  (* opting out still analyses it *)
  let r = Ccdac.Flow.run_placement ~verify:false p in
  Alcotest.(check bool) "opt-out analyses" true (r.Ccdac.Flow.f3db_mhz > 0.)

let test_flow_rejected_payload () =
  let p = clone spiral6p in
  set p (cell_of p 3) 2;
  match Ccdac.Flow.run_placement p with
  | _ -> Alcotest.fail "expected rejection"
  | exception Verify.Engine.Rejected { what; diagnostics } ->
    Alcotest.(check bool) "names artifact" true
      (String.length what > 0);
    Alcotest.(check bool) "carries errors" true
      (Verify.Engine.has_errors diagnostics)

(* --- engine helpers --- *)

let test_gate_and_worst () =
  Alcotest.(check bool) "clean gate" true (Result.is_ok (Verify.Engine.gate []));
  Alcotest.(check bool) "no worst" true (Verify.Engine.worst [] = None);
  let p = clone spiral6p in
  set p (cell_of p 3) 2;
  let diags = Verify.Engine.check_placement tech p in
  Alcotest.(check bool) "worst is error" true
    (Verify.Engine.worst diags = Some Verify.Rule.Error)

let test_report_text_and_json () =
  let p = clone spiral6p in
  set p (cell_of p 3) 2;
  let diags = Verify.Engine.check_placement tech p in
  let text = Verify.Report.text diags in
  let json = Verify.Report.json ~label:"corrupted \"spiral\"" diags in
  Alcotest.(check bool) "text has rule id" true
    (contains text "place/cell-count");
  Alcotest.(check bool) "json has version" true
    (contains json "\"version\": 1");
  Alcotest.(check bool) "json escapes label" true
    (contains json "corrupted \\\"spiral\\\"");
  Alcotest.(check bool) "json lists rule" true
    (contains json "\"rule\": \"place/cell-count\"")

(* --- check (absorbed module) --- *)

let test_all_styles_clean () =
  for bits = 2 to 9 do
    List.iter
      (fun style ->
         let layout =
           layout_of ~p_of_cap:(Ccdac.Flow.default_parallel ~bits style) style
             bits
         in
         match Ccroute.Check.run layout with
         | [] -> ()
         | v :: _ ->
           Alcotest.failf "%s %d-bit: %s" (Ccplace.Style.name style) bits
             (Format.asprintf "%a" Ccroute.Check.pp_violation v))
      (Ccplace.Style.Spiral :: Ccplace.Style.Chessboard :: Ccplace.Style.Rowwise
       :: Ccplace.Style.block_family ~bits)
  done

let test_assert_clean_passes () = Ccroute.Check.assert_clean spiral6

let test_detects_corrupted_parallel () =
  (* forge a layout with an inconsistent via bundle *)
  let bad_via =
    { Ccroute.Layout.v_cap = 6; v_x = 1.; v_y = 1.; v_p = 3 }
  in
  let corrupted =
    { spiral6 with Ccroute.Layout.vias = bad_via :: spiral6.Ccroute.Layout.vias }
  in
  let violations = Ccroute.Check.run corrupted in
  Alcotest.(check bool) "parallel-consistency caught" true
    (List.exists
       (fun (v : Ccroute.Check.violation) ->
          v.Ccroute.Check.rule = "parallel-consistency")
       violations)

let test_detects_escaping_wire () =
  let bad_wire =
    { Ccroute.Layout.w_cap = 3; w_kind = Ccroute.Layout.Stub;
      w_layer = Tech.Layer.M1; w_ax = -5.; w_ay = 1.; w_bx = 1.; w_by = 1.;
      w_p = 1 }
  in
  let corrupted =
    { spiral6 with
      Ccroute.Layout.wires = bad_wire :: spiral6.Ccroute.Layout.wires }
  in
  let violations = Ccroute.Check.run corrupted in
  Alcotest.(check bool) "wire-in-outline caught" true
    (List.exists
       (fun (v : Ccroute.Check.violation) ->
          v.Ccroute.Check.rule = "wire-in-outline")
       violations)

let test_run_sorted_deterministic () =
  (* two distinct rules corrupted at once: output must come back sorted *)
  let bad_via = { Ccroute.Layout.v_cap = 6; v_x = 1.; v_y = 1.; v_p = 3 } in
  let bad_wire =
    { Ccroute.Layout.w_cap = 3; w_kind = Ccroute.Layout.Stub;
      w_layer = Tech.Layer.M1; w_ax = -5.; w_ay = 1.; w_bx = 1.; w_by = 1.;
      w_p = 1 }
  in
  let corrupted =
    { spiral6 with
      Ccroute.Layout.vias = bad_via :: spiral6.Ccroute.Layout.vias;
      wires = bad_wire :: spiral6.Ccroute.Layout.wires }
  in
  let violations = Ccroute.Check.run corrupted in
  let rules = List.map (fun v -> v.Ccroute.Check.rule) violations in
  Alcotest.(check (list string)) "rule-id sorted"
    (List.sort String.compare rules)
    rules;
  let tally = Ccroute.Check.by_rule violations in
  Alcotest.(check bool) "tally covers every rule" true
    (List.length tally = List.length (List.sort_uniq String.compare rules))

let test_assert_clean_reports_totals () =
  let bad_via = { Ccroute.Layout.v_cap = 6; v_x = 1.; v_y = 1.; v_p = 3 } in
  let corrupted =
    { spiral6 with
      Ccroute.Layout.vias =
        bad_via :: bad_via :: spiral6.Ccroute.Layout.vias }
  in
  match Ccroute.Check.assert_clean corrupted with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "total count" true
      (contains msg "2 violations");
    Alcotest.(check bool) "per-rule breakdown" true
      (contains msg "parallel-consistency x2")

(* --- svg --- *)

let test_svg_well_formed () =
  let svg = Ccroute.Svg.render spiral6 in
  Alcotest.(check bool) "opens" true (contains svg "<svg xmlns");
  Alcotest.(check bool) "closes" true (contains svg "</svg>");
  Alcotest.(check bool) "has cells" true (contains svg "<rect");
  Alcotest.(check bool) "has wires" true (contains svg "<line");
  Alcotest.(check bool) "has vias" true (contains svg "<circle");
  Alcotest.(check bool) "caption" true (contains svg "spiral 6-bit")

let test_svg_cell_count () =
  let svg = Ccroute.Svg.render spiral6 in
  let count sub =
    let rec walk i acc =
      if i + String.length sub > String.length svg then acc
      else if String.sub svg i (String.length sub) = sub then
        walk (i + 1) (acc + 1)
      else walk (i + 1) acc
    in
    walk 0 0
  in
  (* one rect per cell plus the background *)
  Alcotest.(check int) "rects" (64 + 1) (count "<rect")

let test_svg_hide_top () =
  let with_top = Ccroute.Svg.render ~show_top:true spiral6 in
  let without = Ccroute.Svg.render ~show_top:false spiral6 in
  Alcotest.(check bool) "fewer lines without top plate" true
    (String.length without < String.length with_top)

let test_svg_write_roundtrip () =
  let path = Filename.temp_file "ccdac" ".svg" in
  Ccroute.Svg.write spiral6 ~path;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "non-empty file" true (len > 1000)

let () =
  Alcotest.run "verify"
    [ ( "registry",
        [ Alcotest.test_case "unique sorted ids" `Quick test_registry_unique_sorted;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "docs" `Quick test_registry_docs;
          Alcotest.test_case "categories" `Quick test_registry_categories ] );
      ( "clean",
        [ Alcotest.test_case "lint all styles" `Slow test_lint_all_styles_clean;
          Alcotest.test_case "builtin techs" `Quick test_builtin_techs_clean ] );
      ( "bad placement",
        [ Alcotest.test_case "cell count" `Quick test_bad_cell_count;
          Alcotest.test_case "counts array" `Quick test_bad_counts_array;
          Alcotest.test_case "grid coverage" `Quick test_bad_grid_coverage;
          Alcotest.test_case "centroid" `Quick test_bad_centroid;
          Alcotest.test_case "lsb pair" `Quick test_bad_lsb_pair;
          Alcotest.test_case "structure" `Quick test_bad_structure;
          Alcotest.test_case "multiplier" `Quick test_bad_multiplier;
          Alcotest.test_case "dispersion bound" `Quick test_dispersion_bound ] );
      ( "bad tech",
        [ Alcotest.test_case "resistance" `Quick test_bad_tech_resistance;
          Alcotest.test_case "capacitance" `Quick test_bad_tech_capacitance;
          Alcotest.test_case "stack" `Quick test_bad_tech_stack;
          Alcotest.test_case "geometry" `Quick test_bad_tech_geometry;
          Alcotest.test_case "statistics" `Quick test_bad_tech_statistics ] );
      ( "bad style",
        [ Alcotest.test_case "core bits" `Quick test_bad_style_core_bits;
          Alcotest.test_case "granularity" `Quick test_bad_style_granularity;
          Alcotest.test_case "bits range" `Quick test_bad_style_bits;
          Alcotest.test_case "unswept" `Quick test_unswept_granularity ] );
      ( "bad layout",
        [ Alcotest.test_case "parallel via" `Quick test_bad_layout_parallel;
          Alcotest.test_case "outline" `Quick test_bad_layout_outline;
          Alcotest.test_case "parallel plan" `Quick test_bad_layout_parallel_plan;
          Alcotest.test_case "top plate" `Quick test_bad_layout_top_plate ] );
      ( "flow gate",
        [ Alcotest.test_case "rejects corrupted" `Quick test_flow_rejects_corrupted;
          Alcotest.test_case "payload" `Quick test_flow_rejected_payload ] );
      ( "engine",
        [ Alcotest.test_case "gate and worst" `Quick test_gate_and_worst;
          Alcotest.test_case "reports" `Quick test_report_text_and_json ] );
      ( "check",
        [ Alcotest.test_case "all styles clean" `Slow test_all_styles_clean;
          Alcotest.test_case "assert_clean" `Quick test_assert_clean_passes;
          Alcotest.test_case "bad parallel" `Quick test_detects_corrupted_parallel;
          Alcotest.test_case "escaping wire" `Quick test_detects_escaping_wire;
          Alcotest.test_case "sorted run" `Quick test_run_sorted_deterministic;
          Alcotest.test_case "assert totals" `Quick test_assert_clean_reports_totals ] );
      ( "svg",
        [ Alcotest.test_case "well-formed" `Quick test_svg_well_formed;
          Alcotest.test_case "cell count" `Quick test_svg_cell_count;
          Alcotest.test_case "hide top" `Quick test_svg_hide_top;
          Alcotest.test_case "write" `Quick test_svg_write_roundtrip ] ) ]
