(* Tests for the common-centroid grid substrate. *)

let check_float = Alcotest.(check (float 1e-9))
let tech = Tech.Process.finfet_12nm

(* --- weights --- *)

let test_weights_counts () =
  let counts = Ccgrid.Weights.unit_counts ~bits:6 in
  Alcotest.(check (array int)) "6-bit" [| 1; 1; 2; 4; 8; 16; 32 |] counts

let test_weights_sum_is_pow2 () =
  for bits = 1 to 12 do
    let counts = Ccgrid.Weights.unit_counts ~bits in
    Alcotest.(check int)
      (Printf.sprintf "%d-bit sum" bits)
      (Ccgrid.Weights.total_units ~bits)
      (Array.fold_left ( + ) 0 counts)
  done

let test_weights_scale () =
  let doubled = Ccgrid.Weights.scale (Ccgrid.Weights.unit_counts ~bits:3) ~by:2 in
  Alcotest.(check (array int)) "doubled" [| 2; 2; 4; 8 |] doubled

let test_weights_bounds () =
  Alcotest.(check bool) "raises on 0" true
    (try ignore (Ccgrid.Weights.unit_counts ~bits:0); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "raises above max" true
    (try ignore (Ccgrid.Weights.unit_counts ~bits:(Ccgrid.Weights.max_bits + 1)); false
     with Invalid_argument _ -> true)

(* --- sizing (Eq. 17) --- *)

let test_sizing_even_bits_square () =
  List.iter
    (fun bits ->
       let s = Ccgrid.Sizing.compute ~total_units:(1 lsl bits) in
       let side = 1 lsl (bits / 2) in
       Alcotest.(check int) "rows" side s.Ccgrid.Sizing.rows;
       Alcotest.(check int) "cols" side s.Ccgrid.Sizing.cols;
       Alcotest.(check int) "no dummies" 0 s.Ccgrid.Sizing.dummies)
    [ 2; 4; 6; 8; 10 ]

let test_sizing_odd_bits () =
  (* 9-bit: 512 cells -> 23 x 23 with 17 dummies, Eq. 17 *)
  let s = Ccgrid.Sizing.compute ~total_units:512 in
  Alcotest.(check int) "rows" 23 s.Ccgrid.Sizing.rows;
  Alcotest.(check int) "cols" 23 s.Ccgrid.Sizing.cols;
  Alcotest.(check int) "dummies" 17 s.Ccgrid.Sizing.dummies

let test_sizing_covers () =
  for t = 1 to 300 do
    let s = Ccgrid.Sizing.compute ~total_units:t in
    Alcotest.(check bool) "covers" true
      (s.Ccgrid.Sizing.rows * s.Ccgrid.Sizing.cols >= t);
    Alcotest.(check int) "dummy arithmetic"
      ((s.Ccgrid.Sizing.rows * s.Ccgrid.Sizing.cols) - t)
      s.Ccgrid.Sizing.dummies
  done

(* --- cells --- *)

let test_cell_mirror_involution () =
  let c = Ccgrid.Cell.make ~row:2 ~col:5 in
  let m = Ccgrid.Cell.mirror ~rows:8 ~cols:8 c in
  Alcotest.(check bool) "involution" true
    (Ccgrid.Cell.equal c (Ccgrid.Cell.mirror ~rows:8 ~cols:8 m))

let test_cell_centered () =
  let u, v = Ccgrid.Cell.centered ~rows:8 ~cols:8 (Ccgrid.Cell.make ~row:0 ~col:0) in
  Alcotest.(check int) "u" (-7) u;
  Alcotest.(check int) "v" (-7) v;
  let u, v = Ccgrid.Cell.centered ~rows:3 ~cols:3 (Ccgrid.Cell.make ~row:1 ~col:1) in
  Alcotest.(check int) "center u" 0 u;
  Alcotest.(check int) "center v" 0 v

let test_cell_mirror_is_centered_negation () =
  let rows = 6 and cols = 7 in
  for row = 0 to rows - 1 do
    for col = 0 to cols - 1 do
      let c = Ccgrid.Cell.make ~row ~col in
      let m = Ccgrid.Cell.mirror ~rows ~cols c in
      let u, v = Ccgrid.Cell.centered ~rows ~cols c in
      let mu, mv = Ccgrid.Cell.centered ~rows ~cols m in
      Alcotest.(check int) "u neg" (-u) mu;
      Alcotest.(check int) "v neg" (-v) mv
    done
  done

let test_cell_adjacent () =
  let c = Ccgrid.Cell.make ~row:1 ~col:1 in
  Alcotest.(check bool) "right" true
    (Ccgrid.Cell.adjacent c (Ccgrid.Cell.make ~row:1 ~col:2));
  Alcotest.(check bool) "diagonal" false
    (Ccgrid.Cell.adjacent c (Ccgrid.Cell.make ~row:2 ~col:2));
  Alcotest.(check bool) "self" false (Ccgrid.Cell.adjacent c c)

let test_cell_neighbors_at_corner () =
  let ns = Ccgrid.Cell.neighbors ~rows:4 ~cols:4 (Ccgrid.Cell.make ~row:0 ~col:0) in
  Alcotest.(check int) "corner has 2" 2 (List.length ns)

let test_spiral_order_permutation () =
  let order = Ccgrid.Cell.spiral_order ~rows:5 ~cols:4 in
  Alcotest.(check int) "all cells once" 20
    (List.length (List.sort_uniq Ccgrid.Cell.compare order))

let test_spiral_order_ring_monotone () =
  let rows = 6 and cols = 6 in
  let order = Ccgrid.Cell.spiral_order ~rows ~cols in
  let rings = List.map (Ccgrid.Cell.ring ~rows ~cols) order in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "rings non-decreasing" true (non_decreasing rings)

(* --- placement --- *)

let spiral6 = Ccplace.Spiral.place ~bits:6

let test_placement_validate_ok () =
  match Ccgrid.Placement.validate spiral6 with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_placement_counts () =
  for k = 0 to 6 do
    Alcotest.(check int)
      (Printf.sprintf "C_%d cells" k)
      spiral6.Ccgrid.Placement.counts.(k)
      (List.length (Ccgrid.Placement.cells_of spiral6 k))
  done

let test_placement_cap_at () =
  let cells = Ccgrid.Placement.cells_of spiral6 6 in
  List.iter
    (fun c ->
       match Ccgrid.Placement.cap_at spiral6 c with
       | Some 6 -> ()
       | Some k -> Alcotest.failf "expected C_6, got C_%d" k
       | None -> Alcotest.fail "expected C_6, got dummy")
    cells

let test_placement_positions_symmetric () =
  (* the array centre is the coordinate origin *)
  let all = ref [] in
  for row = 0 to spiral6.Ccgrid.Placement.rows - 1 do
    for col = 0 to spiral6.Ccgrid.Placement.cols - 1 do
      all :=
        Ccgrid.Placement.position tech spiral6 (Ccgrid.Cell.make ~row ~col)
        :: !all
    done
  done;
  let c = Geom.Point.centroid !all in
  check_float "centroid x" 0. c.Geom.Point.x;
  check_float "centroid y" 0. c.Geom.Point.y

let test_placement_create_rejects_bad_counts () =
  let assign = [| [| 0; 1 |]; [| 2; 2 |] |] in
  Alcotest.(check bool) "count mismatch rejected" true
    (try
       ignore
         (Ccgrid.Placement.create ~bits:2 ~rows:2 ~cols:2 ~unit_multiplier:1
            ~counts:[| 1; 1; 2 |]
            ~assign:[| assign.(0); [| 2; 0 |] |]
            ~style_name:"bad");
       false
     with Invalid_argument _ -> true)

let test_placement_create_rejects_bad_id () =
  Alcotest.(check bool) "bad id rejected" true
    (try
       ignore
         (Ccgrid.Placement.create ~bits:2 ~rows:2 ~cols:2 ~unit_multiplier:1
            ~counts:[| 1; 1; 2 |]
            ~assign:[| [| 0; 9 |]; [| 2; 2 |] |]
            ~style_name:"bad");
       false
     with Invalid_argument _ -> true)

let test_placement_out_of_bounds () =
  Alcotest.check_raises "oob" (Invalid_argument "Placement: cell out of bounds")
    (fun () ->
       ignore (Ccgrid.Placement.cap_at spiral6 (Ccgrid.Cell.make ~row:99 ~col:0)))

let test_centroid_error_zero_for_cc () =
  check_float "spiral CC exact" 0.
    (Ccgrid.Placement.max_centroid_error tech spiral6)

(* --- dispersion --- *)

let test_dispersion_chessboard_spreads_msb () =
  let chess = Ccplace.Chessboard.place ~bits:6 in
  let s_chess = Ccgrid.Dispersion.spread tech chess 6 in
  Alcotest.(check bool) "MSB spread close to array" true (s_chess > 0.8)

let test_adjacency_runs () =
  let chess = Ccplace.Chessboard.place ~bits:6 in
  (* chessboard colour class: no two cells of C_6 are 4-adjacent *)
  Alcotest.(check int) "C_6 fully dispersed"
    chess.Ccgrid.Placement.counts.(6)
    (Ccgrid.Dispersion.adjacency_runs chess 6);
  let spiral = spiral6 in
  Alcotest.(check bool) "spiral C_6 clustered" true
    (Ccgrid.Dispersion.adjacency_runs spiral 6 < 8)

let test_dispersion_single_cell_zero () =
  check_float "C_0 spread" 0. (Ccgrid.Dispersion.spread tech spiral6 0)

(* --- render --- *)

let test_render_glyphs () =
  Alcotest.(check char) "0" '0' (Ccgrid.Render.glyph 0);
  Alcotest.(check char) "9" '9' (Ccgrid.Render.glyph 9);
  Alcotest.(check char) "A" 'A' (Ccgrid.Render.glyph 10);
  Alcotest.(check char) "dummy" '.' (Ccgrid.Render.glyph Ccgrid.Placement.dummy)

let test_render_dimensions () =
  let s = Ccgrid.Render.ascii spiral6 in
  let lines = String.split_on_char '\n' s in
  let non_empty = List.filter (fun l -> l <> "") lines in
  Alcotest.(check int) "rows" spiral6.Ccgrid.Placement.rows (List.length non_empty);
  List.iter
    (fun l ->
       Alcotest.(check int) "width" ((2 * spiral6.Ccgrid.Placement.cols) - 1)
         (String.length l))
    non_empty

let test_render_highlight () =
  let s = Ccgrid.Render.ascii_highlight spiral6 ~cap:6 in
  let count_char ch str =
    String.fold_left (fun acc c -> if c = ch then acc + 1 else acc) 0 str
  in
  Alcotest.(check int) "32 highlighted" 32 (count_char '6' s)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
  m = 0 || scan 0

let test_render_legend () =
  let s = Ccgrid.Render.legend spiral6 in
  Alcotest.(check bool) "mentions MSB count" true (contains s "6:32")

(* --- properties --- *)

let prop_mirror_in_bounds =
  QCheck.Test.make ~name:"mirror stays in bounds" ~count:300
    QCheck.(quad (int_range 1 40) (int_range 1 40) small_nat small_nat)
    (fun (rows, cols, row, col) ->
       QCheck.assume (row < rows && col < cols);
       let c = Ccgrid.Cell.make ~row ~col in
       Ccgrid.Cell.in_bounds ~rows ~cols (Ccgrid.Cell.mirror ~rows ~cols c))

let prop_sizing_near_square =
  QCheck.Test.make ~name:"sizing near square" ~count:200
    QCheck.(int_range 1 4000)
    (fun t ->
       let s = Ccgrid.Sizing.compute ~total_units:t in
       s.Ccgrid.Sizing.rows >= s.Ccgrid.Sizing.cols
       && s.Ccgrid.Sizing.rows - s.Ccgrid.Sizing.cols
          <= Int.max 2 (s.Ccgrid.Sizing.rows / 2))

let () =
  Alcotest.run "ccgrid"
    [ ( "weights",
        [ Alcotest.test_case "counts" `Quick test_weights_counts;
          Alcotest.test_case "sum = 2^N" `Quick test_weights_sum_is_pow2;
          Alcotest.test_case "scale" `Quick test_weights_scale;
          Alcotest.test_case "bounds" `Quick test_weights_bounds ] );
      ( "sizing",
        [ Alcotest.test_case "even bits square" `Quick test_sizing_even_bits_square;
          Alcotest.test_case "odd bits" `Quick test_sizing_odd_bits;
          Alcotest.test_case "covers" `Quick test_sizing_covers ] );
      ( "cell",
        [ Alcotest.test_case "mirror involution" `Quick test_cell_mirror_involution;
          Alcotest.test_case "centered" `Quick test_cell_centered;
          Alcotest.test_case "mirror = negation" `Quick test_cell_mirror_is_centered_negation;
          Alcotest.test_case "adjacent" `Quick test_cell_adjacent;
          Alcotest.test_case "corner neighbors" `Quick test_cell_neighbors_at_corner;
          Alcotest.test_case "spiral permutation" `Quick test_spiral_order_permutation;
          Alcotest.test_case "spiral ring monotone" `Quick test_spiral_order_ring_monotone ] );
      ( "placement",
        [ Alcotest.test_case "validate" `Quick test_placement_validate_ok;
          Alcotest.test_case "counts" `Quick test_placement_counts;
          Alcotest.test_case "cap_at" `Quick test_placement_cap_at;
          Alcotest.test_case "positions symmetric" `Quick test_placement_positions_symmetric;
          Alcotest.test_case "rejects bad counts" `Quick test_placement_create_rejects_bad_counts;
          Alcotest.test_case "rejects bad id" `Quick test_placement_create_rejects_bad_id;
          Alcotest.test_case "out of bounds" `Quick test_placement_out_of_bounds;
          Alcotest.test_case "centroid error" `Quick test_centroid_error_zero_for_cc ] );
      ( "dispersion",
        [ Alcotest.test_case "chessboard MSB" `Quick test_dispersion_chessboard_spreads_msb;
          Alcotest.test_case "adjacency runs" `Quick test_adjacency_runs;
          Alcotest.test_case "single cell" `Quick test_dispersion_single_cell_zero ] );
      ( "render",
        [ Alcotest.test_case "glyphs" `Quick test_render_glyphs;
          Alcotest.test_case "dimensions" `Quick test_render_dimensions;
          Alcotest.test_case "highlight" `Quick test_render_highlight;
          Alcotest.test_case "legend" `Quick test_render_legend ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_mirror_in_bounds; prop_sizing_near_square ] ) ]
