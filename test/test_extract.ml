(* Tests for RC-network extraction and the Table-I metrics. *)

let tech = Tech.Process.finfet_12nm

let layout_of ?p_of_cap style bits =
  let p = Ccplace.Style.place ~bits style in
  Ccroute.Layout.route tech ?p_of_cap p

let spiral6 = layout_of Ccplace.Style.Spiral 6
let chess6 = layout_of Ccplace.Style.Chessboard 6

(* --- netbuild --- *)

let test_net_reaches_every_cell () =
  for cap = 0 to 6 do
    let net = Extract.Netbuild.build spiral6 ~cap in
    Alcotest.(check int)
      (Printf.sprintf "C_%d cells in tree" cap)
      spiral6.Ccroute.Layout.placement.Ccgrid.Placement.counts.(cap)
      (List.length net.Extract.Netbuild.cell_nodes);
    (* reachability: Elmore does not raise, i.e. the net is a tree that
       spans every node *)
    let d = Rcnet.Elmore.delays net.Extract.Netbuild.tree ~root:net.Extract.Netbuild.root in
    Alcotest.(check bool) "all delays finite" true
      (Array.for_all (fun x -> Float.is_finite x) d)
  done

let test_net_total_cap_includes_units () =
  let cap = 6 in
  let net = Extract.Netbuild.build spiral6 ~cap in
  let unit_total =
    float_of_int spiral6.Ccroute.Layout.placement.Ccgrid.Placement.counts.(cap)
    *. tech.Tech.Process.unit_cap
  in
  Alcotest.(check bool) "total >= units" true
    (Rcnet.Rctree.total_cap net.Extract.Netbuild.tree >= unit_total -. 1e-9)

let test_net_positive_delay () =
  let net = Extract.Netbuild.build spiral6 ~cap:6 in
  Alcotest.(check bool) "positive" true (Extract.Netbuild.worst_elmore_fs net > 0.)

let test_net_rejects_bad_cap () =
  Alcotest.(check bool) "bad cap" true
    (try ignore (Extract.Netbuild.build spiral6 ~cap:42); false
     with Invalid_argument _ -> true)

let test_plate_resistance_slows_net () =
  let slow_tech = { tech with Tech.Process.plate_resistance = 50. } in
  let p = Ccplace.Style.place ~bits:6 Ccplace.Style.Spiral in
  let fast = Ccroute.Layout.route tech p in
  let slow = Ccroute.Layout.route slow_tech p in
  let tau layout = Extract.Netbuild.worst_elmore_fs (Extract.Netbuild.build layout ~cap:6) in
  Alcotest.(check bool) "higher plate R, slower" true (tau slow > tau fast)

let test_parallel_wires_speed_up_net () =
  let p1 = layout_of ~p_of_cap:(fun _ -> 1) Ccplace.Style.Spiral 8 in
  let p4 = layout_of ~p_of_cap:(Ccroute.Layout.msb_parallel ~bits:8 ~p:4) Ccplace.Style.Spiral 8 in
  let tau layout = Extract.Netbuild.worst_elmore_fs (Extract.Netbuild.build layout ~cap:8) in
  Alcotest.(check bool) "parallel faster" true (tau p4 < tau p1)

(* --- parasitics --- *)

let par6 = Extract.Parasitics.extract spiral6
let par_chess = Extract.Parasitics.extract chess6

let test_parasitics_totals_are_sums () =
  let sum f = Array.fold_left (fun acc m -> acc +. f m) 0. par6.Extract.Parasitics.per_bit in
  Alcotest.(check (float 1e-6)) "wire cap"
    par6.Extract.Parasitics.total_wire_cap
    (sum (fun m -> m.Extract.Parasitics.bm_wire_cap));
  Alcotest.(check (float 1e-6)) "wirelength"
    par6.Extract.Parasitics.total_wirelength
    (sum (fun m -> m.Extract.Parasitics.bm_wirelength));
  let cut_sum =
    Array.fold_left (fun acc m -> acc + m.Extract.Parasitics.bm_via_cuts) 0
      par6.Extract.Parasitics.per_bit
  in
  Alcotest.(check int) "via cuts" par6.Extract.Parasitics.total_via_cuts cut_sum

let test_parasitics_critical_bit_is_argmax () =
  let worst =
    Array.fold_left
      (fun acc m -> Float.max acc m.Extract.Parasitics.bm_elmore_fs)
      0. par6.Extract.Parasitics.per_bit
  in
  Alcotest.(check (float 1e-9)) "critical elmore"
    worst par6.Extract.Parasitics.critical_elmore_fs;
  Alcotest.(check (float 1e-9)) "matches per-bit entry"
    worst
    par6.Extract.Parasitics.per_bit.(par6.Extract.Parasitics.critical_bit)
      .Extract.Parasitics.bm_elmore_fs

let test_parasitics_area_matches_layout () =
  Alcotest.(check (float 1e-6)) "area"
    (spiral6.Ccroute.Layout.width *. spiral6.Ccroute.Layout.height)
    par6.Extract.Parasitics.area

let test_parasitics_top_cap () =
  Alcotest.(check (float 1e-9)) "C^TS"
    (spiral6.Ccroute.Layout.top_length *. tech.Tech.Process.top_substrate_cap)
    par6.Extract.Parasitics.total_top_cap

let test_parasitics_total_resistance () =
  Array.iter
    (fun m ->
       Alcotest.(check (float 1e-9)) "R = RV + Rw"
         (m.Extract.Parasitics.bm_via_resistance
          +. m.Extract.Parasitics.bm_wire_resistance)
         (Extract.Parasitics.total_resistance m))
    par6.Extract.Parasitics.per_bit

let test_parasitics_branch_excluded () =
  (* the spiral MSB is a big connected group: its routed wirelength must be
     far below the abutment length it would otherwise include *)
  let msb = par6.Extract.Parasitics.per_bit.(6) in
  let abutment_length =
    (* >= 31 edges of ~1.77 um if branches were counted *)
    30. *. Tech.Process.cell_pitch_x tech
  in
  Alcotest.(check bool) "branch abutment not counted" true
    (msb.Extract.Parasitics.bm_wirelength < abutment_length)

let test_chessboard_via_heavy () =
  Alcotest.(check bool) "chessboard uses more vias" true
    (par_chess.Extract.Parasitics.total_via_cuts
     > 2 * par6.Extract.Parasitics.total_via_cuts / 1)

let test_coupling_nonnegative () =
  Alcotest.(check bool) "C^BB >= 0" true
    (par6.Extract.Parasitics.total_coupling_cap >= 0.);
  Alcotest.(check bool) "chessboard couples more" true
    (par_chess.Extract.Parasitics.total_coupling_cap
     > par6.Extract.Parasitics.total_coupling_cap)

let test_metrics_nonnegative () =
  Array.iter
    (fun m ->
       Alcotest.(check bool) "all >= 0" true
         (m.Extract.Parasitics.bm_via_cuts >= 0
          && m.Extract.Parasitics.bm_wirelength >= 0.
          && m.Extract.Parasitics.bm_via_resistance >= 0.
          && m.Extract.Parasitics.bm_wire_resistance >= 0.
          && m.Extract.Parasitics.bm_wire_cap >= 0.
          && m.Extract.Parasitics.bm_elmore_fs >= 0.))
    par6.Extract.Parasitics.per_bit

let prop_extract_any_config =
  QCheck.Test.make ~name:"extraction sane on random config" ~count:30
    QCheck.(pair (int_range 2 8) (int_range 0 3))
    (fun (bits, idx) ->
       let style =
         match idx with
         | 0 -> Ccplace.Style.Spiral
         | 1 -> Ccplace.Style.Chessboard
         | 2 -> Ccplace.Style.Rowwise
         | _ -> Ccplace.Style.block_default ~bits
       in
       let layout = layout_of style bits in
       let par = Extract.Parasitics.extract layout in
       par.Extract.Parasitics.critical_elmore_fs > 0.
       && par.Extract.Parasitics.area > 0.
       && par.Extract.Parasitics.total_via_cuts > 0
       && par.Extract.Parasitics.critical_bit >= 0
       && par.Extract.Parasitics.critical_bit <= bits)

let () =
  Alcotest.run "extract"
    [ ( "netbuild",
        [ Alcotest.test_case "reaches every cell" `Quick test_net_reaches_every_cell;
          Alcotest.test_case "total cap" `Quick test_net_total_cap_includes_units;
          Alcotest.test_case "positive delay" `Quick test_net_positive_delay;
          Alcotest.test_case "bad cap" `Quick test_net_rejects_bad_cap;
          Alcotest.test_case "plate R slows" `Quick test_plate_resistance_slows_net;
          Alcotest.test_case "parallel speeds" `Quick test_parallel_wires_speed_up_net ] );
      ( "parasitics",
        [ Alcotest.test_case "totals" `Quick test_parasitics_totals_are_sums;
          Alcotest.test_case "critical bit" `Quick test_parasitics_critical_bit_is_argmax;
          Alcotest.test_case "area" `Quick test_parasitics_area_matches_layout;
          Alcotest.test_case "C^TS" `Quick test_parasitics_top_cap;
          Alcotest.test_case "R total" `Quick test_parasitics_total_resistance;
          Alcotest.test_case "branch excluded" `Quick test_parasitics_branch_excluded;
          Alcotest.test_case "chessboard vias" `Quick test_chessboard_via_heavy;
          Alcotest.test_case "coupling" `Quick test_coupling_nonnegative;
          Alcotest.test_case "nonnegative" `Quick test_metrics_nonnegative ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_extract_any_config ] ) ]
