(* Tests for the SAR ADC behavioural model. *)

let tech = Tech.Process.finfet_12nm
let ideal_tech = { tech with Tech.Process.mismatch_coeff = 0.; gradient_ppm = 0. }
let spiral8 = Ccplace.Spiral.place ~bits:8

let ideal_caps bits =
  Array.map float_of_int (Ccgrid.Weights.unit_counts ~bits)
  |> Array.map (fun n -> n *. 5.)

let test_convert_ideal_endpoints () =
  let caps = ideal_caps 8 in
  Alcotest.(check int) "zero" 0 (Dacmodel.Sar.convert ~bits:8 ~caps ~vref:1. 0.001);
  Alcotest.(check int) "full scale" 255
    (Dacmodel.Sar.convert ~bits:8 ~caps ~vref:1. 0.9999)

let test_convert_ideal_midscale () =
  let caps = ideal_caps 8 in
  (* vin just above V(128) = 0.5 *)
  Alcotest.(check int) "midscale" 128
    (Dacmodel.Sar.convert ~bits:8 ~caps ~vref:1. 0.5005)

let test_convert_monotone_in_vin () =
  let caps = ideal_caps 6 in
  let prev = ref (-1) in
  for j = 0 to 200 do
    let vin = float_of_int j /. 200. in
    let code = Dacmodel.Sar.convert ~bits:6 ~caps ~vref:1. vin in
    Alcotest.(check bool) "monotone" true (code >= !prev);
    prev := code
  done

let test_convert_clamps () =
  let caps = ideal_caps 6 in
  Alcotest.(check int) "below range" 0
    (Dacmodel.Sar.convert ~bits:6 ~caps ~vref:1. (-0.5));
  Alcotest.(check int) "above range" 63
    (Dacmodel.Sar.convert ~bits:6 ~caps ~vref:1. 2.)

let test_convert_rejects_bad_caps () =
  Alcotest.(check bool) "wrong length" true
    (try ignore (Dacmodel.Sar.convert ~bits:8 ~caps:(ideal_caps 6) ~vref:1. 0.5); false
     with Invalid_argument _ -> true)

let test_capacitor_values_nominal () =
  let values = Dacmodel.Sar.capacitor_values ideal_tech spiral8 in
  Array.iteri
    (fun k v ->
       Alcotest.(check (float 1e-6))
         (Printf.sprintf "C_%d nominal" k)
         (float_of_int spiral8.Ccgrid.Placement.counts.(k)
          *. tech.Tech.Process.unit_cap)
         v)
    values

let test_capacitor_values_with_sample () =
  let sample = Array.make 9 0. in
  sample.(8) <- 1.0;
  let base = Dacmodel.Sar.capacitor_values ideal_tech spiral8 in
  let shifted = Dacmodel.Sar.capacitor_values ideal_tech ~sample spiral8 in
  Alcotest.(check (float 1e-9)) "shift applied" (base.(8) +. 1.) shifted.(8);
  Alcotest.(check (float 1e-9)) "others untouched" base.(3) shifted.(3)

let test_characterise_ideal_is_perfect () =
  let r = Dacmodel.Sar.characterise ideal_tech spiral8 in
  Alcotest.(check int) "no missing codes" 0 r.Dacmodel.Sar.missing_codes;
  Alcotest.(check bool) "INL below quantisation" true (r.Dacmodel.Sar.inl_lsb < 0.3);
  Alcotest.(check bool) "ENOB close to N" true (r.Dacmodel.Sar.enob > 7.5)

let test_characterise_mismatch_degrades () =
  (* a deliberately horrible process loses codes / linearity *)
  let bad = { tech with Tech.Process.mismatch_coeff = 0.1 } in
  let sampler_input =
    let cov =
      Capmodel.Covariance.build bad
        (Ccgrid.Placement.positions_by_cap bad spiral8)
    in
    Capmodel.Gauss.draw (Capmodel.Gauss.sampler ~seed:11 cov)
  in
  let good = Dacmodel.Sar.characterise ideal_tech spiral8 in
  let degraded =
    Dacmodel.Sar.characterise ideal_tech ~sample:sampler_input spiral8
  in
  Alcotest.(check bool) "ENOB drops" true
    (degraded.Dacmodel.Sar.enob < good.Dacmodel.Sar.enob);
  Alcotest.(check bool) "DNL grows" true
    (degraded.Dacmodel.Sar.dnl_lsb > good.Dacmodel.Sar.dnl_lsb)

let test_characterise_rejects_bad_sampling () =
  Alcotest.(check bool) "samples_per_code >= 1" true
    (try
       ignore (Dacmodel.Sar.characterise ideal_tech ~samples_per_code:0 spiral8);
       false
     with Invalid_argument _ -> true)

let prop_codes_in_range =
  QCheck.Test.make ~name:"codes always in range" ~count:50
    QCheck.(pair (int_range 2 8) (float_range (-0.5) 1.5))
    (fun (bits, vin) ->
       let caps = ideal_caps bits in
       let code = Dacmodel.Sar.convert ~bits ~caps ~vref:1. vin in
       code >= 0 && code < 1 lsl bits)

let () =
  Alcotest.run "sar"
    [ ( "convert",
        [ Alcotest.test_case "endpoints" `Quick test_convert_ideal_endpoints;
          Alcotest.test_case "midscale" `Quick test_convert_ideal_midscale;
          Alcotest.test_case "monotone" `Quick test_convert_monotone_in_vin;
          Alcotest.test_case "clamps" `Quick test_convert_clamps;
          Alcotest.test_case "bad caps" `Quick test_convert_rejects_bad_caps ] );
      ( "capacitor values",
        [ Alcotest.test_case "nominal" `Quick test_capacitor_values_nominal;
          Alcotest.test_case "sample" `Quick test_capacitor_values_with_sample ] );
      ( "characterise",
        [ Alcotest.test_case "ideal" `Quick test_characterise_ideal_is_perfect;
          Alcotest.test_case "mismatch degrades" `Quick test_characterise_mismatch_degrades;
          Alcotest.test_case "bad sampling" `Quick test_characterise_rejects_bad_sampling ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_codes_in_range ] ) ]
