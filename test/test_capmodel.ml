(* Tests for the variation models of Sec. II-C. *)

let check_float = Alcotest.(check (float 1e-9))
let tech = Tech.Process.finfet_12nm
let point ~x ~y = Geom.Point.make ~x ~y

let flat_tech = { tech with Tech.Process.gradient_ppm = 0. }

(* --- gradient --- *)

let test_gradient_at_origin () =
  check_float "t0/t0 = 1" 1. (Capmodel.Gradient.thickness_ratio tech Geom.Point.origin);
  check_float "Cu at origin" tech.Tech.Process.unit_cap
    (Capmodel.Gradient.unit_value tech Geom.Point.origin)

let test_gradient_zero_everywhere () =
  let p = point ~x:123. ~y:(-45.) in
  check_float "flat process" tech.Tech.Process.unit_cap
    (Capmodel.Gradient.unit_value flat_tech p)

let test_gradient_direction () =
  (* along theta the thickness grows, so the capacitor shrinks *)
  let theta = 0. in
  let up = Capmodel.Gradient.unit_value tech ~theta (point ~x:10. ~y:0.) in
  let down = Capmodel.Gradient.unit_value tech ~theta (point ~x:(-10.) ~y:0.) in
  Alcotest.(check bool) "smaller uphill" true (up < tech.Tech.Process.unit_cap);
  Alcotest.(check bool) "larger downhill" true (down > tech.Tech.Process.unit_cap)

let test_gradient_orthogonal_invisible () =
  (* a displacement orthogonal to theta does not change the value *)
  let theta = 0. in
  check_float "orthogonal" tech.Tech.Process.unit_cap
    (Capmodel.Gradient.unit_value tech ~theta (point ~x:0. ~y:42.))

let test_gradient_mirror_pair_nearly_cancels () =
  (* the CC principle: a mirrored pair cancels the linear gradient to
     first order; only a tiny second-order residue remains *)
  let p = point ~x:8. ~y:5. in
  let pair = [| p; Geom.Point.neg p |] in
  let shift = Capmodel.Gradient.systematic_shift tech pair in
  let single =
    Float.abs (Capmodel.Gradient.systematic_shift tech [| p |])
  in
  Alcotest.(check bool) "pair residue << single shift" true
    (Float.abs shift < single /. 100.)

let test_gradient_capacitor_value_sums () =
  let ps = [| point ~x:1. ~y:1.; point ~x:(-1.) ~y:(-1.) |] in
  let v = Capmodel.Gradient.capacitor_value flat_tech ps in
  check_float "2 Cu" (2. *. tech.Tech.Process.unit_cap) v

let test_worst_theta () =
  (* objective peaked at pi/2 *)
  let theta, value =
    Capmodel.Gradient.worst_theta ~samples:180
      ~objective:(fun th -> sin th)
  in
  Alcotest.(check bool) "near pi/2" true (Float.abs (theta -. (Float.pi /. 2.)) < 0.05);
  Alcotest.(check bool) "value near 1" true (value > 0.999)

let test_worst_theta_bad_samples () =
  Alcotest.check_raises "samples 0"
    (Invalid_argument "Gradient.worst_theta: samples must be >= 1")
    (fun () ->
       ignore (Capmodel.Gradient.worst_theta ~samples:0 ~objective:(fun _ -> 0.)))

(* --- correlation --- *)

let test_correlation_self () =
  let p = point ~x:3. ~y:4. in
  check_float "rho(A,A) = 1" 1. (Capmodel.Mismatch.correlation tech p p)

let test_correlation_decays () =
  let o = Geom.Point.origin in
  let near = Capmodel.Mismatch.correlation tech o (point ~x:1. ~y:0.) in
  let far = Capmodel.Mismatch.correlation tech o (point ~x:30. ~y:0.) in
  Alcotest.(check bool) "near > far" true (near > far);
  Alcotest.(check bool) "bounded" true (near < 1. && far > 0.)

let test_correlation_at_lc () =
  (* at distance L_c the correlation equals rho_u by Eq. 4-5 *)
  let d = tech.Tech.Process.corr_length in
  check_float "rho_u at Lc" tech.Tech.Process.rho_u
    (Capmodel.Mismatch.correlation tech Geom.Point.origin (point ~x:d ~y:0.))

let test_pair_sums () =
  let ps = [| point ~x:0. ~y:0.; point ~x:1. ~y:0. |] in
  let qs = [| point ~x:0. ~y:1. |] in
  let s_pq = Capmodel.Mismatch.pair_sum tech ps qs in
  let expected =
    Capmodel.Mismatch.correlation tech ps.(0) qs.(0)
    +. Capmodel.Mismatch.correlation tech ps.(1) qs.(0)
  in
  check_float "S_pq" expected s_pq;
  let s_p = Capmodel.Mismatch.intra_sum tech ps in
  check_float "S_p single pair"
    (Capmodel.Mismatch.correlation tech ps.(0) ps.(1))
    s_p

(* --- covariance --- *)

let square_positions =
  (* two capacitors, two cells each, on a small square *)
  [| [| point ~x:0. ~y:0.; point ~x:2. ~y:2. |];
     [| point ~x:0. ~y:2.; point ~x:2. ~y:0. |] |]

let test_covariance_symmetric () =
  let cov = Capmodel.Covariance.build tech square_positions in
  check_float "symmetry"
    (Capmodel.Covariance.covariance cov 0 1)
    (Capmodel.Covariance.covariance cov 1 0);
  Alcotest.(check int) "size" 2 (Capmodel.Covariance.size cov)

let test_covariance_diag_is_variance () =
  let cov = Capmodel.Covariance.build tech square_positions in
  check_float "diag" (Capmodel.Covariance.variance cov 0)
    (Capmodel.Covariance.covariance cov 0 0)

let test_variance_formula () =
  (* sigma_p^2 = sigma_u^2 (p + 2 S_p), Eq. 6 *)
  let cov = Capmodel.Covariance.build tech square_positions in
  let sigma2_u =
    let s = Tech.Process.sigma_u tech in
    s *. s
  in
  let s_p = Capmodel.Mismatch.intra_sum tech square_positions.(0) in
  check_float "Eq. 6" (sigma2_u *. (2. +. (2. *. s_p)))
    (Capmodel.Covariance.variance cov 0)

let test_sigma_of_subset () =
  let cov = Capmodel.Covariance.build tech square_positions in
  let s01 = Capmodel.Covariance.sigma_of_subset cov [ 0; 1 ] in
  let expected =
    sqrt
      (Capmodel.Covariance.variance cov 0
       +. Capmodel.Covariance.variance cov 1
       +. (2. *. Capmodel.Covariance.covariance cov 0 1))
  in
  check_float "subset sigma" expected s01

let test_sigma_weighted_matches_subset () =
  let cov = Capmodel.Covariance.build tech square_positions in
  let subset = Capmodel.Covariance.sigma_of_subset cov [ 0; 1 ] in
  let weighted = Capmodel.Covariance.sigma_weighted cov [ (0, 1.); (1, 1.) ] in
  check_float "weighted = subset with unit weights" subset weighted

let test_sigma_weighted_difference_smaller () =
  (* correlated capacitors: the difference has less variance than the sum *)
  let cov = Capmodel.Covariance.build tech square_positions in
  let sum = Capmodel.Covariance.sigma_weighted cov [ (0, 1.); (1, 1.) ] in
  let diff = Capmodel.Covariance.sigma_weighted cov [ (0, 1.); (1, -1.) ] in
  Alcotest.(check bool) "diff < sum" true (diff < sum)

let test_covariance_bad_index () =
  let cov = Capmodel.Covariance.build tech square_positions in
  Alcotest.check_raises "index"
    (Invalid_argument "Covariance: capacitor index out of range")
    (fun () -> ignore (Capmodel.Covariance.variance cov 5))

(* --- properties --- *)

let coord = QCheck.Gen.float_range (-30.) 30.

let positions_arb =
  (* 2-4 capacitors with 1-6 cells each *)
  let open QCheck.Gen in
  let cell = pair coord coord in
  let capacitor = list_size (int_range 1 6) cell in
  let gen = list_size (int_range 2 4) capacitor in
  QCheck.make gen

let to_positions caps =
  Array.of_list
    (List.map (fun cells ->
         Array.of_list (List.map (fun (x, y) -> point ~x ~y) cells))
       caps)

let prop_correlation_in_range =
  QCheck.Test.make ~name:"rho in (0,1]" ~count:300
    QCheck.(pair (pair (float_range (-50.) 50.) (float_range (-50.) 50.))
              (pair (float_range (-50.) 50.) (float_range (-50.) 50.)))
    (fun ((ax, ay), (bx, by)) ->
       let r =
         Capmodel.Mismatch.correlation tech (point ~x:ax ~y:ay) (point ~x:bx ~y:by)
       in
       r > 0. && r <= 1. +. 1e-12)

let prop_subset_sigma_nonneg =
  QCheck.Test.make ~name:"sigma of any subset >= 0" ~count:100 positions_arb
    (fun caps ->
       let positions = to_positions caps in
       let cov = Capmodel.Covariance.build tech positions in
       let n = Capmodel.Covariance.size cov in
       let all = List.init n (fun i -> i) in
       Capmodel.Covariance.sigma_of_subset cov all >= 0.)

let prop_weighted_sigma_nonneg =
  QCheck.Test.make ~name:"weighted sigma >= 0 (PSD-ish)" ~count:100
    (QCheck.pair positions_arb (QCheck.list_of_size (QCheck.Gen.return 4)
                                  (QCheck.float_range (-2.) 2.)))
    (fun (caps, ws) ->
       let positions = to_positions caps in
       let cov = Capmodel.Covariance.build tech positions in
       let n = Capmodel.Covariance.size cov in
       let weights =
         List.filteri (fun i _ -> i < n) ws |> List.mapi (fun i w -> (i, w))
       in
       Capmodel.Covariance.sigma_weighted cov weights >= 0.)

let () =
  Alcotest.run "capmodel"
    [ ( "gradient",
        [ Alcotest.test_case "origin" `Quick test_gradient_at_origin;
          Alcotest.test_case "zero gradient" `Quick test_gradient_zero_everywhere;
          Alcotest.test_case "direction" `Quick test_gradient_direction;
          Alcotest.test_case "orthogonal" `Quick test_gradient_orthogonal_invisible;
          Alcotest.test_case "mirror cancels" `Quick test_gradient_mirror_pair_nearly_cancels;
          Alcotest.test_case "value sums" `Quick test_gradient_capacitor_value_sums;
          Alcotest.test_case "worst theta" `Quick test_worst_theta;
          Alcotest.test_case "worst theta bad samples" `Quick test_worst_theta_bad_samples ] );
      ( "correlation",
        [ Alcotest.test_case "self" `Quick test_correlation_self;
          Alcotest.test_case "decays" `Quick test_correlation_decays;
          Alcotest.test_case "at Lc" `Quick test_correlation_at_lc;
          Alcotest.test_case "pair sums" `Quick test_pair_sums ] );
      ( "covariance",
        [ Alcotest.test_case "symmetric" `Quick test_covariance_symmetric;
          Alcotest.test_case "diag" `Quick test_covariance_diag_is_variance;
          Alcotest.test_case "Eq. 6" `Quick test_variance_formula;
          Alcotest.test_case "subset sigma" `Quick test_sigma_of_subset;
          Alcotest.test_case "weighted = subset" `Quick test_sigma_weighted_matches_subset;
          Alcotest.test_case "difference < sum" `Quick test_sigma_weighted_difference_smaller;
          Alcotest.test_case "bad index" `Quick test_covariance_bad_index ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_correlation_in_range;
            prop_subset_sigma_nonneg;
            prop_weighted_sigma_nonneg ] ) ]
