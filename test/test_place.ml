(* Tests for the placement algorithms of Sec. IV-A. *)

let tech = Tech.Process.finfet_12nm

let all_styles bits =
  Ccplace.Style.Spiral :: Ccplace.Style.Chessboard :: Ccplace.Style.Rowwise
  :: Ccplace.Style.block_family ~bits

let check_valid p =
  match Ccgrid.Placement.validate p with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* every style, every bit count: well-formed and exactly common-centroid *)
let test_all_styles_valid () =
  for bits = 2 to 10 do
    List.iter
      (fun style ->
         let p = Ccplace.Style.place ~bits style in
         check_valid p;
         Alcotest.(check int) "bits" bits p.Ccgrid.Placement.bits)
      (all_styles bits)
  done

let test_all_styles_common_centroid () =
  for bits = 2 to 9 do
    List.iter
      (fun style ->
         let p = Ccplace.Style.place ~bits style in
         let err = Ccgrid.Placement.max_centroid_error tech p in
         if err > 1e-9 then
           Alcotest.failf "%s %d-bit centroid error %g"
             (Ccplace.Style.name style) bits err)
      (all_styles bits)
  done

let test_c0_c1_diagonally_opposite () =
  (* C_0 and C_1 are placed at mirrored cells for every style *)
  for bits = 2 to 9 do
    List.iter
      (fun style ->
         let p = Ccplace.Style.place ~bits style in
         if p.Ccgrid.Placement.unit_multiplier = 1 then begin
           match
             ( Ccgrid.Placement.cells_of p 0,
               Ccgrid.Placement.cells_of p 1 )
           with
           | [ c0 ], [ c1 ] ->
             let m =
               Ccgrid.Cell.mirror ~rows:p.Ccgrid.Placement.rows
                 ~cols:p.Ccgrid.Placement.cols c0
             in
             if not (Ccgrid.Cell.equal m c1) then
               Alcotest.failf "%s %d-bit: C_0/C_1 not mirrored"
                 (Ccplace.Style.name style) bits
           | _ -> Alcotest.fail "C_0/C_1 expected single cells"
         end)
      (all_styles bits)
  done

let test_determinism () =
  List.iter
    (fun style ->
       let a = Ccplace.Style.place ~bits:7 style in
       let b = Ccplace.Style.place ~bits:7 style in
       Alcotest.(check bool) (Ccplace.Style.name style) true
         (a.Ccgrid.Placement.assign = b.Ccgrid.Placement.assign))
    (all_styles 7)

(* --- spiral --- *)

let test_spiral_lsb_near_center () =
  let p = Ccplace.Spiral.place ~bits:8 in
  let rows = p.Ccgrid.Placement.rows and cols = p.Ccgrid.Placement.cols in
  let avg_ring k =
    let cells = Ccgrid.Placement.cells_of p k in
    let sum =
      List.fold_left (fun acc c -> acc + Ccgrid.Cell.ring ~rows ~cols c) 0 cells
    in
    float_of_int sum /. float_of_int (List.length cells)
  in
  (* the spiral walks outward: average ring index grows with the index *)
  Alcotest.(check bool) "C_2 nearer than C_8" true (avg_ring 2 < avg_ring 8);
  Alcotest.(check bool) "C_4 nearer than C_7" true (avg_ring 4 < avg_ring 7)

let test_spiral_msb_clustered () =
  let p = Ccplace.Spiral.place ~bits:8 in
  Alcotest.(check bool) "few C_8 groups" true
    (Ccgrid.Dispersion.adjacency_runs p 8 <= 4)

(* --- chessboard --- *)

let test_chessboard_msb_on_one_colour () =
  let p = Ccplace.Chessboard.place ~bits:6 in
  let cells = Ccgrid.Placement.cells_of p 6 in
  let parities =
    List.sort_uniq compare
      (List.map (fun (c : Ccgrid.Cell.t) -> (c.Ccgrid.Cell.row + c.Ccgrid.Cell.col) mod 2) cells)
  in
  Alcotest.(check int) "single colour" 1 (List.length parities)

let test_chessboard_no_adjacent_msb () =
  let p = Ccplace.Chessboard.place ~bits:8 in
  Alcotest.(check int) "C_8 singletons"
    p.Ccgrid.Placement.counts.(8)
    (Ccgrid.Dispersion.adjacency_runs p 8)

let test_chessboard_odd_bits_doubles () =
  List.iter
    (fun bits ->
       let p = Ccplace.Chessboard.place ~bits in
       Alcotest.(check int) "multiplier" 2 p.Ccgrid.Placement.unit_multiplier;
       Alcotest.(check int) "cells doubled"
         (2 * Ccgrid.Weights.total_units ~bits)
         (p.Ccgrid.Placement.rows * p.Ccgrid.Placement.cols))
    [ 3; 5; 7; 9 ]

let test_chessboard_even_bits_not_doubled () =
  let p = Ccplace.Chessboard.place ~bits:8 in
  Alcotest.(check int) "multiplier" 1 p.Ccgrid.Placement.unit_multiplier

let test_chessboard_rank_halves () =
  (* the first rank bucket is exactly one chessboard colour *)
  let rows = 8 and cols = 8 in
  let black, white =
    let cells = ref [] in
    for row = 0 to rows - 1 do
      for col = 0 to cols - 1 do
        cells := Ccgrid.Cell.make ~row ~col :: !cells
      done
    done;
    List.partition
      (fun c -> Ccplace.Chessboard.rank ~rows ~cols c < 0.5)
      !cells
  in
  Alcotest.(check int) "half" 32 (List.length black);
  Alcotest.(check int) "half" 32 (List.length white);
  List.iter
    (fun (c : Ccgrid.Cell.t) ->
       Alcotest.(check int) "colour" 0 ((c.Ccgrid.Cell.row + c.Ccgrid.Cell.col) mod 2))
    black

let test_chessboard_rank_range () =
  let rows = 16 and cols = 16 in
  for row = 0 to rows - 1 do
    for col = 0 to cols - 1 do
      let r = Ccplace.Chessboard.rank ~rows ~cols (Ccgrid.Cell.make ~row ~col) in
      Alcotest.(check bool) "in [0,1)" true (r >= 0. && r < 1.)
    done
  done

(* --- block chessboard --- *)

let test_block_core_is_centered () =
  let p = Ccplace.Block_chess.place ~bits:6 ~core_bits:4 ~granularity:2 () in
  (* all of C_0..C_4 sit within the centre 4x4 of the 8x8 array *)
  for k = 0 to 4 do
    List.iter
      (fun (c : Ccgrid.Cell.t) ->
         Alcotest.(check bool)
           (Printf.sprintf "C_%d cell (%d,%d) in core" k c.Ccgrid.Cell.row c.Ccgrid.Cell.col)
           true
           (c.Ccgrid.Cell.row >= 2 && c.Ccgrid.Cell.row <= 5
            && c.Ccgrid.Cell.col >= 2 && c.Ccgrid.Cell.col <= 5))
      (Ccgrid.Placement.cells_of p k)
  done

let test_block_corridor_msb_only () =
  let p = Ccplace.Block_chess.place ~bits:6 ~core_bits:4 ~granularity:2 () in
  (* the outer corridor holds only C_5, C_6 (and dummies) *)
  for row = 0 to 7 do
    for col = 0 to 7 do
      let inside = row >= 2 && row <= 5 && col >= 2 && col <= 5 in
      if not inside then begin
        match Ccgrid.Placement.cap_at p (Ccgrid.Cell.make ~row ~col) with
        | Some k when k < 5 -> Alcotest.failf "C_%d leaked to corridor" k
        | Some _ | None -> ()
      end
    done
  done

let test_block_granularity_changes_clustering () =
  let runs g =
    let p = Ccplace.Block_chess.place ~bits:8 ~core_bits:6 ~granularity:g () in
    Ccgrid.Dispersion.adjacency_runs p 8
  in
  Alcotest.(check bool) "coarser blocks, fewer groups" true (runs 8 <= runs 1)

let test_block_rejects_bad_config () =
  Alcotest.(check bool) "core too big" true
    (try ignore (Ccplace.Block_chess.place ~bits:6 ~core_bits:6 ~granularity:2 ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "granularity 0" true
    (try ignore (Ccplace.Block_chess.place ~bits:6 ~core_bits:4 ~granularity:0 ()); false
     with Invalid_argument _ -> true)

let test_block_family_nonempty () =
  for bits = 3 to 10 do
    Alcotest.(check bool) "family" true
      (List.length (Ccplace.Style.block_family ~bits) >= 2)
  done

(* --- rowwise --- *)

let test_rowwise_moderate_dispersion () =
  let row = Ccplace.Rowwise.place ~bits:8 in
  let chess = Ccplace.Chessboard.place ~bits:8 in
  let spiral = Ccplace.Spiral.place ~bits:8 in
  let runs p = Ccgrid.Dispersion.adjacency_runs p 8 in
  Alcotest.(check bool) "more groups than spiral" true (runs row > runs spiral);
  Alcotest.(check bool) "fewer groups than chessboard" true (runs row < runs chess)

(* --- interleave --- *)

let test_interleave_schedule_counts () =
  let seq = Ccplace.Interleave.schedule [ ("a", 4); ("b", 2) ] in
  Alcotest.(check int) "length" 6 (List.length seq);
  Alcotest.(check int) "a count" 4
    (List.length (List.filter (( = ) "a") seq));
  Alcotest.(check int) "b count" 2
    (List.length (List.filter (( = ) "b") seq))

let test_interleave_even_spacing () =
  (* 2:1 -> no three consecutive identical items *)
  let seq = Ccplace.Interleave.schedule [ ("a", 8); ("b", 4) ] in
  let rec no_triple = function
    | a :: (b :: c :: _ as rest) -> not (a = b && b = c) && no_triple rest
    | [ _; _ ] | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "no aaa" true (no_triple seq)

let test_interleave_next_exhausts () =
  let items = [| ("x", 2); ("y", 1) |] in
  let taken = [| 2; 1 |] in
  Alcotest.(check bool) "exhausted" true
    (Ccplace.Interleave.next items taken = None)

let prop_interleave_counts =
  QCheck.Test.make ~name:"schedule preserves weights" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 5) (int_range 1 20))
    (fun weights ->
       let items = List.mapi (fun i w -> (i, w)) weights in
       let seq = Ccplace.Interleave.schedule items in
       List.for_all
         (fun (tag, w) -> List.length (List.filter (( = ) tag) seq) = w)
         items)

let prop_any_style_any_bits_valid =
  QCheck.Test.make ~name:"placement valid for random config" ~count:60
    QCheck.(pair (int_range 2 9) (int_range 0 3))
    (fun (bits, style_idx) ->
       let style =
         match style_idx with
         | 0 -> Ccplace.Style.Spiral
         | 1 -> Ccplace.Style.Chessboard
         | 2 -> Ccplace.Style.Rowwise
         | _ -> Ccplace.Style.block_default ~bits
       in
       let p = Ccplace.Style.place ~bits style in
       Ccgrid.Placement.validate p = Ok ()
       && Ccgrid.Placement.max_centroid_error tech p < 1e-9)

let () =
  Alcotest.run "ccplace"
    [ ( "all styles",
        [ Alcotest.test_case "valid" `Quick test_all_styles_valid;
          Alcotest.test_case "common centroid" `Quick test_all_styles_common_centroid;
          Alcotest.test_case "C0/C1 mirrored" `Quick test_c0_c1_diagonally_opposite;
          Alcotest.test_case "deterministic" `Quick test_determinism ] );
      ( "spiral",
        [ Alcotest.test_case "LSB near centre" `Quick test_spiral_lsb_near_center;
          Alcotest.test_case "MSB clustered" `Quick test_spiral_msb_clustered ] );
      ( "chessboard",
        [ Alcotest.test_case "MSB one colour" `Quick test_chessboard_msb_on_one_colour;
          Alcotest.test_case "no adjacent MSB" `Quick test_chessboard_no_adjacent_msb;
          Alcotest.test_case "odd doubles" `Quick test_chessboard_odd_bits_doubles;
          Alcotest.test_case "even not doubled" `Quick test_chessboard_even_bits_not_doubled;
          Alcotest.test_case "rank halves" `Quick test_chessboard_rank_halves;
          Alcotest.test_case "rank range" `Quick test_chessboard_rank_range ] );
      ( "block chessboard",
        [ Alcotest.test_case "core centred" `Quick test_block_core_is_centered;
          Alcotest.test_case "corridor MSB only" `Quick test_block_corridor_msb_only;
          Alcotest.test_case "granularity" `Quick test_block_granularity_changes_clustering;
          Alcotest.test_case "rejects bad config" `Quick test_block_rejects_bad_config;
          Alcotest.test_case "family nonempty" `Quick test_block_family_nonempty ] );
      ( "rowwise",
        [ Alcotest.test_case "moderate dispersion" `Quick test_rowwise_moderate_dispersion ] );
      ( "interleave",
        [ Alcotest.test_case "counts" `Quick test_interleave_schedule_counts;
          Alcotest.test_case "spacing" `Quick test_interleave_even_spacing;
          Alcotest.test_case "exhaustion" `Quick test_interleave_next_exhausts ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_interleave_counts; prop_any_style_any_bits_valid ] ) ]
