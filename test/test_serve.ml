(* Tests for the placement service: request validation and structured
   errors, the verify gate with pinned rule ids, cache byte-identity
   (memory tier, disk tier, and across JSON field reordering), the
   daemon's SIGTERM drain, and the ledger's advisory append lock under
   concurrent writer processes.

   The daemon and the ledger writers are real child processes: we
   re-exec this test binary with a sentinel argv (forking an OCaml 5
   runtime is unsafe once domains exist), the same trick bench/main.ml
   uses for its serve artefact. *)

let tech = Tech.Process.finfet_12nm

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
  m = 0 || scan 0

let temp_name prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  path

(* --- child modes (argv sentinels, handled before Alcotest runs) --- *)

let daemon_child socket =
  let engine = Serve.Engine.create ~jobs:1 () in
  (* batch=1 so a burst of requests stays queued across loop
     iterations — the state the drain guarantee is about *)
  let stats =
    Serve.Daemon.run ~batch:1 ~engine (Serve.Daemon.Unix_path socket)
  in
  Serve.Engine.shutdown engine;
  exit (if stats.Serve.Daemon.drained then 0 else 1)

let ledger_child path count =
  let r = Ccdac.Flow.run ~tech ~bits:2 Ccplace.Style.Spiral in
  let record = Qor.Record.of_result r in
  for _ = 1 to count do
    Qor.Ledger.append ~path record
  done;
  exit 0

let () =
  match Array.to_list Sys.argv with
  | _ :: "serve-daemon-child" :: socket :: _ -> daemon_child socket
  | _ :: "ledger-child" :: path :: count :: _ ->
    ledger_child path (int_of_string count)
  | _ -> ()

let spawn_child args =
  let exe = Sys.executable_name in
  Unix.create_process exe
    (Array.of_list (exe :: args))
    Unix.stdin Unix.stdout Unix.stderr

let wait_exit_code pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED code -> code
  | _, Unix.WSIGNALED s -> Alcotest.failf "child killed by signal %d" s
  | _, Unix.WSTOPPED s -> Alcotest.failf "child stopped by signal %d" s

(* --- engine: protocol behaviour without a socket --- *)

let engine = lazy (Serve.Engine.create ~jobs:1 ())

let handle line = Serve.Engine.handle_line (Lazy.force engine) line

let test_malformed () =
  let o = handle "this is not json" in
  Alcotest.(check (option string)) "code" (Some "malformed") o.Serve.Engine.code;
  Alcotest.(check bool) "error envelope" true
    (contains o.Serve.Engine.line {|"status":"error"|});
  Alcotest.(check bool) "code in body" true
    (contains o.Serve.Engine.line {|"code": "malformed"|})

let test_invalid_request () =
  let o = handle {|{"style":"spiral","bits":1}|} in
  Alcotest.(check (option string)) "bits too small" (Some "invalid-request")
    o.Serve.Engine.code;
  let o = handle {|{"style":"spiral","bits":4,"wat":1}|} in
  Alcotest.(check (option string)) "unknown field" (Some "invalid-request")
    o.Serve.Engine.code;
  Alcotest.(check bool) "names the field" true
    (contains o.Serve.Engine.line "wat");
  let o = handle {|{"style":"mosaic","bits":4}|} in
  Alcotest.(check (option string)) "unknown style" (Some "invalid-request")
    o.Serve.Engine.code

let test_verify_rejected_rules () =
  let o = handle {|{"style":"spiral","bits":4,"overrides":{"unit_cap":-1}}|} in
  Alcotest.(check (option string)) "code" (Some "verify-rejected")
    o.Serve.Engine.code;
  (* the fired rule ids are part of the wire contract — pinned *)
  Alcotest.(check bool) "pinned rule id" true
    (contains o.Serve.Engine.line {|"rules": ["tech/positive-capacitance"]|})

let test_id_echo () =
  let o = handle {|{"id":"e9","style":"spiral","bits":1}|} in
  Alcotest.(check bool) "id echoed on error" true
    (contains o.Serve.Engine.line {|"id":"e9"|});
  let o = handle {|{"id":"ok7","style":"spiral","bits":3}|} in
  Alcotest.(check (option string)) "ok" None o.Serve.Engine.code;
  Alcotest.(check bool) "id echoed on success" true
    (contains o.Serve.Engine.line {|"id":"ok7"|})

let test_cache_byte_identity () =
  let fresh = handle {|{"id":"a","style":"chessboard","bits":5,"seed":3}|} in
  let cached = handle {|{"id":"b","style":"chessboard","bits":5,"seed":3}|} in
  Alcotest.(check (option string)) "fresh ok" None fresh.Serve.Engine.code;
  Alcotest.(check bool) "first miss" false fresh.Serve.Engine.cached;
  Alcotest.(check bool) "second hit" true cached.Serve.Engine.cached;
  (* the result payload is spliced bytes, never re-encoded: a hit is
     byte-identical to the computation it stands in for *)
  Alcotest.(check (option string)) "byte-identical payload"
    fresh.Serve.Engine.payload cached.Serve.Engine.payload;
  Alcotest.(check bool) "payload present" true
    (Option.is_some fresh.Serve.Engine.payload)

let test_cache_disk_tier () =
  let dir = temp_name "serve_cache" in
  let line = {|{"style":"rowwise","bits":4,"seed":7}|} in
  let first = Serve.Engine.create ~jobs:1 ~cache_dir:dir () in
  let fresh = Serve.Engine.handle_line first line in
  Serve.Engine.shutdown first;
  (* a new engine over the same directory serves the stored bytes *)
  let second = Serve.Engine.create ~jobs:1 ~cache_dir:dir () in
  let warm = Serve.Engine.handle_line second line in
  Serve.Engine.shutdown second;
  Alcotest.(check bool) "disk hit" true warm.Serve.Engine.cached;
  Alcotest.(check (option string)) "byte-identical across restart"
    fresh.Serve.Engine.payload warm.Serve.Engine.payload;
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

(* --- cache keys: stability and sensitivity --- *)

let parse_request line =
  match Serve.Request.of_line line with
  | Ok r -> r
  | Error e -> Alcotest.failf "request rejected: %s" e.Serve.Request.detail

let key_of (r : Serve.Request.t) =
  Serve.Cache.key ~tech:r.Serve.Request.tech ~style:r.Serve.Request.style
    ~bits:r.Serve.Request.bits ~seed:r.Serve.Request.seed
    ~trials:r.Serve.Request.trials

let test_key_field_order_invariant () =
  (* same request, fields (and override fields) in different order: the
     tech hash and therefore the content address must not move *)
  let a =
    parse_request
      {|{"style":"spiral","bits":6,"seed":2,"tech":"finfet","overrides":{"unit_cap":8.0,"gradient_ppm":120.0}}|}
  in
  let b =
    parse_request
      {|{"overrides":{"gradient_ppm":120.0,"unit_cap":8.0},"tech":"finfet","seed":2,"bits":6,"style":"spiral"}|}
  in
  Alcotest.(check string) "same key" (key_of a) (key_of b)

let test_key_sensitivity () =
  let base = {|{"style":"spiral","bits":6,"seed":2}|} in
  let k = key_of (parse_request base) in
  let differs label line =
    Alcotest.(check bool) label true
      (not (String.equal k (key_of (parse_request line))))
  in
  differs "bits" {|{"style":"spiral","bits":7,"seed":2}|};
  differs "style" {|{"style":"rowwise","bits":6,"seed":2}|};
  differs "seed" {|{"style":"spiral","bits":6,"seed":3}|};
  differs "trials" {|{"style":"spiral","bits":6,"seed":2,"trials":10}|};
  differs "tech override"
    {|{"style":"spiral","bits":6,"seed":2,"overrides":{"unit_cap":9.0}}|}

(* --- daemon: SIGTERM drains queued requests --- *)

let test_sigterm_drains () =
  let socket = temp_name "serve_sock" in
  let pid = spawn_child [ "serve-daemon-child"; socket ] in
  let rec wait_up n =
    if Sys.file_exists socket then ()
    else if n > 200 then begin
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid);
      Alcotest.fail "daemon did not come up"
    end
    else begin
      Unix.sleepf 0.02;
      wait_up (n + 1)
    end
  in
  wait_up 0;
  let client = Serve.Client.connect (Serve.Daemon.Unix_path socket) in
  (* one write carrying five requests: the daemon ingests them in one
     read, and with batch=1 four are still queued when the first answer
     comes back — that is the moment we deliver SIGTERM *)
  let req i =
    Printf.sprintf {|{"id":"d%d","style":"spiral","bits":4,"seed":1}|} i
  in
  Serve.Client.send client
    (String.concat "\n" (List.map req [ 1; 2; 3; 4; 5 ]));
  (match Serve.Client.recv client with
   | Some line ->
     Alcotest.(check bool) "first answered" true (contains line {|"id":"d1"|})
   | None -> Alcotest.fail "daemon closed before first response");
  Unix.kill pid Sys.sigterm;
  List.iter
    (fun i ->
       match Serve.Client.recv client with
       | Some line ->
         Alcotest.(check bool)
           (Printf.sprintf "request %d drained" i)
           true
           (contains line (Printf.sprintf {|"id":"d%d"|} i))
       | None -> Alcotest.failf "request %d dropped during drain" i)
    [ 2; 3; 4; 5 ];
  Alcotest.(check (option string)) "clean EOF after drain" None
    (Serve.Client.recv client);
  Serve.Client.close client;
  Alcotest.(check int) "daemon exited drained" 0 (wait_exit_code pid)

(* --- ledger: advisory lock serialises concurrent appenders --- *)

let test_ledger_concurrent_appends () =
  let path = temp_name "serve_ledger" in
  let writers = 4 and per_writer = 20 in
  let pids =
    List.init writers (fun _ ->
        spawn_child [ "ledger-child"; path; string_of_int per_writer ])
  in
  List.iter
    (fun pid -> Alcotest.(check int) "writer exit" 0 (wait_exit_code pid))
    pids;
  let records, complaints = Qor.Ledger.load ~path in
  Sys.remove path;
  Alcotest.(check (list string)) "no torn lines" [] complaints;
  Alcotest.(check int) "every append landed" (writers * per_writer)
    (List.length records)

(* --- serve record decoration round-trips the ledger --- *)

let test_serve_record_roundtrip () =
  let r = Ccdac.Flow.run ~tech ~bits:4 Ccplace.Style.Spiral in
  let record =
    Qor.Record.with_serve ~requests:10_000 ~throughput_rps:25000.0
      ~p50_ms:1.5 ~p95_ms:2.5 ~hit_rate:0.99
      (Qor.Record.of_result r)
  in
  let path = temp_name "serve_row" in
  Qor.Ledger.append ~path record;
  let records, complaints = Qor.Ledger.load ~path in
  Sys.remove path;
  Alcotest.(check (list string)) "clean parse" [] complaints;
  match records with
  | [ back ] ->
    Alcotest.(check int) "requests" 10_000 back.Qor.Record.serve_requests;
    Alcotest.(check (float 1e-9)) "throughput" 25000.0
      back.Qor.Record.serve_throughput_rps;
    Alcotest.(check (float 1e-9)) "p95" 2.5 back.Qor.Record.serve_p95_ms;
    Alcotest.(check (float 1e-9)) "hit rate" 0.99
      back.Qor.Record.serve_hit_rate
  | rs -> Alcotest.failf "expected one record, got %d" (List.length rs)

let () =
  Alcotest.run "serve"
    [ ( "engine",
        [ Alcotest.test_case "malformed line" `Quick test_malformed;
          Alcotest.test_case "invalid request" `Quick test_invalid_request;
          Alcotest.test_case "verify rejected, pinned rules" `Quick
            test_verify_rejected_rules;
          Alcotest.test_case "id echo" `Quick test_id_echo ] );
      ( "cache",
        [ Alcotest.test_case "byte-identical hits" `Quick
            test_cache_byte_identity;
          Alcotest.test_case "disk tier survives restart" `Quick
            test_cache_disk_tier;
          Alcotest.test_case "key ignores field order" `Quick
            test_key_field_order_invariant;
          Alcotest.test_case "key tracks every input" `Quick
            test_key_sensitivity ] );
      ( "daemon",
        [ Alcotest.test_case "sigterm drains queued requests" `Quick
            test_sigterm_drains ] );
      ( "ledger",
        [ Alcotest.test_case "concurrent appends keep whole lines" `Quick
            test_ledger_concurrent_appends;
          Alcotest.test_case "serve row roundtrip" `Quick
            test_serve_record_roundtrip ] ) ]
