(* Regression pins: the constructive algorithms are deterministic, so key
   structural facts of canonical layouts are pinned exactly.  A failure
   here means the placement or router behaviour changed — update the pins
   deliberately if the change is intended. *)

let tech = Tech.Process.finfet_12nm

let spiral6 = lazy (Ccroute.Layout.route tech (Ccplace.Spiral.place ~bits:6))

let test_spiral6_group_structure () =
  let layout = Lazy.force spiral6 in
  let groups_of k =
    List.length (Ccroute.Layout.net layout k).Ccroute.Layout.cn_groups
  in
  (* C_6 is the periphery: one connected component; C_2 is the innermost
     mirrored pair: two singletons *)
  Alcotest.(check int) "C_6 one group" 1 (groups_of 6);
  Alcotest.(check int) "C_2 two groups" 2 (groups_of 2);
  Alcotest.(check int) "total groups" 11
    (List.length layout.Ccroute.Layout.groups)

let test_spiral6_trunks () =
  let layout = Lazy.force spiral6 in
  Array.iter
    (fun (net : Ccroute.Layout.capnet) ->
       let trunks = List.length net.Ccroute.Layout.cn_trunks in
       if net.Ccroute.Layout.cn_cap = 6 then
         Alcotest.(check int) "C_6 single short trunk" 1 trunks
       else
         Alcotest.(check bool) "at most 2 trunks" true (trunks <= 2))
    layout.Ccroute.Layout.nets

let test_spiral6_via_budget () =
  (* the headline: spiral via cuts stay in the paper's tens, not hundreds *)
  let layout =
    Ccroute.Layout.route tech
      ~p_of_cap:(Ccroute.Layout.msb_parallel ~bits:6 ~p:2)
      (Ccplace.Spiral.place ~bits:6)
  in
  let par = Extract.Parasitics.extract layout in
  Alcotest.(check int) "via cuts pinned" 62 par.Extract.Parasitics.total_via_cuts

let test_chessboard8_track_usage () =
  let layout = Ccroute.Layout.route tech (Ccplace.Chessboard.place ~bits:8) in
  let plan = layout.Ccroute.Layout.plan in
  Alcotest.(check int) "max tracks per channel" 4
    (Array.fold_left Int.max 0 plan.Ccroute.Plan.tracks_per_channel)

let test_placement_fingerprints () =
  (* cheap whole-placement fingerprint: sum over cells of id * position *)
  let fingerprint p =
    let acc = ref 0 in
    Array.iteri
      (fun r row ->
         Array.iteri
           (fun c id -> acc := !acc + ((id + 2) * ((r * 131) + c)))
           row)
      p.Ccgrid.Placement.assign;
    !acc
  in
  Alcotest.(check int) "spiral 8" 2281884
    (fingerprint (Ccplace.Spiral.place ~bits:8));
  Alcotest.(check int) "chessboard 8" 2282809
    (fingerprint (Ccplace.Chessboard.place ~bits:8));
  Alcotest.(check int) "rowwise 8" 2281099
    (fingerprint (Ccplace.Rowwise.place ~bits:8))

let test_pipeline_determinism_through_serialisation () =
  (* save -> load -> route must reproduce the exact parasitics *)
  let p = Ccplace.Block_chess.place ~bits:7 ~granularity:4 () in
  let direct = Extract.Parasitics.extract (Ccroute.Layout.route tech p) in
  match Ccgrid.Serial.of_string (Ccgrid.Serial.to_string p) with
  | Error m -> Alcotest.failf "roundtrip failed: %s" m
  | Ok q ->
    let reloaded = Extract.Parasitics.extract (Ccroute.Layout.route tech q) in
    Alcotest.(check (float 1e-9)) "same critical delay"
      direct.Extract.Parasitics.critical_elmore_fs
      reloaded.Extract.Parasitics.critical_elmore_fs;
    Alcotest.(check int) "same vias" direct.Extract.Parasitics.total_via_cuts
      reloaded.Extract.Parasitics.total_via_cuts;
    Alcotest.(check (float 1e-9)) "same wirelength"
      direct.Extract.Parasitics.total_wirelength
      reloaded.Extract.Parasitics.total_wirelength

let test_frontier_api () =
  let points = Ccdac.Sweep.frontier ~bits:6 [ 0; 10 ] in
  match points with
  | [ (0, base); (10, refined) ] ->
    Alcotest.(check bool) "refined DNL no worse" true
      (refined.Ccdac.Flow.max_dnl <= base.Ccdac.Flow.max_dnl +. 1e-9);
    Alcotest.(check bool) "styled name" true
      (refined.Ccdac.Flow.placement.Ccgrid.Placement.style_name
       = "spiral+refined")
  | _ -> Alcotest.fail "unexpected frontier shape"

let () =
  Alcotest.run "regression"
    [ ( "pins",
        [ Alcotest.test_case "spiral groups" `Quick test_spiral6_group_structure;
          Alcotest.test_case "spiral trunks" `Quick test_spiral6_trunks;
          Alcotest.test_case "spiral vias" `Quick test_spiral6_via_budget;
          Alcotest.test_case "chessboard tracks" `Quick test_chessboard8_track_usage;
          Alcotest.test_case "fingerprints" `Quick test_placement_fingerprints ] );
      ( "pipeline",
        [ Alcotest.test_case "serialise determinism" `Quick
            test_pipeline_determinism_through_serialisation;
          Alcotest.test_case "frontier API" `Quick test_frontier_api ] ) ]
