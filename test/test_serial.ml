(* Tests for placement serialisation and technology files. *)

let tech = Tech.Process.finfet_12nm

(* --- placement serialisation --- *)

let test_roundtrip_all_styles () =
  for bits = 2 to 9 do
    List.iter
      (fun style ->
         let p = Ccplace.Style.place ~bits style in
         match Ccgrid.Serial.of_string (Ccgrid.Serial.to_string p) with
         | Ok q ->
           Alcotest.(check bool)
             (Printf.sprintf "%s %d-bit roundtrip" (Ccplace.Style.name style) bits)
             true
             (q.Ccgrid.Placement.assign = p.Ccgrid.Placement.assign
              && q.Ccgrid.Placement.counts = p.Ccgrid.Placement.counts
              && q.Ccgrid.Placement.unit_multiplier
                 = p.Ccgrid.Placement.unit_multiplier
              && q.Ccgrid.Placement.style_name = p.Ccgrid.Placement.style_name)
         | Error m -> Alcotest.failf "parse failed: %s" m)
      (Ccplace.Style.Spiral :: Ccplace.Style.Chessboard :: Ccplace.Style.Rowwise
       :: Ccplace.Style.block_family ~bits)
  done

let test_file_roundtrip () =
  let p = Ccplace.Spiral.place ~bits:6 in
  let path = Filename.temp_file "ccdac" ".cc" in
  Ccgrid.Serial.save p ~path;
  (match Ccgrid.Serial.load ~path with
   | Ok q -> Alcotest.(check bool) "file roundtrip" true
               (q.Ccgrid.Placement.assign = p.Ccgrid.Placement.assign)
   | Error m -> Alcotest.failf "load failed: %s" m);
  Sys.remove path

let test_rejects_bad_magic () =
  match Ccgrid.Serial.of_string "not a placement\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage"

let test_rejects_truncated_grid () =
  let p = Ccplace.Spiral.place ~bits:6 in
  let text = Ccgrid.Serial.to_string p in
  let truncated =
    String.concat "\n"
      (List.filteri (fun i _ -> i < 8) (String.split_on_char '\n' text))
  in
  match Ccgrid.Serial.of_string truncated with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted truncated grid"

let test_rejects_corrupted_counts () =
  let p = Ccplace.Spiral.place ~bits:6 in
  let text = Ccgrid.Serial.to_string p in
  (* claim C_6 has 33 cells: the Placement validator must catch it *)
  let corrupted =
    String.concat "\n"
      (List.map
         (fun line ->
            if String.length line >= 6 && String.sub line 0 6 = "counts" then
              "counts 1 1 2 4 8 16 33"
            else line)
         (String.split_on_char '\n' text))
  in
  match Ccgrid.Serial.of_string corrupted with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted inconsistent counts"

let test_rejects_bad_token () =
  let text =
    "ccdac-placement v1\n\
     bits 1 rows 2 cols 1 multiplier 1 style t\n\
     counts 1 1\n\
     x\n\
     0\n"
  in
  match Ccgrid.Serial.of_string text with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad token"

let test_missing_file () =
  match Ccgrid.Serial.load ~path:"/nonexistent/nope.cc" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loaded a missing file"

let test_too_many_caps_rejected () =
  let counts = Array.make 40 2 in
  let p = Ccplace.General.interleaved ~counts in
  Alcotest.(check bool) "glyph alphabet limit" true
    (try ignore (Ccgrid.Serial.to_string p); false
     with Invalid_argument _ -> true)

(* --- technology files --- *)

let test_tech_roundtrip () =
  let text = Tech.Techfile.to_string tech in
  match Tech.Techfile.of_string text with
  | Ok t ->
    Alcotest.(check string) "name" tech.Tech.Process.name t.Tech.Process.name;
    Alcotest.(check (float 1e-9)) "unit cap" tech.Tech.Process.unit_cap
      t.Tech.Process.unit_cap;
    Alcotest.(check (float 1e-9)) "via" tech.Tech.Process.via_resistance
      t.Tech.Process.via_resistance;
    let m3 t = Tech.Process.layer t Tech.Layer.M3 in
    Alcotest.(check (float 1e-9)) "m3 r" (m3 tech).Tech.Layer.resistance
      (m3 t).Tech.Layer.resistance
  | Error m -> Alcotest.failf "roundtrip parse failed: %s" m

let test_tech_overrides () =
  match
    Tech.Techfile.of_string
      "# comment\nname xyz\nunit_cap 8.5\nm1 vertical 99 0.5 0.6\n"
  with
  | Ok t ->
    Alcotest.(check string) "name" "xyz" t.Tech.Process.name;
    Alcotest.(check (float 1e-9)) "unit cap" 8.5 t.Tech.Process.unit_cap;
    let m1 = Tech.Process.layer t Tech.Layer.M1 in
    Alcotest.(check (float 1e-9)) "m1 r" 99. m1.Tech.Layer.resistance;
    Alcotest.(check bool) "m1 direction" true
      (Geom.Axis.equal m1.Tech.Layer.direction Geom.Axis.Vertical);
    (* untouched keys keep the preset *)
    Alcotest.(check (float 1e-9)) "via kept"
      Tech.Process.finfet_12nm.Tech.Process.via_resistance
      t.Tech.Process.via_resistance
  | Error m -> Alcotest.failf "parse failed: %s" m

let test_tech_theta_degrees () =
  match Tech.Techfile.of_string "gradient_theta_deg 90\n" with
  | Ok t ->
    Alcotest.(check (float 1e-9)) "radians" (Float.pi /. 2.)
      t.Tech.Process.gradient_theta
  | Error m -> Alcotest.failf "parse failed: %s" m

let test_tech_rejects_unknown_key () =
  match Tech.Techfile.of_string "frobnicate 3\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown key"

let test_tech_rejects_bad_number () =
  match Tech.Techfile.of_string "unit_cap banana\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad number"

let test_tech_rejects_out_of_range () =
  match Tech.Techfile.of_string "rho_u 1.5\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted rho_u > 1"

let test_tech_flows () =
  (* a loaded technology drives the whole flow *)
  match Tech.Techfile.of_string "unit_cap 10\nvia_resistance 80\n" with
  | Ok t ->
    let r = Ccdac.Flow.run ~tech:t ~bits:6 Ccplace.Style.Spiral in
    Alcotest.(check bool) "analysed" true (r.Ccdac.Flow.f3db_mhz > 0.)
  | Error m -> Alcotest.failf "parse failed: %s" m

let prop_serial_roundtrip_general =
  QCheck.Test.make ~name:"serialisation roundtrips random ratios" ~count:40
    QCheck.(list_of_size (QCheck.Gen.int_range 2 6) (int_range 1 10))
    (fun counts_list ->
       let counts = Array.of_list counts_list in
       let p = Ccplace.General.interleaved ~counts in
       match Ccgrid.Serial.of_string (Ccgrid.Serial.to_string p) with
       | Ok q -> q.Ccgrid.Placement.assign = p.Ccgrid.Placement.assign
       | Error _ -> false)

let () =
  Alcotest.run "serial"
    [ ( "placement",
        [ Alcotest.test_case "roundtrip all styles" `Quick test_roundtrip_all_styles;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "bad magic" `Quick test_rejects_bad_magic;
          Alcotest.test_case "truncated" `Quick test_rejects_truncated_grid;
          Alcotest.test_case "corrupted counts" `Quick test_rejects_corrupted_counts;
          Alcotest.test_case "bad token" `Quick test_rejects_bad_token;
          Alcotest.test_case "missing file" `Quick test_missing_file;
          Alcotest.test_case "glyph limit" `Quick test_too_many_caps_rejected ] );
      ( "technology files",
        [ Alcotest.test_case "roundtrip" `Quick test_tech_roundtrip;
          Alcotest.test_case "overrides" `Quick test_tech_overrides;
          Alcotest.test_case "theta degrees" `Quick test_tech_theta_degrees;
          Alcotest.test_case "unknown key" `Quick test_tech_rejects_unknown_key;
          Alcotest.test_case "bad number" `Quick test_tech_rejects_bad_number;
          Alcotest.test_case "out of range" `Quick test_tech_rejects_out_of_range;
          Alcotest.test_case "drives the flow" `Quick test_tech_flows ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_serial_roundtrip_general ] ) ]
