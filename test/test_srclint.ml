(* Tests for the source-level static analyzer (cclint): every rule pinned
   by a violating and a clean fixture snippet, zone scoping, the
   shadowed-[compare] exemption, allowlist semantics (suppression, stale
   entries, missing justifications, unknown rules) and the JSON report
   roundtrip through the Telemetry.Json parser. *)

let lib_path = "lib/fake/kernel.ml"

let fired path src =
  Srclint.Diagnostic.rule_ids (Srclint.Engine.check_string ~path src)

(* [check_fired what expected path src] pins the EXACT rule-id set a
   snippet fires — not just membership — so a new rule that starts
   over-matching old fixtures fails loudly. *)
let check_fired what expected path src =
  Alcotest.(check (list string)) what expected (fired path src)

(* --- determinism rules --- *)

let test_wall_clock () =
  check_fired "gettimeofday in lib" [ "det/wall-clock" ] lib_path
    "let now () = Unix.gettimeofday ()";
  check_fired "Sys.time in lib" [ "det/wall-clock" ] lib_path
    "let t () = Sys.time ()";
  check_fired "bench may time" [] "bench/main.ml"
    "let now () = Unix.gettimeofday ()";
  check_fired "monotonic clock is fine" [] lib_path
    "let t () = Telemetry.Clock.now_ns ()"

let test_random_self_init () =
  check_fired "self_init in lib" [ "det/random-self-init" ] lib_path
    "let () = Random.self_init ()";
  (* ambient-random is lib/bin-scoped, self-init fires everywhere *)
  check_fired "self_init in tests too" [ "det/random-self-init" ]
    "test/test_fake.ml" "let () = Random.self_init ()";
  check_fired "explicit state seeding" [] lib_path
    "let st = Random.State.make [| 42 |]"

let test_ambient_random () =
  check_fired "global Random.int" [ "det/ambient-random" ] lib_path
    "let roll () = Random.int 6";
  check_fired "global Random.float in bin" [ "det/ambient-random" ]
    "bin/tool.ml" "let x () = Random.float 1.";
  check_fired "Random.State is explicit" [] lib_path
    "let roll st = Random.State.int st 6"

let test_getenv () =
  check_fired "getenv in lib" [ "det/getenv" ] lib_path
    "let v () = Sys.getenv_opt \"HOME\"";
  check_fired "getenv at the CLI boundary" [] "bin/tool.ml"
    "let v () = Sys.getenv_opt \"HOME\""

let test_gc_mutation () =
  check_fired "Gc.compact in lib" [ "det/gc-mutation" ] lib_path
    "let shrink () = Gc.compact ()";
  check_fired "Gc.set in bin" [ "det/gc-mutation" ] "bin/tool.ml"
    "let tune () = Gc.set { (Gc.get ()) with Gc.space_overhead = 200 }";
  check_fired "Gc.full_major in lib" [ "det/gc-mutation" ] lib_path
    "let settle () = Gc.full_major ()";
  (* the accounting layer itself is the one sanctioned mutator *)
  check_fired "lib/telemetry is exempt" [] "lib/telemetry/fake.ml"
    "let settle () = Gc.full_major ()";
  (* benches may pin heap state between measurements *)
  check_fired "bench may mutate" [] "bench/main.ml"
    "let quiesce () = Gc.full_major ()";
  check_fired "read-only probes are fine" [] lib_path
    "let heap () = (Gc.quick_stat ()).Gc.heap_words"

(* --- domain-safety rules --- *)

let test_global_ref () =
  check_fired "top-level ref" [ "domain/global-ref" ] lib_path
    "let cache = ref []";
  check_fired "ref inside a function is per call" [] lib_path
    "let make () = ref []";
  check_fired "DLS initialiser ref is per domain" []
    "lib/telemetry/fake.ml"
    "let key = Domain.DLS.new_key (fun () -> ref [])"

let test_global_mutable () =
  check_fired "top-level Hashtbl" [ "domain/global-mutable" ] lib_path
    "let table = Hashtbl.create 16";
  check_fired "lazy merely defers the shared allocation"
    [ "domain/global-mutable" ] lib_path
    "let table = lazy (Hashtbl.create 16)";
  check_fired "nested module globals count too"
    [ "domain/global-mutable" ] lib_path
    "module Inner = struct let q = Queue.create () end";
  check_fired "per-call allocation is fine" [] lib_path
    "let fresh () = Hashtbl.create 16"

let test_dls () =
  check_fired "DLS outside telemetry/par" [ "domain/dls" ]
    "lib/qor/fake.ml" "let v k = Domain.DLS.get k";
  check_fired "DLS in par is sanctioned" [] "lib/par/fake.ml"
    "let v k = Domain.DLS.get k"

let test_spawn () =
  check_fired "Domain.spawn outside par" [ "domain/spawn" ] lib_path
    "let d f = Domain.spawn f";
  check_fired "Domain.spawn in bin too" [ "domain/spawn" ] "bin/tool.ml"
    "let d f = Domain.spawn f";
  check_fired "the pool library owns spawning" [] "lib/par/fake.ml"
    "let d f = Domain.spawn f";
  check_fired "tests may spawn for harness setup" [] "test/test_fake.ml"
    "let d f = Domain.spawn f";
  check_fired "joins and other Domain calls are fine" [] lib_path
    "let j d = Domain.join d"

(* --- error-handling rules --- *)

let test_catchall_swallow () =
  check_fired "with _ -> () swallows" [ "err/catchall-swallow" ] lib_path
    "let quiet f = try f () with _ -> ()";
  check_fired "binding the exn still swallows" [ "err/catchall-swallow" ]
    lib_path "let quiet f = try f () with e -> ignore e";
  check_fired "specific exception is deliberate" [] lib_path
    "let quiet f = try f () with Failure _ -> ()";
  check_fired "catch-all that re-raises is fine" [] lib_path
    "let logged f = try f () with e -> print_stats (); raise e";
  check_fired "guarded handler is not a catch-all" [] lib_path
    "let quiet f = try f () with e when is_benign e -> ()"

let test_assert_false () =
  check_fired "assert false in lib" [ "err/assert-false" ] lib_path
    "let unreachable () = assert false";
  check_fired "assert of a condition is fine" [] lib_path
    "let check x = assert (x > 0)"

let test_exit_in_lib () =
  check_fired "exit in lib" [ "err/exit-in-lib" ] lib_path
    "let die () = exit 1";
  check_fired "exit in bin is its job" [] "bin/tool.ml"
    "let die () = exit 1"

(* --- hygiene rules --- *)

let test_poly_compare () =
  check_fired "Stdlib.compare" [ "hyg/poly-compare" ] lib_path
    "let sort l = List.sort Stdlib.compare l";
  check_fired "bare compare" [ "hyg/poly-compare" ] lib_path
    "let sort l = List.sort compare l";
  check_fired "a file defining compare uses its own" [] lib_path
    "let compare a b = Int.compare a.rank b.rank\n\
     let sort l = List.sort compare l";
  check_fired "typed comparators" [] lib_path
    "let sort l = List.sort Float.compare l"

let test_float_equality () =
  check_fired "(=) against a float literal" [ "hyg/float-equality" ]
    lib_path "let zero x = x = 0.";
  check_fired "(<>) and negated literals too" [ "hyg/float-equality" ]
    lib_path "let nz x = x <> -1.5";
  check_fired "Float.equal" [] lib_path "let zero x = Float.equal x 0.";
  check_fired "int literals are fine" [] lib_path "let zero x = x = 0"

let test_print_in_lib () =
  check_fired "print_endline in lib" [ "hyg/print-in-lib" ] lib_path
    "let hello () = print_endline \"hi\"";
  check_fired "Printf.printf in lib" [ "hyg/print-in-lib" ] lib_path
    "let hello () = Printf.printf \"hi\"";
  check_fired "printing is the CLI's job" [] "bin/tool.ml"
    "let hello () = print_endline \"hi\"";
  check_fired "formatter-directed output is fine" [] lib_path
    "let pp ppf x = Format.fprintf ppf \"%d\" x"

let test_obj_magic () =
  check_fired "Obj.magic in lib" [ "hyg/obj-magic" ] lib_path
    "let cast x = Obj.magic x";
  (* hygiene rules are lib-scoped except obj-magic, which fires anywhere *)
  check_fired "Obj.magic in tests too" [ "hyg/obj-magic" ]
    "test/test_fake.ml" "let cast x = Obj.magic x";
  check_fired "no Obj" [] lib_path "let id x = x"

(* --- parse errors --- *)

let test_parse_error () =
  check_fired "garbage input" [ "meta/parse-error" ] lib_path
    "let x = ((";
  check_fired "empty file parses" [] lib_path ""

(* --- registry --- *)

let test_registry () =
  let ids = Srclint.Registry.ids in
  Alcotest.(check (list string)) "sorted and unique"
    (List.sort_uniq String.compare ids)
    ids;
  Alcotest.(check bool) "at least 12 source rules" true
    (List.length
       (List.filter
          (fun r -> r.Srclint.Rule.category <> Srclint.Rule.Meta)
          Srclint.Registry.all)
     >= 12);
  List.iter
    (fun r ->
       Alcotest.(check bool)
         (r.Srclint.Rule.id ^ " documented")
         true
         (String.length r.Srclint.Rule.doc > 20))
    Srclint.Registry.all

let test_rules_filter () =
  let m patterns id = Srclint.Registry.matches ~patterns id in
  Alcotest.(check bool) "exact id" true
    (m [ "det/wall-clock" ] "det/wall-clock");
  Alcotest.(check bool) "family prefix" true (m [ "det" ] "det/wall-clock");
  Alcotest.(check bool) "family glob" true (m [ "hyg/*" ] "hyg/poly-compare");
  Alcotest.(check bool) "no cross-family match" false
    (m [ "det" ] "hyg/poly-compare");
  Alcotest.(check (list string)) "typo detection" [ "nosuch" ]
    (Srclint.Registry.pattern_selects_nothing [ "det"; "nosuch" ])

(* --- allowlist --- *)

let parse_allowlist s =
  match Srclint.Allowlist.parse_string ~file:".cclint" s with
  | Ok a -> a
  | Error msg -> Alcotest.fail msg

let run_with_allowlist allowlist path src =
  let diags = Srclint.Engine.check_string ~path src in
  Srclint.Engine.apply_allowlist allowlist diags

let test_allowlist_suppresses () =
  let allowlist =
    parse_allowlist
      "# comment\n\
       det/wall-clock lib/fake/kernel.ml : capture time is the payload\n"
  in
  let kept, sups =
    run_with_allowlist allowlist lib_path "let now () = Unix.gettimeofday ()"
  in
  Alcotest.(check (list string)) "finding suppressed, no meta" []
    (Srclint.Diagnostic.rule_ids kept);
  Alcotest.(check int) "one entry, one match" 1
    (List.length (List.filter (fun s -> s.Srclint.Engine.matched = 1) sups))

let test_allowlist_stale () =
  let allowlist =
    parse_allowlist
      "det/wall-clock lib/fake/other.ml : this violation no longer exists\n"
  in
  let kept, _ = run_with_allowlist allowlist lib_path "let id x = x" in
  Alcotest.(check (list string)) "stale entry is itself an error"
    [ "meta/stale-suppression" ]
    (Srclint.Diagnostic.rule_ids kept)

let test_allowlist_missing_justification () =
  let allowlist =
    parse_allowlist "det/wall-clock lib/fake/kernel.ml\n" in
  let kept, _ =
    run_with_allowlist allowlist lib_path "let now () = Unix.gettimeofday ()"
  in
  Alcotest.(check (list string)) "suppressed but flagged"
    [ "meta/missing-justification" ]
    (Srclint.Diagnostic.rule_ids kept)

let test_allowlist_unknown_rule () =
  let allowlist =
    parse_allowlist "det/no-such-rule lib/fake/kernel.ml : typo\n" in
  let kept, _ = run_with_allowlist allowlist lib_path "let id x = x" in
  Alcotest.(check (list string)) "typos cannot suppress silently"
    [ "meta/unknown-rule" ]
    (Srclint.Diagnostic.rule_ids kept)

let test_allowlist_duplicate () =
  let allowlist =
    parse_allowlist
      "det/wall-clock lib/fake/kernel.ml : capture time is the payload\n\
       det/wall-clock lib/fake/kernel.ml : duplicate of the entry above\n"
  in
  let kept, sups =
    run_with_allowlist allowlist lib_path "let now () = Unix.gettimeofday ()"
  in
  (* The later duplicate gets exactly one deterministic diagnostic — not
     a coin-flip between duplicate and stale. *)
  Alcotest.(check (list string)) "duplicate entry is itself an error"
    [ "meta/duplicate-suppression" ]
    (Srclint.Diagnostic.rule_ids kept);
  (match sups with
   | [ first; second ] ->
     Alcotest.(check int) "first entry matches" 1
       first.Srclint.Engine.matched;
     Alcotest.(check int) "duplicate can never match" 0
       second.Srclint.Engine.matched
   | _ -> Alcotest.fail "expected two suppression records");
  let dup =
    List.find
      (fun (d : Srclint.Diagnostic.t) ->
         d.Srclint.Diagnostic.rule.Srclint.Rule.id
         = "meta/duplicate-suppression")
      kept
  in
  Alcotest.(check int) "anchored at the duplicate's line" 2
    dup.Srclint.Diagnostic.line

let test_allowlist_malformed () =
  match Srclint.Allowlist.parse_string ~file:".cclint" "just-one-token\n" with
  | Ok _ -> Alcotest.fail "malformed entry accepted"
  | Error msg ->
    Alcotest.(check bool) "names the line" true
      (String.length msg > 0 && String.contains msg '1')

(* --- committed .cclint discipline --- *)

let test_committed_allowlist_is_justified () =
  (* The allowlist the repo actually ships must parse, and every entry
     must carry a justification long enough to mean something. *)
  let path = "../.cclint" in
  if Sys.file_exists path then begin
    match Srclint.Allowlist.load path with
    | Error msg -> Alcotest.fail msg
    | Ok a ->
      List.iter
        (fun (e : Srclint.Allowlist.entry) ->
           Alcotest.(check bool)
             (e.Srclint.Allowlist.rule_id ^ " on "
              ^ e.Srclint.Allowlist.path ^ " justified")
             true
             (String.length e.Srclint.Allowlist.justification > 20))
        a.Srclint.Allowlist.entries
  end

(* --- JSON report roundtrip --- *)

let test_json_roundtrip () =
  let diags =
    Srclint.Engine.check_string ~path:lib_path
      "let now () = Unix.gettimeofday ()\nlet cache = ref []"
  in
  let allowlist =
    parse_allowlist "domain/global-ref lib/fake/kernel.ml : test fixture\n"
  in
  let diagnostics, suppressions =
    Srclint.Engine.apply_allowlist allowlist diags
  in
  let result =
    { Srclint.Engine.files_scanned = 1;
      diagnostics = Srclint.Diagnostic.sort diagnostics;
      suppressions }
  in
  match Telemetry.Json.parse (Srclint.Report.json result) with
  | Error msg -> Alcotest.fail ("report is not valid JSON: " ^ msg)
  | Ok j ->
    let num name =
      match
        Option.bind
          (Option.bind (Telemetry.Json.member "summary" j)
             (Telemetry.Json.member name))
          Telemetry.Json.to_float
      with
      | Some v -> int_of_float v
      | None -> Alcotest.fail ("summary." ^ name ^ " missing")
    in
    Alcotest.(check int) "errors" 1 (num "errors");
    Alcotest.(check int) "suppressed" 1 (num "suppressed");
    Alcotest.(check int) "files_scanned" 1 (num "files_scanned");
    let rule_of_first =
      match
        Option.bind (Telemetry.Json.member "diagnostics" j)
          Telemetry.Json.to_list
      with
      | Some (first :: _) ->
        Option.bind (Telemetry.Json.member "rule" first)
          Telemetry.Json.to_str
      | _ -> None
    in
    Alcotest.(check (option string)) "diagnostic rule id"
      (Some "det/wall-clock") rule_of_first

let test_rules_json () =
  match Telemetry.Json.parse (Srclint.Report.json_rules ()) with
  | Error msg -> Alcotest.fail ("rule catalogue is not valid JSON: " ^ msg)
  | Ok j ->
    let n =
      match
        Option.bind (Telemetry.Json.member "rules" j) Telemetry.Json.to_list
      with
      | Some l -> List.length l
      | None -> 0
    in
    Alcotest.(check int) "catalogue size" (List.length Srclint.Registry.all) n

let () =
  Alcotest.run "srclint"
    [ ( "determinism",
        [ Alcotest.test_case "wall clock" `Quick test_wall_clock;
          Alcotest.test_case "random self-init" `Quick test_random_self_init;
          Alcotest.test_case "ambient random" `Quick test_ambient_random;
          Alcotest.test_case "getenv" `Quick test_getenv;
          Alcotest.test_case "gc mutation" `Quick test_gc_mutation ] );
      ( "domain safety",
        [ Alcotest.test_case "global ref" `Quick test_global_ref;
          Alcotest.test_case "global mutable" `Quick test_global_mutable;
          Alcotest.test_case "DLS scope" `Quick test_dls;
          Alcotest.test_case "spawn scope" `Quick test_spawn ] );
      ( "error handling",
        [ Alcotest.test_case "catch-all swallow" `Quick test_catchall_swallow;
          Alcotest.test_case "assert false" `Quick test_assert_false;
          Alcotest.test_case "exit in lib" `Quick test_exit_in_lib ] );
      ( "hygiene",
        [ Alcotest.test_case "poly compare" `Quick test_poly_compare;
          Alcotest.test_case "float equality" `Quick test_float_equality;
          Alcotest.test_case "print in lib" `Quick test_print_in_lib;
          Alcotest.test_case "Obj.magic" `Quick test_obj_magic ] );
      ( "engine",
        [ Alcotest.test_case "parse error" `Quick test_parse_error;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "rules filter" `Quick test_rules_filter ] );
      ( "allowlist",
        [ Alcotest.test_case "suppression" `Quick test_allowlist_suppresses;
          Alcotest.test_case "stale entry" `Quick test_allowlist_stale;
          Alcotest.test_case "missing justification" `Quick
            test_allowlist_missing_justification;
          Alcotest.test_case "unknown rule" `Quick test_allowlist_unknown_rule;
          Alcotest.test_case "duplicate entry" `Quick test_allowlist_duplicate;
          Alcotest.test_case "malformed line" `Quick test_allowlist_malformed;
          Alcotest.test_case "committed entries justified" `Quick
            test_committed_allowlist_is_justified ] );
      ( "reports",
        [ Alcotest.test_case "JSON roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rule catalogue JSON" `Quick test_rules_json ] )
    ]
