(* Scale tests: the flow at resolutions beyond the paper's 6-10 bit range
   (all `Slow`; dune runtest executes them, use `-q` filters to skip). *)

let tech = Tech.Process.finfet_12nm

let test_11_bit_flow () =
  let r = Ccdac.Flow.run ~bits:11 Ccplace.Style.Spiral in
  Alcotest.(check bool) "f3dB positive" true (r.Ccdac.Flow.f3db_mhz > 0.);
  Alcotest.(check bool) "INL finite" true (Float.is_finite r.Ccdac.Flow.max_inl);
  Alcotest.(check int) "2048 cells + dummies covered" 2048
    (Array.fold_left ( + ) 0 r.Ccdac.Flow.placement.Ccgrid.Placement.counts)

let test_12_bit_place_route () =
  (* full analysis at 12 bits costs a quadratic covariance build; place,
     route and extraction alone must stay fast and clean *)
  let layout, elapsed =
    Ccdac.Flow.place_route ~bits:12 Ccplace.Style.Spiral
  in
  Alcotest.(check bool) "under 30 s" true (elapsed < 30.);
  Alcotest.(check int) "clean" 0 (List.length (Ccroute.Check.run layout));
  let par = Extract.Parasitics.extract layout in
  Alcotest.(check bool) "extraction sane" true
    (par.Extract.Parasitics.critical_elmore_fs > 0.)

let test_11_bit_chessboard_doubles () =
  let p = Ccplace.Chessboard.place ~bits:11 in
  Alcotest.(check int) "multiplier" 2 p.Ccgrid.Placement.unit_multiplier;
  Alcotest.(check int) "4096 cells" 4096
    (p.Ccgrid.Placement.rows * p.Ccgrid.Placement.cols);
  match Ccgrid.Placement.validate p with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_12_bit_trends_hold () =
  let spiral, _ = Ccdac.Flow.place_route ~bits:12 Ccplace.Style.Spiral in
  let chess, _ = Ccdac.Flow.place_route ~bits:12 Ccplace.Style.Chessboard in
  let tau layout =
    (Extract.Parasitics.extract layout).Extract.Parasitics.critical_elmore_fs
  in
  Alcotest.(check bool) "spiral still much faster at 12 bits" true
    (tau chess > 3. *. tau spiral)

let test_deep_general_ratio () =
  (* a big thermometer bank: 63 segments of 16 cells *)
  let counts = Array.append [| 1; 1; 2; 4; 8 |] (Array.make 63 16) in
  let p = Ccplace.General.clustered ~counts in
  (match Ccgrid.Placement.validate p with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  let layout = Ccroute.Layout.route tech p in
  Alcotest.(check int) "clean" 0 (List.length (Ccroute.Check.run layout))

let () =
  Alcotest.run "scale"
    [ ( "deep resolutions",
        [ Alcotest.test_case "11-bit flow" `Slow test_11_bit_flow;
          Alcotest.test_case "12-bit place+route" `Slow test_12_bit_place_route;
          Alcotest.test_case "11-bit chessboard" `Slow test_11_bit_chessboard_doubles;
          Alcotest.test_case "12-bit trends" `Slow test_12_bit_trends_hold;
          Alcotest.test_case "big thermometer" `Slow test_deep_general_ratio ] ) ]
