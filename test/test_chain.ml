(* Tests for the daisy-chain routing ablation, including the headline
   finding: chaining reproduces the paper's prior-work f3dB magnitudes. *)

let tech = Tech.Process.finfet_12nm

let chess8 = Ccplace.Chessboard.place ~bits:8
let chain8 = Ccroute.Chain.analyze tech chess8

let test_chain_covers_every_cap () =
  Alcotest.(check int) "per-bit entries" 9
    (Array.length chain8.Ccroute.Chain.per_bit);
  Array.iteri
    (fun k b ->
       Alcotest.(check int) "cap id" k b.Ccroute.Chain.b_cap;
       Alcotest.(check bool) "positive delay" true
         (b.Ccroute.Chain.b_elmore_fs > 0.))
    chain8.Ccroute.Chain.per_bit

let test_chain_junctions_scale_with_cells () =
  (* at least one junction per cell (hop + drop) *)
  Array.iteri
    (fun k b ->
       Alcotest.(check bool)
         (Printf.sprintf "C_%d junctions >= cells" k)
         true
         (b.Ccroute.Chain.b_via_junctions >= chess8.Ccgrid.Placement.counts.(k)))
    chain8.Ccroute.Chain.per_bit

let test_chain_critical_is_argmax () =
  let worst =
    Array.fold_left
      (fun acc b -> Float.max acc b.Ccroute.Chain.b_elmore_fs)
      0. chain8.Ccroute.Chain.per_bit
  in
  Alcotest.(check (float 1e-9)) "critical"
    worst chain8.Ccroute.Chain.critical_elmore_fs

let test_chain_slower_than_trunk_router () =
  let trunk = Ccdac.Flow.run ~bits:8 Ccplace.Style.Chessboard in
  let chain_f = Ccroute.Chain.f3db_mhz chain8 ~bits:8 in
  Alcotest.(check bool) "trunk router much faster" true
    (trunk.Ccdac.Flow.f3db_mhz > 5. *. chain_f)

let test_chain_recovers_paper_magnitudes () =
  (* the paper's Table II [7] row: 434 MHz at 6 bits down to 1.2 MHz at 10
     bits; the chained model must land within ~3x of those values *)
  List.iter
    (fun (bits, paper_mhz) ->
       let chess = Ccplace.Chessboard.place ~bits in
       let chain = Ccroute.Chain.analyze tech chess in
       let ours = Ccroute.Chain.f3db_mhz chain ~bits in
       let ratio = ours /. paper_mhz in
       if ratio < 0.33 || ratio > 3. then
         Alcotest.failf "%d-bit: chained %.1f MHz vs paper %.1f MHz" bits ours
           paper_mhz)
    [ (6, 434.); (8, 23.); (10, 1.2) ]

let test_chain_parallel_wires_help () =
  let p1 = Ccroute.Chain.analyze tech ~p_of_cap:(fun _ -> 1) chess8 in
  let p2 = Ccroute.Chain.analyze tech ~p_of_cap:(fun _ -> 2) chess8 in
  Alcotest.(check bool) "p=2 faster" true
    (p2.Ccroute.Chain.critical_elmore_fs < p1.Ccroute.Chain.critical_elmore_fs)

let test_chain_deterministic () =
  let a = Ccroute.Chain.analyze tech chess8 in
  Alcotest.(check (float 1e-12)) "same delay"
    chain8.Ccroute.Chain.critical_elmore_fs a.Ccroute.Chain.critical_elmore_fs

let test_chain_rejects_bad_p () =
  Alcotest.(check bool) "p=0" true
    (try ignore (Ccroute.Chain.analyze tech ~p_of_cap:(fun _ -> 0) chess8); false
     with Invalid_argument _ -> true)

let prop_chain_any_style =
  QCheck.Test.make ~name:"chain analyses any placement" ~count:20
    QCheck.(pair (int_range 2 8) (int_range 0 2))
    (fun (bits, idx) ->
       let style =
         match idx with
         | 0 -> Ccplace.Style.Spiral
         | 1 -> Ccplace.Style.Chessboard
         | _ -> Ccplace.Style.Rowwise
       in
       let p = Ccplace.Style.place ~bits style in
       let c = Ccroute.Chain.analyze tech p in
       c.Ccroute.Chain.critical_elmore_fs > 0. && c.Ccroute.Chain.total_vias > 0)

let () =
  Alcotest.run "chain"
    [ ( "structure",
        [ Alcotest.test_case "covers caps" `Quick test_chain_covers_every_cap;
          Alcotest.test_case "junction count" `Quick test_chain_junctions_scale_with_cells;
          Alcotest.test_case "critical argmax" `Quick test_chain_critical_is_argmax;
          Alcotest.test_case "deterministic" `Quick test_chain_deterministic;
          Alcotest.test_case "bad p" `Quick test_chain_rejects_bad_p ] );
      ( "reproduction",
        [ Alcotest.test_case "slower than trunk" `Quick test_chain_slower_than_trunk_router;
          Alcotest.test_case "paper magnitudes" `Slow test_chain_recovers_paper_magnitudes;
          Alcotest.test_case "parallel wires" `Quick test_chain_parallel_wires_help ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_chain_any_style ] ) ]
