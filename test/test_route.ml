(* Tests for group formation, Algorithm 1 and the routed layout. *)

let tech = Tech.Process.finfet_12nm

let spiral6 = Ccplace.Spiral.place ~bits:6
let chess6 = Ccplace.Chessboard.place ~bits:6

(* --- groups --- *)

let test_groups_partition_cells () =
  List.iter
    (fun p ->
       let groups = Ccroute.Group.of_placement p in
       for k = 0 to p.Ccgrid.Placement.bits do
         let group_cells =
           List.concat_map
             (fun g -> g.Ccroute.Group.cells)
             (Ccroute.Group.of_cap groups k)
         in
         Alcotest.(check int)
           (Printf.sprintf "C_%d partitioned" k)
           p.Ccgrid.Placement.counts.(k)
           (List.length (List.sort_uniq Ccgrid.Cell.compare group_cells))
       done)
    [ spiral6; chess6 ]

let test_groups_are_connected () =
  let groups = Ccroute.Group.of_placement ~mode:Ccroute.Group.Connected spiral6 in
  List.iter
    (fun (g : Ccroute.Group.t) ->
       (* tree edges span the group: |E| = |V| - 1 *)
       Alcotest.(check int) "tree edges"
         (List.length g.Ccroute.Group.cells - 1)
         (List.length g.Ccroute.Group.tree_edges);
       List.iter
         (fun (a, b) ->
            Alcotest.(check bool) "edges adjacent" true (Ccgrid.Cell.adjacent a b))
         g.Ccroute.Group.tree_edges)
    groups

let test_chessboard_groups_are_singletons () =
  let groups = Ccroute.Group.of_placement chess6 in
  List.iter
    (fun (g : Ccroute.Group.t) ->
       if g.Ccroute.Group.cap = 6 then
         Alcotest.(check int) "singleton" 1 (Ccroute.Group.size g))
    groups

let test_group_spans () =
  let groups = Ccroute.Group.of_placement spiral6 in
  List.iter
    (fun (g : Ccroute.Group.t) ->
       List.iter
         (fun (c : Ccgrid.Cell.t) ->
            Alcotest.(check bool) "col in span" true
              (c.Ccgrid.Cell.col >= g.Ccroute.Group.col_lo
               && c.Ccgrid.Cell.col <= g.Ccroute.Group.col_hi);
            Alcotest.(check bool) "row in span" true
              (c.Ccgrid.Cell.row >= g.Ccroute.Group.row_lo
               && c.Ccgrid.Cell.row <= g.Ccroute.Group.row_hi))
         g.Ccroute.Group.cells)
    groups

let test_straight_runs_are_straight () =
  let groups =
    Ccroute.Group.of_placement ~mode:Ccroute.Group.Straight_runs spiral6
  in
  List.iter
    (fun (g : Ccroute.Group.t) ->
       let same_row =
         g.Ccroute.Group.row_lo = g.Ccroute.Group.row_hi
       and same_col = g.Ccroute.Group.col_lo = g.Ccroute.Group.col_hi in
       Alcotest.(check bool) "row or column" true (same_row || same_col))
    groups

let test_closest_cells () =
  let mk cap id cells =
    { Ccroute.Group.cap; id; cells;
      tree_edges = [];
      col_lo = List.fold_left (fun a (c : Ccgrid.Cell.t) -> Int.min a c.Ccgrid.Cell.col) max_int cells;
      col_hi = List.fold_left (fun a (c : Ccgrid.Cell.t) -> Int.max a c.Ccgrid.Cell.col) min_int cells;
      row_lo = List.fold_left (fun a (c : Ccgrid.Cell.t) -> Int.min a c.Ccgrid.Cell.row) max_int cells;
      row_hi = List.fold_left (fun a (c : Ccgrid.Cell.t) -> Int.max a c.Ccgrid.Cell.row) min_int cells }
  in
  let a =
    mk 3 0 [ Ccgrid.Cell.make ~row:0 ~col:0; Ccgrid.Cell.make ~row:5 ~col:3 ]
  in
  let b =
    mk 3 1 [ Ccgrid.Cell.make ~row:5 ~col:4; Ccgrid.Cell.make ~row:9 ~col:9 ]
  in
  let ua, ub = Ccroute.Group.closest_cells a b in
  Alcotest.(check bool) "closest pair" true
    (Ccgrid.Cell.equal ua (Ccgrid.Cell.make ~row:5 ~col:3)
     && Ccgrid.Cell.equal ub (Ccgrid.Cell.make ~row:5 ~col:4))

let test_col_span_overlap () =
  let mk lo hi =
    { Ccroute.Group.cap = 0; id = 0; cells = []; tree_edges = [];
      col_lo = lo; col_hi = hi; row_lo = 0; row_hi = 0 }
  in
  Alcotest.(check bool) "overlap" true
    (Ccroute.Group.col_span_overlap (mk 0 3) (mk 2 5));
  Alcotest.(check bool) "disjoint" false
    (Ccroute.Group.col_span_overlap (mk 0 1) (mk 3 5));
  Alcotest.(check bool) "touching" true
    (Ccroute.Group.col_span_overlap (mk 0 2) (mk 2 4))

(* --- plan (Algorithm 1) --- *)

let plan_of p =
  let groups = Ccroute.Group.of_placement p in
  (groups, Ccroute.Plan.make p groups)

let test_every_group_routed () =
  List.iter
    (fun p ->
       let groups, plan = plan_of p in
       Alcotest.(check int) "one route per group" (List.length groups)
         (List.length plan.Ccroute.Plan.routes))
    [ spiral6; chess6; Ccplace.Rowwise.place ~bits:8 ]

let test_tracks_count_distinct_caps () =
  let _, plan = plan_of chess6 in
  Array.iteri
    (fun ch caps ->
       Alcotest.(check int)
         (Printf.sprintf "channel %d" ch)
         plan.Ccroute.Plan.tracks_per_channel.(ch)
         (Array.length caps);
       (* one track per capacitor: ids are unique in a channel *)
       let sorted = Array.to_list caps in
       Alcotest.(check int) "unique caps"
         (List.length (List.sort_uniq Int.compare sorted))
         (List.length sorted))
    plan.Ccroute.Plan.track_caps

let test_track_indices_dense () =
  let _, plan = plan_of spiral6 in
  List.iter
    (fun (r : Ccroute.Plan.route) ->
       Alcotest.(check bool) "track in range" true
         (r.Ccroute.Plan.track >= 0
          && r.Ccroute.Plan.track
             < plan.Ccroute.Plan.tracks_per_channel.(r.Ccroute.Plan.channel)))
    plan.Ccroute.Plan.routes

let test_same_cap_same_channel_same_track () =
  let _, plan = plan_of chess6 in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (r : Ccroute.Plan.route) ->
       let key = (r.Ccroute.Plan.channel, r.Ccroute.Plan.group.Ccroute.Group.cap) in
       match Hashtbl.find_opt seen key with
       | Some track -> Alcotest.(check int) "shared track" track r.Ccroute.Plan.track
       | None -> Hashtbl.add seen key r.Ccroute.Plan.track)
    plan.Ccroute.Plan.routes

let test_attach_is_group_member () =
  List.iter
    (fun p ->
       let _, plan = plan_of p in
       List.iter
         (fun (r : Ccroute.Plan.route) ->
            Alcotest.(check bool) "attach in group" true
              (List.exists
                 (Ccgrid.Cell.equal r.Ccroute.Plan.attach)
                 r.Ccroute.Plan.group.Ccroute.Group.cells))
         plan.Ccroute.Plan.routes)
    [ spiral6; chess6 ]

let test_channel_in_range () =
  let _, plan = plan_of chess6 in
  List.iter
    (fun (r : Ccroute.Plan.route) ->
       Alcotest.(check bool) "channel in range" true
         (r.Ccroute.Plan.channel >= 0
          && r.Ccroute.Plan.channel <= chess6.Ccgrid.Placement.cols))
    plan.Ccroute.Plan.routes

(* --- layout --- *)

let layout6 = Ccroute.Layout.route tech spiral6
let layout_chess = Ccroute.Layout.route tech chess6

let test_layout_geometry_monotone () =
  let xs = Array.to_list layout6.Ccroute.Layout.col_x in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "col_x increasing" true (increasing xs);
  Alcotest.(check bool) "row_y increasing" true
    (increasing (Array.to_list layout6.Ccroute.Layout.row_y));
  Alcotest.(check bool) "positive size" true
    (layout6.Ccroute.Layout.width > 0. && layout6.Ccroute.Layout.height > 0.)

let test_layout_every_cap_has_net () =
  for k = 0 to 6 do
    let net = Ccroute.Layout.net layout6 k in
    Alcotest.(check bool) "has trunks" true (net.Ccroute.Layout.cn_trunks <> []);
    Alcotest.(check int) "cap id" k net.Ccroute.Layout.cn_cap
  done

let test_layout_one_primary_trunk_per_net () =
  Array.iter
    (fun (net : Ccroute.Layout.capnet) ->
       Alcotest.(check int) "one primary" 1
         (List.length
            (List.filter (fun t -> t.Ccroute.Layout.tk_primary)
               net.Ccroute.Layout.cn_trunks)))
    layout6.Ccroute.Layout.nets

let test_layout_bridge_iff_multiple_trunks () =
  Array.iter
    (fun (net : Ccroute.Layout.capnet) ->
       let trunks = List.length net.Ccroute.Layout.cn_trunks in
       match net.Ccroute.Layout.cn_bridge_y with
       | Some _ -> Alcotest.(check bool) "bridge => >1 trunk" true (trunks >= 2)
       | None -> Alcotest.(check bool) "no bridge => 1 trunk" true (trunks = 1))
    layout_chess.Ccroute.Layout.nets

let test_layout_trunk_extents () =
  Array.iter
    (fun (net : Ccroute.Layout.capnet) ->
       List.iter
         (fun (tk : Ccroute.Layout.trunk) ->
            Alcotest.(check bool) "y_low <= y_high" true
              (tk.Ccroute.Layout.tk_y_low <= tk.Ccroute.Layout.tk_y_high +. 1e-9);
            List.iter
              (fun (a : Ccroute.Layout.attach_point) ->
                 Alcotest.(check bool) "attach on trunk" true
                   (a.Ccroute.Layout.ap_y >= tk.Ccroute.Layout.tk_y_low -. 1e-9
                    && a.Ccroute.Layout.ap_y <= tk.Ccroute.Layout.tk_y_high +. 1e-9))
              tk.Ccroute.Layout.tk_attaches)
         net.Ccroute.Layout.cn_trunks)
    layout6.Ccroute.Layout.nets

let test_layout_wires_axis_aligned () =
  List.iter
    (fun (w : Ccroute.Layout.wire) ->
       Alcotest.(check bool) "axis aligned" true
         (Float.abs (w.Ccroute.Layout.w_ax -. w.Ccroute.Layout.w_bx) < 1e-9
          || Float.abs (w.Ccroute.Layout.w_ay -. w.Ccroute.Layout.w_by) < 1e-9))
    (layout6.Ccroute.Layout.wires @ layout6.Ccroute.Layout.top_wires)

let test_layout_parallel_policy () =
  let p_of = Ccroute.Layout.msb_parallel ~bits:8 ~p:4 in
  Alcotest.(check int) "MSB" 4 (p_of 8);
  Alcotest.(check int) "MSB-2" 4 (p_of 6);
  Alcotest.(check int) "LSB" 1 (p_of 3);
  let layout =
    Ccroute.Layout.route tech ~p_of_cap:(Ccroute.Layout.msb_parallel ~bits:6 ~p:2)
      spiral6
  in
  Alcotest.(check int) "p recorded" 2 layout.Ccroute.Layout.p_of_cap.(6);
  Alcotest.(check int) "p recorded lsb" 1 layout.Ccroute.Layout.p_of_cap.(2)

let test_layout_rejects_bad_parallel () =
  Alcotest.(check bool) "p=0 rejected" true
    (try ignore (Ccroute.Layout.route tech ~p_of_cap:(fun _ -> 0) spiral6); false
     with Invalid_argument _ -> true)

let test_layout_via_positive_p () =
  List.iter
    (fun (v : Ccroute.Layout.via) ->
       Alcotest.(check bool) "p >= 1" true (v.Ccroute.Layout.v_p >= 1))
    layout6.Ccroute.Layout.vias

let test_layout_top_plate () =
  Alcotest.(check int) "column runs + connector"
    (spiral6.Ccgrid.Placement.cols + 1)
    (List.length layout6.Ccroute.Layout.top_wires);
  Alcotest.(check bool) "positive length" true
    (layout6.Ccroute.Layout.top_length > 0.)

let test_layout_channel_widths_match_tracks () =
  let plan = layout6.Ccroute.Layout.plan in
  Array.iteri
    (fun ch width ->
       if plan.Ccroute.Plan.tracks_per_channel.(ch) = 0 then
         Alcotest.(check (float 1e-9)) "empty channel" 0. width
       else
         Alcotest.(check bool) "used channel has width" true (width > 0.))
    layout6.Ccroute.Layout.channel_width

let test_spiral_fewer_vias_than_chessboard () =
  let count (l : Ccroute.Layout.t) =
    List.fold_left
      (fun acc (v : Ccroute.Layout.via) ->
         acc + Tech.Parallel.via_count ~p:v.Ccroute.Layout.v_p)
      0 l.Ccroute.Layout.vias
  in
  let s = Ccroute.Layout.route tech ~p_of_cap:(fun _ -> 1) spiral6 in
  Alcotest.(check bool) "S fewer vias" true (count s < count layout_chess)

(* --- mst --- *)

let test_mst_triangle () =
  (* triangle 0-1 (1.0), 1-2 (2.0), 0-2 (10.0): MST picks the two cheap edges *)
  let edges = [| (0, 1, 1.0); (1, 2, 2.0); (0, 2, 10.0) |] in
  let tree = Ccroute.Mst.prim ~nodes:3 ~edges in
  Alcotest.(check int) "two edges" 2 (List.length tree);
  Alcotest.(check (float 1e-9)) "cost" 3.0 (Ccroute.Mst.cost ~edges tree)

let test_mst_rejects_disconnected () =
  Alcotest.(check bool) "disconnected" true
    (try ignore (Ccroute.Mst.prim ~nodes:4 ~edges:[| (0, 1, 1.) |]); false
     with Invalid_argument _ -> true)

let test_mst_rejects_negative () =
  Alcotest.(check bool) "negative weight" true
    (try ignore (Ccroute.Mst.prim ~nodes:2 ~edges:[| (0, 1, -1.) |]); false
     with Invalid_argument _ -> true)

let test_grid_mst_closed_form () =
  (* uniform grid with dy < dx: cost = cols (rows-1) dy + sum dx *)
  let rows = 5 and cols = 4 in
  let dx = [| 2.; 3.; 2.5 |] and dy = 1. in
  Alcotest.(check (float 1e-9)) "closed form"
    ((float_of_int cols *. float_of_int (rows - 1) *. dy) +. 7.5)
    (Ccroute.Mst.grid_mst_cost ~rows ~cols ~dx ~dy)

(* the paper's claim (Sec. IV-B5): the column-run top-plate construction
   used by Layout IS the MST of the unit-capacitor adjacency graph *)
let test_topplate_is_mst () =
  List.iter
    (fun (layout : Ccroute.Layout.t) ->
       let rows = layout.Ccroute.Layout.placement.Ccgrid.Placement.rows in
       let cols = layout.Ccroute.Layout.placement.Ccgrid.Placement.cols in
       let dx =
         Array.init (cols - 1) (fun c ->
             layout.Ccroute.Layout.col_x.(c + 1) -. layout.Ccroute.Layout.col_x.(c))
       in
       let dy = Tech.Process.cell_pitch_y tech in
       let optimal = Ccroute.Mst.grid_mst_cost ~rows ~cols ~dx ~dy in
       Alcotest.(check (float 1e-6)) "top plate length = MST cost" optimal
         layout.Ccroute.Layout.top_length)
    [ layout6; layout_chess ]

let prop_route_any_placement =
  QCheck.Test.make ~name:"routing succeeds on random config" ~count:40
    QCheck.(pair (int_range 2 9) (int_range 0 3))
    (fun (bits, idx) ->
       let style =
         match idx with
         | 0 -> Ccplace.Style.Spiral
         | 1 -> Ccplace.Style.Chessboard
         | 2 -> Ccplace.Style.Rowwise
         | _ -> Ccplace.Style.block_default ~bits
       in
       let p = Ccplace.Style.place ~bits style in
       let layout = Ccroute.Layout.route tech p in
       Array.for_all
         (fun (net : Ccroute.Layout.capnet) ->
            net.Ccroute.Layout.cn_trunks <> [])
         layout.Ccroute.Layout.nets)

let () =
  Alcotest.run "ccroute"
    [ ( "groups",
        [ Alcotest.test_case "partition" `Quick test_groups_partition_cells;
          Alcotest.test_case "connected trees" `Quick test_groups_are_connected;
          Alcotest.test_case "chessboard singletons" `Quick test_chessboard_groups_are_singletons;
          Alcotest.test_case "spans" `Quick test_group_spans;
          Alcotest.test_case "straight runs" `Quick test_straight_runs_are_straight;
          Alcotest.test_case "closest cells" `Quick test_closest_cells;
          Alcotest.test_case "span overlap" `Quick test_col_span_overlap ] );
      ( "plan",
        [ Alcotest.test_case "all groups routed" `Quick test_every_group_routed;
          Alcotest.test_case "tracks = caps" `Quick test_tracks_count_distinct_caps;
          Alcotest.test_case "track indices" `Quick test_track_indices_dense;
          Alcotest.test_case "shared tracks" `Quick test_same_cap_same_channel_same_track;
          Alcotest.test_case "attach member" `Quick test_attach_is_group_member;
          Alcotest.test_case "channel range" `Quick test_channel_in_range ] );
      ( "layout",
        [ Alcotest.test_case "geometry monotone" `Quick test_layout_geometry_monotone;
          Alcotest.test_case "every net routed" `Quick test_layout_every_cap_has_net;
          Alcotest.test_case "one primary" `Quick test_layout_one_primary_trunk_per_net;
          Alcotest.test_case "bridge iff trunks" `Quick test_layout_bridge_iff_multiple_trunks;
          Alcotest.test_case "trunk extents" `Quick test_layout_trunk_extents;
          Alcotest.test_case "axis aligned" `Quick test_layout_wires_axis_aligned;
          Alcotest.test_case "parallel policy" `Quick test_layout_parallel_policy;
          Alcotest.test_case "bad parallel" `Quick test_layout_rejects_bad_parallel;
          Alcotest.test_case "via p" `Quick test_layout_via_positive_p;
          Alcotest.test_case "top plate" `Quick test_layout_top_plate;
          Alcotest.test_case "channel widths" `Quick test_layout_channel_widths_match_tracks;
          Alcotest.test_case "spiral fewer vias" `Quick test_spiral_fewer_vias_than_chessboard ] );
      ( "mst",
        [ Alcotest.test_case "triangle" `Quick test_mst_triangle;
          Alcotest.test_case "disconnected" `Quick test_mst_rejects_disconnected;
          Alcotest.test_case "negative" `Quick test_mst_rejects_negative;
          Alcotest.test_case "grid closed form" `Quick test_grid_mst_closed_form;
          Alcotest.test_case "top plate is MST" `Quick test_topplate_is_mst ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_route_any_placement ] ) ]
