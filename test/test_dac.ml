(* Tests for the DAC circuit-level models (Sec. II-A, III). *)

let check_float = Alcotest.(check (float 1e-9))
let tech = Tech.Process.finfet_12nm

(* an idealised process: no gradient, no random mismatch *)
let ideal_tech =
  { tech with Tech.Process.gradient_ppm = 0.; mismatch_coeff = 0. }

(* --- transfer --- *)

let test_transfer_ideal_endpoints () =
  check_float "code 0" 0. (Dacmodel.Transfer.ideal ~bits:8 ~code:0 ~vref:1.);
  check_float "full scale"
    (255. /. 256.)
    (Dacmodel.Transfer.ideal ~bits:8 ~code:255 ~vref:1.)

let test_transfer_monotone () =
  let prev = ref (-1.) in
  for code = 0 to 63 do
    let v = Dacmodel.Transfer.ideal ~bits:6 ~code ~vref:1. in
    Alcotest.(check bool) "monotone" true (v > !prev);
    prev := v
  done

let test_transfer_lsb () =
  check_float "lsb" (1. /. 1024.) (Dacmodel.Transfer.lsb ~bits:10 ~vref:1.);
  check_float "lsb scales with vref" (2.5 /. 64.)
    (Dacmodel.Transfer.lsb ~bits:6 ~vref:2.5)

let test_transfer_bits () =
  (* code 5 = 101b: D_1 and D_3 set *)
  Alcotest.(check bool) "D_1" true (Dacmodel.Transfer.bit ~code:5 1);
  Alcotest.(check bool) "D_2" false (Dacmodel.Transfer.bit ~code:5 2);
  Alcotest.(check bool) "D_3" true (Dacmodel.Transfer.bit ~code:5 3)

let test_transfer_on_units () =
  Alcotest.(check int) "on units = code" 37
    (Dacmodel.Transfer.on_units ~bits:6 ~code:37)

let test_transfer_code_range () =
  Alcotest.(check bool) "negative rejected" true
    (try ignore (Dacmodel.Transfer.ideal ~bits:6 ~code:(-1) ~vref:1.); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "overflow rejected" true
    (try ignore (Dacmodel.Transfer.ideal ~bits:6 ~code:64 ~vref:1.); false
     with Invalid_argument _ -> true)

let test_transfer_perturbed () =
  check_float "no perturbation" 0.5
    (Dacmodel.Transfer.perturbed ~vref:1. ~c_on:50. ~delta_on:0. ~c_t:100. ~delta_t:0.);
  Alcotest.(check bool) "extra C_T lowers output" true
    (Dacmodel.Transfer.perturbed ~vref:1. ~c_on:50. ~delta_on:0. ~c_t:100. ~delta_t:5.
     < 0.5)

(* --- nonlinearity --- *)

let spiral8 = Ccplace.Spiral.place ~bits:8

let test_ideal_process_perfect_dac () =
  let a = Dacmodel.Nonlinearity.analyze ideal_tech spiral8 in
  Alcotest.(check (float 1e-9)) "INL 0" 0. a.Dacmodel.Nonlinearity.max_abs_inl;
  Alcotest.(check (float 1e-9)) "DNL 0" 0. a.Dacmodel.Nonlinearity.max_abs_dnl

let test_code_zero_anchored () =
  let a = Dacmodel.Nonlinearity.analyze tech spiral8 in
  check_float "INL(0)" 0. a.Dacmodel.Nonlinearity.inl.(0);
  check_float "DNL(0)" 0. a.Dacmodel.Nonlinearity.dnl.(0)

let test_array_lengths () =
  let a = Dacmodel.Nonlinearity.analyze tech spiral8 in
  Alcotest.(check int) "codes" 256 (Array.length a.Dacmodel.Nonlinearity.inl);
  Alcotest.(check int) "codes" 256 (Array.length a.Dacmodel.Nonlinearity.dnl)

let test_max_abs_consistent () =
  let a = Dacmodel.Nonlinearity.analyze tech spiral8 in
  let max_of arr =
    Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. arr
  in
  check_float "max inl" (max_of a.Dacmodel.Nonlinearity.inl)
    a.Dacmodel.Nonlinearity.max_abs_inl

let test_gradient_only_small_inl () =
  (* exact common-centroid placement cancels a linear gradient to first
     order: gradient-only INL is tiny *)
  let grad_tech = { tech with Tech.Process.mismatch_coeff = 0. } in
  let a = Dacmodel.Nonlinearity.analyze grad_tech spiral8 in
  Alcotest.(check bool) "sub-milli-LSB" true
    (a.Dacmodel.Nonlinearity.max_abs_inl < 1e-2)

let test_top_parasitic_gain_error () =
  let base = Dacmodel.Nonlinearity.analyze ideal_tech spiral8 in
  let loaded =
    Dacmodel.Nonlinearity.analyze ideal_tech ~top_parasitic:5. spiral8
  in
  Alcotest.(check bool) "C^TS causes INL" true
    (loaded.Dacmodel.Nonlinearity.max_abs_inl
     > base.Dacmodel.Nonlinearity.max_abs_inl);
  (* a pure gain error from C_T loading is negative INL (output too low) *)
  let worst_code = (1 lsl 8) - 1 in
  Alcotest.(check bool) "negative at full scale" true
    (loaded.Dacmodel.Nonlinearity.inl.(worst_code) < 0.)

let test_worst_case_not_smaller () =
  let paper = Dacmodel.Nonlinearity.analyze tech spiral8 in
  let worst =
    Dacmodel.Nonlinearity.analyze tech
      ~sign_mode:Dacmodel.Nonlinearity.Worst_case spiral8
  in
  Alcotest.(check bool) "worst >= paper INL" true
    (worst.Dacmodel.Nonlinearity.max_abs_inl
     >= paper.Dacmodel.Nonlinearity.max_abs_inl -. 1e-12);
  Alcotest.(check bool) "worst >= paper DNL" true
    (worst.Dacmodel.Nonlinearity.max_abs_dnl
     >= paper.Dacmodel.Nonlinearity.max_abs_dnl -. 1e-12)

let test_dispersion_reduces_nonlinearity () =
  (* the paper's core claim about dispersion (Sec. IV-A2) *)
  let chess = Ccplace.Chessboard.place ~bits:8 in
  let a_s = Dacmodel.Nonlinearity.analyze tech spiral8 in
  let a_c = Dacmodel.Nonlinearity.analyze tech chess in
  Alcotest.(check bool) "chessboard DNL better" true
    (a_c.Dacmodel.Nonlinearity.max_abs_dnl
     < a_s.Dacmodel.Nonlinearity.max_abs_dnl)

let test_theta_override () =
  let grad_tech =
    { tech with Tech.Process.mismatch_coeff = 0.; gradient_ppm = 1000. }
  in
  let a0 = Dacmodel.Nonlinearity.analyze grad_tech ~theta:0. spiral8 in
  let a90 =
    Dacmodel.Nonlinearity.analyze grad_tech ~theta:(Float.pi /. 2.) spiral8
  in
  (* different angles give different systematic residues *)
  Alcotest.(check bool) "angle matters" true
    (Float.abs
       (a0.Dacmodel.Nonlinearity.max_abs_inl
        -. a90.Dacmodel.Nonlinearity.max_abs_inl)
     > 0.)

(* --- speed --- *)

let test_settling_formula () =
  (* Eq. 15: t_settle = ln(2^(N+2)) tau = (N+2) ln2 tau *)
  check_float "settling" (8. *. Float.log 2. *. 100.)
    (Dacmodel.Speed.settling_time_fs ~bits:6 ~tau_fs:100.)

let test_f3db_formula () =
  (* Eq. 16 at tau = 1 ps, N = 6: 1/(2*8*ln2*1e-12) Hz *)
  let expected = 1. /. (16. *. Float.log 2. *. 1e-12) /. 1e6 in
  check_float "f3db" expected (Dacmodel.Speed.f3db_mhz ~bits:6 ~tau_fs:1000.)

let test_f3db_decreases_with_bits () =
  Alcotest.(check bool) "more bits, lower f3dB" true
    (Dacmodel.Speed.f3db_mhz ~bits:10 ~tau_fs:1000.
     < Dacmodel.Speed.f3db_mhz ~bits:6 ~tau_fs:1000.)

let test_f3db_rejects_nonpositive_tau () =
  Alcotest.(check bool) "tau 0" true
    (try ignore (Dacmodel.Speed.f3db_mhz ~bits:6 ~tau_fs:0.); false
     with Invalid_argument _ -> true)

let test_improvement_factor () =
  check_float "factor" 2.5
    (Dacmodel.Speed.improvement_factor ~base_mhz:100. ~mhz:250.)

(* --- properties --- *)

let prop_f3db_inverse_in_tau =
  QCheck.Test.make ~name:"f3dB ~ 1/tau" ~count:100
    QCheck.(pair (int_range 2 12) (float_range 1. 1e6))
    (fun (bits, tau) ->
       let f1 = Dacmodel.Speed.f3db_mhz ~bits ~tau_fs:tau in
       let f2 = Dacmodel.Speed.f3db_mhz ~bits ~tau_fs:(2. *. tau) in
       Float.abs ((f1 /. f2) -. 2.) < 1e-6)

let prop_inl_zero_for_ideal =
  QCheck.Test.make ~name:"ideal process, zero INL, any style" ~count:20
    QCheck.(pair (int_range 2 8) (int_range 0 3))
    (fun (bits, idx) ->
       let style =
         match idx with
         | 0 -> Ccplace.Style.Spiral
         | 1 -> Ccplace.Style.Chessboard
         | 2 -> Ccplace.Style.Rowwise
         | _ -> Ccplace.Style.block_default ~bits
       in
       let p = Ccplace.Style.place ~bits style in
       let a = Dacmodel.Nonlinearity.analyze ideal_tech p in
       a.Dacmodel.Nonlinearity.max_abs_inl < 1e-9
       && a.Dacmodel.Nonlinearity.max_abs_dnl < 1e-9)

let () =
  Alcotest.run "dacmodel"
    [ ( "transfer",
        [ Alcotest.test_case "endpoints" `Quick test_transfer_ideal_endpoints;
          Alcotest.test_case "monotone" `Quick test_transfer_monotone;
          Alcotest.test_case "lsb" `Quick test_transfer_lsb;
          Alcotest.test_case "bits" `Quick test_transfer_bits;
          Alcotest.test_case "on units" `Quick test_transfer_on_units;
          Alcotest.test_case "code range" `Quick test_transfer_code_range;
          Alcotest.test_case "perturbed" `Quick test_transfer_perturbed ] );
      ( "nonlinearity",
        [ Alcotest.test_case "ideal process" `Quick test_ideal_process_perfect_dac;
          Alcotest.test_case "code zero" `Quick test_code_zero_anchored;
          Alcotest.test_case "array lengths" `Quick test_array_lengths;
          Alcotest.test_case "max abs" `Quick test_max_abs_consistent;
          Alcotest.test_case "gradient only" `Quick test_gradient_only_small_inl;
          Alcotest.test_case "gain error" `Quick test_top_parasitic_gain_error;
          Alcotest.test_case "worst case" `Quick test_worst_case_not_smaller;
          Alcotest.test_case "dispersion helps" `Quick test_dispersion_reduces_nonlinearity;
          Alcotest.test_case "theta override" `Quick test_theta_override ] );
      ( "speed",
        [ Alcotest.test_case "settling" `Quick test_settling_formula;
          Alcotest.test_case "f3dB" `Quick test_f3db_formula;
          Alcotest.test_case "bits" `Quick test_f3db_decreases_with_bits;
          Alcotest.test_case "bad tau" `Quick test_f3db_rejects_nonpositive_tau;
          Alcotest.test_case "improvement" `Quick test_improvement_factor ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_f3db_inverse_in_tau; prop_inl_zero_for_ideal ] ) ]
