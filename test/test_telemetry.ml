(* Tests for the telemetry subsystem: clock, spans, metrics, JSON,
   Chrome-trace export, and the flow instrumentation built on them. *)

module T = Telemetry

(* --- clock --- *)

let test_clock_monotonic () =
  let a = T.Clock.now_ns () in
  let b = T.Clock.now_ns () in
  Alcotest.(check bool) "non-decreasing" true (Int64.compare b a >= 0);
  (* a start time in the future clamps to zero elapsed *)
  Alcotest.(check int64) "since clamps negative" 0L
    (T.Clock.since_ns (Int64.add (T.Clock.now_ns ()) 1_000_000_000L))

let test_clock_units () =
  Alcotest.(check (float 1e-9)) "to_s" 1.5 (T.Clock.to_s 1_500_000_000L);
  Alcotest.(check (float 1e-9)) "to_us" 2.5 (T.Clock.to_us 2_500L)

(* --- spans --- *)

let test_span_inactive_fast_path () =
  Alcotest.(check bool) "inactive by default" false (T.Span.active ());
  Alcotest.(check int) "passthrough" 42 (T.Span.with_ ~name:"x" (fun () -> 42))

let test_span_nesting () =
  let (), spans =
    T.Span.collect (fun () ->
        T.Span.with_ ~name:"outer" (fun () ->
            T.Span.with_ ~name:"a" (fun () -> ());
            T.Span.with_ ~name:"b" (fun () ->
                T.Span.with_ ~name:"leaf" (fun () -> ()))))
  in
  let names = List.map (fun s -> s.T.Span.name) spans in
  (* collect returns start order: the pre-order walk *)
  Alcotest.(check (list string)) "pre-order"
    [ "outer"; "a"; "b"; "leaf" ] names;
  let find n = List.find (fun s -> s.T.Span.name = n) spans in
  Alcotest.(check int) "outer depth" 0 (find "outer").T.Span.depth;
  Alcotest.(check int) "a depth" 1 (find "a").T.Span.depth;
  Alcotest.(check int) "leaf depth" 2 (find "leaf").T.Span.depth;
  Alcotest.(check (option string)) "a parent" (Some "outer")
    (find "a").T.Span.parent;
  Alcotest.(check (option string)) "leaf parent" (Some "b")
    (find "leaf").T.Span.parent;
  Alcotest.(check (option string)) "outer root" None
    (find "outer").T.Span.parent;
  List.iter
    (fun s ->
       Alcotest.(check bool)
         (s.T.Span.name ^ " duration >= 0") true
         (Int64.compare s.T.Span.duration_ns 0L >= 0))
    spans;
  (* the parent's interval contains the child's *)
  let outer = find "outer" and leaf = find "leaf" in
  Alcotest.(check bool) "child starts after parent" true
    (Int64.compare leaf.T.Span.start_ns outer.T.Span.start_ns >= 0);
  Alcotest.(check bool) "seq increases with start order" true
    (leaf.T.Span.seq > outer.T.Span.seq)

let test_span_exception_safety () =
  let res, spans =
    T.Span.collect (fun () ->
        try
          T.Span.with_ ~name:"boom" (fun () -> failwith "x")
        with Failure _ -> "caught")
  in
  Alcotest.(check string) "exception propagated" "caught" res;
  Alcotest.(check int) "span still delivered" 1 (List.length spans);
  (* the stack unwound: a following span is back at depth 0 *)
  let (), spans2 = T.Span.collect (fun () -> T.Span.with_ ~name:"after" ignore) in
  Alcotest.(check int) "depth reset" 0 (List.hd spans2).T.Span.depth

let test_span_sink_streaming () =
  let seen = ref [] in
  T.Span.with_sink
    (fun s -> seen := s.T.Span.name :: !seen)
    (fun () ->
       T.Span.with_ ~name:"p" (fun () -> T.Span.with_ ~name:"c" ignore));
  (* sinks see completion order: children before parents *)
  Alcotest.(check (list string)) "completion order" [ "p"; "c" ] !seen

(* --- metrics --- *)

let test_metrics_noop_without_scope () =
  Alcotest.(check bool) "disabled" false (T.Metrics.enabled ());
  (* recording outside any scope is a silent no-op, even for bad values *)
  T.Metrics.incr "flow/runs_total";
  T.Metrics.observe "rcnet/nodes" 3.

let test_metrics_counter_gauge () =
  let (), dump =
    T.Metrics.collect (fun () ->
        T.Metrics.incr "flow/runs_total";
        T.Metrics.incr ~n:2 "flow/runs_total";
        T.Metrics.set ~label:"place" "flow/stage_seconds" 0.25;
        T.Metrics.set ~label:"place" "flow/stage_seconds" 0.5)
  in
  Alcotest.(check int) "counter sums" 3 (T.Metrics.counter dump "flow/runs_total");
  Alcotest.(check (option (float 1e-12))) "gauge keeps last" (Some 0.5)
    (T.Metrics.gauge ~label:"place" dump "flow/stage_seconds");
  Alcotest.(check int) "unlabelled series distinct" 0
    (T.Metrics.counter ~label:"zzz" dump "flow/runs_total")

let test_metrics_unknown_id_raises () =
  let in_scope f = fst (T.Metrics.collect f) in
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Telemetry.Metrics: unregistered metric id no/such")
    (fun () -> in_scope (fun () -> T.Metrics.incr "no/such"));
  (* kind mismatch: flow/runs_total is a counter, not a gauge *)
  Alcotest.(check bool) "kind mismatch raises" true
    (try
       in_scope (fun () -> T.Metrics.set "flow/runs_total" 1.);
       false
     with Invalid_argument _ -> true)

let test_metrics_histogram_edges () =
  (* rcnet/nodes buckets: 4 16 64 256 1024 4096, upper-inclusive *)
  let (), dump =
    T.Metrics.collect (fun () ->
        List.iter
          (fun v -> T.Metrics.observe "rcnet/nodes" v)
          [ 4.; 5.; 16.; 4096.; 4097. ])
  in
  match T.Metrics.find dump "rcnet/nodes" with
  | Some (T.Metrics.Dist { bounds = _; counts; sum; total }) ->
    Alcotest.(check int) "total" 5 total;
    Alcotest.(check (float 1e-9)) "sum" 8218. sum;
    (* 4. -> bucket <=4; 5. and 16. -> bucket <=16; 4096. -> last bound;
       4097. -> overflow *)
    Alcotest.(check int) "le 4" 1 counts.(0);
    Alcotest.(check int) "le 16" 2 counts.(1);
    Alcotest.(check int) "le 4096" 1 counts.(5);
    Alcotest.(check int) "overflow" 1 counts.(Array.length counts - 1)
  | _ -> Alcotest.fail "expected a histogram"

let test_metrics_nested_scopes_aggregate () =
  let (), outer =
    T.Metrics.collect (fun () ->
        let (), inner =
          T.Metrics.collect (fun () -> T.Metrics.incr "flow/runs_total")
        in
        T.Metrics.incr "flow/runs_total";
        Alcotest.(check int) "inner sees only its own" 1
          (T.Metrics.counter inner "flow/runs_total"))
  in
  Alcotest.(check int) "outer aggregates both" 2
    (T.Metrics.counter outer "flow/runs_total")

(* --- registry --- *)

let test_registry_catalogue () =
  let ids = T.Registry.ids in
  Alcotest.(check bool) "non-empty" true (List.length ids > 15);
  Alcotest.(check (list string)) "sorted unique" (List.sort_uniq compare ids) ids;
  List.iter
    (fun id ->
       Alcotest.(check bool) (id ^ " findable") true
         (Option.is_some (T.Registry.find id)))
    ids;
  Alcotest.(check bool) "core ids present" true
    (List.for_all
       (fun id -> List.mem id ids)
       [ "flow/stage_seconds"; "route/vias"; "extract/via_cuts";
         "rcnet/elmore_solves_total"; "verify/rule_fired_total" ])

(* --- JSON --- *)

let test_json_roundtrip () =
  let doc =
    T.Json.Obj
      [ ("a", T.Json.Num 1.5);
        ("b", T.Json.Str "x\"y\n\xe2\x82\xac");
        ("c", T.Json.Arr [ T.Json.Null; T.Json.Bool true; T.Json.Num 3. ]) ]
  in
  match T.Json.parse (T.Json.to_string doc) with
  | Ok parsed -> Alcotest.(check bool) "roundtrip" true (parsed = doc)
  | Error e -> Alcotest.fail e

let test_json_parse_errors () =
  Alcotest.(check bool) "trailing garbage" true
    (Result.is_error (T.Json.parse "{} x"));
  Alcotest.(check bool) "bare word" true (Result.is_error (T.Json.parse "nope"));
  Alcotest.(check bool) "unterminated" true
    (Result.is_error (T.Json.parse "[1, 2"))

(* --- Chrome trace --- *)

let test_chrome_trace_file () =
  let path = Filename.temp_file "ccdac_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       T.Sink.with_
         (T.Sink.chrome_trace ~path)
         (fun () ->
            T.Span.with_ ~name:"root"
              ~attrs:[ ("bits", T.Span.Int 8) ]
              (fun () -> T.Span.with_ ~name:"child" ignore));
       let ic = open_in path in
       let len = in_channel_length ic in
       let body = really_input_string ic len in
       close_in ic;
       match T.Json.parse body with
       | Error e -> Alcotest.fail ("trace not parseable: " ^ e)
       | Ok doc ->
         let all =
           Option.get (T.Json.to_list (Option.get (T.Json.member "traceEvents" doc)))
         in
         let ph e =
           Option.bind (T.Json.member "ph" e) T.Json.to_str
         in
         (* the array leads with process/thread metadata events *)
         let metadata, events =
           List.partition (fun e -> ph e = Some "M") all
         in
         Alcotest.(check int) "two metadata events" 2 (List.length metadata);
         let meta_arg e =
           Option.bind (T.Json.member "args" e) (fun a ->
               Option.bind (T.Json.member "name" a) T.Json.to_str)
         in
         Alcotest.(check (list (option string))) "process and thread names"
           [ Some "ccdac"; Some "root bits=8" ]
           (List.map meta_arg metadata);
         Alcotest.(check int) "two events" 2 (List.length events);
         let names =
           List.filter_map
             (fun e -> Option.bind (T.Json.member "name" e) T.Json.to_str)
             events
         in
         Alcotest.(check (list string)) "start order" [ "root"; "child" ] names;
         List.iter
           (fun e ->
              List.iter
                (fun k ->
                   Alcotest.(check bool) (k ^ " present") true
                     (Option.is_some (T.Json.member k e)))
                [ "ph"; "ts"; "dur"; "pid"; "tid" ];
              let dur =
                Option.get (T.Json.to_float (Option.get (T.Json.member "dur" e)))
              in
              Alcotest.(check bool) "dur >= 0" true (dur >= 0.))
           events;
         (* the root span's interval contains the child's *)
         let ts e =
           Option.get (T.Json.to_float (Option.get (T.Json.member "ts" e)))
         in
         let dur e =
           Option.get (T.Json.to_float (Option.get (T.Json.member "dur" e)))
         in
         match events with
         | [ root; child ] ->
           Alcotest.(check bool) "nested interval" true
             (ts child >= ts root && ts child +. dur child <= ts root +. dur root +. 1.)
         | _ -> Alcotest.fail "expected two events")

(* With memory sampling on, every span grows "C" heap counter events
   (two per span: heap at entry and at exit) and the "X" event carries
   alloc args.  test_chrome_trace_file above pins the sampling-off shape
   — exactly two non-metadata events — so viewers never see counters
   unless asked for. *)
let test_chrome_trace_heap_counters () =
  let spans =
    T.Memory.with_enabled true @@ fun () ->
    snd
      (T.Span.collect (fun () ->
           T.Span.with_ ~name:"root" (fun () ->
               T.Span.with_ ~name:"child" ignore)))
  in
  match T.Json.member "traceEvents" (T.Sink.events_json spans) with
  | None -> Alcotest.fail "no traceEvents"
  | Some evs ->
    let all = Option.get (T.Json.to_list evs) in
    let ph e = Option.bind (T.Json.member "ph" e) T.Json.to_str in
    let counters = List.filter (fun e -> ph e = Some "C") all in
    Alcotest.(check int) "two heap counters per span" 4
      (List.length counters);
    List.iter
      (fun e ->
         Alcotest.(check (option string)) "counter name" (Some "heap_mb")
           (Option.bind (T.Json.member "name" e) T.Json.to_str);
         let heap =
           Option.bind (T.Json.member "args" e) (fun a ->
               Option.bind (T.Json.member "heap_mb" a) T.Json.to_float)
         in
         Alcotest.(check bool) "heap sample >= 0" true
           (match heap with Some h -> h >= 0. | None -> false))
      counters;
    (* the duration events gained allocation args *)
    List.iter
      (fun e ->
         if ph e = Some "X" then
           Alcotest.(check bool) "alloc_mb arg present" true
             (Option.is_some
                (Option.bind (T.Json.member "args" e)
                   (T.Json.member "alloc_mb"))))
      all

(* --- summary + flow instrumentation --- *)

let flow_stages = [ "place"; "route"; "verify"; "lvs"; "extract"; "analyse" ]

let test_flow_summary_stages () =
  let r = Ccdac.Flow.run ~bits:6 Ccplace.Style.Spiral in
  let t = r.Ccdac.Flow.telemetry in
  Alcotest.(check string) "root name" "flow" t.T.Summary.name;
  Alcotest.(check (list string)) "exactly the six stages, in order"
    flow_stages (T.Summary.stage_names t);
  List.iter
    (fun (_, s) -> Alcotest.(check bool) "stage duration >= 0" true (s >= 0.))
    t.T.Summary.stages;
  Alcotest.(check bool) "total covers stages" true
    (t.T.Summary.total_s
     >= List.fold_left (fun acc (_, s) -> acc +. s) 0. t.T.Summary.stages /. 2.)

let test_flow_elapsed_is_place_plus_route () =
  let r = Ccdac.Flow.run ~bits:6 Ccplace.Style.Chessboard in
  let t = r.Ccdac.Flow.telemetry in
  let stage n = Option.get (T.Summary.stage_seconds t n) in
  Alcotest.(check (float 1e-12)) "derived accessor"
    (stage "place" +. stage "route")
    (Ccdac.Flow.elapsed_place_route_s r);
  (* the verify gate ran, took measurable time, and is excluded *)
  Alcotest.(check bool) "verify stage timed" true (stage "verify" >= 0.);
  Alcotest.(check bool) "verify excluded" true
    (r.Ccdac.Flow.elapsed_place_route_s
     <= t.T.Summary.total_s -. stage "verify" +. 1e-9)

let test_flow_no_verify_stage_when_disabled () =
  let r = Ccdac.Flow.run ~verify:false ~bits:6 Ccplace.Style.Spiral in
  Alcotest.(check (list string)) "verify stage absent"
    [ "place"; "route"; "extract"; "analyse" ]
    (T.Summary.stage_names r.Ccdac.Flow.telemetry)

let test_flow_metrics_recorded () =
  let r = Ccdac.Flow.run ~bits:6 Ccplace.Style.Spiral in
  let m = r.Ccdac.Flow.telemetry.T.Summary.metrics in
  Alcotest.(check int) "one run" 1 (T.Metrics.counter m "flow/runs_total");
  Alcotest.(check (option (float 1e-9)))
    "via gauge matches the routed layout"
    (Some
       (float_of_int (List.length r.Ccdac.Flow.layout.Ccroute.Layout.vias)))
    (T.Metrics.gauge m "route/vias");
  (* per-capacitor extraction series exist for C0..C6 at 6 bits *)
  List.iter
    (fun cap ->
       let label = Printf.sprintf "C%d" cap in
       Alcotest.(check bool) (label ^ " via_cuts present") true
         (Option.is_some (T.Metrics.gauge ~label m "extract/via_cuts")))
    [ 0; 1; 6 ];
  Alcotest.(check bool) "elmore solves counted" true
    (T.Metrics.counter m "rcnet/elmore_solves_total" > 0);
  Alcotest.(check bool) "verify rules audited" true
    (T.Metrics.counter ~label:"layout" m "verify/checks_total" > 0);
  (* all five stage gauges present *)
  List.iter
    (fun stage ->
       Alcotest.(check bool) (stage ^ " stage gauge") true
         (Option.is_some (T.Metrics.gauge ~label:stage m "flow/stage_seconds")))
    flow_stages

let test_summary_empty_placeholder () =
  Alcotest.(check (list string)) "no stages" []
    (T.Summary.stage_names T.Summary.empty);
  Alcotest.(check (float 1e-12)) "no runtime" 0.
    (T.Summary.place_route_seconds T.Summary.empty)

let () =
  Alcotest.run "telemetry"
    [ ( "clock",
        [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "units" `Quick test_clock_units ] );
      ( "span",
        [ Alcotest.test_case "inactive fast path" `Quick
            test_span_inactive_fast_path;
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
          Alcotest.test_case "sink streaming" `Quick test_span_sink_streaming ] );
      ( "metrics",
        [ Alcotest.test_case "noop without scope" `Quick
            test_metrics_noop_without_scope;
          Alcotest.test_case "counter and gauge" `Quick
            test_metrics_counter_gauge;
          Alcotest.test_case "unknown id raises" `Quick
            test_metrics_unknown_id_raises;
          Alcotest.test_case "histogram bucket edges" `Quick
            test_metrics_histogram_edges;
          Alcotest.test_case "nested scopes aggregate" `Quick
            test_metrics_nested_scopes_aggregate ] );
      ( "registry",
        [ Alcotest.test_case "catalogue" `Quick test_registry_catalogue ] );
      ( "json",
        [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors ] );
      ( "chrome-trace",
        [ Alcotest.test_case "file format" `Quick test_chrome_trace_file;
          Alcotest.test_case "heap counters" `Quick
            test_chrome_trace_heap_counters ] );
      ( "flow",
        [ Alcotest.test_case "summary stages" `Quick test_flow_summary_stages;
          Alcotest.test_case "elapsed = place + route" `Quick
            test_flow_elapsed_is_place_plus_route;
          Alcotest.test_case "verify stage optional" `Quick
            test_flow_no_verify_stage_when_disabled;
          Alcotest.test_case "metrics recorded" `Quick
            test_flow_metrics_recorded;
          Alcotest.test_case "empty placeholder" `Quick
            test_summary_empty_placeholder ] ) ]
