(* Headline reproduction checks: the qualitative results of the paper's
   Tables I-III and Fig. 6 must hold on every run (see EXPERIMENTS.md for
   the quantitative comparison).  These are integration tests across the
   whole stack. *)

let by_label rows label =
  match
    List.find_opt
      (fun (r : Ccdac.Flow.result) ->
         Ccplace.Style.label r.Ccdac.Flow.style = label)
      rows
  with
  | Some r -> r
  | None -> Alcotest.failf "method %s missing" label

(* run the four methods once per bit count and reuse across checks *)
let table =
  lazy
    (List.map (fun bits -> (bits, Ccdac.Sweep.row ~bits ())) [ 6; 7; 8; 9; 10 ])

let iter_rows f = List.iter (fun (bits, rows) -> f bits rows) (Lazy.force table)

(* Table II: f3dB ordering - spiral best, BC second, prior work last *)
let test_f3db_spiral_wins () =
  iter_rows (fun bits rows ->
      let f label = (by_label rows label).Ccdac.Flow.f3db_mhz in
      if not (f "S" > f "BC") then
        Alcotest.failf "%d-bit: S (%.1f) must beat BC (%.1f)" bits (f "S") (f "BC");
      if not (f "BC" > f "[7]") then
        Alcotest.failf "%d-bit: BC must beat [7]" bits;
      if not (f "BC" > f "[1]") then
        Alcotest.failf "%d-bit: BC must beat [1]" bits)

let test_f3db_factors () =
  (* S beats the chessboard by a large factor, growing with resolution *)
  iter_rows (fun bits rows ->
      let f label = (by_label rows label).Ccdac.Flow.f3db_mhz in
      let factor = f "S" /. f "[7]" in
      if factor < 3. then
        Alcotest.failf "%d-bit: S/[7] factor %.1f too small" bits factor)

let test_f3db_decreases_with_bits () =
  let last = ref Float.infinity in
  iter_rows (fun _bits rows ->
      let f = (by_label rows "S").Ccdac.Flow.f3db_mhz in
      Alcotest.(check bool) "monotone decreasing" true (f < !last);
      last := f)

(* Table II: INL/DNL - chessboard best, spiral worst, BC no worse than S;
   and everything within 0.5 LSB except the spiral DNL at 10 bits, which
   our stricter differential-sigma DNL model pushes slightly above the
   paper's common-mode estimate *)
let test_nonlinearity_ordering () =
  iter_rows (fun bits rows ->
      let dnl label = (by_label rows label).Ccdac.Flow.max_dnl in
      if not (dnl "[7]" <= dnl "S") then
        Alcotest.failf "%d-bit: [7] DNL must not exceed S" bits;
      if not (dnl "BC" <= dnl "S" +. 1e-9) then
        Alcotest.failf "%d-bit: BC DNL must not exceed S" bits)

let test_nonlinearity_acceptable () =
  iter_rows (fun bits rows ->
      List.iter
        (fun (r : Ccdac.Flow.result) ->
           if r.Ccdac.Flow.max_inl > 0.5 then
             Alcotest.failf "%d-bit %s INL %.3f > 0.5 LSB" bits
               (Ccplace.Style.label r.Ccdac.Flow.style) r.Ccdac.Flow.max_inl;
           if bits < 10 && r.Ccdac.Flow.max_dnl > 0.5 then
             Alcotest.failf "%d-bit %s DNL %.3f > 0.5 LSB" bits
               (Ccplace.Style.label r.Ccdac.Flow.style) r.Ccdac.Flow.max_dnl)
        rows)

(* Table I: interconnect metrics - spiral has the fewest vias, the least
   wirelength and the lowest critical-bit resistance; chessboard the most *)
let test_via_ordering () =
  iter_rows (fun bits rows ->
      let nv label =
        (by_label rows label).Ccdac.Flow.parasitics.Extract.Parasitics.total_via_cuts
      in
      if not (nv "S" < nv "[7]") then
        Alcotest.failf "%d-bit: S vias must be < [7]" bits;
      (* at 6 bits the BC/[7] via margin is razor thin (78 vs 81 in the
         paper's Table I); parallel-wire cuts can tip it, so the strict
         ordering is asserted from 7 bits up *)
      if bits >= 7 && not (nv "BC" < nv "[7]") then
        Alcotest.failf "%d-bit: BC vias must be < [7]" bits;
      if bits = 6 && not (nv "BC" < 2 * nv "[7]") then
        Alcotest.failf "6-bit: BC vias must stay comparable to [7]")

let test_wirelength_ordering () =
  iter_rows (fun bits rows ->
      let l label =
        (by_label rows label).Ccdac.Flow.parasitics.Extract.Parasitics.total_wirelength
      in
      if not (l "S" < l "[7]" && l "S" < l "[1]" && l "S" <= l "BC" +. 1e-9) then
        Alcotest.failf "%d-bit: S wirelength must be minimal" bits)

let test_critical_resistance_ordering () =
  iter_rows (fun bits rows ->
      let r label =
        let res = by_label rows label in
        Extract.Parasitics.total_resistance
          res.Ccdac.Flow.parasitics.Extract.Parasitics.per_bit.(res.Ccdac.Flow.critical_bit)
      in
      if not (r "S" < r "BC" && r "BC" < r "[7]") then
        Alcotest.failf "%d-bit: critical R must order S < BC < [7]" bits)

let test_wire_cap_ordering () =
  iter_rows (fun bits rows ->
      let c label =
        (by_label rows label).Ccdac.Flow.parasitics.Extract.Parasitics.total_wire_cap
      in
      if not (c "S" < c "[7]") then
        Alcotest.failf "%d-bit: S C^wire must be < [7]" bits)

let test_coupling_ordering () =
  iter_rows (fun bits rows ->
      let c label =
        (by_label rows label).Ccdac.Flow.parasitics.Extract.Parasitics.total_coupling_cap
      in
      if not (c "S" < c "[7]") then
        Alcotest.failf "%d-bit: S C^BB must be < [7]" bits)

(* Table II: area - spiral lowest or tied; [7] doubles area at odd N *)
let test_area_spiral_low () =
  iter_rows (fun bits rows ->
      let a label = (by_label rows label).Ccdac.Flow.area in
      if not (a "S" <= 1.05 *. a "[7]" && a "S" <= 1.05 *. a "BC") then
        Alcotest.failf "%d-bit: spiral area must be (near-)minimal" bits)

let test_chessboard_odd_doubling () =
  let area bits =
    let rows = List.assoc bits (Lazy.force table) in
    (by_label rows "[7]").Ccdac.Flow.area
  in
  (* [7] at 7 bits uses the 8-bit array; at 9 bits the 10-bit array *)
  Alcotest.(check bool) "7-bit ~ 8-bit" true
    (Float.abs (area 7 -. area 8) /. area 8 < 0.05);
  Alcotest.(check bool) "9-bit ~ 10-bit" true
    (Float.abs (area 9 -. area 10) /. area 10 < 0.05)

(* Fig. 6a: parallel wires speed up the spiral with diminishing returns *)
let test_parallel_improvement () =
  let points =
    Ccdac.Sweep.parallel_sweep ~bits:8 ~style:Ccplace.Style.Spiral [ 1; 2; 4; 6 ]
  in
  match points with
  | [ (1, f1); (2, f2); (4, f4); (6, f6) ] ->
    let i2 = f2 /. f1 and i4 = f4 /. f1 and i6 = f6 /. f1 in
    Alcotest.(check bool) "k=2 improvement > 1.5" true (i2 > 1.5);
    Alcotest.(check bool) "k=4 >= k=2" true (i4 >= i2);
    Alcotest.(check bool) "diminishing returns" true
      (i6 -. i4 < i4 -. i2 +. 1e-9)
  | _ -> Alcotest.fail "unexpected sweep shape"

(* Fig. 6b: all methods normalised to S stay below 1 *)
let test_normalised_below_spiral () =
  iter_rows (fun bits rows ->
      let s = (by_label rows "S").Ccdac.Flow.f3db_mhz in
      List.iter
        (fun (r : Ccdac.Flow.result) ->
           if Ccplace.Style.label r.Ccdac.Flow.style <> "S" then
             if not (r.Ccdac.Flow.f3db_mhz /. s < 1.) then
               Alcotest.failf "%d-bit: %s not below S" bits
                 (Ccplace.Style.label r.Ccdac.Flow.style))
        rows)

(* Table III: constructive runtimes - fractions of a second *)
let test_runtimes_constructive () =
  List.iter
    (fun bits ->
       let _, spiral_s = Ccdac.Flow.place_route ~bits Ccplace.Style.Spiral in
       let _, bc_s =
         Ccdac.Flow.place_route ~bits (Ccplace.Style.block_default ~bits)
       in
       Alcotest.(check bool)
         (Printf.sprintf "%d-bit under 5 s" bits)
         true
         (spiral_s < 5. && bc_s < 5.))
    [ 6; 8; 10 ]

(* FinFET premise (Sec. I): prior dispersion-first methods were viable in
   older bulk nodes — the chessboard still clears a GHz-class switching
   target there — but their wire/via-heavy structure collapses by an order
   of magnitude in a FinFET-class stack while the spiral stays fast *)
let test_bulk_node_ablation () =
  let chess tech =
    (Ccdac.Flow.run ~tech ~bits:8 Ccplace.Style.Chessboard).Ccdac.Flow.f3db_mhz
  in
  let target_mhz = 2000. in
  Alcotest.(check bool) "chessboard viable in bulk" true
    (chess Tech.Process.bulk_legacy > target_mhz);
  Alcotest.(check bool) "chessboard collapses in FinFET" true
    (chess Tech.Process.finfet_12nm < target_mhz /. 2.);
  let spiral =
    (Ccdac.Flow.run ~tech:Tech.Process.finfet_12nm ~bits:8 Ccplace.Style.Spiral)
      .Ccdac.Flow.f3db_mhz
  in
  Alcotest.(check bool) "spiral still fast in FinFET" true (spiral > target_mhz)

let () =
  Alcotest.run "paper"
    [ ( "f3dB (Table II, Fig. 6b)",
        [ Alcotest.test_case "spiral wins" `Slow test_f3db_spiral_wins;
          Alcotest.test_case "factors" `Slow test_f3db_factors;
          Alcotest.test_case "decreases with bits" `Slow test_f3db_decreases_with_bits;
          Alcotest.test_case "normalised" `Slow test_normalised_below_spiral ] );
      ( "nonlinearity (Table II)",
        [ Alcotest.test_case "ordering" `Slow test_nonlinearity_ordering;
          Alcotest.test_case "acceptable" `Slow test_nonlinearity_acceptable ] );
      ( "interconnect (Table I)",
        [ Alcotest.test_case "vias" `Slow test_via_ordering;
          Alcotest.test_case "wirelength" `Slow test_wirelength_ordering;
          Alcotest.test_case "critical R" `Slow test_critical_resistance_ordering;
          Alcotest.test_case "wire cap" `Slow test_wire_cap_ordering;
          Alcotest.test_case "coupling" `Slow test_coupling_ordering ] );
      ( "area (Table II)",
        [ Alcotest.test_case "spiral low" `Slow test_area_spiral_low;
          Alcotest.test_case "odd doubling" `Slow test_chessboard_odd_doubling ] );
      ( "parallel wires (Fig. 6a)",
        [ Alcotest.test_case "improvement" `Slow test_parallel_improvement ] );
      ( "runtimes (Table III)",
        [ Alcotest.test_case "constructive" `Slow test_runtimes_constructive ] );
      ( "ablation",
        [ Alcotest.test_case "bulk node" `Slow test_bulk_node_ablation ] ) ]
