(* Tests for the FFT substrate and spectral DAC metrics. *)

let check_float = Alcotest.(check (float 1e-6))
let tech = Tech.Process.finfet_12nm

(* --- fft --- *)

let test_fft_impulse () =
  (* FFT of an impulse is flat *)
  let re = Array.make 8 0. and im = Array.make 8 0. in
  re.(0) <- 1.;
  Dacmodel.Fft.fft ~re ~im;
  for k = 0 to 7 do
    check_float "flat re" 1. re.(k);
    check_float "flat im" 0. im.(k)
  done

let test_fft_single_tone () =
  (* cos(2 pi 3 t): energy only in bins 3 and n-3 *)
  let n = 64 in
  let re =
    Array.init n (fun i ->
        cos (2. *. Float.pi *. 3. *. float_of_int i /. float_of_int n))
  in
  let im = Array.make n 0. in
  Dacmodel.Fft.fft ~re ~im;
  for k = 0 to n - 1 do
    let m = Dacmodel.Fft.magnitude ~re ~im k in
    if k = 3 || k = n - 3 then
      Alcotest.(check (float 1e-6)) "tone bin" (float_of_int n /. 2.) m
    else if m > 1e-6 then Alcotest.failf "leakage at bin %d: %g" k m
  done

let test_fft_roundtrip () =
  let n = 32 in
  let original = Array.init n (fun i -> sin (0.3 *. float_of_int i) +. 0.1) in
  let re = Array.copy original and im = Array.make n 0. in
  Dacmodel.Fft.fft ~re ~im;
  Dacmodel.Fft.ifft ~re ~im;
  for i = 0 to n - 1 do
    if Float.abs (re.(i) -. original.(i)) > 1e-9 then
      Alcotest.failf "roundtrip mismatch at %d" i
  done

let test_fft_parseval () =
  (* sum |x|^2 = (1/n) sum |X|^2 *)
  let n = 128 in
  let re = Array.init n (fun i -> Float.rem (float_of_int (i * 37)) 11. -. 5.) in
  let time_energy = Array.fold_left (fun a x -> a +. (x *. x)) 0. re in
  let im = Array.make n 0. in
  Dacmodel.Fft.fft ~re ~im;
  let freq_energy = ref 0. in
  for k = 0 to n - 1 do
    let m = Dacmodel.Fft.magnitude ~re ~im k in
    freq_energy := !freq_energy +. (m *. m)
  done;
  Alcotest.(check bool) "parseval" true
    (Float.abs (time_energy -. (!freq_energy /. float_of_int n))
     /. time_energy
     < 1e-9)

let test_fft_rejects_bad_length () =
  Alcotest.(check bool) "non power of two" true
    (try Dacmodel.Fft.fft ~re:(Array.make 6 0.) ~im:(Array.make 6 0.); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "mismatch" true
    (try Dacmodel.Fft.fft ~re:(Array.make 8 0.) ~im:(Array.make 4 0.); false
     with Invalid_argument _ -> true)

let test_hann_window () =
  let w = Dacmodel.Fft.hann 16 in
  check_float "starts at 0" 0. w.(0);
  Alcotest.(check bool) "peak near centre" true (w.(8) > 0.99)

let test_power_spectrum_total () =
  (* one-sided power of a unit cosine is 1/2 at its bin *)
  let n = 64 in
  let re =
    Array.init n (fun i ->
        cos (2. *. Float.pi *. 5. *. float_of_int i /. float_of_int n))
  in
  let im = Array.make n 0. in
  Dacmodel.Fft.fft ~re ~im;
  let ps = Dacmodel.Fft.power_spectrum ~re ~im in
  check_float "bin 5 power" 0.5 ps.(5)

(* --- spectrum --- *)

let ideal_vout bits =
  Array.init (1 lsl bits) (fun code ->
      Dacmodel.Transfer.ideal ~bits ~code ~vref:1.)

let test_ideal_dac_hits_quantisation_bound () =
  (* a perfect 8-bit DAC: SNDR within ~1.5 dB of 6.02 N + 1.76 *)
  let s = Dacmodel.Spectrum.of_curve ~bits:8 ~vout:(ideal_vout 8) () in
  let bound = Dacmodel.Spectrum.ideal_sndr_db ~bits:8 in
  Alcotest.(check bool)
    (Printf.sprintf "SNDR %.1f dB vs bound %.1f dB" s.Dacmodel.Spectrum.sndr_db bound)
    true
    (Float.abs (s.Dacmodel.Spectrum.sndr_db -. bound) < 2.)

let test_enob_of_ideal_dac () =
  let s = Dacmodel.Spectrum.of_curve ~bits:8 ~vout:(ideal_vout 8) () in
  Alcotest.(check bool) "ENOB ~ N" true
    (s.Dacmodel.Spectrum.enob > 7.6 && s.Dacmodel.Spectrum.enob < 8.3)

let test_distortion_lowers_sndr () =
  (* add a compressive cubic nonlinearity *)
  let bits = 8 in
  let vout =
    Array.map (fun v -> v -. (0.05 *. v *. v *. v)) (ideal_vout bits)
  in
  let bent = Dacmodel.Spectrum.of_curve ~bits ~vout () in
  let clean = Dacmodel.Spectrum.of_curve ~bits ~vout:(ideal_vout bits) () in
  Alcotest.(check bool) "SNDR drops" true
    (bent.Dacmodel.Spectrum.sndr_db < clean.Dacmodel.Spectrum.sndr_db -. 3.);
  Alcotest.(check bool) "SFDR drops" true
    (bent.Dacmodel.Spectrum.sfdr_db < clean.Dacmodel.Spectrum.sfdr_db -. 3.);
  Alcotest.(check bool) "THD visible" true
    (bent.Dacmodel.Spectrum.thd_db > -80.)

let test_spectrum_fields () =
  let s = Dacmodel.Spectrum.of_curve ~bits:6 ~vout:(ideal_vout 6) ~samples:1024 () in
  Alcotest.(check int) "signal bin" 63 s.Dacmodel.Spectrum.signal_bin;
  Alcotest.(check int) "spectrum bins" 513
    (Array.length s.Dacmodel.Spectrum.spectrum_db);
  Alcotest.(check (float 1e-9)) "signal at 0 dBc" 0.
    s.Dacmodel.Spectrum.spectrum_db.(63)

let test_spectrum_rejects_bad_args () =
  Alcotest.(check bool) "bad vout length" true
    (try ignore (Dacmodel.Spectrum.of_curve ~bits:8 ~vout:(ideal_vout 6) ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "even cycles" true
    (try
       ignore (Dacmodel.Spectrum.of_curve ~bits:6 ~vout:(ideal_vout 6) ~cycles:64 ());
       false
     with Invalid_argument _ -> true)

let test_layout_mismatch_separates_styles () =
  (* a large common mismatch sample: the dispersed chessboard keeps a
     cleaner spectrum than the clustered spiral *)
  let noisy = { tech with Tech.Process.mismatch_coeff = 0.02 } in
  let sfdr style =
    let p = Ccplace.Style.place ~bits:8 style in
    let cov =
      Capmodel.Covariance.build noisy
        (Ccgrid.Placement.positions_by_cap noisy p)
    in
    let sample = Capmodel.Gauss.draw (Capmodel.Gauss.sampler ~seed:9 cov) in
    (Dacmodel.Spectrum.analyze noisy ~sample p).Dacmodel.Spectrum.sfdr_db
  in
  Alcotest.(check bool) "chessboard cleaner" true
    (sfdr Ccplace.Style.Chessboard > sfdr Ccplace.Style.Spiral)

let prop_fft_linearity =
  QCheck.Test.make ~name:"fft is linear" ~count:30
    QCheck.(pair (float_range (-3.) 3.) (float_range (-3.) 3.))
    (fun (a, b) ->
       let n = 16 in
       let x = Array.init n (fun i -> sin (0.7 *. float_of_int i)) in
       let y = Array.init n (fun i -> cos (1.3 *. float_of_int i)) in
       let tx = Array.copy x and txi = Array.make n 0. in
       let ty = Array.copy y and tyi = Array.make n 0. in
       Dacmodel.Fft.fft ~re:tx ~im:txi;
       Dacmodel.Fft.fft ~re:ty ~im:tyi;
       let z = Array.init n (fun i -> (a *. x.(i)) +. (b *. y.(i))) in
       let tz = Array.copy z and tzi = Array.make n 0. in
       Dacmodel.Fft.fft ~re:tz ~im:tzi;
       let ok = ref true in
       for k = 0 to n - 1 do
         if Float.abs (tz.(k) -. ((a *. tx.(k)) +. (b *. ty.(k)))) > 1e-6 then
           ok := false
       done;
       !ok)

let () =
  Alcotest.run "spectrum"
    [ ( "fft",
        [ Alcotest.test_case "impulse" `Quick test_fft_impulse;
          Alcotest.test_case "single tone" `Quick test_fft_single_tone;
          Alcotest.test_case "roundtrip" `Quick test_fft_roundtrip;
          Alcotest.test_case "parseval" `Quick test_fft_parseval;
          Alcotest.test_case "bad length" `Quick test_fft_rejects_bad_length;
          Alcotest.test_case "hann" `Quick test_hann_window;
          Alcotest.test_case "power spectrum" `Quick test_power_spectrum_total ] );
      ( "dac spectrum",
        [ Alcotest.test_case "quantisation bound" `Quick test_ideal_dac_hits_quantisation_bound;
          Alcotest.test_case "ENOB" `Quick test_enob_of_ideal_dac;
          Alcotest.test_case "distortion" `Quick test_distortion_lowers_sndr;
          Alcotest.test_case "fields" `Quick test_spectrum_fields;
          Alcotest.test_case "bad args" `Quick test_spectrum_rejects_bad_args;
          Alcotest.test_case "styles separate" `Slow test_layout_mismatch_separates_styles ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_fft_linearity ] ) ]
