(* Tests for the switching-power model. *)

let tech = Tech.Process.finfet_12nm
let counts6 = Ccgrid.Weights.unit_counts ~bits:6
let no_wire _ = 0.

let test_load_is_units_plus_wire () =
  let load =
    Dacmodel.Power.bottom_plate_load ~tech ~counts:counts6
      ~wire_cap_of:(fun _ -> 1.5) 6
  in
  Alcotest.(check (float 1e-9)) "32 Cu + wire"
    ((32. *. tech.Tech.Process.unit_cap) +. 1.5)
    load

let test_load_bad_cap () =
  Alcotest.(check bool) "bad id" true
    (try
       ignore
         (Dacmodel.Power.bottom_plate_load ~tech ~counts:counts6
            ~wire_cap_of:no_wire 9);
       false
     with Invalid_argument _ -> true)

let test_energy_positive_and_worst_at_msb () =
  let p =
    Dacmodel.Power.analyze ~tech ~counts:counts6 ~wire_cap_of:no_wire ~bits:6
      ~vref:1. ~f3db_mhz:1000.
  in
  Alcotest.(check bool) "positive" true (p.Dacmodel.Power.average_energy_fj > 0.);
  (* the worst transition is the major carry: all bits toggle *)
  let all_toggle =
    Array.fold_left
      (fun acc k -> acc +. (float_of_int counts6.(k) *. tech.Tech.Process.unit_cap))
      0.
      (Array.init 6 (fun i -> i + 1))
  in
  Alcotest.(check (float 1e-6)) "worst = full toggle" all_toggle
    p.Dacmodel.Power.worst_energy_fj

let test_energy_scales_with_vref_squared () =
  let run vref =
    (Dacmodel.Power.analyze ~tech ~counts:counts6 ~wire_cap_of:no_wire ~bits:6
       ~vref ~f3db_mhz:100.)
      .Dacmodel.Power.average_energy_fj
  in
  Alcotest.(check (float 1e-6)) "4x at 2x vref" (4. *. run 1.) (run 2.)

let test_power_scales_with_rate () =
  let run f =
    (Dacmodel.Power.analyze ~tech ~counts:counts6 ~wire_cap_of:no_wire ~bits:6
       ~vref:1. ~f3db_mhz:f)
      .Dacmodel.Power.average_power_nw
  in
  Alcotest.(check (float 1e-6)) "linear in f" (10. *. run 100.) (run 1000.)

let test_wire_cap_increases_power () =
  let run wire_cap_of =
    (Dacmodel.Power.analyze ~tech ~counts:counts6 ~wire_cap_of ~bits:6 ~vref:1.
       ~f3db_mhz:100.)
      .Dacmodel.Power.average_energy_fj
  in
  Alcotest.(check bool) "wire cap costs energy" true
    (run (fun _ -> 2.) > run no_wire)

(* end-to-end: the chessboard's heavy routing must cost more switching
   energy than the spiral's, at the same DAC *)
let test_chessboard_burns_more () =
  let energy style =
    let r = Ccdac.Flow.run ~bits:8 style in
    let wire_cap_of k =
      r.Ccdac.Flow.parasitics.Extract.Parasitics.per_bit.(k)
        .Extract.Parasitics.bm_wire_cap
    in
    (Dacmodel.Power.analyze ~tech
       ~counts:r.Ccdac.Flow.placement.Ccgrid.Placement.counts ~wire_cap_of
       ~bits:8 ~vref:1. ~f3db_mhz:100.)
      .Dacmodel.Power.average_energy_fj
  in
  Alcotest.(check bool) "chessboard > spiral" true
    (energy Ccplace.Style.Chessboard > energy Ccplace.Style.Spiral)

let prop_average_below_worst =
  QCheck.Test.make ~name:"average <= worst" ~count:30
    QCheck.(int_range 2 10)
    (fun bits ->
       let counts = Ccgrid.Weights.unit_counts ~bits in
       let p =
         Dacmodel.Power.analyze ~tech ~counts ~wire_cap_of:no_wire ~bits
           ~vref:1. ~f3db_mhz:50.
       in
       p.Dacmodel.Power.average_energy_fj
       <= p.Dacmodel.Power.worst_energy_fj +. 1e-9)

let () =
  Alcotest.run "power"
    [ ( "model",
        [ Alcotest.test_case "load" `Quick test_load_is_units_plus_wire;
          Alcotest.test_case "bad cap" `Quick test_load_bad_cap;
          Alcotest.test_case "worst transition" `Quick test_energy_positive_and_worst_at_msb;
          Alcotest.test_case "vref^2" `Quick test_energy_scales_with_vref_squared;
          Alcotest.test_case "rate" `Quick test_power_scales_with_rate;
          Alcotest.test_case "wire cap" `Quick test_wire_cap_increases_power;
          Alcotest.test_case "chessboard burns more" `Quick test_chessboard_burns_more ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_average_below_worst ] ) ]
