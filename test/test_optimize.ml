(* Tests for yield-driven unit-capacitor sizing. *)

let tech = Tech.Process.finfet_12nm

let test_scale_tech () =
  let scaled = Ccdac.Optimize.scale_tech tech ~unit_cap:20. in
  Alcotest.(check (float 1e-9)) "unit cap" 20. scaled.Tech.Process.unit_cap;
  (* 4x capacitance -> 2x cell side (fixed density) *)
  Alcotest.(check (float 1e-9)) "cell width"
    (2. *. tech.Tech.Process.cell_width)
    scaled.Tech.Process.cell_width;
  (* relative mismatch halves *)
  Alcotest.(check (float 1e-12)) "sigma_rel"
    (Tech.Process.sigma_rel tech /. 2.)
    (Tech.Process.sigma_rel scaled)

let test_scale_tech_rejects () =
  Alcotest.(check bool) "non-positive" true
    (try ignore (Ccdac.Optimize.scale_tech tech ~unit_cap:0.); false
     with Invalid_argument _ -> true)

let test_evaluate_fields () =
  let c =
    Ccdac.Optimize.evaluate ~trials:30 ~bits:6 ~style:Ccplace.Style.Spiral
      ~unit_cap:5. ()
  in
  Alcotest.(check (float 1e-9)) "cu recorded" 5. c.Ccdac.Optimize.unit_cap_ff;
  Alcotest.(check bool) "area positive" true (c.Ccdac.Optimize.area > 0.);
  Alcotest.(check bool) "f3dB positive" true (c.Ccdac.Optimize.f3db_mhz > 0.);
  Alcotest.(check int) "trials" 30
    c.Ccdac.Optimize.mc.Dacmodel.Montecarlo.trials

let test_bigger_cu_never_hurts_yield () =
  (* with a deliberately tight bound, yield must not decrease with C_u *)
  let yield cu =
    (Ccdac.Optimize.evaluate ~trials:80 ~bound:0.08 ~bits:8
       ~style:Ccplace.Style.Spiral ~unit_cap:cu ())
      .Ccdac.Optimize.mc.Dacmodel.Montecarlo.yield
  in
  let small = yield 2. and large = yield 50. in
  Alcotest.(check bool)
    (Printf.sprintf "yield(2 fF)=%.2f <= yield(50 fF)=%.2f" small large)
    true (small <= large +. 0.1)

let test_minimum_unit_cap_picks_first_passing () =
  (* a generous bound: the smallest candidate already passes *)
  let best, trace =
    Ccdac.Optimize.minimum_unit_cap ~trials:40 ~bound:5.0 ~target_yield:0.9
      ~bits:6 ~style:Ccplace.Style.Spiral [ 2.; 5.; 10. ]
  in
  (match best with
   | Some c -> Alcotest.(check (float 1e-9)) "smallest" 2. c.Ccdac.Optimize.unit_cap_ff
   | None -> Alcotest.fail "expected a passing candidate");
  Alcotest.(check int) "stopped early" 1 (List.length trace)

let test_minimum_unit_cap_exhausts () =
  (* an impossible bound: nothing passes, full trace returned *)
  let best, trace =
    Ccdac.Optimize.minimum_unit_cap ~trials:30 ~bound:1e-9 ~target_yield:0.99
      ~bits:6 ~style:Ccplace.Style.Spiral [ 2.; 5. ]
  in
  Alcotest.(check bool) "none pass" true (best = None);
  Alcotest.(check int) "both evaluated" 2 (List.length trace)

let test_minimum_unit_cap_rejects_bad_target () =
  Alcotest.(check bool) "target out of range" true
    (try
       ignore
         (Ccdac.Optimize.minimum_unit_cap ~target_yield:1.5 ~bits:6
            ~style:Ccplace.Style.Spiral [ 5. ]);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "optimize"
    [ ( "scaling",
        [ Alcotest.test_case "scale_tech" `Quick test_scale_tech;
          Alcotest.test_case "rejects" `Quick test_scale_tech_rejects ] );
      ( "sizing",
        [ Alcotest.test_case "evaluate" `Quick test_evaluate_fields;
          Alcotest.test_case "monotone yield" `Slow test_bigger_cu_never_hurts_yield;
          Alcotest.test_case "first passing" `Quick test_minimum_unit_cap_picks_first_passing;
          Alcotest.test_case "exhausts" `Quick test_minimum_unit_cap_exhausts;
          Alcotest.test_case "bad target" `Quick test_minimum_unit_cap_rejects_bad_target ] ) ]
