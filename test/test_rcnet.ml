(* Tests for the RC-tree substrate and Elmore delay (Sec. III-B). *)

let check_float = Alcotest.(check (float 1e-9))

let node tree label cap = Rcnet.Rctree.add_node tree ~label ~cap ()

(* --- rctree --- *)

let test_rctree_basics () =
  let t = Rcnet.Rctree.create () in
  let a = node t "a" 1. in
  let b = node t "b" 2. in
  Rcnet.Rctree.add_edge t a b ~r:5.;
  Alcotest.(check int) "nodes" 2 (Rcnet.Rctree.num_nodes t);
  Alcotest.(check int) "edges" 1 (Rcnet.Rctree.num_edges t);
  check_float "cap a" 1. (Rcnet.Rctree.node_cap t a);
  check_float "total" 3. (Rcnet.Rctree.total_cap t);
  Alcotest.(check string) "label" "a" (Rcnet.Rctree.label t a)

let test_rctree_add_cap () =
  let t = Rcnet.Rctree.create () in
  let a = node t "a" 1. in
  Rcnet.Rctree.add_cap t a 2.5;
  check_float "accumulates" 3.5 (Rcnet.Rctree.node_cap t a)

let test_rctree_wire_edge_splits () =
  let t = Rcnet.Rctree.create () in
  let a = node t "a" 0. in
  let b = node t "b" 0. in
  Rcnet.Rctree.wire_edge t a b ~r:1. ~c:4.;
  check_float "half at a" 2. (Rcnet.Rctree.node_cap t a);
  check_float "half at b" 2. (Rcnet.Rctree.node_cap t b)

let test_rctree_grows () =
  let t = Rcnet.Rctree.create () in
  let nodes = Array.init 100 (fun i -> node t (string_of_int i) 1.) in
  Alcotest.(check int) "100 nodes" 100 (Rcnet.Rctree.num_nodes t);
  check_float "caps kept" 1. (Rcnet.Rctree.node_cap t nodes.(73))

let test_rctree_rejects () =
  let t = Rcnet.Rctree.create () in
  let a = node t "a" 0. in
  Alcotest.(check bool) "self loop" true
    (try Rcnet.Rctree.add_edge t a a ~r:1.; false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative r" true
    (try
       let b = node t "b" 0. in
       Rcnet.Rctree.add_edge t a b ~r:(-1.); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative cap" true
    (try ignore (Rcnet.Rctree.add_node t ~label:"x" ~cap:(-1.) ()); false
     with Invalid_argument _ -> true)

(* --- elmore --- *)

let test_elmore_single_rc () =
  (* driver --R--> load C: tau = R * C *)
  let t = Rcnet.Rctree.create () in
  let root = node t "drv" 0. in
  let load = node t "load" 10. in
  Rcnet.Rctree.add_edge t root load ~r:100.;
  check_float "RC" 1000. (Rcnet.Elmore.delay_to t ~root load)

let test_elmore_two_stage_ladder () =
  (* drv -R1- n1(C1) -R2- n2(C2):
     delay(n1) = R1 (C1 + C2); delay(n2) = delay(n1) + R2 C2 *)
  let t = Rcnet.Rctree.create () in
  let root = node t "drv" 0. in
  let n1 = node t "n1" 3. in
  let n2 = node t "n2" 7. in
  Rcnet.Rctree.add_edge t root n1 ~r:10.;
  Rcnet.Rctree.add_edge t n1 n2 ~r:20.;
  let d = Rcnet.Elmore.delays t ~root in
  check_float "n1" (10. *. 10.) d.((n1 : Rcnet.Rctree.node :> int));
  check_float "n2" ((10. *. 10.) +. (20. *. 7.)) d.((n2 : Rcnet.Rctree.node :> int))

let test_elmore_star_balance () =
  (* symmetric star: equal delays on both arms *)
  let t = Rcnet.Rctree.create () in
  let root = node t "drv" 0. in
  let hub = node t "hub" 1. in
  let l1 = node t "l1" 5. in
  let l2 = node t "l2" 5. in
  Rcnet.Rctree.add_edge t root hub ~r:2.;
  Rcnet.Rctree.add_edge t hub l1 ~r:4.;
  Rcnet.Rctree.add_edge t hub l2 ~r:4.;
  let d = Rcnet.Elmore.delays t ~root in
  check_float "balanced"
    d.((l1 : Rcnet.Rctree.node :> int))
    d.((l2 : Rcnet.Rctree.node :> int));
  (* hub delay: R_root * total downstream C = 2 * 11 *)
  check_float "hub" 22. d.((hub : Rcnet.Rctree.node :> int))

let test_elmore_root_zero () =
  let t = Rcnet.Rctree.create () in
  let root = node t "drv" 5. in
  let leaf = node t "leaf" 1. in
  Rcnet.Rctree.add_edge t root leaf ~r:1.;
  check_float "root delay 0" 0. (Rcnet.Elmore.delay_to t ~root root)

let test_elmore_max_delay () =
  let t = Rcnet.Rctree.create () in
  let root = node t "drv" 0. in
  let near = node t "near" 1. in
  let far = node t "far" 1. in
  Rcnet.Rctree.add_edge t root near ~r:1.;
  Rcnet.Rctree.add_edge t near far ~r:100.;
  check_float "max over subset" (1. *. 2.)
    (Rcnet.Elmore.max_delay t ~root ~over:[ near ]);
  check_float "max over all" (2. +. 100.)
    (Rcnet.Elmore.max_delay t ~root ~over:[])

let test_elmore_rejects_cycle () =
  let t = Rcnet.Rctree.create () in
  let a = node t "a" 0. in
  let b = node t "b" 0. in
  let c = node t "c" 0. in
  Rcnet.Rctree.add_edge t a b ~r:1.;
  Rcnet.Rctree.add_edge t b c ~r:1.;
  Rcnet.Rctree.add_edge t c a ~r:1.;
  Alcotest.(check bool) "cycle rejected" true
    (try ignore (Rcnet.Elmore.delays t ~root:a); false
     with Invalid_argument _ -> true)

let test_elmore_rejects_disconnected () =
  let t = Rcnet.Rctree.create () in
  let a = node t "a" 0. in
  let b = node t "b" 0. in
  let c = node t "c" 0. in
  let d = node t "d" 0. in
  Rcnet.Rctree.add_edge t a b ~r:1.;
  Rcnet.Rctree.add_edge t c d ~r:1.;
  Alcotest.(check bool) "disconnected rejected" true
    (try ignore (Rcnet.Elmore.delays t ~root:a); false
     with Invalid_argument _ -> true)

let test_path_resistance () =
  let t = Rcnet.Rctree.create () in
  let root = node t "drv" 0. in
  let n1 = node t "n1" 1. in
  let n2 = node t "n2" 1. in
  Rcnet.Rctree.add_edge t root n1 ~r:10.;
  Rcnet.Rctree.add_edge t n1 n2 ~r:5.;
  check_float "path R" 15. (Rcnet.Elmore.path_resistance t ~root n2)

(* --- properties --- *)

(* random ladders: Elmore delay is monotone along the ladder and equals the
   analytic double sum *)
let ladder_arb =
  QCheck.make
    QCheck.Gen.(list_size (int_range 1 12)
                  (pair (float_range 0.1 50.) (float_range 0.1 20.)))

let build_ladder stages =
  let t = Rcnet.Rctree.create () in
  let root = node t "drv" 0. in
  let nodes =
    List.mapi (fun i (_, c) -> node t (Printf.sprintf "n%d" i) c) stages
  in
  List.iteri
    (fun i (r, _) ->
       let prev = if i = 0 then root else List.nth nodes (i - 1) in
       Rcnet.Rctree.add_edge t prev (List.nth nodes i) ~r)
    stages;
  (t, root, nodes)

let prop_ladder_monotone =
  QCheck.Test.make ~name:"ladder delays monotone" ~count:100 ladder_arb
    (fun stages ->
       let t, root, nodes = build_ladder stages in
       let d = Rcnet.Elmore.delays t ~root in
       let delays =
         List.map (fun n -> d.((n : Rcnet.Rctree.node :> int))) nodes
       in
       let rec non_decreasing = function
         | a :: (b :: _ as rest) -> a <= b +. 1e-9 && non_decreasing rest
         | [ _ ] | [] -> true
       in
       non_decreasing delays)

let prop_ladder_analytic =
  QCheck.Test.make ~name:"ladder matches analytic Elmore" ~count:100 ladder_arb
    (fun stages ->
       let t, root, nodes = build_ladder stages in
       let d = Rcnet.Elmore.delays t ~root in
       let arr = Array.of_list stages in
       let n = Array.length arr in
       (* delay at last node = sum_i R_i * (sum_{j>=i} C_j) *)
       let expected = ref 0. in
       for i = 0 to n - 1 do
         let downstream = ref 0. in
         for j = i to n - 1 do
           downstream := !downstream +. snd arr.(j)
         done;
         expected := !expected +. (fst arr.(i) *. !downstream)
       done;
       let last = List.nth nodes (n - 1) in
       Float.abs (d.((last : Rcnet.Rctree.node :> int)) -. !expected) < 1e-6)

let prop_more_cap_more_delay =
  QCheck.Test.make ~name:"extra load increases delay" ~count:100
    QCheck.(pair (float_range 0.1 50.) (float_range 0.1 20.))
    (fun (r, c) ->
       let build extra =
         let t = Rcnet.Rctree.create () in
         let root = node t "drv" 0. in
         let leaf = node t "leaf" (c +. extra) in
         Rcnet.Rctree.add_edge t root leaf ~r;
         Rcnet.Elmore.delay_to t ~root leaf
       in
       build 1. > build 0.)

let () =
  Alcotest.run "rcnet"
    [ ( "rctree",
        [ Alcotest.test_case "basics" `Quick test_rctree_basics;
          Alcotest.test_case "add_cap" `Quick test_rctree_add_cap;
          Alcotest.test_case "wire_edge" `Quick test_rctree_wire_edge_splits;
          Alcotest.test_case "grows" `Quick test_rctree_grows;
          Alcotest.test_case "rejects" `Quick test_rctree_rejects ] );
      ( "elmore",
        [ Alcotest.test_case "single RC" `Quick test_elmore_single_rc;
          Alcotest.test_case "two-stage ladder" `Quick test_elmore_two_stage_ladder;
          Alcotest.test_case "star balance" `Quick test_elmore_star_balance;
          Alcotest.test_case "root zero" `Quick test_elmore_root_zero;
          Alcotest.test_case "max delay" `Quick test_elmore_max_delay;
          Alcotest.test_case "rejects cycle" `Quick test_elmore_rejects_cycle;
          Alcotest.test_case "rejects disconnected" `Quick test_elmore_rejects_disconnected;
          Alcotest.test_case "path resistance" `Quick test_path_resistance ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_ladder_monotone; prop_ladder_analytic; prop_more_cap_more_delay ] ) ]
