(* LVS engine tests: sweepline geometry, clean certification of every
   placement style, the mutation harness (injected faults must fire the
   exact expected lvs/* rule ids), the Netbuild cross-check, and the
   triage paths for unrouted capacitors. *)

module L = Ccroute.Layout

let tech = Tech.Process.finfet_12nm

let layout_of ?p_of_cap style bits =
  let p = Ccplace.Style.place ~bits style in
  Ccroute.Layout.route tech ?p_of_cap p

let spiral6 = layout_of Ccplace.Style.Spiral 6

let fired diags = Verify.Diagnostic.rule_ids diags

let check_fired what expected diags =
  Alcotest.(check (list string)) what expected (fired diags)

let sweep_styles bits =
  Ccplace.Style.Spiral :: Ccplace.Style.Chessboard
  :: Ccplace.Style.Rowwise
  :: [ Ccplace.Style.block_default ~bits ]

let near a b = Float.abs (a -. b) < 1e-9

(* --- Geom.Sweepline --- *)

let seg = Geom.Sweepline.segment

let sorted_pairs ps =
  List.sort compare (List.map (fun (a, b) -> (min a b, max a b)) ps)

let test_sweepline_basic () =
  (* crossing, T-junction, endpoint touch, collinear overlap, disjoint *)
  let shapes =
    [ seg ~id:0 ~ax:0. ~ay:1. ~bx:4. ~by:1.;     (* H *)
      seg ~id:1 ~ax:2. ~ay:0. ~bx:2. ~by:3.;     (* V crossing 0 *)
      seg ~id:2 ~ax:4. ~ay:1. ~bx:4. ~by:5.;     (* V touching 0's endpoint *)
      seg ~id:3 ~ax:3. ~ay:1. ~bx:6. ~by:1.;     (* H collinear-overlapping 0 *)
      seg ~id:4 ~ax:0. ~ay:4. ~bx:1. ~by:4. ]    (* disjoint H *)
  in
  Alcotest.(check (list (pair int int)))
    "contact pairs"
    [ (0, 1); (0, 2); (0, 3); (2, 3) ]
    (sorted_pairs (Geom.Sweepline.contacts shapes))

let test_sweepline_points () =
  let shapes =
    [ seg ~id:0 ~ax:0. ~ay:0. ~bx:5. ~by:0.;     (* H *)
      seg ~id:1 ~ax:3. ~ay:0. ~bx:3. ~by:0.;     (* point on 0 *)
      seg ~id:2 ~ax:3. ~ay:1. ~bx:3. ~by:1.;     (* point off 0 *)
      seg ~id:3 ~ax:3. ~ay:(-2.) ~bx:3. ~by:1. ] (* V through 0, hits 2 *)
  in
  Alcotest.(check (list (pair int int)))
    "point contacts"
    [ (0, 1); (0, 3); (1, 3); (2, 3) ]
    (sorted_pairs (Geom.Sweepline.contacts shapes))

let test_sweepline_rejects_rect () =
  Alcotest.check_raises "extended in both axes"
    (Invalid_argument
       "Sweepline.contacts: shape 7 is not axis-aligned [0.0000, 1.0000] x \
        [0.0000, 1.0000]")
    (fun () ->
       ignore (Geom.Sweepline.contacts [ seg ~id:7 ~ax:0. ~ay:0. ~bx:1. ~by:1. ]))

let test_sweepline_matches_all_pairs () =
  (* the sweep must agree with the quadratic oracle on a messy random mix *)
  let st = Random.State.make [| 42 |] in
  let shapes =
    List.init 150 (fun id ->
        let f hi = float_of_int (Random.State.int st hi) in
        let x = f 20 and y = f 20 in
        match Random.State.int st 3 with
        | 0 -> seg ~id ~ax:x ~ay:y ~bx:(x +. f 8) ~by:y
        | 1 -> seg ~id ~ax:x ~ay:y ~bx:x ~by:(y +. f 8)
        | _ -> seg ~id ~ax:x ~ay:y ~bx:x ~by:y)
  in
  let eps = 1e-6 in
  let touches (a : Geom.Sweepline.seg) (b : Geom.Sweepline.seg) =
    Geom.Interval.overlaps ~eps a.Geom.Sweepline.sx b.Geom.Sweepline.sx
    && Geom.Interval.overlaps ~eps a.Geom.Sweepline.sy b.Geom.Sweepline.sy
  in
  let oracle = ref [] in
  List.iteri
    (fun i a ->
       List.iteri
         (fun j b -> if i < j && touches a b then oracle := (i, j) :: !oracle)
         shapes)
    shapes;
  Alcotest.(check (list (pair int int)))
    "sweep = all-pairs oracle"
    (List.sort compare !oracle)
    (sorted_pairs (Geom.Sweepline.contacts ~eps shapes))

(* --- clean layouts certify clean --- *)

let assert_clean what l =
  match Lvs.Check.check l with
  | [] -> ()
  | diags ->
    Alcotest.failf "%s not LVS-clean:\n%s" what (Verify.Report.text diags)

let test_clean_sweep () =
  (* implicitly also the Netbuild cross-check agreement criterion: the
     comparison pass runs it for every capacitor of every clean layout *)
  List.iter
    (fun bits ->
       List.iter
         (fun style ->
            assert_clean
              (Printf.sprintf "%s %d-bit" (Ccplace.Style.name style) bits)
              (layout_of style bits))
         (sweep_styles bits))
    [ 4; 6; 8; 10 ]

let test_clean_parallel_wires () =
  let bits = 8 in
  assert_clean "spiral 8-bit p=3"
    (layout_of
       ~p_of_cap:(Ccroute.Layout.msb_parallel ~bits ~p:3)
       Ccplace.Style.Spiral bits)

let test_odd_chessboard () =
  (* the cell-doubling odd-N chessboard of [7] through the full pass *)
  List.iter
    (fun bits ->
       let p = Ccplace.Style.place ~bits Ccplace.Style.Chessboard in
       Alcotest.(check int)
         (Printf.sprintf "%d-bit unit multiplier" bits)
         2 p.Ccgrid.Placement.unit_multiplier;
       assert_clean
         (Printf.sprintf "chessboard %d-bit" bits)
         (Ccroute.Layout.route tech p))
    [ 5; 7 ]

let test_stub_planarity_repair () =
  (* Regression for a router defect this engine caught: with tracks
     assigned from each connection's first attach side alone, block
     chessboards could put a left-strapping net on a track right of a
     net strapping from the other side at the same row — overlapping M1
     stubs, a real short (e.g. block-chess(core=5,g=1) 7-bit shorted
     C_3/C_4).  Plan.make now orders tracks topologically and
     re-attaches groups to break precedence cycles; the once-shorting
     configurations must certify clean. *)
  List.iter
    (fun (bits, core_bits, granularity) ->
       let style = Ccplace.Style.Block_chess { core_bits; granularity } in
       assert_clean
         (Printf.sprintf "block-chess(core=%d,g=%d) %d-bit" core_bits
            granularity bits)
         (layout_of style bits))
    [ (7, 5, 1); (7, 5, 2); (7, 5, 4); (8, 6, 4); (9, 7, 2) ]

let test_stats_sane () =
  let r = Lvs.Check.run spiral6 in
  Alcotest.(check (list string)) "clean" [] (fired r.Lvs.Check.diagnostics);
  let s = r.Lvs.Check.stats in
  Alcotest.(check bool) "shapes counted" true (s.Lvs.Check.shapes > 100);
  Alcotest.(check bool) "contacts counted" true
    (s.Lvs.Check.contacts > s.Lvs.Check.shapes / 2);
  (* clean layout: one component per capacitor net plus the top plate *)
  Alcotest.(check int) "components" 8 s.Lvs.Check.components

(* --- mutation harness --- *)

(* Every mutation starts from a certified-clean layout and must fire
   exactly the expected lvs/* rule ids — no more, no fewer. *)

let mutate_wires f l = { l with L.wires = f l.L.wires }

(* an attach point whose group straps to its trunk at exactly one cell,
   so removing that via provably detaches the group *)
let single_attach_of l k =
  let net = L.net l k in
  let all =
    List.concat_map (fun (tk : L.trunk) -> tk.L.tk_attaches) net.L.cn_trunks
  in
  List.find_opt
    (fun (a : L.attach_point) ->
       List.length
         (List.filter
            (fun (b : L.attach_point) -> b.L.ap_group = a.L.ap_group)
            all)
       = 1)
    all

let test_mut_drop_attach_via () =
  let l = spiral6 in
  let rec pick k =
    if k > l.L.placement.Ccgrid.Placement.bits then
      Alcotest.fail "no single-attach group found"
    else
      match single_attach_of l k with
      | Some a -> (k, a)
      | None -> pick (k + 1)
  in
  let k, a = pick 0 in
  let vias =
    List.filter
      (fun (v : L.via) ->
         not
           (v.L.v_cap = k && near v.L.v_x a.L.ap_x && near v.L.v_y a.L.ap_y))
      l.L.vias
  in
  Alcotest.(check int) "one via dropped"
    (List.length l.L.vias - 1)
    (List.length vias);
  check_fired "drop attach via"
    [ "lvs/floating-cell"; "lvs/open" ]
    (Lvs.Check.check { l with L.vias })

let test_mut_drop_bridge () =
  let l = spiral6 in
  let k =
    match
      Array.find_opt (fun (n : L.capnet) -> n.L.cn_bridge_y <> None) l.L.nets
    with
    | Some n -> n.L.cn_cap
    | None -> Alcotest.fail "no bridged net in spiral6"
  in
  let mutated =
    mutate_wires
      (List.filter
         (fun (w : L.wire) -> not (w.L.w_cap = k && w.L.w_kind = L.Bridge)))
      l
  in
  check_fired "delete bridge segment"
    [ "lvs/floating-cell"; "lvs/open" ]
    (Lvs.Check.check mutated)

let primary_x l k =
  match
    List.find_opt (fun (tk : L.trunk) -> tk.L.tk_primary) (L.net l k).L.cn_trunks
  with
  | Some tk -> tk.L.tk_x
  | None -> Alcotest.failf "C_%d has no primary trunk" k

let test_mut_nudge_trunk () =
  (* move only the trunk WIRE of C_5 onto C_6's track: its own vias stay
     behind (open + floating cells) while the metal lands on a foreign
     net (short) *)
  let l = spiral6 in
  let xa = primary_x l 5 and xb = primary_x l 6 in
  let mutated =
    mutate_wires
      (List.map (fun (w : L.wire) ->
           if w.L.w_cap = 5 && w.L.w_kind = L.Trunk && near w.L.w_ax xa then
             { w with L.w_ax = xb; w_bx = xb }
           else w))
      l
  in
  check_fired "nudge trunk onto neighbouring track"
    [ "lvs/floating-cell"; "lvs/open"; "lvs/short" ]
    (Lvs.Check.check mutated)

(* a single-trunk capacitor sharing a channel with another net's trunk,
   over a set of candidate layouts *)
let find_merge_pair () =
  let candidates =
    [ spiral6;
      layout_of Ccplace.Style.Chessboard 6;
      layout_of Ccplace.Style.Spiral 8;
      layout_of Ccplace.Style.Rowwise 6 ]
  in
  let of_layout l =
    let found = ref None in
    Array.iter
      (fun (na : L.capnet) ->
         match na.L.cn_trunks with
         | [ tka ] ->
           Array.iter
             (fun (nb : L.capnet) ->
                if nb.L.cn_cap <> na.L.cn_cap then
                  List.iter
                    (fun (tkb : L.trunk) ->
                       if
                         tkb.L.tk_channel = tka.L.tk_channel && !found = None
                       then
                         found := Some (na.L.cn_cap, tka.L.tk_x, tkb.L.tk_x))
                    nb.L.cn_trunks)
             l.L.nets
         | _ -> ())
      l.L.nets;
    Option.map (fun (a, xa, xb) -> (l, a, xa, xb)) !found
  in
  match List.find_map of_layout candidates with
  | Some r -> r
  | None -> Alcotest.fail "no mergeable track pair in candidate layouts"

let test_mut_merge_tracks () =
  (* move C_a's whole bundle — trunk, vias, stub ends — onto a
     channel-mate's track: the net stays whole but lands on foreign
     metal, a pure short *)
  let l, a, xa, xb = find_merge_pair () in
  let mutated =
    { (mutate_wires
         (List.map (fun (w : L.wire) ->
              if w.L.w_cap = a && w.L.w_kind = L.Trunk && near w.L.w_ax xa
              then { w with L.w_ax = xb; w_bx = xb }
              else if
                w.L.w_cap = a && w.L.w_kind = L.Stub && near w.L.w_bx xa
              then { w with L.w_bx = xb }
              else w))
         l)
      with
      L.vias =
        List.map
          (fun (v : L.via) ->
             if v.L.v_cap = a && near v.L.v_x xa then { v with L.v_x = xb }
             else v)
          l.L.vias }
  in
  check_fired "merge two tracks" [ "lvs/short" ] (Lvs.Check.check mutated)

let test_mut_dangling_via () =
  let l = spiral6 in
  (* above the top row of cells: inside the outline, touching nothing *)
  let v =
    { L.v_cap = 3; v_x = l.L.width /. 2.; v_y = l.L.height -. 1e-3; v_p = 1 }
  in
  check_fired "inject stray via" [ "lvs/dangling" ]
    (Lvs.Check.check { l with L.vias = v :: l.L.vias })

let test_mut_netbuild_mismatch () =
  (* geometry untouched, plan corrupted: the RC tree silently models
     fewer cells than the drawn net connects *)
  let l = spiral6 in
  (* drop a group that owns >= 2 cells: its attach cell survives in the
     tree through the stub strap, so only a multi-cell group leaves a
     detectable hole in cell_nodes *)
  let k, victim =
    let found = ref None in
    Array.iter
      (fun (n : L.capnet) ->
         if !found = None then
           match
             List.find_opt
               (fun (g : Ccroute.Group.t) ->
                  List.length g.Ccroute.Group.cells >= 2)
               n.L.cn_groups
           with
           | Some g -> found := Some (n.L.cn_cap, g.Ccroute.Group.id)
           | None -> ())
      l.L.nets;
    match !found with
    | Some r -> r
    | None -> Alcotest.fail "no multi-cell group in spiral6"
  in
  let net = L.net l k in
  let nets = Array.copy l.L.nets in
  nets.(k) <-
    { net with
      L.cn_groups =
        List.filter
          (fun (g : Ccroute.Group.t) -> g.Ccroute.Group.id <> victim)
          net.L.cn_groups };
  check_fired "drop a group from the plan"
    [ "lvs/netbuild-mismatch" ]
    (Lvs.Check.check { l with L.nets })

(* --- unrouted capacitors: triage instead of crash --- *)

let unrouted_layout k l =
  let nets = Array.copy l.L.nets in
  nets.(k) <- { (L.net l k) with L.cn_trunks = []; cn_bridge_y = None };
  { (mutate_wires
       (List.filter (fun (w : L.wire) ->
            not
              (w.L.w_cap = k
               && (w.L.w_kind = L.Trunk || w.L.w_kind = L.Stub
                   || w.L.w_kind = L.Bridge))))
       l)
    with
    L.nets;
    vias = List.filter (fun (v : L.via) -> v.L.v_cap <> k) l.L.vias }

let test_unrouted_is_open () =
  check_fired "unrouted net" [ "lvs/open" ]
    (Lvs.Check.check (unrouted_layout 2 spiral6))

let test_netbuild_unrouted_rejected () =
  let l = unrouted_layout 2 spiral6 in
  match Extract.Netbuild.build l ~cap:2 with
  | _ -> Alcotest.fail "expected Verify.Engine.Rejected"
  | exception Verify.Engine.Rejected { what; diagnostics } ->
    Alcotest.(check string) "artifact name" "RC extraction of C_2" what;
    check_fired "rejected diagnostics" [ "lvs/open" ] diagnostics

(* --- satellite regressions in ccroute --- *)

let test_mst_disconnected_message () =
  Alcotest.check_raises "components and orphan named"
    (Invalid_argument
       "Mst.prim: graph is disconnected (2 components; node 2 unreachable \
        from node 0)")
    (fun () ->
       ignore
         (Ccroute.Mst.prim ~nodes:4 ~edges:[| (0, 1, 1.); (2, 3, 1.) |]));
  Alcotest.check_raises "isolated node"
    (Invalid_argument
       "Mst.prim: graph is disconnected (2 components; node 2 unreachable \
        from node 0)")
    (fun () ->
       ignore (Ccroute.Mst.prim ~nodes:3 ~edges:[| (0, 1, 1.) |]))

let test_trunk_channels_consistent () =
  (* the invariant that makes Layout.build's per-channel track lookup
     total: every channel a capacitor's plan routes name carries exactly
     one trunk of that capacitor *)
  List.iter
    (fun style ->
       let l = layout_of style 8 in
       Array.iter
         (fun (n : L.capnet) ->
            let plan_channels =
              List.sort_uniq Int.compare
                (List.map
                   (fun (r : Ccroute.Plan.route) -> r.Ccroute.Plan.channel)
                   (Ccroute.Plan.routes_of_cap l.L.plan n.L.cn_cap))
            in
            let trunk_channels =
              List.sort Int.compare
                (List.map (fun (tk : L.trunk) -> tk.L.tk_channel) n.L.cn_trunks)
            in
            Alcotest.(check (list int))
              (Printf.sprintf "%s C_%d channels" (Ccplace.Style.name style)
                 n.L.cn_cap)
              plan_channels trunk_channels)
         l.L.nets)
    (sweep_styles 8)

let test_check_order_and_tally () =
  let v rule detail = { Ccroute.Check.rule; detail } in
  let vs = [ v "b" "2"; v "a" "z"; v "b" "1"; v "a" "a" ] in
  let sorted = List.sort Ccroute.Check.compare_violation vs in
  Alcotest.(check (list (pair string string)))
    "sorted by rule then detail"
    [ ("a", "a"); ("a", "z"); ("b", "1"); ("b", "2") ]
    (List.map
       (fun (x : Ccroute.Check.violation) ->
          (x.Ccroute.Check.rule, x.Ccroute.Check.detail))
       sorted);
  Alcotest.(check (list (pair string int)))
    "tally in rule order"
    [ ("a", 2); ("b", 2) ]
    (Ccroute.Check.by_rule sorted);
  Alcotest.(check (list (pair string int))) "empty tally" []
    (Ccroute.Check.by_rule []);
  Alcotest.(check int) "equal violations compare 0" 0
    (Ccroute.Check.compare_violation (v "a" "x") (v "a" "x"));
  Alcotest.(check bool) "rule dominates detail" true
    (Ccroute.Check.compare_violation (v "a" "z") (v "b" "a") < 0)

(* --- lvs/* registry entries --- *)

let test_lvs_rules_registered () =
  let lvs_rules = Verify.Registry.by_category Verify.Rule.Lvs in
  Alcotest.(check (list string))
    "catalogued"
    [ "lvs/dangling"; "lvs/floating-cell"; "lvs/netbuild-mismatch";
      "lvs/open"; "lvs/short"; "lvs/top-open" ]
    (List.map (fun (r : Verify.Rule.t) -> r.Verify.Rule.id) lvs_rules);
  Alcotest.(check bool) "dangling is a warning" true
    (Verify.Lvs_rules.r_dangling.Verify.Rule.severity = Verify.Rule.Warning)

let () =
  let open Alcotest in
  run "lvs"
    [ ( "sweepline",
        [ test_case "basic contacts" `Quick test_sweepline_basic;
          test_case "points" `Quick test_sweepline_points;
          test_case "rejects rectangles" `Quick test_sweepline_rejects_rect;
          test_case "matches all-pairs oracle" `Quick
            test_sweepline_matches_all_pairs ] );
      ( "clean",
        [ test_case "style x bits sweep" `Slow test_clean_sweep;
          test_case "parallel wires" `Quick test_clean_parallel_wires;
          test_case "odd-N chessboard" `Quick test_odd_chessboard;
          test_case "stub planarity repair" `Quick test_stub_planarity_repair;
          test_case "stats" `Quick test_stats_sane ] );
      ( "mutations",
        [ test_case "drop attach via" `Quick test_mut_drop_attach_via;
          test_case "delete bridge" `Quick test_mut_drop_bridge;
          test_case "nudge trunk" `Quick test_mut_nudge_trunk;
          test_case "merge tracks" `Quick test_mut_merge_tracks;
          test_case "dangling via" `Quick test_mut_dangling_via;
          test_case "netbuild mismatch" `Quick test_mut_netbuild_mismatch ] );
      ( "triage",
        [ test_case "unrouted net is lvs/open" `Quick test_unrouted_is_open;
          test_case "Netbuild rejects with diagnostics" `Quick
            test_netbuild_unrouted_rejected ] );
      ( "ccroute satellites",
        [ test_case "Mst.prim disconnected message" `Quick
            test_mst_disconnected_message;
          test_case "trunk channels consistent" `Quick
            test_trunk_channels_consistent;
          test_case "Check order and tally" `Quick
            test_check_order_and_tally ] );
      ( "registry",
        [ test_case "lvs rules catalogued" `Quick test_lvs_rules_registered ] )
    ]
