(* Tests for the mirror-pair swap refinement pass. *)

let tech = Tech.Process.finfet_12nm
let spiral8 = Ccplace.Spiral.place ~bits:8

let refined8 = lazy (Ccplace.Refine.refine tech spiral8)

let test_refine_valid () =
  let refined, _ = Lazy.force refined8 in
  match Ccgrid.Placement.validate refined with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_refine_preserves_cc () =
  let refined, _ = Lazy.force refined8 in
  Alcotest.(check (float 1e-9)) "exact CC" 0.
    (Ccgrid.Placement.max_centroid_error tech refined)

let test_refine_preserves_counts () =
  let refined, _ = Lazy.force refined8 in
  Alcotest.(check bool) "same counts" true
    (refined.Ccgrid.Placement.counts = spiral8.Ccgrid.Placement.counts)

let test_refine_reduces_energy () =
  let refined, stats = Lazy.force refined8 in
  Alcotest.(check bool) "energy decreased" true
    (stats.Ccplace.Refine.final_energy < stats.Ccplace.Refine.initial_energy);
  Alcotest.(check (float 1e-6)) "final energy matches placement"
    stats.Ccplace.Refine.final_energy
    (Ccplace.Refine.energy tech refined);
  Alcotest.(check (float 1e-6)) "initial energy matches input"
    stats.Ccplace.Refine.initial_energy
    (Ccplace.Refine.energy tech spiral8)

let test_refine_improves_dnl () =
  let refined, _ = Lazy.force refined8 in
  let dnl p =
    (Dacmodel.Nonlinearity.analyze tech p).Dacmodel.Nonlinearity.max_abs_dnl
  in
  Alcotest.(check bool) "DNL improves" true (dnl refined < dnl spiral8)

let test_refine_converges_to_fixpoint () =
  (* run to convergence (a pass with no accepted swap), then re-refining
     must be the identity *)
  let converged, _ = Ccplace.Refine.refine tech ~max_passes:50 spiral8 in
  let again, stats = Ccplace.Refine.refine tech converged in
  Alcotest.(check int) "no further swaps" 0 stats.Ccplace.Refine.swaps;
  Alcotest.(check bool) "placement unchanged" true
    (again.Ccgrid.Placement.assign = converged.Ccgrid.Placement.assign)

let test_refine_swap_budget () =
  let _, stats = Ccplace.Refine.refine tech ~max_swaps:5 spiral8 in
  Alcotest.(check bool) "budget respected" true
    (stats.Ccplace.Refine.swaps <= 5)

let test_refine_zero_budget_identity () =
  let refined, stats = Ccplace.Refine.refine tech ~max_swaps:0 spiral8 in
  Alcotest.(check int) "no swaps" 0 stats.Ccplace.Refine.swaps;
  Alcotest.(check bool) "identity" true
    (refined.Ccgrid.Placement.assign = spiral8.Ccgrid.Placement.assign)

let test_refine_chessboard_near_fixpoint () =
  (* the chessboard is (close to) the dispersion optimum: refinement finds
     almost nothing to improve *)
  let chess = Ccplace.Chessboard.place ~bits:6 in
  let _, stats = Ccplace.Refine.refine tech chess in
  Alcotest.(check bool)
    (Printf.sprintf "few swaps (%d)" stats.Ccplace.Refine.swaps)
    true
    (stats.Ccplace.Refine.swaps < 8)

let test_refined_layout_routes_clean () =
  let refined, _ = Lazy.force refined8 in
  let layout = Ccroute.Layout.route tech refined in
  Alcotest.(check int) "clean" 0 (List.length (Ccroute.Check.run layout))

let test_refine_rejects_bad_args () =
  Alcotest.(check bool) "negative passes" true
    (try ignore (Ccplace.Refine.refine tech ~max_passes:(-1) spiral8); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative swaps" true
    (try ignore (Ccplace.Refine.refine tech ~max_swaps:(-1) spiral8); false
     with Invalid_argument _ -> true)

let prop_refine_energy_monotone_in_budget =
  QCheck.Test.make ~name:"more budget, no worse energy" ~count:8
    QCheck.(pair (int_range 0 10) (int_range 3 6))
    (fun (budget, bits) ->
       let p = Ccplace.Spiral.place ~bits in
       let _, small = Ccplace.Refine.refine tech ~max_swaps:budget p in
       let _, large = Ccplace.Refine.refine tech ~max_swaps:(budget + 10) p in
       large.Ccplace.Refine.final_energy
       <= small.Ccplace.Refine.final_energy +. 1e-9)

let () =
  Alcotest.run "refine"
    [ ( "invariants",
        [ Alcotest.test_case "valid" `Quick test_refine_valid;
          Alcotest.test_case "common centroid" `Quick test_refine_preserves_cc;
          Alcotest.test_case "counts" `Quick test_refine_preserves_counts;
          Alcotest.test_case "routes clean" `Quick test_refined_layout_routes_clean;
          Alcotest.test_case "bad args" `Quick test_refine_rejects_bad_args ] );
      ( "optimisation",
        [ Alcotest.test_case "reduces energy" `Quick test_refine_reduces_energy;
          Alcotest.test_case "improves DNL" `Quick test_refine_improves_dnl;
          Alcotest.test_case "fixpoint" `Quick test_refine_converges_to_fixpoint;
          Alcotest.test_case "swap budget" `Quick test_refine_swap_budget;
          Alcotest.test_case "zero budget" `Quick test_refine_zero_budget_identity;
          Alcotest.test_case "chessboard near-optimal" `Quick test_refine_chessboard_near_fixpoint ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_refine_energy_monotone_in_budget ] ) ]
