(* Tests for the parallel execution subsystem: the domain pool's
   ordering / fault-isolation / reentrancy contract, the counter-based
   RNG substreams, and the bitwise-determinism guarantee of every ?jobs
   entry point (Monte-Carlo, sweeps, sizing). *)

let tech = Tech.Process.finfet_12nm

(* --- Jobs resolution --- *)

let test_jobs_resolution () =
  Alcotest.(check int) "explicit wins" 3 (Par.Jobs.resolve (Some 3));
  Alcotest.(check bool) "explicit clamps to 1" true
    (Par.Jobs.resolve (Some (-2)) = 1);
  Par.Jobs.set_default 5;
  Alcotest.(check int) "set_default" 5 (Par.Jobs.default ());
  Alcotest.(check int) "default feeds resolve" 5 (Par.Jobs.resolve None);
  Par.Jobs.set_default 0;
  Alcotest.(check bool) "0 means auto" true
    (Par.Jobs.default () = Par.Jobs.auto () && Par.Jobs.auto () >= 1);
  Par.Jobs.clear_default ();
  (* after clearing, resolution falls back to CCDAC_JOBS or 1 — both >= 1 *)
  Alcotest.(check bool) "cleared default >= 1" true (Par.Jobs.default () >= 1)

let test_jobs_of_string () =
  let check name expect s =
    Alcotest.(check (option int)) name expect (Par.Jobs.of_string s)
  in
  check "positive" (Some 3) "3";
  check "whitespace trimmed" (Some 4) "  4 ";
  check "0 means auto" (Some (Par.Jobs.auto ())) "0";
  check "empty" None "";
  check "blank" None "   ";
  check "negative" None "-2";
  check "non-numeric" None "lots";
  check "trailing junk" None "4x"

(* --- Pool: ordering --- *)

let test_pool_ordering () =
  Par.Pool.with_ ~jobs:4 @@ fun pool ->
  let xs = List.init 100 Fun.id in
  (* uneven per-task work scrambles completion order; slots must not care *)
  let f i =
    let spin = (i * 7919) mod 97 in
    let acc = ref 0 in
    for k = 0 to spin * 50 do
      acc := !acc + k
    done;
    ignore !acc;
    i * i
  in
  Alcotest.(check (list int)) "submission order"
    (List.map (fun i -> i * i) xs)
    (Par.Pool.map_exn pool f xs);
  Alcotest.(check (list int)) "pool is reusable" [ 0; 1; 4 ]
    (Par.Pool.map_exn pool (fun i -> i * i) [ 0; 1; 2 ])

let test_pool_matches_serial () =
  let xs = List.init 57 (fun i -> i - 5) in
  let f i = (i * 31) lxor 255 in
  let serial = Par.Pool.map_list_exn ~jobs:1 f xs in
  List.iter
    (fun jobs ->
       Alcotest.(check (list int))
         (Printf.sprintf "jobs=%d" jobs)
         serial
         (Par.Pool.map_list_exn ~jobs f xs))
    [ 2; 4; 8 ]

(* --- Pool: fault isolation --- *)

let test_pool_fault_isolation () =
  Par.Pool.with_ ~jobs:4 @@ fun pool ->
  let results =
    Par.Pool.map pool
      (fun i -> if i mod 3 = 0 then failwith (string_of_int i) else i)
      (List.init 10 Fun.id)
  in
  Alcotest.(check int) "every slot filled" 10 (List.length results);
  List.iteri
    (fun i r ->
       match r with
       | Ok v ->
         Alcotest.(check bool) "ok slot" true (i mod 3 <> 0 && v = i)
       | Error e ->
         Alcotest.(check bool) "error slot" true (i mod 3 = 0);
         Alcotest.(check int) "error carries its index" i e.Par.Pool.index;
         (match e.Par.Pool.exn with
          | Failure msg -> Alcotest.(check string) "exn" (string_of_int i) msg
          | _ -> Alcotest.fail "unexpected exception"))
    results;
  (* siblings of a failed task completed, and the pool survived *)
  Alcotest.(check (list int)) "pool survives failures" [ 2; 4; 6 ]
    (Par.Pool.map_exn pool (fun i -> 2 * i) [ 1; 2; 3 ])

let test_pool_map_exn_raises () =
  match
    Par.Pool.map_list_exn ~jobs:2
      (fun i -> if i = 7 then raise Exit else i)
      (List.init 12 Fun.id)
  with
  | _ -> Alcotest.fail "expected Task_failed"
  | exception Par.Pool.Task_failed e ->
    Alcotest.(check int) "first failing index" 7 e.Par.Pool.index;
    Alcotest.(check bool) "exn preserved" true (e.Par.Pool.exn = Exit)

(* --- Pool: failed tasks always carry a backtrace --- *)

(* An out-of-line raiser the optimiser won't flatten away, so the
   captured trace has at least one real frame. *)
let[@inline never] deep_raise i =
  if i >= 0 then failwith "sched backtrace probe" else ignore i

let test_pool_backtrace () =
  (* create enables backtrace recording on caller and workers, so the
     error slot's backtrace is non-empty whichever domain ran the task *)
  Par.Pool.with_ ~jobs:3 @@ fun pool ->
  let results =
    Par.Pool.map pool (fun i -> deep_raise i) (List.init 8 Fun.id)
  in
  List.iter
    (fun r ->
       match r with
       | Ok () -> Alcotest.fail "task should have failed"
       | Error e ->
         Alcotest.(check bool) "backtrace captured" true
           (String.length (String.trim e.Par.Pool.backtrace) > 0))
    results

(* --- Pool: stats (degraded-spawn detection + lifetime counters) --- *)

let test_pool_stats () =
  Par.Pool.with_ ~jobs:3 @@ fun pool ->
  let s0 = Par.Pool.stats pool in
  Alcotest.(check int) "requested" 3 s0.Par.Pool.requested;
  Alcotest.(check int) "workers" (Par.Pool.worker_count pool)
    s0.Par.Pool.workers;
  (* spawn succeeds in-test, so the pool must not report degradation *)
  Alcotest.(check bool) "not degraded" false s0.Par.Pool.degraded;
  Alcotest.(check int) "no batches yet" 0 s0.Par.Pool.batches;
  ignore (Par.Pool.map_exn pool (fun i -> i) (List.init 20 Fun.id));
  ignore (Par.Pool.map_exn pool (fun i -> i) (List.init 20 Fun.id));
  let s = Par.Pool.stats pool in
  Alcotest.(check int) "two batches" 2 s.Par.Pool.batches;
  Alcotest.(check bool) "chunks accumulated" true (s.Par.Pool.chunks >= 2);
  (* single-item batches fall back to serial and are not counted *)
  ignore (Par.Pool.map_exn pool (fun i -> i) [ 1 ]);
  Alcotest.(check int) "serial fallback uncounted" 2
    (Par.Pool.stats pool).Par.Pool.batches

(* --- Pool: reentrancy (nested map on one pool must not deadlock) --- *)

let test_pool_nested () =
  Par.Pool.with_ ~jobs:2 @@ fun pool ->
  let sums =
    Par.Pool.map_exn pool
      (fun i ->
         List.fold_left ( + ) 0
           (Par.Pool.map_exn pool (fun j -> (10 * i) + j) [ 0; 1; 2 ]))
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "nested maps" [ 33; 63; 93 ] sums

(* --- Pool: telemetry inheritance + exact concurrent increments --- *)

let test_pool_metrics_inheritance () =
  let (), dump =
    Telemetry.Metrics.collect (fun () ->
        ignore
          (Par.Pool.map_list_exn ~jobs:4
             (fun _ -> Telemetry.Metrics.incr "flow/runs_total")
             (List.init 1000 Fun.id)))
  in
  (* 4 domains hammering one mutex-guarded store: no lost updates *)
  Alcotest.(check int) "exact count under contention" 1000
    (Telemetry.Metrics.counter dump "flow/runs_total")

let test_pool_span_inheritance () =
  let (), spans =
    Telemetry.Span.collect (fun () ->
        ignore
          (Par.Pool.map_list_exn ~jobs:3
             (fun i ->
                Telemetry.Span.with_ ~name:(Printf.sprintf "task%d" i)
                  (fun () -> i))
             [ 0; 1; 2; 3 ]))
  in
  let names = List.sort String.compare (List.map (fun s -> s.Telemetry.Span.name) spans) in
  Alcotest.(check (list string)) "worker spans delivered to submitter"
    [ "task0"; "task1"; "task2"; "task3" ] names

(* --- RNG substreams --- *)

let test_rng_substreams () =
  let seq seed index n =
    let st = Par.Rng.state ~seed ~index in
    List.init n (fun _ -> Random.State.bits st)
  in
  Alcotest.(check (list int)) "pure function of (seed, index)"
    (seq 42 7 16) (seq 42 7 16);
  Alcotest.(check bool) "index separates streams" true
    (seq 42 7 16 <> seq 42 8 16);
  Alcotest.(check bool) "seed separates streams" true
    (seq 42 7 16 <> seq 43 7 16);
  Alcotest.(check bool) "draw is deterministic" true
    (Par.Rng.draw ~seed:1 ~index:2 3 = Par.Rng.draw ~seed:1 ~index:2 3);
  Alcotest.(check bool) "mix avalanches" true (Par.Rng.mix 1L <> 1L)

(* --- Monte-Carlo: bitwise determinism across worker counts --- *)

let spiral6 = Ccplace.Style.place ~bits:6 Ccplace.Style.Spiral

let test_mc_bitwise_determinism () =
  let run jobs = Dacmodel.Montecarlo.run tech ~seed:7 ~jobs ~trials:500 spiral6 in
  let reference = run 1 in
  List.iter
    (fun jobs ->
       (* record equality is float equality field-by-field: bitwise *)
       Alcotest.(check bool)
         (Printf.sprintf "jobs=%d identical to serial" jobs)
         true
         (run jobs = reference))
    [ 2; 4 ];
  (* per-trial curves too, not just the aggregates *)
  let curves jobs =
    Dacmodel.Montecarlo.trial_curves tech ~seed:7 ~jobs ~trials:100 spiral6
  in
  Alcotest.(check bool) "trial curves identical" true (curves 1 = curves 4)

let test_mc_seed_sensitivity () =
  let run seed = Dacmodel.Montecarlo.run tech ~seed ~jobs:2 ~trials:100 spiral6 in
  Alcotest.(check bool) "different seeds differ" true (run 1 <> run 2)

(* --- percentile: ceiling nearest-rank convention --- *)

let test_percentile_ceiling_rank () =
  let a = Array.init 20 (fun i -> float_of_int (i + 1)) in
  (* ceil(0.95 * 20) = 19 -> the 19th smallest.  The old floor rule
     picked the 18th — the small-n bias this pins against. *)
  Alcotest.(check (float 0.)) "p95 of 20" 19. (Dacmodel.Montecarlo.percentile a 0.95);
  Alcotest.(check (float 0.)) "median of 20" 10. (Dacmodel.Montecarlo.percentile a 0.5);
  Alcotest.(check (float 0.)) "q=1 is the max" 20. (Dacmodel.Montecarlo.percentile a 1.);
  Alcotest.(check (float 0.)) "q=0 clamps to the min" 1.
    (Dacmodel.Montecarlo.percentile a 0.);
  let b = [| 1.; 2.; 3.; 4. |] in
  Alcotest.(check (float 0.)) "p95 of 4" 4. (Dacmodel.Montecarlo.percentile b 0.95);
  Alcotest.(check (float 0.)) "median of 4" 2. (Dacmodel.Montecarlo.percentile b 0.5);
  Alcotest.(check (float 0.)) "empty" 0. (Dacmodel.Montecarlo.percentile [||] 0.95)

(* --- Sweep: identical rows at any worker count --- *)

let fingerprint (r : Ccdac.Flow.result) =
  ( Ccplace.Style.name r.Ccdac.Flow.style,
    ( r.Ccdac.Flow.f3db_mhz,
      r.Ccdac.Flow.max_inl,
      r.Ccdac.Flow.max_dnl,
      r.Ccdac.Flow.area ) )

let test_sweep_row_determinism () =
  let row jobs = List.map fingerprint (Ccdac.Sweep.row ~tech ~jobs ~bits:4 ()) in
  let reference = row 1 in
  Alcotest.(check int) "four methods" 4 (List.length reference);
  List.iter
    (fun jobs ->
       Alcotest.(check bool)
         (Printf.sprintf "row jobs=%d identical" jobs)
         true
         (row jobs = reference))
    [ 2; 4 ]

(* --- Optimize: speculative walk preserves serial semantics --- *)

let test_optimize_speculation () =
  let shape (best, trace) =
    ( Option.map (fun c -> c.Ccdac.Optimize.unit_cap_ff) best,
      List.map
        (fun c -> (c.Ccdac.Optimize.unit_cap_ff, c.Ccdac.Optimize.mc))
        trace )
  in
  let candidates = [ 5.; 1.; 3. ] in
  let walk ?bound ?target_yield jobs =
    shape
      (Ccdac.Optimize.minimum_unit_cap ~tech ?bound ?target_yield ~jobs
         ~trials:50 ~bits:4 ~style:Ccplace.Style.Spiral candidates)
  in
  (* everything passes: the trace must stop at the first candidate even
     though jobs=4 speculated past it *)
  let first_passes = walk ~target_yield:0. 4 in
  Alcotest.(check bool) "speculation discarded" true
    (first_passes = walk ~target_yield:0. 1);
  Alcotest.(check int) "trace truncated at winner" 1
    (List.length (snd first_passes));
  (* nothing passes: full trace, same in both modes *)
  let exhausted jobs = walk ~bound:1e-12 ~target_yield:1.0 jobs in
  let serial = exhausted 1 in
  Alcotest.(check bool) "no winner" true (fst serial = None);
  Alcotest.(check int) "full trace" 3 (List.length (snd serial));
  Alcotest.(check bool) "exhausted walk identical" true (serial = exhausted 2)

let () =
  Alcotest.run "par"
    [ ( "jobs",
        [ Alcotest.test_case "resolution order" `Quick test_jobs_resolution;
          Alcotest.test_case "of_string edges" `Quick test_jobs_of_string ] );
      ( "pool",
        [ Alcotest.test_case "ordering" `Quick test_pool_ordering;
          Alcotest.test_case "matches serial" `Quick test_pool_matches_serial;
          Alcotest.test_case "fault isolation" `Quick test_pool_fault_isolation;
          Alcotest.test_case "map_exn raises first" `Quick
            test_pool_map_exn_raises;
          Alcotest.test_case "task backtraces" `Quick test_pool_backtrace;
          Alcotest.test_case "stats" `Quick test_pool_stats;
          Alcotest.test_case "nested map" `Quick test_pool_nested;
          Alcotest.test_case "metrics inheritance" `Quick
            test_pool_metrics_inheritance;
          Alcotest.test_case "span inheritance" `Quick
            test_pool_span_inheritance ] );
      ( "rng",
        [ Alcotest.test_case "substreams" `Quick test_rng_substreams ] );
      ( "determinism",
        [ Alcotest.test_case "monte-carlo bitwise" `Quick
            test_mc_bitwise_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_mc_seed_sensitivity;
          Alcotest.test_case "sweep row" `Quick test_sweep_row_determinism;
          Alcotest.test_case "optimize speculation" `Quick
            test_optimize_speculation ] );
      ( "percentile",
        [ Alcotest.test_case "ceiling nearest-rank" `Quick
            test_percentile_ceiling_rank ] ) ]
