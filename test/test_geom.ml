(* Unit and property tests for the geom library. *)

let check_float = Alcotest.(check (float 1e-9))

let point ~x ~y = Geom.Point.make ~x ~y

(* --- Axis --- *)

let test_axis_orthogonal () =
  Alcotest.(check bool) "h/v" true
    (Geom.Axis.equal
       (Geom.Axis.orthogonal Geom.Axis.Horizontal)
       Geom.Axis.Vertical);
  Alcotest.(check bool) "v/h" true
    (Geom.Axis.equal
       (Geom.Axis.orthogonal Geom.Axis.Vertical)
       Geom.Axis.Horizontal)

let test_axis_of_delta () =
  Alcotest.(check bool) "dx" true
    (Geom.Axis.equal (Geom.Axis.of_delta ~dx:1. ~dy:0.) Geom.Axis.Horizontal);
  Alcotest.(check bool) "dy" true
    (Geom.Axis.equal (Geom.Axis.of_delta ~dx:0. ~dy:(-2.)) Geom.Axis.Vertical)

let test_axis_of_delta_diagonal () =
  Alcotest.check_raises "diagonal" (Invalid_argument
    "Axis.of_delta: diagonal displacement")
    (fun () -> ignore (Geom.Axis.of_delta ~dx:1. ~dy:1.))

let test_axis_of_delta_null () =
  Alcotest.check_raises "null" (Invalid_argument
    "Axis.of_delta: null displacement")
    (fun () -> ignore (Geom.Axis.of_delta ~dx:0. ~dy:0.))

(* --- Point --- *)

let test_point_arith () =
  let a = point ~x:1. ~y:2. and b = point ~x:3. ~y:(-1.) in
  let s = Geom.Point.add a b in
  check_float "add x" 4. s.Geom.Point.x;
  check_float "add y" 1. s.Geom.Point.y;
  let d = Geom.Point.sub a b in
  check_float "sub x" (-2.) d.Geom.Point.x;
  let n = Geom.Point.neg a in
  check_float "neg" (-1.) n.Geom.Point.x;
  let m = Geom.Point.midpoint a b in
  check_float "mid x" 2. m.Geom.Point.x;
  check_float "mid y" 0.5 m.Geom.Point.y

let test_point_distance () =
  let a = point ~x:0. ~y:0. and b = point ~x:3. ~y:4. in
  check_float "euclid" 5. (Geom.Point.distance a b);
  check_float "manhattan" 7. (Geom.Point.manhattan a b)

let test_point_centroid () =
  let c =
    Geom.Point.centroid
      [ point ~x:0. ~y:0.; point ~x:2. ~y:0.; point ~x:1. ~y:3. ]
  in
  check_float "cx" 1. c.Geom.Point.x;
  check_float "cy" 1. c.Geom.Point.y

let test_point_centroid_empty () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Point.centroid: empty list")
    (fun () -> ignore (Geom.Point.centroid []))

let test_point_equal_eps () =
  Alcotest.(check bool) "within eps" true
    (Geom.Point.equal ~eps:1e-3 (point ~x:0. ~y:0.) (point ~x:1e-4 ~y:0.));
  Alcotest.(check bool) "outside eps" false
    (Geom.Point.equal ~eps:1e-6 (point ~x:0. ~y:0.) (point ~x:1e-4 ~y:0.))

(* --- Interval --- *)

let test_interval_make_order () =
  let i = Geom.Interval.make 5. 2. in
  check_float "lo" 2. i.Geom.Interval.lo;
  check_float "hi" 5. i.Geom.Interval.hi;
  check_float "len" 3. (Geom.Interval.length i)

let test_interval_intersect () =
  let a = Geom.Interval.make 0. 4. and b = Geom.Interval.make 2. 6. in
  (match Geom.Interval.intersect a b with
   | Some i ->
     check_float "lo" 2. i.Geom.Interval.lo;
     check_float "hi" 4. i.Geom.Interval.hi
   | None -> Alcotest.fail "expected overlap");
  check_float "overlap" 2. (Geom.Interval.overlap_length a b)

let test_interval_disjoint () =
  let a = Geom.Interval.make 0. 1. and b = Geom.Interval.make 2. 3. in
  Alcotest.(check bool) "none" true (Geom.Interval.intersect a b = None);
  check_float "overlap 0" 0. (Geom.Interval.overlap_length a b)

let test_interval_touching () =
  let a = Geom.Interval.make 0. 1. and b = Geom.Interval.make 1. 2. in
  (match Geom.Interval.intersect a b with
   | Some i -> check_float "len" 0. (Geom.Interval.length i)
   | None -> Alcotest.fail "touching intervals intersect")

let test_interval_hull_contains () =
  let a = Geom.Interval.make 0. 1. and b = Geom.Interval.make 3. 4. in
  let h = Geom.Interval.hull a b in
  Alcotest.(check bool) "contains 2" true (Geom.Interval.contains h 2.);
  check_float "len" 4. (Geom.Interval.length h)

(* --- Rect --- *)

let test_rect_basic () =
  let r = Geom.Rect.make (point ~x:0. ~y:0.) (point ~x:2. ~y:3.) in
  check_float "w" 2. (Geom.Rect.width r);
  check_float "h" 3. (Geom.Rect.height r);
  check_float "area" 6. (Geom.Rect.area r);
  let c = Geom.Rect.center r in
  check_float "cx" 1. c.Geom.Point.x;
  Alcotest.(check bool) "contains" true (Geom.Rect.contains r (point ~x:1. ~y:1.));
  Alcotest.(check bool) "not contains" false
    (Geom.Rect.contains r (point ~x:3. ~y:1.))

let test_rect_bounding () =
  let r =
    Geom.Rect.bounding
      [ point ~x:1. ~y:1.; point ~x:(-1.) ~y:2.; point ~x:0. ~y:(-3.) ]
  in
  check_float "w" 2. (Geom.Rect.width r);
  check_float "h" 5. (Geom.Rect.height r)

(* --- properties --- *)

let float_gen = QCheck.Gen.float_range (-100.) 100.

let point_arb =
  QCheck.make
    ~print:(fun (x, y) -> Printf.sprintf "(%f, %f)" x y)
    QCheck.Gen.(pair float_gen float_gen)

let prop_distance_symmetric =
  QCheck.Test.make ~name:"distance symmetric" ~count:200
    (QCheck.pair point_arb point_arb)
    (fun ((ax, ay), (bx, by)) ->
       let a = point ~x:ax ~y:ay and b = point ~x:bx ~y:by in
       Float.abs (Geom.Point.distance a b -. Geom.Point.distance b a) < 1e-9)

let prop_triangle_inequality =
  QCheck.Test.make ~name:"triangle inequality" ~count:200
    (QCheck.triple point_arb point_arb point_arb)
    (fun ((ax, ay), (bx, by), (cx, cy)) ->
       let a = point ~x:ax ~y:ay
       and b = point ~x:bx ~y:by
       and c = point ~x:cx ~y:cy in
       Geom.Point.distance a c
       <= Geom.Point.distance a b +. Geom.Point.distance b c +. 1e-9)

let prop_manhattan_dominates =
  QCheck.Test.make ~name:"manhattan >= euclid" ~count:200
    (QCheck.pair point_arb point_arb)
    (fun ((ax, ay), (bx, by)) ->
       let a = point ~x:ax ~y:ay and b = point ~x:bx ~y:by in
       Geom.Point.manhattan a b >= Geom.Point.distance a b -. 1e-9)

let prop_neg_involution =
  QCheck.Test.make ~name:"neg involution" ~count:200 point_arb
    (fun (x, y) ->
       let p = point ~x ~y in
       Geom.Point.equal p (Geom.Point.neg (Geom.Point.neg p)))

let interval_arb = QCheck.pair QCheck.(float_range (-50.) 50.) QCheck.(float_range (-50.) 50.)

let prop_overlap_commutes =
  QCheck.Test.make ~name:"overlap commutes" ~count:200
    (QCheck.pair interval_arb interval_arb)
    (fun ((a1, a2), (b1, b2)) ->
       let a = Geom.Interval.make a1 a2 and b = Geom.Interval.make b1 b2 in
       Float.abs
         (Geom.Interval.overlap_length a b -. Geom.Interval.overlap_length b a)
       < 1e-9)

let prop_overlap_bounded =
  QCheck.Test.make ~name:"overlap <= min length" ~count:200
    (QCheck.pair interval_arb interval_arb)
    (fun ((a1, a2), (b1, b2)) ->
       let a = Geom.Interval.make a1 a2 and b = Geom.Interval.make b1 b2 in
       Geom.Interval.overlap_length a b
       <= Float.min (Geom.Interval.length a) (Geom.Interval.length b) +. 1e-9)

let prop_hull_contains_both =
  QCheck.Test.make ~name:"hull contains endpoints" ~count:200
    (QCheck.pair interval_arb interval_arb)
    (fun ((a1, a2), (b1, b2)) ->
       let a = Geom.Interval.make a1 a2 and b = Geom.Interval.make b1 b2 in
       let h = Geom.Interval.hull a b in
       Geom.Interval.contains h a1 && Geom.Interval.contains h a2
       && Geom.Interval.contains h b1 && Geom.Interval.contains h b2)

let () =
  Alcotest.run "geom"
    [ ( "axis",
        [ Alcotest.test_case "orthogonal" `Quick test_axis_orthogonal;
          Alcotest.test_case "of_delta" `Quick test_axis_of_delta;
          Alcotest.test_case "of_delta diagonal" `Quick test_axis_of_delta_diagonal;
          Alcotest.test_case "of_delta null" `Quick test_axis_of_delta_null ] );
      ( "point",
        [ Alcotest.test_case "arithmetic" `Quick test_point_arith;
          Alcotest.test_case "distance" `Quick test_point_distance;
          Alcotest.test_case "centroid" `Quick test_point_centroid;
          Alcotest.test_case "centroid empty" `Quick test_point_centroid_empty;
          Alcotest.test_case "equal eps" `Quick test_point_equal_eps ] );
      ( "interval",
        [ Alcotest.test_case "make orders" `Quick test_interval_make_order;
          Alcotest.test_case "intersect" `Quick test_interval_intersect;
          Alcotest.test_case "disjoint" `Quick test_interval_disjoint;
          Alcotest.test_case "touching" `Quick test_interval_touching;
          Alcotest.test_case "hull" `Quick test_interval_hull_contains ] );
      ( "rect",
        [ Alcotest.test_case "basic" `Quick test_rect_basic;
          Alcotest.test_case "bounding" `Quick test_rect_bounding ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_distance_symmetric;
            prop_triangle_inequality;
            prop_manhattan_dominates;
            prop_neg_involution;
            prop_overlap_commutes;
            prop_overlap_bounded;
            prop_hull_contains_both ] ) ]
