(* Tests for the technology description and parallel-wire transforms. *)

let check_float = Alcotest.(check (float 1e-9))
let finfet = Tech.Process.finfet_12nm
let bulk = Tech.Process.bulk_legacy

let test_presets_sane () =
  List.iter
    (fun (t : Tech.Process.t) ->
       Alcotest.(check bool) "positive unit cap" true (t.Tech.Process.unit_cap > 0.);
       Alcotest.(check bool) "positive via" true (t.Tech.Process.via_resistance > 0.);
       Alcotest.(check bool) "positive pitch" true (t.Tech.Process.wire_pitch > 0.);
       Alcotest.(check bool) "rho in (0,1)" true
         (t.Tech.Process.rho_u > 0. && t.Tech.Process.rho_u < 1.);
       Alcotest.(check int) "three layers" 3 (List.length t.Tech.Process.stack))
    [ finfet; bulk ]

let test_finfet_is_via_hostile () =
  (* the premise of the paper: FinFET vias cost much more than bulk ones *)
  Alcotest.(check bool) "via ratio" true
    (finfet.Tech.Process.via_resistance > 10. *. bulk.Tech.Process.via_resistance)

let test_plate_much_cheaper_than_wire () =
  let m1 = Tech.Process.layer finfet Tech.Layer.M1 in
  Alcotest.(check bool) "plate << wire" true
    (finfet.Tech.Process.plate_resistance < m1.Tech.Layer.resistance /. 2.)

let test_cell_pitch () =
  check_float "pitch x"
    (finfet.Tech.Process.cell_width +. finfet.Tech.Process.cell_spacing)
    (Tech.Process.cell_pitch_x finfet);
  check_float "pitch y"
    (finfet.Tech.Process.cell_height +. finfet.Tech.Process.cell_spacing)
    (Tech.Process.cell_pitch_y finfet)

let test_sigma_rel () =
  (* sigma_rel = coeff * sqrt(1 fF / Cu) *)
  let expected =
    finfet.Tech.Process.mismatch_coeff *. sqrt (1. /. finfet.Tech.Process.unit_cap)
  in
  check_float "sigma_rel" expected (Tech.Process.sigma_rel finfet);
  check_float "sigma_u" (expected *. finfet.Tech.Process.unit_cap)
    (Tech.Process.sigma_u finfet)

let test_layer_find () =
  let m2 = Tech.Process.layer finfet Tech.Layer.M2 in
  Alcotest.(check bool) "M2" true (Tech.Layer.equal_name m2.Tech.Layer.name Tech.Layer.M2)

let test_layer_find_missing () =
  Alcotest.check_raises "missing layer"
    (Invalid_argument "Layer.find: layer not in stack")
    (fun () -> ignore (Tech.Layer.find [] Tech.Layer.M1))

let test_reserved_directions () =
  let m1 = Tech.Process.layer finfet Tech.Layer.M1 in
  let m2 = Tech.Process.layer finfet Tech.Layer.M2 in
  Alcotest.(check bool) "M1 horizontal" true
    (Geom.Axis.equal m1.Tech.Layer.direction Geom.Axis.Horizontal);
  Alcotest.(check bool) "M2 vertical" true
    (Geom.Axis.equal m2.Tech.Layer.direction Geom.Axis.Vertical)

(* --- parallel wires (Sec. IV-B4) --- *)

let m1 = Tech.Process.layer finfet Tech.Layer.M1

let test_parallel_wire_resistance () =
  let r1 = Tech.Parallel.wire_resistance m1 ~length:10. ~p:1 in
  let r4 = Tech.Parallel.wire_resistance m1 ~length:10. ~p:4 in
  check_float "R / p" (r1 /. 4.) r4

let test_parallel_wire_capacitance () =
  let c1 = Tech.Parallel.wire_capacitance m1 ~length:10. ~p:1 in
  let c3 = Tech.Parallel.wire_capacitance m1 ~length:10. ~p:3 in
  check_float "C * p" (c1 *. 3.) c3

let test_parallel_via_resistance () =
  let r1 = Tech.Parallel.via_resistance finfet ~p:1 in
  let r2 = Tech.Parallel.via_resistance finfet ~p:2 in
  check_float "R / p^2" (r1 /. 4.) r2;
  check_float "base" finfet.Tech.Process.via_resistance r1

let test_parallel_via_count () =
  Alcotest.(check int) "p=1" 1 (Tech.Parallel.via_count ~p:1);
  Alcotest.(check int) "p=3" 9 (Tech.Parallel.via_count ~p:3)

let test_parallel_geometry () =
  check_float "bundle width"
    (2. *. finfet.Tech.Process.wire_pitch)
    (Tech.Parallel.bundle_width finfet ~p:2);
  check_float "track span"
    (3. *. finfet.Tech.Process.wire_pitch)
    (Tech.Parallel.track_span finfet ~p:2)

let test_parallel_rejects_bad_p () =
  Alcotest.check_raises "p=0" (Invalid_argument "Parallel: p must be >= 1")
    (fun () -> ignore (Tech.Parallel.via_count ~p:0))

let prop_parallel_monotone =
  QCheck.Test.make ~name:"more wires, less resistance" ~count:100
    QCheck.(pair (int_range 1 7) (float_range 0.1 100.))
    (fun (p, len) ->
       Tech.Parallel.wire_resistance m1 ~length:len ~p:(p + 1)
       < Tech.Parallel.wire_resistance m1 ~length:len ~p +. 1e-12)

let prop_rc_product_invariant =
  (* R*C of a wire bundle is independent of p: resistance / p, cap * p *)
  QCheck.Test.make ~name:"RC invariant under p" ~count:100
    QCheck.(pair (int_range 1 8) (float_range 0.1 100.))
    (fun (p, len) ->
       let r = Tech.Parallel.wire_resistance m1 ~length:len ~p in
       let c = Tech.Parallel.wire_capacitance m1 ~length:len ~p in
       let r1 = Tech.Parallel.wire_resistance m1 ~length:len ~p:1 in
       let c1 = Tech.Parallel.wire_capacitance m1 ~length:len ~p:1 in
       Float.abs ((r *. c) -. (r1 *. c1)) < 1e-9)

let () =
  Alcotest.run "tech"
    [ ( "process",
        [ Alcotest.test_case "presets sane" `Quick test_presets_sane;
          Alcotest.test_case "finfet via hostile" `Quick test_finfet_is_via_hostile;
          Alcotest.test_case "plate resistance" `Quick test_plate_much_cheaper_than_wire;
          Alcotest.test_case "cell pitch" `Quick test_cell_pitch;
          Alcotest.test_case "sigma" `Quick test_sigma_rel;
          Alcotest.test_case "layer find" `Quick test_layer_find;
          Alcotest.test_case "layer missing" `Quick test_layer_find_missing;
          Alcotest.test_case "reserved directions" `Quick test_reserved_directions ] );
      ( "parallel",
        [ Alcotest.test_case "wire R" `Quick test_parallel_wire_resistance;
          Alcotest.test_case "wire C" `Quick test_parallel_wire_capacitance;
          Alcotest.test_case "via R" `Quick test_parallel_via_resistance;
          Alcotest.test_case "via count" `Quick test_parallel_via_count;
          Alcotest.test_case "geometry" `Quick test_parallel_geometry;
          Alcotest.test_case "bad p" `Quick test_parallel_rejects_bad_p ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_parallel_monotone; prop_rc_product_invariant ] ) ]
