(* Tests for scheduler observability (Par.Sched) and the cross-bit-width
   scaling probe (Ccdac.Scaling): recording is off by default and free
   when off, batch records have the right shape, metrics/spans/traces
   carry the sched/* surface, results stay bitwise identical with
   recording on or off, and the log-log exponent fit is pinned on
   synthetic data. *)

module T = Telemetry

(* Uneven per-item work so chunks genuinely differ in cost. *)
let busy_f i =
  let spin = (i * 7919) mod 97 in
  let acc = ref 0 in
  for k = 0 to spin * 40 do
    acc := !acc + k
  done;
  !acc + i

(* --- off by default / collect sees nothing when disabled --- *)

let test_disabled_by_default () =
  Alcotest.(check bool) "recording off by default" false (Par.Sched.enabled ());
  let (), batches =
    Par.Sched.collect (fun () ->
        ignore (Par.Pool.map_list_exn ~jobs:4 busy_f (List.init 64 Fun.id)))
  in
  Alcotest.(check int) "no batches recorded while off" 0 (List.length batches);
  let s = Par.Sched.summarize batches in
  Alcotest.(check int) "empty summary" 0 s.Par.Sched.batches;
  Alcotest.(check bool) "utilization is nan when unsampled" true
    (Float.is_nan s.Par.Sched.mean_utilization)

(* --- batch record shape --- *)

let test_batch_shape () =
  Par.Sched.with_enabled true @@ fun () ->
  let n = 64 in
  let results, batches =
    Par.Sched.collect (fun () ->
        Par.Pool.map_list_exn ~jobs:4 busy_f (List.init n Fun.id))
  in
  Alcotest.(check (list int)) "results unchanged"
    (List.map busy_f (List.init n Fun.id))
    results;
  match batches with
  | [ b ] ->
    Alcotest.(check int) "jobs" 4 b.Par.Sched.b_jobs;
    Alcotest.(check int) "items" n b.Par.Sched.b_items;
    let chunks = b.Par.Sched.b_chunks in
    Alcotest.(check bool) "several chunks" true (List.length chunks > 1);
    Alcotest.(check int) "chunk items cover the batch" n
      (List.fold_left (fun acc c -> acc + c.Par.Sched.c_items) 0 chunks);
    let indexes =
      List.sort Int.compare (List.map (fun c -> c.Par.Sched.c_index) chunks)
    in
    Alcotest.(check (list int)) "chunk indexes are 0..k-1"
      (List.init (List.length chunks) Fun.id)
      indexes;
    List.iter
      (fun c ->
         Alcotest.(check int) "chunk tagged with the batch id"
           b.Par.Sched.b_id c.Par.Sched.c_batch;
         Alcotest.(check bool) "exec time >= 0" true
           (Par.Sched.chunk_exec_s c >= 0.);
         Alcotest.(check bool) "wait time >= 0" true
           (Par.Sched.chunk_wait_s c >= 0.);
         Alcotest.(check bool) "queue depth >= 0" true
           (c.Par.Sched.c_queue_depth >= 0))
      chunks;
    Alcotest.(check bool) "wall covers the busy chunks" true
      (b.Par.Sched.b_wall_s > 0.);
    Alcotest.(check bool) "caller stall bounded by wall" true
      (b.Par.Sched.b_caller_blocked_s >= 0.
       && b.Par.Sched.b_caller_blocked_s <= b.Par.Sched.b_wall_s);
    let u = Par.Sched.utilization b in
    Alcotest.(check bool) "utilization in (0, 1]" true (u > 0. && u <= 1.);
    Alcotest.(check bool) "imbalance >= 1" true (Par.Sched.imbalance b >= 1.);
    let s = Par.Sched.summarize batches in
    Alcotest.(check int) "summary batches" 1 s.Par.Sched.batches;
    Alcotest.(check int) "summary chunks" (List.length chunks)
      s.Par.Sched.chunks;
    Alcotest.(check int) "summary caller split" s.Par.Sched.caller_chunks
      (List.length (List.filter (fun c -> c.Par.Sched.c_by_caller) chunks));
    Alcotest.(check int) "summary max depth"
      (List.fold_left (fun acc c -> max acc c.Par.Sched.c_queue_depth) 0 chunks)
      s.Par.Sched.max_queue_depth
  | bs -> Alcotest.failf "expected exactly one batch, got %d" (List.length bs)

(* --- pure observer: bitwise-identical results on vs off --- *)

let test_bitwise_invariant_map () =
  let xs = List.init 200 (fun i -> i - 17) in
  let f i = (i * 2654435761) lxor (i lsl 7) in
  let run on =
    Par.Sched.with_enabled on (fun () -> Par.Pool.map_list_exn ~jobs:4 f xs)
  in
  Alcotest.(check (list int)) "recording is a pure observer" (run false)
    (run true)

let test_flow_bitwise_invariant () =
  let fingerprint on =
    Par.Sched.with_enabled on @@ fun () ->
    let r = Ccdac.Flow.run ~bits:6 Ccplace.Style.Spiral in
    ( List.map Int64.bits_of_float
        [ r.Ccdac.Flow.f3db_mhz; r.Ccdac.Flow.max_inl; r.Ccdac.Flow.max_dnl;
          r.Ccdac.Flow.tau_fs; r.Ccdac.Flow.area;
          r.Ccdac.Flow.parasitics.Extract.Parasitics.total_wirelength ],
      r.Ccdac.Flow.parasitics.Extract.Parasitics.total_via_cuts )
  in
  List.iter
    (fun jobs ->
       Par.Jobs.set_default jobs;
       Fun.protect ~finally:Par.Jobs.clear_default @@ fun () ->
       let off = fingerprint false and on = fingerprint true in
       Alcotest.(check (pair (list int64) int))
         (Printf.sprintf "jobs=%d: flow identical with recording on/off" jobs)
         off on)
    [ 1; 4 ]

(* --- the parallel extract stage matches its serial self --- *)

let test_extract_parallel_matches_serial () =
  let layout =
    fst
      (Ccdac.Flow.place_route ~bits:6 ~verify:false Ccplace.Style.Spiral)
  in
  let run jobs =
    Par.Jobs.set_default jobs;
    Fun.protect ~finally:Par.Jobs.clear_default @@ fun () ->
    Extract.Parasitics.extract layout
  in
  let reference = run 1 in
  List.iter
    (fun jobs ->
       Alcotest.(check bool)
         (Printf.sprintf "extract jobs=%d bitwise identical" jobs)
         true
         (run jobs = reference))
    [ 2; 4 ]

(* --- metrics / spans / trace surface --- *)

let test_sched_metrics () =
  Par.Sched.with_enabled true @@ fun () ->
  let (), dump =
    T.Metrics.collect (fun () ->
        ignore (Par.Pool.map_list_exn ~jobs:4 busy_f (List.init 64 Fun.id)))
  in
  Alcotest.(check int) "one batch counted" 1
    (T.Metrics.counter dump "sched/batches_total");
  (* chunk executions are split by executor label *)
  let chunks =
    T.Metrics.counter ~label:"caller" dump "sched/chunks_total"
    + T.Metrics.counter ~label:"worker" dump "sched/chunks_total"
  in
  Alcotest.(check bool) "chunks counted" true (chunks > 1)

let test_sched_spans_and_trace () =
  let path = Filename.temp_file "ccdac_sched" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Par.Sched.with_enabled true @@ fun () ->
  let (), spans =
    T.Span.collect (fun () ->
        T.Sink.with_ (T.Sink.chrome_trace ~path) (fun () ->
            T.Span.with_ ~name:"root" (fun () ->
                ignore
                  (Par.Pool.map_list_exn ~jobs:4 busy_f (List.init 64 Fun.id)))))
  in
  let chunk_spans =
    List.filter (fun s -> String.equal s.T.Span.name "sched.chunk") spans
  in
  Alcotest.(check bool) "sched.chunk spans collected" true (chunk_spans <> []);
  List.iter
    (fun s ->
       Alcotest.(check bool) "span carries queue_depth" true
         (List.mem_assoc "queue_depth" s.T.Span.attrs);
       Alcotest.(check bool) "span carries executor" true
         (List.mem_assoc "executor" s.T.Span.attrs))
    chunk_spans;
  let ic = open_in path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  let contains needle =
    let nl = String.length needle and bl = String.length body in
    let rec go i = i + nl <= bl && (String.sub body i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "trace has sched.chunk slices" true
    (contains "sched.chunk");
  Alcotest.(check bool) "trace has the queue_depth counter" true
    (contains "queue_depth")

(* --- the pay-nothing-when-off contract, per map call --- *)

let test_inactive_overhead () =
  Alcotest.(check bool) "recording off" false (Par.Sched.enabled ());
  Par.Pool.with_ ~jobs:4 @@ fun pool ->
  let xs = List.init 64 Fun.id in
  (* warm up (spawns, queue growth) before measuring *)
  ignore (Par.Pool.map_exn pool busy_f xs);
  let n = 50 in
  let w0 = Gc.minor_words () in
  for _ = 1 to n do
    ignore (Par.Pool.map_exn pool busy_f xs)
  done;
  let per_map = (Gc.minor_words () -. w0) /. float_of_int n in
  (* A 64-item batch allocates ~item slots + chunk closures + result
     list regardless of instrumentation; the bound leaves that room but
     would catch per-chunk timestamp/record allocation on the off path
     (each Gc/clock record costs hundreds of words x 16 chunks). *)
  Alcotest.(check bool)
    (Printf.sprintf "off-path map allocates < 4096 words (got %.0f)" per_map)
    true (per_map < 4096.)

(* --- the exponent fit, on synthetic data --- *)

let test_fit_loglog () =
  let quad =
    List.map (fun x -> (x, 3. *. (x ** 2.))) [ 16.; 64.; 256.; 1024. ]
  in
  (match Ccdac.Scaling.fit_loglog quad with
   | None -> Alcotest.fail "quadratic data must fit"
   | Some (slope, r2) ->
     Alcotest.(check (float 1e-6)) "quadratic slope" 2. slope;
     Alcotest.(check (float 1e-6)) "perfect fit" 1. r2);
  (match Ccdac.Scaling.fit_loglog [ (16., 5.); (64., 5.); (256., 5.) ] with
   | None -> Alcotest.fail "constant data must fit"
   | Some (slope, r2) ->
     Alcotest.(check (float 1e-9)) "flat slope" 0. slope;
     Alcotest.(check (float 1e-9)) "flat series is a perfect fit" 1. r2);
  Alcotest.(check bool) "one x value cannot fit" true
    (Ccdac.Scaling.fit_loglog [ (64., 1.); (64., 2.) ] = None);
  Alcotest.(check bool) "non-positive x dropped" true
    (Ccdac.Scaling.fit_loglog [ (0., 1.); (-1., 2.); (64., 3.) ] = None);
  (* y = 0 is floored, not log(0): the fit stays finite *)
  match Ccdac.Scaling.fit_loglog [ (16., 0.); (64., 0.1) ] with
  | None -> Alcotest.fail "floored data must fit"
  | Some (slope, _) ->
    Alcotest.(check bool) "finite slope on floored y" true
      (Float.is_finite slope)

(* --- a small ladder end to end --- *)

let test_scaling_run_shape () =
  let t =
    Par.Sched.with_enabled true (fun () ->
        Ccdac.Scaling.run ~trials:3 ~seed:1 ~jobs:2 [ 4; 5; 6 ])
  in
  Alcotest.(check int) "three rungs" 3 (List.length t.Ccdac.Scaling.points);
  let cells =
    List.map (fun p -> p.Ccdac.Scaling.p_cells) t.Ccdac.Scaling.points
  in
  Alcotest.(check bool) "cells strictly grow" true
    (List.sort_uniq Int.compare cells = cells);
  List.iter
    (fun (p : Ccdac.Scaling.point) ->
       List.iter
         (fun stage ->
            Alcotest.(check bool)
              (Printf.sprintf "b%d has the %s stage" p.Ccdac.Scaling.p_bits
                 stage)
              true
              (List.mem_assoc stage p.Ccdac.Scaling.p_stage_s))
         [ "place"; "route"; "extract"; "analyse"; "mc"; "total" ];
       Alcotest.(check bool) "memory series sampled" true
         (List.length p.Ccdac.Scaling.p_stage_alloc_mb > 0))
    t.Ccdac.Scaling.points;
  (* >= 4 fitted flow stages, as the ledger contract requires *)
  Alcotest.(check bool) "at least four fitted stages" true
    (List.length t.Ccdac.Scaling.fits >= 4);
  List.iter
    (fun (f : Ccdac.Scaling.fit) ->
       Alcotest.(check bool)
         (f.Ccdac.Scaling.f_stage ^ " exponent finite")
         true
         (Float.is_finite f.Ccdac.Scaling.f_exponent))
    t.Ccdac.Scaling.fits;
  Alcotest.(check bool) "total stage fitted" true
    (List.mem_assoc "total" (Ccdac.Scaling.exponents t));
  (* parallel sections ran under the probe, so the sched series is live *)
  let s = Ccdac.Scaling.sched_totals t in
  Alcotest.(check bool) "ladder recorded scheduler batches" true
    (s.Par.Sched.batches > 0);
  Alcotest.(check bool) "ladder utilization in (0, 1]" true
    (s.Par.Sched.mean_utilization > 0. && s.Par.Sched.mean_utilization <= 1.)

let () =
  Alcotest.run "sched"
    [ ( "recording",
        [ Alcotest.test_case "disabled by default" `Quick
            test_disabled_by_default;
          Alcotest.test_case "batch shape" `Quick test_batch_shape;
          Alcotest.test_case "inactive overhead" `Quick test_inactive_overhead
        ] );
      ( "determinism",
        [ Alcotest.test_case "map bitwise invariant" `Quick
            test_bitwise_invariant_map;
          Alcotest.test_case "flow bitwise invariant" `Quick
            test_flow_bitwise_invariant;
          Alcotest.test_case "extract matches serial" `Quick
            test_extract_parallel_matches_serial ] );
      ( "surface",
        [ Alcotest.test_case "sched metrics" `Quick test_sched_metrics;
          Alcotest.test_case "spans and chrome trace" `Quick
            test_sched_spans_and_trace ] );
      ( "scaling",
        [ Alcotest.test_case "fit_loglog" `Quick test_fit_loglog;
          Alcotest.test_case "small ladder" `Quick test_scaling_run_shape ] )
    ]
