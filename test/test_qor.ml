(* Tests for the QoR observability layer: records and their JSONL
   round-trip (including schema skew), the tolerance policies, the
   regression sentinel end-to-end, per-element attribution invariants,
   and histogram quantiles. *)

let tech = Tech.Process.finfet_12nm

(* one shared flow result; every QoR artefact derives from it *)
let result = lazy (Ccdac.Flow.run ~tech ~bits:6 Ccplace.Style.Spiral)
let record = lazy (Qor.Record.of_result ~repeat:2 (Lazy.force result))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
  m = 0 || scan 0

let temp_path suffix =
  let path = Filename.temp_file "qor_test" suffix in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

(* --- records --- *)

let check_float name a b = Alcotest.(check (float 1e-9)) name a b

let test_record_fields () =
  let r = Lazy.force record in
  Alcotest.(check int) "schema version" Qor.Record.schema_version
    r.Qor.Record.schema_version;
  Alcotest.(check string) "label" "spiral b6" r.Qor.Record.label;
  Alcotest.(check int) "repeat" 2 r.Qor.Record.repeat;
  Alcotest.(check bool) "stages recorded" true
    (List.mem_assoc "place" r.Qor.Record.stage_s
     && List.mem_assoc "route" r.Qor.Record.stage_s);
  Alcotest.(check bool) "hash is 16 hex digits" true
    (String.length r.Qor.Record.tech_hash = 16);
  (* a completed flow fired no error rules, but the sets are recorded *)
  Alcotest.(check bool) "via cuts positive" true (r.Qor.Record.via_cuts > 0)

let test_tech_hash_distinguishes () =
  let a = Qor.Record.tech_hash Tech.Process.finfet_12nm in
  let b = Qor.Record.tech_hash Tech.Process.bulk_legacy in
  Alcotest.(check bool) "different processes, different hashes" true (a <> b);
  Alcotest.(check string) "deterministic" a
    (Qor.Record.tech_hash Tech.Process.finfet_12nm)

let test_record_json_roundtrip () =
  let r = Lazy.force record in
  match Qor.Record.of_json (Qor.Record.to_json r) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok r' ->
    Alcotest.(check string) "label" r.Qor.Record.label r'.Qor.Record.label;
    Alcotest.(check string) "style" r.Qor.Record.style r'.Qor.Record.style;
    Alcotest.(check int) "bits" r.Qor.Record.bits r'.Qor.Record.bits;
    Alcotest.(check string) "tech hash" r.Qor.Record.tech_hash
      r'.Qor.Record.tech_hash;
    Alcotest.(check int) "repeat" r.Qor.Record.repeat r'.Qor.Record.repeat;
    check_float "f3db" r.Qor.Record.f3db_mhz r'.Qor.Record.f3db_mhz;
    check_float "inl" r.Qor.Record.max_inl_lsb r'.Qor.Record.max_inl_lsb;
    Alcotest.(check int) "via cuts" r.Qor.Record.via_cuts
      r'.Qor.Record.via_cuts;
    Alcotest.(check (list string)) "verify rules" r.Qor.Record.verify_rules
      r'.Qor.Record.verify_rules;
    Alcotest.(check int) "stage count"
      (List.length r.Qor.Record.stage_s)
      (List.length r'.Qor.Record.stage_s)

(* A record written by an older (or newer) schema parses: missing
   scalars decay to NaN, counts to 0, sets to [] — never an exception. *)
let test_record_schema_skew () =
  let old =
    Telemetry.Json.Obj
      [ ("schema_version", Telemetry.Json.Num 99.);
        ("style", Telemetry.Json.Str "spiral");
        ("bits", Telemetry.Json.Num 8.) ]
  in
  (match Qor.Record.of_json old with
   | Error e -> Alcotest.failf "skewed record rejected: %s" e
   | Ok r ->
     Alcotest.(check int) "future version preserved" 99
       r.Qor.Record.schema_version;
     Alcotest.(check string) "label derived" "spiral b8" r.Qor.Record.label;
     Alcotest.(check bool) "missing scalar is NaN" true
       (Float.is_nan r.Qor.Record.f3db_mhz);
     Alcotest.(check int) "missing count is 0" 0 r.Qor.Record.via_cuts;
     Alcotest.(check (list string)) "missing set is []" []
       r.Qor.Record.verify_rules);
  match Qor.Record.of_json (Telemetry.Json.Str "nope") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-object record should not parse"

(* --- ledger --- *)

let test_ledger_roundtrip () =
  let path = temp_path ".jsonl" in
  let r = Lazy.force record in
  let r' = { r with Qor.Record.repeat = 5 } in
  Qor.Ledger.append ~path r;
  (* corruption in the middle is skipped, not fatal *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "this is not JSON\n";
  close_out oc;
  Qor.Ledger.append ~path r';
  let records, complaints = Qor.Ledger.load ~path in
  Alcotest.(check int) "two records survive" 2 (List.length records);
  Alcotest.(check int) "one complaint" 1 (List.length complaints);
  let latest = Qor.Ledger.latest_by_label records in
  Alcotest.(check int) "one label" 1 (List.length latest);
  Alcotest.(check int) "latest wins" 5 (List.hd latest).Qor.Record.repeat

let test_baseline_roundtrip () =
  let path = temp_path ".json" in
  let r = Lazy.force record in
  Qor.Baseline.save ~path [ r ];
  (match Qor.Baseline.load ~path with
   | Error e -> Alcotest.failf "baseline load failed: %s" e
   | Ok records ->
     Alcotest.(check (list string)) "labels" [ r.Qor.Record.label ]
       (List.map (fun (x : Qor.Record.t) -> x.Qor.Record.label) records));
  (* a bare JSONL ledger also loads as a baseline *)
  let ledger = temp_path ".jsonl" in
  Qor.Ledger.append ~path:ledger r;
  Qor.Ledger.append ~path:ledger { r with Qor.Record.repeat = 9 };
  (match Qor.Baseline.load ~path:ledger with
   | Error e -> Alcotest.failf "ledger-as-baseline failed: %s" e
   | Ok records ->
     Alcotest.(check int) "deduped by label" 1 (List.length records);
     Alcotest.(check int) "latest record" 9
       (List.hd records).Qor.Record.repeat);
  match Qor.Baseline.load ~path:"/nonexistent/baseline.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing baseline should be an Error"

(* --- tolerance policies --- *)

let policy id =
  match Qor.Policy.find id with
  | Some p -> p
  | None -> Alcotest.failf "policy %s missing from catalogue" id

let verdict =
  Alcotest.testable
    (fun fmt v -> Format.pp_print_string fmt (Qor.Policy.verdict_name v))
    ( = )

let judge ?(repeat = 1) p b c =
  fst
    (Qor.Policy.judge p ~repeat ~baseline:(Qor.Policy.Scalar b)
       ~current:(Qor.Policy.Scalar c))

let test_policy_rel_thresholds () =
  let p = policy "qor/f3db_mhz" in
  (* tol 2%, Higher_better, inclusive threshold *)
  Alcotest.check verdict "exactly -2% is unchanged" Qor.Policy.Unchanged
    (judge p 1000. 980.);
  Alcotest.check verdict "past -2% regresses" Qor.Policy.Regressed
    (judge p 1000. 979.9);
  Alcotest.check verdict "exactly +2% is unchanged" Qor.Policy.Unchanged
    (judge p 1000. 1020.);
  Alcotest.check verdict "past +2% improves" Qor.Policy.Improved
    (judge p 1000. 1021.);
  Alcotest.check verdict "identical" Qor.Policy.Unchanged (judge p 1000. 1000.)

let test_policy_nan_guard () =
  let p = policy "qor/f3db_mhz" in
  Alcotest.check verdict "NaN current" Qor.Policy.Incomparable
    (judge p 1000. Float.nan);
  Alcotest.check verdict "NaN baseline" Qor.Policy.Incomparable
    (judge p Float.nan 1000.);
  let v, detail =
    Qor.Policy.judge p ~repeat:1 ~baseline:(Qor.Policy.Scalar Float.nan)
      ~current:(Qor.Policy.Scalar Float.nan)
  in
  Alcotest.check verdict "NaN both" Qor.Policy.Incomparable v;
  Alcotest.(check bool) "detail mentions NaN" true
    (contains detail "NaN")

let test_policy_repeat_floor () =
  let p = policy "qor/place_route_s" in
  (* floor 0.05 s at repeat 1: dust under the floor compares equal *)
  Alcotest.check verdict "under the floor" Qor.Policy.Unchanged
    (judge p 0.004 0.049);
  (* repeat 25 shrinks the floor to 0.01: the same change now counts,
     and a 75% drop on a Lower_better metric is an improvement *)
  Alcotest.check verdict "repeat shrinks the floor" Qor.Policy.Improved
    (judge ~repeat:25 p 0.04 0.01);
  (* microscopic baseline cannot inflate the denominator *)
  Alcotest.check verdict "floored denominator" Qor.Policy.Regressed
    (judge p 0.001 0.2)

let test_policy_abs () =
  let p = policy "qor/max_inl_lsb" in
  (* tol 0.005 LSB absolute, Lower_better *)
  Alcotest.check verdict "at tolerance" Qor.Policy.Unchanged
    (judge p 0.100 0.105);
  Alcotest.check verdict "past tolerance" Qor.Policy.Regressed
    (judge p 0.100 0.1051);
  Alcotest.check verdict "improvement" Qor.Policy.Improved
    (judge p 0.100 0.090)

let test_policy_exact () =
  let p = policy "qor/via_cuts" in
  let count n = Qor.Policy.Count n in
  Alcotest.check verdict "count match" Qor.Policy.Unchanged
    (fst (Qor.Policy.judge p ~repeat:1 ~baseline:(count 12) ~current:(count 12)));
  (* any drift regresses, even a decrease: the baseline must be blessed *)
  Alcotest.check verdict "count drift" Qor.Policy.Regressed
    (fst (Qor.Policy.judge p ~repeat:1 ~baseline:(count 12) ~current:(count 11)));
  let ps = policy "qor/verify_rules" in
  let set l = Qor.Policy.Set l in
  Alcotest.check verdict "set order irrelevant" Qor.Policy.Unchanged
    (fst
       (Qor.Policy.judge ps ~repeat:1 ~baseline:(set [ "b"; "a" ])
          ~current:(set [ "a"; "b"; "a" ])));
  let v, detail =
    Qor.Policy.judge ps ~repeat:1 ~baseline:(set [ "a"; "b" ])
      ~current:(set [ "a"; "c" ])
  in
  Alcotest.check verdict "set drift" Qor.Policy.Regressed v;
  Alcotest.(check bool) "names appeared ids" true
    (contains detail "appeared {c}");
  Alcotest.(check bool) "names vanished ids" true
    (contains detail "vanished {b}");
  (* shape mismatch is incomparable, not an exception *)
  Alcotest.check verdict "shape mismatch" Qor.Policy.Incomparable
    (fst
       (Qor.Policy.judge p ~repeat:1 ~baseline:(count 3)
          ~current:(Qor.Policy.Scalar 3.)))

(* --- the sentinel end-to-end --- *)

let finding_ids fs =
  List.map (fun (f : Qor.Compare.finding) -> f.Qor.Compare.policy.Qor.Policy.id)
    fs

let test_diff_identical_is_clean () =
  let r = Lazy.force record in
  let cmp = Qor.Compare.diff ~baseline:[ r ] ~current:[ r ] in
  Alcotest.(check string) "summary" "clean" (Qor.Compare.summary_line cmp);
  (match Qor.Compare.gate ~werror:true cmp with
   | Ok () -> ()
   | Error fs ->
     Alcotest.failf "identical diff failed the gate: %s"
       (String.concat ", " (finding_ids fs)));
  Alcotest.(check (list string)) "no warnings" [] cmp.Qor.Compare.warnings

(* the acceptance scenario: a seeded f3dB regression must fail the gate
   with a finding pinned to the qor/f3db_mhz verdict id *)
let test_diff_seeded_regression () =
  let r = Lazy.force record in
  let slower =
    { r with Qor.Record.f3db_mhz = r.Qor.Record.f3db_mhz *. 0.9 }
  in
  let cmp = Qor.Compare.diff ~baseline:[ r ] ~current:[ slower ] in
  match Qor.Compare.gate cmp with
  | Ok () -> Alcotest.fail "a -10% f3dB change must fail the gate"
  | Error fs ->
    Alcotest.(check (list string)) "pinned verdict id" [ "qor/f3db_mhz" ]
      (finding_ids fs);
    let f = List.hd fs in
    Alcotest.check verdict "regressed" Qor.Policy.Regressed
      f.Qor.Compare.verdict;
    Alcotest.(check string) "labelled" "spiral b6" f.Qor.Compare.label

let test_diff_werror_and_severity () =
  let r = Lazy.force record in
  let more_bends = { r with Qor.Record.bends = r.Qor.Record.bends + 1 } in
  let cmp = Qor.Compare.diff ~baseline:[ r ] ~current:[ more_bends ] in
  (* bends is Warning severity: passes by default, fails under --werror *)
  (match Qor.Compare.gate cmp with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "warning-severity drift failed a default gate");
  match Qor.Compare.gate ~werror:true cmp with
  | Ok () -> Alcotest.fail "--werror must fail on warning-severity drift"
  | Error fs ->
    Alcotest.(check (list string)) "bends named" [ "qor/bends" ]
      (finding_ids fs)

let test_diff_coverage_and_skew () =
  let r = Lazy.force record in
  (* a baseline configuration with no current record is incomparable *)
  let cmp = Qor.Compare.diff ~baseline:[ r ] ~current:[] in
  (match Qor.Compare.gate cmp with
   | Ok () -> Alcotest.fail "missing coverage must fail the gate"
   | Error fs ->
     Alcotest.(check (list string)) "coverage finding" [ "qor/coverage" ]
       (finding_ids fs));
  (* schema skew surfaces as a warning, not a failure by itself *)
  let skewed = { r with Qor.Record.schema_version = 2 } in
  let cmp = Qor.Compare.diff ~baseline:[ r ] ~current:[ skewed ] in
  Alcotest.(check bool) "skew warning" true
    (List.exists
       (fun w -> contains w "schema version skew")
       cmp.Qor.Compare.warnings);
  (* an extra current label is informational *)
  let extra = { r with Qor.Record.label = "spiral b9" } in
  let cmp = Qor.Compare.diff ~baseline:[ r ] ~current:[ r; extra ] in
  Alcotest.(check bool) "extra label noted" true
    (List.exists
       (fun w -> contains w "no baseline record")
       cmp.Qor.Compare.warnings)

let test_diff_json_shape () =
  let r = Lazy.force record in
  let slower =
    { r with Qor.Record.f3db_mhz = r.Qor.Record.f3db_mhz *. 0.9 }
  in
  let cmp = Qor.Compare.diff ~baseline:[ r ] ~current:[ slower ] in
  let j = Qor.Compare.to_json cmp in
  let member name =
    match Telemetry.Json.member name j with
    | Some v -> v
    | None -> Alcotest.failf "verdict JSON lacks %S" name
  in
  (match Telemetry.Json.member "regressed" (member "summary") with
   | Some (Telemetry.Json.Num n) ->
     Alcotest.(check (float 0.)) "one regression" 1. n
   | _ -> Alcotest.fail "summary.regressed missing");
  match member "findings" with
  | Telemetry.Json.Arr (_ :: _) -> ()
  | _ -> Alcotest.fail "findings array empty"

(* --- per-element attribution --- *)

let explain = lazy (Qor.Explain.of_result (Lazy.force result))

let test_explain_delay_sums () =
  let e = Lazy.force explain in
  let sum =
    List.fold_left
      (fun acc (d : Qor.Explain.delay_element) ->
         acc +. d.Qor.Explain.de_delay_fs)
      0. e.Qor.Explain.delay_elements
  in
  (* the decomposition is exact: elements sum to the reported delay *)
  Alcotest.(check bool) "sums to total within 1e-9" true
    (Float.abs (sum -. e.Qor.Explain.delay_total_fs)
     <= 1e-9 *. Float.max 1. (Float.abs e.Qor.Explain.delay_total_fs));
  check_float "total is the flow tau" e.Qor.Explain.tau_fs
    e.Qor.Explain.delay_total_fs;
  let shares =
    List.fold_left
      (fun acc (d : Qor.Explain.delay_element) -> acc +. d.Qor.Explain.de_share)
      0. e.Qor.Explain.delay_elements
  in
  check_float "shares sum to 1" 1. shares;
  Alcotest.(check bool) "every element charges capacitance" true
    (List.for_all
       (fun (d : Qor.Explain.delay_element) -> d.Qor.Explain.de_c_ff > 0.)
       e.Qor.Explain.delay_elements)

let test_explain_inl_sums () =
  let e = Lazy.force explain in
  let sum =
    List.fold_left
      (fun acc (i : Qor.Explain.inl_element) ->
         acc +. i.Qor.Explain.ie_total_lsb)
      0. e.Qor.Explain.inl_elements
  in
  Alcotest.(check bool) "sums to worst-code INL within 1e-9" true
    (Float.abs (sum -. e.Qor.Explain.inl_lsb) <= 1e-9);
  check_float "worst code magnitude is the flow max |INL|"
    e.Qor.Explain.max_inl_lsb
    (Float.abs e.Qor.Explain.inl_lsb);
  (* one element per capacitor (C_0 termination included) plus the
     top-plate-parasitic pseudo-element *)
  Alcotest.(check int) "element count" (e.Qor.Explain.bits + 2)
    (List.length e.Qor.Explain.inl_elements)

let test_explain_renderings () =
  let e = Lazy.force explain in
  let txt = Qor.Explain.text ~top:3 e in
  Alcotest.(check bool) "text names the style" true
    (contains txt "spiral");
  Alcotest.(check bool) "text truncates to top" true
    (contains txt "more elements");
  match Telemetry.Json.parse (Telemetry.Json.to_string (Qor.Explain.to_json e)) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "explain JSON does not reparse: %s" msg

(* --- histogram quantiles (ccgen profile p50/p95) --- *)

let test_quantile () =
  let dist =
    Telemetry.Metrics.Dist
      { bounds = [| 1.; 2.; 4. |];
        counts = [| 0; 10; 0; 0 |];
        sum = 15.;
        total = 10 }
  in
  (* all mass in (1, 2]: quantiles interpolate inside that bucket *)
  (match Telemetry.Metrics.quantile dist 0.5 with
   | Some v -> check_float "p50 interpolates" 1.5 v
   | None -> Alcotest.fail "p50 missing");
  (match Telemetry.Metrics.quantile dist 1.0 with
   | Some v -> check_float "p100 is the bucket edge" 2. v
   | None -> Alcotest.fail "p100 missing");
  (* overflow mass clamps to the last declared bound *)
  let overflow =
    Telemetry.Metrics.Dist
      { bounds = [| 1.; 2.; 4. |];
        counts = [| 0; 0; 0; 5 |];
        sum = 50.;
        total = 5 }
  in
  (match Telemetry.Metrics.quantile overflow 0.95 with
   | Some v -> check_float "overflow clamps" 4. v
   | None -> Alcotest.fail "overflow quantile missing");
  Alcotest.(check (option (float 0.))) "counters have no quantiles" None
    (Telemetry.Metrics.quantile (Telemetry.Metrics.Count 3) 0.5);
  let empty =
    Telemetry.Metrics.Dist
      { bounds = [| 1. |]; counts = [| 0; 0 |]; sum = 0.; total = 0 }
  in
  Alcotest.(check (option (float 0.))) "empty histogram" None
    (Telemetry.Metrics.quantile empty 0.5);
  match Telemetry.Metrics.quantile dist 1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "q outside [0, 1] must raise"

(* Nearest-rank pin at small n: one observation per bucket, bounds
   1/2/5.  rank(p99) = 2.97 lands 0.97 into the (2, 5] bucket, so the
   boundary interpolation must yield exactly 2 + 3 * 0.97 = 4.91 — a
   p99 that collapsed onto p95 (or the last bound) would miss it. *)
let test_quantile_p99_small_n () =
  let dist =
    Telemetry.Metrics.Dist
      { bounds = [| 1.; 2.; 5. |];
        counts = [| 1; 1; 1; 0 |];
        sum = 6.;
        total = 3 }
  in
  let q p =
    match Telemetry.Metrics.quantile dist p with
    | Some v -> v
    | None -> Alcotest.failf "p%g missing" (100. *. p)
  in
  check_float "p99 interpolates in the top bucket" 4.91 (q 0.99);
  check_float "p50 stays put" 1.5 (q 0.5);
  Alcotest.(check bool) "quantiles are monotone" true
    (q 0.5 <= q 0.95 && q 0.95 <= q 0.99)

(* --- memory fields (Telemetry.Memory sampling) --- *)

let sampled_record =
  lazy
    (Telemetry.Memory.with_enabled true (fun () ->
         Qor.Record.of_result (Ccdac.Flow.run ~tech ~bits:6 Ccplace.Style.Spiral)))

let test_memory_record_roundtrip () =
  let r = Lazy.force sampled_record in
  Alcotest.(check bool) "allocation sampled" true
    (r.Qor.Record.alloc_mb_total > 0.);
  Alcotest.(check bool) "per-stage allocation sampled" true
    (List.mem_assoc "place" r.Qor.Record.stage_alloc_mb
     && List.mem_assoc "analyse" r.Qor.Record.stage_alloc_mb);
  match Qor.Record.of_json (Qor.Record.to_json r) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok r' ->
    check_float "alloc total survives" r.Qor.Record.alloc_mb_total
      r'.Qor.Record.alloc_mb_total;
    check_float "peak heap survives" r.Qor.Record.peak_heap_mb
      r'.Qor.Record.peak_heap_mb;
    Alcotest.(check int) "major GCs survive" r.Qor.Record.major_collections
      r'.Qor.Record.major_collections;
    Alcotest.(check int) "stage table survives"
      (List.length r.Qor.Record.stage_alloc_mb)
      (List.length r'.Qor.Record.stage_alloc_mb)

(* A sampled baseline against an unsampled current (or vice versa) skips
   the memory metrics instead of failing them incomparable — old ledgers
   stay diffable after this schema addition. *)
let test_memory_compat_with_unsampled () =
  let r = Lazy.force sampled_record in
  let unsampled =
    { r with
      Qor.Record.stage_alloc_mb = [];
      alloc_mb_total = Float.nan;
      peak_heap_mb = Float.nan;
      major_collections = 0 }
  in
  let check_clean ~baseline ~current =
    let cmp = Qor.Compare.diff ~baseline:[ baseline ] ~current:[ current ] in
    match Qor.Compare.gate ~werror:true cmp with
    | Ok () -> ()
    | Error fs ->
      Alcotest.failf "mixed-sampling diff failed the gate: %s"
        (String.concat ", " (finding_ids fs))
  in
  check_clean ~baseline:r ~current:unsampled;
  check_clean ~baseline:unsampled ~current:r

(* the memscale acceptance scenario: a doubled allocation total is a
   Warning-severity regression pinned to qor/alloc_mb_total *)
let test_diff_seeded_alloc_regression () =
  let r = Lazy.force sampled_record in
  let base = { r with Qor.Record.alloc_mb_total = 40. } in
  let bloated = { base with Qor.Record.alloc_mb_total = 80. } in
  let cmp = Qor.Compare.diff ~baseline:[ base ] ~current:[ bloated ] in
  (* Warning severity: clean by default... *)
  (match Qor.Compare.gate cmp with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "alloc drift must not fail a default gate");
  (* ...flagged under --werror *)
  match Qor.Compare.gate ~werror:true cmp with
  | Ok () -> Alcotest.fail "a doubled allocation must fail under --werror"
  | Error fs ->
    Alcotest.(check (list string)) "pinned verdict id"
      [ "qor/alloc_mb_total" ] (finding_ids fs);
    Alcotest.check verdict "regressed" Qor.Policy.Regressed
      (List.hd fs).Qor.Compare.verdict

(* --- scaling/scheduler fields (Ccdac.Scaling / Par.Sched) --- *)

let scaling_record =
  lazy
    (Qor.Record.with_scaling
       ~stage_exponent:
         [ ("place", 1.1); ("route", 0.9); ("extract", 1.3); ("total", 1.2) ]
       ~sched_utilization:0.7 ~sched_queue_depth_max:5
       ~sched_caller_blocked_s:0.01
       (Lazy.force sampled_record))

let test_scaling_record_roundtrip () =
  let r = Lazy.force scaling_record in
  match Qor.Record.of_json (Qor.Record.to_json r) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok r' ->
    Alcotest.(check int) "exponent table survives"
      (List.length r.Qor.Record.stage_exponent)
      (List.length r'.Qor.Record.stage_exponent);
    check_float "extract exponent survives" 1.3
      (List.assoc "extract" r'.Qor.Record.stage_exponent);
    check_float "utilization survives" 0.7 r'.Qor.Record.sched_utilization;
    Alcotest.(check int) "queue depth survives" 5
      r'.Qor.Record.sched_queue_depth_max;
    check_float "caller stall survives" 0.01
      r'.Qor.Record.sched_caller_blocked_s

(* a pre-scaling record (no exponents, NaN sched figures) diffs cleanly
   against a decorated one: the scaling policies observe None and skip *)
let test_scaling_compat_with_unsampled () =
  let decorated = Lazy.force scaling_record in
  let plain = Lazy.force sampled_record in
  let check_clean ~baseline ~current =
    let cmp = Qor.Compare.diff ~baseline:[ baseline ] ~current:[ current ] in
    match Qor.Compare.gate ~werror:true cmp with
    | Ok () -> ()
    | Error fs ->
      Alcotest.failf "mixed scaling diff failed the gate: %s"
        (String.concat ", " (finding_ids fs))
  in
  check_clean ~baseline:plain ~current:decorated;
  check_clean ~baseline:decorated ~current:plain

(* the complexity-class sentinel: the WORST fitted exponent drifting past
   the absolute tolerance is a Warning pinned to qor/scaling_exponent *)
let test_diff_seeded_exponent_regression () =
  let base = Lazy.force scaling_record in
  let worse =
    { base with
      Qor.Record.stage_exponent =
        [ ("place", 1.1); ("route", 0.9); ("extract", 1.9); ("total", 1.2) ] }
  in
  let cmp = Qor.Compare.diff ~baseline:[ base ] ~current:[ worse ] in
  (match Qor.Compare.gate cmp with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "exponent drift must not fail a default gate");
  match Qor.Compare.gate ~werror:true cmp with
  | Ok () -> Alcotest.fail "a +0.6 worst exponent must fail under --werror"
  | Error fs ->
    Alcotest.(check (list string)) "pinned verdict id"
      [ "qor/scaling_exponent" ] (finding_ids fs);
    Alcotest.check verdict "regressed" Qor.Policy.Regressed
      (List.hd fs).Qor.Compare.verdict

let () =
  Alcotest.run "qor"
    [ ( "record",
        [ Alcotest.test_case "fields" `Quick test_record_fields;
          Alcotest.test_case "tech hash" `Quick test_tech_hash_distinguishes;
          Alcotest.test_case "json roundtrip" `Quick test_record_json_roundtrip;
          Alcotest.test_case "schema skew" `Quick test_record_schema_skew ] );
      ( "ledger",
        [ Alcotest.test_case "roundtrip + corruption" `Quick
            test_ledger_roundtrip;
          Alcotest.test_case "baseline roundtrip" `Quick
            test_baseline_roundtrip ] );
      ( "policy",
        [ Alcotest.test_case "relative thresholds" `Quick
            test_policy_rel_thresholds;
          Alcotest.test_case "nan guard" `Quick test_policy_nan_guard;
          Alcotest.test_case "repeat-aware floor" `Quick
            test_policy_repeat_floor;
          Alcotest.test_case "absolute" `Quick test_policy_abs;
          Alcotest.test_case "exact" `Quick test_policy_exact ] );
      ( "sentinel",
        [ Alcotest.test_case "identical is clean" `Quick
            test_diff_identical_is_clean;
          Alcotest.test_case "seeded regression" `Quick
            test_diff_seeded_regression;
          Alcotest.test_case "werror and severity" `Quick
            test_diff_werror_and_severity;
          Alcotest.test_case "coverage and skew" `Quick
            test_diff_coverage_and_skew;
          Alcotest.test_case "verdict json" `Quick test_diff_json_shape ] );
      ( "memory",
        [ Alcotest.test_case "sampled record roundtrip" `Quick
            test_memory_record_roundtrip;
          Alcotest.test_case "unsampled compat" `Quick
            test_memory_compat_with_unsampled;
          Alcotest.test_case "seeded alloc regression" `Quick
            test_diff_seeded_alloc_regression ] );
      ( "scaling",
        [ Alcotest.test_case "decorated record roundtrip" `Quick
            test_scaling_record_roundtrip;
          Alcotest.test_case "undecorated compat" `Quick
            test_scaling_compat_with_unsampled;
          Alcotest.test_case "seeded exponent regression" `Quick
            test_diff_seeded_exponent_regression ] );
      ( "explain",
        [ Alcotest.test_case "delay sums" `Quick test_explain_delay_sums;
          Alcotest.test_case "inl sums" `Quick test_explain_inl_sums;
          Alcotest.test_case "renderings" `Quick test_explain_renderings ] );
      ( "quantile",
        [ Alcotest.test_case "histogram quantiles" `Quick test_quantile;
          Alcotest.test_case "p99 at small n" `Quick test_quantile_p99_small_n
        ] ) ]
