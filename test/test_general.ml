(* Tests for arbitrary-ratio common-centroid placement. *)

let tech = Tech.Process.finfet_12nm

let check_valid p =
  match Ccgrid.Placement.validate p with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let segmented =
  (* 4+4 segmented DAC: binary LSBs 1,1,2,4,8 + 15 thermometer units of 16 *)
  Array.append [| 1; 1; 2; 4; 8 |] (Array.make 15 16)

let test_segmented_valid_both_styles () =
  List.iter
    (fun place ->
       let p = place ~counts:segmented in
       check_valid p;
       Alcotest.(check int) "capacitors" 20 (Ccgrid.Placement.num_caps p))
    [ Ccplace.General.interleaved; Ccplace.General.clustered ]

let test_even_ratio_caps_exactly_centred () =
  let p = Ccplace.General.clustered ~counts:segmented in
  Array.iteri
    (fun k n ->
       if n mod 2 = 0 then begin
         let err = Ccgrid.Placement.centroid_error tech p k in
         if err > 1e-9 then Alcotest.failf "C_%d centroid error %g" k err
       end)
    segmented

let test_odd_ratio_caps_near_centre () =
  let counts = [| 3; 5; 7 |] in
  List.iter
    (fun place ->
       let p = place ~counts in
       let pitch = Tech.Process.cell_pitch_x tech in
       Array.iteri
         (fun k _ ->
            let err = Ccgrid.Placement.centroid_error tech p k in
            if err > 2. *. pitch then
              Alcotest.failf "C_%d centroid error %g > 2 pitch" k err)
         counts)
    [ Ccplace.General.interleaved; Ccplace.General.clustered ]

let test_odd_total_gets_odd_grid () =
  let p = Ccplace.General.clustered ~counts:[| 3; 5; 7 |] in
  Alcotest.(check int) "odd rows" 1 (p.Ccgrid.Placement.rows mod 2);
  Alcotest.(check int) "odd cols" 1 (p.Ccgrid.Placement.cols mod 2);
  (* the centre cell hosts the leftover odd cell *)
  let center =
    Ccgrid.Cell.make ~row:(p.Ccgrid.Placement.rows / 2)
      ~col:(p.Ccgrid.Placement.cols / 2)
  in
  match Ccgrid.Placement.cap_at p center with
  | Some _ -> ()
  | None -> Alcotest.fail "centre cell must hold the leftover odd cell"

let test_binary_counts_match_dedicated_machinery () =
  (* a binary ratio list through the general path still yields a valid
     exactly-CC placement of the same size as the dedicated styles *)
  let counts = Ccgrid.Weights.unit_counts ~bits:6 in
  let p = Ccplace.General.clustered ~counts in
  check_valid p;
  Alcotest.(check int) "8x8" 8 p.Ccgrid.Placement.rows;
  Alcotest.(check (float 1e-9)) "exact CC" 0.
    (Ccgrid.Placement.max_centroid_error tech p)

let test_general_routes_and_extracts () =
  (* the router and extractor are ratio-agnostic: a segmented array goes
     through the whole flow *)
  let p = Ccplace.General.clustered ~counts:segmented in
  let layout = Ccroute.Layout.route tech p in
  (match Ccroute.Check.run layout with
   | [] -> ()
   | v :: _ ->
     Alcotest.failf "layout violation: %s"
       (Format.asprintf "%a" Ccroute.Check.pp_violation v));
  let par = Extract.Parasitics.extract layout in
  Alcotest.(check bool) "extraction sane" true
    (par.Extract.Parasitics.critical_elmore_fs > 0.
     && par.Extract.Parasitics.area > 0.)

let test_rejects_bad_counts () =
  Alcotest.(check bool) "empty" true
    (try ignore (Ccplace.General.interleaved ~counts:[||]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero count" true
    (try ignore (Ccplace.General.interleaved ~counts:[| 1; 0; 2 |]); false
     with Invalid_argument _ -> true)

let test_determinism () =
  let a = Ccplace.General.interleaved ~counts:segmented in
  let b = Ccplace.General.interleaved ~counts:segmented in
  Alcotest.(check bool) "same assign" true
    (a.Ccgrid.Placement.assign = b.Ccgrid.Placement.assign)

let test_clustered_msb_outside () =
  (* clustered order: small-index capacitors nearer the centre *)
  let counts = [| 2; 2; 4; 8; 16 |] in
  let p = Ccplace.General.clustered ~counts in
  let rows = p.Ccgrid.Placement.rows and cols = p.Ccgrid.Placement.cols in
  let avg_ring k =
    let cells = Ccgrid.Placement.cells_of p k in
    float_of_int
      (List.fold_left (fun a c -> a + Ccgrid.Cell.ring ~rows ~cols c) 0 cells)
    /. float_of_int (List.length cells)
  in
  Alcotest.(check bool) "C_0 inside C_4" true (avg_ring 0 < avg_ring 4)

let counts_arb =
  (* 2-6 capacitors, counts 1..12 *)
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map string_of_int l))
    QCheck.Gen.(list_size (int_range 2 6) (int_range 1 12))

let prop_general_always_valid =
  QCheck.Test.make ~name:"general placements valid for random ratios" ~count:80
    counts_arb
    (fun counts_list ->
       let counts = Array.of_list counts_list in
       List.for_all
         (fun place ->
            let p = place ~counts in
            Ccgrid.Placement.validate p = Ok ())
         [ Ccplace.General.interleaved; Ccplace.General.clustered ])

let prop_general_even_caps_centred =
  QCheck.Test.make ~name:"even-ratio caps exactly centred" ~count:60 counts_arb
    (fun counts_list ->
       let counts = Array.of_list counts_list in
       let p = Ccplace.General.interleaved ~counts in
       Array.for_all
         (fun ok -> ok)
         (Array.mapi
            (fun k n ->
               n mod 2 = 1 || Ccgrid.Placement.centroid_error tech p k < 1e-9)
            counts))

let () =
  Alcotest.run "general"
    [ ( "segmented",
        [ Alcotest.test_case "valid" `Quick test_segmented_valid_both_styles;
          Alcotest.test_case "even caps centred" `Quick test_even_ratio_caps_exactly_centred;
          Alcotest.test_case "odd caps near centre" `Quick test_odd_ratio_caps_near_centre;
          Alcotest.test_case "odd total" `Quick test_odd_total_gets_odd_grid;
          Alcotest.test_case "binary compat" `Quick test_binary_counts_match_dedicated_machinery;
          Alcotest.test_case "routes + extracts" `Quick test_general_routes_and_extracts;
          Alcotest.test_case "rejects bad counts" `Quick test_rejects_bad_counts;
          Alcotest.test_case "deterministic" `Quick test_determinism;
          Alcotest.test_case "clustered order" `Quick test_clustered_msb_outside ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_general_always_valid; prop_general_even_caps_centred ] ) ]
