(* Benchmark and reproduction harness.

   Regenerates every table and figure of the paper:

     dune exec bench/main.exe              all tables, figures, benchmarks
     dune exec bench/main.exe -- table1    one artefact
       (table1 table2 table3 fig2 fig3 fig4 fig5 fig6a fig6b ablation bench
        benchflow baseline memscale scaling serve csv)

   The file-writing artefacts (benchflow, baseline) take --out FILE to
   redirect their output; exactly one of them must be requested when
   --out is given.

   Table III is measured twice: once as wall-clock inside the flow (like
   the paper) and once as a Bechamel microbenchmark per (style, bits). *)

let tech = Tech.Process.finfet_12nm
let table_bits = [ 6; 7; 8; 9; 10 ]

(* one shared sweep for the metric tables *)
let rows =
  lazy (List.map (fun bits -> (bits, Ccdac.Sweep.row ~tech ~bits ())) table_bits)

let banner title =
  Printf.printf "\n================ %s ================\n" title

(* --- Tables I and II --- *)

let table1 () =
  banner "Table I";
  print_string (Ccdac.Report.table1 (Lazy.force rows))

let table2 () =
  banner "Table II";
  print_string (Ccdac.Report.table2 (Lazy.force rows))

(* --- Table III: wall-clock runtimes --- *)

let table3 () =
  banner "Table III (wall clock)";
  let runtimes =
    List.map
      (fun bits ->
         (* median of 5 runs to de-noise the very short times *)
         let median style =
           let times =
             List.init 5 (fun _ ->
                 snd (Ccdac.Flow.place_route ~tech ~bits style))
           in
           match List.sort Float.compare times with
           | _ :: _ :: m :: _ -> m
           | other -> List.fold_left Float.max 0. other
         in
         ( bits,
           median Ccplace.Style.Spiral,
           median (Ccplace.Style.block_default ~bits) ))
      table_bits
  in
  print_string (Ccdac.Report.table3 runtimes)

(* --- Bechamel microbenchmarks of the constructive P&R kernels --- *)

let bechamel_tests =
  let place_route style bits () =
    ignore (Ccdac.Flow.place_route ~tech ~bits style)
  in
  let mk style label =
    List.map
      (fun bits ->
         Bechamel.Test.make
           ~name:(Printf.sprintf "%s/%d-bit" label bits)
           (Bechamel.Staged.stage (place_route style bits)))
      table_bits
  in
  (* one grouped test per table workload *)
  [ Bechamel.Test.make_grouped ~name:"tableIII-spiral"
      (mk Ccplace.Style.Spiral "spiral");
    Bechamel.Test.make_grouped ~name:"tableIII-bc"
      (List.map
         (fun bits ->
            Bechamel.Test.make
              ~name:(Printf.sprintf "bc/%d-bit" bits)
              (Bechamel.Staged.stage
                 (place_route (Ccplace.Style.block_default ~bits) bits)))
         table_bits);
    Bechamel.Test.make_grouped ~name:"tableI-baselines"
      (mk Ccplace.Style.Chessboard "chessboard"
       @ mk Ccplace.Style.Rowwise "rowwise") ]

(* --- BENCH_flow.json: machine-readable flow benchmark (docs/BENCH.md) --- *)

(* shared by the file-writing artefacts; set by --out *)
let out_file : string option ref = ref None
let out_path default = Option.value ~default !out_file

let write_failed path msg =
  Printf.eprintf "bench: cannot write %s: %s\n" path msg;
  exit 1

let median_by f runs =
  let sorted = List.sort (fun a b -> Float.compare (f a) (f b)) runs in
  List.nth sorted (List.length sorted / 2)

let bench_flow_styles bits =
  [ Ccplace.Style.Rowwise; Ccplace.Style.Chessboard; Ccplace.Style.Spiral;
    Ccplace.Style.block_default ~bits ]

let bench_flow_run bits style =
  let runs = List.init 5 (fun _ -> Ccdac.Flow.run ~tech ~bits style) in
  let r = median_by (fun r -> r.Ccdac.Flow.elapsed_place_route_s) runs in
  let open Telemetry.Json in
  Obj
    [ ("style", Str (Ccplace.Style.name style));
      ("bits", Num (float_of_int bits));
      ("place_route_s", Num r.Ccdac.Flow.elapsed_place_route_s);
      ( "lvs_s",
        Num
          (Option.value ~default:0.
             (Telemetry.Summary.stage_seconds r.Ccdac.Flow.telemetry "lvs")) );
      ("f3db_mhz", Num r.Ccdac.Flow.f3db_mhz);
      ("max_inl_lsb", Num r.Ccdac.Flow.max_inl);
      ("max_dnl_lsb", Num r.Ccdac.Flow.max_dnl);
      ( "via_cuts",
        Num
          (float_of_int
             r.Ccdac.Flow.parasitics.Extract.Parasitics.total_via_cuts) ) ]

(* Null-sink overhead: place+route with telemetry idle (the default fast
   path) vs the same work inside a recording scope.  The ratio must stay
   within run-to-run noise — this is the zero-overhead-default evidence. *)
let bench_flow_overhead () =
  let bits = 8 and reps = 5 in
  let elapsed () =
    snd (Ccdac.Flow.place_route ~tech ~bits Ccplace.Style.Spiral)
  in
  let median l = List.nth (List.sort Float.compare l) (List.length l / 2) in
  let idle = median (List.init reps (fun _ -> elapsed ())) in
  let recorded =
    median
      (List.init reps (fun _ ->
           fst (Telemetry.Summary.record ~name:"bench" elapsed)))
  in
  let open Telemetry.Json in
  Obj
    [ ("bits", Num (float_of_int bits));
      ("idle_s", Num idle);
      ("recorded_s", Num recorded);
      ("ratio", Num (recorded /. idle)) ]

(* Memory probe for BENCH_flow.json: one 8-bit spiral flow with GC
   sampling on (docs/TELEMETRY.md).  Single run, not a median —
   allocation totals are near-deterministic, unlike wall clocks. *)
let bench_flow_memory () =
  let bits = 8 in
  let r =
    Telemetry.Memory.with_enabled true (fun () ->
        Ccdac.Flow.run ~tech ~bits Ccplace.Style.Spiral)
  in
  let t = r.Ccdac.Flow.telemetry in
  let open Telemetry.Json in
  match Telemetry.Summary.total_memory t with
  | None -> Null
  | Some d ->
    Obj
      [ ("style", Str "spiral");
        ("bits", Num (float_of_int bits));
        ( "stages_alloc_mb",
          Obj
            (List.map
               (fun (n, d) -> (n, Num (Telemetry.Memory.allocated_mb d)))
               (Telemetry.Summary.memory_stages t)) );
        ("alloc_mb_total", Num (Telemetry.Memory.allocated_mb d));
        ("peak_heap_mb", Num (Telemetry.Memory.peak_heap_mb d));
        ( "major_collections",
          Num (float_of_int d.Telemetry.Memory.major_collections) ) ]

(* Measured Monte-Carlo speedup at the session's job count (CCDAC_JOBS;
   ~1.0 when serial).  One probe per document — the value is a property
   of the machine and the pool, not of a (style, bits) cell. *)
let bench_par_speedup () =
  let p = Ccdac.Parbench.mc_speedup ~tech ~jobs:(Par.Jobs.resolve None) () in
  let open Telemetry.Json in
  ( p.Ccdac.Parbench.speedup,
    Obj
      [ ("jobs", Num (float_of_int p.Ccdac.Parbench.jobs));
        ("trials", Num (float_of_int p.Ccdac.Parbench.trials));
        ("serial_s", Num p.Ccdac.Parbench.serial_s);
        ("parallel_s", Num p.Ccdac.Parbench.parallel_s);
        ("speedup", Num p.Ccdac.Parbench.speedup) ] )

let benchflow () =
  let path = out_path "BENCH_flow.json" in
  banner path;
  let par_speedup, parallel = bench_par_speedup () in
  let runs =
    List.concat_map
      (fun bits ->
         List.map
           (fun style ->
              match bench_flow_run bits style with
              | Telemetry.Json.Obj fields ->
                Telemetry.Json.Obj
                  (fields @ [ ("par_speedup", Telemetry.Json.Num par_speedup) ])
              | other -> other)
           (bench_flow_styles bits))
      table_bits
  in
  let doc =
    let open Telemetry.Json in
    Obj
      [ ("version", Num 1.);
        ("tech", Str tech.Tech.Process.name);
        ("repeat", Num 5.);
        ("parallel", parallel);
        ("runs", Arr runs);
        ("null_sink_overhead", bench_flow_overhead ());
        ("memory", bench_flow_memory ()) ]
  in
  (try
     let oc = open_out path in
     output_string oc (Telemetry.Json.to_string doc);
     output_char oc '\n';
     close_out oc
   with Sys_error e -> write_failed path e);
  Printf.printf "wrote %s\n" path

(* --- BENCH_baseline.json: the QoR sentinel's committed reference.
   Same (style, bits) matrix and repeat discipline as `ccgen record`'s
   defaults, so `ccgen diff --baseline BENCH_baseline.json` compares
   like against like. *)

let baseline () =
  let path = out_path "BENCH_baseline.json" in
  banner path;
  let bits_list = [ 6; 8 ] and repeat = 3 in
  (* GC sampling on, so the committed baseline carries the memory fields
     the qor/alloc_mb_total, qor/peak_heap_mb and qor/major_collections
     policies judge (records diffed without --mem skip those metrics) *)
  let records =
    Telemetry.Memory.with_enabled true @@ fun () ->
    List.concat_map
      (fun bits ->
         List.map
           (fun style ->
              let runs =
                List.init repeat (fun _ -> Ccdac.Flow.run ~tech ~bits style)
              in
              Qor.Record.of_result ~repeat
                (median_by (fun r -> r.Ccdac.Flow.elapsed_place_route_s) runs))
           (bench_flow_styles bits))
      bits_list
  in
  (try Qor.Baseline.save ~path records
   with Sys_error e -> write_failed path e);
  Printf.printf "wrote %s (%d records)\n" path (List.length records)

(* --- memscale: the ROADMAP item-2 scaling probe.  Run the full flow at
   10 and 12 bits (1k vs 4k unit cells — a 4x cell-count step) with GC
   sampling on, append both QoR records to the ledger, and report which
   stages' allocation grows faster than the cell count (docs/TELEMETRY.md
   documents the findings: those stages are the refactor targets). *)

let memscale_bits = (10, 12)

let memscale () =
  let path = out_path "qor_ledger.jsonl" in
  let lo, hi = memscale_bits in
  banner (Printf.sprintf "memscale: spiral flow at %d vs %d bits" lo hi);
  let probe bits =
    Telemetry.Memory.with_enabled true (fun () ->
        Qor.Record.of_result (Ccdac.Flow.run ~tech ~bits Ccplace.Style.Spiral))
  in
  let r_lo = probe lo and r_hi = probe hi in
  (try
     Qor.Ledger.append ~path r_lo;
     Qor.Ledger.append ~path r_hi
   with Sys_error e -> write_failed path e);
  (* cell count grows 2^(hi-lo): the super-linearity threshold *)
  let cells_ratio = float_of_int (1 lsl (hi - lo)) in
  Printf.printf "%-10s %12s %12s %8s %12s %12s %8s\n" "stage"
    (Printf.sprintf "b%d MB" lo)
    (Printf.sprintf "b%d MB" hi)
    "xMB"
    (Printf.sprintf "b%d ms" lo)
    (Printf.sprintf "b%d ms" hi)
    "xT";
  List.iter
    (fun (stage, mb_lo) ->
       let mb_hi =
         Option.value ~default:Float.nan
           (List.assoc_opt stage r_hi.Qor.Record.stage_alloc_mb)
       in
       let s_lo =
         Option.value ~default:Float.nan
           (List.assoc_opt stage r_lo.Qor.Record.stage_s)
       in
       let s_hi =
         Option.value ~default:Float.nan
           (List.assoc_opt stage r_hi.Qor.Record.stage_s)
       in
       let ratio = mb_hi /. Float.max mb_lo 1e-9 in
       Printf.printf "%-10s %12.2f %12.2f %7.1fx %12.2f %12.2f %7.1fx%s\n"
         stage mb_lo mb_hi ratio (1e3 *. s_lo) (1e3 *. s_hi)
         (s_hi /. Float.max s_lo 1e-9)
         (if ratio > cells_ratio then "  <- super-linear" else ""))
    r_lo.Qor.Record.stage_alloc_mb;
  Printf.printf
    "total: %.2f -> %.2f MB (%.1fx for a %.0fx cell count); peak heap %.2f \
     -> %.2f MB; majors %d -> %d\n"
    r_lo.Qor.Record.alloc_mb_total r_hi.Qor.Record.alloc_mb_total
    (r_hi.Qor.Record.alloc_mb_total
     /. Float.max r_lo.Qor.Record.alloc_mb_total 1e-9)
    cells_ratio r_lo.Qor.Record.peak_heap_mb r_hi.Qor.Record.peak_heap_mb
    r_lo.Qor.Record.major_collections r_hi.Qor.Record.major_collections;
  Printf.printf "appended %s and %s to %s\n" r_lo.Qor.Record.label
    r_hi.Qor.Record.label path

(* --- scaling: the cross-bit-width growth-exponent probe (Ccdac.Scaling;
   docs/BENCH.md).  Three rungs of the full flow + Monte-Carlo with
   scheduler recording on, fitted per-stage log-log exponents, and one
   QoR ledger row carrying the exponents and the pool figures.  The row
   gets a "scaling"-prefixed label so it never shadows the plain flow
   records in latest-by-label comparisons. *)

let scaling_bits = [ 6; 8; 10 ]

let scaling () =
  let path = out_path "qor_ledger.jsonl" in
  banner
    (Printf.sprintf "scaling: spiral flow ladder at %s bits"
       (String.concat "/" (List.map string_of_int scaling_bits)));
  let jobs = max 2 (Par.Jobs.default ()) in
  (* the flow stages read the ambient jobs default; restore the
     environment-driven resolution afterwards so later artefacts keep
     their usual (serial unless CCDAC_JOBS says otherwise) timings *)
  Par.Jobs.set_default jobs;
  let t =
    Fun.protect ~finally:Par.Jobs.clear_default @@ fun () ->
    Par.Sched.with_enabled true @@ fun () ->
    Ccdac.Scaling.run ~tech ~trials:60 ~seed:1 ~jobs scaling_bits
  in
  Format.printf "%a@." Ccdac.Scaling.pp t;
  let sched = Ccdac.Scaling.sched_totals t in
  let record =
    match List.rev t.Ccdac.Scaling.points with
    | [] -> assert false (* run rejects an empty ladder *)
    | top :: _ ->
      let r =
        Qor.Record.with_scaling
          ~stage_exponent:(Ccdac.Scaling.exponents t)
          ~sched_utilization:sched.Par.Sched.mean_utilization
          ~sched_queue_depth_max:sched.Par.Sched.max_queue_depth
          ~sched_caller_blocked_s:sched.Par.Sched.caller_blocked_s
          (Qor.Record.of_result ~jobs top.Ccdac.Scaling.p_result)
      in
      { r with Qor.Record.label = "scaling " ^ r.Qor.Record.label }
  in
  (try Qor.Ledger.append ~path record
   with Sys_error e -> write_failed path e);
  Printf.printf "appended %s (%d fitted stages, %d rungs) to %s\n"
    record.Qor.Record.label
    (List.length record.Qor.Record.stage_exponent)
    (List.length t.Ccdac.Scaling.points)
    path

let bench () =
  banner "Bechamel: constructive P&R kernels (ns/run)";
  let ols =
    Bechamel.Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Bechamel.Measure.run |]
  in
  let instances = Bechamel.Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Bechamel.Benchmark.cfg ~limit:200
      ~quota:(Bechamel.Time.second 0.25) ~kde:None ()
  in
  List.iter
    (fun test ->
       let raw = Bechamel.Benchmark.all cfg instances test in
       let results =
         Bechamel.Analyze.all ols Bechamel.Toolkit.Instance.monotonic_clock raw
       in
       let sorted =
         List.sort compare
           (Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [])
       in
       List.iter
         (fun (name, ols_result) ->
            let estimate =
              match Bechamel.Analyze.OLS.estimates ols_result with
              | Some (e :: _) -> e
              | Some [] | None -> Float.nan
            in
            Printf.printf "  %-28s %12.0f ns/run  (%6.3f ms)\n" name estimate
              (estimate /. 1e6))
         sorted)
    bechamel_tests;
  benchflow ()

(* --- figures --- *)

let show title p =
  Printf.printf "\n--- %s ---\n" title;
  print_string (Ccgrid.Render.ascii p);
  Printf.printf "legend: %s\n" (Ccgrid.Render.legend p)

let fig2 () =
  banner "Fig. 2: 6-bit placements";
  show "spiral" (Ccplace.Spiral.place ~bits:6);
  show "chessboard [7]" (Ccplace.Chessboard.place ~bits:6);
  show "block chessboard (coarser, g=4)"
    (Ccplace.Block_chess.place ~bits:6 ~core_bits:4 ~granularity:4 ());
  show "block chessboard (finer, g=1)"
    (Ccplace.Block_chess.place ~bits:6 ~core_bits:4 ~granularity:1 ())

let fig3 () =
  banner "Fig. 3: routing structure of the 6-bit spiral";
  let p = Ccplace.Spiral.place ~bits:6 in
  let layout =
    Ccroute.Layout.route tech
      ~p_of_cap:(Ccroute.Layout.msb_parallel ~bits:6 ~p:2) p
  in
  Array.iter
    (fun (net : Ccroute.Layout.capnet) ->
       Printf.printf
         "C_%d: %d group(s), %d trunk(s)%s, driver tap at x=%.2f um\n"
         net.Ccroute.Layout.cn_cap
         (List.length net.Ccroute.Layout.cn_groups)
         (List.length net.Ccroute.Layout.cn_trunks)
         (match net.Ccroute.Layout.cn_bridge_y with
          | Some _ -> " + bridge"
          | None -> "")
         net.Ccroute.Layout.cn_driver_x)
    layout.Ccroute.Layout.nets;
  let par = Extract.Parasitics.extract layout in
  Printf.printf "total: %d via cuts, %.0f um of routing\n"
    par.Extract.Parasitics.total_via_cuts
    par.Extract.Parasitics.total_wirelength

let fig4 () =
  banner "Fig. 4: 8-bit block chessboards at several granularities";
  List.iter
    (fun g ->
       show
         (Printf.sprintf "g = %d" g)
         (Ccplace.Block_chess.place ~bits:8 ~granularity:g ()))
    [ 1; 2; 4; 8 ]

let fig5 () =
  banner "Fig. 5: 8-bit routing, [7] vs spiral";
  let report name style =
    let p = Ccplace.Style.place ~bits:8 style in
    let layout = Ccroute.Layout.route tech p in
    let plan = layout.Ccroute.Layout.plan in
    let max_tracks =
      Array.fold_left Int.max 0 plan.Ccroute.Plan.tracks_per_channel
    in
    let par = Extract.Parasitics.extract layout in
    Printf.printf
      "%-14s: max %d tracks/channel, %d total tracks, L = %.0f um, C^BB = %.2f fF\n"
      name max_tracks
      (Ccroute.Plan.total_tracks plan)
      par.Extract.Parasitics.total_wirelength
      par.Extract.Parasitics.total_coupling_cap
  in
  report "chessboard [7]" Ccplace.Style.Chessboard;
  report "spiral" Ccplace.Style.Spiral

let fig6a () =
  banner "Fig. 6a: parallel-wire improvement (spiral)";
  let series =
    List.map
      (fun bits ->
         ( bits,
           Ccdac.Sweep.parallel_sweep ~tech ~bits ~style:Ccplace.Style.Spiral
             [ 1; 2; 3; 4; 5; 6 ] ))
      table_bits
  in
  print_string (Ccdac.Report.fig6a series)

let fig6b () =
  banner "Fig. 6b: f3dB of all methods normalised to spiral";
  print_string (Ccdac.Report.fig6b (Lazy.force rows))

(* --- ablations (DESIGN.md section 5) --- *)

let ablation () =
  banner "Ablations";
  (* 1. FinFET vs bulk: absolute f3dB of the chessboard *)
  let chess tech =
    (Ccdac.Flow.run ~tech ~bits:8 Ccplace.Style.Chessboard).Ccdac.Flow.f3db_mhz
  in
  Printf.printf
    "chessboard 8-bit f3dB: bulk %.0f MHz vs FinFET-class %.0f MHz\n"
    (chess Tech.Process.bulk_legacy)
    (chess Tech.Process.finfet_12nm);
  (* 2. BC core size at fixed granularity *)
  Printf.printf "\nBC core-size sweep (8-bit, g=2): core -> f3dB MHz / DNL LSB\n";
  List.iter
    (fun core_bits ->
       let r =
         Ccdac.Flow.run ~tech ~bits:8
           (Ccplace.Style.Block_chess { core_bits; granularity = 2 })
       in
       Printf.printf "  core=%d: %8.1f MHz  %.3f LSB\n" core_bits
         r.Ccdac.Flow.f3db_mhz r.Ccdac.Flow.max_dnl)
    [ 2; 4; 6; 7 ];
  (* 3. group formation mode: connected components vs straight runs *)
  Printf.printf "\ngroup mode (8-bit spiral): connected vs straight runs\n";
  let p = Ccplace.Spiral.place ~bits:8 in
  List.iter
    (fun (name, mode) ->
       let groups = Ccroute.Group.of_placement ~mode p in
       Printf.printf "  %-14s %d groups\n" name (List.length groups))
    [ ("connected", Ccroute.Group.Connected);
      ("straight-runs", Ccroute.Group.Straight_runs) ];
  (* 4. gradient angle sweep: worst-case systematic INL *)
  Printf.printf "\ngradient-angle sweep (8-bit spiral, mismatch off):\n";
  let grad_tech = { tech with Tech.Process.mismatch_coeff = 0. } in
  let theta, worst =
    Capmodel.Gradient.worst_theta ~samples:36 ~objective:(fun theta ->
        (Dacmodel.Nonlinearity.analyze grad_tech ~theta p)
          .Dacmodel.Nonlinearity.max_abs_inl)
  in
  Printf.printf "  worst theta = %.0f deg, systematic |INL| = %.2e LSB\n"
    (theta *. 180. /. Float.pi)
    worst;
  (* 5. analytical 3-sigma model vs Monte-Carlo yield integrals *)
  Printf.printf
    "\n3-sigma model vs Monte-Carlo (8-bit, 500 trials): DNL LSB\n";
  List.iter
    (fun style ->
       let r = Ccdac.Flow.run ~tech ~bits:8 style in
       let mc =
         Dacmodel.Montecarlo.run tech ~trials:500
           ~top_parasitic:r.Ccdac.Flow.parasitics.Extract.Parasitics.total_top_cap
           r.Ccdac.Flow.placement
       in
       Printf.printf "  %-12s 3sigma %.3f | MC mean %.3f p95 %.3f max %.3f\n"
         (Ccplace.Style.label style) r.Ccdac.Flow.max_dnl
         mc.Dacmodel.Montecarlo.mean_dnl mc.Dacmodel.Montecarlo.p95_dnl
         mc.Dacmodel.Montecarlo.max_dnl)
    [ Ccplace.Style.Spiral; Ccplace.Style.Chessboard ];
  (* 6. daisy-chain router: recovering the paper's prior-work magnitudes *)
  Printf.printf
    "\nchained routing ([7]-era serial structure) vs the paper's trunk router:\n";
  List.iter
    (fun bits ->
       let chess = Ccplace.Chessboard.place ~bits in
       let chain = Ccroute.Chain.analyze tech chess in
       let trunk = Ccdac.Flow.run ~tech ~bits Ccplace.Style.Chessboard in
       let spiral = Ccdac.Flow.run ~tech ~bits Ccplace.Style.Spiral in
       Printf.printf
         "  %2d-bit [7]: chained %8.1f MHz | trunk-routed %8.1f MHz | S/chained = %.0fx\n"
         bits
         (Ccroute.Chain.f3db_mhz chain ~bits)
         trunk.Ccdac.Flow.f3db_mhz
         (spiral.Ccdac.Flow.f3db_mhz /. Ccroute.Chain.f3db_mhz chain ~bits))
    [ 6; 8; 10 ];
  (* 7. mirror-pair swap refinement: the continuous tradeoff dial *)
  Printf.printf "\nswap-refined spiral (8-bit): budget -> f3dB MHz / DNL LSB\n";
  let spiral8 = Ccplace.Spiral.place ~bits:8 in
  List.iter
    (fun budget ->
       let placement =
         if budget = 0 then spiral8
         else fst (Ccplace.Refine.refine tech ~max_passes:50 ~max_swaps:budget spiral8)
       in
       let layout =
         Ccroute.Layout.route tech
           ~p_of_cap:(Ccroute.Layout.msb_parallel ~bits:8 ~p:2) placement
       in
       let par = Extract.Parasitics.extract layout in
       let nl =
         Dacmodel.Nonlinearity.analyze tech
           ~top_parasitic:par.Extract.Parasitics.total_top_cap placement
       in
       Printf.printf "  %4d swaps: %8.1f MHz  %.3f LSB\n" budget
         (Dacmodel.Speed.f3db_mhz ~bits:8
            ~tau_fs:par.Extract.Parasitics.critical_elmore_fs)
         nl.Dacmodel.Nonlinearity.max_abs_dnl)
    [ 0; 20; 100; 1000 ];
  (* 8. curvature: CC symmetry cancels linear gradients, not bowls *)
  Printf.printf
    "\nquadratic (bowl) profile, mismatch off: systematic |INL| in LSB\n";
  let no_random = { tech with Tech.Process.mismatch_coeff = 0. } in
  let bowl =
    Capmodel.Profile.quadratic ~ppm_per_um2:200. ~center:Geom.Point.origin
  in
  List.iter
    (fun style ->
       let p = Ccplace.Style.place ~bits:8 style in
       let linear = (Dacmodel.Nonlinearity.analyze no_random p).Dacmodel.Nonlinearity.max_abs_inl in
       let curved =
         (Dacmodel.Nonlinearity.analyze no_random ~profile:bowl p)
           .Dacmodel.Nonlinearity.max_abs_inl
       in
       Printf.printf "  %-5s linear %.2e | bowl %.4f\n"
         (Ccplace.Style.label style) linear curved)
    [ Ccplace.Style.Spiral; Ccplace.Style.Chessboard ];
  (* 9. Elmore vs backward-Euler transient on the spiral MSB net *)
  Printf.printf "\nElmore vs transient settling (6-bit spiral MSB):\n";
  let p6 = Ccplace.Spiral.place ~bits:6 in
  let layout6 = Ccroute.Layout.route tech p6 in
  let net = Extract.Netbuild.build layout6 ~cap:6 in
  let elmore = Extract.Netbuild.worst_elmore_fs net in
  let tolerance = 1. /. float_of_int (4 * (1 lsl 6)) in
  let transient =
    Rcnet.Transient.slowest_settling_fs net.Extract.Netbuild.tree
      ~root:net.Extract.Netbuild.root ~vstep:1. ~tolerance
      ~over:(List.map snd net.Extract.Netbuild.cell_nodes)
  in
  Printf.printf
    "  Eq. 15 from Elmore: %.0f fs; backward-Euler to 1/4 LSB: %.0f fs (ratio %.2f)\n"
    (Dacmodel.Speed.settling_time_fs ~bits:6 ~tau_fs:elmore)
    transient
    (transient /. Dacmodel.Speed.settling_time_fs ~bits:6 ~tau_fs:elmore)

(* --- serve: the placement-service load bench (docs/SERVE.md).  Spawn
   the daemon as a child process (re-exec ourselves with the
   "serve-daemon" sentinel argv — forking an OCaml 5 runtime that has
   already spawned domains is not safe), replay a Zipf-skewed mix of
   10k requests through Serve.Loadgen, write BENCH_serve.json, and
   append one QoR ledger row decorated with throughput/latency/hit-rate
   so the regression sentinel guards server performance too.  The row
   gets a "serve"-prefixed label so it never shadows plain flow
   records. *)

let serve_requests = 10_000

let serve_socket () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "ccgen-serve-%d.sock" (Unix.getpid ()))

(* child mode: [bench serve-daemon SOCKET] — serve until SIGTERM *)
let serve_daemon socket =
  let engine = Serve.Engine.create () in
  let stats =
    Serve.Daemon.run ~engine (Serve.Daemon.Unix_path socket)
  in
  Serve.Engine.shutdown engine;
  exit (if stats.Serve.Daemon.drained then 0 else 1)

let spawn_serve_daemon socket =
  let exe = Sys.executable_name in
  let pid =
    Unix.create_process exe
      [| exe; "serve-daemon"; socket |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  (* the daemon binds before it can answer; wait for the socket file *)
  let deadline = 200 in
  let rec wait n =
    if Sys.file_exists socket then ()
    else if n >= deadline then begin
      Unix.kill pid Sys.sigkill;
      Printf.eprintf "bench: serve daemon did not come up\n";
      exit 1
    end
    else begin
      Unix.sleepf 0.05;
      wait (n + 1)
    end
  in
  wait 0;
  pid

let serve () =
  let path = out_path "BENCH_serve.json" in
  banner
    (Printf.sprintf "serve: %d Zipf-skewed requests against the daemon"
       serve_requests);
  let socket = serve_socket () in
  let pid = spawn_serve_daemon socket in
  let result =
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid))
      (fun () ->
         Serve.Loadgen.run ~seed:1 ~requests:serve_requests
           (Serve.Daemon.Unix_path socket))
  in
  Printf.printf
    "%d requests in %.2f s: %.0f req/s, p50 %.3f ms, p95 %.3f ms\n"
    result.Serve.Loadgen.requests result.Serve.Loadgen.elapsed_s
    result.Serve.Loadgen.throughput_rps result.Serve.Loadgen.p50_ms
    result.Serve.Loadgen.p95_ms;
  Printf.printf "ok %d, errors %d, busy %d, cache hit-rate %.1f%%%s\n"
    result.Serve.Loadgen.ok result.Serve.Loadgen.errors
    result.Serve.Loadgen.busy
    (100. *. result.Serve.Loadgen.hit_rate)
    (if result.Serve.Loadgen.hit_rate < 0.5 then
       "  <- below the 50% acceptance bar"
     else "");
  let doc =
    let open Telemetry.Json in
    Obj
      [ ("version", Num 1.);
        ("requests", Num (float_of_int result.Serve.Loadgen.requests));
        ("ok", Num (float_of_int result.Serve.Loadgen.ok));
        ("errors", Num (float_of_int result.Serve.Loadgen.errors));
        ("busy", Num (float_of_int result.Serve.Loadgen.busy));
        ("cache_hits", Num (float_of_int result.Serve.Loadgen.cache_hits));
        ("hit_rate", Num result.Serve.Loadgen.hit_rate);
        ("throughput_rps", Num result.Serve.Loadgen.throughput_rps);
        ("p50_ms", Num result.Serve.Loadgen.p50_ms);
        ("p95_ms", Num result.Serve.Loadgen.p95_ms);
        ("elapsed_s", Num result.Serve.Loadgen.elapsed_s) ]
  in
  (try
     let oc = open_out path in
     output_string oc (Telemetry.Json.to_string doc);
     output_char oc '\n';
     close_out oc
   with Sys_error e -> write_failed path e);
  Printf.printf "wrote %s\n" path;
  let record =
    let r =
      Qor.Record.with_serve ~requests:result.Serve.Loadgen.requests
        ~throughput_rps:result.Serve.Loadgen.throughput_rps
        ~p50_ms:result.Serve.Loadgen.p50_ms
        ~p95_ms:result.Serve.Loadgen.p95_ms
        ~hit_rate:result.Serve.Loadgen.hit_rate
        (Qor.Record.of_result (Ccdac.Flow.run ~tech ~bits:8 Ccplace.Style.Spiral))
    in
    { r with Qor.Record.label = "serve " ^ r.Qor.Record.label }
  in
  let ledger = "qor_ledger.jsonl" in
  (try Qor.Ledger.append ~path:ledger record
   with Sys_error e -> write_failed ledger e);
  Printf.printf "appended %s to %s\n" record.Qor.Record.label ledger

let csv () =
  banner "CSV export";
  Ccdac.Csv.write ~path:"results.csv" (Ccdac.Csv.metrics_rows (Lazy.force rows));
  let series =
    List.map
      (fun bits ->
         ( bits,
           Ccdac.Sweep.parallel_sweep ~tech ~bits ~style:Ccplace.Style.Spiral
             [ 1; 2; 3; 4; 5; 6 ] ))
      table_bits
  in
  Ccdac.Csv.write ~path:"fig6a.csv" (Ccdac.Csv.parallel_sweep_csv series);
  print_endline "wrote results.csv and fig6a.csv"

let artefacts =
  [ ("table1", table1); ("table2", table2); ("table3", table3);
    ("fig2", fig2); ("fig3", fig3); ("fig4", fig4); ("fig5", fig5);
    ("fig6a", fig6a); ("fig6b", fig6b); ("ablation", ablation);
    ("bench", bench); ("benchflow", benchflow); ("baseline", baseline);
    ("memscale", memscale); ("scaling", scaling); ("serve", serve);
    ("csv", csv) ]

let out_writers = [ "benchflow"; "baseline"; "memscale"; "scaling"; "serve" ]

let () =
  (* child re-exec sentinel (see the serve artefact): not an artefact
     name, so it is handled before ordinary argument parsing *)
  (match Array.to_list Sys.argv with
   | _ :: "serve-daemon" :: socket :: _ -> serve_daemon socket
   | _ -> ());
  let rec parse names = function
    | [] -> List.rev names
    | [ "--out" ] ->
      Printf.eprintf "bench: --out needs a FILE argument\n";
      exit 2
    | "--out" :: path :: rest ->
      if !out_file <> None then begin
        Printf.eprintf "bench: --out given twice\n";
        exit 2
      end;
      out_file := Some path;
      parse names rest
    | name :: rest -> parse (name :: names) rest
  in
  let requested =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst artefacts
    | names -> names
  in
  if !out_file <> None then begin
    let writers = List.filter (fun n -> List.mem n out_writers) requested in
    match writers with
    | [ _ ] -> ()
    | _ ->
      Printf.eprintf
        "bench: --out needs exactly one file-writing artefact (%s); %d \
         requested\n"
        (String.concat " or " out_writers)
        (List.length writers);
      exit 2
  end;
  List.iter
    (fun name ->
       match List.assoc_opt name artefacts with
       | Some f -> f ()
       | None ->
         Printf.eprintf "unknown artefact %S; available: %s\n" name
           (String.concat " " (List.map fst artefacts));
         exit 2)
    requested
