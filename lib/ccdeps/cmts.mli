(** Discovery and loading of the [.cmt] Typedtrees dune leaves under
    [_build/default/lib/], summarized into the whole-program universe
    the typed analyses consume. *)

type universe = {
  libs : string list;  (** [lib/] dir names with a dune file, sorted *)
  mods : Summary.moddef list;
  lib_of_module : string -> string option;
      (** canonical head module (["Ccplace"]) to lib dir (["ccplace"]) *)
  cmt_count : int;  (** cmt files seen, loadable or not *)
  errors : Srclint.Diagnostic.t list;  (** [meta/cmt-error] findings *)
}

(** [available ~root]: at least one [.cmt] exists under
    [_build/default/lib] — the signal that the typed pass can run. *)
val available : root:string -> bool

val load : root:string -> universe
