(* The cross-module value-level call graph over every summarized def.

   Nodes are canonical def names ("Ccplace.Spiral.place"); edges are the
   references each def body makes, with bare (module-sibling) names
   resolved against the enclosing scope chain.  Reachability runs as a
   reverse-edge fixpoint with parent pointers, so every verdict can name
   the concrete call chain that justifies it. *)

type t = {
  defs : (string, Summary.def) Hashtbl.t;
  toplevel : (string, unit) Hashtbl.t;  (* scope-qualified value names *)
}

let build (mods : Summary.moddef list) =
  let defs = Hashtbl.create 512 in
  let toplevel = Hashtbl.create 512 in
  List.iter
    (fun m ->
       Summary.SS.iter
         (fun n -> Hashtbl.replace toplevel n ())
         m.Summary.m_toplevel;
       List.iter
         (fun d ->
            (* First binding wins: duplicate names (shadowed top-level
               bindings) keep the earliest def, matching lookup order
               being irrelevant for reachability. *)
            if not (Hashtbl.mem defs d.Summary.d_name) then
              Hashtbl.replace defs d.Summary.d_name d)
         m.Summary.m_defs)
    mods;
  { defs; toplevel }

let find t name = Hashtbl.find_opt t.defs name

(* A bare name inside [scope] may refer to a top-level sibling of that
   scope or of any enclosing module scope; try innermost-out. *)
let resolve_local t ~scope n =
  let rec up scope =
    let candidate = scope ^ "." ^ n in
    if Hashtbl.mem t.toplevel candidate then Some candidate
    else begin
      match String.rindex_opt scope '.' with
      | Some i -> up (String.sub scope 0 i)
      | None -> None
    end
  in
  up scope

(* Resolve one reference made by [def] to a canonical def name, when it
   lands on an analyzed def at all (stdlib and external libraries do
   not). *)
let resolve t (def : Summary.def) (rname : Names.name) =
  match rname with
  | Names.Local n -> begin
      (* A name the def binds itself (parameter, inner let) shadows any
         same-named module sibling — no edge. *)
      if Summary.SS.mem n def.Summary.d_bound then None
      else begin
        match resolve_local t ~scope:def.Summary.d_scope n with
        | Some name when name <> def.Summary.d_name -> find t name
        | _ -> None
      end
    end
  | Names.Global g -> begin
      match find t g with
      | Some _ as r -> r
      | None -> begin
          (* Dotted references to a nested module of the same unit are
             scope-relative ("Impl.stamp" inside Fixkern, not
             "Fixkern.Impl.stamp"); qualify against the scope chain. *)
          match resolve_local t ~scope:def.Summary.d_scope g with
          | Some name when name <> def.Summary.d_name -> find t name
          | _ -> None
        end
    end

(* Callees of [def], deduplicated, in first-reference order, each with
   the line of the first reference.  [keep] filters the *name* before
   resolution (the trust boundary). *)
let callees t ?(keep = fun _ -> true) (def : Summary.def) =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (r : Summary.refr) ->
       match resolve t def r.Summary.rname with
       | Some callee
         when keep callee.Summary.d_name
              && not (Hashtbl.mem seen callee.Summary.d_name) ->
         Hashtbl.replace seen callee.Summary.d_name ();
         Some (callee, r.Summary.rline)
       | _ -> None)
    def.Summary.d_refs

(* [reach t ~keep ~seeds] : reverse-BFS reachability.  [seeds] are
   (def-name, why) facts; the result maps every def that can reach a
   seed through calls to its next hop (callee name, call line) — or to
   the seed's own [why] when the def is itself a seed.  Deterministic:
   seeds and frontier expansion process in sorted name order, and the
   first hop recorded for a def wins. *)
type 'a verdict =
  | Seed of 'a
  | Via of string * int  (* next callee toward a seed, call line *)

let reach t ~keep ~seeds =
  (* Reverse edges once: callee name -> (caller def, call line) list. *)
  let rev = Hashtbl.create 512 in
  let names =
    Hashtbl.fold (fun n _ acc -> n :: acc) t.defs []
    |> List.sort String.compare
  in
  List.iter
    (fun n ->
       match find t n with
       | None -> ()
       | Some d ->
         if keep d.Summary.d_name then
           List.iter
             (fun (callee, line) ->
                Hashtbl.add rev callee.Summary.d_name (d, line))
             (callees t ~keep d))
    names;
  let verdicts = Hashtbl.create 64 in
  let frontier = Queue.create () in
  List.iter
    (fun (name, why) ->
       if not (Hashtbl.mem verdicts name) then begin
         Hashtbl.replace verdicts name (Seed why);
         Queue.add name frontier
       end)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) seeds);
  while not (Queue.is_empty frontier) do
    let callee = Queue.pop frontier in
    let callers =
      Hashtbl.find_all rev callee
      |> List.sort
           (fun ((a : Summary.def), la) (b, lb) ->
              match String.compare a.Summary.d_name b.Summary.d_name with
              | 0 -> Int.compare la lb
              | c -> c)
    in
    List.iter
      (fun ((caller : Summary.def), line) ->
         if not (Hashtbl.mem verdicts caller.Summary.d_name) then begin
           Hashtbl.replace verdicts caller.Summary.d_name
             (Via (callee, line));
           Queue.add caller.Summary.d_name frontier
         end)
      callers
  done;
  verdicts

(* [chain verdicts name] walks hop pointers down to the seed, returning
   the node names in call order (starting at [name]) and the seed's
   payload. *)
let chain verdicts name =
  let rec go acc name =
    match Hashtbl.find_opt verdicts name with
    | Some (Seed why) -> Some (List.rev (name :: acc), why)
    | Some (Via (next, _)) -> go (name :: acc) next
    | None -> None
  in
  go [] name
