(** The three typed whole-program analyses: effect/determinism taint,
    domain-escape race detection and architecture layering.  Each takes
    summarized modules plus the committed manifest and yields ordinary
    {!Srclint.Diagnostic.t}s. *)

(** [taint ~manifest graph mods]: for every def in a [pure]-contracted
    library that transitively reaches an ambient-effect source, an
    ["int/taint-*"] diagnostic naming the concrete call chain. *)
val taint :
  manifest:Manifest.t -> Callgraph.t -> Summary.moddef list ->
  Srclint.Diagnostic.t list

(** [escape ~manifest graph mods]: ["int/domain-escape"] diagnostics for
    mutable state written from within [Par.Pool] task closures without
    being bound inside them — directly, at module level, or through a
    callee chain. *)
val escape :
  manifest:Manifest.t -> Callgraph.t -> Summary.moddef list ->
  Srclint.Diagnostic.t list

(** One cross-library dependency edge, anchored to its first use site. *)
type edge = {
  e_src : string;
  e_dst : string;
  e_file : string;
  e_line : int;
}

(** [edges ~lib_of_module mods]: the deduplicated cross-library edges in
    the summaries.  [lib_of_module] maps a head module name
    (["Ccplace"]) to its [lib/] dir, when analyzed. *)
val edges :
  lib_of_module:(string -> string option) -> Summary.moddef list ->
  edge list

(** [layering ~manifest ~libs edges]: ["arch/*"] diagnostics — layers
    missing from the manifest, upward or forbidden edges, and dependency
    cycles.  Callable on synthetic edges (tests exercise cycles this
    way, since dune already rejects real ones). *)
val layering :
  manifest:Manifest.t -> libs:string list -> edge list ->
  Srclint.Diagnostic.t list

(** [run ~manifest ~libs ~lib_of_module mods]: manifest validation plus
    all three analyses, concatenated. *)
val run :
  manifest:Manifest.t -> libs:string list ->
  lib_of_module:(string -> string option) -> Summary.moddef list ->
  Srclint.Diagnostic.t list
