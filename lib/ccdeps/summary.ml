(* Per-module value summaries extracted from one .cmt Typedtree: for
   every top-level binding, the identifiers it references, the names it
   binds, the in-place writes it performs and the Par.Pool submissions
   it makes.  Everything downstream (call graph, taint, escape,
   layering) works on these records — the Typedtree is dropped as soon
   as a module is summarized, which keeps whole-program passes cheap. *)

module SS = Set.Make (String)

type target =
  | Tlocal of string   (* bare identifier *)
  | Tglobal of string  (* dotted, normalized *)
  | Tanon              (* a compound expression; not trackable *)

type mutation = {
  op : string;      (* ":=", "Hashtbl.replace", "<- (field set)", ... *)
  target : target;
  mline : int;
}

type refr = {
  rname : Names.name;
  rline : int;
}

(* What one expression walk accumulates; a pool-task closure gets its
   own [walked] so escapes can be judged against the names bound inside
   the closure alone. *)
type walked = {
  c_bound : SS.t;
  c_mutations : mutation list;
  c_refs : refr list;
}

type fn_arg =
  | Fn_closure of walked
  | Fn_ref of Names.name
  | Fn_unknown

type pool_site = {
  entry : string;   (* "Par.Pool.map_list_exn", ... *)
  sline : int;
  fn : fn_arg;
}

type def = {
  d_name : string;   (* canonical, e.g. "Ccplace.Spiral.place" *)
  d_scope : string;  (* enclosing module path, e.g. "Ccplace.Spiral" *)
  d_lib : string;    (* lib/ dir name, e.g. "ccplace" *)
  d_file : string;   (* repo-relative source, e.g. "lib/ccplace/spiral.ml" *)
  d_line : int;
  d_refs : refr list;
  d_bound : SS.t;
  d_mutations : mutation list;
  d_pool_sites : pool_site list;
}

type moddef = {
  m_name : string;  (* canonical module, e.g. "Ccplace.Spiral" *)
  m_lib : string;
  m_file : string;
  m_defs : def list;
  m_toplevel : SS.t;  (* scope-qualified top-level value names *)
}

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let target_of (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> begin
      match Names.of_path p with
      | Names.Local n -> Tlocal n
      | Names.Global n -> Tglobal n
    end
  | _ -> Tanon

let positional args =
  List.filter_map
    (fun (label, e) ->
       match (label, e) with
       | (Asttypes.Nolabel, Some e) -> Some e
       | _ -> None)
    args

(* [walk ~on_site e] traverses one expression.  [on_site] receives
   Par.Pool submissions when set; the closure argument of a site is
   walked separately (without site collection — nested submissions
   inside a task body belong to the callee defs the task invokes). *)
let rec walk ?on_site e =
  let refs = ref [] and bound = ref SS.empty and mutations = ref [] in
  let expr_hook self (e : Typedtree.expression) =
    let line = line_of e.Typedtree.exp_loc in
    (match e.Typedtree.exp_desc with
     | Typedtree.Texp_ident (p, _, _) ->
       refs := { rname = Names.of_path p; rline = line } :: !refs
     | Typedtree.Texp_setfield (obj, _, _, _) ->
       mutations :=
         { op = "<- (mutable field set)"; target = target_of obj;
           mline = line }
         :: !mutations
     | Typedtree.Texp_apply (f, args) -> begin
         match f.Typedtree.exp_desc with
         | Typedtree.Texp_ident (p, _, _) -> begin
             match Names.of_path p with
             | Names.Global g ->
               (match Names.mutator_target_index g with
                | Some i -> begin
                    match List.nth_opt (positional args) i with
                    | Some tgt ->
                      mutations :=
                        { op = g; target = target_of tgt; mline = line }
                        :: !mutations
                    | None -> ()
                  end
                | None -> ());
               (match (Names.pool_fn_index g, on_site) with
                | (Some i, Some emit) -> begin
                    match List.nth_opt (positional args) i with
                    | Some fn_expr ->
                      emit { entry = g; sline = line; fn = fn_of fn_expr }
                    | None -> ()
                  end
                | _ -> ())
             | Names.Local _ -> ()
           end
         | _ -> ()
       end
     | _ -> ());
    Tast_iterator.default_iterator.Tast_iterator.expr self e
  in
  let pat_hook : type k.
    Tast_iterator.iterator -> k Typedtree.general_pattern -> unit =
    fun self p ->
      (match p.Typedtree.pat_desc with
       | Typedtree.Tpat_var (id, _) ->
         bound := SS.add (Ident.name id) !bound
       | Typedtree.Tpat_alias (_, id, _) ->
         bound := SS.add (Ident.name id) !bound
       | _ -> ());
      Tast_iterator.default_iterator.Tast_iterator.pat self p
  in
  let it =
    { Tast_iterator.default_iterator with
      Tast_iterator.expr = expr_hook;
      Tast_iterator.pat = pat_hook }
  in
  it.Tast_iterator.expr it e;
  { c_bound = !bound; c_mutations = List.rev !mutations;
    c_refs = List.rev !refs }

and fn_of (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_function _ -> Fn_closure (walk e)
  | Typedtree.Texp_ident (p, _, _) -> Fn_ref (Names.of_path p)
  | _ -> Fn_unknown

let pattern_names pat =
  let names = ref [] in
  let pat_hook : type k.
    Tast_iterator.iterator -> k Typedtree.general_pattern -> unit =
    fun self p ->
      (match p.Typedtree.pat_desc with
       | Typedtree.Tpat_var (id, _) -> names := Ident.name id :: !names
       | Typedtree.Tpat_alias (_, id, _) -> names := Ident.name id :: !names
       | _ -> ());
      Tast_iterator.default_iterator.Tast_iterator.pat self p
  in
  let it =
    { Tast_iterator.default_iterator with Tast_iterator.pat = pat_hook }
  in
  it.Tast_iterator.pat it pat;
  List.rev !names

let of_structure ~lib ~modname ~file (str : Typedtree.structure) =
  let canonical = Names.normalize modname in
  let defs = ref [] in
  let toplevel = ref SS.empty in
  let rec item scope (si : Typedtree.structure_item) =
    match si.Typedtree.str_desc with
    | Typedtree.Tstr_value (_, vbs) ->
      List.iter
        (fun (vb : Typedtree.value_binding) ->
           let names = pattern_names vb.Typedtree.vb_pat in
           let name = match names with n :: _ -> n | [] -> "_" in
           List.iter
             (fun n -> toplevel := SS.add (scope ^ "." ^ n) !toplevel)
             names;
           let sites = ref [] in
           let walked =
             walk ~on_site:(fun s -> sites := s :: !sites)
               vb.Typedtree.vb_expr
           in
           defs :=
             { d_name = scope ^ "." ^ name;
               d_scope = scope;
               d_lib = lib;
               d_file = file;
               d_line = line_of vb.Typedtree.vb_loc;
               d_refs = walked.c_refs;
               d_bound = walked.c_bound;
               d_mutations = walked.c_mutations;
               d_pool_sites = List.rev !sites }
             :: !defs)
        vbs
    | Typedtree.Tstr_module mb -> module_binding scope mb
    | Typedtree.Tstr_recmodule mbs -> List.iter (module_binding scope) mbs
    | _ -> ()
  and module_binding scope (mb : Typedtree.module_binding) =
    let sub =
      match mb.Typedtree.mb_id with
      | Some id -> scope ^ "." ^ Ident.name id
      | None -> scope
    in
    module_expr sub mb.Typedtree.mb_expr
  and module_expr scope (me : Typedtree.module_expr) =
    match me.Typedtree.mod_desc with
    | Typedtree.Tmod_structure s ->
      List.iter (item scope) s.Typedtree.str_items
    | Typedtree.Tmod_constraint (me, _, _, _) -> module_expr scope me
    | Typedtree.Tmod_functor (_, me) -> module_expr scope me
    | _ -> ()
  in
  List.iter (item canonical) str.Typedtree.str_items;
  { m_name = canonical;
    m_lib = lib;
    m_file = file;
    m_defs = List.rev !defs;
    m_toplevel = !toplevel }
