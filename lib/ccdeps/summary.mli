(** Per-module value summaries extracted from [.cmt] Typedtrees.

    One {!def} per top-level binding: referenced identifiers, bound
    names, in-place writes and [Par.Pool] submissions.  The call graph,
    taint, escape and layering passes all consume these records. *)

module SS : Set.S with type elt = string

type target =
  | Tlocal of string   (** bare identifier *)
  | Tglobal of string  (** dotted, {!Names.normalize}d *)
  | Tanon              (** compound expression; not trackable *)

type mutation = {
  op : string;
  target : target;
  mline : int;
}

type refr = {
  rname : Names.name;
  rline : int;
}

(** What one expression walk accumulates. *)
type walked = {
  c_bound : SS.t;
  c_mutations : mutation list;
  c_refs : refr list;
}

type fn_arg =
  | Fn_closure of walked  (** a literal [fun] task — walked separately *)
  | Fn_ref of Names.name  (** a named task function *)
  | Fn_unknown

type pool_site = {
  entry : string;
  sline : int;
  fn : fn_arg;
}

type def = {
  d_name : string;
  d_scope : string;
  d_lib : string;
  d_file : string;
  d_line : int;
  d_refs : refr list;
  d_bound : SS.t;
  d_mutations : mutation list;
  d_pool_sites : pool_site list;
}

type moddef = {
  m_name : string;
  m_lib : string;
  m_file : string;
  m_defs : def list;
  m_toplevel : SS.t;
}

(** [of_structure ~lib ~modname ~file str] summarizes one module.
    [modname] is the compilation-unit name (["Ccplace__Spiral"]);
    [file] the repo-relative source path recorded in the cmt. *)
val of_structure :
  lib:string -> modname:string -> file:string -> Typedtree.structure ->
  moddef
