(** Canonical naming for Typedtree paths, and the ambient-effect,
    mutator and [Par.Pool] entry tables the typed analyses key on. *)

(** A resolved identifier occurrence. *)
type name =
  | Local of string
      (** a bare [Pident]: bound in the def, or a module-level sibling *)
  | Global of string  (** dotted, {!normalize}d *)

(** [normalize s] rewrites dune's ["Lib__Module"] mangling to
    ["Lib.Module"] and drops a leading ["Stdlib."] when something
    follows it: ["Stdlib.Random.int"] and ["Stdlib__Random.int"] both
    become ["Random.int"]. *)
val normalize : string -> string

(** [of_path p] classifies and normalizes a compiler [Path.t]. *)
val of_path : Path.t -> name

(** [head "A.B.c"] is ["A"]. *)
val head : string -> string

(** [has_prefix ~prefix s]: [s] equals [prefix] or starts with
    [prefix ^ "."] — component-wise, so ["Par"] covers ["Par.Rng.state"]
    but not ["Parasitic.x"]. *)
val has_prefix : prefix:string -> string -> bool

(** The taint kinds the effect analysis tracks. *)
type kind = Wall_clock | Random | Getenv | Gc | Print

val kind_name : kind -> string
val all_kinds : kind list

(** [source_kind name] is the ambient-effect kind of a normalized global
    identifier, if it is a taint source ([Unix.gettimeofday], ambient
    [Random.*], [Sys.getenv], GC mutators, stdout/stderr printers). *)
val source_kind : string -> kind option

(** [mutator_target_index name] is [Some i] when the operation writes
    its [i]-th positional argument in place — 0 for most ([:=],
    [Hashtbl.replace], [Array.set], ...), 1 for the sorts, whose first
    argument is the comparator ([Array.sort cmp a] mutates [a]).
    [Atomic.*] is deliberately not listed. *)
val mutator_target_index : string -> int option

(** [is_mutator name] is [mutator_target_index name <> None]. *)
val is_mutator : string -> bool

(** [pool_fn_index name] is [Some i] when [name] is a [Par.Pool] entry
    point whose task function is positional argument [i]. *)
val pool_fn_index : string -> int option
