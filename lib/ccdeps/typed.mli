(** The typed whole-program pass: [.ccdeps] manifest + every [.cmt]
    under [_build/default/lib] in, {!Srclint.Diagnostic.t}s out. *)

(** [".ccdeps"] — the manifest's repo-relative path. *)
val manifest_name : string

(** Can the pass run at all (any cmt present)? *)
val available : root:string -> bool

(** [run ~root] is the full diagnostic list: manifest problems, cmt load
    failures, and the taint / domain-escape / layering findings. *)
val run : root:string -> Srclint.Diagnostic.t list
