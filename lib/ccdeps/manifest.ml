(* The committed .ccdeps manifest: the architecture the typed pass holds
   the tree to.  Line-oriented like .cclint:

     layer <lib> <rank>            # lib/ sublibrary's place in the DAG
     forbid <from> <to> : <why>    # edge banned even if ranks allow it
     pure <lib> : <note>           # library under the purity contract
     trust <Module.Prefix> : <why> # taint/escape traversal stops here

   Ranks order dependencies: an edge lib -> dep is legal only when
   rank(dep) < rank(lib).  [trust] names module prefixes whose internals
   are audited separately (the telemetry mutex+DLS idioms, Par's pool and
   substreams); the interprocedural analyses treat calls into them as
   effect-free boundaries instead of descending. *)

type decl_loc = { dline : int }

type t = {
  file : string;
  layers : (string * int * decl_loc) list;
  forbids : (string * string * string * decl_loc) list;
  pures : (string * decl_loc) list;
  trusted : (string * decl_loc) list;
}

let empty =
  { file = ".ccdeps"; layers = []; forbids = []; pures = []; trusted = [] }

let rank t lib =
  List.find_map
    (fun (l, r, _) -> if l = lib then Some r else None)
    t.layers

let forbidden t ~src ~dst =
  List.find_map
    (fun (f, d, why, _) -> if f = src && d = dst then Some why else None)
    t.forbids

let is_pure t lib = List.exists (fun (l, _) -> l = lib) t.pures

let is_trusted t name =
  List.exists (fun (p, _) -> Names.has_prefix ~prefix:p name) t.trusted

let is_blank s = String.trim s = ""

let is_comment s =
  let s = String.trim s in
  String.length s > 0 && s.[0] = '#'

(* "<directive> <tokens...> [: <reason>]" *)
let parse_line ~file ~line t s =
  let body, reason =
    match String.index_opt s ':' with
    | Some i ->
      ( String.sub s 0 i,
        String.trim (String.sub s (i + 1) (String.length s - i - 1)) )
    | None -> (s, "")
  in
  let tokens =
    String.split_on_char ' ' body |> List.filter (fun tk -> tk <> "")
  in
  let loc = { dline = line } in
  let malformed want =
    Error
      (Printf.sprintf "%s:%d: malformed %s directive (want \"%s\")" file
         line
         (match tokens with tk :: _ -> tk | [] -> "")
         want)
  in
  match tokens with
  | [ "layer"; lib; rank ] -> begin
      match int_of_string_opt rank with
      | Some r -> Ok { t with layers = (lib, r, loc) :: t.layers }
      | None -> malformed "layer <lib> <rank>"
    end
  | "layer" :: _ -> malformed "layer <lib> <rank>"
  | [ "forbid"; src; dst ] ->
    Ok { t with forbids = (src, dst, reason, loc) :: t.forbids }
  | "forbid" :: _ -> malformed "forbid <from> <to> : <reason>"
  | [ "pure"; lib ] -> Ok { t with pures = (lib, loc) :: t.pures }
  | "pure" :: _ -> malformed "pure <lib> : <note>"
  | [ "trust"; prefix ] ->
    Ok { t with trusted = (prefix, loc) :: t.trusted }
  | "trust" :: _ -> malformed "trust <Module.Prefix> : <reason>"
  | d :: _ ->
    Error
      (Printf.sprintf "%s:%d: unknown directive %s (want layer, forbid, \
                       pure or trust)"
         file line d)
  | [] -> Ok t

let parse_string ~file contents =
  let lines = String.split_on_char '\n' contents in
  let rec go n t = function
    | [] ->
      Ok
        { t with
          layers = List.rev t.layers;
          forbids = List.rev t.forbids;
          pures = List.rev t.pures;
          trusted = List.rev t.trusted }
    | l :: rest ->
      if is_blank l || is_comment l then go (n + 1) t rest
      else begin
        match parse_line ~file ~line:n t l with
        | Ok t -> go (n + 1) t rest
        | Error _ as err -> err
      end
  in
  go 1 { empty with file } lines

let load path =
  if not (Sys.file_exists path) then Ok { empty with file = path }
  else begin
    match In_channel.with_open_bin path In_channel.input_all with
    | contents -> parse_string ~file:path contents
    | exception Sys_error msg -> Error msg
  end

(* Semantic validation: every lib a directive names must exist, and no
   lib may be ranked twice — a misspelt contract contracts nothing. *)
let validate t ~libs =
  let out = ref [] in
  let emit loc fmt =
    Printf.ksprintf
      (fun detail ->
         out :=
           Srclint.Diagnostic.make ~rule:Srclint.Typed_rules.manifest_error
             ~file:t.file ~line:loc.dline detail
           :: !out)
      fmt
  in
  let known lib = List.mem lib libs in
  let seen = ref [] in
  List.iter
    (fun (lib, _, loc) ->
       if not (known lib) then
         emit loc "layer names no lib/ sublibrary: %s" lib
       else if List.mem lib !seen then emit loc "duplicate layer for %s" lib
       else seen := lib :: !seen)
    t.layers;
  List.iter
    (fun (src, dst, _, loc) ->
       List.iter
         (fun lib ->
            if not (known lib) then
              emit loc "forbid names no lib/ sublibrary: %s" lib)
         [ src; dst ])
    t.forbids;
  List.iter
    (fun (lib, loc) ->
       if not (known lib) then
         emit loc "pure names no lib/ sublibrary: %s" lib)
    t.pures;
  List.rev !out
