(* The typed whole-program pass, end to end: load the committed .ccdeps
   manifest and every cmt under _build/default/lib, then run manifest
   validation, taint, escape and layering.  The CLI merges the result
   into the syntactic engine's diagnostics. *)

let manifest_name = ".ccdeps"

let available ~root = Cmts.available ~root

let load_manifest ~root =
  let path = Filename.concat root manifest_name in
  if not (Sys.file_exists path) then Ok Manifest.empty
  else begin
    match In_channel.with_open_bin path In_channel.input_all with
    | contents -> Manifest.parse_string ~file:manifest_name contents
    | exception Sys_error msg -> Error msg
  end

let run ~root =
  match load_manifest ~root with
  | Error msg ->
    [ Srclint.Diagnostic.make ~rule:Srclint.Typed_rules.manifest_error
        ~file:manifest_name ~line:0 msg ]
  | Ok manifest ->
    let u = Cmts.load ~root in
    u.Cmts.errors
    @ Analysis.run ~manifest ~libs:u.Cmts.libs
        ~lib_of_module:u.Cmts.lib_of_module u.Cmts.mods
