(** The committed [.ccdeps] manifest: per-library purity contracts, the
    layer DAG over [lib/] sublibraries, explicitly forbidden edges, and
    the trusted module prefixes where interprocedural traversal stops.

    {v
    layer <lib> <rank>            # place in the DAG (deps need lower rank)
    forbid <from> <to> : <why>    # edge banned even if ranks allow it
    pure <lib> : <note>           # library under the purity contract
    trust <Module.Prefix> : <why> # traversal boundary (audited elsewhere)
    v} *)

type decl_loc = { dline : int }

type t = {
  file : string;
  layers : (string * int * decl_loc) list;
  forbids : (string * string * string * decl_loc) list;
  pures : (string * decl_loc) list;
  trusted : (string * decl_loc) list;
}

val empty : t

(** [rank t lib] is the declared layer rank, if any. *)
val rank : t -> string -> int option

(** [forbidden t ~src ~dst] is the reason when the edge is explicitly
    banned. *)
val forbidden : t -> src:string -> dst:string -> string option

val is_pure : t -> string -> bool

(** [is_trusted t name]: the normalized global [name] falls under a
    trusted prefix, so analyses treat the call as an effect-free
    boundary. *)
val is_trusted : t -> string -> bool

(** [parse_string ~file contents] parses manifest text; malformed or
    unknown directives are a hard error naming the line. *)
val parse_string : file:string -> string -> (t, string) result

(** [load path]: a missing file is an empty manifest; unreadable or
    malformed content is an error. *)
val load : string -> (t, string) result

(** [validate t ~libs] emits [meta/ccdeps-manifest] diagnostics for
    directives naming no known sublibrary and duplicate layer
    declarations. *)
val validate : t -> libs:string list -> Srclint.Diagnostic.t list
