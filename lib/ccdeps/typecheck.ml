(* In-process typechecking for test fixtures: the same Typedtree the
   compiler would write to a .cmt, without invoking dune.  Fixtures that
   stub [module Par = struct module Pool = ... end] locally produce the
   exact "Par.Pool.map_list_exn" path spellings the real library does,
   so the analyses can be pinned against small source strings. *)

let structure ~file source =
  Compmisc.init_path ();
  let env = Compmisc.initial_env () in
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  let ast = Parse.implementation lexbuf in
  let str, _sig, _names, _shape, _env = Typemod.type_structure env ast in
  str

let summarize ~lib ~modname ~file source =
  Summary.of_structure ~lib ~modname ~file (structure ~file source)
