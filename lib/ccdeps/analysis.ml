(* The three whole-program analyses over summarized modules:

   - effect/determinism taint: reverse reachability from ambient sources
     (wall clock, ambient Random, getenv, GC mutators, printing) through
     the call graph, reported for every def in a [pure]-contracted
     library with the concrete call chain;
   - domain-escape race detection: writes to mutable state that is not
     bound inside a closure submitted to Par.Pool — directly captured,
     module-level, or reached through a callee — reported at the write
     or submission site;
   - architecture layering: the manifest's rank DAG and forbidden edges
     over the lib/ sublibrary dependency graph, plus cycle detection.

   Calls into [trust]ed module prefixes (telemetry's mutex+DLS sinks,
   Par's pool/substream internals) are effect-free boundaries: the
   analyses do not descend into them. *)

let rule_of_kind kind =
  match (kind : Names.kind) with
  | Names.Wall_clock -> Srclint.Typed_rules.taint_wall_clock
  | Names.Random -> Srclint.Typed_rules.taint_random
  | Names.Getenv -> Srclint.Typed_rules.taint_getenv
  | Names.Gc -> Srclint.Typed_rules.taint_gc
  | Names.Print -> Srclint.Typed_rules.taint_print

let sorted_defs (mods : Summary.moddef list) =
  List.sort
    (fun (a : Summary.moddef) b ->
       String.compare a.Summary.m_name b.Summary.m_name)
    mods
  |> List.concat_map (fun m -> m.Summary.m_defs)

let pp_chain names source =
  String.concat " -> " (names @ [ source ])

(* --- effect/determinism taint ------------------------------------------ *)

let direct_source kind (d : Summary.def) =
  List.find_map
    (fun (r : Summary.refr) ->
       match r.Summary.rname with
       | Names.Global g when Names.source_kind g = Some kind ->
         Some (g, r.Summary.rline)
       | _ -> None)
    d.Summary.d_refs

let taint ~manifest graph mods =
  let keep name = not (Manifest.is_trusted manifest name) in
  let defs = sorted_defs mods in
  List.concat_map
    (fun kind ->
       let seeds =
         List.filter_map
           (fun (d : Summary.def) ->
              match direct_source kind d with
              | Some src -> Some (d.Summary.d_name, src)
              | None -> None)
           defs
       in
       if seeds = [] then []
       else begin
         let verdicts = Callgraph.reach graph ~keep ~seeds in
         List.filter_map
           (fun (d : Summary.def) ->
              if
                not (Manifest.is_pure manifest d.Summary.d_lib)
                || not (keep d.Summary.d_name)
              then None
              else begin
                match Callgraph.chain verdicts d.Summary.d_name with
                | None -> None
                | Some (names, (source, sline)) ->
                  Some
                    (Srclint.Diagnostic.makef ~rule:(rule_of_kind kind)
                       ~file:d.Summary.d_file ~line:d.Summary.d_line
                       "%s reaches %s (%s taint, source at line %d of the \
                        chain's last file): %s"
                       d.Summary.d_name source (Names.kind_name kind) sline
                       (pp_chain names source))
              end)
           defs
       end)
    Names.all_kinds

(* --- domain-escape race detection -------------------------------------- *)

(* A def's own module-level write, if any: a dotted target, or a bare
   target that is not bound inside the def (hence a module sibling). *)
let direct_global_write ~manifest (d : Summary.def) =
  List.find_map
    (fun (m : Summary.mutation) ->
       match m.Summary.target with
       | Summary.Tglobal g when not (Manifest.is_trusted manifest g) ->
         Some (m.Summary.op, g, m.Summary.mline)
       | Summary.Tlocal n when not (Summary.SS.mem n d.Summary.d_bound) ->
         Some (m.Summary.op, d.Summary.d_scope ^ "." ^ n, m.Summary.mline)
       | _ -> None)
    d.Summary.d_mutations

let escape ~manifest graph mods =
  let keep name = not (Manifest.is_trusted manifest name) in
  let defs = sorted_defs mods in
  let seeds =
    List.filter_map
      (fun (d : Summary.def) ->
         if not (keep d.Summary.d_name) then None
         else begin
           match direct_global_write ~manifest d with
           | Some w -> Some (d.Summary.d_name, w)
           | None -> None
         end)
      defs
  in
  let verdicts =
    if seeds = [] then Hashtbl.create 1
    else Callgraph.reach graph ~keep ~seeds
  in
  let emit = ref [] in
  let diag ~file ~line fmt =
    Printf.ksprintf
      (fun detail ->
         emit :=
           Srclint.Diagnostic.make ~rule:Srclint.Typed_rules.domain_escape
             ~file ~line detail
           :: !emit)
      fmt
  in
  let check_callee ~file ~entry (d : Summary.def) rname rline =
    match Callgraph.resolve graph d rname with
    | Some callee when keep callee.Summary.d_name -> begin
        match Callgraph.chain verdicts callee.Summary.d_name with
        | Some (names, (op, target, _)) ->
          diag ~file ~line:rline
            "task of %s mutates %s (%s) via %s" entry target op
            (pp_chain names target)
        | None -> ()
      end
    | _ -> ()
  in
  List.iter
    (fun (d : Summary.def) ->
       if keep d.Summary.d_name then
         List.iter
           (fun (s : Summary.pool_site) ->
              match s.Summary.fn with
              | Summary.Fn_closure c ->
                List.iter
                  (fun (m : Summary.mutation) ->
                     match m.Summary.target with
                     | Summary.Tlocal n
                       when not (Summary.SS.mem n c.Summary.c_bound) ->
                       diag ~file:d.Summary.d_file ~line:m.Summary.mline
                         "task of %s writes %s, which is created outside \
                          the closure (%s); worker domains race on it"
                         s.Summary.entry n m.Summary.op
                     | Summary.Tglobal g
                       when not (Manifest.is_trusted manifest g) ->
                       diag ~file:d.Summary.d_file ~line:m.Summary.mline
                         "task of %s writes module-level state %s (%s); \
                          worker domains race on it"
                         s.Summary.entry g m.Summary.op
                     | _ -> ())
                  c.Summary.c_mutations;
                let seen = Hashtbl.create 8 in
                List.iter
                  (fun (r : Summary.refr) ->
                     let key =
                       match r.Summary.rname with
                       | Names.Local n -> n
                       | Names.Global g -> g
                     in
                     if not (Hashtbl.mem seen key) then begin
                       Hashtbl.replace seen key ();
                       check_callee ~file:d.Summary.d_file
                         ~entry:s.Summary.entry d r.Summary.rname
                         r.Summary.rline
                     end)
                  c.Summary.c_refs
              | Summary.Fn_ref rname ->
                check_callee ~file:d.Summary.d_file ~entry:s.Summary.entry
                  d rname s.Summary.sline
              | Summary.Fn_unknown -> ())
           d.Summary.d_pool_sites)
    defs;
  List.rev !emit

(* --- architecture layering --------------------------------------------- *)

type edge = {
  e_src : string;  (* depending lib (dir name) *)
  e_dst : string;  (* lib depended upon *)
  e_file : string;
  e_line : int;
}

(* Cross-library edges from the summaries: every dotted reference whose
   head module belongs to another analyzed lib, deduplicated to the
   first use site per (src, dst) pair. *)
let edges ~lib_of_module (mods : Summary.moddef list) =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (fun (m : Summary.moddef) ->
       List.iter
         (fun (d : Summary.def) ->
            List.iter
              (fun (r : Summary.refr) ->
                 match r.Summary.rname with
                 | Names.Global g -> begin
                     match lib_of_module (Names.head g) with
                     | Some dst when dst <> m.Summary.m_lib ->
                       if not (Hashtbl.mem seen (m.Summary.m_lib, dst))
                       then begin
                         Hashtbl.replace seen (m.Summary.m_lib, dst) ();
                         out :=
                           { e_src = m.Summary.m_lib; e_dst = dst;
                             e_file = d.Summary.d_file;
                             e_line = r.Summary.rline }
                           :: !out
                       end
                     | _ -> ()
                   end
                 | Names.Local _ -> ())
              d.Summary.d_refs)
         m.Summary.m_defs)
    (List.sort
       (fun (a : Summary.moddef) b ->
          String.compare a.Summary.m_name b.Summary.m_name)
       mods);
  List.rev !out

let compare_cycles a b =
  match Int.compare (List.length a) (List.length b) with
  | 0 -> List.compare String.compare a b
  | c -> c

let find_cycles edges =
  let adj = Hashtbl.create 32 in
  let nodes = ref [] in
  List.iter
    (fun e ->
       if not (List.mem e.e_src !nodes) then nodes := e.e_src :: !nodes;
       if not (List.mem e.e_dst !nodes) then nodes := e.e_dst :: !nodes;
       Hashtbl.add adj e.e_src e.e_dst)
    edges;
  let nodes = List.sort String.compare !nodes in
  let cycles = ref [] in
  let canonical cycle =
    (* rotate so the smallest lib leads; dedup across entry points *)
    let n = List.length cycle in
    let arr = Array.of_list cycle in
    let min_i = ref 0 in
    Array.iteri
      (fun i l -> if String.compare l arr.(!min_i) < 0 then min_i := i)
      arr;
    List.init n (fun i -> arr.((i + !min_i) mod n))
  in
  let rec dfs path node =
    match
      List.find_index (fun p -> p = node) (List.rev path)
    with
    | Some i ->
      let cycle =
        canonical (List.filteri (fun j _ -> j >= i) (List.rev path))
      in
      if not (List.mem cycle !cycles) then cycles := cycle :: !cycles
    | None ->
      let succs =
        Hashtbl.find_all adj node |> List.sort_uniq String.compare
      in
      List.iter (dfs (node :: path)) succs
  in
  List.iter (dfs []) nodes;
  List.sort compare_cycles !cycles

let layering ~manifest ~libs edges =
  let out = ref [] in
  let diag rule ~file ~line fmt =
    Printf.ksprintf
      (fun detail ->
         out := Srclint.Diagnostic.make ~rule ~file ~line detail :: !out)
      fmt
  in
  List.iter
    (fun lib ->
       if Manifest.rank manifest lib = None then
         diag Srclint.Typed_rules.undeclared_lib
           ~file:manifest.Manifest.file ~line:0
           "lib/%s has no layer declaration in %s; every sublibrary must \
            be placed in the DAG"
           lib manifest.Manifest.file)
    (List.sort String.compare libs);
  List.iter
    (fun e ->
       match Manifest.forbidden manifest ~src:e.e_src ~dst:e.e_dst with
       | Some why ->
         diag Srclint.Typed_rules.forbidden_dep ~file:e.e_file
           ~line:e.e_line "%s must not depend on %s: %s" e.e_src e.e_dst
           (if why = "" then "forbidden by the manifest" else why)
       | None -> begin
           match
             (Manifest.rank manifest e.e_src, Manifest.rank manifest e.e_dst)
           with
           | (Some rs, Some rd) when rd >= rs ->
             diag Srclint.Typed_rules.layer_violation ~file:e.e_file
               ~line:e.e_line
               "%s (layer %d) depends on %s (layer %d); dependencies must \
                point strictly downward"
               e.e_src rs e.e_dst rd
           | _ -> ()
         end)
    edges;
  List.iter
    (fun cycle ->
       let site =
         List.find_opt (fun e -> Some e.e_src = List.nth_opt cycle 0) edges
       in
       let file, line =
         match site with
         | Some e -> (e.e_file, e.e_line)
         | None -> (manifest.Manifest.file, 0)
       in
       diag Srclint.Typed_rules.layer_cycle ~file ~line
         "library dependency cycle: %s -> %s"
         (String.concat " -> " cycle)
         (List.hd cycle))
    (find_cycles edges);
  List.rev !out

(* --- the whole typed pass over one summarized universe ----------------- *)

let run ~manifest ~libs ~lib_of_module mods =
  let graph = Callgraph.build mods in
  Manifest.validate manifest ~libs
  @ taint ~manifest graph mods
  @ escape ~manifest graph mods
  @ layering ~manifest ~libs (edges ~lib_of_module mods)
