(* Canonical naming for Typedtree paths, plus the ambient-effect,
   mutator and pool-entry tables every analysis keys on.

   The compiler hands back paths in several spellings for one thing:
   [Stdlib.Random.int] vs [Stdlib__Random.int], [Ccplace__Spiral] vs
   [Ccplace.Spiral].  Everything downstream works on one normal form —
   dune's ["Lib__Module"] mangling becomes ["Lib.Module"], and a leading
   [Stdlib.] is dropped whenever something follows it. *)

type name =
  | Local of string   (* a bare identifier: def-local or module sibling *)
  | Global of string  (* dotted, normalized *)

let split_mangled comp =
  match String.index_opt comp '_' with
  | None -> [ comp ]
  | Some _ -> begin
    (* "Ccplace__Spiral" -> ["Ccplace"; "Spiral"]; "Ccplace__" (dune's
       empty-alias spelling) -> ["Ccplace"]; plain "snake_case" names
       pass through. *)
    let n = String.length comp in
    let rec find i =
      if i + 1 >= n then None
      else if comp.[i] = '_' && comp.[i + 1] = '_' then Some i
      else find (i + 1)
    in
    match find 0 with
    | Some i when i > 0 ->
      let head = String.sub comp 0 i in
      let tail = String.sub comp (i + 2) (n - i - 2) in
      if tail = "" then [ head ] else [ head; tail ]
    | _ -> [ comp ]
  end

let normalize dotted =
  let comps =
    String.split_on_char '.' dotted |> List.concat_map split_mangled
  in
  let comps =
    match comps with
    | "Stdlib" :: (_ :: _ as rest) -> rest
    | comps -> comps
  in
  String.concat "." comps

let of_path p =
  match p with
  | Path.Pident id -> Local (Ident.name id)
  | _ -> Global (normalize (Path.name p))

let head dotted =
  match String.index_opt dotted '.' with
  | Some i -> String.sub dotted 0 i
  | None -> dotted

let has_prefix ~prefix s =
  s = prefix
  || String.length s > String.length prefix
     && String.sub s 0 (String.length prefix + 1) = prefix ^ "."

(* --- ambient-effect sources ------------------------------------------- *)

type kind = Wall_clock | Random | Getenv | Gc | Print

let kind_name = function
  | Wall_clock -> "wall-clock"
  | Random -> "random"
  | Getenv -> "getenv"
  | Gc -> "gc"
  | Print -> "print"

let all_kinds = [ Wall_clock; Random; Getenv; Gc; Print ]

let wall_clock_sources =
  [ "Unix.gettimeofday"; "Unix.time"; "Unix.localtime"; "Unix.gmtime";
    "Unix.mktime"; "Sys.time" ]

let getenv_sources =
  [ "Sys.getenv"; "Sys.getenv_opt"; "Unix.getenv"; "Unix.environment" ]

(* Mutators only — read-only probes (Gc.quick_stat, ...) are fine. *)
let gc_sources =
  [ "Gc.set"; "Gc.compact"; "Gc.full_major"; "Gc.major"; "Gc.minor";
    "Gc.major_slice" ]

let print_sources =
  [ "print_string"; "print_endline"; "print_newline"; "print_int";
    "print_float"; "print_char"; "print_bytes"; "prerr_string";
    "prerr_endline"; "prerr_newline"; "prerr_bytes"; "Printf.printf";
    "Printf.eprintf"; "Format.printf"; "Format.eprintf" ]

(* Any use of the implicit global generator is ambient; [Random.State.*]
   carries its state explicitly and is what Par.Rng hands out — except
   [make_self_init], which smuggles ambient entropy back in. *)
let is_ambient_random name =
  name = "Random.State.make_self_init"
  || (has_prefix ~prefix:"Random" name
      && not (has_prefix ~prefix:"Random.State" name))

let source_kind name =
  if List.mem name wall_clock_sources then Some Wall_clock
  else if is_ambient_random name then Some Random
  else if List.mem name getenv_sources then Some Getenv
  else if List.mem name gc_sources then Some Gc
  else if List.mem name print_sources then Some Print
  else None

(* --- in-place mutators ------------------------------------------------- *)

(* Operations that mutate a positional argument in place, paired with
   the index of the argument they write — 0 for most, 1 for the sorts
   ([Array.sort cmp a] mutates [a]; its first argument is the
   comparator, which must not be mistaken for shared state).
   [Atomic.*] is deliberately absent: it is the sanctioned lock-free
   primitive, safe to share across worker domains. *)
let mutators =
  List.map
    (fun name -> (name, 0))
  [ ":="; "incr"; "decr";
    "Hashtbl.replace"; "Hashtbl.add"; "Hashtbl.remove"; "Hashtbl.reset";
    "Hashtbl.clear"; "Hashtbl.filter_map_inplace";
    "Array.set"; "Array.fill"; "Array.blit"; "Array.unsafe_set";
    "Bytes.set"; "Bytes.fill"; "Bytes.blit"; "Bytes.unsafe_set";
    "Buffer.add_string"; "Buffer.add_char"; "Buffer.add_bytes";
    "Buffer.add_buffer"; "Buffer.add_substring"; "Buffer.clear";
    "Buffer.reset"; "Buffer.truncate";
    "Queue.push"; "Queue.add"; "Queue.pop"; "Queue.take"; "Queue.clear";
    "Queue.transfer";
    "Stack.push"; "Stack.pop"; "Stack.clear" ]
  @ [ ("Array.sort", 1); ("Array.fast_sort", 1); ("Array.stable_sort", 1) ]

let mutator_target_index name = List.assoc_opt name mutators
let is_mutator name = mutator_target_index name <> None

(* --- Par.Pool entry points -------------------------------------------- *)

(* (entry point, index of the task function among positional args). *)
let pool_entries =
  [ ("Par.Pool.map", 1); ("Par.Pool.map_exn", 1);
    ("Par.Pool.map_list", 0); ("Par.Pool.map_list_exn", 0) ]

let pool_fn_index name = List.assoc_opt name pool_entries
