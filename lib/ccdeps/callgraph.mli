(** The cross-module value-level call graph over summarized defs, with
    reverse-reachability machinery that remembers call chains. *)

type t

val build : Summary.moddef list -> t

(** [find t name] looks up a def by canonical name. *)
val find : t -> string -> Summary.def option

(** [resolve t def rname] resolves one reference [def] makes — bare
    names against the enclosing scope chain, dotted names against the
    def table — to an analyzed def, if it is one. *)
val resolve : t -> Summary.def -> Names.name -> Summary.def option

(** [callees t ?keep def]: resolved callees in first-reference order
    with the line of the first call; [keep] filters callee names before
    resolution (the trust boundary). *)
val callees :
  t -> ?keep:(string -> bool) -> Summary.def ->
  (Summary.def * int) list

(** How a def reaches a seed fact. *)
type 'a verdict =
  | Seed of 'a
  | Via of string * int  (** next callee toward a seed, call line *)

(** [reach t ~keep ~seeds] maps every def name that transitively reaches
    a seed (through [keep]-passing edges) to its verdict.
    Deterministic. *)
val reach :
  t -> keep:(string -> bool) -> seeds:(string * 'a) list ->
  (string, 'a verdict) Hashtbl.t

(** [chain verdicts name] is the call chain from [name] down to a seed
    and the seed's payload. *)
val chain :
  (string, 'a verdict) Hashtbl.t -> string -> (string list * 'a) option
