(** In-process typechecking for test fixtures — the Typedtree a [.cmt]
    would hold, straight from a source string.  Raises the compiler's
    own exceptions ([Typetexp.Error], [Typecore.Error], ...) on
    ill-typed fixtures. *)

val structure : file:string -> string -> Typedtree.structure

(** [summarize ~lib ~modname ~file source] typechecks and summarizes in
    one step. *)
val summarize :
  lib:string -> modname:string -> file:string -> string -> Summary.moddef
