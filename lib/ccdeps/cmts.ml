(* Discovery and loading of the .cmt Typedtrees dune leaves under
   _build/default/lib/<dir>/.<libname>.objs/byte/.  Each Implementation
   cmt is summarized immediately; the result is the whole-program
   universe the analyses run on, plus meta/cmt-error diagnostics for
   files that would not load. *)

type universe = {
  libs : string list;  (* lib/ dir names with a dune file, sorted *)
  mods : Summary.moddef list;
  lib_of_module : string -> string option;
      (* canonical head module ("Ccplace") -> lib dir ("ccplace") *)
  cmt_count : int;
  errors : Srclint.Diagnostic.t list;
}

let readdir_sorted path =
  if Sys.file_exists path && Sys.is_directory path then begin
    let entries = Sys.readdir path in
    Array.sort String.compare entries;
    Array.to_list entries
  end
  else []

let lib_dirs ~root =
  readdir_sorted (Filename.concat root "lib")
  |> List.filter (fun d ->
      let dir = Filename.concat (Filename.concat root "lib") d in
      Sys.is_directory dir
      && Sys.file_exists (Filename.concat dir "dune"))

(* The byte/ objs directories for one lib dir, e.g.
   _build/default/lib/ccplace/.ccplace.objs/byte. *)
let objs_dirs ~root lib =
  let built = Filename.concat root (Filename.concat "_build/default/lib" lib)
  in
  readdir_sorted built
  |> List.filter_map (fun entry ->
      if Filename.check_suffix entry ".objs" then begin
        let byte = Filename.concat (Filename.concat built entry) "byte" in
        if Sys.file_exists byte && Sys.is_directory byte then Some byte
        else None
      end
      else None)

let cmt_paths ~root lib =
  List.concat_map
    (fun byte ->
       readdir_sorted byte
       |> List.filter (fun f -> Filename.check_suffix f ".cmt")
       |> List.map (Filename.concat byte))
    (objs_dirs ~root lib)

let available ~root =
  List.exists (fun lib -> cmt_paths ~root lib <> []) (lib_dirs ~root)

(* Generated alias modules (ccplace.ml-gen) hold only module aliases;
   nothing to summarize. *)
let is_generated source = Filename.check_suffix source "-gen"

let load_one ~lib path =
  match Cmt_format.read_cmt path with
  | exception (Cmt_format.Error _ | Cmi_format.Error _) ->
    Error (Printf.sprintf "not a loadable cmt (compiler mismatch?): %s" path)
  | exception Sys_error msg -> Error msg
  | exception (End_of_file | Failure _) ->
    Error (Printf.sprintf "truncated or corrupt cmt: %s" path)
  | info -> begin
      match info.Cmt_format.cmt_annots with
      | Cmt_format.Implementation str ->
        let source =
          match info.Cmt_format.cmt_sourcefile with
          | Some s -> s
          | None -> path
        in
        if is_generated source then Ok None
        else
          Ok
            (Some
               (Summary.of_structure ~lib
                  ~modname:info.Cmt_format.cmt_modname ~file:source str))
      | _ -> Ok None  (* interfaces, packs, partial trees *)
    end

let load ~root =
  let libs = lib_dirs ~root in
  let mods = ref [] in
  let errors = ref [] in
  let count = ref 0 in
  List.iter
    (fun lib ->
       List.iter
         (fun path ->
            incr count;
            match load_one ~lib path with
            | Ok (Some m) -> mods := m :: !mods
            | Ok None -> ()
            | Error detail ->
              errors :=
                Srclint.Diagnostic.make
                  ~rule:Srclint.Typed_rules.cmt_error
                  ~file:(Filename.concat "lib" lib) ~line:0 detail
                :: !errors)
         (cmt_paths ~root lib))
    libs;
  let mods = List.rev !mods in
  let heads = Hashtbl.create 32 in
  List.iter
    (fun (m : Summary.moddef) ->
       Hashtbl.replace heads (Names.head m.Summary.m_name) m.Summary.m_lib)
    mods;
  { libs;
    mods;
    lib_of_module = Hashtbl.find_opt heads;
    cmt_count = !count;
    errors = List.rev !errors }
