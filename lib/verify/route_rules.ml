let route rule_id doc =
  Rule.make ~id:("route/" ^ rule_id) ~category:Rule.Routing
    ~severity:Rule.Error ~doc

let r_wire_in_outline =
  route "wire-in-outline"
    "Every wire (bottom and top plate) must lie inside the routed block's \
     outline."

let r_via_in_outline =
  route "via-in-outline" "Every logical via must lie inside the outline."

let r_trunk_in_channel =
  route "trunk-in-channel"
    "Every trunk must sit inside the x extent of the channel its track \
     belongs to."

let r_track_separation =
  route "track-separation"
    "Two trunks sharing a channel must be at least half the sum of their \
     bundle widths apart."

let r_net_routed = route "net-routed" "Every capacitor must have a trunk."

let r_net_coverage =
  route "net-coverage"
    "The connected groups of each capacitor's net must cover exactly its \
     placed cells."

let r_parallel_consistency =
  route "parallel-consistency"
    "Bundle widths recorded on wires and vias must match the declared \
     parallel-wire plan."

let r_reserved_direction =
  route "reserved-direction"
    "Wires must respect their layer's reserved direction (trunks vertical, \
     bridges and stubs horizontal)."

let r_extent =
  route "extent" "The routed block must have strictly positive width and \
                  height."

let r_top_plate =
  route "top-plate"
    "A multi-cell array must carry a non-empty top-plate net of positive \
     length."

let r_parallel_positive =
  route "parallel-positive"
    "Every capacitor's parallel-wire count must be at least 1."

let r_unknown =
  route "check"
    "Fallback for a post-route check the registry does not know by id; \
     treated as an error."

let rules =
  [ r_wire_in_outline; r_via_in_outline; r_trunk_in_channel;
    r_track_separation; r_net_routed; r_net_coverage; r_parallel_consistency;
    r_reserved_direction; r_extent; r_top_plate; r_parallel_positive;
    r_unknown ]

let of_check_id = function
  | "wire-in-outline" -> r_wire_in_outline
  | "via-in-outline" -> r_via_in_outline
  | "trunk-in-channel" -> r_trunk_in_channel
  | "track-separation" -> r_track_separation
  | "net-routed" -> r_net_routed
  | "net-coverage" -> r_net_coverage
  | "parallel-consistency" -> r_parallel_consistency
  | "reserved-direction" -> r_reserved_direction
  | _ -> r_unknown

let of_violation (v : Ccroute.Check.violation) =
  let rule = of_check_id v.Ccroute.Check.rule in
  let detail =
    if rule == r_unknown then
      Printf.sprintf "[%s] %s" v.Ccroute.Check.rule v.Ccroute.Check.detail
    else v.Ccroute.Check.detail
  in
  Diagnostic.make rule detail

let check_extensions (layout : Ccroute.Layout.t) =
  let out = ref [] in
  let emit rule ?loc fmt =
    Printf.ksprintf (fun d -> out := Diagnostic.make ?loc rule d :: !out) fmt
  in
  if not (layout.Ccroute.Layout.width > 0. && layout.Ccroute.Layout.height > 0.)
  then
    emit r_extent "routed block is %g x %g um" layout.Ccroute.Layout.width
      layout.Ccroute.Layout.height;
  let cells =
    layout.Ccroute.Layout.placement.Ccgrid.Placement.rows
    * layout.Ccroute.Layout.placement.Ccgrid.Placement.cols
  in
  if cells >= 2 then begin
    if layout.Ccroute.Layout.top_wires = [] then
      emit r_top_plate "top-plate net has no wires"
    else if not (layout.Ccroute.Layout.top_length > 0.) then
      emit r_top_plate "top-plate wirelength is %g um"
        layout.Ccroute.Layout.top_length
  end;
  Array.iteri
    (fun k p ->
       if p < 1 then
         emit r_parallel_positive ~loc:(Printf.sprintf "C_%d" k)
           "parallel-wire count %d is below 1" p)
    layout.Ccroute.Layout.p_of_cap;
  List.rev !out

let check layout =
  List.map of_violation (Ccroute.Check.run layout) @ check_extensions layout
