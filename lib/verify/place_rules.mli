(** Placement rules: the common-centroid invariants (Sec. III) a placement
    must satisfy before routing, extraction or any mismatch statistic
    computed from it means anything.

    When the grid is structurally broken (["place/well-formed"]) only that
    rule fires — the remaining checks assume a well-shaped grid. *)

(** ["place/well-formed"] *)
val r_well_formed : Rule.t

(** ["place/grid-coverage"] *)
val r_grid_coverage : Rule.t

(** ["place/cell-count"] *)
val r_cell_count : Rule.t

(** ["place/binary-weights"] *)
val r_binary_weights : Rule.t

(** ["place/mirror-symmetry"] *)
val r_mirror : Rule.t

(** ["place/centroid"] *)
val r_centroid : Rule.t

(** ["place/lsb-pair-centroid"] *)
val r_lsb_pair : Rule.t

(** ["place/dispersion"] *)
val r_dispersion : Rule.t

(** Every rule this module owns. *)
val rules : Rule.t list

(** [check ?centroid_tol ?dispersion_bound tech placement].

    [centroid_tol] (um, default [1e-6]) bounds the distance between each
    multi-cell capacitor's centroid and the array centre — constructive
    placements are exact to float round-off ([< 1e-15] um in practice).
    [dispersion_bound] (default [1.1]) bounds the overall weighted RMS
    dispersion relative to the array RMS; every shipped style stays below
    [1.0]. *)
val check :
  ?centroid_tol:float ->
  ?dispersion_bound:float ->
  Tech.Process.t ->
  Ccgrid.Placement.t ->
  Diagnostic.t list
