(** The verification engine: one entry point per pipeline stage, plus the
    gate the flow uses to reject bad artifacts before extraction.

    Stage checkers return plain {!Diagnostic.t} lists; [[]] means clean.
    {!gate} turns Error-severity findings (or any finding under
    [~werror:true]) into a {!Rejected} exception carrying the full list,
    so callers can render it with {!Report}. *)

(** Raised by {!assert_clean}.  [what] names the rejected artifact;
    [diagnostics] is every finding of the failing run (not only the
    errors), already sorted. *)
exception
  Rejected of {
    what : string;
    diagnostics : Diagnostic.t list;
  }

(** [check_tech tech] — the ["tech/"] rules. *)
val check_tech : Tech.Process.t -> Diagnostic.t list

(** [check_style ~bits style] — the ["style/"] rules. *)
val check_style : bits:int -> Ccplace.Style.t -> Diagnostic.t list

(** [check_placement ?centroid_tol ?dispersion_bound tech placement] — the
    ["place/"] rules (see {!Place_rules.check} for the tolerances). *)
val check_placement :
  ?centroid_tol:float ->
  ?dispersion_bound:float ->
  Tech.Process.t ->
  Ccgrid.Placement.t ->
  Diagnostic.t list

(** [check_layout layout] — the ["route/"] rules only. *)
val check_layout : Ccroute.Layout.t -> Diagnostic.t list

(** [check_artifacts layout] audits everything a routed layout carries:
    its tech description, its placement and the layout itself — the full
    pre-extraction trust check. *)
val check_artifacts : Ccroute.Layout.t -> Diagnostic.t list

(** [lint ?parallel ?tech ~bits style] is the staged whole-pipeline lint:
    tech and style rules first; when those are error-free the style is
    placed and the placement rules run; when those are error-free too the
    placement is routed (with [parallel], default single wires) and the
    routing rules run.  Staging means a broken early artifact cannot crash
    a later stage — the linter reports instead of raising. *)
val lint :
  ?parallel:(int -> int) ->
  ?tech:Tech.Process.t ->
  bits:int ->
  Ccplace.Style.t ->
  Diagnostic.t list

(** [lint_placement ?parallel ?tech placement] is {!lint} for a prebuilt
    (e.g. loaded) placement: tech and placement rules, then — only when
    error-free — routing and the routing rules. *)
val lint_placement :
  ?parallel:(int -> int) ->
  ?tech:Tech.Process.t ->
  Ccgrid.Placement.t ->
  Diagnostic.t list

(** [has_errors diags]. *)
val has_errors : Diagnostic.t list -> bool

(** [worst diags] is the most severe finding's severity, if any. *)
val worst : Diagnostic.t list -> Rule.severity option

(** [gate ?werror diags] is [Ok ()] when nothing disqualifying was found,
    [Error diags] (sorted) otherwise.  [werror] (default [false]) promotes
    warnings to disqualifying. *)
val gate : ?werror:bool -> Diagnostic.t list -> (unit, Diagnostic.t list) result

(** [assert_clean ?werror ?what diags] raises {!Rejected} when {!gate}
    fails; [what] names the artifact in the exception's printed form. *)
val assert_clean : ?werror:bool -> ?what:string -> Diagnostic.t list -> unit
