let lvs ?(severity = Rule.Error) rule_id doc =
  Rule.make ~id:("lvs/" ^ rule_id) ~category:Rule.Lvs ~severity ~doc

let r_short =
  lvs "short"
    "No extracted component may join shapes belonging to two different \
     capacitor nets (or a capacitor net and the shared top plate)."

let r_open =
  lvs "open"
    "Every capacitor net must extract as one single component reaching its \
     driver terminal."

let r_floating_cell =
  lvs "floating-cell"
    "Every placed unit cell's bottom plate must be reachable from its \
     capacitor's driver terminal through drawn geometry."

let r_dangling = lvs "dangling" ~severity:Rule.Warning
    "A component carrying net-labelled shapes but neither a cell plate nor \
     a driver terminal is dead metal (antenna)."

let r_top_open =
  lvs "top-open"
    "The shared top plate must extract as one single component spanning \
     every cell's top pad."

let r_netbuild_mismatch =
  lvs "netbuild-mismatch"
    "The cells reached by a capacitor's extracted driver component must be \
     exactly the cell_nodes of its Netbuild RC tree."

let rules =
  [ r_short; r_open; r_floating_cell; r_dangling; r_top_open;
    r_netbuild_mismatch ]
