exception
  Rejected of {
    what : string;                   (* artifact name, e.g. "spiral 8-bit" *)
    diagnostics : Diagnostic.t list; (* full sorted run, not only errors *)
  }

let () =
  Printexc.register_printer (function
    | Rejected { what; diagnostics } ->
      let shown =
        List.filteri (fun i _ -> i < 8) (Diagnostic.errors diagnostics)
      in
      Some
        (Format.asprintf "@[<v>Verify.Engine.Rejected (%s): %s%a@]" what
           (Report.summary_line diagnostics)
           (Format.pp_print_list ~pp_sep:(fun _ () -> ())
              (fun ppf d -> Format.fprintf ppf "@,  %a" Diagnostic.pp d))
           shown)
    | _ -> None)

(* Each stage checker is wrapped in a telemetry span and feeds the
   per-rule fire counters, so both lint runs and flow-gate runs show up
   in traces and metric dumps. *)
let instrumented artifact diags =
  if Telemetry.Metrics.enabled () then begin
    Telemetry.Metrics.incr ~label:artifact "verify/checks_total";
    List.iter
      (fun (d : Diagnostic.t) ->
         Telemetry.Metrics.incr ~label:d.Diagnostic.rule.Rule.id
           "verify/rule_fired_total")
      diags
  end;
  diags

let check_tech tech =
  Telemetry.Span.with_ ~name:"verify.tech" (fun () ->
      instrumented "tech" (Tech_rules.check tech))

let check_style ~bits style =
  Telemetry.Span.with_ ~name:"verify.style" (fun () ->
      instrumented "style" (Style_rules.check ~bits style))

let check_placement ?centroid_tol ?dispersion_bound tech placement =
  Telemetry.Span.with_ ~name:"verify.placement" (fun () ->
      instrumented "placement"
        (Place_rules.check ?centroid_tol ?dispersion_bound tech placement))

let check_layout layout =
  Telemetry.Span.with_ ~name:"verify.layout" (fun () ->
      instrumented "layout" (Route_rules.check layout))

let check_artifacts (layout : Ccroute.Layout.t) =
  let tech = layout.Ccroute.Layout.tech in
  check_tech tech
  @ check_placement tech layout.Ccroute.Layout.placement
  @ check_layout layout

let has_errors diags =
  List.exists (fun d -> Diagnostic.severity d = Rule.Error) diags

let worst diags =
  List.fold_left
    (fun acc d ->
       match acc with
       | None -> Some (Diagnostic.severity d)
       | Some s ->
         if Rule.compare_severity (Diagnostic.severity d) s < 0 then
           Some (Diagnostic.severity d)
         else acc)
    None diags

let lint_placement ?parallel ?(tech = Tech.Process.finfet_12nm) placement =
  let pre = check_tech tech @ check_placement tech placement in
  if has_errors pre then pre
  else begin
    let p_of_cap = Option.value parallel ~default:(fun _ -> 1) in
    let layout = Ccroute.Layout.route tech ~p_of_cap placement in
    pre @ check_layout layout
  end

let lint ?parallel ?(tech = Tech.Process.finfet_12nm) ~bits style =
  let pre = check_tech tech @ check_style ~bits style in
  if has_errors pre then pre
  else begin
    let placement = Ccplace.Style.place ~bits style in
    let place_diags = check_placement tech placement in
    let pre = pre @ place_diags in
    if has_errors pre then pre
    else begin
      let p_of_cap = Option.value parallel ~default:(fun _ -> 1) in
      let layout = Ccroute.Layout.route tech ~p_of_cap placement in
      pre @ check_layout layout
    end
  end

let gate ?(werror = false) diags =
  let disqualifying d =
    match Diagnostic.severity d with
    | Rule.Error -> true
    | Rule.Warning -> werror
    | Rule.Info -> false
  in
  if List.exists disqualifying diags then Error (Diagnostic.sort diags)
  else Ok ()

let assert_clean ?werror ?(what = "artifact") diags =
  match gate ?werror diags with
  | Ok () -> ()
  | Error diagnostics -> raise (Rejected { what; diagnostics })
