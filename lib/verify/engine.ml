exception
  Rejected of {
    what : string;                   (* artifact name, e.g. "spiral 8-bit" *)
    diagnostics : Diagnostic.t list; (* full sorted run, not only errors *)
  }

let () =
  Printexc.register_printer (function
    | Rejected { what; diagnostics } ->
      let shown =
        List.filteri (fun i _ -> i < 8) (Diagnostic.errors diagnostics)
      in
      Some
        (Format.asprintf "@[<v>Verify.Engine.Rejected (%s): %s%a@]" what
           (Report.summary_line diagnostics)
           (Format.pp_print_list ~pp_sep:(fun _ () -> ())
              (fun ppf d -> Format.fprintf ppf "@,  %a" Diagnostic.pp d))
           shown)
    | _ -> None)

let check_tech = Tech_rules.check

let check_style = Style_rules.check

let check_placement = Place_rules.check

let check_layout = Route_rules.check

let check_artifacts (layout : Ccroute.Layout.t) =
  let tech = layout.Ccroute.Layout.tech in
  check_tech tech
  @ check_placement tech layout.Ccroute.Layout.placement
  @ check_layout layout

let has_errors diags =
  List.exists (fun d -> Diagnostic.severity d = Rule.Error) diags

let worst diags =
  List.fold_left
    (fun acc d ->
       match acc with
       | None -> Some (Diagnostic.severity d)
       | Some s ->
         if Rule.compare_severity (Diagnostic.severity d) s < 0 then
           Some (Diagnostic.severity d)
         else acc)
    None diags

let lint_placement ?parallel ?(tech = Tech.Process.finfet_12nm) placement =
  let pre = check_tech tech @ check_placement tech placement in
  if has_errors pre then pre
  else begin
    let p_of_cap = Option.value parallel ~default:(fun _ -> 1) in
    let layout = Ccroute.Layout.route tech ~p_of_cap placement in
    pre @ check_layout layout
  end

let lint ?parallel ?(tech = Tech.Process.finfet_12nm) ~bits style =
  let pre = check_tech tech @ check_style ~bits style in
  if has_errors pre then pre
  else begin
    let placement = Ccplace.Style.place ~bits style in
    let place_diags = check_placement tech placement in
    let pre = pre @ place_diags in
    if has_errors pre then pre
    else begin
      let p_of_cap = Option.value parallel ~default:(fun _ -> 1) in
      let layout = Ccroute.Layout.route tech ~p_of_cap placement in
      pre @ check_layout layout
    end
  end

let gate ?(werror = false) diags =
  let disqualifying d =
    match Diagnostic.severity d with
    | Rule.Error -> true
    | Rule.Warning -> werror
    | Rule.Info -> false
  in
  if List.exists disqualifying diags then Error (Diagnostic.sort diags)
  else Ok ()

let assert_clean ?werror ?(what = "artifact") diags =
  match gate ?werror diags with
  | Ok () -> ()
  | Error diagnostics -> raise (Rejected { what; diagnostics })
