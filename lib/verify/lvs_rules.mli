(** LVS rules: the layout-vs-schematic invariants certified by the
    {!Lvs} extraction engine in [lib/lvs].

    This module only declares the rule identities; the checking logic
    lives in [Lvs.Check] (which depends on [Verify], not the other way
    round — the registry stays free of geometry). *)

(** ["lvs/short"] *)
val r_short : Rule.t

(** ["lvs/open"] *)
val r_open : Rule.t

(** ["lvs/floating-cell"] *)
val r_floating_cell : Rule.t

(** ["lvs/dangling"] — warning severity *)
val r_dangling : Rule.t

(** ["lvs/top-open"] *)
val r_top_open : Rule.t

(** ["lvs/netbuild-mismatch"] *)
val r_netbuild_mismatch : Rule.t

(** Every rule this module owns. *)
val rules : Rule.t list
