let r_bits =
  Rule.make ~id:"style/bits-range" ~category:Rule.Style ~severity:Rule.Error
    ~doc:
      (Printf.sprintf
         "The DAC resolution must lie in [1, %d] (the binary-weight table's \
          supported range)."
         Ccgrid.Weights.max_bits)

let r_core_bits =
  Rule.make ~id:"style/block-core-bits" ~category:Rule.Style
    ~severity:Rule.Error
    ~doc:
      "A block-chessboard core must hold at least C_0..C_1 and leave at \
       least one MSB outside: core_bits in [1, bits - 1]."

let r_granularity =
  Rule.make ~id:"style/block-granularity" ~category:Rule.Style
    ~severity:Rule.Error
    ~doc:"A block-chessboard granularity (cells per block side) must be >= 1."

let r_unswept =
  Rule.make ~id:"style/block-granularity-unswept" ~category:Rule.Style
    ~severity:Rule.Warning
    ~doc:
      "The granularity is outside the set swept by the paper's tables \
       (powers of two capped by the MSB block count); results for it are \
       unstudied."

let rules = [ r_bits; r_core_bits; r_granularity; r_unswept ]

let check ~bits style =
  let out = ref [] in
  let emit rule ?loc fmt =
    Printf.ksprintf (fun d -> out := Diagnostic.make ?loc rule d :: !out) fmt
  in
  let bits_ok = bits >= 1 && bits <= Ccgrid.Weights.max_bits in
  if not bits_ok then
    emit r_bits "bits = %d outside [1, %d]" bits Ccgrid.Weights.max_bits;
  (match style with
   | Ccplace.Style.Spiral | Ccplace.Style.Chessboard | Ccplace.Style.Rowwise ->
     ()
   | Ccplace.Style.Block_chess { core_bits; granularity } ->
     if not (core_bits >= 1 && core_bits <= bits - 1) then
       emit r_core_bits "core_bits = %d outside [1, %d]" core_bits (bits - 1);
     if granularity < 1 then
       emit r_granularity "granularity = %d is below 1" granularity
     else if bits_ok
             && core_bits >= 1
             && core_bits <= bits - 1
             && not
                  (List.mem granularity
                     (Ccplace.Block_chess.granularities ~bits))
     then
       emit r_unswept "granularity = %d not in the swept set {%s}" granularity
         (String.concat ", "
            (List.map string_of_int
               (Ccplace.Block_chess.granularities ~bits))));
  List.rev !out
