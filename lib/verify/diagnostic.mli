(** One concrete finding: a {!Rule.t} violated at a particular place in a
    particular artifact. *)

type t = {
  rule : Rule.t;
  loc : string option;  (** what the finding is anchored to, e.g. ["C_3"],
                            ["cell (2,5)"], ["channel 4"] *)
  detail : string;      (** human-readable description with measured values *)
}

(** [make ?loc rule detail]. *)
val make : ?loc:string -> Rule.t -> string -> t

(** [makef ?loc rule fmt ...] formats the detail in place. *)
val makef : ?loc:string -> Rule.t -> ('a, unit, string, t) format4 -> 'a

val severity : t -> Rule.severity

(** Severity first (errors up), then rule id, then location, then detail —
    a deterministic total order for reporting. *)
val compare : t -> t -> int

(** [sort diags] is [diags] in {!compare} order. *)
val sort : t list -> t list

(** [count sev diags]. *)
val count : Rule.severity -> t list -> int

(** [errors diags] keeps only [Error]-severity findings. *)
val errors : t list -> t list

(** [rule_ids diags] is the sorted de-duplicated list of violated rule
    ids. *)
val rule_ids : t list -> string list

(** Renders as ["error[place/centroid] C_3: centroid off by ..."]. *)
val pp : Format.formatter -> t -> unit
