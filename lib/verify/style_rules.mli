(** Placement-style configuration rules: catch invalid or unstudied
    {!Ccplace.Style.t} configurations before any cell is placed. *)

(** ["style/bits-range"] *)
val r_bits : Rule.t

(** ["style/block-core-bits"] *)
val r_core_bits : Rule.t

(** ["style/block-granularity"] *)
val r_granularity : Rule.t

(** ["style/block-granularity-unswept"] *)
val r_unswept : Rule.t

(** Every rule this module owns. *)
val rules : Rule.t list

(** [check ~bits style] validates the (resolution, style) pair. *)
val check : bits:int -> Ccplace.Style.t -> Diagnostic.t list
