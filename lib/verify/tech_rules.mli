(** Technology/model sanity rules: a {!Tech.Process.t} (built in or loaded
    from a tech file) must describe a physically plausible process before
    any extraction result computed with it can be trusted. *)

(** ["tech/positive-resistance"] *)
val r_resistance : Rule.t

(** ["tech/positive-capacitance"] *)
val r_capacitance : Rule.t

(** ["tech/geometry"] *)
val r_geometry : Rule.t

(** ["tech/layer-stack"] *)
val r_stack : Rule.t

(** ["tech/statistics"] *)
val r_statistics : Rule.t

(** Every rule this module owns. *)
val rules : Rule.t list

(** [check tech] runs every tech rule; [[]] means clean. *)
val check : Tech.Process.t -> Diagnostic.t list
