let all =
  let rules =
    List.sort
      (fun a b -> String.compare a.Rule.id b.Rule.id)
      (Place_rules.rules @ Route_rules.rules @ Tech_rules.rules
       @ Style_rules.rules @ Lvs_rules.rules)
  in
  let rec dup = function
    | a :: (b :: _ as rest) ->
      if String.equal a.Rule.id b.Rule.id then Some a.Rule.id else dup rest
    | [ _ ] | [] -> None
  in
  match dup rules with
  | Some id -> invalid_arg ("Verify.Registry: duplicate rule id " ^ id)
  | None -> rules

let find id = List.find_opt (fun r -> String.equal r.Rule.id id) all

let by_category c = List.filter (fun r -> r.Rule.category = c) all

let ids = List.map (fun r -> r.Rule.id) all
