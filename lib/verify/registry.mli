(** The rule registry: every rule any checker can emit, aggregated from
    {!Place_rules}, {!Route_rules}, {!Tech_rules} and {!Style_rules}.

    Ids are guaranteed unique (checked at module initialisation) and the
    catalogue is sorted by id, so documentation, JSON output and tests all
    see one stable order. *)

(** Every registered rule, sorted by id.  Raises [Invalid_argument] at
    first use if two checker modules declare the same id. *)
val all : Rule.t list

(** [find id]. *)
val find : string -> Rule.t option

(** [by_category c] keeps the registered rules of one category, sorted. *)
val by_category : Rule.category -> Rule.t list

(** [ids] is the sorted list of every registered rule id. *)
val ids : string list
