let r_resistance =
  Rule.make ~id:"tech/positive-resistance" ~category:Rule.Tech
    ~severity:Rule.Error
    ~doc:
      "Via, plate and per-layer sheet resistances must be strictly positive \
       (the RC network is singular otherwise)."

let r_capacitance =
  Rule.make ~id:"tech/positive-capacitance" ~category:Rule.Tech
    ~severity:Rule.Error
    ~doc:
      "The unit capacitance must be strictly positive; per-layer area and \
       coupling capacitances and the top-substrate capacitance must be \
       non-negative."

let r_geometry =
  Rule.make ~id:"tech/geometry" ~category:Rule.Tech ~severity:Rule.Error
    ~doc:
      "Cell width/height and wire pitch must be strictly positive, cell \
       spacing non-negative, and the wire pitch smaller than the cell width \
       (channel tracks must fit next to a cell)."

let r_stack =
  Rule.make ~id:"tech/layer-stack" ~category:Rule.Tech ~severity:Rule.Error
    ~doc:
      "The metal stack must list M1, M2 and M3 exactly once each, in \
       monotone bottom-up order."

let r_statistics =
  Rule.make ~id:"tech/statistics" ~category:Rule.Tech ~severity:Rule.Error
    ~doc:
      "Statistical parameters must be sane: 0 <= rho_u < 1, a strictly \
       positive correlation length, non-negative gradient slope and mismatch \
       coefficient, and a finite gradient angle."

let rules = [ r_resistance; r_capacitance; r_geometry; r_stack; r_statistics ]

let check (tech : Tech.Process.t) =
  let out = ref [] in
  let emit rule ?loc fmt =
    Printf.ksprintf (fun d -> out := Diagnostic.make ?loc rule d :: !out) fmt
  in
  let layer_loc (l : Tech.Layer.t) =
    Format.asprintf "%a" Tech.Layer.pp_name l.Tech.Layer.name
  in
  (* resistances *)
  if not (tech.Tech.Process.via_resistance > 0.) then
    emit r_resistance "via resistance %g ohm is not positive"
      tech.Tech.Process.via_resistance;
  if not (tech.Tech.Process.plate_resistance > 0.) then
    emit r_resistance "plate resistance %g ohm is not positive"
      tech.Tech.Process.plate_resistance;
  List.iter
    (fun (l : Tech.Layer.t) ->
       if not (l.Tech.Layer.resistance > 0.) then
         emit r_resistance ~loc:(layer_loc l)
           "sheet resistance %g ohm/um is not positive" l.Tech.Layer.resistance)
    tech.Tech.Process.stack;
  (* capacitances *)
  if not (tech.Tech.Process.unit_cap > 0.) then
    emit r_capacitance "unit capacitance %g fF is not positive"
      tech.Tech.Process.unit_cap;
  if not (tech.Tech.Process.top_substrate_cap >= 0.) then
    emit r_capacitance "top-substrate capacitance %g fF/um is negative"
      tech.Tech.Process.top_substrate_cap;
  List.iter
    (fun (l : Tech.Layer.t) ->
       if not (l.Tech.Layer.capacitance >= 0.) then
         emit r_capacitance ~loc:(layer_loc l)
           "area capacitance %g fF/um is negative" l.Tech.Layer.capacitance;
       if not (l.Tech.Layer.coupling >= 0.) then
         emit r_capacitance ~loc:(layer_loc l)
           "coupling capacitance %g fF/um is negative" l.Tech.Layer.coupling)
    tech.Tech.Process.stack;
  (* geometry *)
  if not (tech.Tech.Process.cell_width > 0.) then
    emit r_geometry "cell width %g um is not positive"
      tech.Tech.Process.cell_width;
  if not (tech.Tech.Process.cell_height > 0.) then
    emit r_geometry "cell height %g um is not positive"
      tech.Tech.Process.cell_height;
  if not (tech.Tech.Process.cell_spacing >= 0.) then
    emit r_geometry "cell spacing %g um is negative"
      tech.Tech.Process.cell_spacing;
  if not (tech.Tech.Process.wire_pitch > 0.) then
    emit r_geometry "wire pitch %g um is not positive"
      tech.Tech.Process.wire_pitch
  else if tech.Tech.Process.cell_width > 0.
          && not (tech.Tech.Process.wire_pitch < tech.Tech.Process.cell_width)
  then
    emit r_geometry "wire pitch %g um is not smaller than the cell width %g um"
      tech.Tech.Process.wire_pitch tech.Tech.Process.cell_width;
  (* layer stack *)
  let names =
    List.map (fun (l : Tech.Layer.t) -> l.Tech.Layer.name)
      tech.Tech.Process.stack
  in
  if names <> [ Tech.Layer.M1; Tech.Layer.M2; Tech.Layer.M3 ] then
    emit r_stack "stack is [%s], expected [M1; M2; M3] bottom-up"
      (String.concat "; "
         (List.map (Format.asprintf "%a" Tech.Layer.pp_name) names));
  (* statistics *)
  if not (tech.Tech.Process.rho_u >= 0. && tech.Tech.Process.rho_u < 1.) then
    emit r_statistics "unit correlation rho_u %g outside [0, 1)"
      tech.Tech.Process.rho_u;
  if not (tech.Tech.Process.corr_length > 0.) then
    emit r_statistics "correlation length %g um is not positive"
      tech.Tech.Process.corr_length;
  if not (tech.Tech.Process.mismatch_coeff >= 0.) then
    emit r_statistics "mismatch coefficient %g is negative"
      tech.Tech.Process.mismatch_coeff;
  if not (tech.Tech.Process.gradient_ppm >= 0.) then
    emit r_statistics "gradient slope %g ppm/um is negative"
      tech.Tech.Process.gradient_ppm;
  if not (Float.is_finite tech.Tech.Process.gradient_theta) then
    emit r_statistics "gradient angle %g rad is not finite"
      tech.Tech.Process.gradient_theta;
  List.rev !out
