open Ccgrid

let r_well_formed =
  Rule.make ~id:"place/well-formed" ~category:Rule.Placement
    ~severity:Rule.Error
    ~doc:
      "The placement record must be structurally valid: bits in range, \
       positive grid dimensions, a counts array of length bits+1, an \
       assignment matrix matching the grid, and a unit multiplier >= 1."

let r_grid_coverage =
  Rule.make ~id:"place/grid-coverage" ~category:Rule.Placement
    ~severity:Rule.Error
    ~doc:
      "Every grid cell must hold a declared capacitor id or a dummy — no \
       holes or out-of-range ids."

let r_cell_count =
  Rule.make ~id:"place/cell-count" ~category:Rule.Placement
    ~severity:Rule.Error
    ~doc:
      "Each capacitor must occupy exactly counts[k] grid cells — the cell \
       population realises the declared ratios."

let r_binary_weights =
  Rule.make ~id:"place/binary-weights" ~category:Rule.Placement
    ~severity:Rule.Error
    ~doc:
      "The declared counts must be the binary weights 1, 1, 2, ..., 2^(N-1) \
       scaled by the unit multiplier — what the DAC transfer and INL/DNL \
       models assume."

let r_mirror =
  Rule.make ~id:"place/mirror-symmetry" ~category:Rule.Placement
    ~severity:Rule.Error
    ~doc:
      "The assignment must be invariant under 180-degree rotation about the \
       array centre, with the split pair C_0/C_1 mirroring each other — the \
       pair discipline that cancels linear gradients."

let r_centroid =
  Rule.make ~id:"place/centroid" ~category:Rule.Placement ~severity:Rule.Error
    ~doc:
      "Every capacitor with at least two cells must have its centroid on \
       the array centre (within tolerance) — the common-centroid property \
       itself."

let r_lsb_pair =
  Rule.make ~id:"place/lsb-pair-centroid" ~category:Rule.Placement
    ~severity:Rule.Error
    ~doc:
      "C_0 and C_1 are single-cell capacitors placed as a split pair: their \
       joint centroid must be on the array centre."

let r_dispersion =
  Rule.make ~id:"place/dispersion" ~category:Rule.Placement
    ~severity:Rule.Warning
    ~doc:
      "The count-weighted RMS dispersion of the capacitors must stay within \
       the declared bound of the whole-array RMS — placements above it \
       waste the correlated-mismatch benefit of compactness."

let rules =
  [ r_well_formed; r_grid_coverage; r_cell_count; r_binary_weights; r_mirror;
    r_centroid; r_lsb_pair; r_dispersion ]

let dummy = -1

type emitter = Rule.t -> ?loc:string -> string -> unit

let structural (p : Placement.t) (emit : emitter) =
  let ok = ref true in
  let fail rule ?loc fmt =
    Printf.ksprintf
      (fun d ->
         ok := false;
         emit rule ?loc d)
      fmt
  in
  if p.Placement.bits < 1 || p.Placement.bits > Weights.max_bits then
    fail r_well_formed "bits = %d outside [1, %d]" p.Placement.bits
      Weights.max_bits;
  if p.Placement.rows < 1 || p.Placement.cols < 1 then
    fail r_well_formed "empty %dx%d grid" p.Placement.rows p.Placement.cols;
  if p.Placement.unit_multiplier < 1 then
    fail r_well_formed "unit multiplier %d is below 1"
      p.Placement.unit_multiplier;
  if Array.length p.Placement.counts <> p.Placement.bits + 1 then
    fail r_well_formed "counts has %d entries, expected bits + 1 = %d"
      (Array.length p.Placement.counts)
      (p.Placement.bits + 1);
  if Array.length p.Placement.assign <> p.Placement.rows then
    fail r_well_formed "assignment has %d rows, grid declares %d"
      (Array.length p.Placement.assign)
      p.Placement.rows
  else
    Array.iteri
      (fun row r ->
         if Array.length r <> p.Placement.cols then
           fail r_well_formed ~loc:(Printf.sprintf "row %d" row)
             "assignment row has %d columns, grid declares %d"
             (Array.length r) p.Placement.cols)
      p.Placement.assign;
  !ok

let valid_id (p : Placement.t) id =
  id = dummy || (id >= 0 && id <= p.Placement.bits)

let check_coverage (p : Placement.t) (emit : emitter) =
  (* one diagnostic per distinct invalid id, anchored at its first cell *)
  let seen = Hashtbl.create 4 in
  for row = 0 to p.Placement.rows - 1 do
    for col = 0 to p.Placement.cols - 1 do
      let id = p.Placement.assign.(row).(col) in
      if not (valid_id p id) then begin
        let count, cell =
          Option.value ~default:(0, (row, col)) (Hashtbl.find_opt seen id)
        in
        Hashtbl.replace seen id (count + 1, cell)
      end
    done
  done;
  List.iter
    (fun (id, (count, (row, col))) ->
       emit r_grid_coverage ~loc:(Printf.sprintf "cell (%d,%d)" row col)
         (Printf.sprintf
            "%d cell(s) hold invalid id %d (valid: dummy %d or 0..%d)" count
            id dummy p.Placement.bits))
    (List.sort
       (fun (id_a, (n_a, (r_a, c_a))) (id_b, (n_b, (r_b, c_b))) ->
          match Int.compare id_a id_b with
          | 0 -> begin
              match Int.compare n_a n_b with
              | 0 -> begin
                  match Int.compare r_a r_b with
                  | 0 -> Int.compare c_a c_b
                  | c -> c
                end
              | c -> c
            end
          | c -> c)
       (Hashtbl.fold (fun id v acc -> (id, v) :: acc) seen []))

let occupancy (p : Placement.t) =
  let occ = Array.make (p.Placement.bits + 1) 0 in
  Array.iter
    (fun row ->
       Array.iter
         (fun id -> if id >= 0 && id <= p.Placement.bits then occ.(id) <- occ.(id) + 1)
         row)
    p.Placement.assign;
  occ

let check_cell_count (p : Placement.t) occ (emit : emitter) =
  Array.iteri
    (fun k expected ->
       if occ.(k) <> expected then
         emit r_cell_count ~loc:(Printf.sprintf "C_%d" k)
           (Printf.sprintf "occupies %d cells, counts declare %d" occ.(k)
              expected))
    p.Placement.counts

let check_binary_weights (p : Placement.t) (emit : emitter) =
  let expected =
    Weights.scale
      (Weights.unit_counts ~bits:p.Placement.bits)
      ~by:p.Placement.unit_multiplier
  in
  Array.iteri
    (fun k want ->
       if p.Placement.counts.(k) <> want then
         emit r_binary_weights ~loc:(Printf.sprintf "C_%d" k)
           (Printf.sprintf "declared count %d, binary weight is %d (x%d units)"
              p.Placement.counts.(k) want p.Placement.unit_multiplier))
    expected

let check_mirror (p : Placement.t) (emit : emitter) =
  let rows = p.Placement.rows and cols = p.Placement.cols in
  let mismatches = ref 0 and example = ref None in
  for row = 0 to rows - 1 do
    for col = 0 to cols - 1 do
      let c = Cell.make ~row ~col in
      let m = Cell.mirror ~rows ~cols c in
      (* visit each unordered pair once *)
      if Cell.compare c m <= 0 then begin
        let id = p.Placement.assign.(row).(col) in
        let mid = p.Placement.assign.(m.Cell.row).(m.Cell.col) in
        let fine =
          (not (valid_id p id))   (* invalid ids are grid-coverage's finding *)
          || (not (valid_id p mid))
          || id = mid
          || (id = 0 && mid = 1)
          || (id = 1 && mid = 0)
        in
        if not fine then begin
          incr mismatches;
          if !example = None then example := Some (c, id, m, mid)
        end
      end
    done
  done;
  match !example with
  | None -> ()
  | Some (c, id, m, mid) ->
    let name k = if k = dummy then "dummy" else Printf.sprintf "C_%d" k in
    emit r_mirror
      ~loc:(Format.asprintf "cell %a" Cell.pp c)
      (Printf.sprintf
         "%d mirror pair(s) disagree; e.g. %s holds %s but its mirror %s \
          holds %s"
         !mismatches
         (Format.asprintf "%a" Cell.pp c)
         (name id)
         (Format.asprintf "%a" Cell.pp m)
         (name mid))

let centroid_of tech p cells =
  Geom.Point.centroid (List.map (Placement.position tech p) cells)

let check_centroid ~tol tech (p : Placement.t) (emit : emitter) =
  for k = 0 to p.Placement.bits do
    match Placement.cells_of p k with
    | [] | [ _ ] -> ()
    | cells ->
      let err = Geom.Point.distance (centroid_of tech p cells) Geom.Point.origin in
      if err > tol then
        emit r_centroid ~loc:(Printf.sprintf "C_%d" k)
          (Printf.sprintf "centroid is %.4g um off the array centre (tol %g)"
             err tol)
  done

let check_lsb_pair ~tol tech (p : Placement.t) (emit : emitter) =
  match Placement.cells_of p 0 @ Placement.cells_of p 1 with
  | [] | [ _ ] -> ()
  | cells ->
    let err = Geom.Point.distance (centroid_of tech p cells) Geom.Point.origin in
    if err > tol then
      emit r_lsb_pair ~loc:"C_0/C_1"
        (Printf.sprintf
           "joint centroid is %.4g um off the array centre (tol %g)" err tol)

let check_dispersion ~bound tech (p : Placement.t) (emit : emitter) =
  let overall = Dispersion.overall tech p in
  if overall > bound then
    emit r_dispersion
      (Printf.sprintf
         "overall weighted dispersion %.3f exceeds the declared bound %.3f"
         overall bound)

let check ?(centroid_tol = 1e-6) ?(dispersion_bound = 1.1) tech
    (p : Placement.t) =
  let out = ref [] in
  let emit : emitter = fun rule ?loc detail -> out := Diagnostic.make ?loc rule detail :: !out in
  if structural p emit then begin
    check_coverage p emit;
    let occ = occupancy p in
    check_cell_count p occ emit;
    check_binary_weights p emit;
    check_mirror p emit;
    check_centroid ~tol:centroid_tol tech p emit;
    check_lsb_pair ~tol:centroid_tol tech p emit;
    check_dispersion ~bound:dispersion_bound tech p emit
  end;
  List.rev !out
