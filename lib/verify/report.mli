(** Diagnostic reporters: a pretty text form for terminals and a stable
    machine-readable JSON form for tooling.

    Both render diagnostics in {!Diagnostic.compare} order (errors first),
    so output is deterministic regardless of checker execution order. *)

(** [pp_text ppf diags] prints one line per diagnostic followed by a
    summary line ("clean" or "2 errors, 1 warning"). *)
val pp_text : Format.formatter -> Diagnostic.t list -> unit

(** [text diags] is {!pp_text} to a string. *)
val text : Diagnostic.t list -> string

(** [summary_line diags] is just the final counts line. *)
val summary_line : Diagnostic.t list -> string

(** [json_escape s] escapes [s] for embedding in a JSON string literal. *)
val json_escape : string -> string

(** [json ?label diags] is a self-contained JSON object:

    {v
    {"version": 1,
     "label": "spiral 8-bit",
     "summary": {"errors": 1, "warnings": 0, "infos": 0, "total": 1},
     "diagnostics": [
       {"rule": "place/centroid", "category": "placement",
        "severity": "error", "loc": "C_3", "detail": "..."}]}
    v}

    [label] (optional) names the linted configuration. *)
val json : ?label:string -> Diagnostic.t list -> string

(** [json_rules ()] renders the whole {!Registry} catalogue as JSON
    (id, category, severity, doc per rule). *)
val json_rules : unit -> string
