(** Routing rules: the {!Ccroute.Check} post-route invariants absorbed
    into the registry, plus layout-level extensions (positive extent,
    routed top plate, valid parallel-wire plan). *)

(** ["route/wire-in-outline"] *)
val r_wire_in_outline : Rule.t

(** ["route/via-in-outline"] *)
val r_via_in_outline : Rule.t

(** ["route/trunk-in-channel"] *)
val r_trunk_in_channel : Rule.t

(** ["route/track-separation"] *)
val r_track_separation : Rule.t

(** ["route/net-routed"] *)
val r_net_routed : Rule.t

(** ["route/net-coverage"] *)
val r_net_coverage : Rule.t

(** ["route/parallel-consistency"] *)
val r_parallel_consistency : Rule.t

(** ["route/reserved-direction"] *)
val r_reserved_direction : Rule.t

(** ["route/extent"] *)
val r_extent : Rule.t

(** ["route/top-plate"] *)
val r_top_plate : Rule.t

(** ["route/parallel-positive"] *)
val r_parallel_positive : Rule.t

(** ["route/check"] — fallback for a
    {!Ccroute.Check} rule id the registry does not know yet *)
val r_unknown : Rule.t

(** Every rule this module owns. *)
val rules : Rule.t list

(** [of_violation v] maps a {!Ccroute.Check.violation} into the registry. *)
val of_violation : Ccroute.Check.violation -> Diagnostic.t

(** [check layout] runs {!Ccroute.Check.run} plus the extensions. *)
val check : Ccroute.Layout.t -> Diagnostic.t list
