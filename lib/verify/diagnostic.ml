type t = {
  rule : Rule.t;
  loc : string option;
  detail : string;
}

let make ?loc rule detail = { rule; loc; detail }

let makef ?loc rule fmt = Printf.ksprintf (make ?loc rule) fmt

let severity t = t.rule.Rule.severity

let compare a b =
  match Rule.compare_severity a.rule.Rule.severity b.rule.Rule.severity with
  | 0 -> begin
      match String.compare a.rule.Rule.id b.rule.Rule.id with
      | 0 -> begin
          match Option.compare String.compare a.loc b.loc with
          | 0 -> String.compare a.detail b.detail
          | c -> c
        end
      | c -> c
    end
  | c -> c

let sort diags = List.sort compare diags

let count sev diags =
  List.length (List.filter (fun d -> severity d = sev) diags)

let errors diags = List.filter (fun d -> severity d = Rule.Error) diags

let rule_ids diags =
  List.sort_uniq String.compare (List.map (fun d -> d.rule.Rule.id) diags)

let pp ppf t =
  Format.fprintf ppf "%s[%s]%s %s"
    (Rule.severity_name t.rule.Rule.severity)
    t.rule.Rule.id
    (match t.loc with None -> "" | Some l -> " " ^ l ^ ":")
    t.detail
