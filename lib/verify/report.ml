let summary_counts diags =
  ( Diagnostic.count Rule.Error diags,
    Diagnostic.count Rule.Warning diags,
    Diagnostic.count Rule.Info diags )

let summary_line diags =
  let errors, warnings, infos = summary_counts diags in
  if errors = 0 && warnings = 0 && infos = 0 then "clean"
  else begin
    let part n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s") in
    String.concat ", "
      (List.filter_map
         (fun (n, what) -> if n = 0 then None else Some (part n what))
         [ (errors, "error"); (warnings, "warning"); (infos, "info") ])
  end

let pp_text ppf diags =
  let diags = Diagnostic.sort diags in
  List.iter (fun d -> Format.fprintf ppf "%a@." Diagnostic.pp d) diags;
  Format.fprintf ppf "%s@." (summary_line diags)

let text diags = Format.asprintf "%a" pp_text diags

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_diagnostic b (d : Diagnostic.t) =
  Buffer.add_string b
    (Printf.sprintf "{\"rule\": \"%s\", \"category\": \"%s\", \"severity\": \"%s\""
       (json_escape d.Diagnostic.rule.Rule.id)
       (Rule.category_name d.Diagnostic.rule.Rule.category)
       (Rule.severity_name d.Diagnostic.rule.Rule.severity));
  (match d.Diagnostic.loc with
   | None -> ()
   | Some loc ->
     Buffer.add_string b (Printf.sprintf ", \"loc\": \"%s\"" (json_escape loc)));
  Buffer.add_string b
    (Printf.sprintf ", \"detail\": \"%s\"}" (json_escape d.Diagnostic.detail))

let json ?label diags =
  let diags = Diagnostic.sort diags in
  let errors, warnings, infos = summary_counts diags in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"version\": 1";
  (match label with
   | None -> ()
   | Some l ->
     Buffer.add_string b (Printf.sprintf ", \"label\": \"%s\"" (json_escape l)));
  Buffer.add_string b
    (Printf.sprintf
       ", \"summary\": {\"errors\": %d, \"warnings\": %d, \"infos\": %d, \
        \"total\": %d}, \"diagnostics\": ["
       errors warnings infos (List.length diags));
  List.iteri
    (fun i d ->
       if i > 0 then Buffer.add_string b ", ";
       json_diagnostic b d)
    diags;
  Buffer.add_string b "]}";
  Buffer.contents b

let json_rules () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"version\": 1, \"rules\": [";
  List.iteri
    (fun i (r : Rule.t) ->
       if i > 0 then Buffer.add_string b ", ";
       Buffer.add_string b
         (Printf.sprintf
            "{\"id\": \"%s\", \"category\": \"%s\", \"severity\": \"%s\", \
             \"doc\": \"%s\"}"
            (json_escape r.Rule.id)
            (Rule.category_name r.Rule.category)
            (Rule.severity_name r.Rule.severity)
            (json_escape r.Rule.doc)))
    Registry.all;
  Buffer.add_string b "]}";
  Buffer.contents b
