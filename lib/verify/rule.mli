(** A verification rule: the static identity of one invariant the layout
    pipeline promises to uphold.

    Rules are data, not code: each checker module declares the rules it
    owns and {!Registry} aggregates them into the catalogue that backs
    reporting, documentation and the [ccgen lint] CLI.  A rule never
    changes at runtime — what varies is the set of {!Diagnostic.t}
    instances the checkers emit against it. *)

type severity =
  | Error    (** the artifact is unusable; metrics computed from it lie *)
  | Warning  (** suspicious but not disqualifying; promoted by [--werror] *)
  | Info     (** advisory only *)

type category =
  | Placement  (** grid/assignment invariants (weights, centroid, symmetry) *)
  | Routing    (** routed-layout invariants (outline, tracks, nets) *)
  | Tech       (** process/technology description sanity *)
  | Style      (** placement-style configuration validity *)
  | Lvs        (** layout-vs-schematic: extracted connectivity vs intent *)

type t = {
  id : string;        (** stable machine id, e.g. ["place/centroid"] *)
  category : category;
  severity : severity;
  doc : string;       (** one-sentence contract, used by docs and reports *)
}

val make :
  id:string -> category:category -> severity:severity -> doc:string -> t

(** [compare_severity a b] orders [Error < Warning < Info] (most severe
    first), so sorting diagnostics by severity surfaces errors. *)
val compare_severity : severity -> severity -> int

(** [severity_name s] is ["error"], ["warning"] or ["info"]. *)
val severity_name : severity -> string

(** [category_name c] is ["placement"], ["routing"], ["tech"], ["style"]
    or ["lvs"]. *)
val category_name : category -> string

val pp_severity : Format.formatter -> severity -> unit
val pp : Format.formatter -> t -> unit
