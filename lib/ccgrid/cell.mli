(** Grid cells of the common-centroid matrix.

    A cell is addressed by [(row, col)] with row 0 at the {e bottom} of the
    array (nearest the switch/driver cluster, Sec. IV-B3) and col 0 at the
    left.  The {e doubled centred} coordinate system [(u, v)] maps cell
    [(row, col)] of an [rows x cols] array to
    [u = 2 row - (rows - 1)], [v = 2 col - (cols - 1)], so the array centre
    is the origin and the common-centroid mirror of [(u, v)] is
    [(-u, -v)] for every array size. *)

type t = {
  row : int;
  col : int;
}

val make : row:int -> col:int -> t
val equal : t -> t -> bool
val compare : t -> t -> int

(** [mirror ~rows ~cols c] is the diagonally symmetric cell
    [(rows-1-row, cols-1-col)] (Sec. IV-A: reflection through the CC point). *)
val mirror : rows:int -> cols:int -> t -> t

(** [centered ~rows ~cols c] is [(u, v)] in doubled centred coordinates. *)
val centered : rows:int -> cols:int -> t -> int * int

(** [ring ~rows ~cols c] is the Chebyshev ring index around the centre in
    doubled coordinates: [max |u| |v|]. *)
val ring : rows:int -> cols:int -> t -> int

(** [adjacent a b] is true when the cells share an edge (4-neighbourhood). *)
val adjacent : t -> t -> bool

(** [neighbors ~rows ~cols c] lists the in-bounds 4-neighbours. *)
val neighbors : rows:int -> cols:int -> t -> t list

(** [in_bounds ~rows ~cols c]. *)
val in_bounds : rows:int -> cols:int -> t -> bool

(** [spiral_order ~rows ~cols] lists every cell of the array sorted
    centre-outwards: by ring, then by angle walking counter-clockwise from
    the positive-u (upward) direction.  Deterministic; used by the spiral
    placement (Sec. IV-A) and by block-chessboard corridor construction. *)
val spiral_order : rows:int -> cols:int -> t list

val pp : Format.formatter -> t -> unit
