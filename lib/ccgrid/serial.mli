(** Text serialisation of placements.

    A stable, human-diffable format so placements can be saved from one
    tool invocation and routed/analysed in another (or edited by hand and
    re-verified):

    {v
    ccdac-placement v1
    bits 6 rows 8 cols 8 multiplier 1 style spiral
    counts 1 1 2 4 8 16 32
    6 6 6 6 6 6 6 6
    ...                  (one row per line, top row first; '.' = dummy)
    v}

    Cell tokens are the {!Render.glyph} alphabet: 0-9 then A-Z. *)

(** [to_string placement].  Raises [Invalid_argument] beyond 36
    capacitors (the glyph alphabet). *)
val to_string : Placement.t -> string

(** [of_string text] parses and validates; returns [Error msg] on any
    syntax or consistency problem (wrong counts, bad tokens, size
    mismatch). *)
val of_string : string -> (Placement.t, string) result

(** [save placement ~path] / [load ~path] file wrappers.  [load] returns
    [Error] for unreadable files too. *)
val save : Placement.t -> path:string -> unit

val load : path:string -> (Placement.t, string) result
