(** ASCII rendering of placements and simple overlays — the repo's
    counterpart of the paper's Figs. 2, 4 and 5. *)

(** [glyph id] is the single character used for capacitor [id]:
    ['0'..'9'], then ['A'..], and ['.'] for dummies. *)
val glyph : int -> char

(** [ascii placement] draws the array, row 0 (driver side) at the bottom,
    one glyph per cell, columns separated by a space. *)
val ascii : Placement.t -> string

(** [ascii_highlight placement ~cap] draws capacitor [cap]'s cells with
    their glyph and every other cell as ['-'] — useful to show one
    capacitor's connected groups. *)
val ascii_highlight : Placement.t -> cap:int -> string

(** [legend placement] is a one-line key "0:n0 1:n1 ..." of cell counts. *)
val legend : Placement.t -> string
