let max_bits = 14

let check_bits bits =
  if bits < 1 || bits > max_bits then
    invalid_arg
      (Printf.sprintf "Weights: bits must be in [1, %d], got %d" max_bits bits)

let unit_counts ~bits =
  check_bits bits;
  Array.init (bits + 1) (fun k -> if k = 0 then 1 else 1 lsl (k - 1))

let total_units ~bits =
  check_bits bits;
  1 lsl bits

let scale counts ~by =
  if by < 1 then invalid_arg "Weights.scale: factor must be >= 1";
  Array.map (fun n -> n * by) counts
