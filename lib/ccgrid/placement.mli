(** Common-centroid placement: the assignment of every grid cell to a
    capacitor (or to a dummy).

    Capacitor ids are [0 .. bits] (see {!Weights}); [dummy] marks filler
    cells.  [unit_multiplier] is 1 normally and 2 for the odd-N chessboard
    of [7], which doubles every capacitor's unit-cell count (the unit cell
    value stays [C_u]; only the ratios matter to the DAC). *)

(** Capacitor id of dummy cells. *)
val dummy : int

type t = {
  bits : int;                  (** DAC resolution N *)
  rows : int;
  cols : int;
  unit_multiplier : int;       (** 1, or 2 when unit counts were doubled *)
  counts : int array;          (** unit cells per capacitor, length bits+1 *)
  assign : int array array;    (** [assign.(row).(col)] = cap id or [dummy] *)
  style_name : string;         (** producer's name, for reports *)
}

(** [create ~bits ~rows ~cols ~unit_multiplier ~counts ~assign ~style_name]
    validates and builds a placement.  Raises [Invalid_argument] when the
    shape is inconsistent (wrong matrix dims, count mismatch, bad ids). *)
val create :
  bits:int -> rows:int -> cols:int -> unit_multiplier:int ->
  counts:int array -> assign:int array array -> style_name:string -> t

(** Number of capacitors, [bits + 1]. *)
val num_caps : t -> int

(** [cap_at t cell] is the capacitor id at [cell], or [None] for a dummy.
    Raises [Invalid_argument] out of bounds. *)
val cap_at : t -> Cell.t -> int option

(** [cells_of t k] lists the cells of capacitor [k] in row-major order. *)
val cells_of : t -> int -> Cell.t list

(** [dummy_cells t] lists the dummy cells. *)
val dummy_cells : t -> Cell.t list

(** [position tech t cell] is the centre of [cell] in micrometres with the
    origin at the array centre.  Channels are not included: variation
    modelling uses the un-expanded grid, matching Sec. II-C. *)
val position : Tech.Process.t -> t -> Cell.t -> Geom.Point.t

(** [positions_by_cap tech t] is the per-capacitor array of unit-cell
    centre positions, indexed by capacitor id — the input to
    {!Capmodel.Covariance.build}-style analyses. *)
val positions_by_cap : Tech.Process.t -> t -> Geom.Point.t array array

(** [centroid_error tech t k] is the distance (um) between capacitor [k]'s
    unit-cell centroid and the array centre.  Zero for an exactly
    common-centroid capacitor. *)
val centroid_error : Tech.Process.t -> t -> int -> float

(** [max_centroid_error tech t] over capacitors with at least 2 cells
    (the single-cell C_0/C_1 cannot be centred, Sec. IV-A). *)
val max_centroid_error : Tech.Process.t -> t -> float

(** [validate t] re-checks all invariants; [Error msg] names the first
    violation.  Useful for property tests over placement generators. *)
val validate : t -> (unit, string) result

val pp : Format.formatter -> t -> unit
