type t = {
  row : int;
  col : int;
}

let make ~row ~col = { row; col }
let equal a b = a.row = b.row && a.col = b.col

let compare a b =
  match Int.compare a.row b.row with
  | 0 -> Int.compare a.col b.col
  | c -> c

let mirror ~rows ~cols c = { row = rows - 1 - c.row; col = cols - 1 - c.col }

let centered ~rows ~cols c =
  ((2 * c.row) - (rows - 1), (2 * c.col) - (cols - 1))

let ring ~rows ~cols c =
  let u, v = centered ~rows ~cols c in
  Int.max (abs u) (abs v)

let adjacent a b = abs (a.row - b.row) + abs (a.col - b.col) = 1

let in_bounds ~rows ~cols c =
  c.row >= 0 && c.row < rows && c.col >= 0 && c.col < cols

let neighbors ~rows ~cols c =
  let candidates =
    [ { c with row = c.row - 1 };
      { c with row = c.row + 1 };
      { c with col = c.col - 1 };
      { c with col = c.col + 1 } ]
  in
  List.filter (in_bounds ~rows ~cols) candidates

(* Sorting key: ring first, then angle from the positive-u axis walking
   counter-clockwise.  atan2 is stable enough here because (u, v) are exact
   small integers. *)
let spiral_key ~rows ~cols c =
  let u, v = centered ~rows ~cols c in
  let angle = Float.atan2 (float_of_int v) (float_of_int u) in
  let angle = if angle < 0. then angle +. (2. *. Float.pi) else angle in
  (ring ~rows ~cols c, angle)

let spiral_order ~rows ~cols =
  let cells = ref [] in
  for row = rows - 1 downto 0 do
    for col = cols - 1 downto 0 do
      cells := { row; col } :: !cells
    done
  done;
  let key = spiral_key ~rows ~cols in
  let compare_key (ring_a, angle_a) (ring_b, angle_b) =
    match Int.compare ring_a ring_b with
    | 0 -> Float.compare angle_a angle_b
    | c -> c
  in
  List.stable_sort (fun a b -> compare_key (key a) (key b)) !cells

let pp ppf c = Format.fprintf ppf "(%d, %d)" c.row c.col
