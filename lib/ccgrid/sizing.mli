(** Array size calculation (Sec. IV-A1, Eq. 17).

    For [T] unit cells the array is [r x s] with [r = ceil(sqrt T)] and
    [s = ceil(T / r)], as close to square as possible; [D_C = r s - T]
    dummy cells complete the grid.  For even N, [r = s = 2^(N/2)] and no
    dummies are needed. *)

type t = {
  rows : int;
  cols : int;
  dummies : int;
}

(** [compute ~total_units].  Raises [Invalid_argument] when
    [total_units < 1]. *)
val compute : total_units:int -> t

val pp : Format.formatter -> t -> unit
