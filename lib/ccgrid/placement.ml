let dummy = -1

type t = {
  bits : int;
  rows : int;
  cols : int;
  unit_multiplier : int;
  counts : int array;
  assign : int array array;
  style_name : string;
}

let num_caps t = t.bits + 1

let check t =
  if t.bits < 1 then Error "bits must be >= 1"
  else if t.rows < 1 || t.cols < 1 then Error "empty array"
  else if t.unit_multiplier < 1 then Error "unit_multiplier must be >= 1"
  else if Array.length t.counts <> t.bits + 1 then Error "counts length <> bits+1"
  else if Array.length t.assign <> t.rows then Error "assign row count mismatch"
  else if Array.exists (fun r -> Array.length r <> t.cols) t.assign then
    Error "assign col count mismatch"
  else begin
    let seen = Array.make (t.bits + 1) 0 in
    let bad = ref None in
    Array.iter
      (fun row ->
         Array.iter
           (fun id ->
              if id = dummy then ()
              else if id < 0 || id > t.bits then bad := Some id
              else seen.(id) <- seen.(id) + 1)
           row)
      t.assign;
    match !bad with
    | Some id -> Error (Printf.sprintf "invalid capacitor id %d" id)
    | None ->
      let mismatch = ref None in
      Array.iteri
        (fun k expected ->
           if seen.(k) <> expected && !mismatch = None then
             mismatch := Some (k, expected, seen.(k)))
        t.counts;
      (match !mismatch with
       | Some (k, expected, got) ->
         Error
           (Printf.sprintf "capacitor %d has %d cells, expected %d" k got expected)
       | None -> Ok ())
  end

let validate = check

let create ~bits ~rows ~cols ~unit_multiplier ~counts ~assign ~style_name =
  let t = { bits; rows; cols; unit_multiplier; counts; assign; style_name } in
  match check t with
  | Ok () -> t
  | Error msg -> invalid_arg ("Placement.create: " ^ msg)

let check_bounds t (c : Cell.t) =
  if not (Cell.in_bounds ~rows:t.rows ~cols:t.cols c) then
    invalid_arg "Placement: cell out of bounds"

let cap_at t (c : Cell.t) =
  check_bounds t c;
  let id = t.assign.(c.Cell.row).(c.Cell.col) in
  if id = dummy then None else Some id

let cells_matching t keep =
  let out = ref [] in
  for row = t.rows - 1 downto 0 do
    for col = t.cols - 1 downto 0 do
      if keep t.assign.(row).(col) then out := Cell.make ~row ~col :: !out
    done
  done;
  !out

let cells_of t k =
  if k < 0 || k > t.bits then invalid_arg "Placement.cells_of: bad capacitor id";
  cells_matching t (fun id -> id = k)

let dummy_cells t = cells_matching t (fun id -> id = dummy)

let position tech t (c : Cell.t) =
  check_bounds t c;
  let u, v = Cell.centered ~rows:t.rows ~cols:t.cols c in
  (* doubled coordinates: one unit of u/v is half a pitch *)
  Geom.Point.make
    ~x:(float_of_int v *. Tech.Process.cell_pitch_x tech /. 2.)
    ~y:(float_of_int u *. Tech.Process.cell_pitch_y tech /. 2.)

let positions_by_cap tech t =
  Array.init (num_caps t)
    (fun k -> Array.of_list (List.map (position tech t) (cells_of t k)))

let centroid_error tech t k =
  match cells_of t k with
  | [] -> invalid_arg "Placement.centroid_error: capacitor has no cells"
  | cells ->
    let centroid = Geom.Point.centroid (List.map (position tech t) cells) in
    Geom.Point.distance centroid Geom.Point.origin

let max_centroid_error tech t =
  let worst = ref 0. in
  for k = 0 to t.bits do
    if t.counts.(k) >= 2 then
      worst := Float.max !worst (centroid_error tech t k)
  done;
  !worst

let pp ppf t =
  Format.fprintf ppf "%s: %d-bit, %dx%d, x%d units" t.style_name t.bits t.rows
    t.cols t.unit_multiplier
