let glyph_value c =
  if c >= '0' && c <= '9' then Some (Char.code c - Char.code '0')
  else if c >= 'A' && c <= 'Z' then Some (Char.code c - Char.code 'A' + 10)
  else if c = '.' then Some Placement.dummy
  else None

let to_string (p : Placement.t) =
  if Placement.num_caps p > 36 then
    invalid_arg "Serial.to_string: more than 36 capacitors (glyph alphabet)";
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "ccdac-placement v1\n";
  Buffer.add_string buf
    (Printf.sprintf "bits %d rows %d cols %d multiplier %d style %s\n"
       p.Placement.bits p.Placement.rows p.Placement.cols
       p.Placement.unit_multiplier p.Placement.style_name);
  Buffer.add_string buf "counts";
  Array.iter (fun n -> Buffer.add_string buf (Printf.sprintf " %d" n))
    p.Placement.counts;
  Buffer.add_char buf '\n';
  (* top row first, matching Render.ascii *)
  for row = p.Placement.rows - 1 downto 0 do
    for col = 0 to p.Placement.cols - 1 do
      if col > 0 then Buffer.add_char buf ' ';
      Buffer.add_char buf (Render.glyph p.Placement.assign.(row).(col))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let tokens line =
  List.filter (fun t -> t <> "") (String.split_on_char ' ' (String.trim line))

let of_string text =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  match lines with
  | magic :: header :: counts_line :: grid when String.trim magic = "ccdac-placement v1"
    -> begin
      match tokens header with
      | [ "bits"; bits; "rows"; rows; "cols"; cols; "multiplier"; m;
          "style"; style ] -> begin
          try
            let bits = int_of_string bits in
            let rows = int_of_string rows in
            let cols = int_of_string cols in
            let unit_multiplier = int_of_string m in
            let counts =
              match tokens counts_line with
              | "counts" :: rest -> Array.of_list (List.map int_of_string rest)
              | _ -> failwith "missing counts line"
            in
            if List.length grid <> rows then
              failwith
                (Printf.sprintf "expected %d grid rows, found %d" rows
                   (List.length grid));
            let assign = Array.make_matrix rows cols Placement.dummy in
            List.iteri
              (fun i line ->
                 let row = rows - 1 - i in
                 let cells = tokens line in
                 if List.length cells <> cols then
                   failwith (Printf.sprintf "row %d has wrong width" row);
                 List.iteri
                   (fun col token ->
                      match token with
                      | "" -> failwith "empty token"
                      | t when String.length t = 1 -> begin
                          match glyph_value t.[0] with
                          | Some v -> assign.(row).(col) <- v
                          | None -> failwith (Printf.sprintf "bad token %S" t)
                        end
                      | t -> failwith (Printf.sprintf "bad token %S" t))
                   cells)
              grid;
            Ok
              (Placement.create ~bits ~rows ~cols ~unit_multiplier ~counts
                 ~assign ~style_name:style)
          with
          | Failure msg -> Error msg
          | Invalid_argument msg -> Error msg
        end
      | _ -> Error "malformed header line"
    end
  | _ :: _ -> Error "not a ccdac-placement v1 file"
  | [] -> Error "empty input"

let save p ~path =
  let oc = open_out path in
  (try output_string oc (to_string p)
   with e ->
     close_out oc;
     raise e);
  close_out oc

let load ~path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | s -> of_string s
  | exception Sys_error msg -> Error msg
