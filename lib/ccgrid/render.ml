let glyph id =
  if id = Placement.dummy then '.'
  else if id < 0 then '?'
  else if id < 10 then Char.chr (Char.code '0' + id)
  else if id < 36 then Char.chr (Char.code 'A' + id - 10)
  else '#'

let draw (t : Placement.t) cell_char =
  let buf = Buffer.create ((t.Placement.rows + 1) * (2 * t.Placement.cols)) in
  for row = t.Placement.rows - 1 downto 0 do
    for col = 0 to t.Placement.cols - 1 do
      if col > 0 then Buffer.add_char buf ' ';
      Buffer.add_char buf (cell_char (Cell.make ~row ~col))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let ascii t =
  draw t (fun (c : Cell.t) -> glyph t.Placement.assign.(c.Cell.row).(c.Cell.col))

let ascii_highlight t ~cap =
  draw t
    (fun (c : Cell.t) ->
       let id = t.Placement.assign.(c.Cell.row).(c.Cell.col) in
       if id = cap then glyph id else '-')

let legend (t : Placement.t) =
  let parts =
    Array.to_list
      (Array.mapi
         (fun k n -> Printf.sprintf "%c:%d" (glyph k) n)
         t.Placement.counts)
  in
  String.concat "  " parts
