type t = {
  rows : int;
  cols : int;
  dummies : int;
}

let compute ~total_units =
  if total_units < 1 then invalid_arg "Sizing.compute: total_units must be >= 1";
  let rows =
    int_of_float (Float.ceil (sqrt (float_of_int total_units)))
  in
  let cols = (total_units + rows - 1) / rows in
  { rows; cols; dummies = (rows * cols) - total_units }

let pp ppf t =
  Format.fprintf ppf "%dx%d (+%d dummies)" t.rows t.cols t.dummies
