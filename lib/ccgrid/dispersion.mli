(** Dispersion metrics (Sec. IV-A2).

    Dispersion measures how widely a capacitor's unit cells are spread
    across the array; higher dispersion averages out spatially-correlated
    random variation (lower INL/DNL) at the cost of routing parasitics.
    Chessboard maximises it, spiral trades some of it for via count. *)

(** [spread tech placement k] is the RMS distance (um) of capacitor [k]'s
    cells from their own centroid, normalised by the RMS distance of {e all}
    array cells from the array centre.  1.0 means the capacitor is spread
    like the whole array; small values mean clustering. *)
val spread : Tech.Process.t -> Placement.t -> int -> float

(** [overall tech placement] is the unit-cell-count-weighted mean of
    {!spread} over all capacitors. *)
val overall : Tech.Process.t -> Placement.t -> float

(** [adjacency_runs placement k] is the number of connected groups that
    capacitor [k]'s cells form under 4-adjacency.  1 = fully clustered;
    equal to the cell count = fully dispersed (chessboard).  This is also
    the number of trunk connections the router will need (Sec. IV-B2). *)
val adjacency_runs : Placement.t -> int -> int
