(** Binary-weighted capacitor ratios of an N-bit charge-scaling DAC.

    The array holds N+1 capacitors [C_0 .. C_N] with unit-cell counts
    [n_0 = 1] and [n_k = 2^(k-1)] for [k >= 1] (Sec. II-A), so
    [sum n_k = 2^N].  [C_0] is the always-grounded termination capacitor;
    [C_k] (k >= 1) is switched by bit [D_k]. *)

(** Maximum supported DAC resolution.  Counts are exact OCaml ints well
    beyond this; the bound keeps array sizes sane. *)
val max_bits : int

(** [unit_counts ~bits] is the array [n_0 .. n_N] of unit-cell counts,
    length [bits + 1].  Raises [Invalid_argument] unless
    [1 <= bits <= max_bits]. *)
val unit_counts : bits:int -> int array

(** [total_units ~bits] is [2^bits]. *)
val total_units : bits:int -> int

(** [scale counts ~by] multiplies every count — used by the chessboard
    placement of [7] which doubles the unit-capacitor count for odd N. *)
val scale : int array -> by:int -> int array

(** [check_bits bits] raises [Invalid_argument] when out of range. *)
val check_bits : int -> unit
