let rms_distance_from points center =
  match points with
  | [] -> 0.
  | _ ->
    let n = float_of_int (List.length points) in
    let sum2 =
      List.fold_left
        (fun acc p ->
           let d = Geom.Point.distance p center in
           acc +. (d *. d))
        0. points
    in
    sqrt (sum2 /. n)

let array_rms tech (t : Placement.t) =
  let all = ref [] in
  for row = 0 to t.Placement.rows - 1 do
    for col = 0 to t.Placement.cols - 1 do
      all := Placement.position tech t (Cell.make ~row ~col) :: !all
    done
  done;
  rms_distance_from !all Geom.Point.origin

let spread tech t k =
  let cells = Placement.cells_of t k in
  match cells with
  | [] -> 0.
  | [ _ ] -> 0.
  | _ ->
    let points = List.map (Placement.position tech t) cells in
    let centroid = Geom.Point.centroid points in
    let denom = array_rms tech t in
    if denom <= 0. then 0. else rms_distance_from points centroid /. denom

let overall tech t =
  let total = ref 0. and weight = ref 0 in
  for k = 0 to t.Placement.bits do
    let count = t.Placement.counts.(k) in
    total := !total +. (float_of_int count *. spread tech t k);
    weight := !weight + count
  done;
  if !weight = 0 then 0. else !total /. float_of_int !weight

(* Count connected components of cap k's cells under 4-adjacency with an
   iterative BFS over the cell set. *)
let adjacency_runs (t : Placement.t) k =
  let cells = Placement.cells_of t k in
  let module S = Set.Make (struct
      type t = Cell.t
      let compare = Cell.compare
    end)
  in
  let remaining = ref (S.of_list cells) in
  let components = ref 0 in
  while not (S.is_empty !remaining) do
    incr components;
    let seed = S.min_elt !remaining in
    let frontier = Queue.create () in
    Queue.add seed frontier;
    remaining := S.remove seed !remaining;
    while not (Queue.is_empty frontier) do
      let c = Queue.pop frontier in
      let next =
        List.filter
          (fun n -> S.mem n !remaining)
          (Cell.neighbors ~rows:t.Placement.rows ~cols:t.Placement.cols c)
      in
      List.iter
        (fun n ->
           remaining := S.remove n !remaining;
           Queue.add n frontier)
        next
    done
  done;
  !components
