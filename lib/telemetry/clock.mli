(** Monotonic clock, nanosecond resolution.

    All telemetry durations come from this clock (CLOCK_MONOTONIC via a C
    stub), never from wall time: wall clocks jump under NTP slew and
    suspend/resume, and a runtime measurement that can go negative is
    worse than none.  The absolute value is meaningful only for
    differences within one process. *)

(** [now_ns ()] is the current monotonic time in nanoseconds. *)
val now_ns : unit -> int64

(** [since_ns t0] is [now_ns () - t0], clamped to be non-negative. *)
val since_ns : int64 -> int64

(** [to_s ns] converts nanoseconds to seconds. *)
val to_s : int64 -> float

(** [to_us ns] converts nanoseconds to microseconds (Chrome-trace unit). *)
val to_us : int64 -> float

(** [since_s t0] is [to_s (since_ns t0)]. *)
val since_s : int64 -> float
