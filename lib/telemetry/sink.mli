(** Span sinks: where completed spans go.

    Three are provided, matching the three ways to consume a trace:
    {!null} (drop everything — combined with the fast path in
    {!Span.with_} this is the zero-overhead default), {!text} (one
    indented line per span, for terminal debugging), and {!chrome_trace}
    (the Chrome [trace_event] JSON format, loadable in [chrome://tracing]
    and {{:https://ui.perfetto.dev}Perfetto}). *)

type t = {
  on_span : Span.complete -> unit;
  close : unit -> unit;  (** flush and release resources; idempotent *)
}

(** Drops every span. *)
val null : t

(** [text ?ppf ()] prints ["<indent>name  dur  attrs"] lines as spans
    complete (children before parents — completion order).  Default
    formatter: stderr. *)
val text : ?ppf:Format.formatter -> unit -> t

(** [chrome_trace ~path] buffers spans and, on [close], writes a Chrome
    [trace_event] JSON object ([{"traceEvents": [...]}], complete
    ["ph": "X"] events, microsecond timestamps) to [path]. *)
val chrome_trace : path:string -> t

(** [events_json spans] is the Chrome [trace_event] document for an
    already-collected span list (what {!chrome_trace} writes).  The
    event list opens with ["ph": "M"] metadata events naming the process
    ([ccdac]) and the thread after the root span — its name plus its
    attrs (e.g. ["flow.run style=spiral bits=8"]) — so Perfetto titles
    the tracks usefully.  Spans carrying a {!Memory.delta} additionally
    emit ["ph": "C"] [heap_mb] counter events at entry and exit (the
    major-heap sawtooth) and [alloc_mb]/[major_collections] args on
    their duration events. *)
val events_json : Span.complete list -> Json.t

(** [with_ sink f] installs [sink] for the duration of [f] and closes it
    afterwards (also on exceptions). *)
val with_ : t -> (unit -> 'a) -> 'a
