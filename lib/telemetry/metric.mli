(** A metric definition: the static identity of one quantity the
    instrumented flow reports.

    Metrics are data, not code — mirroring the {!Verify.Rule} design:
    each instrumented layer owns a handful of definitions, {!Registry}
    aggregates them into the catalogue that backs documentation
    ([docs/TELEMETRY.md]), dumps and the [ccgen profile] CLI, and the
    runtime {!Metrics} store refuses to record against an id the
    catalogue does not know.  A definition never changes at runtime —
    what varies is the recorded values. *)

type kind =
  | Counter               (** monotone event count, integer *)
  | Gauge                 (** last-written value *)
  | Histogram of float array
      (** distribution over fixed upper-bound buckets: bucket [i] counts
          observations [v] with [bounds.(i-1) < v <= bounds.(i)]; one
          implicit overflow bucket catches [v > bounds.(n-1)].  Bounds
          must be strictly increasing. *)

type t = {
  id : string;           (** stable machine id, e.g. ["extract/via_cuts"] *)
  kind : kind;
  stage : string;        (** flow stage that emits it: ["place"], ["route"],
                             ["verify"], ["extract"], ["analyse"], ["flow"] *)
  unit_ : string;        (** unit of the value, e.g. ["s"], ["um"], ["1"] *)
  cardinality : string;  (** label dimension, e.g. ["1"] (unlabelled),
                             ["per capacitor"], ["per rule"] *)
  doc : string;          (** one-sentence contract, used by docs and dumps *)
}

(** [make ~id ~kind ~stage ~unit_ ~cardinality ~doc] validates histogram
    bounds (non-empty, strictly increasing, finite) and raises
    [Invalid_argument] otherwise. *)
val make :
  id:string -> kind:kind -> stage:string -> unit_:string ->
  cardinality:string -> doc:string -> t

(** [kind_name k] is ["counter"], ["gauge"] or ["histogram"]. *)
val kind_name : kind -> string
