type kind =
  | Counter
  | Gauge
  | Histogram of float array

type t = {
  id : string;
  kind : kind;
  stage : string;
  unit_ : string;
  cardinality : string;
  doc : string;
}

let make ~id ~kind ~stage ~unit_ ~cardinality ~doc =
  (match kind with
   | Counter | Gauge -> ()
   | Histogram bounds ->
     if Array.length bounds = 0 then
       invalid_arg (Printf.sprintf "Metric.make %s: empty histogram bounds" id);
     Array.iteri
       (fun i b ->
          if not (Float.is_finite b) then
            invalid_arg
              (Printf.sprintf "Metric.make %s: non-finite histogram bound" id);
          if i > 0 && b <= bounds.(i - 1) then
            invalid_arg
              (Printf.sprintf
                 "Metric.make %s: histogram bounds not strictly increasing" id))
       bounds);
  { id; kind; stage; unit_; cardinality; doc }

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram _ -> "histogram"
