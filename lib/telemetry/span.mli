(** Span-based tracing: nested, monotonic-clock-timed regions.

    [Span.with_ ~name f] times [f] and, on completion, delivers one
    {!complete} record to every installed sink and every active
    collector.  When nothing listens (the null default) the call is a
    single list probe around [f] — no clock read, no allocation — so
    instrumented libraries pay nothing in ordinary use.

    Nesting is tracked with an explicit stack: a span started while
    another is open records that parent's name and a one-deeper depth.
    [seq] is a process-global start-order sequence number, so sorting
    completed spans by [seq] (what {!collect} returns) reconstructs the
    pre-order walk of the span tree.

    {b Domain safety.}  The nesting stack and the collector list are
    domain-local; sinks are process-global and receive spans from every
    domain (delivery is mutex-serialized).  Each completed span carries
    the integer id of the domain that ran it ([domain]), which the
    Chrome-trace sink renders as the thread id.  {!Context} propagates a
    submitter's stack and collectors into pool workers, so spans opened
    inside a parallel task keep their logical parent and still reach
    collectors opened in the submitting domain. *)

type value =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type complete = {
  name : string;
  attrs : (string * value) list;
  start_ns : int64;      (** monotonic ({!Clock.now_ns}) at entry *)
  duration_ns : int64;   (** always >= 0 *)
  depth : int;           (** 0 = no enclosing span at entry *)
  parent : string option;
  seq : int;             (** global start order *)
  domain : int;          (** id of the domain that ran the span *)
  mem : Memory.delta option;
                         (** GC delta, when {!Memory.enabled} was on *)
}

(** [with_ ?attrs ~name f] runs [f] inside a span.  The span completes —
    and is delivered — even when [f] raises. *)
val with_ : ?attrs:(string * value) list -> name:string -> (unit -> 'a) -> 'a

(** [active ()] is true when at least one sink or collector listens (and
    spans are therefore being recorded). *)
val active : unit -> bool

(** {2 Sinks} — streaming consumers of completed spans. *)

type sink_id

val add_sink : (complete -> unit) -> sink_id
val remove_sink : sink_id -> unit

(** [with_sink k f] installs [k] for the duration of [f]. *)
val with_sink : (complete -> unit) -> (unit -> 'a) -> 'a

(** {2 Collection} — in-memory capture, the basis of {!Summary}. *)

(** [collect f] captures every span completed during [f] in the calling
    domain — plus, through {!Context}, in any worker the context was
    propagated to — returned in start ([seq]) order. *)
val collect : (unit -> 'a) -> 'a * complete list

(** {2 Cross-domain propagation} — used by {!Context}; prefer that. *)

(** The calling domain's span stack and collectors, as an opaque capture. *)
type ctx

val capture_context : unit -> ctx

(** [with_context ctx f] runs [f] with the captured stack and collectors
    installed in the calling domain (restored afterwards). *)
val with_context : ctx -> (unit -> 'a) -> 'a

(** [pp_value] renders an attribute value. *)
val pp_value : Format.formatter -> value -> unit

(** [json_value] renders an attribute value as JSON. *)
val json_value : value -> Json.t
