(** The runtime metrics store: counters, gauges and histograms recorded
    against {!Registry} ids.

    Collection is scoped: {!collect} pushes a fresh store, runs the
    closure, and returns everything recorded inside as an immutable
    {!dump}.  Scopes nest — every active scope receives every write, so
    an outer scope (e.g. [ccgen profile] around a matrix of runs)
    aggregates counters across the per-run scopes that [Flow.run] opens.
    With no scope active, the recording entry points are no-ops costing
    one list probe — the null default.

    Recording against an id absent from {!Registry.all}, or with the
    wrong kind, raises [Invalid_argument]: the catalogue is the contract.

    [label] selects the series within a metric whose cardinality is not
    1 (e.g. [~label:"C3"] for per-capacitor metrics); unlabelled and
    labelled series of the same id are distinct.

    {b Domain safety.}  The set of active scopes is {e domain-local}: a
    freshly spawned domain records into nothing until a submitter's
    scopes are propagated into it with {!Context} (which {!Par.Pool}
    does automatically for every task).  Once shared, the stores
    themselves are mutex-guarded, so concurrent increments from several
    domains into one captured scope are exact. *)

(** [enabled ()] is true when at least one scope is collecting in the
    calling domain. *)
val enabled : unit -> bool

(** [incr ?n ?label id] adds [n] (default 1) to a counter. *)
val incr : ?n:int -> ?label:string -> string -> unit

(** [set ?label id v] writes a gauge. *)
val set : ?label:string -> string -> float -> unit

(** [observe ?label id v] records [v] into a histogram's buckets. *)
val observe : ?label:string -> string -> float -> unit

(** {2 Dumps} *)

type value =
  | Count of int
  | Value of float
  | Dist of {
      bounds : float array;   (** upper bucket bounds, as declared *)
      counts : int array;     (** length [Array.length bounds + 1]; the
                                  last entry is the overflow bucket *)
      sum : float;
      total : int;
    }

type point = {
  metric : Metric.t;
  label : string option;
  value : value;
}

(** Immutable snapshot of one scope, sorted by (id, label). *)
type dump = point list

val empty : dump

(** [collect f] runs [f] with a fresh scope active and returns its result
    together with everything recorded. *)
val collect : (unit -> 'a) -> 'a * dump

(** {2 Cross-domain propagation} — used by {!Context}; prefer that. *)

(** The calling domain's active scopes, as an opaque capture. *)
type scope_ctx

val capture_scopes : unit -> scope_ctx

(** [with_scopes ctx f] runs [f] with the captured scopes installed as
    the calling domain's active set (restored afterwards). *)
val with_scopes : scope_ctx -> (unit -> 'a) -> 'a

val points : dump -> point list

(** [find ?label dump id]. *)
val find : ?label:string -> dump -> string -> value option

(** [counter ?label dump id] is the count, 0 when never incremented. *)
val counter : ?label:string -> dump -> string -> int

(** [gauge ?label dump id]. *)
val gauge : ?label:string -> dump -> string -> float option

(** [labels dump id] is the sorted labels recorded against [id]. *)
val labels : dump -> string -> string option list

(** [quantile value q] estimates the [q]-quantile ([0 <= q <= 1]) of a
    histogram from its bucket boundaries: locate the bucket holding the
    rank-[q] observation and interpolate linearly inside it, taking the
    first bucket's lower edge as 0 and clamping the overflow bucket to
    the last declared bound.  [None] for counters, gauges, and empty
    histograms; raises [Invalid_argument] when [q] is outside [0, 1].
    Rendered as [p50]/[p95]/[p99] in {!to_text} and {!to_json}. *)
val quantile : value -> float -> float option

(** [to_text dump] is the aligned human-readable dump. *)
val to_text : dump -> string

(** [to_json dump] is the machine-readable dump (see docs/TELEMETRY.md). *)
val to_json : dump -> Json.t
