(** Per-run telemetry summary: the span tree and metric dump of one
    recorded region, plus the per-stage timing table derived from the
    root span's direct children.

    [Flow.run] records itself through {!record} and stores the result in
    [Flow.result.telemetry]; the legacy [elapsed_place_route_s] float is
    derived from it ({!place_route_seconds}) rather than measured by a
    separate wall clock. *)

type t = {
  name : string;                      (** root span name, e.g. ["flow"] *)
  attrs : (string * Span.value) list;
  spans : Span.complete list;         (** pre-order (start order) *)
  metrics : Metrics.dump;
  stages : (string * float) list;     (** root's direct children: name ->
                                          seconds, in execution order *)
  mem_stages : (string * Memory.delta) list;
                                      (** same stages' GC deltas — empty
                                          unless {!Memory.enabled} was on *)
  total_s : float;                    (** root span duration *)
  mem_total : Memory.delta option;    (** root span's GC delta *)
}

(** A summary with nothing in it (placeholder before {!record} runs). *)
val empty : t

(** [record ?attrs ~name f] runs [f] under a root span [name] with a
    fresh metric scope and span collector, and derives the stage table.
    Sinks installed outside still receive every span. *)
val record :
  ?attrs:(string * Span.value) list -> name:string -> (unit -> 'a) -> 'a * t

(** [stage_seconds t name] is the duration of the named top-level stage,
    if it ran. *)
val stage_seconds : t -> string -> float option

(** [stage_names t] in execution order. *)
val stage_names : t -> string list

(** {2 Memory} — populated only when {!Memory.enabled} was on. *)

(** [stage_memory t name] is the named top-level stage's GC delta. *)
val stage_memory : t -> string -> Memory.delta option

(** [memory_stages t] — the per-stage allocation table, execution order. *)
val memory_stages : t -> (string * Memory.delta) list

(** [total_memory t] — the root span's GC delta. *)
val total_memory : t -> Memory.delta option

(** [stage_alloc_mb t name] — the named stage's allocation in MB. *)
val stage_alloc_mb : t -> string -> float option

(** [place_route_seconds t] is the sum of the ["place"] and ["route"]
    stage durations — the Table III measurement.  The verification gate
    and the analysis stages are deliberately excluded. *)
val place_route_seconds : t -> float

(** [pp ppf t] prints the per-stage breakdown. *)
val pp : Format.formatter -> t -> unit

(** [to_json t] carries the stage table, the memory object ([null] when
    sampling was off) and the metric dump (not the raw spans — export
    those with {!Sink.chrome_trace}). *)
val to_json : t -> Json.t
