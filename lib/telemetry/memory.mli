(** Memory/GC observability: [Gc.quick_stat] deltas around spans.

    Sampling is off by default and costs one [Atomic.get] per span when
    off — the same pay-nothing-when-inactive discipline as
    {!Span.with_}.  When {!set_enabled} turns it on, every completed
    span carries a {!delta}: words allocated while the span ran
    (minor + major − promoted, so promotions count once), collection
    counts, and major-heap sizes before/after/at-peak.

    {b Domains.}  OCaml 5 allocation counters are per-domain, so each
    domain owns a mutex-guarded {e foreign ledger}.  {!Context} captures
    the submitting domain's ledger into {!Par.Pool} workers via
    {!capture_ctx}/{!with_ctx}; a task executed on a domain that is not
    already feeding the ledger adds its own delta on completion, and a
    span reads the ledger growth back {e only} when it runs in the owner
    domain.  The result: a stage span that fans out through the pool at
    any [--jobs] value reports the allocation of every worker, exactly
    once.  (With nested pools, sub-worker deltas credit the outermost
    owner — totals stay exact; intermediate nested spans see only their
    own domain's share.)

    {b Heap sizes are process-wide.}  [heap_words]/[top_heap_words]
    describe the major heap, which OCaml 5 shares across domains, so
    concurrent spans legitimately report overlapping heap numbers —
    treat [peak_heap_mb] as "peak of the process while this span ran". *)

(** What one span observed.  Word counts are in words ([float], because
    [Gc.stat] counters are); convert with {!words_to_mb}. *)
type delta = {
  allocated_words : float;   (** minor + major − promoted *)
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words_before : int;   (** major heap (process-wide) at span entry *)
  heap_words_after : int;
  top_heap_words : int;      (** process peak observed by span exit *)
}

(** [enabled ()] — is sampling on?  One atomic read. *)
val enabled : unit -> bool

(** [set_enabled b] switches sampling for every domain. *)
val set_enabled : bool -> unit

(** [with_enabled b f] runs [f] with sampling set to [b], restoring the
    previous state afterwards (also on exceptions). *)
val with_enabled : bool -> (unit -> 'a) -> 'a

(** {2 Sampling protocol} — what {!Span.with_} calls. *)

type sample

(** [start ()] is [None] when sampling is off (the only cost paid);
    otherwise a snapshot of this domain's counters and, in the ledger
    owner's domain, of the ledger. *)
val start : unit -> sample option

(** [finish s] closes the snapshot into a {!delta}, folding in foreign
    ledger growth when called in the owner domain. *)
val finish : sample -> delta

(** {2 Cross-domain propagation} — used by {!Context}; prefer that. *)

(** The calling domain's foreign ledger, as an opaque capture. *)
type ctx

val capture_ctx : unit -> ctx

(** [with_ctx c f] runs [f] and, when sampling is on and the calling
    domain is not already contributing to [c] (it is a pool worker, not
    the submitter draining its own queue), credits [f]'s quick_stat
    delta to the captured ledger.  Also installs [c] as the domain's
    current ledger for the duration, so nested pool fan-out keeps
    crediting the same owner. *)
val with_ctx : ctx -> (unit -> 'a) -> 'a

(** {2 Unit conversions and rendering} *)

(** [words_to_mb w] converts GC words to mebibytes using the host word
    size. *)
val words_to_mb : float -> float

(** [allocated_mb d] — {!delta.allocated_words} in MB. *)
val allocated_mb : delta -> float

(** [peak_heap_mb d] — {!delta.top_heap_words} in MB. *)
val peak_heap_mb : delta -> float

(** [heap_after_mb d] — {!delta.heap_words_after} in MB. *)
val heap_after_mb : delta -> float

val to_json : delta -> Json.t
