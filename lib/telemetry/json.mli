(** Minimal JSON tree: emitter and parser.

    The telemetry exporters (Chrome trace, metric dumps, profile tables)
    emit JSON, and the test-suite must be able to parse what they wrote
    to prove the files round-trip — without adding a JSON dependency the
    toolchain does not ship.  This is deliberately small: UTF-8 strings
    pass through verbatim, [\uXXXX] escapes decode to UTF-8, numbers are
    OCaml floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** [to_string j] is the compact serialisation.  Floats render as
    integers when integral (["3"], not ["3."]); non-finite floats render
    as [null] (JSON has no representation for them). *)
val to_string : t -> string

(** [escape s] is the quoted, escaped JSON string literal for [s]. *)
val escape : string -> string

(** [parse s] parses one JSON value (surrounding whitespace allowed;
    trailing garbage is an error). *)
val parse : string -> (t, string) result

(** {2 Accessors} — all total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
