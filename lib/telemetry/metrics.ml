(* Cells are per-scope mutable accumulators keyed by (id, label).

   Domain safety: the list of active scopes is domain-local (a raw
   [Domain.spawn] starts with none; {!Context} propagates a submitter's
   scopes into pool workers), while the stores themselves may be shared
   across domains once captured — so every cell mutation and snapshot
   happens under one global mutex.  The disabled fast path reads only the
   domain-local list and takes no lock. *)

type cell =
  | Ccell of { mutable count : int }
  | Gcell of { mutable value : float }
  | Hcell of {
      bounds : float array;
      counts : int array;       (* length bounds + 1: last = overflow *)
      mutable sum : float;
      mutable total : int;
    }

type store = (string * string option, cell) Hashtbl.t

let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

(* Active scopes of the calling domain, innermost first. *)
let scopes_key : store list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let scopes () = Domain.DLS.get scopes_key

let enabled () = !(scopes ()) <> []

type scope_ctx = store list

let capture_scopes () = !(scopes ())

let with_scopes ctx f =
  let r = scopes () in
  let saved = !r in
  r := ctx;
  Fun.protect ~finally:(fun () -> r := saved) f

let lookup id =
  match Registry.find id with
  | Some def -> def
  | None -> invalid_arg ("Telemetry.Metrics: unregistered metric id " ^ id)

let kind_error id expected def =
  invalid_arg
    (Printf.sprintf "Telemetry.Metrics: %s is a %s, not a %s" id
       (Metric.kind_name def.Metric.kind)
       expected)

let cell_of store def label =
  let key = (def.Metric.id, label) in
  match Hashtbl.find_opt store key with
  | Some c -> c
  | None ->
    let c =
      match def.Metric.kind with
      | Metric.Counter -> Ccell { count = 0 }
      | Metric.Gauge -> Gcell { value = 0. }
      | Metric.Histogram bounds ->
        Hcell
          { bounds;
            counts = Array.make (Array.length bounds + 1) 0;
            sum = 0.;
            total = 0 }
    in
    Hashtbl.replace store key c;
    c

(* [record] runs [per_store] under the global mutex for every active
   scope; kind errors are raised outside the lock by probing the
   registry first. *)
let record id per_store =
  match !(scopes ()) with
  | [] -> ()
  | active ->
    let def = lookup id in
    locked (fun () -> List.iter (fun store -> per_store store def) active)

let incr ?(n = 1) ?label id =
  record id (fun store def ->
      match cell_of store def label with
      | Ccell c -> c.count <- c.count + n
      | Gcell _ | Hcell _ -> kind_error id "counter" def)

let set ?label id v =
  record id (fun store def ->
      match cell_of store def label with
      | Gcell c -> c.value <- v
      | Ccell _ | Hcell _ -> kind_error id "gauge" def)

(* First bucket whose upper bound admits v (upper-inclusive edges);
   overflow bucket when v exceeds every bound. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe ?label id v =
  record id (fun store def ->
      match cell_of store def label with
      | Hcell c ->
        let i = bucket_index c.bounds v in
        c.counts.(i) <- c.counts.(i) + 1;
        c.sum <- c.sum +. v;
        c.total <- c.total + 1
      | Ccell _ | Gcell _ -> kind_error id "histogram" def)

(* --- dumps --- *)

type value =
  | Count of int
  | Value of float
  | Dist of {
      bounds : float array;
      counts : int array;
      sum : float;
      total : int;
    }

type point = {
  metric : Metric.t;
  label : string option;
  value : value;
}

type dump = point list

let empty = []

let compare_label a b =
  match a, b with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y -> String.compare x y

let snapshot (store : store) : dump =
  let pts =
    Hashtbl.fold
      (fun (id, label) cell acc ->
         let metric =
           match Registry.find id with
           | Some def -> def
           | None ->
             (* registration is enforced at write time *)
             failwith ("Telemetry.Metrics.snapshot: unregistered id " ^ id)
         in
         let value =
           match cell with
           | Ccell c -> Count c.count
           | Gcell c -> Value c.value
           | Hcell c ->
             Dist
               { bounds = c.bounds;
                 counts = Array.copy c.counts;
                 sum = c.sum;
                 total = c.total }
         in
         { metric; label; value } :: acc)
      store []
  in
  List.sort
    (fun a b ->
       match String.compare a.metric.Metric.id b.metric.Metric.id with
       | 0 -> compare_label a.label b.label
       | c -> c)
    pts

let collect f =
  let store : store = Hashtbl.create 64 in
  let r = scopes () in
  r := store :: !r;
  Fun.protect
    ~finally:(fun () -> r := List.filter (fun s -> s != store) !r)
    (fun () ->
       let x = f () in
       (* the snapshot locks out writers still holding a captured
          reference to this store (e.g. a pool worker draining) *)
       (x, locked (fun () -> snapshot store)))

let points dump = dump

let find ?label dump id =
  List.find_map
    (fun p ->
       if String.equal p.metric.Metric.id id && compare_label p.label label = 0
       then Some p.value
       else None)
    dump

let counter ?label dump id =
  match find ?label dump id with Some (Count n) -> n | Some _ | None -> 0

let gauge ?label dump id =
  match find ?label dump id with Some (Value v) -> Some v | Some _ | None -> None

let labels dump id =
  List.filter_map
    (fun p -> if String.equal p.metric.Metric.id id then Some p.label else None)
    dump

(* Quantile estimate from bucket boundaries: find the bucket holding the
   rank-q observation and interpolate linearly inside it.  The first
   bucket's lower edge is 0; the overflow bucket clamps to the last
   declared bound (we know nothing above it). *)
let quantile value q =
  match value with
  | Count _ | Value _ -> None
  | Dist d ->
    if d.total = 0 || Array.length d.bounds = 0 then None
    else if not (Float.is_finite q) || q < 0. || q > 1. then
      invalid_arg "Telemetry.Metrics.quantile: q outside [0, 1]"
    else begin
      let nb = Array.length d.bounds in
      let rank = q *. float_of_int d.total in
      let rec locate i seen =
        if i > nb then (nb, seen)
        else
          let seen' = seen + d.counts.(i) in
          if float_of_int seen' >= rank && d.counts.(i) > 0 then (i, seen)
          else locate (i + 1) seen'
      in
      let i, below = locate 0 0 in
      if i >= nb then Some d.bounds.(nb - 1)
      else
        let lo = if i = 0 then 0. else d.bounds.(i - 1) in
        let hi = d.bounds.(i) in
        let inside = (rank -. float_of_int below) /. float_of_int d.counts.(i) in
        let inside = Float.max 0. (Float.min 1. inside) in
        Some (lo +. ((hi -. lo) *. inside))
    end

(* --- rendering --- *)

let point_name p =
  match p.label with
  | None -> p.metric.Metric.id
  | Some l -> Printf.sprintf "%s{%s}" p.metric.Metric.id l

let value_text unit_ = function
  | Count n -> Printf.sprintf "%d" n
  | Value v ->
    if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f%s" v (if unit_ = "1" then "" else " " ^ unit_)
    else Printf.sprintf "%.6g%s" v (if unit_ = "1" then "" else " " ^ unit_)
  | Dist d ->
    let buckets =
      String.concat ", "
        (List.mapi
           (fun i c ->
              if i < Array.length d.bounds then
                Printf.sprintf "<=%g: %d" d.bounds.(i) c
              else Printf.sprintf ">%g: %d" d.bounds.(Array.length d.bounds - 1) c)
           (Array.to_list d.counts))
    in
    let q p =
      match quantile (Dist d) p with
      | Some v -> Printf.sprintf "%g" v
      | None -> "-"
    in
    Printf.sprintf "count=%d sum=%g p50=%s p95=%s p99=%s [%s]" d.total d.sum
      (q 0.5) (q 0.95) (q 0.99) buckets

let to_text dump =
  let buf = Buffer.create 512 in
  List.iter
    (fun p ->
       Buffer.add_string buf
         (Printf.sprintf "%-42s %s\n" (point_name p)
            (value_text p.metric.Metric.unit_ p.value)))
    dump;
  Buffer.contents buf

let value_json = function
  | Count n -> Json.Num (float_of_int n)
  | Value v -> Json.Num v
  | Dist d ->
    let buckets =
      List.mapi
        (fun i c ->
           Json.Obj
             [ ( "le",
                 if i < Array.length d.bounds then Json.Num d.bounds.(i)
                 else Json.Str "+Inf" );
               ("count", Json.Num (float_of_int c)) ])
        (Array.to_list d.counts)
    in
    let qjson p =
      match quantile (Dist d) p with Some v -> Json.Num v | None -> Json.Null
    in
    Json.Obj
      [ ("count", Json.Num (float_of_int d.total));
        ("sum", Json.Num d.sum);
        ("p50", qjson 0.5);
        ("p95", qjson 0.95);
        ("p99", qjson 0.99);
        ("buckets", Json.Arr buckets) ]

let to_json dump =
  Json.Arr
    (List.map
       (fun p ->
          Json.Obj
            [ ("id", Json.Str p.metric.Metric.id);
              ( "label",
                match p.label with None -> Json.Null | Some l -> Json.Str l );
              ("kind", Json.Str (Metric.kind_name p.metric.Metric.kind));
              ("unit", Json.Str p.metric.Metric.unit_);
              ("value", value_json p.value) ])
       dump)
