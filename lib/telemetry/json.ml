type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- emitter --- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let add_num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else if Float.is_finite f then
    Buffer.add_string buf (Printf.sprintf "%.17g" f)
  else Buffer.add_string buf "null"

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> add_num buf f
  | Str s -> Buffer.add_string buf (escape s)
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
         if i > 0 then Buffer.add_string buf ", ";
         add buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_string buf ", ";
         Buffer.add_string buf (escape k);
         Buffer.add_string buf ": ";
         add buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  add buf j;
  Buffer.contents buf

(* --- parser: recursive descent over a string --- *)

exception Fail of string

type state = {
  src : string;
  mutable pos : int;
}

let error st msg = raise (Fail (Printf.sprintf "at offset %d: %s" st.pos msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st; go ()
    | Some _ | None -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> error st (Printf.sprintf "expected %c, found %c" c d)
  | None -> error st (Printf.sprintf "expected %c, found end of input" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src
     && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "expected %s" word)

(* encode one Unicode scalar value as UTF-8 *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st; Buffer.contents buf
    | Some '\\' ->
      advance st;
      (match peek st with
       | Some '"' -> Buffer.add_char buf '"'; advance st
       | Some '\\' -> Buffer.add_char buf '\\'; advance st
       | Some '/' -> Buffer.add_char buf '/'; advance st
       | Some 'b' -> Buffer.add_char buf '\b'; advance st
       | Some 'f' -> Buffer.add_char buf '\012'; advance st
       | Some 'n' -> Buffer.add_char buf '\n'; advance st
       | Some 'r' -> Buffer.add_char buf '\r'; advance st
       | Some 't' -> Buffer.add_char buf '\t'; advance st
       | Some 'u' ->
         advance st;
         if st.pos + 4 > String.length st.src then error st "truncated \\u escape";
         let hex = String.sub st.src st.pos 4 in
         (match int_of_string_opt ("0x" ^ hex) with
          | Some u -> add_utf8 buf u; st.pos <- st.pos + 4
          | None -> error st "bad \\u escape")
       | Some c -> error st (Printf.sprintf "bad escape \\%c" c)
       | None -> error st "unterminated escape");
      go ()
    | Some c -> Buffer.add_char buf c; advance st; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let number_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when number_char c -> advance st; go ()
    | Some _ | None -> ()
  in
  go ();
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> error st (Printf.sprintf "bad number %S" s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin advance st; Obj [] end
    else begin
      let rec members acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' -> advance st; members ((k, v) :: acc)
        | Some '}' -> advance st; Obj (List.rev ((k, v) :: acc))
        | _ -> error st "expected , or } in object"
      in
      members []
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin advance st; Arr [] end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' -> advance st; elements (v :: acc)
        | Some ']' -> advance st; Arr (List.rev (v :: acc))
        | _ -> error st "expected , or ] in array"
      in
      elements []
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number st)
  | Some c -> error st (Printf.sprintf "unexpected character %c" c)

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos = String.length s then Ok v
    else Error (Printf.sprintf "at offset %d: trailing garbage" st.pos)
  | exception Fail msg -> Error msg

(* --- accessors --- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | Null | Bool _ | Num _ | Str _ | Arr _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None
