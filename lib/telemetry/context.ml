type t = {
  metrics : Metrics.scope_ctx;
  spans : Span.ctx;
}

let capture () =
  { metrics = Metrics.capture_scopes (); spans = Span.capture_context () }

let with_ t f =
  Metrics.with_scopes t.metrics (fun () -> Span.with_context t.spans f)
