type t = {
  metrics : Metrics.scope_ctx;
  spans : Span.ctx;
  memory : Memory.ctx;
}

let capture () =
  { metrics = Metrics.capture_scopes ();
    spans = Span.capture_context ();
    memory = Memory.capture_ctx () }

let with_ t f =
  Metrics.with_scopes t.metrics (fun () ->
      Span.with_context t.spans (fun () -> Memory.with_ctx t.memory f))
