type t = {
  on_span : Span.complete -> unit;
  close : unit -> unit;
}

let null = { on_span = (fun _ -> ()); close = (fun () -> ()) }

let text ?(ppf = Format.err_formatter) () =
  let on_span (c : Span.complete) =
    Format.fprintf ppf "%s%-24s %10.3f ms%a%a@."
      (String.make (2 * c.Span.depth) ' ')
      c.Span.name
      (Clock.to_us c.Span.duration_ns /. 1e3)
      (fun ppf attrs ->
         List.iter
           (fun (k, v) -> Format.fprintf ppf "  %s=%a" k Span.pp_value v)
           attrs)
      c.Span.attrs
      (fun ppf mem ->
         match mem with
         | None -> ()
         | Some d ->
           Format.fprintf ppf "  alloc=%.2fMB majors=%d"
             (Memory.allocated_mb d) d.Memory.major_collections)
      c.Span.mem
  in
  { on_span; close = (fun () -> Format.pp_print_flush ppf ()) }

let event_json (c : Span.complete) =
  let base =
    [ ("name", Json.Str c.Span.name);
      ("cat", Json.Str "ccdac");
      ("ph", Json.Str "X");
      ("ts", Json.Num (Clock.to_us c.Span.start_ns));
      ("dur", Json.Num (Clock.to_us c.Span.duration_ns));
      ("pid", Json.Num 1.);
      ("tid", Json.Num (float_of_int c.Span.domain)) ]
  in
  let mem_args =
    match c.Span.mem with
    | None -> []
    | Some d ->
      [ ("alloc_mb", Json.Num (Memory.allocated_mb d));
        ("major_collections", Json.Num (float_of_int d.Memory.major_collections)) ]
  in
  let args =
    match
      List.map (fun (k, v) -> (k, Span.json_value v)) c.Span.attrs @ mem_args
    with
    | [] -> []
    | kvs -> [ ("args", Json.Obj kvs) ]
  in
  Json.Obj (base @ args)

(* Heap-size counter ("ph": "C") events: one at span entry, one at exit,
   so the trace viewer draws the major-heap sawtooth stage by stage.
   Emitted only for spans that carry a GC delta, and on the dedicated
   counter track tid 0 (OCaml 5's major heap is process-wide, so
   per-domain counters would just disagree about one shared number). *)
let counter_events (c : Span.complete) =
  let counter name ts v =
    Json.Obj
      [ ("name", Json.Str name);
        ("cat", Json.Str "ccdac");
        ("ph", Json.Str "C");
        ("ts", Json.Num (Clock.to_us ts));
        ("pid", Json.Num 1.);
        ("tid", Json.Num 0.);
        ("args", Json.Obj [ (name, Json.Num v) ]) ]
  in
  let heap =
    match c.Span.mem with
    | None -> []
    | Some d ->
      let ev ts heap_w =
        counter "heap_mb" ts (Memory.words_to_mb (float_of_int heap_w))
      in
      [ ev c.Span.start_ns d.Memory.heap_words_before;
        ev (Int64.add c.Span.start_ns c.Span.duration_ns)
          d.Memory.heap_words_after ]
  in
  (* Scheduler chunks (Par.Sched) carry the backlog they saw at dequeue;
     rendered as a queue_depth counter so the trace shows the pool's
     backlog sawtooth alongside the per-worker chunk slices. *)
  let queue =
    match List.assoc_opt "queue_depth" c.Span.attrs with
    | Some (Span.Int d) ->
      [ counter "queue_depth" c.Span.start_ns (float_of_int d) ]
    | Some _ | None -> []
  in
  heap @ queue

(* Metadata ("ph": "M") events so Perfetto labels the process and thread
   rows: the process is the tool; the root span's domain gets the root's
   name with its attrs (e.g. ["flow.run style=spiral bits=8"]) as its
   track title, and every other domain — a pool worker — is labelled
   ["worker <d>"] so parallel execution reads as parallel tracks. *)
let metadata_events spans =
  let meta ?(tid = 1) name value =
    Json.Obj
      [ ("name", Json.Str name);
        ("ph", Json.Str "M");
        ("pid", Json.Num 1.);
        ("tid", Json.Num (float_of_int tid));
        ("args", Json.Obj [ ("name", Json.Str value) ]) ]
  in
  let root =
    List.fold_left
      (fun best (c : Span.complete) ->
         match best with
         | None -> Some c
         | Some (b : Span.complete) ->
           if c.Span.depth < b.Span.depth
              || (c.Span.depth = b.Span.depth && c.Span.seq < b.Span.seq)
           then Some c
           else best)
      None spans
  in
  let thread_name =
    match root with
    | None -> "idle"
    | Some c ->
      String.concat " "
        (c.Span.name
         :: List.map
              (fun (k, v) ->
                 Format.asprintf "%s=%a" k Span.pp_value v)
              c.Span.attrs)
  in
  let root_domain =
    match root with None -> 1 | Some c -> c.Span.domain
  in
  let domains =
    List.sort_uniq Int.compare
      (List.map (fun (c : Span.complete) -> c.Span.domain) spans)
  in
  meta "process_name" "ccdac"
  :: List.map
       (fun d ->
          meta ~tid:d "thread_name"
            (if d = root_domain then thread_name
             else Printf.sprintf "worker %d" d))
       domains

let events_json spans =
  Json.Obj
    [ ( "traceEvents",
        Json.Arr
          (metadata_events spans
           @ List.map event_json spans
           @ List.concat_map counter_events spans) );
      ("displayTimeUnit", Json.Str "ms") ]

let chrome_trace ~path =
  let buf = ref [] in
  let closed = ref false in
  let on_span c = if not !closed then buf := c :: !buf in
  let close () =
    if not !closed then begin
      closed := true;
      let spans =
        List.sort
          (fun (a : Span.complete) b -> Int.compare a.Span.seq b.Span.seq)
          !buf
      in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Json.to_string (events_json spans)))
    end
  in
  { on_span; close }

let with_ sink f =
  Span.with_sink sink.on_span (fun () ->
      Fun.protect ~finally:sink.close f)
