type value =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type complete = {
  name : string;
  attrs : (string * value) list;
  start_ns : int64;
  duration_ns : int64;
  depth : int;
  parent : string option;
  seq : int;
}

type sink_id = int

let sinks : (sink_id * (complete -> unit)) list ref = ref []
let collectors : complete list ref list ref = ref []
let stack : string list ref = ref []
let next_seq = ref 0
let next_sink = ref 0

let active () = !sinks <> [] || !collectors <> []

let deliver c =
  List.iter (fun (_, k) -> k c) !sinks;
  List.iter (fun buf -> buf := c :: !buf) !collectors

let with_ ?(attrs = []) ~name f =
  if not (active ()) then f ()
  else begin
    let parent = match !stack with [] -> None | p :: _ -> Some p in
    let depth = List.length !stack in
    let seq = !next_seq in
    incr next_seq;
    stack := name :: !stack;
    let start_ns = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let duration_ns = Clock.since_ns start_ns in
        (match !stack with
         | _ :: rest -> stack := rest
         | [] -> ());
        deliver { name; attrs; start_ns; duration_ns; depth; parent; seq })
      f
  end

let add_sink k =
  let id = !next_sink in
  incr next_sink;
  sinks := (id, k) :: !sinks;
  id

let remove_sink id = sinks := List.filter (fun (i, _) -> i <> id) !sinks

let with_sink k f =
  let id = add_sink k in
  Fun.protect ~finally:(fun () -> remove_sink id) f

let collect f =
  let buf = ref [] in
  collectors := buf :: !collectors;
  let x =
    Fun.protect
      ~finally:(fun () -> collectors := List.filter (fun b -> b != buf) !collectors)
      f
  in
  (x, List.sort (fun a b -> Int.compare a.seq b.seq) !buf)

let pp_value ppf = function
  | Str s -> Format.pp_print_string ppf s
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Bool b -> Format.pp_print_bool ppf b

let json_value = function
  | Str s -> Json.Str s
  | Int i -> Json.Num (float_of_int i)
  | Float f -> Json.Num f
  | Bool b -> Json.Bool b
