type value =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type complete = {
  name : string;
  attrs : (string * value) list;
  start_ns : int64;
  duration_ns : int64;
  depth : int;
  parent : string option;
  seq : int;
  domain : int;
  mem : Memory.delta option;
}

type sink_id = int

(* Domain safety mirrors Metrics: the nesting stack and the collector
   list are domain-local (propagated into workers via {!Context});
   sinks are process-global.  Delivery — sink callbacks plus appends to
   possibly-shared collector buffers — is serialized by one mutex. *)

let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let sinks : (sink_id * (complete -> unit)) list ref = ref []

let collectors_key : complete list ref list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack_key : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let collectors () = Domain.DLS.get collectors_key
let stack () = Domain.DLS.get stack_key

let next_seq = Atomic.make 0
let next_sink = Atomic.make 0

let active () = !sinks <> [] || !(collectors ()) <> []

let deliver c =
  let bufs = !(collectors ()) in
  locked (fun () ->
      List.iter (fun (_, k) -> k c) !sinks;
      List.iter (fun buf -> buf := c :: !buf) bufs)

let with_ ?(attrs = []) ~name f =
  if not (active ()) then f ()
  else begin
    let stack = stack () in
    let parent = match !stack with [] -> None | p :: _ -> Some p in
    let depth = List.length !stack in
    let seq = Atomic.fetch_and_add next_seq 1 in
    let domain = (Domain.self () :> int) in
    stack := name :: !stack;
    let mem0 = Memory.start () in
    let start_ns = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let duration_ns = Clock.since_ns start_ns in
        let mem = Option.map Memory.finish mem0 in
        (match !stack with
         | _ :: rest -> stack := rest
         | [] -> ());
        deliver
          { name; attrs; start_ns; duration_ns; depth; parent; seq; domain;
            mem })
      f
  end

let add_sink k =
  let id = Atomic.fetch_and_add next_sink 1 in
  locked (fun () -> sinks := (id, k) :: !sinks);
  id

let remove_sink id =
  locked (fun () -> sinks := List.filter (fun (i, _) -> i <> id) !sinks)

let with_sink k f =
  let id = add_sink k in
  Fun.protect ~finally:(fun () -> remove_sink id) f

let collect f =
  let buf = ref [] in
  let r = collectors () in
  r := buf :: !r;
  let x =
    Fun.protect
      ~finally:(fun () -> r := List.filter (fun b -> b != buf) !r)
      f
  in
  (* freeze under the lock: workers holding a captured reference may
     still be delivering into [buf] *)
  let spans = locked (fun () -> !buf) in
  (x, List.sort (fun a b -> Int.compare a.seq b.seq) spans)

(* --- cross-domain propagation (used by Context) --- *)

type ctx = {
  c_stack : string list;
  c_collectors : complete list ref list;
}

let capture_context () =
  { c_stack = !(stack ()); c_collectors = !(collectors ()) }

let with_context ctx f =
  let s = stack () and c = collectors () in
  let saved_s = !s and saved_c = !c in
  s := ctx.c_stack;
  c := ctx.c_collectors;
  Fun.protect
    ~finally:(fun () ->
      s := saved_s;
      c := saved_c)
    f

let pp_value ppf = function
  | Str s -> Format.pp_print_string ppf s
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Bool b -> Format.pp_print_bool ppf b

let json_value = function
  | Str s -> Json.Str s
  | Int i -> Json.Num (float_of_int i)
  | Float f -> Json.Num f
  | Bool b -> Json.Bool b
