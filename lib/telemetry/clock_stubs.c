/* Monotonic clock for span timing: wall time jumps (NTP, suspend) must
   never produce negative or skewed durations, so CLOCK_MONOTONIC is the
   only acceptable source.  Falls back to CLOCK_REALTIME on the (ancient)
   platforms without it. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value ccdac_telemetry_monotonic_ns(value unit)
{
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
    clock_gettime(CLOCK_REALTIME, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
