(** The metric catalogue: every id the instrumented flow may record.

    Mirrors {!Verify.Registry}: definitions are aggregated here, checked
    for duplicate ids at module initialisation, and looked up by the
    runtime store before any value is accepted — an unregistered id is a
    programming error, caught loudly ({!Metrics} raises), never a silent
    new time series.  [docs/TELEMETRY.md] is generated from the same
    fields this module exposes. *)

(** All definitions, sorted by id.  Raises [Invalid_argument] at module
    initialisation when two definitions share an id. *)
val all : Metric.t list

(** [find id]. *)
val find : string -> Metric.t option

(** [ids] is [all]'s ids in order. *)
val ids : string list

(** [by_stage stage] filters {!all}. *)
val by_stage : string -> Metric.t list
