(* The catalogue.  Keep docs/TELEMETRY.md in sync: it is the rendered
   form of exactly this list. *)

let m = Metric.make

let size_buckets = [| 4.; 16.; 64.; 256.; 1024.; 4096. |]

let time_us_buckets = [| 10.; 100.; 1e3; 1e4; 1e5; 1e6 |]

let depth_buckets = [| 1.; 2.; 4.; 8.; 16.; 64. |]

let definitions =
  [ (* flow *)
    m ~id:"flow/runs_total" ~kind:Metric.Counter ~stage:"flow" ~unit_:"1"
      ~cardinality:"1"
      ~doc:"Completed Flow.run / Flow.run_placement invocations.";
    m ~id:"flow/stage_seconds" ~kind:Metric.Gauge ~stage:"flow" ~unit_:"s"
      ~cardinality:"per stage (place, route, verify, lvs, extract, analyse)"
      ~doc:"Monotonic wall time of the last run's stage.";
    (* place *)
    m ~id:"place/cells" ~kind:Metric.Gauge ~stage:"place" ~unit_:"1"
      ~cardinality:"1"
      ~doc:"Grid size (rows x cols) of the placement just built.";
    m ~id:"place/refine_passes_total" ~kind:Metric.Counter ~stage:"place"
      ~unit_:"1" ~cardinality:"1"
      ~doc:"Full sweeps executed by the mirror-pair swap refinement.";
    m ~id:"place/refine_swaps_total" ~kind:Metric.Counter ~stage:"place"
      ~unit_:"1" ~cardinality:"1"
      ~doc:"Swaps accepted by the mirror-pair swap refinement.";
    (* route *)
    m ~id:"route/groups" ~kind:Metric.Gauge ~stage:"route" ~unit_:"1"
      ~cardinality:"1"
      ~doc:"Connected groups formed over all capacitors of the last routed \
            layout.";
    m ~id:"route/tracks" ~kind:Metric.Gauge ~stage:"route" ~unit_:"1"
      ~cardinality:"1"
      ~doc:"Total trunk tracks allocated across channels.";
    m ~id:"route/wires" ~kind:Metric.Gauge ~stage:"route" ~unit_:"1"
      ~cardinality:"1"
      ~doc:"Wire segments emitted (branches, stubs, trunks, bridges).";
    m ~id:"route/vias" ~kind:Metric.Gauge ~stage:"route" ~unit_:"1"
      ~cardinality:"1" ~doc:"Via junctions emitted.";
    m ~id:"route/check_violations_total" ~kind:Metric.Counter ~stage:"route"
      ~unit_:"1" ~cardinality:"per check rule"
      ~doc:"Post-route structural check violations, by rule id.";
    (* verify *)
    m ~id:"verify/checks_total" ~kind:Metric.Counter ~stage:"verify"
      ~unit_:"1" ~cardinality:"per artifact (tech, style, placement, layout)"
      ~doc:"Verification passes executed, by audited artifact kind.";
    m ~id:"verify/rule_fired_total" ~kind:Metric.Counter ~stage:"verify"
      ~unit_:"1" ~cardinality:"per rule"
      ~doc:"Diagnostics emitted by the rule-registry linter, by rule id.";
    (* lvs *)
    m ~id:"lvs/shapes" ~kind:Metric.Gauge ~stage:"lvs" ~unit_:"1"
      ~cardinality:"1"
      ~doc:"Shapes (pads, wires, vias) flattened and swept by the last LVS \
            extraction.";
    m ~id:"lvs/contacts" ~kind:Metric.Gauge ~stage:"lvs" ~unit_:"1"
      ~cardinality:"1"
      ~doc:"Same-layer contact pairs reported by the sweepline.";
    m ~id:"lvs/components" ~kind:Metric.Gauge ~stage:"lvs" ~unit_:"1"
      ~cardinality:"1"
      ~doc:"Connected components after closing connectivity through vias.";
    m ~id:"lvs/defects_total" ~kind:Metric.Counter ~stage:"lvs" ~unit_:"1"
      ~cardinality:"per rule"
      ~doc:"LVS diagnostics emitted, by lvs/* rule id.";
    (* extract *)
    m ~id:"extract/via_cuts" ~kind:Metric.Gauge ~stage:"extract" ~unit_:"1"
      ~cardinality:"per capacitor (C0..CN)"
      ~doc:"Physical via cuts of the capacitor's net (p^2 per junction).";
    m ~id:"extract/wirelength_um" ~kind:Metric.Gauge ~stage:"extract"
      ~unit_:"um" ~cardinality:"per capacitor (C0..CN)"
      ~doc:"Routed physical metal of the capacitor's net.";
    m ~id:"extract/bends" ~kind:Metric.Gauge ~stage:"extract" ~unit_:"1"
      ~cardinality:"per capacitor (C0..CN)"
      ~doc:"Orthogonal junctions (stub-trunk attaches plus bridge \
            landings) of the capacitor's net.";
    m ~id:"extract/nets_total" ~kind:Metric.Counter ~stage:"extract"
      ~unit_:"1" ~cardinality:"1"
      ~doc:"Per-capacitor nets extracted.";
    (* rcnet (runs inside the extract stage) *)
    m ~id:"rcnet/elmore_solves_total" ~kind:Metric.Counter ~stage:"extract"
      ~unit_:"1" ~cardinality:"1"
      ~doc:"Elmore delay solves (one tree orientation + two sweeps each).";
    m ~id:"rcnet/nodes" ~kind:Metric.(Histogram size_buckets) ~stage:"extract"
      ~unit_:"1" ~cardinality:"1"
      ~doc:"RC tree node count per Elmore solve.";
    m ~id:"rcnet/edges" ~kind:Metric.(Histogram size_buckets) ~stage:"extract"
      ~unit_:"1" ~cardinality:"1"
      ~doc:"RC tree edge count per Elmore solve.";
    m ~id:"rcnet/transient_steps_total" ~kind:Metric.Counter ~stage:"extract"
      ~unit_:"1" ~cardinality:"1"
      ~doc:"Backward-Euler steps taken by the transient solver.";
    (* analyse *)
    m ~id:"analyse/codes" ~kind:Metric.Gauge ~stage:"analyse" ~unit_:"1"
      ~cardinality:"1"
      ~doc:"DAC codes evaluated by the last nonlinearity analysis (2^N).";
    m ~id:"analyse/mc_trials_total" ~kind:Metric.Counter ~stage:"analyse"
      ~unit_:"1" ~cardinality:"1"
      ~doc:"Monte-Carlo mismatch trials evaluated.";
    (* sched: Par.Pool runtime telemetry (recorded only while
       Par.Sched.enabled; docs/PARALLEL.md#scheduler-telemetry) *)
    m ~id:"sched/batches_total" ~kind:Metric.Counter ~stage:"sched" ~unit_:"1"
      ~cardinality:"1"
      ~doc:"Parallel batches executed by Par.Pool while scheduler telemetry \
            was on.";
    m ~id:"sched/chunks_total" ~kind:Metric.Counter ~stage:"sched" ~unit_:"1"
      ~cardinality:"per executor (caller, worker)"
      ~doc:"Work chunks executed, split by whether the submitting domain \
            drained them itself or a spawned worker ran them.";
    m ~id:"sched/queue_depth" ~kind:Metric.(Histogram depth_buckets)
      ~stage:"sched" ~unit_:"1" ~cardinality:"1"
      ~doc:"Chunks still queued at each dequeue — the backlog a chunk left \
            behind when an executor picked it up.";
    m ~id:"sched/chunk_exec_us" ~kind:Metric.(Histogram time_us_buckets)
      ~stage:"sched" ~unit_:"us" ~cardinality:"1"
      ~doc:"Per-chunk execution time (dequeue to completion).";
    m ~id:"sched/chunk_wait_us" ~kind:Metric.(Histogram time_us_buckets)
      ~stage:"sched" ~unit_:"us" ~cardinality:"1"
      ~doc:"Per-chunk queue wait (batch enqueue to dequeue).";
    m ~id:"sched/caller_blocked_us_total" ~kind:Metric.Counter ~stage:"sched"
      ~unit_:"us" ~cardinality:"1"
      ~doc:"Time submitting domains spent asleep on the batch barrier with \
            an empty queue (pure stall: nothing left to steal).";
    m ~id:"sched/imbalance" ~kind:Metric.Gauge ~stage:"sched" ~unit_:"1"
      ~cardinality:"1"
      ~doc:"Slowest-chunk tail of the last batch: max chunk time over mean \
            chunk time (1.0 = perfectly balanced).";
    m ~id:"sched/utilization" ~kind:Metric.Gauge ~stage:"sched" ~unit_:"1"
      ~cardinality:"1"
      ~doc:"Busy fraction of the last batch: total chunk execution time \
            over (jobs x batch wall time).";
    m ~id:"sched/pool-degraded" ~kind:Metric.Counter ~stage:"sched" ~unit_:"1"
      ~cardinality:"1"
      ~doc:"Worker domains requested but not spawned (Domain.spawn hit the \
            domain limit); Pool.stats carries the same signal per pool.";
    (* serve: placement-as-a-service daemon (docs/SERVE.md) *)
    m ~id:"serve/accepted_total" ~kind:Metric.Counter ~stage:"serve"
      ~unit_:"1" ~cardinality:"1"
      ~doc:"Requests that parsed, validated and entered the queue.";
    m ~id:"serve/rejected_total" ~kind:Metric.Counter ~stage:"serve"
      ~unit_:"1"
      ~cardinality:
        "per reason (malformed, invalid-request, verify-rejected, \
         queue-full, internal-error)"
      ~doc:"Requests answered with an error or busy response, by the \
            structured error code.";
    m ~id:"serve/cache_hits_total" ~kind:Metric.Counter ~stage:"serve"
      ~unit_:"1" ~cardinality:"1"
      ~doc:"Requests served from the content-addressed result cache.";
    m ~id:"serve/cache_misses_total" ~kind:Metric.Counter ~stage:"serve"
      ~unit_:"1" ~cardinality:"1"
      ~doc:"Requests that had to compute a fresh flow run.";
    m ~id:"serve/cache_entries" ~kind:Metric.Gauge ~stage:"serve" ~unit_:"1"
      ~cardinality:"1"
      ~doc:"In-memory result-cache entries after the last store.";
    m ~id:"serve/in_flight" ~kind:Metric.Gauge ~stage:"serve" ~unit_:"1"
      ~cardinality:"1"
      ~doc:"Requests currently being computed (batch in progress).";
    m ~id:"serve/queue_depth" ~kind:Metric.(Histogram depth_buckets)
      ~stage:"serve" ~unit_:"1" ~cardinality:"1"
      ~doc:"Accepted-but-not-yet-scheduled requests observed at each \
            enqueue.";
    m ~id:"serve/request_us" ~kind:Metric.(Histogram time_us_buckets)
      ~stage:"serve" ~unit_:"us" ~cardinality:"1"
      ~doc:"Per-request service time, arrival to response line (cache \
            hits included).";
    (* qor *)
    m ~id:"qor/records_total" ~kind:Metric.Counter ~stage:"qor" ~unit_:"1"
      ~cardinality:"1"
      ~doc:"QoR records appended to a ledger.";
    m ~id:"qor/ledger_records" ~kind:Metric.Gauge ~stage:"qor" ~unit_:"1"
      ~cardinality:"1"
      ~doc:"Records parsed from the last ledger load.";
    m ~id:"qor/diffs_total" ~kind:Metric.Counter ~stage:"qor" ~unit_:"1"
      ~cardinality:"1"
      ~doc:"Baseline comparisons executed by the regression sentinel.";
    m ~id:"qor/verdicts_total" ~kind:Metric.Counter ~stage:"qor" ~unit_:"1"
      ~cardinality:"per verdict (improved, unchanged, regressed, incomparable)"
      ~doc:"Per-metric verdicts emitted across comparisons, by verdict.";
    m ~id:"qor/explain_elements" ~kind:Metric.Gauge ~stage:"qor" ~unit_:"1"
      ~cardinality:"1"
      ~doc:"Physical elements in the last attribution breakdown (delay \
            parts plus capacitor INL shares)." ]

let all =
  let sorted =
    List.sort (fun a b -> String.compare a.Metric.id b.Metric.id) definitions
  in
  let rec dup = function
    | a :: (b :: _ as rest) ->
      if String.equal a.Metric.id b.Metric.id then Some a.Metric.id
      else dup rest
    | [ _ ] | [] -> None
  in
  match dup sorted with
  | Some id -> invalid_arg ("Telemetry.Registry: duplicate metric id " ^ id)
  | None -> sorted

let table =
  lazy
    (let t = Hashtbl.create 64 in
     List.iter (fun def -> Hashtbl.replace t def.Metric.id def) all;
     t)

let find id = Hashtbl.find_opt (Lazy.force table) id

let ids = List.map (fun def -> def.Metric.id) all

let by_stage stage =
  List.filter (fun def -> String.equal def.Metric.stage stage) all
