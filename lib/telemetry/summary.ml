type t = {
  name : string;
  attrs : (string * Span.value) list;
  spans : Span.complete list;
  metrics : Metrics.dump;
  stages : (string * float) list;
  total_s : float;
}

let empty =
  { name = ""; attrs = []; spans = []; metrics = Metrics.empty; stages = [];
    total_s = 0. }

let record ?(attrs = []) ~name f =
  let (x, metrics), spans =
    Span.collect (fun () ->
        Metrics.collect (fun () -> Span.with_ ~attrs ~name f))
  in
  (* The root is the shallowest span; its direct children are the
     stages.  Depths are absolute (an enclosing CLI span deepens
     everything uniformly), so work relative to the root's depth. *)
  let root_depth =
    List.fold_left (fun acc (s : Span.complete) -> Int.min acc s.Span.depth)
      max_int spans
  in
  let root =
    List.find_opt
      (fun (s : Span.complete) ->
         s.Span.depth = root_depth && String.equal s.Span.name name)
      spans
  in
  let stages =
    List.filter_map
      (fun (s : Span.complete) ->
         if s.Span.depth = root_depth + 1 && s.Span.parent = Some name then
           Some (s.Span.name, Clock.to_s s.Span.duration_ns)
         else None)
      spans
  in
  let total_s =
    match root with
    | Some r -> Clock.to_s r.Span.duration_ns
    | None -> 0.
  in
  (x, { name; attrs; spans; metrics; stages; total_s })

let stage_seconds t name = List.assoc_opt name t.stages

let stage_names t = List.map fst t.stages

let seconds_or_0 t name = Option.value ~default:0. (stage_seconds t name)

let place_route_seconds t = seconds_or_0 t "place" +. seconds_or_0 t "route"

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %.3f ms total@,"
    (if t.name = "" then "(empty)" else t.name)
    (1e3 *. t.total_s);
  List.iter
    (fun (stage, s) -> Format.fprintf ppf "  %-10s %10.3f ms@," stage (1e3 *. s))
    t.stages;
  Format.fprintf ppf "@]"

let to_json t =
  Json.Obj
    [ ("name", Json.Str t.name);
      ( "attrs",
        Json.Obj (List.map (fun (k, v) -> (k, Span.json_value v)) t.attrs) );
      ("total_s", Json.Num t.total_s);
      ( "stages_s",
        Json.Obj (List.map (fun (k, s) -> (k, Json.Num s)) t.stages) );
      ("metrics", Metrics.to_json t.metrics) ]
