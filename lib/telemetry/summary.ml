type t = {
  name : string;
  attrs : (string * Span.value) list;
  spans : Span.complete list;
  metrics : Metrics.dump;
  stages : (string * float) list;
  mem_stages : (string * Memory.delta) list;
  total_s : float;
  mem_total : Memory.delta option;
}

let empty =
  { name = ""; attrs = []; spans = []; metrics = Metrics.empty; stages = [];
    mem_stages = []; total_s = 0.; mem_total = None }

let record ?(attrs = []) ~name f =
  let (x, metrics), spans =
    Span.collect (fun () ->
        Metrics.collect (fun () -> Span.with_ ~attrs ~name f))
  in
  (* The root is the shallowest span; its direct children are the
     stages.  Depths are absolute (an enclosing CLI span deepens
     everything uniformly), so work relative to the root's depth. *)
  let root_depth =
    List.fold_left (fun acc (s : Span.complete) -> Int.min acc s.Span.depth)
      max_int spans
  in
  let root =
    List.find_opt
      (fun (s : Span.complete) ->
         s.Span.depth = root_depth && String.equal s.Span.name name)
      spans
  in
  let stage_spans =
    List.filter
      (fun (s : Span.complete) ->
         s.Span.depth = root_depth + 1 && s.Span.parent = Some name)
      spans
  in
  let stages =
    List.map
      (fun (s : Span.complete) ->
         (s.Span.name, Clock.to_s s.Span.duration_ns))
      stage_spans
  in
  let mem_stages =
    List.filter_map
      (fun (s : Span.complete) ->
         Option.map (fun d -> (s.Span.name, d)) s.Span.mem)
      stage_spans
  in
  let total_s =
    match root with
    | Some r -> Clock.to_s r.Span.duration_ns
    | None -> 0.
  in
  let mem_total = Option.bind root (fun r -> r.Span.mem) in
  (x, { name; attrs; spans; metrics; stages; mem_stages; total_s; mem_total })

let stage_seconds t name = List.assoc_opt name t.stages

let stage_names t = List.map fst t.stages

let stage_memory t name = List.assoc_opt name t.mem_stages

let memory_stages t = t.mem_stages

let total_memory t = t.mem_total

let stage_alloc_mb t name =
  Option.map Memory.allocated_mb (stage_memory t name)

let seconds_or_0 t name = Option.value ~default:0. (stage_seconds t name)

let place_route_seconds t = seconds_or_0 t "place" +. seconds_or_0 t "route"

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %.3f ms total@,"
    (if t.name = "" then "(empty)" else t.name)
    (1e3 *. t.total_s);
  List.iter
    (fun (stage, s) ->
       match stage_memory t stage with
       | None ->
         Format.fprintf ppf "  %-10s %10.3f ms@," stage (1e3 *. s)
       | Some d ->
         Format.fprintf ppf "  %-10s %10.3f ms  %8.2f MB alloc@," stage
           (1e3 *. s) (Memory.allocated_mb d))
    t.stages;
  (match t.mem_total with
   | None -> ()
   | Some d ->
     Format.fprintf ppf "  %-10s %8.2f MB alloc, %.2f MB peak heap, %d major gc@,"
       "memory" (Memory.allocated_mb d) (Memory.peak_heap_mb d)
       d.Memory.major_collections);
  Format.fprintf ppf "@]"

let memory_json t =
  match t.mem_total with
  | None -> Json.Null
  | Some d ->
    Json.Obj
      [ ( "stages_alloc_mb",
          Json.Obj
            (List.map
               (fun (k, d) -> (k, Json.Num (Memory.allocated_mb d)))
               t.mem_stages) );
        ("alloc_mb_total", Json.Num (Memory.allocated_mb d));
        ("peak_heap_mb", Json.Num (Memory.peak_heap_mb d));
        ("major_collections", Json.Num (float_of_int d.Memory.major_collections)) ]

let to_json t =
  Json.Obj
    [ ("name", Json.Str t.name);
      ( "attrs",
        Json.Obj (List.map (fun (k, v) -> (k, Span.json_value v)) t.attrs) );
      ("total_s", Json.Num t.total_s);
      ( "stages_s",
        Json.Obj (List.map (fun (k, s) -> (k, Json.Num s)) t.stages) );
      ("memory", memory_json t);
      ("metrics", Metrics.to_json t.metrics) ]
