external now_ns : unit -> int64 = "ccdac_telemetry_monotonic_ns"

let since_ns t0 =
  let d = Int64.sub (now_ns ()) t0 in
  if Int64.compare d 0L < 0 then 0L else d

let to_s ns = Int64.to_float ns /. 1e9

let to_us ns = Int64.to_float ns /. 1e3

let since_s t0 = to_s (since_ns t0)
