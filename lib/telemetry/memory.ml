(* Memory/GC observability: Gc.quick_stat deltas around spans, with the
   same pay-nothing-when-inactive discipline as Span.with_.

   OCaml 5 allocation counters (minor_words, promoted_words, major_words,
   minor/major collection counts) are per-domain, so a span that fans work
   out through Par.Pool would otherwise only see its own domain's share.
   Each domain therefore owns a mutex-guarded "foreign ledger"; Context
   captures the submitter's ledger into workers, and every task executed
   on a domain that is not already contributing to that ledger adds its
   quick_stat delta on completion.  A span then reads ledger growth back
   — but only when it runs in the ledger's owner domain, so concurrent
   workers never absorb each other's allocation. *)

type delta = {
  allocated_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words_before : int;
  heap_words_after : int;
  top_heap_words : int;
}

(* --- enablement (Atomic: read by every domain, written by the CLI) --- *)

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let with_enabled b f =
  let saved = Atomic.get enabled_flag in
  Atomic.set enabled_flag b;
  Fun.protect ~finally:(fun () -> Atomic.set enabled_flag saved) f

(* allocated = everything that went through the minor heap plus direct
   major allocations, counting promotions once.  quick_stat's own
   minor_words only refreshes at GC events in OCaml 5, so a short span
   that triggers no collection would read 0 — [Gc.minor_words ()] reads
   the live allocation pointer instead and is exact. *)
let allocated_of (st : Gc.stat) =
  Gc.minor_words () +. st.Gc.major_words -. st.Gc.promoted_words

(* --- the foreign ledger --- *)

type ledger = {
  owner : int;  (* id of the domain whose spans may read this ledger *)
  lock : Mutex.t;
  mutable l_allocated_w : float;
  mutable l_promoted_w : float;
  mutable l_minors : int;
  mutable l_majors : int;
  mutable l_top_heap_w : int;
}

let make_ledger () =
  { owner = (Domain.self () :> int);
    lock = Mutex.create ();
    l_allocated_w = 0.;
    l_promoted_w = 0.;
    l_minors = 0;
    l_majors = 0;
    l_top_heap_w = 0 }

let ledger_key : ledger Domain.DLS.key = Domain.DLS.new_key make_ledger

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* --- sampling (Span.with_ start/finish protocol) --- *)

type sample = {
  s_ledger : ledger;
  s_own : bool;  (* sampling domain is the ledger owner *)
  s_allocated_w : float;
  s_promoted_w : float;
  s_minors : int;
  s_majors : int;
  s_compactions : int;
  s_heap_w : int;
  (* ledger counters at start (zero when not the owner) *)
  s_l_allocated_w : float;
  s_l_promoted_w : float;
  s_l_minors : int;
  s_l_majors : int;
}

let start () =
  if not (Atomic.get enabled_flag) then None
  else begin
    let st = Gc.quick_stat () in
    let led = Domain.DLS.get ledger_key in
    let own = led.owner = (Domain.self () :> int) in
    let l_alloc, l_prom, l_min, l_maj =
      if own then
        locked led.lock (fun () ->
            (led.l_allocated_w, led.l_promoted_w, led.l_minors, led.l_majors))
      else (0., 0., 0, 0)
    in
    Some
      { s_ledger = led;
        s_own = own;
        s_allocated_w = allocated_of st;
        s_promoted_w = st.Gc.promoted_words;
        s_minors = st.Gc.minor_collections;
        s_majors = st.Gc.major_collections;
        s_compactions = st.Gc.compactions;
        s_heap_w = st.Gc.heap_words;
        s_l_allocated_w = l_alloc;
        s_l_promoted_w = l_prom;
        s_l_minors = l_min;
        s_l_majors = l_maj }
  end

let finish s =
  let st = Gc.quick_stat () in
  let f_alloc, f_prom, f_min, f_maj, f_top =
    if s.s_own then
      locked s.s_ledger.lock (fun () ->
          ( s.s_ledger.l_allocated_w -. s.s_l_allocated_w,
            s.s_ledger.l_promoted_w -. s.s_l_promoted_w,
            s.s_ledger.l_minors - s.s_l_minors,
            s.s_ledger.l_majors - s.s_l_majors,
            s.s_ledger.l_top_heap_w ))
    else (0., 0., 0, 0, 0)
  in
  { allocated_words = allocated_of st -. s.s_allocated_w +. f_alloc;
    promoted_words = st.Gc.promoted_words -. s.s_promoted_w +. f_prom;
    minor_collections = st.Gc.minor_collections - s.s_minors + f_min;
    major_collections = st.Gc.major_collections - s.s_majors + f_maj;
    compactions = st.Gc.compactions - s.s_compactions;
    heap_words_before = s.s_heap_w;
    heap_words_after = st.Gc.heap_words;
    top_heap_words = Int.max st.Gc.top_heap_words f_top }

(* --- cross-domain propagation (used by Context) --- *)

type ctx = ledger

let capture_ctx () = Domain.DLS.get ledger_key

(* A task contributes its quick_stat delta to the captured ledger unless
   this domain is already feeding it — either it is the owner (whose
   spans measure directly) or an enclosing task already installed the
   same ledger here (its delta covers this one).  The physical-equality
   test handles both, and prevents double counting when Par.Pool's
   submitting domain drains its own queue chunks. *)
let with_ctx led f =
  if
    (not (Atomic.get enabled_flag))
    || Domain.DLS.get ledger_key == led
  then f ()
  else begin
    let saved = Domain.DLS.get ledger_key in
    Domain.DLS.set ledger_key led;
    let st0 = Gc.quick_stat () in
    (* [allocated_of] reads the live minor-heap pointer at call time, so
       it must be taken NOW — evaluated in the finally it would cancel
       against the end sample and erase the whole minor contribution *)
    let a0 = allocated_of st0 in
    Fun.protect
      ~finally:(fun () ->
        let st1 = Gc.quick_stat () in
        locked led.lock (fun () ->
            led.l_allocated_w <-
              led.l_allocated_w +. (allocated_of st1 -. a0);
            led.l_promoted_w <-
              led.l_promoted_w
              +. (st1.Gc.promoted_words -. st0.Gc.promoted_words);
            led.l_minors <-
              led.l_minors
              + (st1.Gc.minor_collections - st0.Gc.minor_collections);
            led.l_majors <-
              led.l_majors
              + (st1.Gc.major_collections - st0.Gc.major_collections);
            led.l_top_heap_w <-
              Int.max led.l_top_heap_w st1.Gc.top_heap_words);
        Domain.DLS.set ledger_key saved)
      f
  end

(* --- unit conversions and rendering --- *)

let bytes_per_word = Sys.word_size / 8

let words_to_mb w = w *. float_of_int bytes_per_word /. 1048576.

let allocated_mb d = words_to_mb d.allocated_words
let peak_heap_mb d = words_to_mb (float_of_int d.top_heap_words)
let heap_after_mb d = words_to_mb (float_of_int d.heap_words_after)

let to_json d =
  Json.Obj
    [ ("allocated_mb", Json.Num (allocated_mb d));
      ("promoted_mb", Json.Num (words_to_mb d.promoted_words));
      ("minor_collections", Json.Num (float_of_int d.minor_collections));
      ("major_collections", Json.Num (float_of_int d.major_collections));
      ("compactions", Json.Num (float_of_int d.compactions));
      ("heap_before_mb", Json.Num (words_to_mb (float_of_int d.heap_words_before)));
      ("heap_after_mb", Json.Num (heap_after_mb d));
      ("peak_heap_mb", Json.Num (peak_heap_mb d)) ]
