(** Telemetry context propagation across domains.

    Metric scopes, span collectors and the span nesting stack are all
    domain-local, so a bare [Domain.spawn] starts with a clean slate:
    its metric writes are no-ops and its spans reach only global sinks.
    A worker pool that wants parallel tasks to record as if they ran in
    the submitting domain captures the submitter's context once per
    batch and installs it around every task — {!Par.Pool} does exactly
    this, giving per-worker span attribution (each span still carries
    its own [domain] id) while scoped collection keeps working.

    Shared stores reached through a captured context are mutex-guarded;
    concurrent writes from many workers are exact. *)

type t

(** [capture ()] snapshots the calling domain's active metric scopes,
    span collectors, span stack and memory ledger ({!Memory.ctx}): a
    worker task's GC delta is credited back to the submitting domain, so
    parallel stages attribute allocation correctly. *)
val capture : unit -> t

(** [with_ t f] runs [f] with the captured context installed in the
    calling domain, restoring the previous context afterwards. *)
val with_ : t -> (unit -> 'a) -> 'a
