(** Technology files: load a custom process description from a simple
    key-value text file, so downstream users can plug their own (public)
    constants in place of the synthetic presets.

    Format — one `key value` pair per line, [#] comments, unknown keys
    rejected; every key is optional and defaults to {!Process.finfet_12nm}:

    {v
    # my process
    name        my-28nm
    unit_cap    8.0          # fF
    via_resistance 12.0      # ohm
    m1 horizontal 4.0 0.02 0.03   # direction, r ohm/um, c fF/um, cc fF/um
    gradient_theta_deg 45
    v} *)

(** [of_string text] parses a technology description.  [Error msg] names
    the offending line. *)
val of_string : string -> (Process.t, string) result

(** [load ~path]. *)
val load : path:string -> (Process.t, string) result

(** [to_string tech] renders a loadable file (round-trips through
    {!of_string}). *)
val to_string : Process.t -> string
