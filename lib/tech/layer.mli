(** Metal layers of the MOM-capacitor routing stack.

    The paper builds MOM capacitors in three metal levels with the
    bottom-plate terminal available on metal1 and the top-plate terminal on
    metal2 (Sec. V).  Routing above the array uses metal3.  Each layer has a
    reserved routing direction; a wire that changes direction must change
    layer through a via. *)

type name =
  | M1  (** bottom-plate terminal layer *)
  | M2  (** top-plate terminal layer *)
  | M3  (** trunk/bridge routing layer *)

type t = {
  name : name;
  direction : Geom.Axis.t;      (** reserved routing direction *)
  resistance : float;           (** wire sheet resistance, ohm per um of length
                                    at the quantised minimum width *)
  capacitance : float;          (** wire capacitance to ground, fF per um *)
  coupling : float;             (** sidewall coupling to an adjacent wire at
                                    minimum spacing, fF per um of overlap *)
}

val equal_name : name -> name -> bool
val pp_name : Format.formatter -> name -> unit

(** [direction_of stack n] looks the layer up in a stack; raises
    [Invalid_argument] if the stack does not define [n]. *)
val find : t list -> name -> t
