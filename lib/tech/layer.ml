type name =
  | M1
  | M2
  | M3

type t = {
  name : name;
  direction : Geom.Axis.t;
  resistance : float;
  capacitance : float;
  coupling : float;
}

let equal_name a b =
  match a, b with
  | M1, M1 | M2, M2 | M3, M3 -> true
  | M1, (M2 | M3) | M2, (M1 | M3) | M3, (M1 | M2) -> false

let pp_name ppf n =
  Format.pp_print_string ppf
    (match n with
     | M1 -> "M1"
     | M2 -> "M2"
     | M3 -> "M3")

let find stack n =
  match List.find_opt (fun layer -> equal_name layer.name n) stack with
  | Some layer -> layer
  | None -> invalid_arg "Layer.find: layer not in stack"
