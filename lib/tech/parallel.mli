(** Parallel-wire electrical transforms (Sec. IV-B4).

    FinFET metal widths are quantised, so a wider effective wire is built
    from [p] minimum-width wires routed side by side.  With [p] parallel
    wires: wire resistance divides by [p], wire capacitance multiplies by
    [p], and a layer change becomes a [p x p] via array whose effective
    resistance divides by [p^2]. *)

(** [wire_resistance layer ~length ~p] in ohm.  Requires [p >= 1],
    [length >= 0]. *)
val wire_resistance : Layer.t -> length:float -> p:int -> float

(** [wire_capacitance layer ~length ~p] to ground, in fF. *)
val wire_capacitance : Layer.t -> length:float -> p:int -> float

(** [via_resistance tech ~p] of one logical junction ([p^2] physical cuts). *)
val via_resistance : Process.t -> p:int -> float

(** [via_count ~p] physical via cuts of one logical junction. *)
val via_count : p:int -> int

(** [bundle_width tech ~p] lateral space occupied by a [p]-wire bundle, um. *)
val bundle_width : Process.t -> p:int -> float

(** [track_span tech ~p] channel width consumed by one routing track carrying
    a [p]-wire bundle, including the spacing to the next track, um. *)
val track_span : Process.t -> p:int -> float
