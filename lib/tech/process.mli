(** Technology description.

    The paper evaluates on a commercial 12 nm FinFET process whose exact
    constants are proprietary.  [finfet_12nm] is a synthetic stand-in with
    FinFET-class magnitudes: high per-um wire resistance, via resistance
    comparable to several micrometres of wire, 64 nm routing pitch, and MOM
    unit capacitors of 5 fF built in three metal layers (bottom plate on M1,
    top plate on M2).  All comparisons in the paper are relative between
    placement styles under one technology, so only these magnitudes and
    their ratios matter, not the exact proprietary values; see DESIGN.md.

    Units: lengths in um, resistance in ohm, capacitance in fF,
    angle in radians. *)

type t = {
  name : string;
  stack : Layer.t list;         (** M1..M3 with reserved directions *)
  via_resistance : float;       (** ohm per single via cut *)
  plate_resistance : float;     (** ohm/um of abutting-finger (device-layer)
                                    conduction between adjacent unit cells of
                                    one capacitor.  Much smaller than routing
                                    wire resistance: the merged MOM fingers
                                    are wide multi-layer plates.  This is what
                                    lets a connected group charge through its
                                    own body from one short trunk (Sec. V:
                                    "nearest-neighbor connections using the
                                    same metal layer with no vias"). *)
  wire_pitch : float;           (** minimum routing pitch in channels, um *)
  cell_width : float;           (** unit MOM capacitor width, um *)
  cell_height : float;          (** unit MOM capacitor height, um *)
  cell_spacing : float;         (** spacing between adjacent unit cells, um *)
  unit_cap : float;             (** C_u, fF *)
  top_substrate_cap : float;    (** top-plate wire cap to substrate, fF/um *)
  gradient_ppm : float;         (** oxide gradient magnitude, ppm/um (Sec. II-C1) *)
  gradient_theta : float;       (** oxide gradient angle, radians in [0, pi] *)
  rho_u : float;                (** correlation base, Eq. 4 *)
  corr_length : float;          (** L_c, um, Eq. 5.  The paper quotes
                                    rho_u = 0.9, L_c = 1 mm from [1], [8];
                                    with distances in um that renders every
                                    placement statistically identical
                                    (rho > 0.99 across the whole array), so
                                    the presets use an L_c of the order of
                                    one cell pitch — rho_u per neighbouring
                                    cell, the grid-scale reading of the
                                    correlation model.  See DESIGN.md. *)
  mismatch_coeff : float;       (** A_f expressed as the fractional sigma of a
                                    1 fF capacitor: sigma_u/C_u =
                                    mismatch_coeff * sqrt(1 fF / C_u) *)
}

(** Synthetic 12 nm FinFET-class preset used for all paper experiments:
    C_u = 5 fF, 64 nm pitch, gamma = 10 ppm/um, rho_u = 0.9, L_c = 1 mm,
    A_f = 0.85 % at 1 fF — the constants quoted in Sec. V. *)
val finfet_12nm : t

(** Bulk-node preset for the ablation of Sec. I's claim: vias are nearly
    free (sub-ohm) and wires are several times less resistive, which is the
    regime where chessboard-style high-via placements were viable. *)
val bulk_legacy : t

(** Horizontal centre-to-centre pitch of unit cells, excluding channels. *)
val cell_pitch_x : t -> float

(** Vertical centre-to-centre pitch of unit cells. *)
val cell_pitch_y : t -> float

(** Fractional standard deviation sigma_u / C_u of one unit capacitor,
    from the Tripathi-Murmann style coefficient (Sec. II-C2). *)
val sigma_rel : t -> float

(** Absolute sigma_u of one unit capacitor, fF. *)
val sigma_u : t -> float

val layer : t -> Layer.name -> Layer.t
val pp : Format.formatter -> t -> unit
