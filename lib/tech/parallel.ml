let check_p p = if p < 1 then invalid_arg "Parallel: p must be >= 1"

let wire_resistance (layer : Layer.t) ~length ~p =
  check_p p;
  assert (length >= 0.);
  layer.Layer.resistance *. length /. float_of_int p

let wire_capacitance (layer : Layer.t) ~length ~p =
  check_p p;
  assert (length >= 0.);
  layer.Layer.capacitance *. length *. float_of_int p

let via_resistance (tech : Process.t) ~p =
  check_p p;
  tech.Process.via_resistance /. float_of_int (p * p)

let via_count ~p =
  check_p p;
  p * p

let bundle_width (tech : Process.t) ~p =
  check_p p;
  float_of_int p *. tech.Process.wire_pitch

let track_span (tech : Process.t) ~p =
  check_p p;
  float_of_int (p + 1) *. tech.Process.wire_pitch
