let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  List.filter (fun t -> t <> "")
    (String.split_on_char ' '
       (String.map (fun c -> if c = '\t' then ' ' else c)
          (String.trim (strip_comment line))))

let parse_float key s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> failwith (Printf.sprintf "%s: not a number (%S)" key s)

let parse_direction key s =
  match String.lowercase_ascii s with
  | "horizontal" | "h" -> Geom.Axis.Horizontal
  | "vertical" | "v" -> Geom.Axis.Vertical
  | other -> failwith (Printf.sprintf "%s: bad direction %S" key other)

let set_layer stack name ~direction ~resistance ~capacitance ~coupling =
  List.map
    (fun (layer : Layer.t) ->
       if Layer.equal_name layer.Layer.name name then
         { Layer.name; direction; resistance; capacitance; coupling }
       else layer)
    stack

let of_string text =
  let apply tech line =
    match tokens line with
    | [] -> tech
    | [ "name"; v ] -> { tech with Process.name = v }
    | [ "via_resistance"; v ] ->
      { tech with Process.via_resistance = parse_float "via_resistance" v }
    | [ "plate_resistance"; v ] ->
      { tech with Process.plate_resistance = parse_float "plate_resistance" v }
    | [ "wire_pitch"; v ] ->
      { tech with Process.wire_pitch = parse_float "wire_pitch" v }
    | [ "cell_width"; v ] ->
      { tech with Process.cell_width = parse_float "cell_width" v }
    | [ "cell_height"; v ] ->
      { tech with Process.cell_height = parse_float "cell_height" v }
    | [ "cell_spacing"; v ] ->
      { tech with Process.cell_spacing = parse_float "cell_spacing" v }
    | [ "unit_cap"; v ] ->
      { tech with Process.unit_cap = parse_float "unit_cap" v }
    | [ "top_substrate_cap"; v ] ->
      { tech with Process.top_substrate_cap = parse_float "top_substrate_cap" v }
    | [ "gradient_ppm"; v ] ->
      { tech with Process.gradient_ppm = parse_float "gradient_ppm" v }
    | [ "gradient_theta_deg"; v ] ->
      { tech with
        Process.gradient_theta =
          parse_float "gradient_theta_deg" v *. Float.pi /. 180. }
    | [ "rho_u"; v ] -> { tech with Process.rho_u = parse_float "rho_u" v }
    | [ "corr_length"; v ] ->
      { tech with Process.corr_length = parse_float "corr_length" v }
    | [ "mismatch_coeff"; v ] ->
      { tech with Process.mismatch_coeff = parse_float "mismatch_coeff" v }
    | [ ("m1" | "m2" | "m3") as layer_key; dir; r; c; cc ] ->
      let name =
        match layer_key with
        | "m1" -> Layer.M1
        | "m2" -> Layer.M2
        | _ -> Layer.M3
      in
      { tech with
        Process.stack =
          set_layer tech.Process.stack name
            ~direction:(parse_direction layer_key dir)
            ~resistance:(parse_float layer_key r)
            ~capacitance:(parse_float layer_key c)
            ~coupling:(parse_float layer_key cc) }
    | key :: _ -> failwith (Printf.sprintf "unknown or malformed key %S" key)
  in
  try
    let tech =
      List.fold_left apply Process.finfet_12nm (String.split_on_char '\n' text)
    in
    (* sanity: everything electrical must stay positive *)
    if tech.Process.unit_cap <= 0. || tech.Process.wire_pitch <= 0.
       || tech.Process.cell_width <= 0. || tech.Process.cell_height <= 0.
       || tech.Process.via_resistance <= 0.
       || tech.Process.rho_u <= 0. || tech.Process.rho_u >= 1.
       || tech.Process.corr_length <= 0.
    then Error "technology constants out of range"
    else Ok tech
  with Failure msg -> Error msg

let load ~path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | s -> of_string s
  | exception Sys_error msg -> Error msg

let to_string (tech : Process.t) =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "# ccdac technology file\n";
  add "name %s\n" tech.Process.name;
  add "via_resistance %g\n" tech.Process.via_resistance;
  add "plate_resistance %g\n" tech.Process.plate_resistance;
  add "wire_pitch %g\n" tech.Process.wire_pitch;
  add "cell_width %g\n" tech.Process.cell_width;
  add "cell_height %g\n" tech.Process.cell_height;
  add "cell_spacing %g\n" tech.Process.cell_spacing;
  add "unit_cap %g\n" tech.Process.unit_cap;
  add "top_substrate_cap %g\n" tech.Process.top_substrate_cap;
  add "gradient_ppm %g\n" tech.Process.gradient_ppm;
  add "gradient_theta_deg %g\n" (tech.Process.gradient_theta *. 180. /. Float.pi);
  add "rho_u %g\n" tech.Process.rho_u;
  add "corr_length %g\n" tech.Process.corr_length;
  add "mismatch_coeff %g\n" tech.Process.mismatch_coeff;
  List.iter
    (fun (layer : Layer.t) ->
       add "%s %s %g %g %g\n"
         (String.lowercase_ascii
            (Format.asprintf "%a" Layer.pp_name layer.Layer.name))
         (Geom.Axis.to_string layer.Layer.direction)
         layer.Layer.resistance layer.Layer.capacitance layer.Layer.coupling)
    tech.Process.stack;
  Buffer.contents buf
