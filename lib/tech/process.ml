type t = {
  name : string;
  stack : Layer.t list;
  via_resistance : float;
  plate_resistance : float;
  wire_pitch : float;
  cell_width : float;
  cell_height : float;
  cell_spacing : float;
  unit_cap : float;
  top_substrate_cap : float;
  gradient_ppm : float;
  gradient_theta : float;
  rho_u : float;
  corr_length : float;
  mismatch_coeff : float;
}

(* Reserved directions: M1/M3 route horizontally-vertically alternating.
   Bottom-plate branch wires live on M1 (horizontal), trunk wires in the
   vertical channels on M3 (vertical), bridge wires at the bottom on M1
   again; the top plate is on M2 (vertical column runs). *)
let finfet_stack =
  [ { Layer.name = Layer.M1; direction = Geom.Axis.Horizontal;
      resistance = 10.0; capacitance = 0.010; coupling = 0.020 };
    { Layer.name = Layer.M2; direction = Geom.Axis.Vertical;
      resistance = 10.0; capacitance = 0.010; coupling = 0.020 };
    { Layer.name = Layer.M3; direction = Geom.Axis.Vertical;
      resistance = 18.0; capacitance = 0.012; coupling = 0.022 } ]

let finfet_12nm = {
  name = "finfet-12nm-class";
  stack = finfet_stack;
  via_resistance = 36.0;
  plate_resistance = 0.5;
  wire_pitch = 0.064;
  cell_width = 1.70;
  cell_height = 1.70;
  cell_spacing = 0.07;
  unit_cap = 5.0;
  top_substrate_cap = 0.0002;
  gradient_ppm = 10.0;
  gradient_theta = Float.pi /. 6.;
  rho_u = 0.9;
  corr_length = 2.0;
  mismatch_coeff = 0.002;
}

let bulk_stack =
  [ { Layer.name = Layer.M1; direction = Geom.Axis.Horizontal;
      resistance = 0.8; capacitance = 0.030; coupling = 0.040 };
    { Layer.name = Layer.M2; direction = Geom.Axis.Vertical;
      resistance = 0.8; capacitance = 0.030; coupling = 0.040 };
    { Layer.name = Layer.M3; direction = Geom.Axis.Vertical;
      resistance = 0.5; capacitance = 0.035; coupling = 0.045 } ]

let bulk_legacy = {
  name = "bulk-legacy";
  stack = bulk_stack;
  via_resistance = 0.8;
  plate_resistance = 0.1;
  wire_pitch = 0.28;
  cell_width = 4.0;
  cell_height = 4.0;
  cell_spacing = 0.3;
  unit_cap = 5.0;
  top_substrate_cap = 0.002;
  gradient_ppm = 10.0;
  gradient_theta = Float.pi /. 6.;
  rho_u = 0.9;
  corr_length = 4.3;
  mismatch_coeff = 0.002;
}

let cell_pitch_x t = t.cell_width +. t.cell_spacing
let cell_pitch_y t = t.cell_height +. t.cell_spacing

let sigma_rel t =
  assert (t.unit_cap > 0.);
  t.mismatch_coeff *. sqrt (1.0 /. t.unit_cap)

let sigma_u t = sigma_rel t *. t.unit_cap
let layer t n = Layer.find t.stack n

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s: Cu=%.2f fF, pitch=%.3f um, Rvia=%.1f ohm,@ cell=%.2fx%.2f um, \
     gamma=%.1f ppm/um, rho_u=%.2f, Lc=%.0f um@]"
    t.name t.unit_cap t.wire_pitch t.via_resistance t.cell_width t.cell_height
    t.gradient_ppm t.rho_u t.corr_length
