(** Counter-based RNG substreams (SplitMix64-keyed).

    A single sequential [Random.State] stream makes parallel sampling
    schedule-dependent: whichever worker draws first changes every later
    draw.  Keying an independent substream by [(seed, index)] instead
    makes the [index]-th sample a pure function of the seed — the same
    value at 1 worker or 64, in any completion order.  This is the
    determinism contract {!Dacmodel.Montecarlo} relies on
    (docs/PARALLEL.md). *)

(** [state ~seed ~index] is a fresh [Random.State.t] for substream
    [index] of [seed].  Distinct [(seed, index)] pairs give statistically
    independent streams; equal pairs give identical ones. *)
val state : seed:int -> index:int -> Random.State.t

(** [draw ~seed ~index k] is the [k]-th raw 64-bit output of the
    substream — exposed for tests and for hashing-style uses. *)
val draw : seed:int -> index:int -> int -> int64

(** The SplitMix64 finalizer, exposed for tests. *)
val mix : int64 -> int64
