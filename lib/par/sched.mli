(** Scheduler telemetry for {!Pool}: per-chunk
    enqueue→dequeue→completion timestamps, queue-depth samples, and
    batch-level stall/imbalance summaries (docs/PARALLEL.md).

    Off by default.  {!Pool.map} reads {!enabled} exactly once per
    batch (one atomic read — the {!Telemetry.Memory} discipline), and
    the instrumentation is a pure observer: batch results are bitwise
    identical with it on or off at any worker count.

    When on, every instrumented batch is delivered to all open
    {!collect} scopes and, when a {!Telemetry.Metrics} scope is active
    in the submitting domain, recorded against the [sched/*] registry
    ids.  Each chunk also runs inside a ["sched.chunk"] span, so a
    Chrome trace shows per-worker chunk slices ({!Telemetry.Sink}). *)

(** One executed work chunk. *)
type chunk = {
  c_batch : int;         (** id of the batch this chunk belongs to *)
  c_index : int;         (** position within the batch, 0-based *)
  c_items : int;         (** tasks the chunk covers *)
  c_enqueued_ns : int64; (** batch submission time (shared by the batch) *)
  c_started_ns : int64;  (** dequeue: an executor picked the chunk up *)
  c_finished_ns : int64; (** last task of the chunk completed *)
  c_domain : int;        (** id of the domain that executed it *)
  c_by_caller : bool;    (** executed by the submitting domain itself *)
  c_queue_depth : int;   (** chunks still queued right after this dequeue *)
}

(** One instrumented {!Pool.map} batch. *)
type batch = {
  b_id : int;
  b_jobs : int;             (** pool size (requested concurrency) *)
  b_workers : int;          (** worker domains alive when it ran *)
  b_items : int;
  b_chunks : chunk list;    (** in chunk order *)
  b_wall_s : float;         (** submission to last completion *)
  b_caller_blocked_s : float;
      (** caller asleep on the batch barrier with an empty queue *)
}

val enabled : unit -> bool
val set_enabled : bool -> unit

(** [with_enabled b f] runs [f] with recording set to [b], restored
    afterwards. *)
val with_enabled : bool -> (unit -> 'a) -> 'a

(** [collect f] returns [f ()] plus every batch recorded during it, in
    completion order.  Scopes may nest; batches recorded from worker
    domains (nested maps) are delivered too. *)
val collect : (unit -> 'a) -> 'a * batch list

(** {2 Derived figures} *)

val chunk_exec_s : chunk -> float
val chunk_wait_s : chunk -> float

(** Total chunk execution time of the batch, over all executors. *)
val busy_s : batch -> float

(** Slowest-chunk tail: max over mean chunk execution time ([1.0] =
    perfectly balanced; [1.0] for empty or zero-time batches). *)
val imbalance : batch -> float

(** Busy fraction: {!busy_s} over [jobs] x wall, clamped to [0, 1]. *)
val utilization : batch -> float

(** {2 Aggregation} *)

type summary = {
  batches : int;
  chunks : int;
  caller_chunks : int;       (** drained by their submitting domain *)
  items : int;
  wall_s : float;            (** sum of batch walls *)
  busy_s : float;            (** sum of chunk execution times *)
  caller_blocked_s : float;
  max_queue_depth : int;
  mean_utilization : float;  (** busy over total capacity; [nan] when
                                 no batches ran *)
  worst_imbalance : float;   (** [nan] when no batches ran *)
}

val summarize : batch list -> summary
val summary_to_json : summary -> Telemetry.Json.t
val pp_summary : Format.formatter -> summary -> unit

(** {2 Pool-facing} — called by {!Pool.map}; not for general use. *)

val next_batch_id : unit -> int

(** Deliver a completed batch to collectors and the [sched/*] metrics. *)
val record_batch : batch -> unit
