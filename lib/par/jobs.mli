(** The jobs knob: how many domains a parallel construct may use.

    Resolution order, strongest first:
    + an explicit [~jobs] argument at the call site;
    + the process-wide default set by {!set_default} (the CLI's
      [--jobs N]);
    + the [CCDAC_JOBS] environment variable;
    + [1] — serial, the deterministic baseline.

    [0] always means "auto": {!Domain.recommended_domain_count}.  Every
    parallel entry point in the tree is bitwise-deterministic in its
    results whatever this resolves to (docs/PARALLEL.md), so the knob
    only trades wall time. *)

(** ["CCDAC_JOBS"]. *)
val env_var : string

(** [auto ()] is [Domain.recommended_domain_count ()], at least 1. *)
val auto : unit -> int

(** [of_string s] parses a jobs value the way [CCDAC_JOBS] is parsed:
    whitespace is trimmed, ["0"] means auto, positive integers are taken
    as-is, and anything else (empty, negative, non-numeric) is [None] —
    an unparseable environment value falls through to serial rather than
    erroring. *)
val of_string : string -> int option

(** [set_default n] installs the process-wide default ([n <= 0] = auto). *)
val set_default : int -> unit

(** [clear_default ()] reverts to environment/serial resolution. *)
val clear_default : unit -> unit

(** [default ()] is the resolved process-wide default. *)
val default : unit -> int

(** [resolve jobs] is [max 1 n] for [Some n], else [default ()]. *)
val resolve : int option -> int
