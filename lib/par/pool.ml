(* A fixed-size Domain worker pool with a chunked work queue.

   Concurrency discipline (stdlib only — Domain, Mutex, Condition):

   - [jobs] is the total concurrency: [jobs - 1] spawned worker domains
     plus the submitting domain, which participates by draining the
     queue while it waits.  Caller participation is what makes nested
     [map] calls on one pool deadlock-free: a worker that submits a
     sub-batch runs sub-tasks itself instead of blocking.
   - Results land in per-index slots, so ordering is by construction the
     submission order whatever the completion order.
   - Every task runs inside its own exception barrier; a raising task
     yields [Error {index; exn; backtrace}] in its slot and the worker
     loop survives.  The pool never dies from a task.
   - Tasks run under the submitter's telemetry context
     ({!Telemetry.Context}), so metric scopes and span collectors opened
     in the submitting domain observe parallel work, and spans keep
     their logical parent while carrying the worker's domain id.
   - [Domain.spawn] failure (domain limit reached) degrades the pool:
     whatever spawned serves, down to fully serial in the caller. *)

type task_error = {
  index : int;
  exn : exn;
  backtrace : string;
}

exception Task_failed of task_error

let () =
  Printexc.register_printer (function
    | Task_failed { index; exn; backtrace } ->
      Some
        (Printf.sprintf "Par.Pool.Task_failed(task %d: %s)%s" index
           (Printexc.to_string exn)
           (if backtrace = "" then ""
            else "\nTask backtrace:\n" ^ backtrace))
    | _ -> None)

type t = {
  size : int;                              (* requested concurrency *)
  mutex : Mutex.t;
  work : (unit -> unit) Queue.t;           (* guarded by [mutex] *)
  wake : Condition.t;                      (* work arrived or stopping *)
  mutable stop : bool;                     (* guarded by [mutex] *)
  mutable workers : unit Domain.t list;
  mutable batches : int;                   (* parallel batches submitted;
                                              guarded by [mutex] *)
  mutable chunks : int;                    (* chunks those batches enqueued;
                                              guarded by [mutex] *)
}

let size t = t.size

let worker_count t = List.length t.workers

type stats = {
  requested : int;
  workers : int;
  degraded : bool;
  batches : int;
  chunks : int;
}

let stats t =
  Mutex.lock t.mutex;
  let batches = t.batches and chunks = t.chunks in
  Mutex.unlock t.mutex;
  let workers = worker_count t in
  { requested = t.size;
    workers;
    degraded = workers < t.size - 1;
    batches;
    chunks }

(* Worker loop: drain the queue; on empty, exit if stopping else wait.
   Tasks are exception-barriered closures, so [task ()] never raises. *)
let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    match Queue.take_opt t.work with
    | Some task -> Some task
    | None ->
      if t.stop then None
      else begin
        Condition.wait t.wake t.mutex;
        next ()
      end
  in
  let task = next () in
  Mutex.unlock t.mutex;
  match task with
  | None -> ()
  | Some task ->
    task ();
    worker_loop t

let create ~jobs =
  if jobs < 1 then invalid_arg "Par.Pool.create: jobs must be >= 1";
  (* Task backtraces are only captured while the runtime records them;
     enable recording in the creating domain here and in each worker
     below (the flag is per-domain in OCaml 5), so [task_error.backtrace]
     is populated on whichever domain the task failed. *)
  Printexc.record_backtrace true;
  let t =
    { size = jobs;
      mutex = Mutex.create ();
      work = Queue.create ();
      wake = Condition.create ();
      stop = false;
      workers = [];
      batches = 0;
      chunks = 0 }
  in
  (* Degrade gracefully: keep whatever spawned before the limit hit.
     [Domain.spawn] signals domain exhaustion as [Failure]; that one case
     is deliberately absorbed (the pool serves with fewer workers, down to
     fully serial in the caller).  Anything else is a real fault and
     propagates. *)
  (try
     for _ = 2 to jobs do
       t.workers <-
         Domain.spawn (fun () ->
             Printexc.record_backtrace true;
             worker_loop t)
         :: t.workers
     done
   with Failure _ -> ());
  (* Degraded spawn is otherwise silent: surface the missing concurrency
     through the registry (when a metric scope is collecting) and leave
     the per-pool figure readable via [stats]. *)
  let missing = jobs - 1 - worker_count t in
  if missing > 0 then
    Telemetry.Metrics.incr ~n:missing "sched/pool-degraded";
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_ ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* One task under its exception barrier.  The raw backtrace is grabbed
   first thing in the handler, before anything here can disturb it. *)
let run_one f index x =
  match f x with
  | y -> Ok y
  | exception exn ->
    let backtrace =
      Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ())
    in
    Error { index; exn; backtrace }

let serial_map f xs = List.mapi (fun i x -> run_one f i x) xs

let map t f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else if t.size <= 1 || t.workers = [] || n = 1 then serial_map f xs
  else begin
    let out = Array.make n None in
    let ctx = Telemetry.Context.capture () in
    (* Chunked queue: a few chunks per worker balances load without
       per-item queue traffic. *)
    let chunk_size = max 1 ((n + (t.size * 4) - 1) / (t.size * 4)) in
    let nchunks = (n + chunk_size - 1) / chunk_size in
    (* Scheduler telemetry (Sched): checked once per batch — one atomic
       read when off.  When on, each chunk is timestamped, samples the
       backlog it left behind, and runs inside a "sched.chunk" span; the
       records land in per-chunk slots (the same publication pattern as
       [out]: slot write, then the release/acquire on [t.mutex] in the
       completion update orders it before the caller's read). *)
    let sched_on = Sched.enabled () in
    let batch_id = if sched_on then Sched.next_batch_id () else 0 in
    let chunk_recs = if sched_on then Array.make nchunks None else [||] in
    let enqueued_ns = if sched_on then Telemetry.Clock.now_ns () else 0L in
    let submitter = (Domain.self () :> int) in
    (* Batch completion state shares the pool mutex. *)
    let remaining = ref n in
    let all_done = Condition.create () in
    let run_chunk lo hi () =
      for i = lo to hi - 1 do
        out.(i) <- Some (run_one f i items.(i))
      done
    in
    let chunk ci lo hi () =
      if sched_on then begin
        Mutex.lock t.mutex;
        let depth = Queue.length t.work in
        Mutex.unlock t.mutex;
        let started_ns = Telemetry.Clock.now_ns () in
        let dom = (Domain.self () :> int) in
        let by_caller = dom = submitter in
        Telemetry.Context.with_ ctx (fun () ->
            Telemetry.Span.with_ ~name:"sched.chunk"
              ~attrs:
                [ ("batch", Telemetry.Span.Int batch_id);
                  ("chunk", Telemetry.Span.Int ci);
                  ("items", Telemetry.Span.Int (hi - lo));
                  ( "executor",
                    Telemetry.Span.Str (if by_caller then "caller" else "worker") );
                  ("queue_depth", Telemetry.Span.Int depth) ]
              (run_chunk lo hi));
        chunk_recs.(ci) <-
          Some
            { Sched.c_batch = batch_id;
              c_index = ci;
              c_items = hi - lo;
              c_enqueued_ns = enqueued_ns;
              c_started_ns = started_ns;
              c_finished_ns = Telemetry.Clock.now_ns ();
              c_domain = dom;
              c_by_caller = by_caller;
              c_queue_depth = depth }
      end
      else Telemetry.Context.with_ ctx (run_chunk lo hi);
      Mutex.lock t.mutex;
      remaining := !remaining - (hi - lo);
      if !remaining = 0 then Condition.broadcast all_done;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    let lo = ref 0 and ci = ref 0 in
    while !lo < n do
      let hi = min n (!lo + chunk_size) in
      Queue.add (chunk !ci !lo hi) t.work;
      lo := hi;
      incr ci
    done;
    t.batches <- t.batches + 1;
    t.chunks <- t.chunks + nchunks;
    Condition.broadcast t.wake;
    (* The caller drains the queue too; it only sleeps when every
       outstanding chunk is running in some other domain — that sleep is
       the batch's pure stall, attributed to [b_caller_blocked_s]. *)
    let blocked_ns = ref 0L in
    let rec drain () =
      match Queue.take_opt t.work with
      | Some task ->
        Mutex.unlock t.mutex;
        task ();
        Mutex.lock t.mutex;
        drain ()
      | None ->
        if !remaining > 0 then begin
          if sched_on then begin
            let w0 = Telemetry.Clock.now_ns () in
            Condition.wait all_done t.mutex;
            blocked_ns := Int64.add !blocked_ns (Telemetry.Clock.since_ns w0)
          end
          else Condition.wait all_done t.mutex;
          drain ()
        end
    in
    drain ();
    Mutex.unlock t.mutex;
    if sched_on then
      Sched.record_batch
        { Sched.b_id = batch_id;
          b_jobs = t.size;
          b_workers = worker_count t;
          b_items = n;
          b_chunks =
            List.filter_map Fun.id (Array.to_list chunk_recs);
          b_wall_s = Telemetry.Clock.since_s enqueued_ns;
          b_caller_blocked_s = Telemetry.Clock.to_s !blocked_ns };
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           | None ->
             (* remaining = 0 implies every slot filled *)
             failwith "Par.Pool.map: result slot left unfilled")
         out)
  end

let reraise (e : task_error) =
  (* surface the task's own backtrace; re-raising [e.exn] bare would
     point at this frame instead *)
  raise (Task_failed e)

let map_exn t f xs =
  List.map (function Ok y -> y | Error e -> reraise e) (map t f xs)

let map_list ?jobs f xs =
  match Jobs.resolve jobs with
  | 1 -> serial_map f xs
  | jobs -> with_ ~jobs (fun t -> map t f xs)

let map_list_exn ?jobs f xs =
  List.map (function Ok y -> y | Error e -> reraise e) (map_list ?jobs f xs)
