(* A fixed-size Domain worker pool with a chunked work queue.

   Concurrency discipline (stdlib only — Domain, Mutex, Condition):

   - [jobs] is the total concurrency: [jobs - 1] spawned worker domains
     plus the submitting domain, which participates by draining the
     queue while it waits.  Caller participation is what makes nested
     [map] calls on one pool deadlock-free: a worker that submits a
     sub-batch runs sub-tasks itself instead of blocking.
   - Results land in per-index slots, so ordering is by construction the
     submission order whatever the completion order.
   - Every task runs inside its own exception barrier; a raising task
     yields [Error {index; exn; backtrace}] in its slot and the worker
     loop survives.  The pool never dies from a task.
   - Tasks run under the submitter's telemetry context
     ({!Telemetry.Context}), so metric scopes and span collectors opened
     in the submitting domain observe parallel work, and spans keep
     their logical parent while carrying the worker's domain id.
   - [Domain.spawn] failure (domain limit reached) degrades the pool:
     whatever spawned serves, down to fully serial in the caller. *)

type task_error = {
  index : int;
  exn : exn;
  backtrace : string;
}

exception Task_failed of task_error

let () =
  Printexc.register_printer (function
    | Task_failed { index; exn; backtrace } ->
      Some
        (Printf.sprintf "Par.Pool.Task_failed(task %d: %s)%s" index
           (Printexc.to_string exn)
           (if backtrace = "" then ""
            else "\nTask backtrace:\n" ^ backtrace))
    | _ -> None)

type t = {
  size : int;                              (* requested concurrency *)
  mutex : Mutex.t;
  work : (unit -> unit) Queue.t;           (* guarded by [mutex] *)
  wake : Condition.t;                      (* work arrived or stopping *)
  mutable stop : bool;                     (* guarded by [mutex] *)
  mutable workers : unit Domain.t list;
}

let size t = t.size

let worker_count t = List.length t.workers

(* Worker loop: drain the queue; on empty, exit if stopping else wait.
   Tasks are exception-barriered closures, so [task ()] never raises. *)
let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    match Queue.take_opt t.work with
    | Some task -> Some task
    | None ->
      if t.stop then None
      else begin
        Condition.wait t.wake t.mutex;
        next ()
      end
  in
  let task = next () in
  Mutex.unlock t.mutex;
  match task with
  | None -> ()
  | Some task ->
    task ();
    worker_loop t

let create ~jobs =
  if jobs < 1 then invalid_arg "Par.Pool.create: jobs must be >= 1";
  let t =
    { size = jobs;
      mutex = Mutex.create ();
      work = Queue.create ();
      wake = Condition.create ();
      stop = false;
      workers = [] }
  in
  (* Degrade gracefully: keep whatever spawned before the limit hit.
     [Domain.spawn] signals domain exhaustion as [Failure]; that one case
     is deliberately absorbed (the pool serves with fewer workers, down to
     fully serial in the caller).  Anything else is a real fault and
     propagates. *)
  (try
     for _ = 2 to jobs do
       t.workers <- Domain.spawn (fun () -> worker_loop t) :: t.workers
     done
   with Failure _ -> ());
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_ ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* One task under its exception barrier. *)
let run_one f index x =
  match f x with
  | y -> Ok y
  | exception exn ->
    let backtrace = Printexc.get_backtrace () in
    Error { index; exn; backtrace }

let serial_map f xs = List.mapi (fun i x -> run_one f i x) xs

let map t f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else if t.size <= 1 || t.workers = [] || n = 1 then serial_map f xs
  else begin
    let out = Array.make n None in
    let ctx = Telemetry.Context.capture () in
    (* Batch completion state shares the pool mutex. *)
    let remaining = ref n in
    let all_done = Condition.create () in
    let chunk lo hi () =
      for i = lo to hi - 1 do
        out.(i) <-
          Some (Telemetry.Context.with_ ctx (fun () -> run_one f i items.(i)))
      done;
      Mutex.lock t.mutex;
      remaining := !remaining - (hi - lo);
      if !remaining = 0 then Condition.broadcast all_done;
      Mutex.unlock t.mutex
    in
    (* Chunked queue: a few chunks per worker balances load without
       per-item queue traffic. *)
    let chunk_size = max 1 ((n + (t.size * 4) - 1) / (t.size * 4)) in
    Mutex.lock t.mutex;
    let lo = ref 0 in
    while !lo < n do
      let hi = min n (!lo + chunk_size) in
      Queue.add (chunk !lo hi) t.work;
      lo := hi
    done;
    Condition.broadcast t.wake;
    (* The caller drains the queue too; it only sleeps when every
       outstanding chunk is running in some other domain. *)
    let rec drain () =
      match Queue.take_opt t.work with
      | Some task ->
        Mutex.unlock t.mutex;
        task ();
        Mutex.lock t.mutex;
        drain ()
      | None ->
        if !remaining > 0 then begin
          Condition.wait all_done t.mutex;
          drain ()
        end
    in
    drain ();
    Mutex.unlock t.mutex;
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           | None ->
             (* remaining = 0 implies every slot filled *)
             failwith "Par.Pool.map: result slot left unfilled")
         out)
  end

let reraise (e : task_error) =
  (* surface the task's own backtrace; re-raising [e.exn] bare would
     point at this frame instead *)
  raise (Task_failed e)

let map_exn t f xs =
  List.map (function Ok y -> y | Error e -> reraise e) (map t f xs)

let map_list ?jobs f xs =
  match Jobs.resolve jobs with
  | 1 -> serial_map f xs
  | jobs -> with_ ~jobs (fun t -> map t f xs)

let map_list_exn ?jobs f xs =
  List.map (function Ok y -> y | Error e -> reraise e) (map_list ?jobs f xs)
