(* Scheduler telemetry for Par.Pool: per-chunk timestamps, queue-depth
   samples and batch-level stall/imbalance summaries.

   Follows the Telemetry.Memory discipline: a process-wide Atomic
   enablement flag that every [Pool.map] reads exactly once, so the
   instrumentation costs one atomic read when off and is a pure observer
   when on — chunk results are untouched either way.

   Collectors are process-global (one mutex) rather than domain-local:
   a batch record is built by the domain that submitted it, and nested
   batches submitted from inside worker-run chunks must still reach the
   collector the outermost caller opened. *)

type chunk = {
  c_batch : int;         (* id of the batch this chunk belongs to *)
  c_index : int;         (* position within the batch, 0-based *)
  c_items : int;         (* tasks the chunk covers *)
  c_enqueued_ns : int64; (* batch submission time (all chunks share it) *)
  c_started_ns : int64;  (* dequeue: an executor picked the chunk up *)
  c_finished_ns : int64; (* last task of the chunk completed *)
  c_domain : int;        (* id of the domain that executed it *)
  c_by_caller : bool;    (* executed by the submitting domain's drain loop *)
  c_queue_depth : int;   (* chunks still queued right after this dequeue *)
}

type batch = {
  b_id : int;
  b_jobs : int;             (* pool size (requested concurrency) *)
  b_workers : int;          (* worker domains alive when it ran *)
  b_items : int;
  b_chunks : chunk list;    (* in chunk order *)
  b_wall_s : float;         (* submission to last completion *)
  b_caller_blocked_s : float;
                            (* caller asleep on the barrier, queue empty *)
}

(* --- enablement (Atomic: read by every domain, written by the CLI) --- *)

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let with_enabled b f =
  let saved = Atomic.get enabled_flag in
  Atomic.set enabled_flag b;
  Fun.protect ~finally:(fun () -> Atomic.set enabled_flag saved) f

let batch_seq = Atomic.make 0

let next_batch_id () = Atomic.fetch_and_add batch_seq 1

(* --- derived per-chunk / per-batch figures --- *)

let chunk_exec_s c =
  Telemetry.Clock.to_s (Int64.sub c.c_finished_ns c.c_started_ns)

let chunk_wait_s c =
  Telemetry.Clock.to_s
    (Int64.max 0L (Int64.sub c.c_started_ns c.c_enqueued_ns))

let busy_s b = List.fold_left (fun acc c -> acc +. chunk_exec_s c) 0. b.b_chunks

let imbalance b =
  match b.b_chunks with
  | [] -> 1.
  | chunks ->
    let n = float_of_int (List.length chunks) in
    let total = busy_s b in
    let worst = List.fold_left (fun m c -> Float.max m (chunk_exec_s c)) 0. chunks in
    if total <= 0. then 1. else worst /. (total /. n)

let utilization b =
  if b.b_wall_s <= 0. then 1.
  else Float.min 1. (busy_s b /. (float_of_int (max 1 b.b_jobs) *. b.b_wall_s))

(* --- collectors (process-global, mutex-guarded) --- *)

let mutex = Mutex.create ()

(* reversed accumulation lists of every open [collect] scope; guarded by
   [mutex] (see the .cclint entry for this file) *)
let collectors : batch list ref list ref = ref []

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let collect f =
  let acc = ref [] in
  locked (fun () -> collectors := acc :: !collectors);
  let remove () =
    locked (fun () ->
        collectors := List.filter (fun c -> c != acc) !collectors)
  in
  let r = Fun.protect ~finally:remove f in
  (r, List.rev !acc)

(* --- metric emission --- *)

let note_metrics b =
  if Telemetry.Metrics.enabled () then begin
    Telemetry.Metrics.incr "sched/batches_total";
    let caller, worker =
      List.fold_left
        (fun (c, w) ch -> if ch.c_by_caller then (c + 1, w) else (c, w + 1))
        (0, 0) b.b_chunks
    in
    if caller > 0 then
      Telemetry.Metrics.incr ~n:caller ~label:"caller" "sched/chunks_total";
    if worker > 0 then
      Telemetry.Metrics.incr ~n:worker ~label:"worker" "sched/chunks_total";
    List.iter
      (fun c ->
         Telemetry.Metrics.observe "sched/queue_depth"
           (float_of_int c.c_queue_depth);
         Telemetry.Metrics.observe "sched/chunk_exec_us"
           (1e6 *. chunk_exec_s c);
         Telemetry.Metrics.observe "sched/chunk_wait_us"
           (1e6 *. chunk_wait_s c))
      b.b_chunks;
    Telemetry.Metrics.incr
      ~n:(int_of_float (1e6 *. b.b_caller_blocked_s))
      "sched/caller_blocked_us_total";
    Telemetry.Metrics.set "sched/imbalance" (imbalance b);
    Telemetry.Metrics.set "sched/utilization" (utilization b)
  end

let record_batch b =
  note_metrics b;
  locked (fun () -> List.iter (fun acc -> acc := b :: !acc) !collectors)

(* --- aggregation over a collected run --- *)

type summary = {
  batches : int;
  chunks : int;
  caller_chunks : int;       (* drained by their submitting domain *)
  items : int;
  wall_s : float;            (* sum of batch walls *)
  busy_s : float;            (* sum of chunk execution times *)
  caller_blocked_s : float;
  max_queue_depth : int;
  mean_utilization : float;  (* busy over sum (jobs x wall); wall-weighted *)
  worst_imbalance : float;
}

let summarize batches =
  let z =
    { batches = 0; chunks = 0; caller_chunks = 0; items = 0; wall_s = 0.;
      busy_s = 0.; caller_blocked_s = 0.; max_queue_depth = 0;
      mean_utilization = Float.nan; worst_imbalance = Float.nan }
  in
  match batches with
  | [] -> z
  | _ ->
    let s =
      List.fold_left
        (fun s b ->
           { batches = s.batches + 1;
             chunks = s.chunks + List.length b.b_chunks;
             caller_chunks =
               s.caller_chunks
               + List.length (List.filter (fun c -> c.c_by_caller) b.b_chunks);
             items = s.items + b.b_items;
             wall_s = s.wall_s +. b.b_wall_s;
             busy_s = s.busy_s +. busy_s b;
             caller_blocked_s = s.caller_blocked_s +. b.b_caller_blocked_s;
             max_queue_depth =
               List.fold_left
                 (fun m c -> Int.max m c.c_queue_depth)
                 s.max_queue_depth b.b_chunks;
             mean_utilization = s.mean_utilization;
             worst_imbalance = s.worst_imbalance })
        z batches
    in
    let capacity =
      List.fold_left
        (fun acc b -> acc +. (float_of_int (max 1 b.b_jobs) *. b.b_wall_s))
        0. batches
    in
    { s with
      mean_utilization =
        (if capacity <= 0. then 1. else Float.min 1. (s.busy_s /. capacity));
      worst_imbalance =
        List.fold_left (fun m b -> Float.max m (imbalance b)) 1. batches }

let summary_to_json s =
  Telemetry.Json.Obj
    [ ("batches", Telemetry.Json.Num (float_of_int s.batches));
      ("chunks", Telemetry.Json.Num (float_of_int s.chunks));
      ("caller_chunks", Telemetry.Json.Num (float_of_int s.caller_chunks));
      ("items", Telemetry.Json.Num (float_of_int s.items));
      ("wall_s", Telemetry.Json.Num s.wall_s);
      ("busy_s", Telemetry.Json.Num s.busy_s);
      ("caller_blocked_s", Telemetry.Json.Num s.caller_blocked_s);
      ("max_queue_depth", Telemetry.Json.Num (float_of_int s.max_queue_depth));
      ("utilization", Telemetry.Json.Num s.mean_utilization);
      ("imbalance", Telemetry.Json.Num s.worst_imbalance) ]

let pp_summary ppf s =
  if s.batches = 0 then
    Format.fprintf ppf "no parallel batches recorded@."
  else
    Format.fprintf ppf
      "%d batch(es), %d chunk(s) (%d caller-drained), %d item(s)@,\
       busy %.3f s of %.3f s wall  utilization %.0f%%  imbalance %.2fx@,\
       caller blocked %.3f s  max queue depth %d@."
      s.batches s.chunks s.caller_chunks s.items s.busy_s s.wall_s
      (100. *. s.mean_utilization) s.worst_imbalance s.caller_blocked_s
      s.max_queue_depth
