(** A fixed-size [Domain] worker pool with deterministic result ordering
    and per-task fault isolation (stdlib only; no domainslib).

    The contract every parallel entry point in the tree builds on
    (docs/PARALLEL.md):

    - {b Ordering}: [map] returns results in submission order, whatever
      the completion order — results land in per-index slots.
    - {b Fault isolation}: a raising task yields
      [Error {index; exn; backtrace}] in its own slot; every other task
      still completes and the pool remains usable.
    - {b Serial fallback}: [jobs = 1], a single-item batch, or total
      [Domain.spawn] failure all run in the calling domain with the same
      observable results (partial spawn failure degrades to fewer
      workers).
    - {b Telemetry inheritance}: each batch captures the submitter's
      {!Telemetry.Context}; tasks record metrics and deliver spans into
      the scopes and collectors active at submission.

    [jobs] counts total concurrency: [jobs - 1] worker domains plus the
    submitting domain, which drains the queue while it waits — which is
    also why nested [map] calls on one pool cannot deadlock. *)

type t

(** What a raising task leaves in its result slot. *)
type task_error = {
  index : int;           (** position of the task in the submitted list *)
  exn : exn;             (** the exception the task raised *)
  backtrace : string;    (** its backtrace — {!create} enables recording
                             on the caller and every worker domain, so
                             pool-run tasks always capture one *)
}

(** Raised by [map_exn] / [map_list_exn] for the first failed slot. *)
exception Task_failed of task_error

(** [create ~jobs] spawns [jobs - 1] workers.  Raises [Invalid_argument]
    when [jobs < 1].  Also turns exception-backtrace recording on (caller
    and workers), and records any spawn shortfall in the
    [sched/pool-degraded] metric when a {!Telemetry.Metrics} scope is
    collecting. *)
val create : jobs:int -> t

(** The requested concurrency (including the submitting domain). *)
val size : t -> int

(** Worker domains actually alive — [size - 1] unless spawn degraded. *)
val worker_count : t -> int

(** Achieved-vs-requested concurrency and lifetime batch counters, so
    long-lived callers (serve, bench) can detect a degraded pool. *)
type stats = {
  requested : int;   (** the [jobs] passed to {!create} *)
  workers : int;     (** worker domains actually spawned *)
  degraded : bool;   (** [workers < requested - 1] *)
  batches : int;     (** parallel (non-serial-fallback) batches run *)
  chunks : int;      (** work chunks those batches enqueued *)
}

val stats : t -> stats

(** [map t f xs] runs [f] over [xs] on the pool; result [i] is in slot
    [i].  Reentrant: tasks may themselves call [map] on [t]. *)
val map : t -> ('a -> 'b) -> 'a list -> ('b, task_error) result list

(** [map_exn t f xs] is [map] with the first failure re-raised as
    {!Task_failed} (after the whole batch completed). *)
val map_exn : t -> ('a -> 'b) -> 'a list -> 'b list

(** [shutdown t] stops the workers after the queue drains and joins
    them.  The pool must not be used afterwards. *)
val shutdown : t -> unit

(** [with_ ~jobs f] is [f (create ~jobs)] with a guaranteed shutdown. *)
val with_ : jobs:int -> (t -> 'a) -> 'a

(** [map_list ?jobs f xs] is the one-shot form: resolve [jobs] via
    {!Jobs.resolve}, run serial when it is 1, otherwise create a pool,
    map, and shut it down. *)
val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, task_error) result list

(** [map_list_exn ?jobs f xs] is {!map_list} with failures re-raised. *)
val map_list_exn : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
