(* SplitMix64 (Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
   Generators", OOPSLA 2014): an additive counter stream through a
   64-bit finalizer.  The finalizer is bijective and avalanching, so
   keying the stream start by (seed, index) yields substreams that are
   statistically independent for distinct indices — the property that
   makes per-trial Monte-Carlo draws order- and schedule-invariant. *)

let gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Substream origin: the seed xor-folded with a mixed multiple of the
   golden gamma — adjacent indices land in unrelated stream positions. *)
let origin ~seed ~index =
  Int64.logxor (Int64.of_int seed)
    (mix (Int64.mul gamma (Int64.of_int index)))

let draw ~seed ~index k =
  mix (Int64.add (origin ~seed ~index) (Int64.mul gamma (Int64.of_int (k + 1))))

let state ~seed ~index =
  let word k =
    (* keep the int positive on 64-bit; Random.State.make folds anyway *)
    Int64.to_int (Int64.logand (draw ~seed ~index k) 0x3FFFFFFFFFFFFFFFL)
  in
  Random.State.make (Array.init 4 word)
