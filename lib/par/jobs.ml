let env_var = "CCDAC_JOBS"

(* 0 = unset; any positive value is an explicit override (--jobs). *)
let override = Atomic.make 0

let auto () = max 1 (Domain.recommended_domain_count ())

let of_string s =
  match int_of_string_opt (String.trim s) with
  | Some 0 -> Some (auto ())
  | Some n when n >= 1 -> Some n
  | Some _ | None -> None

let from_env () = Option.bind (Sys.getenv_opt env_var) of_string

let set_default n = Atomic.set override (if n <= 0 then auto () else n)

let clear_default () = Atomic.set override 0

let default () =
  match Atomic.get override with
  | 0 -> (match from_env () with Some n -> n | None -> 1)
  | n -> n

let resolve = function Some n -> max 1 n | None -> default ()
