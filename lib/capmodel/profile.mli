(** Generalised systematic-variation profiles.

    The paper's Sec. II-C1 models a {e linear} oxide gradient, which an
    exactly common-centroid placement cancels to first order — making the
    random component dominate.  Real oxide/etch profiles also carry
    curvature, and a quadratic (bowl) term is {e not} cancelled by
    centroid symmetry: only dispersion fights it.  This module extends the
    variation model to arbitrary thickness profiles so that effect can be
    studied (see the bench ablation).

    A profile maps a position to the {e relative} oxide-thickness
    deviation [dt / t0]; the unit-capacitor value follows
    [C = C_u / (1 + dt/t0)] as in Eq. 3. *)

type t

(** [linear ~ppm_per_um ~theta] is the paper's gradient (Sec. II-C1). *)
val linear : ppm_per_um:float -> theta:float -> t

(** [quadratic ~ppm_per_um2 ~center] is a rotationally-symmetric bowl:
    [dt/t0 = ppm_per_um2 * 1e-6 * |p - center|^2]. *)
val quadratic : ppm_per_um2:float -> center:Geom.Point.t -> t

(** [saddle ~ppm_per_um2] is [dt/t0 = k (x^2 - y^2)] — curvature that a
    square-symmetric placement does not average out along one diagonal. *)
val saddle : ppm_per_um2:float -> t

(** [combine profiles] sums the deviations. *)
val combine : t list -> t

(** [custom f] wraps an arbitrary deviation function. *)
val custom : (Geom.Point.t -> float) -> t

(** [of_tech tech] is the [linear] profile configured by the technology
    (gradient magnitude and angle). *)
val of_tech : Tech.Process.t -> t

(** [deviation t p] is [dt / t0] at point [p]. *)
val deviation : t -> Geom.Point.t -> float

(** [unit_value tech t p] is the unit-capacitor value at [p], fF. *)
val unit_value : Tech.Process.t -> t -> Geom.Point.t -> float

(** [capacitor_value tech t positions] sums {!unit_value} (Eq. 3). *)
val capacitor_value : Tech.Process.t -> t -> Geom.Point.t array -> float

(** [systematic_shift tech t positions] is [C* - n C_u] (Eq. 12). *)
val systematic_shift : Tech.Process.t -> t -> Geom.Point.t array -> float
