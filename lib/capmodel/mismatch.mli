(** Random variation of unit capacitors (Sec. II-C2).

    Each unit capacitor carries a zero-mean random variation with
    [sigma_u^2 = A_f^2 / (W H)] — exposed through
    [Tech.Process.sigma_u] — and variations of two unit capacitors [A], [B]
    are correlated with coefficient [rho_AB = rho_u ^ (D(A,B) / L_c)]
    (Eq. 4–5), where [D] is the Euclidean distance between cell centres. *)

(** [correlation tech a b] is [rho_AB] in [0, 1]. *)
val correlation : Tech.Process.t -> Geom.Point.t -> Geom.Point.t -> float

(** [pair_sum tech ps qs] is [S_pq = sum_{a in ps} sum_{b in qs} rho_ab]
    over distinct ordered pairs drawn from two different capacitors
    (Eq. 6, cross term). *)
val pair_sum :
  Tech.Process.t -> Geom.Point.t array -> Geom.Point.t array -> float

(** [intra_sum tech ps] is [S_p = sum_{a<b} rho_ab] over unordered pairs of
    one capacitor's cells (Eq. 6, intra term). *)
val intra_sum : Tech.Process.t -> Geom.Point.t array -> float
