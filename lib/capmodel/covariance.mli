(** Capacitor-pair covariance engine (Eq. 6).

    For capacitors [C_p] (with [p] unit cells) and [C_q]:
    [sigma_p^2 = sigma_u^2 (p + 2 S_p)] and
    [Cov(p, q) = sigma_u^2 S_pq].  A built value caches the full
    covariance matrix over the capacitors of one placement, which the
    nonlinearity model (Eq. 13–14) queries for every input code. *)

type t

(** [build tech positions] precomputes the covariance matrix for capacitors
    whose unit-cell centre positions are given per capacitor index.
    Cost is quadratic in the total number of unit cells. *)
val build : Tech.Process.t -> Geom.Point.t array array -> t

(** Number of capacitors. *)
val size : t -> int

(** [variance t k] is [sigma_k^2] in fF^2.  [Cov(k, k) = variance t k]. *)
val variance : t -> int -> float

(** [covariance t j k] in fF^2; symmetric. *)
val covariance : t -> int -> int -> float

(** [sigma_of_subset t ks] is the standard deviation (fF) of the sum of the
    capacitors with indices [ks]: [sqrt(sum_j sum_k Cov(j,k))] (Eq. 13–14).
    Indices may not repeat. *)
val sigma_of_subset : t -> int list -> float

(** [sigma_weighted t ws] is the standard deviation (fF) of the weighted
    sum [sum w_k dC_k]: [sqrt(sum_j sum_k w_j w_k Cov(j,k))].  Used for the
    code-to-code differential in the DNL model, where the weights are
    [D_k(i) - D_k(i-1)] in [-1, 0, 1]. *)
val sigma_weighted : t -> (int * float) list -> float
