type t = Geom.Point.t -> float

let linear ~ppm_per_um ~theta (p : Geom.Point.t) =
  ppm_per_um *. 1e-6
  *. ((p.Geom.Point.x *. cos theta) +. (p.Geom.Point.y *. sin theta))

let quadratic ~ppm_per_um2 ~center (p : Geom.Point.t) =
  let d = Geom.Point.distance p center in
  ppm_per_um2 *. 1e-6 *. d *. d

let saddle ~ppm_per_um2 (p : Geom.Point.t) =
  ppm_per_um2 *. 1e-6
  *. ((p.Geom.Point.x *. p.Geom.Point.x) -. (p.Geom.Point.y *. p.Geom.Point.y))

let combine profiles p = List.fold_left (fun acc f -> acc +. f p) 0. profiles
let custom f = f

let of_tech (tech : Tech.Process.t) =
  linear ~ppm_per_um:tech.Tech.Process.gradient_ppm
    ~theta:tech.Tech.Process.gradient_theta

let deviation t p = t p

let unit_value (tech : Tech.Process.t) t p =
  tech.Tech.Process.unit_cap /. (1. +. t p)

let capacitor_value tech t positions =
  Array.fold_left (fun acc p -> acc +. unit_value tech t p) 0. positions

let systematic_shift tech t positions =
  capacitor_value tech t positions
  -. (float_of_int (Array.length positions) *. tech.Tech.Process.unit_cap)
