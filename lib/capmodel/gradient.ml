let thickness_ratio (tech : Tech.Process.t) ?theta (p : Geom.Point.t) =
  let theta = Option.value theta ~default:tech.Tech.Process.gradient_theta in
  let g = tech.Tech.Process.gradient_ppm *. 1e-6 in
  let projection = (p.Geom.Point.x *. cos theta) +. (p.Geom.Point.y *. sin theta) in
  1. /. (1. +. (g *. projection))

let unit_value tech ?theta p =
  tech.Tech.Process.unit_cap *. thickness_ratio tech ?theta p

let capacitor_value tech ?theta positions =
  Array.fold_left (fun acc p -> acc +. unit_value tech ?theta p) 0. positions

let systematic_shift tech ?theta positions =
  let nominal =
    float_of_int (Array.length positions) *. tech.Tech.Process.unit_cap
  in
  capacitor_value tech ?theta positions -. nominal

let worst_theta ~samples ~objective =
  if samples < 1 then invalid_arg "Gradient.worst_theta: samples must be >= 1";
  let best = ref (0., objective 0.) in
  for i = 1 to samples - 1 do
    let theta = Float.pi *. float_of_int i /. float_of_int samples in
    let value = objective theta in
    let _, best_value = !best in
    if value > best_value then best := (theta, value)
  done;
  !best
