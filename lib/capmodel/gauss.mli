(** Correlated Gaussian sampling for Monte-Carlo mismatch analysis.

    The 3-sigma model of Sec. III-A replaces the "numerical yield
    integrals" of [7]; this module provides the numerical alternative so
    the two can be compared.  Samples are drawn at the capacitor level:
    the joint distribution of [(dC_0, ..., dC_N)] is zero-mean Gaussian
    with exactly the covariance matrix of Eq. 6, so a sample needs only a
    Cholesky factor of an [(N+1) x (N+1)] matrix. *)

type sampler

(** [sampler ?seed cov] factorises the covariance of a built
    {!Covariance.t}.  A tiny diagonal jitter is added if the matrix is
    semidefinite to numerical precision.  [seed] defaults to a fixed value
    so runs are reproducible. *)
val sampler : ?seed:int -> Covariance.t -> sampler

(** [draw s] is one joint sample of the capacitor shifts, fF. *)
val draw : sampler -> float array

(** {2 Split factorisation} — for callers that draw from many
    independent [Random.State] substreams against one covariance (the
    parallel Monte-Carlo engine): factorise once, draw per stream. *)

(** A lower-triangular Cholesky factor of a covariance. *)
type factor

(** [factorize cov] is the factor {!sampler} would embed (same jitter
    discipline). *)
val factorize : Covariance.t -> factor

(** [draw_from factor state] is one joint sample using [state]'s
    variates.  [draw s] is exactly [draw_from] on the sampler's embedded
    factor and stream. *)
val draw_from : factor -> Random.State.t -> float array

(** [cholesky m] is the lower-triangular factor [l] with [l l^T = m].
    Raises [Invalid_argument] when the matrix is not (numerically)
    positive semidefinite or not square.  Exposed for tests. *)
val cholesky : float array array -> float array array

(** [standard_normal state] draws one N(0,1) variate (Box-Muller). *)
val standard_normal : Random.State.t -> float
