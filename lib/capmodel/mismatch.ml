let correlation (tech : Tech.Process.t) a b =
  let d = Geom.Point.distance a b /. tech.Tech.Process.corr_length in
  Float.exp (d *. Float.log tech.Tech.Process.rho_u)

let pair_sum tech ps qs =
  let total = ref 0. in
  Array.iter
    (fun a -> Array.iter (fun b -> total := !total +. correlation tech a b) qs)
    ps;
  !total

let intra_sum tech ps =
  let n = Array.length ps in
  let total = ref 0. in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      total := !total +. correlation tech ps.(a) ps.(b)
    done
  done;
  !total
