type t = {
  matrix : float array array;  (* Cov(j, k), fF^2; symmetric *)
}

let build tech positions =
  let n = Array.length positions in
  let sigma2_u =
    let s = Tech.Process.sigma_u tech in
    s *. s
  in
  let matrix = Array.make_matrix n n 0. in
  for j = 0 to n - 1 do
    let count_j = float_of_int (Array.length positions.(j)) in
    let intra = Mismatch.intra_sum tech positions.(j) in
    matrix.(j).(j) <- sigma2_u *. (count_j +. (2. *. intra));
    for k = j + 1 to n - 1 do
      let cross = sigma2_u *. Mismatch.pair_sum tech positions.(j) positions.(k) in
      matrix.(j).(k) <- cross;
      matrix.(k).(j) <- cross
    done
  done;
  { matrix }

let size t = Array.length t.matrix

let check_index t k =
  if k < 0 || k >= size t then invalid_arg "Covariance: capacitor index out of range"

let variance t k =
  check_index t k;
  t.matrix.(k).(k)

let covariance t j k =
  check_index t j;
  check_index t k;
  t.matrix.(j).(k)

let sigma_weighted t ws =
  let total =
    List.fold_left
      (fun acc (j, wj) ->
         List.fold_left
           (fun acc (k, wk) -> acc +. (wj *. wk *. covariance t j k))
           acc ws)
      0. ws
  in
  sqrt (Float.max 0. total)

let sigma_of_subset t ks =
  let total =
    List.fold_left
      (fun acc j ->
         List.fold_left (fun acc k -> acc +. covariance t j k) acc ks)
      0. ks
  in
  (* numerical noise can push a tiny variance below zero *)
  sqrt (Float.max 0. total)
