(** Systematic variation: linear oxide-thickness gradient (Sec. II-C1).

    With the common-centroid point as the origin, the oxide thickness at a
    point [(x, y)] is [t = t0 * (1 + g * (x cos th + y sin th))] where [g] is
    the gradient magnitude ([Process.gradient_ppm], converted from ppm/um)
    and [th] the gradient angle.  A unit capacitor at that point has value
    [Cu * t0 / t] (Eq. 3): the absolute thickness [t0] cancels, so only the
    relative gradient enters. *)

(** [thickness_ratio tech ?theta p] is [t0 / t_j] at point [p].  [theta]
    defaults to [tech.gradient_theta]. *)
val thickness_ratio : Tech.Process.t -> ?theta:float -> Geom.Point.t -> float

(** [unit_value tech ?theta p] is the value in fF of one unit capacitor
    centred at [p]. *)
val unit_value : Tech.Process.t -> ?theta:float -> Geom.Point.t -> float

(** [capacitor_value tech ?theta positions] is the summed value [C_k^*] of a
    capacitor realised by unit cells at [positions] (Eq. 3). *)
val capacitor_value :
  Tech.Process.t -> ?theta:float -> Geom.Point.t array -> float

(** [systematic_shift tech ?theta positions] is
    [Delta C_k^sys = C_k^* - n_k * C_u] (Eq. 12) where [n_k] is the number
    of positions. *)
val systematic_shift :
  Tech.Process.t -> ?theta:float -> Geom.Point.t array -> float

(** [worst_theta ~samples ~objective] sweeps the gradient angle over
    [samples] values in [0, pi) and returns the angle maximising
    [objective theta] together with the objective value.  [samples >= 1]. *)
val worst_theta :
  samples:int -> objective:(float -> float) -> float * float
