type sampler = {
  factor : float array array;   (* lower-triangular Cholesky factor *)
  state : Random.State.t;
}

let cholesky m =
  let n = Array.length m in
  if Array.exists (fun row -> Array.length row <> n) m then
    invalid_arg "Gauss.cholesky: matrix is not square";
  let l = Array.make_matrix n n 0. in
  (* jitter scaled to the largest diagonal entry guards against
     semidefinite matrices (perfectly correlated capacitors) *)
  let jitter =
    let largest = Array.fold_left (fun acc i -> Float.max acc i)
        0. (Array.init n (fun i -> m.(i).(i)))
    in
    1e-12 *. Float.max largest 1.
  in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let s = ref m.(i).(j) in
      for k = 0 to j - 1 do
        s := !s -. (l.(i).(k) *. l.(j).(k))
      done;
      if i = j then begin
        let d = !s +. jitter in
        if d <= 0. then
          invalid_arg "Gauss.cholesky: matrix is not positive semidefinite";
        l.(i).(j) <- sqrt d
      end
      else l.(i).(j) <- !s /. l.(j).(j)
    done
  done;
  l

let standard_normal state =
  (* Box-Muller; u1 in (0, 1] avoids log 0 *)
  let u1 = 1. -. Random.State.float state 1. in
  let u2 = Random.State.float state 1. in
  sqrt (-2. *. Float.log u1) *. cos (2. *. Float.pi *. u2)

type factor = float array array

let factorize cov =
  let n = Covariance.size cov in
  let m =
    Array.init n (fun j -> Array.init n (fun k -> Covariance.covariance cov j k))
  in
  cholesky m

let draw_from factor state =
  let n = Array.length factor in
  let z = Array.init n (fun _ -> standard_normal state) in
  Array.init n
    (fun i ->
       let acc = ref 0. in
       for k = 0 to i do
         acc := !acc +. (factor.(i).(k) *. z.(k))
       done;
       !acc)

let sampler ?(seed = 0x5eed) cov =
  { factor = factorize cov; state = Random.State.make [| seed |] }

let draw s = draw_from s.factor s.state
