let is_power_of_two n = n > 0 && n land (n - 1) = 0

let check re im =
  let n = Array.length re in
  if Array.length im <> n then invalid_arg "Fft: re/im length mismatch";
  if not (is_power_of_two n) then invalid_arg "Fft: length must be a power of two";
  n

(* iterative Cooley-Tukey with bit-reversal permutation *)
let fft ~re ~im =
  let n = check re im in
  if n > 1 then begin
    (* bit reversal *)
    let j = ref 0 in
    for i = 0 to n - 2 do
      if i < !j then begin
        let tr = re.(i) in
        re.(i) <- re.(!j);
        re.(!j) <- tr;
        let ti = im.(i) in
        im.(i) <- im.(!j);
        im.(!j) <- ti
      end;
      let rec carry m =
        if m land !j <> 0 then begin
          j := !j lxor m;
          carry (m lsr 1)
        end
        else j := !j lor m
      in
      carry (n lsr 1)
    done;
    (* butterflies *)
    let len = ref 2 in
    while !len <= n do
      let half = !len / 2 in
      let angle = -2. *. Float.pi /. float_of_int !len in
      let wr = cos angle and wi = sin angle in
      let i = ref 0 in
      while !i < n do
        let cr = ref 1. and ci = ref 0. in
        for k = 0 to half - 1 do
          let a = !i + k and b = !i + k + half in
          let tr = (re.(b) *. !cr) -. (im.(b) *. !ci) in
          let ti = (re.(b) *. !ci) +. (im.(b) *. !cr) in
          re.(b) <- re.(a) -. tr;
          im.(b) <- im.(a) -. ti;
          re.(a) <- re.(a) +. tr;
          im.(a) <- im.(a) +. ti;
          let nr = (!cr *. wr) -. (!ci *. wi) in
          ci := (!cr *. wi) +. (!ci *. wr);
          cr := nr
        done;
        i := !i + !len
      done;
      len := !len * 2
    done
  end

let ifft ~re ~im =
  let n = check re im in
  for i = 0 to n - 1 do
    im.(i) <- -.im.(i)
  done;
  fft ~re ~im;
  let inv = 1. /. float_of_int n in
  for i = 0 to n - 1 do
    re.(i) <- re.(i) *. inv;
    im.(i) <- -.im.(i) *. inv
  done

let magnitude ~re ~im k = Float.hypot re.(k) im.(k)

let power_spectrum ~re ~im =
  let n = check re im in
  let half = n / 2 in
  Array.init (half + 1)
    (fun k ->
       let m = magnitude ~re ~im k /. float_of_int n in
       let p = m *. m in
       if k = 0 || k = half then p else 2. *. p)

let hann n =
  if n < 1 then invalid_arg "Fft.hann: n must be >= 1";
  Array.init n (fun i ->
      0.5
      *. (1. -. cos (2. *. Float.pi *. float_of_int i /. float_of_int n)))
