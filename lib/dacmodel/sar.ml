type t = {
  bits : int;
  codes : int array;
  inl_lsb : float;
  dnl_lsb : float;
  missing_codes : int;
  enob : float;
}

let capacitor_values tech ?theta ?sample placement =
  let positions = Ccgrid.Placement.positions_by_cap tech placement in
  let values =
    Array.map (fun ps -> Capmodel.Gradient.capacitor_value tech ?theta ps)
      positions
  in
  (match sample with
   | None -> ()
   | Some shifts ->
     if Array.length shifts <> Array.length values then
       invalid_arg "Sar.capacitor_values: sample length mismatch";
     Array.iteri (fun k s -> values.(k) <- values.(k) +. s) shifts);
  values

let dac_out ~bits ~caps ~vref code =
  let c_t = Array.fold_left ( +. ) 0. caps in
  let c_on = ref 0. in
  for k = 1 to bits do
    if Transfer.bit ~code k then c_on := !c_on +. caps.(k)
  done;
  vref *. !c_on /. c_t

let convert ~bits ~caps ~vref vin =
  if Array.length caps <> bits + 1 then
    invalid_arg "Sar.convert: caps length must be bits + 1";
  let vin = Float.min vref (Float.max 0. vin) in
  let code = ref 0 in
  for k = bits downto 1 do
    let trial = !code lor (1 lsl (k - 1)) in
    if dac_out ~bits ~caps ~vref trial <= vin then code := trial
  done;
  !code

let characterise tech ?theta ?sample ?(samples_per_code = 4) placement =
  if samples_per_code < 1 then
    invalid_arg "Sar.characterise: samples_per_code must be >= 1";
  let bits = placement.Ccgrid.Placement.bits in
  let caps = capacitor_values tech ?theta ?sample placement in
  let vref = 1.0 in
  let num_codes = Transfer.num_codes ~bits in
  let total = samples_per_code * num_codes in
  let codes =
    Array.init total
      (fun j ->
         let vin = (float_of_int j +. 0.5) /. float_of_int total *. vref in
         convert ~bits ~caps ~vref vin)
  in
  let lsb = Transfer.lsb ~bits ~vref in
  (* first input index producing a code >= c *)
  let edge = Array.make num_codes Float.nan in
  let next_code = ref 1 in
  Array.iteri
    (fun j code ->
       while !next_code <= code && !next_code < num_codes do
         edge.(!next_code) <-
           (float_of_int j +. 0.5) /. float_of_int total *. vref;
         incr next_code
       done)
    codes;
  let worst_inl = ref 0. and worst_dnl = ref 0. in
  for c = 1 to num_codes - 1 do
    if Float.is_finite edge.(c) then begin
      let inl = (edge.(c) -. (float_of_int c *. lsb)) /. lsb in
      worst_inl := Float.max !worst_inl (Float.abs inl);
      if c > 1 && Float.is_finite edge.(c - 1) then begin
        let dnl = (edge.(c) -. edge.(c - 1) -. lsb) /. lsb in
        worst_dnl := Float.max !worst_dnl (Float.abs dnl)
      end
    end
  done;
  let seen = Array.make num_codes false in
  Array.iter (fun c -> seen.(c) <- true) codes;
  let missing =
    Array.fold_left (fun acc s -> if s then acc else acc + 1) 0 seen
  in
  let worst = Float.max !worst_inl !worst_dnl in
  let enob = float_of_int bits -. (Float.log (1. +. (2. *. worst)) /. Float.log 2.) in
  { bits; codes; inl_lsb = !worst_inl; dnl_lsb = !worst_dnl;
    missing_codes = missing; enob }
