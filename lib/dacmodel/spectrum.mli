(** Dynamic (spectral) DAC metrics: SNDR, SFDR, THD and dynamic ENOB.

    The paper evaluates the array statically (INL/DNL) and in bandwidth
    (f3dB); data-converter practice also characterises a full-swing sine
    reconstructed through the DAC.  Mismatch turns the static INL pattern
    into harmonic distortion, so the layout styles separate in SFDR
    exactly as they do in INL.

    Method: a coherently-sampled sine (J whole cycles in N = 2^m samples,
    J odd and coprime to N, so every sample lands on a distinct phase and
    no window is needed) is quantised to codes, mapped through the
    perturbed transfer curve, and FFT-analysed.  Signal = the bin at J;
    harmonics = bins at multiples of J (aliased); noise = everything
    else. *)

type t = {
  sndr_db : float;      (** signal / (noise + distortion) *)
  sfdr_db : float;      (** signal / worst single spur *)
  thd_db : float;       (** total harmonic (first 5) / signal, negative *)
  enob : float;         (** (SNDR - 1.76) / 6.02 *)
  signal_bin : int;
  spectrum_db : float array;  (** one-sided spectrum, dBc, for plotting *)
}

(** [of_curve ~bits ~vout ?samples ?cycles ()] analyses a DAC transfer
    curve [vout.(code)] (length [2^bits], as produced by
    {!Nonlinearity} internals or any model).  [samples] (default 4096)
    must be a power of two; [cycles] (default 63) should be odd and
    coprime to [samples].  Raises [Invalid_argument] on bad sizes. *)
val of_curve :
  bits:int -> vout:float array -> ?samples:int -> ?cycles:int -> unit -> t

(** [analyze tech ?theta ?sample ?samples placement] reconstructs the
    sine through the placed array's perturbed capacitor values
    ({!Sar.capacitor_values}) and analyses the spectrum. *)
val analyze :
  Tech.Process.t -> ?theta:float -> ?sample:float array -> ?samples:int ->
  Ccgrid.Placement.t -> t

(** [ideal_sndr_db ~bits] is the quantisation-noise bound
    [6.02 N + 1.76] dB. *)
val ideal_sndr_db : bits:int -> float
