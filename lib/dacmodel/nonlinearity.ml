type sign_mode =
  | Paper
  | Worst_case

type t = {
  inl : float array;
  dnl : float array;
  max_abs_inl : float;
  max_abs_dnl : float;
  sigma_t : float;
}

let max_abs a = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. a

(* Output voltages for one global sign assignment of the +-3 sigma points. *)
let voltages tech (placement : Ccgrid.Placement.t) ~sys ~cov ~sigma_t
    ~top_parasitic ~s_on ~s_t =
  let bits = placement.Ccgrid.Placement.bits in
  let vref = 1.0 in
  let m = float_of_int placement.Ccgrid.Placement.unit_multiplier in
  let cu = tech.Tech.Process.unit_cap in
  let codes = Transfer.num_codes ~bits in
  let c_t = float_of_int codes *. m *. cu in
  let sys_total = Array.fold_left ( +. ) 0. sys in
  let delta_t = sys_total +. (s_t *. 3. *. sigma_t) +. top_parasitic in
  Array.init codes
    (fun code ->
       if code = 0 then 0.
       else begin
         let on_caps = ref [] and sys_on = ref 0. in
         for k = 1 to bits do
           if Transfer.bit ~code k then begin
             on_caps := k :: !on_caps;
             sys_on := !sys_on +. sys.(k)
           end
         done;
         let sigma_on = Capmodel.Covariance.sigma_of_subset cov !on_caps in
         let c_on = float_of_int code *. m *. cu in
         let delta_on = !sys_on +. (s_on *. 3. *. sigma_on) in
         Transfer.perturbed ~vref ~c_on ~delta_on ~c_t ~delta_t
       end)

let inl_of_voltages ~bits v =
  let vref = 1.0 in
  let lsb = Transfer.lsb ~bits ~vref in
  let codes = Transfer.num_codes ~bits in
  Array.init codes
    (fun code ->
       if code = 0 then 0.
       else (v.(code) -. Transfer.ideal ~bits ~code ~vref) /. lsb)

(* DNL from the differential step: V(i) - V(i-1) =
   V_REF (m C_u + dC_diff) / (C_T + dC_T), with dC_diff the weighted sum
   over the bits that toggle between codes i-1 and i (Eq. 7 with the
   3-sigma point of the {e difference}, which is what a worst-case step
   error means — the common-mode 3-sigma shifts of Eq. 13 cancel in the
   subtraction). *)
let dnl_codes tech (placement : Ccgrid.Placement.t) ~sys ~cov ~sigma_t
    ~top_parasitic ~s_diff ~s_t =
  let bits = placement.Ccgrid.Placement.bits in
  let vref = 1.0 in
  let m = float_of_int placement.Ccgrid.Placement.unit_multiplier in
  let cu = tech.Tech.Process.unit_cap in
  let codes = Transfer.num_codes ~bits in
  let c_t = float_of_int codes *. m *. cu in
  let sys_total = Array.fold_left ( +. ) 0. sys in
  let delta_t = sys_total +. (s_t *. 3. *. sigma_t) +. top_parasitic in
  let lsb = Transfer.lsb ~bits ~vref in
  Array.init codes
    (fun code ->
       if code = 0 then 0.
       else begin
         let weights = ref [] and sys_diff = ref 0. in
         for k = 1 to bits do
           let now = Transfer.bit ~code k and before = Transfer.bit ~code:(code - 1) k in
           if now <> before then begin
             let w = if now then 1. else -1. in
             weights := (k, w) :: !weights;
             sys_diff := !sys_diff +. (w *. sys.(k))
           end
         done;
         let sigma_diff = Capmodel.Covariance.sigma_weighted cov !weights in
         let step =
           vref
           *. ((m *. cu) +. !sys_diff +. (s_diff *. 3. *. sigma_diff))
           /. (c_t +. delta_t)
         in
         (step -. lsb) /. lsb
       end)

(* Systematic shifts, covariance matrix, and total-capacitance sigma of a
   placement — the model inputs shared by [analyze] and [attribute]. *)
let model_inputs tech ?theta ?profile (placement : Ccgrid.Placement.t) =
  let bits = placement.Ccgrid.Placement.bits in
  let positions = Ccgrid.Placement.positions_by_cap tech placement in
  let systematic_shift =
    match profile with
    | Some p -> Capmodel.Profile.systematic_shift tech p
    | None -> Capmodel.Gradient.systematic_shift tech ?theta
  in
  let sys = Array.map systematic_shift positions in
  let cov = Capmodel.Covariance.build tech positions in
  let all_caps = List.init (bits + 1) (fun k -> k) in
  let sigma_t = Capmodel.Covariance.sigma_of_subset cov all_caps in
  (sys, cov, sigma_t)

let analyze tech ?theta ?profile ?(sign_mode = Paper) ?(top_parasitic = 0.)
    placement =
  let bits = placement.Ccgrid.Placement.bits in
  Telemetry.Span.with_ ~name:"analyse.nonlinearity"
    ~attrs:[ ("bits", Telemetry.Span.Int bits) ]
  @@ fun () ->
  Telemetry.Metrics.set "analyse/codes" (float_of_int (Transfer.num_codes ~bits));
  let sys, cov, sigma_t = model_inputs tech ?theta ?profile placement in
  let run_inl ~s_on ~s_t =
    inl_of_voltages ~bits
      (voltages tech placement ~sys ~cov ~sigma_t ~top_parasitic ~s_on ~s_t)
  in
  let run_dnl ~s_diff ~s_t =
    dnl_codes tech placement ~sys ~cov ~sigma_t ~top_parasitic ~s_diff ~s_t
  in
  match sign_mode with
  | Paper ->
    let inl = run_inl ~s_on:1. ~s_t:1. in
    let dnl = run_dnl ~s_diff:1. ~s_t:1. in
    { inl; dnl; max_abs_inl = max_abs inl; max_abs_dnl = max_abs dnl; sigma_t }
  | Worst_case ->
    let combos = [ (1., 1.); (1., -1.); (-1., 1.); (-1., -1.) ] in
    let inls = List.map (fun (s_on, s_t) -> run_inl ~s_on ~s_t) combos in
    let dnls = List.map (fun (s_diff, s_t) -> run_dnl ~s_diff ~s_t) combos in
    let worst arrays = List.fold_left (fun acc a -> Float.max acc (max_abs a)) 0. arrays in
    let inl, dnl =
      match inls, dnls with
      | i :: _, d :: _ -> (i, d)
      | [], _ | _, [] ->
        failwith "Nonlinearity: worst-case combo list is empty"
    in
    { inl; dnl; max_abs_inl = worst inls; max_abs_dnl = worst dnls; sigma_t }

(* --- per-capacitor INL attribution (ccgen explain) ---

   At the worst code, with d_on = sys_on + 3 sigma_on and
   d_t = sys_total + 3 sigma_t + C_top (Paper signs),

     INL * LSB = V_REF (d_on C_T - C_ON d_t) / (C_T (C_T + d_t))

   Both d_on and d_t are sums over capacitors: sys_on and sys_total split
   per capacitor directly, and the sigmas split through covariance row
   sums — sigma_S = sum over k in S of (sum over j in S of Cov(k,j)) /
   sigma_S — which attributes the correlated 3-sigma mass to each
   capacitor in proportion to its covariance with the rest of the subset.
   The top-plate parasitic keeps its own pseudo-share.  The shares sum to
   INL(code) exactly up to float association. *)

type inl_share = {
  cap : int;
  on : bool;
  systematic_lsb : float;
  random_lsb : float;
  total_lsb : float;
}

type attribution = {
  code : int;
  inl_lsb : float;
  shares : inl_share list;
  parasitic_lsb : float;
}

let attribute tech ?theta ?profile ?(top_parasitic = 0.) placement =
  let bits = placement.Ccgrid.Placement.bits in
  let vref = 1.0 in
  let m = float_of_int placement.Ccgrid.Placement.unit_multiplier in
  let cu = tech.Tech.Process.unit_cap in
  let codes = Transfer.num_codes ~bits in
  let c_t = float_of_int codes *. m *. cu in
  let lsb = Transfer.lsb ~bits ~vref in
  let sys, cov, sigma_t = model_inputs tech ?theta ?profile placement in
  let inl =
    inl_of_voltages ~bits
      (voltages tech placement ~sys ~cov ~sigma_t ~top_parasitic ~s_on:1.
         ~s_t:1.)
  in
  let code =
    let best = ref 0 in
    Array.iteri
      (fun i x -> if Float.abs x > Float.abs inl.(!best) then best := i)
      inl;
    !best
  in
  let on k = k >= 1 && Transfer.bit ~code k in
  let on_caps = List.filter on (List.init (bits + 1) Fun.id) in
  let sigma_on = Capmodel.Covariance.sigma_of_subset cov on_caps in
  let sys_total = Array.fold_left ( +. ) 0. sys in
  let delta_t = sys_total +. (3. *. sigma_t) +. top_parasitic in
  let c_on = float_of_int code *. m *. cu in
  let k_norm = vref /. (c_t *. (c_t +. delta_t) *. lsb) in
  let row_sum subset k =
    List.fold_left
      (fun acc j -> acc +. Capmodel.Covariance.covariance cov k j)
      0. subset
  in
  let all_caps = List.init (bits + 1) Fun.id in
  let shares =
    List.map
      (fun k ->
         let rho_on =
           if on k && sigma_on > 0. then row_sum on_caps k /. sigma_on else 0.
         in
         let rho_t =
           if sigma_t > 0. then row_sum all_caps k /. sigma_t else 0.
         in
         let systematic_lsb =
           k_norm
           *. (((if on k then sys.(k) *. c_t else 0.)) -. (c_on *. sys.(k)))
         in
         let random_lsb =
           k_norm *. ((c_t *. 3. *. rho_on) -. (c_on *. 3. *. rho_t))
         in
         { cap = k; on = on k; systematic_lsb; random_lsb;
           total_lsb = systematic_lsb +. random_lsb })
      all_caps
  in
  let parasitic_lsb = -.k_norm *. c_on *. top_parasitic in
  { code; inl_lsb = inl.(code); shares; parasitic_lsb }
