let num_codes ~bits =
  Ccgrid.Weights.check_bits bits;
  1 lsl bits

let bit ~code k =
  if k < 1 then invalid_arg "Transfer.bit: k must be >= 1";
  (code lsr (k - 1)) land 1 = 1

let on_units ~bits ~code =
  let n = num_codes ~bits in
  if code < 0 || code >= n then invalid_arg "Transfer: code out of range";
  code

let ideal ~bits ~code ~vref =
  let n = num_codes ~bits in
  if code < 0 || code >= n then invalid_arg "Transfer.ideal: code out of range";
  vref *. float_of_int code /. float_of_int n

let lsb ~bits ~vref = vref /. float_of_int (num_codes ~bits)

let perturbed ~vref ~c_on ~delta_on ~c_t ~delta_t =
  let denom = c_t +. delta_t in
  if denom <= 0. then invalid_arg "Transfer.perturbed: non-positive C_T";
  vref *. (c_on +. delta_on) /. denom
