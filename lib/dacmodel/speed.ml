let ln2 = Float.log 2.

let settling_time_fs ~bits ~tau_fs =
  Ccgrid.Weights.check_bits bits;
  float_of_int (bits + 2) *. ln2 *. tau_fs

let f3db_mhz ~bits ~tau_fs =
  Ccgrid.Weights.check_bits bits;
  if tau_fs <= 0. then invalid_arg "Speed.f3db_mhz: tau must be positive";
  let tau_s = tau_fs *. 1e-15 in
  1. /. (2. *. float_of_int (bits + 2) *. ln2 *. tau_s) /. 1e6

let improvement_factor ~base_mhz ~mhz =
  if base_mhz <= 0. then invalid_arg "Speed.improvement_factor: base <= 0";
  mhz /. base_mhz
