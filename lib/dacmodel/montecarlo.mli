(** Monte-Carlo mismatch analysis — the numerical-yield alternative to the
    analytical 3-sigma model (the paper models "random mismatch using a
    3-sigma model, as opposed to numerical yield integrals [7]"; this
    module implements the latter so both can be compared and used for
    yield-driven sizing).

    Each trial draws one jointly-Gaussian realisation of the capacitor
    shifts from the exact Eq. 6 covariance (plus the deterministic
    systematic shifts), evaluates the full DAC transfer curve and records
    the worst |INL| and |DNL|. *)

type t = {
  trials : int;
  mean_inl : float;            (** mean over trials of max |INL|, LSB *)
  mean_dnl : float;
  p95_inl : float;             (** 95th percentile of max |INL|, LSB *)
  p95_dnl : float;
  max_inl : float;             (** worst trial *)
  max_dnl : float;
  yield : float;               (** fraction of trials with both max |INL|
                                   and max |DNL| within the bound *)
}

(** [run tech ?seed ?theta ?top_parasitic ?bound ?jobs ~trials placement].
    [bound] is the pass/fail linearity limit in LSB (default 0.5).
    [jobs] (default {!Par.Jobs.default}) parallelises the trials over a
    domain pool; each trial draws from a counter-based substream keyed
    by [(seed, trial)], so the statistics are {e bitwise identical} at
    every [jobs] value (docs/PARALLEL.md).
    Cost: one covariance build plus [trials * 2^N * N] flops.
    Raises [Invalid_argument] when [trials < 1]. *)
val run :
  Tech.Process.t -> ?seed:int -> ?theta:float -> ?top_parasitic:float ->
  ?bound:float -> ?jobs:int -> trials:int -> Ccgrid.Placement.t -> t

(** [trial_curves tech ?seed ?theta ?top_parasitic ?jobs placement
    ~trials] is the per-trial (max |INL|, max |DNL|) list in trial
    order, for callers that want the raw distribution.  Same determinism
    contract as {!run}. *)
val trial_curves :
  Tech.Process.t -> ?seed:int -> ?theta:float -> ?top_parasitic:float ->
  ?jobs:int -> trials:int -> Ccgrid.Placement.t -> (float * float) list

(** [percentile sorted q] is the ceiling nearest-rank [q]-quantile of an
    ascending-sorted array: the [ceil (q n)]-th smallest sample (clamped
    to the ends; [0.] on empty input).  Exposed so the convention is
    pinned by tests. *)
val percentile : float array -> float -> float
