(** Monte-Carlo mismatch analysis — the numerical-yield alternative to the
    analytical 3-sigma model (the paper models "random mismatch using a
    3-sigma model, as opposed to numerical yield integrals [7]"; this
    module implements the latter so both can be compared and used for
    yield-driven sizing).

    Each trial draws one jointly-Gaussian realisation of the capacitor
    shifts from the exact Eq. 6 covariance (plus the deterministic
    systematic shifts), evaluates the full DAC transfer curve and records
    the worst |INL| and |DNL|. *)

type t = {
  trials : int;
  mean_inl : float;            (** mean over trials of max |INL|, LSB *)
  mean_dnl : float;
  p95_inl : float;             (** 95th percentile of max |INL|, LSB *)
  p95_dnl : float;
  max_inl : float;             (** worst trial *)
  max_dnl : float;
  yield : float;               (** fraction of trials with both max |INL|
                                   and max |DNL| within the bound *)
}

(** [run tech ?seed ?theta ?top_parasitic ?bound ~trials placement].
    [bound] is the pass/fail linearity limit in LSB (default 0.5).
    Cost: one covariance build plus [trials * 2^N * N] flops.
    Raises [Invalid_argument] when [trials < 1]. *)
val run :
  Tech.Process.t -> ?seed:int -> ?theta:float -> ?top_parasitic:float ->
  ?bound:float -> trials:int -> Ccgrid.Placement.t -> t

(** [trial_curves tech ?seed ?theta ?top_parasitic placement ~trials] is
    the per-trial (max |INL|, max |DNL|) list, for callers that want the
    raw distribution. *)
val trial_curves :
  Tech.Process.t -> ?seed:int -> ?theta:float -> ?top_parasitic:float ->
  trials:int -> Ccgrid.Placement.t -> (float * float) list
