type t = {
  sndr_db : float;
  sfdr_db : float;
  thd_db : float;
  enob : float;
  signal_bin : int;
  spectrum_db : float array;
}

let ideal_sndr_db ~bits = (6.02 *. float_of_int bits) +. 1.76

let db_floor = -200.

let db ratio = if ratio <= 0. then db_floor else 10. *. Float.log10 ratio

(* fold a harmonic bin back into the one-sided spectrum *)
let alias ~samples bin =
  let b = bin mod samples in
  let b = if b < 0 then b + samples else b in
  if b > samples / 2 then samples - b else b

let of_curve ~bits ~vout ?(samples = 4096) ?(cycles = 63) () =
  Ccgrid.Weights.check_bits bits;
  let codes = 1 lsl bits in
  if Array.length vout <> codes then
    invalid_arg "Spectrum.of_curve: vout length must be 2^bits";
  if not (Fft.is_power_of_two samples) then
    invalid_arg "Spectrum.of_curve: samples must be a power of two";
  if cycles < 1 || cycles mod 2 = 0 || cycles >= samples / 2 then
    invalid_arg "Spectrum.of_curve: cycles must be odd and < samples/2";
  (* reconstruct a coherently-sampled full-swing sine through the DAC *)
  let re =
    Array.init samples (fun i ->
        let phase =
          2. *. Float.pi *. float_of_int cycles *. float_of_int i
          /. float_of_int samples
        in
        let x = (sin phase +. 1.) /. 2. in
        let code =
          Int.max 0
            (Int.min (codes - 1)
               (int_of_float (Float.round (x *. float_of_int (codes - 1)))))
        in
        vout.(code))
  in
  let mean = Array.fold_left ( +. ) 0. re /. float_of_int samples in
  let re = Array.map (fun v -> v -. mean) re in
  let im = Array.make samples 0. in
  Fft.fft ~re ~im;
  let ps = Fft.power_spectrum ~re ~im in
  let half = samples / 2 in
  let signal_bin = cycles in
  let p_signal = ps.(signal_bin) in
  let p_noise_dist = ref 0. in
  for k = 1 to half do
    if k <> signal_bin then p_noise_dist := !p_noise_dist +. ps.(k)
  done;
  let worst_spur = ref 0. in
  for k = 1 to half do
    if k <> signal_bin && ps.(k) > !worst_spur then worst_spur := ps.(k)
  done;
  let p_harmonics = ref 0. in
  for h = 2 to 6 do
    let b = alias ~samples (h * cycles) in
    if b >= 1 && b <= half && b <> signal_bin then
      p_harmonics := !p_harmonics +. ps.(b)
  done;
  let sndr_db = db (p_signal /. Float.max 1e-300 !p_noise_dist) in
  let sfdr_db = db (p_signal /. Float.max 1e-300 !worst_spur) in
  let thd_db = db (!p_harmonics /. Float.max 1e-300 p_signal) in
  { sndr_db;
    sfdr_db;
    thd_db;
    enob = (sndr_db -. 1.76) /. 6.02;
    signal_bin;
    spectrum_db =
      Array.map (fun p -> db (p /. Float.max 1e-300 p_signal)) ps }

let analyze tech ?theta ?sample ?samples placement =
  let bits = placement.Ccgrid.Placement.bits in
  Telemetry.Span.with_ ~name:"analyse.spectrum"
    ~attrs:[ ("bits", Telemetry.Span.Int bits) ]
  @@ fun () ->
  let caps = Sar.capacitor_values tech ?theta ?sample placement in
  let c_t = Array.fold_left ( +. ) 0. caps in
  let vout =
    Array.init (1 lsl bits) (fun code ->
        let c_on = ref 0. in
        for k = 1 to bits do
          if Transfer.bit ~code k then c_on := !c_on +. caps.(k)
        done;
        !c_on /. c_t)
  in
  of_curve ~bits ~vout ?samples ()
