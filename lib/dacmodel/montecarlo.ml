type t = {
  trials : int;
  mean_inl : float;
  mean_dnl : float;
  p95_inl : float;
  p95_dnl : float;
  max_inl : float;
  max_dnl : float;
  yield : float;
}

(* Worst |INL| / |DNL| of one sampled realisation of the capacitor shifts. *)
let evaluate ~bits ~m ~cu ~top_parasitic ~sys shifts =
  let vref = 1.0 in
  let codes = Transfer.num_codes ~bits in
  let c_t = float_of_int codes *. m *. cu in
  let delta_k = Array.mapi (fun k s -> s +. sys.(k)) shifts in
  let delta_t =
    Array.fold_left ( +. ) 0. delta_k +. top_parasitic
  in
  let lsb = Transfer.lsb ~bits ~vref in
  let worst_inl = ref 0. and worst_dnl = ref 0. in
  let v_prev = ref 0. in
  for code = 1 to codes - 1 do
    let delta_on = ref 0. in
    for k = 1 to bits do
      if Transfer.bit ~code k then delta_on := !delta_on +. delta_k.(k)
    done;
    let c_on = float_of_int code *. m *. cu in
    let v =
      Transfer.perturbed ~vref ~c_on ~delta_on:!delta_on ~c_t ~delta_t
    in
    let inl = (v -. Transfer.ideal ~bits ~code ~vref) /. lsb in
    let dnl = (v -. !v_prev -. lsb) /. lsb in
    v_prev := v;
    worst_inl := Float.max !worst_inl (Float.abs inl);
    worst_dnl := Float.max !worst_dnl (Float.abs dnl)
  done;
  (!worst_inl, !worst_dnl)

(* Each trial draws from its own counter-based substream keyed by
   (seed, trial index) — Par.Rng — so trial [i] is a pure function of
   the seed.  That makes the whole distribution bitwise-identical at any
   worker count and in any completion order; the pool only has to keep
   slot order, which it guarantees. *)
let trial_curves tech ?(seed = 0x5eed) ?theta ?(top_parasitic = 0.) ?jobs
    ~trials placement =
  if trials < 1 then invalid_arg "Montecarlo: trials must be >= 1";
  let bits = placement.Ccgrid.Placement.bits in
  let m = float_of_int placement.Ccgrid.Placement.unit_multiplier in
  let cu = tech.Tech.Process.unit_cap in
  let positions = Ccgrid.Placement.positions_by_cap tech placement in
  let sys =
    Array.map (fun ps -> Capmodel.Gradient.systematic_shift tech ?theta ps)
      positions
  in
  let cov = Capmodel.Covariance.build tech positions in
  let factor = Capmodel.Gauss.factorize cov in
  Par.Pool.map_list_exn ?jobs
    (fun trial ->
       let state = Par.Rng.state ~seed ~index:trial in
       let shifts = Capmodel.Gauss.draw_from factor state in
       evaluate ~bits ~m ~cu ~top_parasitic ~sys shifts)
    (List.init trials Fun.id)

(* Ceiling nearest-rank: the q-quantile of n sorted samples is the
   ceil(q n)-th smallest (1-based).  Flooring instead biases small-n
   upper percentiles low — with 20 trials the p95 would be the 18th
   sample, not the 19th. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else begin
    let rank = int_of_float (Float.ceil (float_of_int n *. q)) in
    sorted.(Int.max 0 (Int.min (n - 1) (rank - 1)))
  end

let run tech ?seed ?theta ?top_parasitic ?(bound = 0.5) ?jobs ~trials placement =
  Telemetry.Span.with_ ~name:"analyse.montecarlo"
    ~attrs:[ ("trials", Telemetry.Span.Int trials) ]
  @@ fun () ->
  Telemetry.Metrics.incr ~n:trials "analyse/mc_trials_total";
  let curves =
    trial_curves tech ?seed ?theta ?top_parasitic ?jobs ~trials placement
  in
  let inls = Array.of_list (List.map fst curves) in
  let dnls = Array.of_list (List.map snd curves) in
  let mean a =
    Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)
  in
  let sorted a =
    let b = Array.copy a in
    Array.sort Float.compare b;
    b
  in
  let inls_sorted = sorted inls and dnls_sorted = sorted dnls in
  let passes =
    List.length
      (List.filter (fun (i, d) -> i <= bound && d <= bound) curves)
  in
  { trials;
    mean_inl = mean inls;
    mean_dnl = mean dnls;
    p95_inl = percentile inls_sorted 0.95;
    p95_dnl = percentile dnls_sorted 0.95;
    max_inl = Array.fold_left Float.max 0. inls;
    max_dnl = Array.fold_left Float.max 0. dnls;
    yield = float_of_int passes /. float_of_int trials }
