(** Behavioural SAR ADC on top of the capacitor array — the application
    the MOM-capacitor CC-layout literature targets ([9], [10], [12] are
    SAR-ADC papers; the charge-scaling DAC of Fig. 1 is the SAR's feedback
    DAC).

    The model runs a binary-search conversion per input voltage using the
    {e actual} (perturbed) capacitor values: at step k the candidate code
    sets bit N-k and keeps it iff the DAC output does not exceed the input.
    Static metrics (code edges, INL in ADC terms, missing codes) follow
    from sweeping the input. *)

type t = {
  bits : int;
  codes : int array;           (** conversion result per input sample *)
  inl_lsb : float;             (** worst |INL| of the code edges, LSB *)
  dnl_lsb : float;             (** worst |DNL| of the code widths, LSB *)
  missing_codes : int;         (** codes never produced by the sweep *)
  enob : float;                (** effective bits from the INL/DNL bound:
                                    N - log2(1 + 2 max(|INL|,|DNL|)) *)
}

(** [capacitor_values tech ?theta ?sample placement] are the effective
    capacitor values (fF) of the placed array: nominal + systematic
    gradient shift + an optional random-mismatch sample (from
    {!Capmodel.Gauss}). *)
val capacitor_values :
  Tech.Process.t -> ?theta:float -> ?sample:float array ->
  Ccgrid.Placement.t -> float array

(** [convert ~bits ~caps ~vref vin] runs one successive-approximation
    conversion given the effective capacitor values [caps] (length
    [bits + 1], index 0 = always-grounded C_0).  [vin] is clamped to
    [0, vref]. *)
val convert : bits:int -> caps:float array -> vref:float -> float -> int

(** [characterise tech ?theta ?sample ?samples_per_code placement] sweeps
    a full-scale ramp ([samples_per_code] points per nominal code,
    default 4) and derives the static metrics. *)
val characterise :
  Tech.Process.t -> ?theta:float -> ?sample:float array ->
  ?samples_per_code:int -> Ccgrid.Placement.t -> t
