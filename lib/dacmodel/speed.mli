(** Settling time and 3 dB frequency (Sec. III-B, Eq. 15–16).

    The charge path of the worst bit is an RC network with Elmore time
    constant [tau]; settling to within 1/4 LSB of the final value needs
    [t_settle = ln(2^(N+2)) tau], and a full charge-discharge cycle gives
    [f_3dB = 1 / (2 (N+2) ln 2 tau)]. *)

(** [settling_time_fs ~bits ~tau_fs] (Eq. 15), femtoseconds. *)
val settling_time_fs : bits:int -> tau_fs:float -> float

(** [f3db_mhz ~bits ~tau_fs] (Eq. 16).  Raises [Invalid_argument] when
    [tau_fs <= 0]. *)
val f3db_mhz : bits:int -> tau_fs:float -> float

(** [improvement_factor ~base_mhz ~mhz] is [mhz / base_mhz] — the y-axis of
    Fig. 6a. *)
val improvement_factor : base_mhz:float -> mhz:float -> float
