(** Ideal charge-scaling DAC transfer function (Sec. II-A).

    For an N-bit code [i] with bits [D_1 .. D_N] (LSB to MSB),
    [V_OUT = V_REF * C_ON(i) / C_T] with [C_ON(i) = sum D_k 2^(k-1) C_u]
    and [C_T = 2^N C_u] (Eq. 1–2); C_0 is always grounded. *)

(** [num_codes ~bits] is [2^bits]. *)
val num_codes : bits:int -> int

(** [bit ~code k] is [D_k] of the code, [k] in [1, N]. *)
val bit : code:int -> int -> bool

(** [on_units ~bits ~code] is [C_ON(code) / C_u] — the number of unit
    capacitors switched to [V_REF]. *)
val on_units : bits:int -> code:int -> int

(** [ideal ~bits ~code ~vref] is the ideal output voltage (Eq. 2).
    Raises [Invalid_argument] when the code is out of [0, 2^N - 1]. *)
val ideal : bits:int -> code:int -> vref:float -> float

(** [lsb ~bits ~vref] is [V_REF / 2^N]. *)
val lsb : bits:int -> vref:float -> float

(** [perturbed ~vref ~c_on ~delta_on ~c_t ~delta_t] is Eq. 9:
    [V_REF (C_ON + dC_ON) / (C_T + dC_T)]. *)
val perturbed :
  vref:float -> c_on:float -> delta_on:float -> c_t:float -> delta_t:float ->
  float
