type t = {
  average_energy_fj : float;
  worst_energy_fj : float;
  average_power_nw : float;
}

let bottom_plate_load ~tech ~counts ~wire_cap_of cap =
  if cap < 0 || cap >= Array.length counts then
    invalid_arg "Power.bottom_plate_load: bad capacitor id";
  (float_of_int counts.(cap) *. tech.Tech.Process.unit_cap) +. wire_cap_of cap

let analyze ~tech ~counts ~wire_cap_of ~bits ~vref ~f3db_mhz =
  Ccgrid.Weights.check_bits bits;
  if vref <= 0. then invalid_arg "Power.analyze: vref must be positive";
  let load = Array.init (bits + 1) (bottom_plate_load ~tech ~counts ~wire_cap_of) in
  let transition_energy code =
    (* bits toggling between code-1 and code; each toggling bit's
       bottom-plate load is charged or discharged through VREF/GND *)
    let e = ref 0. in
    for k = 1 to bits do
      if Transfer.bit ~code k <> Transfer.bit ~code:(code - 1) k then
        e := !e +. (load.(k) *. vref *. vref)
    done;
    !e
  in
  let codes = Transfer.num_codes ~bits in
  let total = ref 0. and worst = ref 0. in
  for code = 1 to codes - 1 do
    let e = transition_energy code in
    total := !total +. e;
    worst := Float.max !worst e
  done;
  let average = !total /. float_of_int (codes - 1) in
  (* fF * V^2 = fJ; fJ * MHz = nW *)
  { average_energy_fj = average;
    worst_energy_fj = !worst;
    average_power_nw = average *. f3db_mhz }
