(** Mismatch-induced nonlinearity: INL and DNL under the 3-sigma model
    (Sec. III-A, Eq. 7–14).

    For every input code the systematic shifts (oxide gradient, Eq. 12)
    and the 3-sigma point of the correlated random variation (Eq. 13–14)
    perturb [C_ON] and [C_T]; the top-plate parasitic [C^TS] loads the
    summing node and adds to [C_T] (gain error).  [C^TB] terms vanish
    under the non-overlapped routing of Sec. IV-B1. *)

type sign_mode =
  | Paper       (** add +3 sigma to both numerator and denominator, as the
                    paper's Eq. after (14) states *)
  | Worst_case  (** maximise |INL|/|DNL| over the four +-3 sigma sign
                    combinations *)

type t = {
  inl : float array;       (** per code, LSB; length [2^N] *)
  dnl : float array;       (** per code, LSB; [dnl.(0) = 0] *)
  max_abs_inl : float;
  max_abs_dnl : float;
  sigma_t : float;         (** sigma of the total-capacitance shift, fF *)
}

(** [analyze tech ?theta ?profile ?sign_mode ?top_parasitic placement]:
    [top_parasitic] is the extracted [sum C^TS] in fF (default 0);
    [theta] overrides the gradient angle; [profile] replaces the linear
    gradient with an arbitrary {!Capmodel.Profile} (curvature studies);
    [sign_mode] defaults to [Paper].  Cost: one covariance build
    (quadratic in unit cells) plus [O(2^N * N^2)] code evaluation. *)
val analyze :
  Tech.Process.t -> ?theta:float -> ?profile:Capmodel.Profile.t ->
  ?sign_mode:sign_mode -> ?top_parasitic:float -> Ccgrid.Placement.t -> t

(** One capacitor's share of the worst-code INL. *)
type inl_share = {
  cap : int;                (** capacitor index; [0] is the grounded C_0 *)
  on : bool;                (** switched to [V_REF] at the worst code *)
  systematic_lsb : float;   (** oxide-gradient share *)
  random_lsb : float;       (** correlated 3-sigma mismatch share *)
  total_lsb : float;        (** [systematic_lsb +. random_lsb] *)
}

(** Per-capacitor decomposition of the INL at the worst code. *)
type attribution = {
  code : int;               (** argmax of [|inl|] over all codes *)
  inl_lsb : float;          (** [inl.(code)] under [Paper] signs *)
  shares : inl_share list;  (** one per capacitor, index order *)
  parasitic_lsb : float;    (** top-plate parasitic pseudo-share *)
}

(** [attribute tech ?theta ?profile ?top_parasitic placement] decomposes
    the worst-code INL per capacitor: the systematic shifts split
    directly, the correlated 3-sigma terms split through covariance row
    sums (each capacitor gets the sigma mass in proportion to its
    covariance with the rest of the subset), and the top-plate parasitic
    keeps its own pseudo-share.  The [total_lsb] fields plus
    [parasitic_lsb] sum to [inl_lsb] exactly (up to float association).
    Uses [Paper] signs, matching the [inl] array {!analyze} reports in
    every sign mode.  Same cost as {!analyze}'s INL pass. *)
val attribute :
  Tech.Process.t -> ?theta:float -> ?profile:Capmodel.Profile.t ->
  ?top_parasitic:float -> Ccgrid.Placement.t -> attribution
