(** Mismatch-induced nonlinearity: INL and DNL under the 3-sigma model
    (Sec. III-A, Eq. 7–14).

    For every input code the systematic shifts (oxide gradient, Eq. 12)
    and the 3-sigma point of the correlated random variation (Eq. 13–14)
    perturb [C_ON] and [C_T]; the top-plate parasitic [C^TS] loads the
    summing node and adds to [C_T] (gain error).  [C^TB] terms vanish
    under the non-overlapped routing of Sec. IV-B1. *)

type sign_mode =
  | Paper       (** add +3 sigma to both numerator and denominator, as the
                    paper's Eq. after (14) states *)
  | Worst_case  (** maximise |INL|/|DNL| over the four +-3 sigma sign
                    combinations *)

type t = {
  inl : float array;       (** per code, LSB; length [2^N] *)
  dnl : float array;       (** per code, LSB; [dnl.(0) = 0] *)
  max_abs_inl : float;
  max_abs_dnl : float;
  sigma_t : float;         (** sigma of the total-capacitance shift, fF *)
}

(** [analyze tech ?theta ?profile ?sign_mode ?top_parasitic placement]:
    [top_parasitic] is the extracted [sum C^TS] in fF (default 0);
    [theta] overrides the gradient angle; [profile] replaces the linear
    gradient with an arbitrary {!Capmodel.Profile} (curvature studies);
    [sign_mode] defaults to [Paper].  Cost: one covariance build
    (quadratic in unit cells) plus [O(2^N * N^2)] code evaluation. *)
val analyze :
  Tech.Process.t -> ?theta:float -> ?profile:Capmodel.Profile.t ->
  ?sign_mode:sign_mode -> ?top_parasitic:float -> Ccgrid.Placement.t -> t
