(** Switching power of the capacitor array.

    Bottom-plate parasitics "do not affect DAC linearity, but affect the
    load for V_REF, and impact power and switching frequency" (Sec. II-A).
    Each conversion charges/discharges the bottom-plate load of the
    capacitors whose code bit toggles; the energy drawn from V_REF when a
    capacitance [C] is charged to [V] is [C V^2] (half stored, half
    dissipated in the switch/wire resistance). *)

type t = {
  average_energy_fj : float;   (** mean over a full-ramp code sequence, fJ *)
  worst_energy_fj : float;     (** worst single code transition, fJ *)
  average_power_nw : float;    (** at the array's own f3dB rate, nW *)
}

(** [bottom_plate_load parasitics ~cap] is the switched load of bit [cap]:
    its unit capacitors plus the routing capacitance of its net, fF. *)
val bottom_plate_load :
  tech:Tech.Process.t -> counts:int array ->
  wire_cap_of:(int -> float) -> int -> float

(** [analyze ~tech ~counts ~wire_cap_of ~bits ~vref ~f3db_mhz] evaluates
    the energy of every adjacent code transition of a full ramp
    (0 -> 2^N - 1) and the average power when converting at [f3db_mhz].
    [wire_cap_of k] is the routed wire capacitance of bit [k]'s net (fF);
    [counts] are the per-capacitor unit-cell counts. *)
val analyze :
  tech:Tech.Process.t -> counts:int array -> wire_cap_of:(int -> float) ->
  bits:int -> vref:float -> f3db_mhz:float -> t
