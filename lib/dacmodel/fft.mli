(** Radix-2 complex FFT — the numeric substrate for spectral DAC metrics.

    Self-contained iterative Cooley-Tukey implementation (no external
    dependencies), sufficient for the 2^10..2^16-point spectra used in
    converter characterisation. *)

(** [fft ~re ~im] transforms in place.  Lengths must match and be a power
    of two; raises [Invalid_argument] otherwise. *)
val fft : re:float array -> im:float array -> unit

(** [ifft ~re ~im] inverse transform in place (normalised by 1/n). *)
val ifft : re:float array -> im:float array -> unit

(** [magnitude ~re ~im k] is [sqrt (re_k^2 + im_k^2)]. *)
val magnitude : re:float array -> im:float array -> int -> float

(** [power_spectrum ~re ~im] is the one-sided power spectrum of a real
    signal previously transformed with {!fft}: bins [0 .. n/2], with the
    interior bins doubled to account for negative frequencies. *)
val power_spectrum : re:float array -> im:float array -> float array

(** [hann n] is the length-[n] Hann window. *)
val hann : int -> float array

(** [is_power_of_two n]. *)
val is_power_of_two : int -> bool
