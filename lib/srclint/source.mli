(** A parsed source file plus the context rules scope on: which tree it
    lives in (library code vs executables vs benches vs tests) and, for
    library code, which library directory owns it.

    Parsing uses the compiler's own frontend ([compiler-libs]), so the
    analyzer sees exactly the AST the build sees — no regexes, no
    tokenizer approximations. *)

type zone =
  | Lib    (** [lib/] — reusable code; the strictest contracts apply *)
  | Bin    (** [bin/] — executables; printing and [exit] are their job *)
  | Bench  (** [bench/] — measurement harnesses; wall clocks allowed *)
  | Test   (** [test/] — suites; looser, but still deterministic *)
  | Other

type t = {
  path : string;          (** repo-relative, '/'-separated *)
  zone : zone;
  lib : string option;    (** ["lib/qor/x.ml"] -> [Some "qor"] *)
  ast : Parsetree.structure;
}

val zone_name : zone -> string

(** [zone_of_path "lib/qor/record.ml"] is [Lib]; classification looks at
    the first path component only. *)
val zone_of_path : string -> zone

(** [lib_of_path path] is the library directory name for [lib/<dir>/...]
    paths, [None] otherwise. *)
val lib_of_path : string -> string option

(** [parse ~path contents] parses [contents] as an implementation file.
    Syntax and lexer errors come back as a [meta/parse-error] finding
    instead of an exception, so one broken file cannot stop the scan. *)
val parse : path:string -> string -> (t, Diagnostic.t) result

(** The rule {!parse} emits on unparseable input. *)
val parse_error_rule : Rule.t

(** [line_col loc] is the 1-based line and 0-based column of [loc]'s
    start. *)
val line_col : Location.t -> int * int

(** [ident_name lid] is the dotted path, e.g. ["Unix.gettimeofday"]. *)
val ident_name : Longident.t -> string

(** [iter_exprs ast f] applies [f] to every expression node in [ast],
    including nested ones. *)
val iter_exprs : Parsetree.structure -> (Parsetree.expression -> unit) -> unit
