(** A source-lint rule: the static identity of one contract the codebase
    promises to uphold at the source level — no ambient clocks or RNG in
    library code, no unguarded global mutable state reachable from
    [Par.Pool] workers, no polymorphic compare on floats in kernels.

    This deliberately mirrors {!Verify.Rule}: rules are data, not code.
    Each checker module declares the rules it owns, {!Registry} aggregates
    them, and what varies at runtime is the set of {!Diagnostic.t}
    instances emitted against them. *)

type severity =
  | Error    (** the contract is broken; determinism or safety is at risk *)
  | Warning  (** suspicious but arguable; promoted by [--werror] *)
  | Info     (** advisory only *)

type category =
  | Determinism     (** wall clocks, ambient RNG, environment reads *)
  | Domain_safety   (** global mutable state, domain-local storage *)
  | Error_handling  (** swallowed exceptions, traps, exits *)
  | Hygiene         (** polymorphic compare, stray printing, [Obj] *)
  | Interprocedural
      (** whole-program effect taint and domain-escape findings from the
          typed ([.cmt]) pass — [lib/ccdeps] *)
  | Architecture
      (** layering-contract findings over the [lib/] sublibrary DAG,
          also from the typed pass *)
  | Meta            (** the analyzer's own bookkeeping (allowlist, parse) *)

type t = {
  id : string;        (** stable machine id, e.g. ["det/wall-clock"] *)
  category : category;
  severity : severity;
  doc : string;       (** one-sentence contract, used by docs and reports *)
}

val make :
  id:string -> category:category -> severity:severity -> doc:string -> t

(** [compare_severity a b] orders [Error < Warning < Info] (most severe
    first), so sorting diagnostics by severity surfaces errors. *)
val compare_severity : severity -> severity -> int

(** [severity_name s] is ["error"], ["warning"] or ["info"]. *)
val severity_name : severity -> string

(** [category_name c] is ["determinism"], ["domain-safety"],
    ["error-handling"], ["hygiene"], ["interprocedural"],
    ["architecture"] or ["meta"]. *)
val category_name : category -> string

val pp_severity : Format.formatter -> severity -> unit
val pp : Format.formatter -> t -> unit
