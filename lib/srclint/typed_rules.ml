(* Rule declarations for the typed whole-program pass (lib/ccdeps).

   Only the *identities* live here, so the registry stays one static
   list and the allowlist can vet typed suppressions without srclint
   depending on the analysis that emits them.  The checkers themselves
   walk .cmt Typedtrees in lib/ccdeps, which depends on this library. *)

let taint_wall_clock =
  Rule.make ~id:"int/taint-wall-clock" ~category:Rule.Interprocedural
    ~severity:Rule.Error
    ~doc:
      "A function in a purity-contracted library transitively reaches a \
       wall-clock read through its call graph; the per-file det/wall-clock \
       rule cannot see the indirection, but the result is just as \
       schedule-dependent.  Thread timestamps in from the caller."

let taint_random =
  Rule.make ~id:"int/taint-random" ~category:Rule.Interprocedural
    ~severity:Rule.Error
    ~doc:
      "A function in a purity-contracted library transitively reaches the \
       ambient Random generator (or self-seeding); every caller inherits \
       the nondeterminism.  Derive Random.State values from Par.Rng \
       substreams and pass them down the chain."

let taint_getenv =
  Rule.make ~id:"int/taint-getenv" ~category:Rule.Interprocedural
    ~severity:Rule.Warning
    ~doc:
      "A function in a purity-contracted library transitively reads the \
       process environment; behaviour becomes ambient for every caller.  \
       Resolve configuration at the CLI boundary and pass it down."

let taint_gc =
  Rule.make ~id:"int/taint-gc" ~category:Rule.Interprocedural
    ~severity:Rule.Error
    ~doc:
      "A function in a purity-contracted library transitively mutates the \
       GC, changing process-wide collection scheduling and skewing \
       Telemetry.Memory accounting for every concurrent caller."

let taint_print =
  Rule.make ~id:"int/taint-print" ~category:Rule.Interprocedural
    ~severity:Rule.Error
    ~doc:
      "A function in a purity-contracted library transitively writes to \
       stdout/stderr; output interleaves nondeterministically under \
       Par.Pool.  Return strings or take a Format.formatter."

let domain_escape =
  Rule.make ~id:"int/domain-escape" ~category:Rule.Interprocedural
    ~severity:Rule.Error
    ~doc:
      "Mutable state created outside a closure submitted to Par.Pool is \
       written inside it (directly or via a callee), so worker domains \
       race on it.  Return per-task results and fold them in the \
       submitter, or use the sanctioned telemetry/par mutex+DLS idioms."

let layer_violation =
  Rule.make ~id:"arch/layer-violation" ~category:Rule.Architecture
    ~severity:Rule.Error
    ~doc:
      "A library depends on one at the same or a higher layer of the \
       declared .ccdeps DAG; dependencies must point strictly downward \
       or the layering is fiction."

let forbidden_dep =
  Rule.make ~id:"arch/forbidden-dep" ~category:Rule.Architecture
    ~severity:Rule.Error
    ~doc:
      "The dependency edge is explicitly forbidden by the .ccdeps \
       manifest (kernels must not reach QoR sinks, verify must not reach \
       lvs internals); the manifest entry names the reason."

let layer_cycle =
  Rule.make ~id:"arch/layer-cycle" ~category:Rule.Architecture
    ~severity:Rule.Error
    ~doc:
      "The library dependency graph contains a cycle, so no layering \
       assignment can be valid and incremental rebuilds are unsound."

let undeclared_lib =
  Rule.make ~id:"arch/undeclared-lib" ~category:Rule.Architecture
    ~severity:Rule.Error
    ~doc:
      "A lib/ sublibrary has no layer declaration in the .ccdeps \
       manifest, so the layering contract cannot vouch for its edges; \
       every sublibrary must be placed in the DAG."

let cmt_error =
  Rule.make ~id:"meta/cmt-error" ~category:Rule.Meta ~severity:Rule.Error
    ~doc:
      "A .cmt file under _build could not be read, so the typed pass \
       cannot vouch for that module; rebuild (dune build @check) or \
       investigate the toolchain skew."

let manifest_error =
  Rule.make ~id:"meta/ccdeps-manifest" ~category:Rule.Meta
    ~severity:Rule.Error
    ~doc:
      "The .ccdeps manifest names a library that does not exist under \
       lib/, or declares the same library twice; a misspelt contract \
       silently contracts nothing."

let rules =
  [ taint_wall_clock; taint_random; taint_getenv; taint_gc; taint_print;
    domain_escape; layer_violation; forbidden_dep; layer_cycle;
    undeclared_lib; cmt_error; manifest_error ]

let taint_families =
  [ ("wall-clock", taint_wall_clock); ("random", taint_random);
    ("getenv", taint_getenv); ("gc", taint_gc); ("print", taint_print) ]

let typed_family_prefixes = [ "int/"; "arch/"; "meta/cmt-error";
                              "meta/ccdeps-manifest" ]

let is_typed_rule_id id =
  List.exists
    (fun p ->
       String.length id >= String.length p
       && String.sub id 0 (String.length p) = p)
    typed_family_prefixes
