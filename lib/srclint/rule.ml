type severity = Error | Warning | Info

type category =
  | Determinism
  | Domain_safety
  | Error_handling
  | Hygiene
  | Interprocedural
  | Architecture
  | Meta

type t = {
  id : string;
  category : category;
  severity : severity;
  doc : string;
}

let make ~id ~category ~severity ~doc = { id; category; severity; doc }

let severity_rank (s : severity) =
  match s with Error -> 0 | Warning -> 1 | Info -> 2

let compare_severity a b = Int.compare (severity_rank a) (severity_rank b)

let severity_name (s : severity) =
  match s with
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let category_name = function
  | Determinism -> "determinism"
  | Domain_safety -> "domain-safety"
  | Error_handling -> "error-handling"
  | Hygiene -> "hygiene"
  | Interprocedural -> "interprocedural"
  | Architecture -> "architecture"
  | Meta -> "meta"

let pp_severity ppf s = Format.pp_print_string ppf (severity_name s)

let pp ppf t =
  Format.fprintf ppf "%s[%s] (%s): %s" (severity_name t.severity) t.id
    (category_name t.category) t.doc
