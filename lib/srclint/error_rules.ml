open Parsetree

let catchall_swallow =
  Rule.make ~id:"err/catchall-swallow" ~category:Rule.Error_handling
    ~severity:Rule.Error
    ~doc:
      "A catch-all exception handler that neither re-raises nor fails \
       hides real faults (including Par.Pool task errors); match the \
       exceptions you expect, or re-raise the rest."

let assert_false =
  Rule.make ~id:"err/assert-false" ~category:Rule.Error_handling
    ~severity:Rule.Warning
    ~doc:
      "assert false is an unrecoverable trap with no message; prefer a \
       typed error (invalid_arg, Error) or suppress with the invariant \
       that makes the branch unreachable spelled out."

let exit_in_lib =
  Rule.make ~id:"err/exit-in-lib" ~category:Rule.Error_handling
    ~severity:Rule.Error
    ~doc:
      "exit belongs to executables; library code must raise and let the \
       caller decide the process's fate."

let rules = [ catchall_swallow; assert_false; exit_in_lib ]

(* Identifiers whose presence in a handler body means the handler does not
   swallow: it re-raises or converts to a typed failure. *)
let raising_idents =
  [ "raise"; "raise_notrace"; "failwith"; "invalid_arg"; "reraise";
    "raise_with_backtrace" ]

let last_component lid =
  match List.rev (Longident.flatten lid) with
  | last :: _ -> last
  | [] -> ""

let expr_raises e =
  let found = ref false in
  let it =
    { Ast_iterator.default_iterator with
      Ast_iterator.expr =
        (fun self sub ->
           (match sub.pexp_desc with
            | Pexp_ident { txt; _ }
              when List.mem (last_component txt) raising_idents ->
              found := true
            | Pexp_assert _ -> found := true
            | _ -> ());
           Ast_iterator.default_iterator.Ast_iterator.expr self sub) }
  in
  it.Ast_iterator.expr it e;
  !found

(* Does the pattern catch every exception?  Guarded cases never do. *)
let rec catches_everything pat =
  match pat.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> catches_everything p
  | Ppat_or (a, b) -> catches_everything a || catches_everything b
  | _ -> false

let is_false_construct e =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident "false"; _ }, None) -> true
  | _ -> false

let check (src : Source.t) =
  let out = ref [] in
  let emit rule loc detail =
    let line, col = Source.line_col loc in
    out := Diagnostic.make ~rule ~file:src.Source.path ~line ~col detail :: !out
  in
  let in_lib = src.Source.zone = Source.Lib in
  let in_lib_or_bin = in_lib || src.Source.zone = Source.Bin in
  Source.iter_exprs src.Source.ast (fun e ->
      match e.pexp_desc with
      | Pexp_try (_, cases) when in_lib_or_bin ->
        List.iter
          (fun case ->
             if
               case.pc_guard = None
               && catches_everything case.pc_lhs
               && not (expr_raises case.pc_rhs)
             then
               emit catchall_swallow case.pc_lhs.ppat_loc
                 "catch-all handler swallows the exception (no re-raise, \
                  no failwith)")
          cases
      | Pexp_assert inner when in_lib && is_false_construct inner ->
        emit assert_false e.pexp_loc "assert false"
      | Pexp_ident { txt; _ } when in_lib -> begin
          match Source.ident_name txt with
          | "exit" | "Stdlib.exit" ->
            emit exit_in_lib e.pexp_loc "call to exit"
          | _ -> ()
        end
      | _ -> ());
  List.rev !out
