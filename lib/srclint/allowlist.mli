(** The committed suppression file ([.cclint] at the repo root).

    One entry per line:

    {v
    # comment
    <rule-id> <path> : <justification>
    v}

    An entry suppresses every finding of [rule-id] in [path].  The
    justification is mandatory ([meta/missing-justification] otherwise),
    and an entry that suppresses nothing is itself an error
    ([meta/stale-suppression]) so suppressions cannot outlive their cause.
    An entry naming a rule the registry does not know is flagged too
    ([meta/unknown-rule]) — typos must not silently suppress nothing —
    and so is a second entry for the same (rule, path)
    ([meta/duplicate-suppression]): only the first can ever match. *)

type entry = {
  rule_id : string;
  path : string;          (** repo-relative, '/'-separated *)
  justification : string; (** "" when missing *)
  line : int;             (** 1-based line in the allowlist file *)
}

type t = {
  file : string;  (** path of the allowlist file, for meta diagnostics *)
  entries : entry list;
}

val empty : t

(** [parse_string ~file contents] parses allowlist text.  Malformed lines
    (fewer than two tokens before any [:]) are a hard error naming the
    line. *)
val parse_string : file:string -> string -> (t, string) result

(** [load path] reads and parses [path]; a missing file is an empty
    allowlist (nothing suppressed), unreadable or malformed content is an
    error. *)
val load : string -> (t, string) result

val stale_rule : Rule.t
val missing_justification_rule : Rule.t
val unknown_rule_rule : Rule.t
val duplicate_rule : Rule.t

(** The ["meta/"] rules the allowlist machinery can emit. *)
val rules : Rule.t list
