type entry = {
  rule_id : string;
  path : string;
  justification : string;
  line : int;
}

type t = {
  file : string;
  entries : entry list;
}

let empty = { file = ".cclint"; entries = [] }

let stale_rule =
  Rule.make ~id:"meta/stale-suppression" ~category:Rule.Meta
    ~severity:Rule.Error
    ~doc:
      "The allowlist entry suppressed nothing; the violation it excused \
       is gone, so the entry must go too."

let missing_justification_rule =
  Rule.make ~id:"meta/missing-justification" ~category:Rule.Meta
    ~severity:Rule.Error
    ~doc:
      "Every suppression must say why it is sound, in the entry itself."

let unknown_rule_rule =
  Rule.make ~id:"meta/unknown-rule" ~category:Rule.Meta ~severity:Rule.Error
    ~doc:
      "The allowlist entry names a rule the registry does not know — a \
       typo would otherwise suppress nothing, silently."

let duplicate_rule =
  Rule.make ~id:"meta/duplicate-suppression" ~category:Rule.Meta
    ~severity:Rule.Error
    ~doc:
      "Two allowlist entries name the same (rule, path); only the first \
       can ever match, so the second is dead weight that would otherwise \
       read as stale nondeterministically.  Keep one entry."

let rules = [ stale_rule; missing_justification_rule; unknown_rule_rule;
              duplicate_rule ]

let is_blank s = String.trim s = ""

let is_comment s =
  let s = String.trim s in
  String.length s > 0 && s.[0] = '#'

(* "<rule> <path> : <justification>"; the justification may itself contain
   colons, so only the first " : " separator (or trailing ":") counts. *)
let parse_line ~file ~line s =
  let body, justification =
    match String.index_opt s ':' with
    | Some i ->
      ( String.sub s 0 i,
        String.trim (String.sub s (i + 1) (String.length s - i - 1)) )
    | None -> (s, "")
  in
  match
    String.split_on_char ' ' body |> List.filter (fun t -> t <> "")
  with
  | [ rule_id; path ] -> Ok { rule_id; path; justification; line }
  | _ ->
    Error
      (Printf.sprintf
         "%s:%d: malformed allowlist entry (want \"<rule-id> <path> : \
          <justification>\")"
         file line)

let parse_string ~file contents =
  let lines = String.split_on_char '\n' contents in
  let rec go n acc = function
    | [] -> Ok { file; entries = List.rev acc }
    | l :: rest ->
      if is_blank l || is_comment l then go (n + 1) acc rest
      else begin
        match parse_line ~file ~line:n l with
        | Ok e -> go (n + 1) (e :: acc) rest
        | Error _ as err -> err
      end
  in
  go 1 [] lines

let load path =
  if not (Sys.file_exists path) then Ok { file = path; entries = [] }
  else begin
    match In_channel.with_open_bin path In_channel.input_all with
    | contents -> parse_string ~file:path contents
    | exception Sys_error msg -> Error msg
  end
