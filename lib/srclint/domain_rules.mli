(** Domain-safety contracts (["domain/"] rules): [Par.Pool] runs library
    code on worker domains concurrently, so top-level mutable state in
    [lib/] is a data race waiting for a schedule.  [Atomic] values are the
    sanctioned primitive and are not flagged; everything else (refs,
    hashtables, queues, buffers, arrays bound at module init) needs a
    justified [.cclint] suppression explaining its guard.  Domain-local
    storage is reserved for the two libraries that own the worker
    machinery, [lib/telemetry] and [lib/par]. *)

val rules : Rule.t list
val check : Source.t -> Diagnostic.t list
