(** The analysis driver: discover sources, parse, run every registered
    checker, apply the [--rules] filter and the [.cclint] allowlist, and
    return one deterministic result. *)

(** One allowlist entry's outcome: how many findings it suppressed.
    [matched = 0] means the entry is stale. *)
type suppression = {
  entry : Allowlist.entry;
  matched : int;
}

type result = {
  files_scanned : int;
  diagnostics : Diagnostic.t list;
    (** post-filter, post-suppression, {!Diagnostic.compare}-sorted;
        includes the ["meta/"] findings about the allowlist itself *)
  suppressions : suppression list;  (** in allowlist order *)
}

(** The trees scanned by default, relative to the root:
    [lib bin bench test]. *)
val default_roots : string list

(** [ml_files ~root] walks {!default_roots} under [root] and returns every
    [.ml] path (repo-relative, '/'-separated, sorted).  [_build] and
    dot-directories are skipped. *)
val ml_files : root:string -> string list

(** [check_source src] runs every checker on one parsed source. *)
val check_source : Source.t -> Diagnostic.t list

(** [check_string ~path contents] parses and checks one in-memory source;
    unparseable input yields the single [meta/parse-error] finding.  This
    is the fixture-test entry point. *)
val check_string : path:string -> string -> Diagnostic.t list

(** [check_file ~root path] reads and checks [root/path]; unreadable files
    surface as a [meta/parse-error] finding. *)
val check_file : root:string -> string -> Diagnostic.t list

(** [apply_allowlist allowlist diags] splits [diags] into kept findings
    and per-entry suppression counts, and appends the ["meta/"] findings
    (stale entry, missing justification, unknown rule, duplicate
    entry). *)
val apply_allowlist :
  Allowlist.t -> Diagnostic.t list -> Diagnostic.t list * suppression list

(** [run ?rules ?allowlist ?typed ~root ()] is the whole analysis.
    [rules] filters findings (and allowlist entries) to the selected ids
    — see {!Registry.matches}; default everything.  [allowlist] defaults
    to {!Allowlist.empty}.  [typed] carries the diagnostics of the typed
    whole-program pass (lib/ccdeps), which the engine merges before
    filtering and suppression; [None] means the pass did not run, and
    then allowlist entries for ["int/"]/["arch/"] rules are exempt from
    the stale check (their findings were never looked for). *)
val run :
  ?rules:string list -> ?allowlist:Allowlist.t ->
  ?typed:Diagnostic.t list -> root:string -> unit -> result

(** [has_findings ?werror diags]: any error, or any warning under
    [~werror:true]. *)
val has_findings : ?werror:bool -> Diagnostic.t list -> bool
