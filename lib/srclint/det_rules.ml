open Parsetree

let wall_clock =
  Rule.make ~id:"det/wall-clock" ~category:Rule.Determinism
    ~severity:Rule.Error
    ~doc:
      "Library code must not read the wall clock (Unix.gettimeofday, \
       Sys.time, ...); use Telemetry.Clock for durations or thread a \
       timestamp in from the caller."

let random_self_init =
  Rule.make ~id:"det/random-self-init" ~category:Rule.Determinism
    ~severity:Rule.Error
    ~doc:
      "Random.self_init seeds from ambient entropy and destroys \
       reproducibility everywhere, tests included; seed explicitly \
       (Par.Rng substreams, Random.State.make)."

let ambient_random =
  Rule.make ~id:"det/ambient-random" ~category:Rule.Determinism
    ~severity:Rule.Error
    ~doc:
      "The global Random state is shared across domains and \
       schedule-dependent; use Random.State values derived from Par.Rng \
       substreams instead."

let getenv =
  Rule.make ~id:"det/getenv" ~category:Rule.Determinism
    ~severity:Rule.Warning
    ~doc:
      "Reading the environment makes library behaviour ambient; resolve \
       configuration at the CLI boundary and pass it down (Par.Jobs owns \
       the one sanctioned knob)."

let gc_mutation =
  Rule.make ~id:"det/gc-mutation" ~category:Rule.Determinism
    ~severity:Rule.Error
    ~doc:
      "Mutating the GC (Gc.set, Gc.compact, Gc.full_major, ...) from \
       library or CLI code changes process-wide collection scheduling and \
       skews Telemetry.Memory accounting for every other caller; only \
       lib/telemetry may touch it, and benches/tests stay exempt.  \
       Read-only probes (Gc.quick_stat, Gc.minor_words) are fine."

let rules = [ wall_clock; random_self_init; ambient_random; getenv;
              gc_mutation ]

let wall_clock_idents =
  [ "Unix.gettimeofday"; "Unix.time"; "Unix.localtime"; "Unix.gmtime";
    "Unix.mktime"; "Sys.time" ]

let self_init_idents = [ "Random.self_init"; "Random.State.make_self_init" ]

let getenv_idents = [ "Sys.getenv"; "Sys.getenv_opt"; "Unix.getenv" ]

(* GC *mutators* only — Gc.quick_stat / Gc.minor_words / Gc.stat are
   read-only and deliberately absent. *)
let gc_mutation_idents =
  [ "Gc.set"; "Gc.compact"; "Gc.full_major"; "Gc.major"; "Gc.minor";
    "Gc.major_slice" ]

(* [Random.int], [Random.float], ... — any direct use of the implicit
   global generator.  [Random.State.*] carries its state explicitly and is
   fine (that is what Par.Rng hands out). *)
let is_ambient_random lid =
  match lid with
  | Longident.Ldot (Longident.Lident "Random", member) -> member <> "State"
  | _ -> false

let check (src : Source.t) =
  let out = ref [] in
  let emit rule loc name =
    let line, col = Source.line_col loc in
    out :=
      Diagnostic.makef ~rule ~file:src.Source.path ~line ~col "use of %s"
        name
      :: !out
  in
  Source.iter_exprs src.Source.ast (fun e ->
      match e.pexp_desc with
      | Pexp_ident { txt; _ } ->
        let name = Source.ident_name txt in
        let loc = e.pexp_loc in
        if List.mem name self_init_idents then emit random_self_init loc name
        else if src.Source.zone = Source.Lib && List.mem name wall_clock_idents
        then emit wall_clock loc name
        else if
          (src.Source.zone = Source.Lib || src.Source.zone = Source.Bin)
          && is_ambient_random txt
        then emit ambient_random loc name
        else if src.Source.zone = Source.Lib && List.mem name getenv_idents
        then emit getenv loc name
        else if
          (src.Source.zone = Source.Lib || src.Source.zone = Source.Bin)
          && src.Source.lib <> Some "telemetry"
          && List.mem name gc_mutation_idents
        then emit gc_mutation loc name
      | _ -> ());
  List.rev !out
