(** Error-handling contracts (["err/"] rules): library code must not
    swallow exceptions it did not anticipate (a catch-all handler that
    neither re-raises nor fails turns worker faults into silent wrong
    answers), must prefer typed failures over [assert false] traps, and
    must never [exit] — that is the executable's decision. *)

val rules : Rule.t list
val check : Source.t -> Diagnostic.t list
