(** The source-lint rule registry: every rule any checker (or the
    allowlist/parse machinery) can emit, aggregated from {!Det_rules},
    {!Domain_rules}, {!Error_rules}, {!Hygiene_rules}, {!Allowlist} and
    {!Source}.

    Ids are guaranteed unique (checked at module initialisation) and the
    catalogue is sorted by id, so documentation, JSON output and tests all
    see one stable order. *)

(** Every registered rule, sorted by id.  Raises [Invalid_argument] at
    first use if two checker modules declare the same id. *)
val all : Rule.t list

(** [find id]. *)
val find : string -> Rule.t option

(** [by_category c] keeps the registered rules of one category, sorted. *)
val by_category : Rule.category -> Rule.t list

(** [ids] is the sorted list of every registered rule id. *)
val ids : string list

(** [matches ~patterns id]: does [id] satisfy the [--rules] filter?  A
    pattern selects its exact id, or a whole family by prefix — ["det"],
    ["det/"] and ["det/*"] all select every ["det/"] rule. *)
val matches : patterns:string list -> string -> bool

(** [pattern_selects_nothing patterns] is the sublist of [patterns] that
    select no registered rule — user typos to report. *)
val pattern_selects_nothing : string list -> string list
