(** Hygiene contracts (["hyg/"] rules): no polymorphic structural compare
    where a typed comparator exists (on floats it is NaN-hostile and on
    records it is field-order-fragile), no [=] against float literals, no
    printing from library code, no [Obj] tricks anywhere.

    Polymorphic-compare detection is syntactic: [Stdlib.compare] is always
    flagged in [lib/]; a bare [compare] is flagged unless the file binds
    its own [compare] (a module defining [M.compare] is the typed
    comparator, not a use of the polymorphic one). *)

val rules : Rule.t list
val check : Source.t -> Diagnostic.t list
