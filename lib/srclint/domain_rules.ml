open Parsetree

let global_ref =
  Rule.make ~id:"domain/global-ref" ~category:Rule.Domain_safety
    ~severity:Rule.Error
    ~doc:
      "A top-level ref cell is shared by every Par.Pool worker domain; \
       allocate state per call, use Atomic, or suppress with the guarding \
       discipline spelled out."

let global_mutable =
  Rule.make ~id:"domain/global-mutable" ~category:Rule.Domain_safety
    ~severity:Rule.Error
    ~doc:
      "A top-level mutable container (Hashtbl, Queue, Buffer, Stack, \
       array, bytes) is shared by every worker domain; allocate per call \
       or suppress with the guarding discipline spelled out."

let dls =
  Rule.make ~id:"domain/dls" ~category:Rule.Domain_safety
    ~severity:Rule.Error
    ~doc:
      "Domain-local storage is reserved for lib/telemetry and lib/par; \
       anywhere else it hides per-domain state the pool cannot propagate."

let spawn =
  Rule.make ~id:"domain/spawn" ~category:Rule.Domain_safety
    ~severity:Rule.Error
    ~doc:
      "Domain.spawn is reserved for lib/par: raw domains bypass the pool's \
       ordering, fault-isolation, telemetry-inheritance and scheduler- \
       observability contracts — go through Par.Pool instead."

let rules = [ global_ref; global_mutable; dls; spawn ]

let mutable_ctor_idents =
  [ "Hashtbl.create"; "Queue.create"; "Buffer.create"; "Stack.create";
    "Array.make"; "Array.init"; "Array.create_float"; "Bytes.create";
    "Bytes.make" ]

let dls_allowed_libs = [ "telemetry"; "par" ]

(* A binding whose RHS is a function only allocates when called; the rules
   target state allocated once at module initialisation. *)
let rec is_function e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, body) -> is_function body
  | Pexp_constraint (body, _) -> is_function body
  | _ -> false

let check (src : Source.t) =
  let out = ref [] in
  let emit rule loc detail =
    let line, col = Source.line_col loc in
    out := Diagnostic.make ~rule ~file:src.Source.path ~line ~col detail :: !out
  in
  (* --- top-level mutable state, descending into nested modules --- *)
  let scan_binding_rhs e =
    let visit sub =
      match sub.pexp_desc with
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> begin
          match Source.ident_name txt with
          | "ref" | "Stdlib.ref" ->
            emit global_ref sub.pexp_loc
              "ref cell allocated at module initialisation"
          | name when List.mem name mutable_ctor_idents ->
            emit global_mutable sub.pexp_loc
              (name ^ " allocated at module initialisation")
          | _ -> ()
        end
      | _ -> ()
    in
    (* Function bodies allocate per call (a DLS-key initialiser's ref is
       per-domain), so descent stops there; [lazy] merely defers the one
       shared allocation and is still scanned. *)
    let it =
      { Ast_iterator.default_iterator with
        Ast_iterator.expr =
          (fun self sub ->
             match sub.pexp_desc with
             | Pexp_fun _ | Pexp_function _ -> ()
             | _ ->
               visit sub;
               Ast_iterator.default_iterator.Ast_iterator.expr self sub) }
    in
    it.Ast_iterator.expr it e
  in
  let rec scan_structure str = List.iter scan_item str
  and scan_item item =
    match item.pstr_desc with
    | Pstr_value (_, vbs) ->
      List.iter
        (fun vb -> if not (is_function vb.pvb_expr) then scan_binding_rhs vb.pvb_expr)
        vbs
    | Pstr_module mb -> scan_module_expr mb.pmb_expr
    | Pstr_recmodule mbs ->
      List.iter (fun mb -> scan_module_expr mb.pmb_expr) mbs
    | Pstr_include incl -> scan_module_expr incl.pincl_mod
    | _ -> ()
  and scan_module_expr me =
    match me.pmod_desc with
    | Pmod_structure str -> scan_structure str
    | Pmod_constraint (me, _) -> scan_module_expr me
    (* a functor body re-allocates per application — not module-global *)
    | _ -> ()
  in
  if src.Source.zone = Source.Lib then scan_structure src.Source.ast;
  (* --- Domain.DLS outside the libraries that own worker machinery --- *)
  let dls_allowed =
    match src.Source.lib with
    | Some lib -> List.mem lib dls_allowed_libs
    | None -> src.Source.zone <> Source.Lib && src.Source.zone <> Source.Bin
  in
  if not dls_allowed then
    Source.iter_exprs src.Source.ast (fun e ->
        match e.pexp_desc with
        | Pexp_ident { txt; _ } ->
          let name = Source.ident_name txt in
          if String.length name >= 11 && String.sub name 0 11 = "Domain.DLS."
          then emit dls e.pexp_loc ("use of " ^ name)
        | _ -> ());
  (* --- raw Domain.spawn outside the pool library --- *)
  let spawn_allowed =
    match src.Source.lib with
    | Some lib -> String.equal lib "par"
    | None -> src.Source.zone <> Source.Lib && src.Source.zone <> Source.Bin
  in
  if not spawn_allowed then
    Source.iter_exprs src.Source.ast (fun e ->
        match e.pexp_desc with
        | Pexp_ident { txt; _ } ->
          let name = Source.ident_name txt in
          if String.equal name "Domain.spawn" then
            emit spawn e.pexp_loc "use of Domain.spawn"
        | _ -> ());
  Diagnostic.sort !out
