(** One concrete finding: a {!Rule.t} violated at a particular source
    location.  The shape mirrors {!Verify.Diagnostic}, with the [loc]
    anchored to a file:line:col instead of a layout element. *)

type t = {
  rule : Rule.t;
  file : string;  (** repo-relative path, '/'-separated *)
  line : int;     (** 1-based; 0 when the finding is file-scoped *)
  col : int;      (** 0-based column of the offending token *)
  detail : string;
}

val make : rule:Rule.t -> file:string -> ?line:int -> ?col:int -> string -> t

(** [makef ~rule ~file ?line ?col fmt ...] formats the detail in place. *)
val makef :
  rule:Rule.t ->
  file:string ->
  ?line:int ->
  ?col:int ->
  ('a, unit, string, t) format4 ->
  'a

val severity : t -> Rule.severity

(** Severity first (errors up), then rule id, then file, line, column and
    detail — a deterministic total order for reporting. *)
val compare : t -> t -> int

(** [sort diags] is [diags] in {!compare} order. *)
val sort : t list -> t list

(** [count sev diags]. *)
val count : Rule.severity -> t list -> int

(** [errors diags] keeps only [Error]-severity findings. *)
val errors : t list -> t list

(** [rule_ids diags] is the sorted de-duplicated list of violated rule
    ids. *)
val rule_ids : t list -> string list

(** Renders as ["error[det/wall-clock] lib/x.ml:72:18: ..."]. *)
val pp : Format.formatter -> t -> unit
