type zone = Lib | Bin | Bench | Test | Other

type t = {
  path : string;
  zone : zone;
  lib : string option;
  ast : Parsetree.structure;
}

let zone_name = function
  | Lib -> "lib"
  | Bin -> "bin"
  | Bench -> "bench"
  | Test -> "test"
  | Other -> "other"

let split_path path = String.split_on_char '/' path

let zone_of_path path =
  match split_path path with
  | "lib" :: _ -> Lib
  | "bin" :: _ -> Bin
  | "bench" :: _ -> Bench
  | "test" :: _ -> Test
  | _ -> Other

let lib_of_path path =
  match split_path path with
  | [ "lib"; dir; _ ] -> Some dir
  | "lib" :: dir :: _ :: _ -> Some dir
  | _ -> None

let parse_error_rule =
  Rule.make ~id:"meta/parse-error" ~category:Rule.Meta ~severity:Rule.Error
    ~doc:
      "The file does not parse with the compiler frontend; the analyzer \
       cannot vouch for anything in it."

let line_col (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

let ident_name lid = String.concat "." (Longident.flatten lid)

let parse ~path contents =
  let lexbuf = Lexing.from_string contents in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | ast -> Ok { path; zone = zone_of_path path; lib = lib_of_path path; ast }
  | exception Syntaxerr.Error err ->
    let line, col = line_col (Syntaxerr.location_of_error err) in
    Error
      (Diagnostic.make ~rule:parse_error_rule ~file:path ~line ~col
         "syntax error")
  | exception Lexer.Error (_, loc) ->
    let line, col = line_col loc in
    Error
      (Diagnostic.make ~rule:parse_error_rule ~file:path ~line ~col
         "lexer error")

let iter_exprs ast f =
  let expr self e =
    f e;
    Ast_iterator.default_iterator.Ast_iterator.expr self e
  in
  let it = { Ast_iterator.default_iterator with Ast_iterator.expr = expr } in
  it.Ast_iterator.structure it ast
