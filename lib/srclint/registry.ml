let all =
  let rules =
    Det_rules.rules @ Domain_rules.rules @ Error_rules.rules
    @ Hygiene_rules.rules @ Typed_rules.rules @ Allowlist.rules
    @ [ Source.parse_error_rule ]
  in
  let sorted =
    List.sort (fun a b -> String.compare a.Rule.id b.Rule.id) rules
  in
  let rec check_unique = function
    | a :: (b :: _ as rest) ->
      if a.Rule.id = b.Rule.id then
        invalid_arg ("Srclint.Registry: duplicate rule id " ^ a.Rule.id);
      check_unique rest
    | _ -> ()
  in
  check_unique sorted;
  sorted

let find id = List.find_opt (fun r -> r.Rule.id = id) all

let by_category c = List.filter (fun r -> r.Rule.category = c) all

let ids = List.map (fun r -> r.Rule.id) all

let normalize_pattern p =
  let strip suffix p =
    if Filename.check_suffix p suffix then Filename.chop_suffix p suffix
    else p
  in
  strip "*" p |> strip "/"

let pattern_matches p id =
  let family = normalize_pattern p in
  id = p
  || String.length id > String.length family + 1
     && String.sub id 0 (String.length family + 1) = family ^ "/"

let matches ~patterns id = List.exists (fun p -> pattern_matches p id) patterns

let pattern_selects_nothing patterns =
  List.filter
    (fun p -> not (List.exists (fun id -> pattern_matches p id) ids))
    patterns
