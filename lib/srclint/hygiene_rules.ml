open Parsetree

let poly_compare =
  Rule.make ~id:"hyg/poly-compare" ~category:Rule.Hygiene
    ~severity:Rule.Error
    ~doc:
      "Polymorphic compare is NaN-hostile on floats and \
       representation-fragile on records; kernels must sort and compare \
       with typed comparators (Float.compare, Int.compare, Cell.compare, \
       ...)."

let float_equality =
  Rule.make ~id:"hyg/float-equality" ~category:Rule.Hygiene
    ~severity:Rule.Error
    ~doc:
      "Structural (=)/(<>) against a float literal; use Float.equal, a \
       sign test, or an explicit tolerance."

let print_in_lib =
  Rule.make ~id:"hyg/print-in-lib" ~category:Rule.Hygiene
    ~severity:Rule.Error
    ~doc:
      "Library code must not write to stdout/stderr; return strings, \
       take a Format.formatter, or use Logs — printing is the CLI's job."

let obj_magic =
  Rule.make ~id:"hyg/obj-magic" ~category:Rule.Hygiene ~severity:Rule.Error
    ~doc:"Obj.magic/Obj.repr defeat the type system; there is no sanctioned \
          use in this tree."

let rules = [ poly_compare; float_equality; print_in_lib; obj_magic ]

let print_idents =
  [ "print_endline"; "print_string"; "print_newline"; "print_int";
    "print_float"; "print_char"; "prerr_endline"; "prerr_string";
    "prerr_newline"; "Printf.printf"; "Printf.eprintf"; "Format.printf";
    "Format.eprintf"; "Format.print_string" ]

let obj_idents = [ "Obj.magic"; "Obj.repr"; "Obj.obj" ]

let eq_operators = [ "="; "<>"; "=="; "!=" ]

(* A file that binds its own [compare] (Diagnostic.compare, a local
   comparator passed to sort, ...) uses that binding, not the polymorphic
   one — skip bare-[compare] findings there. *)
let binds_compare ast =
  let found = ref false in
  let value_binding self vb =
    (let rec pat_binds p =
       match p.ppat_desc with
       | Ppat_var { txt = "compare"; _ } -> true
       | Ppat_constraint (p, _) | Ppat_alias (p, _) -> pat_binds p
       | _ -> false
     in
     if pat_binds vb.pvb_pat then found := true);
    Ast_iterator.default_iterator.Ast_iterator.value_binding self vb
  in
  let it =
    { Ast_iterator.default_iterator with Ast_iterator.value_binding = value_binding }
  in
  it.Ast_iterator.structure it ast;
  !found

let rec is_float_literal e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint (inner, _) -> is_float_literal inner
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident ("~-." | "~+."); _ };
          _ },
        [ (_, arg) ] ) ->
    is_float_literal arg
  | _ -> false

let check (src : Source.t) =
  let out = ref [] in
  let emit rule loc detail =
    let line, col = Source.line_col loc in
    out := Diagnostic.make ~rule ~file:src.Source.path ~line ~col detail :: !out
  in
  let in_lib = src.Source.zone = Source.Lib in
  let compare_shadowed = binds_compare src.Source.ast in
  Source.iter_exprs src.Source.ast (fun e ->
      match e.pexp_desc with
      | Pexp_ident { txt; _ } -> begin
          let name = Source.ident_name txt in
          if List.mem name obj_idents then
            emit obj_magic e.pexp_loc ("use of " ^ name)
          else if in_lib then
            if name = "Stdlib.compare" || name = "Pervasives.compare" then
              emit poly_compare e.pexp_loc ("use of " ^ name)
            else if name = "compare" && not compare_shadowed then
              emit poly_compare e.pexp_loc "use of polymorphic compare"
            else if List.mem name print_idents then
              emit print_in_lib e.pexp_loc ("use of " ^ name)
        end
      | Pexp_apply
          ( { pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ },
            [ (_, lhs); (_, rhs) ] )
        when in_lib && List.mem op eq_operators ->
        if is_float_literal lhs || is_float_literal rhs then
          emit float_equality e.pexp_loc
            (Printf.sprintf "(%s) against a float literal" op)
      | _ -> ());
  List.rev !out
