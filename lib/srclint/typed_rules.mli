(** Rule identities for the typed whole-program pass.

    [lib/ccdeps] emits diagnostics against these; declaring them here
    keeps {!Registry.all} a single static list (and lets the allowlist
    vet ["int/"]/["arch/"] suppressions) without srclint depending on
    the typed analysis. *)

(** {2 Effect/determinism taint (["int/taint-*"])} *)

val taint_wall_clock : Rule.t
val taint_random : Rule.t
val taint_getenv : Rule.t
val taint_gc : Rule.t
val taint_print : Rule.t

(** {2 Domain-escape race detection} *)

val domain_escape : Rule.t

(** {2 Architecture layering (["arch/*"])} *)

val layer_violation : Rule.t
val forbidden_dep : Rule.t
val layer_cycle : Rule.t
val undeclared_lib : Rule.t

(** {2 Typed-pass bookkeeping} *)

val cmt_error : Rule.t
val manifest_error : Rule.t

(** Every rule above, for {!Registry.all}. *)
val rules : Rule.t list

(** [(kind-name, rule)] pairs for the taint kinds, in reporting order. *)
val taint_families : (string * Rule.t) list

(** [is_typed_rule_id id]: does [id] belong to the typed pass?  Used to
    keep allowlist entries for typed rules from reading as stale when
    the pass is off (no [.cmt] files around). *)
val is_typed_rule_id : string -> bool
