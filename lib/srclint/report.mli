(** Renderers for one {!Engine.result}: a pretty text form for terminals
    and a stable machine-readable JSON form for CI artifacts.  Both render
    diagnostics in {!Diagnostic.compare} order (errors first), so output
    is deterministic regardless of scan order. *)

(** [pp_text ppf result] prints one line per finding followed by a summary
    line ("source tree clean" or counts, plus suppression count). *)
val pp_text : Format.formatter -> Engine.result -> unit

(** [text result] is {!pp_text} to a string. *)
val text : Engine.result -> string

(** [summary_line result] is just the final counts line. *)
val summary_line : Engine.result -> string

(** [json_escape s] escapes [s] for embedding in a JSON string literal. *)
val json_escape : string -> string

(** [json result] is a self-contained JSON object:

    {v
    {"version": 1, "tool": "cclint",
     "summary": {"errors": 0, "warnings": 0, "infos": 0, "total": 0,
                 "suppressed": 2, "files_scanned": 123},
     "diagnostics": [
       {"rule": "det/wall-clock", "category": "determinism",
        "severity": "error", "file": "lib/x.ml", "line": 7, "col": 2,
        "detail": "..."}],
     "suppressions": [
       {"rule": "det/wall-clock", "path": "lib/qor/provenance.ml",
        "line": 3, "matched": 1, "justification": "..."}]}
    v}
*)
val json : Engine.result -> string

(** [json_rules ()] renders the whole {!Registry} catalogue as JSON
    (id, category, severity, doc per rule). *)
val json_rules : unit -> string

(** [pp_rules ppf ()] renders the catalogue as text, one rule per line. *)
val pp_rules : Format.formatter -> unit -> unit
