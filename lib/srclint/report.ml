let counts (r : Engine.result) =
  ( Diagnostic.count Rule.Error r.Engine.diagnostics,
    Diagnostic.count Rule.Warning r.Engine.diagnostics,
    Diagnostic.count Rule.Info r.Engine.diagnostics )

let suppressed_total (r : Engine.result) =
  List.fold_left
    (fun acc s -> acc + s.Engine.matched)
    0 r.Engine.suppressions

let summary_line (r : Engine.result) =
  let errors, warnings, infos = counts r in
  let buf = Buffer.create 64 in
  if errors = 0 && warnings = 0 && infos = 0 then
    Buffer.add_string buf "source tree clean"
  else begin
    let part n what =
      if n > 0 then begin
        if Buffer.length buf > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf
          (Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s"))
      end
    in
    part errors "error";
    part warnings "warning";
    part infos "info";
    ()
  end;
  Buffer.add_string buf
    (Printf.sprintf " (%d file%s scanned" r.Engine.files_scanned
       (if r.Engine.files_scanned = 1 then "" else "s"));
  let sup = suppressed_total r in
  if sup > 0 then
    Buffer.add_string buf (Printf.sprintf ", %d finding%s suppressed" sup
                             (if sup = 1 then "" else "s"));
  Buffer.add_string buf ")";
  Buffer.contents buf

let pp_text ppf (r : Engine.result) =
  List.iter
    (fun d -> Format.fprintf ppf "%a@." Diagnostic.pp d)
    r.Engine.diagnostics;
  Format.fprintf ppf "%s@." (summary_line r)

let text r = Format.asprintf "%a" pp_text r

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let diag_json (d : Diagnostic.t) =
  Printf.sprintf
    "{\"rule\": \"%s\", \"category\": \"%s\", \"severity\": \"%s\", \
     \"file\": \"%s\", \"line\": %d, \"col\": %d, \"detail\": \"%s\"}"
    (json_escape d.Diagnostic.rule.Rule.id)
    (Rule.category_name d.Diagnostic.rule.Rule.category)
    (Rule.severity_name d.Diagnostic.rule.Rule.severity)
    (json_escape d.Diagnostic.file)
    d.Diagnostic.line d.Diagnostic.col
    (json_escape d.Diagnostic.detail)

let suppression_json (s : Engine.suppression) =
  let e = s.Engine.entry in
  Printf.sprintf
    "{\"rule\": \"%s\", \"path\": \"%s\", \"line\": %d, \"matched\": %d, \
     \"justification\": \"%s\"}"
    (json_escape e.Allowlist.rule_id)
    (json_escape e.Allowlist.path)
    e.Allowlist.line s.Engine.matched
    (json_escape e.Allowlist.justification)

let json (r : Engine.result) =
  let errors, warnings, infos = counts r in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"version\": 1, \"tool\": \"cclint\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       " \"summary\": {\"errors\": %d, \"warnings\": %d, \"infos\": %d, \
        \"total\": %d, \"suppressed\": %d, \"files_scanned\": %d},\n"
       errors warnings infos
       (List.length r.Engine.diagnostics)
       (suppressed_total r) r.Engine.files_scanned);
  Buffer.add_string buf " \"diagnostics\": [";
  Buffer.add_string buf
    (String.concat ",\n   " (List.map diag_json r.Engine.diagnostics));
  Buffer.add_string buf "],\n \"suppressions\": [";
  Buffer.add_string buf
    (String.concat ",\n   " (List.map suppression_json r.Engine.suppressions));
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let rule_json (r : Rule.t) =
  Printf.sprintf
    "{\"id\": \"%s\", \"category\": \"%s\", \"severity\": \"%s\", \"doc\": \
     \"%s\"}"
    (json_escape r.Rule.id)
    (Rule.category_name r.Rule.category)
    (Rule.severity_name r.Rule.severity)
    (json_escape r.Rule.doc)

let json_rules () =
  Printf.sprintf "{\"version\": 1, \"tool\": \"cclint\", \"rules\": [%s]}\n"
    (String.concat ",\n  " (List.map rule_json Registry.all))

let pp_rules ppf () =
  List.iter (fun r -> Format.fprintf ppf "%a@." Rule.pp r) Registry.all
