type t = {
  rule : Rule.t;
  file : string;
  line : int;
  col : int;
  detail : string;
}

let make ~rule ~file ?(line = 0) ?(col = 0) detail =
  { rule; file; line; col; detail }

let makef ~rule ~file ?line ?col fmt =
  Printf.ksprintf (make ~rule ~file ?line ?col) fmt

let severity t = t.rule.Rule.severity

let compare a b =
  let c = Rule.compare_severity a.rule.Rule.severity b.rule.Rule.severity in
  if c <> 0 then c
  else
    let c = String.compare a.rule.Rule.id b.rule.Rule.id in
    if c <> 0 then c
    else
      let c = String.compare a.file b.file in
      if c <> 0 then c
      else
        let c = Int.compare a.line b.line in
        if c <> 0 then c
        else
          let c = Int.compare a.col b.col in
          if c <> 0 then c else String.compare a.detail b.detail

let sort diags = List.sort compare diags

let count sev diags =
  List.length (List.filter (fun d -> severity d = sev) diags)

let errors diags = List.filter (fun d -> severity d = Rule.Error) diags

let rule_ids diags =
  List.sort_uniq String.compare (List.map (fun d -> d.rule.Rule.id) diags)

let pp ppf t =
  Format.fprintf ppf "%s[%s] %s:%d:%d: %s"
    (Rule.severity_name t.rule.Rule.severity)
    t.rule.Rule.id t.file t.line t.col t.detail
