(** Determinism contracts (["det/"] rules): the whole flow is reproducible
    byte-for-byte at any [--jobs] value (docs/PARALLEL.md), which holds
    only while library code never reads a wall clock, ambient RNG state or
    the process environment, and never mutates the process-wide GC (which
    would also skew {!Telemetry.Memory} accounting — only [lib/telemetry]
    is exempt).  The one sanctioned wall-clock site
    ([Qor.Provenance.capture], which stamps records by design) carries a
    justified [.cclint] suppression. *)

val rules : Rule.t list
val check : Source.t -> Diagnostic.t list
