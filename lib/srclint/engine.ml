type suppression = {
  entry : Allowlist.entry;
  matched : int;
}

type result = {
  files_scanned : int;
  diagnostics : Diagnostic.t list;
  suppressions : suppression list;
}

let default_roots = [ "lib"; "bin"; "bench"; "test" ]

let skip_dir name =
  name = "_build" || (String.length name > 0 && name.[0] = '.')

let ml_files ~root =
  let out = ref [] in
  let rec walk rel_dir =
    let abs = Filename.concat root rel_dir in
    match Sys.readdir abs with
    | entries ->
      Array.sort String.compare entries;
      Array.iter
        (fun name ->
           let rel = rel_dir ^ "/" ^ name in
           let abs = Filename.concat root rel in
           if Sys.is_directory abs then begin
             if not (skip_dir name) then walk rel
           end
           else if Filename.check_suffix name ".ml" then out := rel :: !out)
        entries
    | exception Sys_error _ -> ()
  in
  List.iter
    (fun r -> if Sys.file_exists (Filename.concat root r) then walk r)
    default_roots;
  List.sort String.compare !out

let checkers =
  [ Det_rules.check; Domain_rules.check; Error_rules.check;
    Hygiene_rules.check ]

let check_source src =
  List.concat_map (fun check -> check src) checkers

let check_string ~path contents =
  match Source.parse ~path contents with
  | Ok src -> Diagnostic.sort (check_source src)
  | Error diag -> [ diag ]

let check_file ~root path =
  match
    In_channel.with_open_bin (Filename.concat root path) In_channel.input_all
  with
  | contents -> check_string ~path contents
  | exception Sys_error msg ->
    [ Diagnostic.makef ~rule:Source.parse_error_rule ~file:path
        "unreadable: %s" msg ]

let apply_allowlist (allowlist : Allowlist.t) diags =
  let suppressed_by d =
    List.find_opt
      (fun (e : Allowlist.entry) ->
         e.Allowlist.rule_id = d.Diagnostic.rule.Rule.id
         && e.Allowlist.path = d.Diagnostic.file)
      allowlist.Allowlist.entries
  in
  let kept, matches =
    List.fold_left
      (fun (kept, matches) d ->
         match suppressed_by d with
         | Some e -> (kept, e.Allowlist.line :: matches)
         | None -> (d :: kept, matches))
      ([], []) diags
  in
  let meta = ref [] in
  let emit rule (e : Allowlist.entry) fmt =
    Printf.ksprintf
      (fun detail ->
         meta :=
           Diagnostic.make ~rule ~file:allowlist.Allowlist.file
             ~line:e.Allowlist.line detail
           :: !meta)
      fmt
  in
  let suppressions =
    let seen = ref [] in
    List.map
      (fun (e : Allowlist.entry) ->
         let matched =
           List.length (List.filter (fun l -> l = e.Allowlist.line) matches)
         in
         let key = (e.Allowlist.rule_id, e.Allowlist.path) in
         if List.mem key !seen then
           (* A later duplicate can never match (the first entry wins in
              [suppressed_by]), so it gets exactly this one diagnostic —
              not a coin-flip between duplicate and stale. *)
           emit Allowlist.duplicate_rule e
             "duplicate suppression of %s in %s (an earlier entry already \
              covers it)"
             e.Allowlist.rule_id e.Allowlist.path
         else begin
           seen := key :: !seen;
           if e.Allowlist.justification = "" then
             emit Allowlist.missing_justification_rule e
               "suppression of %s in %s has no justification"
               e.Allowlist.rule_id e.Allowlist.path;
           if not (List.mem e.Allowlist.rule_id Registry.ids) then
             emit Allowlist.unknown_rule_rule e "unknown rule %s"
               e.Allowlist.rule_id
           else if matched = 0 then
             emit Allowlist.stale_rule e
               "stale suppression: no %s finding in %s" e.Allowlist.rule_id
               e.Allowlist.path
         end;
         { entry = e; matched })
      allowlist.Allowlist.entries
  in
  (List.rev kept @ List.rev !meta, suppressions)

let run ?rules ?(allowlist = Allowlist.empty) ?typed ~root () =
  let files = ml_files ~root in
  let diags =
    List.concat_map (fun path -> check_file ~root path) files
    @ Option.value typed ~default:[]
  in
  let selected id =
    match rules with
    | None -> true
    | Some patterns -> Registry.matches ~patterns id
  in
  let diags =
    List.filter (fun d -> selected d.Diagnostic.rule.Rule.id) diags
  in
  (* When the typed pass did not run (no .cmt files around, or
     --no-typed), its allowlist entries must not read as stale: the
     violations they excuse were never looked for this run.  A typed run
     that found nothing ([typed = Some []]) stale-checks them normally. *)
  let typed_ran = typed <> None in
  let allowlist =
    { allowlist with
      Allowlist.entries =
        List.filter
          (fun (e : Allowlist.entry) ->
             selected e.Allowlist.rule_id
             && (typed_ran
                 || not (Typed_rules.is_typed_rule_id e.Allowlist.rule_id)))
          allowlist.Allowlist.entries }
  in
  let diagnostics, suppressions = apply_allowlist allowlist diags in
  { files_scanned = List.length files;
    diagnostics = Diagnostic.sort diagnostics;
    suppressions }

let has_findings ?(werror = false) diags =
  List.exists
    (fun d ->
       match Diagnostic.severity d with
       | Rule.Error -> true
       | Rule.Warning -> werror
       | Rule.Info -> false)
    diags
