(** Layout-vs-schematic certification.

    {!run} flattens a routed layout ({!Shape.of_layout}), extracts its
    connectivity ({!Extracted.extract}) and compares the result against
    the intended netlist — one net per capacitor spanning exactly its
    placed cells plus one driver terminal, and one shared top plate —
    classifying every disagreement under the [lvs/*] rule family of
    {!Verify.Lvs_rules}:

    - [lvs/short]: one component claims two nets;
    - [lvs/open]: a net is missing its driver terminal or its anchored
      shapes (cell plates, driver) span several components;
    - [lvs/floating-cell]: a cell plate is not in its driver's component;
    - [lvs/dangling] (warning): metal anchored to no plate or terminal;
    - [lvs/top-open]: the shared top plate spans several components;
    - [lvs/netbuild-mismatch]: on a geometrically clean net, the cells the
      drawn geometry reaches differ from the {!Extract.Netbuild} RC-tree
      cell set — the Elmore/f3dB numbers would describe a different
      circuit than the one drawn.

    Diagnostics feed the ordinary {!Verify.Engine} gate ([gate],
    [assert_clean]), the [ccgen lvs] CLI and the flow's [lvs] stage. *)

type stats = {
  shapes : int;       (** shapes flattened and swept *)
  contacts : int;     (** same-layer contact pairs *)
  components : int;   (** extracted electrical components *)
}

type result = {
  diagnostics : Verify.Diagnostic.t list;  (** sorted, possibly empty *)
  stats : stats;
}

(** [classify ex layout] is the comparison pass alone (no telemetry). *)
val classify : Extracted.t -> Ccroute.Layout.t -> Verify.Diagnostic.t list

(** [run layout] is the full instrumented pass (spans [lvs.flatten],
    [lvs.extract], [lvs.compare]; metrics [lvs/shapes], [lvs/contacts],
    [lvs/components], [lvs/defects_total]). *)
val run : Ccroute.Layout.t -> result

(** [check layout] is [(run layout).diagnostics]. *)
val check : Ccroute.Layout.t -> Verify.Diagnostic.t list
