(** Flattening a routed layout into the drawn-geometry shape set.

    LVS must judge the geometry actually drawn, so the flattener reads
    only the layout's rendered artefacts — placed cell plates, wire
    segments, vias — and never the router's plan or per-net metadata
    (those are the {e intent} the extraction is checked against). *)

open Ccgrid

type kind =
  | Pad of Cell.t          (** bottom plate of a placed (non-dummy) cell *)
  | Top_pad of Cell.t      (** top plate; every cell has one *)
  | Wire of Ccroute.Layout.wire_kind
  | Via                    (** logical via joining M1 and M3 *)

(** The net a shape claims to belong to: one capacitor's bottom-plate
    net, or the shared top plate. *)
type label =
  | Cap of int
  | Top

type t = {
  id : int;                        (** dense index into the flattened set *)
  kind : kind;
  label : label;
  layers : Tech.Layer.name list;   (** layers the shape occupies (vias: 2) *)
  x : Geom.Interval.t;
  y : Geom.Interval.t;             (** extents, um; points are degenerate *)
  driver : bool;                   (** via at the driver row (y = 0) *)
}

val label_name : label -> string
val compare_label : label -> label -> int
val kind_name : kind -> string

(** [of_layout l] flattens [l] into shapes with ids [0 .. n-1]. *)
val of_layout : Ccroute.Layout.t -> t array

val pp : Format.formatter -> t -> unit
