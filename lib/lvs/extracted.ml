type t = {
  shapes : Shape.t array;
  comp_of : int array;
  n_components : int;
  n_contacts : int;
}

(* Union-find with path halving and union by size. *)
let extract (shapes : Shape.t array) =
  let n = Array.length shapes in
  let parent = Array.init n Fun.id in
  let size = Array.make n 1 in
  let rec find i =
    let p = parent.(i) in
    if p = i then i
    else begin
      parent.(i) <- parent.(p);
      find parent.(i)
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then begin
      let big, small = if size.(ra) >= size.(rb) then ra, rb else rb, ra in
      parent.(small) <- big;
      size.(big) <- size.(big) + size.(small)
    end
  in
  (* one sweep per layer; a via carries the same shape id into both its
     layers, which is what closes connectivity across the stack *)
  let contacts = ref 0 in
  List.iter
    (fun layer ->
       let segs =
         Array.to_seq shapes
         |> Seq.filter_map (fun (s : Shape.t) ->
             if List.exists (Tech.Layer.equal_name layer) s.Shape.layers then
               Some
                 (Geom.Sweepline.segment ~id:s.Shape.id
                    ~ax:s.Shape.x.Geom.Interval.lo ~ay:s.Shape.y.Geom.Interval.lo
                    ~bx:s.Shape.x.Geom.Interval.hi ~by:s.Shape.y.Geom.Interval.hi)
             else None)
         |> List.of_seq
       in
       let pairs = Geom.Sweepline.contacts segs in
       contacts := !contacts + List.length pairs;
       List.iter (fun (a, b) -> union a b) pairs)
    [ Tech.Layer.M1; Tech.Layer.M2; Tech.Layer.M3 ];
  (* densify component ids in shape order *)
  let comp_of = Array.make n (-1) in
  let next = ref 0 in
  let index = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    let r = find i in
    match Hashtbl.find_opt index r with
    | Some c -> comp_of.(i) <- c
    | None ->
      Hashtbl.add index r !next;
      comp_of.(i) <- !next;
      incr next
  done;
  { shapes; comp_of; n_components = !next; n_contacts = !contacts }

let component t id = t.comp_of.(id)

let members t c =
  Array.to_list
    (Array.of_seq
       (Seq.filter
          (fun (s : Shape.t) -> t.comp_of.(s.Shape.id) = c)
          (Array.to_seq t.shapes)))
