(** Whole-layout connectivity extraction.

    One {!Geom.Sweepline} pass per metal layer finds every same-layer
    contact in O(n log n); a union-find closes connectivity across layers
    through vias (a via's single shape id occupies both M1 and M3, so its
    same-layer contacts merge the two layers' components).  The result
    partitions the flattened shape set into electrical components —
    the extracted nets. *)

type t = {
  shapes : Shape.t array;
  comp_of : int array;     (** shape id -> dense component index *)
  n_components : int;
  n_contacts : int;        (** same-layer contact pairs found *)
}

(** [extract shapes] runs the per-layer sweeps and the union-find. *)
val extract : Shape.t array -> t

(** [component t id] is the component of shape [id]. *)
val component : t -> int -> int

(** [members t c] lists the shapes of component [c] in id order. *)
val members : t -> int -> Shape.t list
