open Ccgrid
module D = Verify.Diagnostic
module LR = Verify.Lvs_rules

type stats = {
  shapes : int;
  contacts : int;
  components : int;
}

type result = {
  diagnostics : D.t list;
  stats : stats;
}

let cap_loc k = Printf.sprintf "C_%d" k

let add_once arr i v = if not (List.mem v arr.(i)) then arr.(i) <- v :: arr.(i)

let cell_name (c : Cell.t) = Printf.sprintf "(%d,%d)" c.Cell.row c.Cell.col

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let classify (ex : Extracted.t) (layout : Ccroute.Layout.t) =
  let nc = ex.Extracted.n_components in
  let ncaps = Array.length layout.Ccroute.Layout.nets in
  (* per-component tallies *)
  let comp_labels = Array.make nc [] in
  let comp_shapes = Array.make nc 0 in
  let comp_pads = Array.make nc 0 in
  let comp_top_pads = Array.make nc 0 in
  let comp_drivers = Array.make nc [] in
  (* per-capacitor views *)
  let cap_pads = Array.make ncaps [] in      (* (cell, component) *)
  let cap_driver = Array.make ncaps None in
  let cap_anchored = Array.make ncaps [] in  (* components holding a pad or
                                                the driver of the net *)
  Array.iter
    (fun (s : Shape.t) ->
       let c = ex.Extracted.comp_of.(s.Shape.id) in
       comp_shapes.(c) <- comp_shapes.(c) + 1;
       add_once comp_labels c s.Shape.label;
       (match s.Shape.kind, s.Shape.label with
        | Shape.Pad cell, Shape.Cap k ->
          comp_pads.(c) <- comp_pads.(c) + 1;
          cap_pads.(k) <- (cell, c) :: cap_pads.(k);
          add_once cap_anchored k c
        | Shape.Top_pad _, _ -> comp_top_pads.(c) <- comp_top_pads.(c) + 1
        | _ -> ());
       match s.Shape.label with
       | Shape.Cap k when s.Shape.driver ->
         if cap_driver.(k) = None then cap_driver.(k) <- Some c;
         add_once comp_drivers c k;
         add_once cap_anchored k c
       | Shape.Cap _ | Shape.Top -> ())
    ex.Extracted.shapes;
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  (* shorts: one extracted component claiming >= 2 nets *)
  let shorted = Array.make ncaps false in
  for c = 0 to nc - 1 do
    let labels = List.sort Shape.compare_label comp_labels.(c) in
    match labels with
    | first :: _ :: _ ->
      List.iter
        (function Shape.Cap k -> shorted.(k) <- true | Shape.Top -> ())
        labels;
      emit
        (D.makef ~loc:(Shape.label_name first) LR.r_short
           "extracted component of %d shapes joins nets %s" comp_shapes.(c)
           (String.concat ", " (List.map Shape.label_name labels)))
    | [ _ ] | [] -> ()
  done;
  (* opens: a net missing its driver terminal, or anchored shapes spread
     over >= 2 components.  Unanchored stray metal is the dangling
     warning below, not an open — it cannot carry the net's charge. *)
  let fractured = Array.make ncaps false in
  for k = 0 to ncaps - 1 do
    (match cap_driver.(k) with
     | None ->
       fractured.(k) <- true;
       emit
         (D.makef ~loc:(cap_loc k) LR.r_open
            "no driver terminal: no via of the net reaches the driver row \
             (y = 0)")
     | Some _ -> ());
    let anchored = List.length cap_anchored.(k) in
    if anchored >= 2 then begin
      fractured.(k) <- true;
      emit
        (D.makef ~loc:(cap_loc k) LR.r_open
           "net fractured into %d disconnected pieces (%d cell plates)"
           anchored
           (List.length cap_pads.(k)))
    end
  done;
  (* floating cells: pads not in their net's driver component *)
  let floating = Array.make ncaps false in
  for k = 0 to ncaps - 1 do
    match cap_driver.(k) with
    | None -> ()   (* the no-driver open already condemns every cell *)
    | Some dc ->
      let stray = List.filter (fun (_, c) -> c <> dc) cap_pads.(k) in
      if stray <> [] then begin
        floating.(k) <- true;
        let cells = List.sort Cell.compare (List.map fst stray) in
        emit
          (D.makef ~loc:(cap_loc k) LR.r_floating_cell
             "%d of %d unit cells unreachable from the driver: %s%s"
             (List.length stray)
             (List.length cap_pads.(k))
             (String.concat ", " (List.map cell_name (take 4 cells)))
             (if List.length stray > 4 then ", ..." else ""))
      end
  done;
  (* dangling: components anchored to nothing — dead metal *)
  for c = 0 to nc - 1 do
    if comp_pads.(c) = 0 && comp_top_pads.(c) = 0 && comp_drivers.(c) = []
    then begin
      let loc =
        match comp_labels.(c) with
        | [ l ] -> Some (Shape.label_name l)
        | _ -> None
      in
      emit
        (D.makef ?loc LR.r_dangling
           "dead metal: component of %d shapes touches no cell plate and no \
            driver terminal"
           comp_shapes.(c))
    end
  done;
  (* top plate: every top pad must share one component *)
  let top_comps = ref 0 in
  for c = 0 to nc - 1 do
    if comp_top_pads.(c) > 0 then incr top_comps
  done;
  if !top_comps >= 2 then
    emit
      (D.makef ~loc:"TOP" LR.r_top_open
         "top plate fractured into %d components" !top_comps);
  (* Netbuild cross-check, only for geometrically clean nets: the cells
     the drawn geometry connects to the driver must be exactly the cells
     the RC tree (and hence Elmore/f3dB) models *)
  for k = 0 to ncaps - 1 do
    if
      (not (shorted.(k) || fractured.(k) || floating.(k)))
      && cap_driver.(k) <> None
    then begin
      let extracted_cells =
        List.sort Cell.compare (List.map fst cap_pads.(k))
      in
      match Extract.Netbuild.build layout ~cap:k with
      | exception e ->
        emit
          (D.makef ~loc:(cap_loc k) LR.r_netbuild_mismatch
             "Netbuild failed on a geometrically clean net: %s"
             (Printexc.to_string e))
      | nb ->
        let tree_cells =
          List.sort Cell.compare
            (List.map fst nb.Extract.Netbuild.cell_nodes)
        in
        if not (List.equal Cell.equal extracted_cells tree_cells) then begin
          let diff a b =
            List.filter (fun c -> not (List.exists (Cell.equal c) b)) a
          in
          let drawn_only = diff extracted_cells tree_cells in
          let tree_only = diff tree_cells extracted_cells in
          emit
            (D.makef ~loc:(cap_loc k) LR.r_netbuild_mismatch
               "extracted driver component reaches %d cells but the RC tree \
                models %d (%d drawn-only, %d tree-only%s%s)"
               (List.length extracted_cells)
               (List.length tree_cells)
               (List.length drawn_only)
               (List.length tree_only)
               (match drawn_only with
                | c :: _ -> "; drawn-only " ^ cell_name c
                | [] -> "")
               (match tree_only with
                | c :: _ -> "; tree-only " ^ cell_name c
                | [] -> ""))
        end
    end
  done;
  D.sort !diags

let run layout =
  let shapes =
    Telemetry.Span.with_ ~name:"lvs.flatten" (fun () -> Shape.of_layout layout)
  in
  let ex =
    Telemetry.Span.with_ ~name:"lvs.extract" (fun () -> Extracted.extract shapes)
  in
  let diagnostics =
    Telemetry.Span.with_ ~name:"lvs.compare" (fun () -> classify ex layout)
  in
  if Telemetry.Metrics.enabled () then begin
    Telemetry.Metrics.set "lvs/shapes" (float_of_int (Array.length shapes));
    Telemetry.Metrics.set "lvs/contacts"
      (float_of_int ex.Extracted.n_contacts);
    Telemetry.Metrics.set "lvs/components"
      (float_of_int ex.Extracted.n_components);
    List.iter
      (fun (d : D.t) ->
         Telemetry.Metrics.incr ~label:d.D.rule.Verify.Rule.id
           "lvs/defects_total")
      diagnostics
  end;
  { diagnostics;
    stats =
      { shapes = Array.length shapes;
        contacts = ex.Extracted.n_contacts;
        components = ex.Extracted.n_components } }

let check layout = (run layout).diagnostics
