open Ccgrid

type kind =
  | Pad of Cell.t
  | Top_pad of Cell.t
  | Wire of Ccroute.Layout.wire_kind
  | Via

type label =
  | Cap of int
  | Top

type t = {
  id : int;
  kind : kind;
  label : label;
  layers : Tech.Layer.name list;
  x : Geom.Interval.t;
  y : Geom.Interval.t;
  driver : bool;
}

let label_name = function
  | Cap k -> Printf.sprintf "C_%d" k
  | Top -> "TOP"

let compare_label a b =
  match a, b with
  | Cap i, Cap j -> Int.compare i j
  | Cap _, Top -> -1
  | Top, Cap _ -> 1
  | Top, Top -> 0

let kind_name = function
  | Pad _ -> "pad"
  | Top_pad _ -> "top-pad"
  | Wire Ccroute.Layout.Branch -> "branch"
  | Wire Ccroute.Layout.Stub -> "stub"
  | Wire Ccroute.Layout.Trunk -> "trunk"
  | Wire Ccroute.Layout.Bridge -> "bridge"
  | Wire Ccroute.Layout.Top -> "top-wire"
  | Via -> "via"

let point x y = (Geom.Interval.make x x, Geom.Interval.make y y)

(* A via at the driver row (y = 0) is the net's input terminal. *)
let driver_eps = 1e-9

let of_layout (l : Ccroute.Layout.t) =
  let shapes = ref [] in
  let n = ref 0 in
  let emit kind label layers x y driver =
    shapes := { id = !n; kind; label; layers; x; y; driver } :: !shapes;
    incr n
  in
  let p = l.Ccroute.Layout.placement in
  let col_x = l.Ccroute.Layout.col_x and row_y = l.Ccroute.Layout.row_y in
  (* cell plates: bottom pads carry the owning capacitor's net on M1;
     top pads (every cell, dummies included — the physical top plate is
     part of the unit capacitor) carry the shared TOP net on M2 *)
  for row = 0 to p.Placement.rows - 1 do
    for col = 0 to p.Placement.cols - 1 do
      let cell = Cell.make ~row ~col in
      let x, y = point col_x.(col) row_y.(row) in
      (match Placement.cap_at p cell with
       | Some k -> emit (Pad cell) (Cap k) [ Tech.Layer.M1 ] x y false
       | None -> ());
      emit (Top_pad cell) Top [ Tech.Layer.M2 ] x y false
    done
  done;
  let wire (w : Ccroute.Layout.wire) =
    let label = if w.Ccroute.Layout.w_cap < 0 then Top else Cap w.Ccroute.Layout.w_cap in
    emit (Wire w.Ccroute.Layout.w_kind) label [ w.Ccroute.Layout.w_layer ]
      (Geom.Interval.make w.Ccroute.Layout.w_ax w.Ccroute.Layout.w_bx)
      (Geom.Interval.make w.Ccroute.Layout.w_ay w.Ccroute.Layout.w_by)
      false
  in
  List.iter wire l.Ccroute.Layout.wires;
  List.iter wire l.Ccroute.Layout.top_wires;
  List.iter
    (fun (v : Ccroute.Layout.via) ->
       let x, y = point v.Ccroute.Layout.v_x v.Ccroute.Layout.v_y in
       emit Via (Cap v.Ccroute.Layout.v_cap)
         [ Tech.Layer.M1; Tech.Layer.M3 ] x y
         (v.Ccroute.Layout.v_y <= driver_eps))
    l.Ccroute.Layout.vias;
  let arr = Array.make !n (List.hd !shapes) in
  List.iter (fun s -> arr.(s.id) <- s) !shapes;
  arr

let pp ppf s =
  Format.fprintf ppf "%s %s on %s at %a x %a" (label_name s.label)
    (kind_name s.kind)
    (String.concat "+"
       (List.map (Format.asprintf "%a" Tech.Layer.pp_name) s.layers))
    Geom.Interval.pp s.x Geom.Interval.pp s.y
