(** Electrical metrics of the routed array — the quantities of Table I.

    Per capacitor: physical via-cut count, routed wirelength (physical
    metal: a p-wire bundle counts p times its centreline length), total via
    resistance [R_V] (sum of effective junction resistances, each
    [R_via / p^2]), total wire resistance, wire capacitance to ground, and
    the worst-case Elmore delay of the charging network.

    Array totals: [sum C^TS] (top-plate-to-substrate of the top-plate
    routing), [sum C^wire], [sum C^BB] (coupling between adjacent trunk
    tracks sharing a channel), [sum N_V], [sum L], plus the critical bit —
    the capacitor whose Elmore delay limits the 3 dB frequency. *)

type bit_metrics = {
  bm_cap : int;
  bm_via_cuts : int;          (** physical via cuts ([p^2] per junction) *)
  bm_bends : int;             (** orthogonal same-net junctions: stub-trunk
                                  attaches + bridge landings *)
  bm_wirelength : float;      (** um of physical metal *)
  bm_via_resistance : float;  (** ohm, sum of junction resistances *)
  bm_wire_resistance : float; (** ohm, sum over wires of r l / p *)
  bm_wire_cap : float;        (** fF to ground *)
  bm_elmore_fs : float;       (** worst-case Elmore delay, femtoseconds *)
}

type t = {
  per_bit : bit_metrics array;   (** indexed by capacitor id, 0..N *)
  total_top_cap : float;         (** sum C^TS, fF *)
  total_wire_cap : float;        (** sum C^wire, fF *)
  total_coupling_cap : float;    (** sum C^BB, fF *)
  total_via_cuts : int;          (** sum N_V *)
  total_bends : int;             (** sum of per-net bends *)
  total_wirelength : float;      (** sum L, um *)
  critical_bit : int;
  critical_elmore_fs : float;
  area : float;                  (** routed-array area, um^2 *)
}

(** [extract layout] computes every metric.  Cost is dominated by the
    per-bit Elmore analyses. *)
val extract : Ccroute.Layout.t -> t

(** [total_resistance m] of a bit: [R_V + R_wire], ohm. *)
val total_resistance : bit_metrics -> float
