open Ccgrid
open Ccroute

type part_kind =
  | Via
  | Wire
  | Plate

type part = {
  pt_kind : part_kind;
  pt_layer : string;
  pt_r_ohm : float;
}

type edge_info = {
  ei_label : string;
  ei_parts : part list;
}

type t = {
  tree : Rcnet.Rctree.t;
  root : Rcnet.Rctree.node;
  cell_nodes : (Cell.t * Rcnet.Rctree.node) list;
  edge_infos : edge_info array;
}

let part_kind_name = function
  | Via -> "via"
  | Wire -> "wire"
  | Plate -> "plate"

(* Union-find over tree nodes: the physical net is a mesh (a group strapped
   to its trunk at several cells plus its internal abutment connections has
   loops); we keep the first-added, lowest-resistance-first spanning tree
   and drop redundant edges.  Elmore on the spanning tree is a conservative
   estimate of the meshed net. *)
module Uf = struct
  let create n = Array.init n (fun i -> i)

  let rec find t i = if t.(i) = i then i else begin
    t.(i) <- find t t.(i);
    t.(i)
  end

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra = rb then false
    else begin
      t.(ra) <- rb;
      true
    end
end

let build (layout : Layout.t) ~cap =
  let tech = layout.Layout.tech in
  let net = Layout.net layout cap in
  if net.Layout.cn_trunks = [] then
    (* an unrouted capacitor is an open, not a programming error: report
       it through the verification gate so callers (ccgen run, the flow's
       lvs stage) print a diagnostic instead of a backtrace *)
    raise
      (Verify.Engine.Rejected
         { what = Printf.sprintf "RC extraction of C_%d" cap;
           diagnostics =
             [ Verify.Diagnostic.makef
                 ~loc:(Printf.sprintf "C_%d" cap)
                 Verify.Lvs_rules.r_open
                 "capacitor has no routed net: no trunk reaches the driver \
                  row, so no RC tree can be built" ] });
  let p = layout.Layout.p_of_cap.(cap) in
  let m1 = Tech.Process.layer tech Tech.Layer.M1 in
  let m3 = Tech.Process.layer tech Tech.Layer.M3 in
  let rvia = Tech.Parallel.via_resistance tech ~p in
  let via_part = { pt_kind = Via; pt_layer = "via"; pt_r_ohm = rvia } in
  let tree = Rcnet.Rctree.create () in
  let node label c = Rcnet.Rctree.add_node tree ~label ~cap:c () in
  let root = node "driver" 0. in
  (* --- unit-capacitor cell nodes --- *)
  let cell_tbl = Hashtbl.create 64 in
  let cell_node (c : Cell.t) =
    match Hashtbl.find_opt cell_tbl c with
    | Some n -> n
    | None ->
      let n =
        node
          (Printf.sprintf "cell(%d,%d)" c.Cell.row c.Cell.col)
          tech.Tech.Process.unit_cap
      in
      Hashtbl.add cell_tbl c n;
      n
  in
  (* --- trunks: a chain of nodes at event heights --- *)
  let trunk_nodes = Hashtbl.create 16 in
  let trunk_edges = ref [] and stub_edges = ref [] in
  let build_trunk (tk : Layout.trunk) =
    let events =
      let attach_ys = List.map (fun a -> a.Layout.ap_y) tk.Layout.tk_attaches in
      List.sort_uniq Float.compare (tk.Layout.tk_y_low :: attach_ys)
    in
    let mk y =
      let n =
        node (Printf.sprintf "trunk(ch%d,y%.2f)" tk.Layout.tk_channel y) 0.
      in
      Hashtbl.replace trunk_nodes (tk.Layout.tk_channel, y) n;
      n
    in
    let rec chain prev_y prev_node = function
      | [] -> ()
      | y :: rest ->
        let n = mk y in
        let len = y -. prev_y in
        let r = Tech.Parallel.wire_resistance m3 ~length:len ~p in
        trunk_edges :=
          ( prev_node, n, r,
            Tech.Parallel.wire_capacitance m3 ~length:len ~p,
            { ei_label =
                Printf.sprintf "trunk M3 ch%d y%.2f->%.2f" tk.Layout.tk_channel
                  prev_y y;
              ei_parts = [ { pt_kind = Wire; pt_layer = "M3"; pt_r_ohm = r } ] } )
          :: !trunk_edges;
        chain y n rest
    in
    (match events with
     | [] -> ()
     | y0 :: rest ->
       let n0 = mk y0 in
       chain y0 n0 rest);
    (* attach straps: via + stub wire to each strapped cell *)
    List.iter
      (fun (a : Layout.attach_point) ->
         let trunk_node =
           Hashtbl.find trunk_nodes (tk.Layout.tk_channel, a.Layout.ap_y)
         in
         let stub_len =
           Float.abs
             (layout.Layout.col_x.(a.Layout.ap_cell.Cell.col) -. a.Layout.ap_x)
         in
         let r_wire = Tech.Parallel.wire_resistance m1 ~length:stub_len ~p in
         let r = rvia +. r_wire in
         let c = Tech.Parallel.wire_capacitance m1 ~length:stub_len ~p in
         let info =
           { ei_label =
               Printf.sprintf "strap ch%d->cell(%d,%d)" tk.Layout.tk_channel
                 a.Layout.ap_cell.Cell.row a.Layout.ap_cell.Cell.col;
             ei_parts =
               [ via_part;
                 { pt_kind = Wire; pt_layer = "M1"; pt_r_ohm = r_wire } ] }
         in
         stub_edges :=
           (trunk_node, cell_node a.Layout.ap_cell, r, c, info) :: !stub_edges)
      tk.Layout.tk_attaches
  in
  List.iter build_trunk net.Layout.cn_trunks;
  (* --- driver input via to the primary trunk's bottom node --- *)
  let primary =
    match List.find_opt (fun tk -> tk.Layout.tk_primary) net.Layout.cn_trunks with
    | Some tk -> tk
    | None -> invalid_arg "Netbuild.build: net has no primary trunk"
  in
  let trunk_bottom (tk : Layout.trunk) =
    Hashtbl.find trunk_nodes (tk.Layout.tk_channel, tk.Layout.tk_y_low)
  in
  let driver_edges =
    ref
      [ ( root, trunk_bottom primary, rvia, 0.,
          { ei_label =
              Printf.sprintf "driver via->trunk ch%d" primary.Layout.tk_channel;
            ei_parts = [ via_part ] } ) ]
  in
  (* --- bridge: chain along x, a via to each trunk --- *)
  (match net.Layout.cn_bridge_y with
   | None -> ()
   | Some _bridge_y ->
     let sorted =
       List.sort
         (fun a b -> Float.compare a.Layout.tk_x b.Layout.tk_x)
         net.Layout.cn_trunks
     in
     (* a bridge node per tap; each trunk (the primary included) lands on
        the bridge through one junction via *)
     let bridge_nodes =
       List.map
         (fun (tk : Layout.trunk) ->
            let n = node (Printf.sprintf "bridge(x%.2f)" tk.Layout.tk_x) 0. in
            driver_edges :=
              ( n, trunk_bottom tk, rvia, 0.,
                { ei_label =
                    Printf.sprintf "bridge via->trunk ch%d" tk.Layout.tk_channel;
                  ei_parts = [ via_part ] } )
              :: !driver_edges;
            (n, tk.Layout.tk_x))
         sorted
     in
     let rec chain = function
       | (na, xa) :: ((nb, xb) :: _ as rest) ->
         let len = Float.abs (xb -. xa) in
         let r = Tech.Parallel.wire_resistance m1 ~length:len ~p in
         driver_edges :=
           ( na, nb, r,
             Tech.Parallel.wire_capacitance m1 ~length:len ~p,
             { ei_label = Printf.sprintf "bridge M1 x%.2f->%.2f" xa xb;
               ei_parts = [ { pt_kind = Wire; pt_layer = "M1"; pt_r_ohm = r } ] } )
           :: !driver_edges;
         chain rest
       | [ _ ] | [] -> ()
     in
     chain bridge_nodes);
  (* --- branch (abutment) connections inside each group: resistance of the
     merged fingers, no routing capacitance --- *)
  let branch_edges = ref [] in
  List.iter
    (fun (g : Group.t) ->
       List.iter
         (fun ((a : Cell.t), (b : Cell.t)) ->
            let pa = Layout.cell_center layout a
            and pb = Layout.cell_center layout b in
            let len = Geom.Point.manhattan pa pb in
            let r = tech.Tech.Process.plate_resistance *. len in
            let info =
              { ei_label =
                  Printf.sprintf "plate (%d,%d)<->(%d,%d)" a.Cell.row a.Cell.col
                    b.Cell.row b.Cell.col;
                ei_parts =
                  [ { pt_kind = Plate; pt_layer = "plate"; pt_r_ohm = r } ] }
            in
            branch_edges := (cell_node a, cell_node b, r, 0., info) :: !branch_edges)
         g.Group.tree_edges)
    net.Layout.cn_groups;
  (* assemble: trunk chain and driver/bridge edges are acyclic by
     construction; straps connect the trunk to group cells; abutment edges
     fill in whatever the straps did not already connect *)
  let ordered =
    List.rev !driver_edges @ List.rev !trunk_edges @ List.rev !stub_edges
    @ List.rev !branch_edges
  in
  let uf = Uf.create (Rcnet.Rctree.num_nodes tree) in
  let accepted = ref [] in
  List.iter
    (fun (a, b, r, c, info) ->
       if Uf.union uf (a : Rcnet.Rctree.node :> int) (b : Rcnet.Rctree.node :> int)
       then begin
         Rcnet.Rctree.wire_edge tree a b ~r ~c;
         accepted := info :: !accepted
       end)
    ordered;
  let cell_nodes = Hashtbl.fold (fun c n acc -> (c, n) :: acc) cell_tbl [] in
  { tree; root; cell_nodes;
    edge_infos = Array.of_list (List.rev !accepted) }

let worst_elmore_fs t =
  Rcnet.Elmore.max_delay t.tree ~root:t.root ~over:(List.map snd t.cell_nodes)

(* --- per-element attribution (ccgen explain) --- *)

type contribution = {
  nb_label : string;
  nb_kind : part_kind;
  nb_layer : string;
  nb_r_ohm : float;
  nb_c_down_ff : float;
  nb_delay_fs : float;
}

let attribution t =
  let delays = Rcnet.Elmore.delays t.tree ~root:t.root in
  let worst_cell, worst_node =
    match t.cell_nodes with
    | [] -> invalid_arg "Netbuild.attribution: net has no cells"
    | first :: rest ->
      List.fold_left
        (fun ((_, bn) as best) ((_, n) as cand) ->
           if delays.((n : Rcnet.Rctree.node :> int))
              > delays.((bn : Rcnet.Rctree.node :> int))
           then cand
           else best)
        first rest
  in
  let path = Rcnet.Elmore.breakdown t.tree ~root:t.root worst_node in
  let contributions =
    List.concat_map
      (fun (e : Rcnet.Elmore.contribution) ->
         let info = t.edge_infos.(e.Rcnet.Elmore.edge) in
         List.map
           (fun pt ->
              { nb_label = info.ei_label;
                nb_kind = pt.pt_kind;
                nb_layer = pt.pt_layer;
                nb_r_ohm = pt.pt_r_ohm;
                nb_c_down_ff = e.Rcnet.Elmore.c_downstream;
                nb_delay_fs = pt.pt_r_ohm *. e.Rcnet.Elmore.c_downstream })
           info.ei_parts)
      path
  in
  (* report the sum of the parts as the total so the decomposition is
     exact by construction; it agrees with Elmore.delay_to up to float
     association *)
  let total =
    List.fold_left (fun acc c -> acc +. c.nb_delay_fs) 0. contributions
  in
  (worst_cell, total, contributions)
