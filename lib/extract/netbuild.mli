(** Build the RC tree of one capacitor's bottom-plate charging network
    from a routed layout (Sec. III-B).

    The tree is rooted at the driver: input via, primary trunk, bridge
    segments to secondary trunks, attach vias and stubs, then the branch
    wires of each connected group with one unit capacitor [C_u] of load at
    every cell.  Parallel-wire bundles are collapsed into equivalent
    edges (R/p wires, R/p^2 vias, C*p).

    Every accepted tree edge carries {e provenance}: the physical parts
    (via stacks, wire segments, plate abutments) whose resistances sum to
    the edge resistance.  {!attribution} combines that provenance with
    {!Rcnet.Elmore.breakdown} into the per-element worst-bit delay
    breakdown surfaced by [ccgen explain]. *)

open Ccgrid

(** What a resistive part of an edge physically is. *)
type part_kind =
  | Via    (** a via stack (p^2 parallel cuts for a p-wide bundle) *)
  | Wire   (** routed metal on a named layer *)
  | Plate  (** abutting-finger (device-layer) conduction inside a group *)

type part = {
  pt_kind : part_kind;
  pt_layer : string;   (** ["M1"], ["M3"], ["via"], ["plate"] *)
  pt_r_ohm : float;
}

(** Provenance of one tree edge, in {!Rcnet.Rctree.edges} insertion
    order.  The parts' resistances sum exactly to the edge resistance. *)
type edge_info = {
  ei_label : string;       (** e.g. ["trunk ch2 y1.20->3.60"] *)
  ei_parts : part list;
}

type t = {
  tree : Rcnet.Rctree.t;
  root : Rcnet.Rctree.node;          (** driver *)
  cell_nodes : (Cell.t * Rcnet.Rctree.node) list;
  edge_infos : edge_info array;      (** indexed like {!Rcnet.Rctree.edges} *)
}

(** [build layout ~cap].  Raises [Invalid_argument] for a capacitor with
    no routed net. *)
val build : Ccroute.Layout.t -> cap:int -> t

(** [worst_elmore_fs net] is the maximum Elmore delay from the driver to
    any unit-capacitor cell, femtoseconds. *)
val worst_elmore_fs : t -> float

val part_kind_name : part_kind -> string

(** One physical element's share of the worst-cell Elmore delay. *)
type contribution = {
  nb_label : string;
  nb_kind : part_kind;
  nb_layer : string;
  nb_r_ohm : float;
  nb_c_down_ff : float;     (** capacitance charged through the element *)
  nb_delay_fs : float;      (** [r * c_down] *)
}

(** [attribution net] is [(worst_cell, delay_fs, contributions)]: the
    unit-capacitor cell with the largest Elmore delay, that delay, and
    the per-element decomposition whose [nb_delay_fs] sum to it exactly
    (up to float association).  Contributions are in root-first path
    order; an edge with several parts (e.g. an attach via plus its M1
    stub) yields one contribution per part, splitting the edge delay
    proportionally to part resistance. *)
val attribution : t -> Cell.t * float * contribution list
