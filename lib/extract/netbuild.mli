(** Build the RC tree of one capacitor's bottom-plate charging network
    from a routed layout (Sec. III-B).

    The tree is rooted at the driver: input via, primary trunk, bridge
    segments to secondary trunks, attach vias and stubs, then the branch
    wires of each connected group with one unit capacitor [C_u] of load at
    every cell.  Parallel-wire bundles are collapsed into equivalent
    edges (R/p wires, R/p^2 vias, C*p). *)

open Ccgrid

type t = {
  tree : Rcnet.Rctree.t;
  root : Rcnet.Rctree.node;          (** driver *)
  cell_nodes : (Cell.t * Rcnet.Rctree.node) list;
}

(** [build layout ~cap].  Raises [Invalid_argument] for a capacitor with
    no routed net. *)
val build : Ccroute.Layout.t -> cap:int -> t

(** [worst_elmore_fs net] is the maximum Elmore delay from the driver to
    any unit-capacitor cell, femtoseconds. *)
val worst_elmore_fs : t -> float
