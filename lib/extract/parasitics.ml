open Ccroute

type bit_metrics = {
  bm_cap : int;
  bm_via_cuts : int;
  bm_bends : int;
  bm_wirelength : float;
  bm_via_resistance : float;
  bm_wire_resistance : float;
  bm_wire_cap : float;
  bm_elmore_fs : float;
}

type t = {
  per_bit : bit_metrics array;
  total_top_cap : float;
  total_wire_cap : float;
  total_coupling_cap : float;
  total_via_cuts : int;
  total_bends : int;
  total_wirelength : float;
  critical_bit : int;
  critical_elmore_fs : float;
  area : float;
}

let total_resistance m = m.bm_via_resistance +. m.bm_wire_resistance

let layer_of layout name = Tech.Process.layer layout.Layout.tech name

let bit_metrics layout cap =
  let tech = layout.Layout.tech in
  (* Branch wires are abutting MOM fingers (device layers), not routing
     metal: they are excluded from the wirelength, capacitance and
     resistance accounting, matching the paper's S metrics (Sec. V). *)
  let wires =
    List.filter
      (fun w -> w.Layout.w_cap = cap && w.Layout.w_kind <> Layout.Branch)
      layout.Layout.wires
  in
  let vias = List.filter (fun v -> v.Layout.v_cap = cap) layout.Layout.vias in
  let via_cuts =
    List.fold_left (fun acc v -> acc + Tech.Parallel.via_count ~p:v.Layout.v_p) 0 vias
  in
  let via_resistance =
    List.fold_left
      (fun acc v -> acc +. Tech.Parallel.via_resistance tech ~p:v.Layout.v_p)
      0. vias
  in
  let wirelength =
    List.fold_left (fun acc w -> acc +. Layout.wire_length w) 0. wires
  in
  let wire_resistance, wire_cap =
    List.fold_left
      (fun (r, c) w ->
         let layer = layer_of layout w.Layout.w_layer in
         let len = Layout.wire_length w in
         ( r +. Tech.Parallel.wire_resistance layer ~length:len ~p:w.Layout.w_p,
           c +. Tech.Parallel.wire_capacitance layer ~length:len ~p:w.Layout.w_p ))
      (0., 0.) wires
  in
  (* bends: orthogonal same-net junctions — each stub landing on its
     trunk, plus each trunk landing on the bridge.  The driver via is a
     layer change at the array edge, not a direction change. *)
  let bends =
    let net = layout.Layout.nets.(cap) in
    List.fold_left
      (fun acc (tk : Layout.trunk) -> acc + List.length tk.Layout.tk_attaches)
      0 net.Layout.cn_trunks
    + (match net.Layout.cn_bridge_y with
       | Some _ -> List.length net.Layout.cn_trunks
       | None -> 0)
  in
  let net = Netbuild.build layout ~cap in
  if Telemetry.Metrics.enabled () then begin
    let label = Printf.sprintf "C%d" cap in
    Telemetry.Metrics.incr "extract/nets_total";
    Telemetry.Metrics.set ~label "extract/via_cuts" (float_of_int via_cuts);
    Telemetry.Metrics.set ~label "extract/bends" (float_of_int bends);
    Telemetry.Metrics.set ~label "extract/wirelength_um" wirelength
  end;
  { bm_cap = cap;
    bm_via_cuts = via_cuts;
    bm_bends = bends;
    bm_wirelength = wirelength;
    bm_via_resistance = via_resistance;
    bm_wire_resistance = wire_resistance;
    bm_wire_cap = wire_cap;
    bm_elmore_fs = Netbuild.worst_elmore_fs net }

(* sum C^BB: coupling between adjacent trunk tracks in the same channel,
   proportional to the overlap of their vertical extents (Sec. II-B). *)
let coupling_cap layout =
  let m3 = layer_of layout Tech.Layer.M3 in
  let trunks_by_slot = Hashtbl.create 32 in
  Array.iter
    (fun (net : Layout.capnet) ->
       List.iter
         (fun (tk : Layout.trunk) ->
            Hashtbl.replace trunks_by_slot
              (tk.Layout.tk_channel, tk.Layout.tk_track) tk)
         net.Layout.cn_trunks)
    layout.Layout.nets;
  let total = ref 0. in
  Array.iteri
    (fun channel tracks ->
       let n = Array.length tracks in
       for t = 0 to n - 2 do
         match
           ( Hashtbl.find_opt trunks_by_slot (channel, t),
             Hashtbl.find_opt trunks_by_slot (channel, t + 1) )
         with
         | Some a, Some b when a.Layout.tk_cap <> b.Layout.tk_cap ->
           let ia = Geom.Interval.make a.Layout.tk_y_low a.Layout.tk_y_high in
           let ib = Geom.Interval.make b.Layout.tk_y_low b.Layout.tk_y_high in
           let overlap = Geom.Interval.overlap_length ia ib in
           total := !total +. (m3.Tech.Layer.coupling *. overlap)
         | Some _, Some _ | Some _, None | None, Some _ | None, None -> ()
       done)
    layout.Layout.plan.Plan.track_caps;
  !total

let extract layout =
  let bits = layout.Layout.placement.Ccgrid.Placement.bits in
  (* Per-capacitor extraction is independent net by net, so it fans out
     over the ambient Par.Pool jobs (Par.Jobs.resolve None — serial
     unless --jobs/CCDAC_JOBS says otherwise).  Results land in per-index
     slots, so the per_bit array and every fold over it are bitwise
     identical at any worker count.  A task failure is unwrapped back to
     the original exception (not Task_failed) so the serial contract —
     e.g. Verify.Engine.Rejected reaching flow callers — is preserved. *)
  let per_bit =
    Array.of_list
      (List.map
         (function
           | Ok m -> m
           | Error (e : Par.Pool.task_error) -> raise e.Par.Pool.exn)
         (Par.Pool.map_list
            (fun cap ->
               Telemetry.Span.with_ ~name:"extract.bit"
                 ~attrs:[ ("cap", Telemetry.Span.Int cap) ]
                 (fun () -> bit_metrics layout cap))
            (List.init (bits + 1) Fun.id)))
  in
  let total_wire_cap =
    Array.fold_left (fun acc m -> acc +. m.bm_wire_cap) 0. per_bit
  in
  let total_via_cuts =
    Array.fold_left (fun acc m -> acc + m.bm_via_cuts) 0 per_bit
  in
  let total_bends =
    Array.fold_left (fun acc m -> acc + m.bm_bends) 0 per_bit
  in
  let total_wirelength =
    Array.fold_left (fun acc m -> acc +. m.bm_wirelength) 0. per_bit
  in
  let critical_bit, critical_elmore_fs =
    Array.fold_left
      (fun (kb, best) m ->
         if m.bm_elmore_fs > best then (m.bm_cap, m.bm_elmore_fs) else (kb, best))
      (0, Float.neg_infinity) per_bit
  in
  { per_bit;
    total_top_cap =
      layout.Layout.top_length *. layout.Layout.tech.Tech.Process.top_substrate_cap;
    total_wire_cap;
    total_coupling_cap = coupling_cap layout;
    total_via_cuts;
    total_bends;
    total_wirelength;
    critical_bit;
    critical_elmore_fs;
    area = layout.Layout.width *. layout.Layout.height }
