let prim ~nodes ~edges =
  if nodes <= 0 then invalid_arg "Mst.prim: no nodes";
  Array.iter
    (fun (a, b, w) ->
       if a < 0 || a >= nodes || b < 0 || b >= nodes then
         invalid_arg "Mst.prim: endpoint out of range";
       if w < 0. then invalid_arg "Mst.prim: negative weight")
    edges;
  let adj = Array.make nodes [] in
  Array.iteri
    (fun i (a, b, w) ->
       adj.(a) <- (b, w, i) :: adj.(a);
       adj.(b) <- (a, w, i) :: adj.(b))
    edges;
  let in_tree = Array.make nodes false in
  let best_w = Array.make nodes Float.infinity in
  let best_edge = Array.make nodes (-1) in
  let chosen = ref [] in
  best_w.(0) <- 0.;
  for _ = 1 to nodes do
    (* extract the cheapest fringe node *)
    let u = ref (-1) in
    for v = 0 to nodes - 1 do
      if (not in_tree.(v))
         && (!u = -1 || best_w.(v) < best_w.(!u))
      then u := v
    done;
    let u = !u in
    if Float.is_finite best_w.(u) then begin
      in_tree.(u) <- true;
      if best_edge.(u) >= 0 then chosen := best_edge.(u) :: !chosen;
      List.iter
        (fun (v, w, i) ->
           if (not in_tree.(v)) && w < best_w.(v) then begin
             best_w.(v) <- w;
             best_edge.(v) <- i
           end)
        adj.(u)
    end
  done;
  if List.length !chosen <> nodes - 1 then begin
    (* count the components and name one orphan so the failure is
       actionable when it surfaces through LVS triage *)
    let parent = Array.init nodes Fun.id in
    let rec find i =
      if parent.(i) = i then i
      else begin
        parent.(i) <- find parent.(i);
        parent.(i)
      end
    in
    Array.iter
      (fun (a, b, _) ->
         let ra = find a and rb = find b in
         if ra <> rb then parent.(ra) <- rb)
      edges;
    let components = ref 0 in
    for v = 0 to nodes - 1 do
      if find v = v then incr components
    done;
    let orphan = ref (-1) in
    for v = nodes - 1 downto 0 do
      if not in_tree.(v) then orphan := v
    done;
    invalid_arg
      (Printf.sprintf
         "Mst.prim: graph is disconnected (%d components; node %d \
          unreachable from node 0)"
         !components !orphan)
  end;
  List.rev !chosen

let cost ~edges tree =
  List.fold_left
    (fun acc i ->
       let _, _, w = edges.(i) in
       acc +. w)
    0. tree

let grid_mst_cost ~rows ~cols ~dx ~dy =
  if Array.length dx <> cols - 1 && cols > 1 then
    invalid_arg "Mst.grid_mst_cost: dx length must be cols - 1";
  let node r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if r + 1 < rows then edges := (node r c, node (r + 1) c, dy) :: !edges;
      if c + 1 < cols then edges := (node r c, node r (c + 1), dx.(c)) :: !edges
    done
  done;
  let edges = Array.of_list !edges in
  cost ~edges (prim ~nodes:(rows * cols) ~edges)
