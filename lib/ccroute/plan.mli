(** Bottom-plate routing plan: channel selection and track assignment —
    Steps 1 and 2 of Algorithm 1.

    Channels are the vertical routing corridors between array columns.
    Channel [ch] (0 <= ch <= cols) lies immediately to the {e left} of
    column [ch]; channel [cols] is the right edge.  A channel is adjacent
    to columns [ch - 1] and [ch].

    Channel selection maximises track sharing: capacitor groups of the
    same capacitor whose column spans intersect are steered to one shared
    channel, connecting through the closest cell pair, with ties broken
    toward the bottom of the array (where the drivers sit).  Track
    assignment then gives each capacitor one track per channel it uses. *)

open Ccgrid

type route = {
  group : Group.t;
  channel : int;       (** channel carrying this group's trunk connection *)
  track : int;         (** track index within the channel, 0 = leftmost *)
  attach : Cell.t;     (** cell connected to the trunk by a branch stub *)
}

type t = {
  routes : route list;              (** one entry per group *)
  tracks_per_channel : int array;   (** length [cols + 1] *)
  track_caps : int array array;     (** per channel, the capacitor id on
                                        each track, in track order *)
}

(** [make placement groups] runs Steps 1–2.  Every group is guaranteed a
    route (Sec. IV-B3: "each capacitor group is guaranteed to complete
    routing"). *)
val make : Placement.t -> Group.t list -> t

(** [routes_of_cap t k] filters routes of capacitor [k]. *)
val routes_of_cap : t -> int -> route list

(** [total_tracks t] over all channels. *)
val total_tracks : t -> int
