(** Connected unit-capacitor group formation (Sec. IV-B2).

    The cells of each capacitor are the nodes of a graph with edges between
    4-adjacent cells; its connected components are the {e connected
    capacitor groups}.  Within a group, bottom plates are connected along a
    BFS tree with branch wires; a cell whose incident tree edges span both
    axes is a {e bend} and costs a via in reserved-direction routing. *)

open Ccgrid

type t = {
  cap : int;                          (** capacitor id *)
  id : int;                           (** unique over the placement *)
  cells : Cell.t list;                (** sorted row-major *)
  tree_edges : (Cell.t * Cell.t) list;(** BFS tree, (parent, child) *)
  col_lo : int;
  col_hi : int;
  row_lo : int;
  row_hi : int;
}

type mode =
  | Connected      (** one group per connected component (BFS) *)
  | Straight_runs  (** connected components split into maximal straight
                       row/column runs — each run can be strapped to a
                       trunk along its own channel, the structure visible
                       in the paper's Fig. 3(a) where one capacitor shows
                       several shades.  A component is split along the
                       orientation that yields fewer runs. *)

(** [of_placement ?mode p] builds the groups of every capacitor (dummies
    have no group).  [mode] defaults to [Connected] — the BFS connected
    components of Sec. IV-B2; [Straight_runs] is kept as an ablation.  Deterministic:
    BFS starts at the row-major-smallest cell and visits neighbours in a
    fixed order.  Group ids are dense from 0, ordered by (cap, seed). *)
val of_placement : ?mode:mode -> Placement.t -> t list

(** [of_cap groups k] filters the groups of capacitor [k], preserving
    order. *)
val of_cap : t list -> int -> t list

(** [size g] is the number of cells. *)
val size : t -> int

(** [bend_cells g] are the cells whose incident tree edges include both a
    horizontal and a vertical edge — each costs one (logical) via. *)
val bend_cells : t -> Cell.t list

(** [col_span_overlap a b] per Algorithm 1 line 14: true when the column
    spans intersect, i.e. the groups can share a vertical channel. *)
val col_span_overlap : t -> t -> bool

(** [closest_cells a b] is the pair [(u_a, u_b)] minimising the Manhattan
    cell distance; ties prefer the pair closest to the bottom of the array,
    then row-major order (Algorithm 1 lines 15–16). *)
val closest_cells : t -> t -> Cell.t * Cell.t

val pp : Format.formatter -> t -> unit
