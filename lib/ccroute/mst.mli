(** Minimum spanning trees on small weighted graphs.

    Top-plate routing (Sec. IV-B5) builds a graph over all unit capacitors
    with edges to 4-neighbours weighted by wire spacing and connects them
    with an MST to minimise the parasitic [C^TS].  The paper observes that
    when vertical spacing is below the channel-widened horizontal spacing,
    the MST degenerates to "column runs plus one cross connection" —
    {!Layout} uses that closed form, and this module provides the generic
    Prim construction used to {e prove} (in tests) that the closed form is
    in fact minimal. *)

(** [prim ~nodes ~edges] returns the MST edges as indices into [edges].
    [edges] are [(a, b, weight)] with [0 <= a, b < nodes].
    Raises [Invalid_argument] when the graph is disconnected or an
    endpoint is out of range. *)
val prim : nodes:int -> edges:(int * int * float) array -> int list

(** [cost ~edges tree] sums the weights of the chosen edges. *)
val cost : edges:(int * int * float) array -> int list -> float

(** [grid_mst_cost ~rows ~cols ~dx ~dy] is the MST cost of a full
    [rows x cols] grid whose horizontal edges weigh [dx.(c)] (between
    columns [c] and [c+1]) and vertical edges weigh [dy]. *)
val grid_mst_cost : rows:int -> cols:int -> dx:float array -> dy:float -> float
