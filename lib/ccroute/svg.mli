(** SVG rendering of a routed layout — the repo's counterpart of the
    paper's Fig. 5 plotted views.

    Unit cells are drawn as labelled squares coloured per capacitor,
    bottom-plate routing as layer-coloured strokes (trunks and bridges
    thicker when bundled), vias as dots, and the top plate as a thin
    overlay.  The output is self-contained SVG 1.1 with no external
    dependencies. *)

(** [render ?scale ?show_top layout] is the SVG document text.
    [scale] is pixels per micrometre (default 24); [show_top] includes
    the top-plate routing overlay (default true). *)
val render : ?scale:float -> ?show_top:bool -> Layout.t -> string

(** [write ?scale ?show_top layout ~path] renders into a file. *)
val write : ?scale:float -> ?show_top:bool -> Layout.t -> path:string -> unit
