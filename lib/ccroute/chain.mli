(** Daisy-chain routing model — the serial net structure implied by the
    paper's prior-work numbers.

    The paper's Table I lists a total via resistance for the chessboard's
    critical bit of ~one via {e per unit cell} with f3dB values that only a
    serial charging path explains (R_total x C_total time constants).
    Bulk-era capacitor routers chained same-net cells with a
    layer-changing hop per cell; the paper's trunk/track router (our
    {!Plan}/{!Layout}) removes exactly that structure.  This module models
    the chained alternative so the ablation can recover the paper's
    full-magnitude gaps (see EXPERIMENTS.md).

    The chain for each capacitor starts at the cell nearest the driver
    edge, greedily hops to the nearest unvisited cell (Manhattan), pays
    one layer-change junction per hop plus one per bend, and drops to the
    driver row from the start cell. *)

open Ccgrid

type bit_net = {
  b_cap : int;
  b_length : float;         (** total chain + drop wirelength, um *)
  b_via_junctions : int;    (** logical layer-change junctions *)
  b_elmore_fs : float;      (** worst-case Elmore delay *)
}

type t = {
  per_bit : bit_net array;
  critical_bit : int;
  critical_elmore_fs : float;
  total_vias : int;         (** physical cuts, [p^2] per junction *)
  total_length : float;
}

(** [analyze tech ?p_of_cap placement] routes every capacitor as a chain
    and evaluates the delays. *)
val analyze : Tech.Process.t -> ?p_of_cap:(int -> int) -> Placement.t -> t

(** [f3db_mhz t ~bits] from the critical chain (Eq. 16). *)
val f3db_mhz : t -> bits:int -> float
