open Ccgrid

type wire_kind =
  | Branch
  | Stub
  | Trunk
  | Bridge
  | Top

type wire = {
  w_cap : int;
  w_kind : wire_kind;
  w_layer : Tech.Layer.name;
  w_ax : float;
  w_ay : float;
  w_bx : float;
  w_by : float;
  w_p : int;
}

type via = {
  v_cap : int;
  v_x : float;
  v_y : float;
  v_p : int;
}

type attach_point = {
  ap_group : int;
  ap_cell : Cell.t;
  ap_x : float;
  ap_y : float;
}

type trunk = {
  tk_cap : int;
  tk_channel : int;
  tk_track : int;
  tk_x : float;
  tk_y_low : float;
  tk_y_high : float;
  tk_attaches : attach_point list;
  tk_primary : bool;
}

type capnet = {
  cn_cap : int;
  cn_groups : Group.t list;
  cn_trunks : trunk list;
  cn_bridge_y : float option;
  cn_driver_x : float;
}

type t = {
  placement : Placement.t;
  tech : Tech.Process.t;
  groups : Group.t list;
  plan : Plan.t;
  p_of_cap : int array;
  col_x : float array;
  row_y : float array;
  channel_width : float array;
  bridge_height : float;
  width : float;
  height : float;
  nets : capnet array;
  wires : wire list;
  vias : via list;
  top_wires : wire list;
  top_length : float;
}

let msb_parallel ~bits ~p cap = if cap >= bits - 2 then p else 1

let wire_length w = Float.abs (w.w_bx -. w.w_ax) +. Float.abs (w.w_by -. w.w_ay)

let cell_center t (c : Cell.t) =
  Geom.Point.make ~x:t.col_x.(c.Cell.col) ~y:t.row_y.(c.Cell.row)

let net t k =
  if k < 0 || k >= Array.length t.nets then invalid_arg "Layout.net: bad cap id";
  t.nets.(k)

(* ------------------------------------------------------------------ *)

(* x positions of tracks within a channel, honouring per-capacitor bundle
   widths; returns (track -> x centre) and the channel width. *)
let track_positions tech p_of_cap ~channel_left track_caps =
  let n = Array.length track_caps in
  let xs = Array.make n 0. in
  let cursor = ref channel_left in
  for i = 0 to n - 1 do
    let span = Tech.Parallel.track_span tech ~p:p_of_cap.(track_caps.(i)) in
    xs.(i) <- !cursor +. (span /. 2.);
    cursor := !cursor +. span
  done;
  (xs, !cursor -. channel_left)

let route tech ?(p_of_cap = fun _ -> 1) (placement : Placement.t) =
  let bits = placement.Placement.bits in
  let rows = placement.Placement.rows and cols = placement.Placement.cols in
  let p_arr =
    Array.init (bits + 1)
      (fun k ->
         let p = p_of_cap k in
         if p < 1 then invalid_arg "Layout.route: p_of_cap must be >= 1";
         p)
  in
  let groups =
    Telemetry.Span.with_ ~name:"route.groups" (fun () ->
        Group.of_placement placement)
  in
  let plan =
    Telemetry.Span.with_ ~name:"route.plan" (fun () ->
        Plan.make placement groups)
  in
  (* --- channel geometry --- *)
  let channel_width = Array.make (cols + 1) 0. in
  let track_x = Array.make (cols + 1) [||] in
  let channel_left = Array.make (cols + 1) 0. in
  let col_x = Array.make cols 0. in
  let pitch_x = Tech.Process.cell_pitch_x tech in
  let pitch_y = Tech.Process.cell_pitch_y tech in
  (* bridge region: one track per capacitor that needs a bridge *)
  let trunk_channels = Array.make (bits + 1) [] in
  List.iter
    (fun (r : Plan.route) ->
       let cap = r.Plan.group.Group.cap in
       if not (List.mem r.Plan.channel trunk_channels.(cap)) then
         trunk_channels.(cap) <- r.Plan.channel :: trunk_channels.(cap))
    plan.Plan.routes;
  let needs_bridge = Array.map (fun chs -> List.length chs >= 2) trunk_channels in
  let bridge_y = Array.make (bits + 1) 0. in
  let bridge_height =
    let cursor = ref 0. in
    for cap = 0 to bits do
      if needs_bridge.(cap) then begin
        let span = Tech.Parallel.track_span tech ~p:p_arr.(cap) in
        bridge_y.(cap) <- !cursor +. (span /. 2.);
        cursor := !cursor +. span
      end
    done;
    !cursor
  in
  let width =
    let cursor = ref 0. in
    for ch = 0 to cols do
      channel_left.(ch) <- !cursor;
      let xs, w =
        track_positions tech p_arr ~channel_left:!cursor plan.Plan.track_caps.(ch)
      in
      track_x.(ch) <- xs;
      channel_width.(ch) <- w;
      cursor := !cursor +. w;
      if ch < cols then begin
        col_x.(ch) <- !cursor +. (pitch_x /. 2.);
        cursor := !cursor +. pitch_x
      end
    done;
    !cursor
  in
  let row_y =
    Array.init rows
      (fun r -> bridge_height +. (float_of_int r *. pitch_y) +. (pitch_y /. 2.))
  in
  let height = bridge_height +. (float_of_int rows *. pitch_y) in
  (* --- per-capacitor nets --- *)
  let wires = ref [] and vias = ref [] in
  let emit_wire w = wires := w :: !wires in
  let emit_via v = vias := v :: !vias in
  let build_net cap =
    let p = p_arr.(cap) in
    let routes = Plan.routes_of_cap plan cap in
    let cap_groups = Group.of_cap groups cap in
    (* branch connections inside each group: abutting MOM fingers on the
       device layers — they carry plate resistance but are not routing
       metal, so they are rendered as Branch wires and excluded from the
       wirelength/capacitance/via metrics (Sec. V: "unit capacitors use
       nearest-neighbor connections using the same metal layer with no
       vias") *)
    List.iter
      (fun (g : Group.t) ->
         List.iter
           (fun ((a : Cell.t), (b : Cell.t)) ->
              emit_wire
                { w_cap = cap; w_kind = Branch; w_layer = Tech.Layer.M1;
                  w_ax = col_x.(a.Cell.col); w_ay = row_y.(a.Cell.row);
                  w_bx = col_x.(b.Cell.col); w_by = row_y.(b.Cell.row);
                  w_p = p })
           g.Group.tree_edges)
      cap_groups;
    (* trunks, one per channel used by this capacitor *)
    let by_channel = Hashtbl.create 4 in
    List.iter
      (fun (r : Plan.route) ->
         let prev = Option.value ~default:[] (Hashtbl.find_opt by_channel r.Plan.channel) in
         Hashtbl.replace by_channel r.Plan.channel (r :: prev))
      routes;
    let channels = List.sort_uniq Int.compare (List.map (fun r -> r.Plan.channel) routes) in
    let primary_channel =
      match channels with
      | [] -> -1
      | ch :: _ -> ch
    in
    let has_bridge = needs_bridge.(cap) in
    let trunks =
      List.map
        (fun ch ->
           let rs = Hashtbl.find by_channel ch in
           let track =
             match rs with
             | r :: _ -> r.Plan.track
             | [] ->
               invalid_arg
                 (Printf.sprintf
                    "Ccroute.Layout.build: capacitor C%d lists channel %d \
                     but the plan has no route for it there"
                    cap ch)
           in
           let x = track_x.(ch).(track) in
           let attaches =
             List.map
               (fun (r : Plan.route) ->
                  { ap_group = r.Plan.group.Group.id;
                    ap_cell = r.Plan.attach;
                    ap_x = x;
                    ap_y = row_y.(r.Plan.attach.Cell.row) })
               rs
           in
           let y_high =
             List.fold_left (fun acc a -> Float.max acc a.ap_y) 0. attaches
           in
           let primary = ch = primary_channel in
           let y_low =
             if primary then 0.
             else if has_bridge then bridge_y.(cap)
             else 0.
           in
           { tk_cap = cap; tk_channel = ch; tk_track = track; tk_x = x;
             tk_y_low = y_low; tk_y_high = y_high; tk_attaches = attaches;
             tk_primary = primary })
        channels
    in
    (* wire + via emission for trunks and attaches *)
    List.iter
      (fun tk ->
         emit_wire
           { w_cap = cap; w_kind = Trunk; w_layer = Tech.Layer.M3;
             w_ax = tk.tk_x; w_ay = tk.tk_y_low;
             w_bx = tk.tk_x; w_by = tk.tk_y_high; w_p = p };
         List.iter
           (fun a ->
              emit_wire
                { w_cap = cap; w_kind = Stub; w_layer = Tech.Layer.M1;
                  w_ax = col_x.(a.ap_cell.Cell.col); w_ay = a.ap_y;
                  w_bx = a.ap_x; w_by = a.ap_y; w_p = p };
              emit_via { v_cap = cap; v_x = a.ap_x; v_y = a.ap_y; v_p = p })
           tk.tk_attaches)
      trunks;
    (* bridge *)
    let bridge =
      if has_bridge then begin
        let y = bridge_y.(cap) in
        let xs = List.map (fun tk -> tk.tk_x) trunks in
        let x_lo = List.fold_left Float.min Float.infinity xs in
        let x_hi = List.fold_left Float.max Float.neg_infinity xs in
        emit_wire
          { w_cap = cap; w_kind = Bridge; w_layer = Tech.Layer.M1;
            w_ax = x_lo; w_ay = y; w_bx = x_hi; w_by = y; w_p = p };
        (* one junction via per trunk (secondary trunks land on the bridge;
           the primary trunk crosses it and taps it) *)
        List.iter
          (fun tk -> emit_via { v_cap = cap; v_x = tk.tk_x; v_y = y; v_p = p })
          trunks;
        Some y
      end
      else None
    in
    let driver_x =
      match List.find_opt (fun tk -> tk.tk_primary) trunks with
      | Some tk -> tk.tk_x
      | None -> 0.
    in
    (* input connection via at the driver row *)
    if trunks <> [] then
      emit_via { v_cap = cap; v_x = driver_x; v_y = 0.; v_p = p };
    { cn_cap = cap; cn_groups = cap_groups; cn_trunks = trunks;
      cn_bridge_y = bridge; cn_driver_x = driver_x }
  in
  let nets =
    Telemetry.Span.with_ ~name:"route.nets" (fun () ->
        Array.init (bits + 1) build_net)
  in
  (* --- top plate: column runs + one horizontal connector (MST) --- *)
  let top_wires = ref [] in
  let mid_row = rows / 2 in
  if rows > 1 then
    Array.iter
      (fun x ->
         top_wires :=
           { w_cap = -2; w_kind = Top; w_layer = Tech.Layer.M2;
             w_ax = x; w_ay = row_y.(0); w_bx = x; w_by = row_y.(rows - 1);
             w_p = 1 }
           :: !top_wires)
      col_x;
  if cols > 1 then
    top_wires :=
      { w_cap = -2; w_kind = Top; w_layer = Tech.Layer.M2;
        w_ax = col_x.(0); w_ay = row_y.(mid_row);
        w_bx = col_x.(cols - 1); w_by = row_y.(mid_row); w_p = 1 }
      :: !top_wires;
  let top_length =
    List.fold_left (fun acc w -> acc +. wire_length w) 0. !top_wires
  in
  if Telemetry.Metrics.enabled () then begin
    Telemetry.Metrics.set "route/groups" (float_of_int (List.length groups));
    Telemetry.Metrics.set "route/tracks"
      (float_of_int (Plan.total_tracks plan));
    Telemetry.Metrics.set "route/wires"
      (float_of_int (List.length !wires + List.length !top_wires));
    Telemetry.Metrics.set "route/vias" (float_of_int (List.length !vias))
  end;
  { placement; tech; groups; plan; p_of_cap = p_arr; col_x; row_y;
    channel_width; bridge_height; width; height; nets;
    wires = List.rev !wires; vias = List.rev !vias;
    top_wires = !top_wires; top_length }
