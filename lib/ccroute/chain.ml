open Ccgrid

type bit_net = {
  b_cap : int;
  b_length : float;
  b_via_junctions : int;
  b_elmore_fs : float;
}

type t = {
  per_bit : bit_net array;
  critical_bit : int;
  critical_elmore_fs : float;
  total_vias : int;
  total_length : float;
}

(* Greedy nearest-neighbour chain over the capacitor's cell positions,
   starting from the cell nearest the driver edge (lowest y, then |x|). *)
let chain_order positions =
  let n = Array.length positions in
  let used = Array.make n false in
  let start =
    let best = ref 0 in
    for i = 1 to n - 1 do
      let key (p : Geom.Point.t) = (p.Geom.Point.y, Float.abs p.Geom.Point.x) in
      if key positions.(i) < key positions.(!best) then best := i
    done;
    !best
  in
  used.(start) <- true;
  let order = ref [ start ] in
  let current = ref start in
  for _ = 2 to n do
    let best = ref (-1) in
    for i = 0 to n - 1 do
      if not used.(i) then
        if !best = -1
           || Geom.Point.manhattan positions.(!current) positions.(i)
              < Geom.Point.manhattan positions.(!current) positions.(!best)
        then best := i
    done;
    used.(!best) <- true;
    order := !best :: !order;
    current := !best
  done;
  Array.of_list (List.rev !order)

let analyze tech ?(p_of_cap = fun _ -> 1) (placement : Placement.t) =
  let m1 = Tech.Process.layer tech Tech.Layer.M1 in
  let pitch_y = Tech.Process.cell_pitch_y tech in
  let driver_y =
    (* just below the bottom row in centred coordinates *)
    -.(float_of_int placement.Placement.rows *. pitch_y /. 2.)
  in
  let analyze_cap cap =
    let p = p_of_cap cap in
    if p < 1 then invalid_arg "Chain.analyze: p_of_cap must be >= 1";
    let rvia = Tech.Parallel.via_resistance tech ~p in
    let positions =
      Array.of_list
        (List.map (Placement.position tech placement)
           (Placement.cells_of placement cap))
    in
    if Array.length positions = 0 then
      invalid_arg "Chain.analyze: capacitor has no cells";
    let order = chain_order positions in
    let tree = Rcnet.Rctree.create () in
    let root = Rcnet.Rctree.add_node tree ~label:"driver" () in
    let nodes =
      Array.map
        (fun i ->
           ignore i;
           Rcnet.Rctree.add_node tree ~label:"cell"
             ~cap:tech.Tech.Process.unit_cap ())
        order
    in
    let length = ref 0. and junctions = ref 0 in
    (* drop from the driver to the chain start *)
    let start_pos = positions.(order.(0)) in
    let drop_len =
      Float.abs (start_pos.Geom.Point.y -. driver_y)
      +. Float.abs start_pos.Geom.Point.x
    in
    length := !length +. drop_len;
    incr junctions;
    Rcnet.Rctree.wire_edge tree root nodes.(0)
      ~r:(Tech.Parallel.wire_resistance m1 ~length:drop_len ~p +. rvia)
      ~c:(Tech.Parallel.wire_capacitance m1 ~length:drop_len ~p);
    (* hops along the chain: one junction per hop, one more per bend *)
    for i = 1 to Array.length order - 1 do
      let a = positions.(order.(i - 1)) and b = positions.(order.(i)) in
      let len = Geom.Point.manhattan a b in
      let bend =
        Float.abs (a.Geom.Point.x -. b.Geom.Point.x) > 1e-9
        && Float.abs (a.Geom.Point.y -. b.Geom.Point.y) > 1e-9
      in
      let hop_junctions = if bend then 2 else 1 in
      junctions := !junctions + hop_junctions;
      length := !length +. len;
      Rcnet.Rctree.wire_edge tree nodes.(i - 1) nodes.(i)
        ~r:
          (Tech.Parallel.wire_resistance m1 ~length:len ~p
           +. (float_of_int hop_junctions *. rvia))
        ~c:(Tech.Parallel.wire_capacitance m1 ~length:len ~p)
    done;
    let elmore =
      Rcnet.Elmore.max_delay tree ~root ~over:(Array.to_list nodes)
    in
    ({ b_cap = cap; b_length = !length; b_via_junctions = !junctions;
       b_elmore_fs = elmore },
     !junctions * Tech.Parallel.via_count ~p)
  in
  let results = Array.init (placement.Placement.bits + 1) analyze_cap in
  let per_bit = Array.map fst results in
  let total_vias = Array.fold_left (fun acc (_, v) -> acc + v) 0 results in
  let total_length =
    Array.fold_left (fun acc b -> acc +. b.b_length) 0. per_bit
  in
  let critical_bit, critical_elmore_fs =
    Array.fold_left
      (fun (kb, best) b ->
         if b.b_elmore_fs > best then (b.b_cap, b.b_elmore_fs) else (kb, best))
      (0, Float.neg_infinity) per_bit
  in
  { per_bit; critical_bit; critical_elmore_fs; total_vias; total_length }

let f3db_mhz t ~bits =
  Ccgrid.Weights.check_bits bits;
  if t.critical_elmore_fs <= 0. then
    invalid_arg "Chain.f3db_mhz: non-positive critical delay";
  let tau_s = t.critical_elmore_fs *. 1e-15 in
  1. /. (2. *. float_of_int (bits + 2) *. Float.log 2. *. tau_s) /. 1e6
