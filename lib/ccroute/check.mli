(** Post-route verification: structural and geometric invariants of a
    routed layout.

    This is the light-weight DRC/LVS-style net of checks a generated
    layout must pass before anyone trusts its extracted metrics:
    everything inside the outline, trunks inside their channels, distinct
    tracks not colliding, every capacitor's net present, via bundles
    consistent with the parallel-wire plan.  [run] returns all violations;
    the empty list means clean. *)

type violation = {
  rule : string;    (** short rule id, e.g. "trunk-in-channel" *)
  detail : string;  (** human-readable description *)
}

(** [run layout] executes every check.  Violations come back in a
    deterministic order: sorted by rule id, then by detail. *)
val run : Layout.t -> violation list

(** [compare_violation a b] is the order {!run} returns violations in. *)
val compare_violation : violation -> violation -> int

(** [by_rule violations] tallies a {b sorted} violation list into
    [(rule, count)] pairs, in rule order. *)
val by_rule : violation list -> (string * int) list

(** [assert_clean layout] raises [Invalid_argument] when the layout is not
    clean; the message carries the total violation count, a per-rule
    breakdown, and the first few violations in full. *)
val assert_clean : Layout.t -> unit

val pp_violation : Format.formatter -> violation -> unit
