(** Post-route verification: structural and geometric invariants of a
    routed layout.

    This is the light-weight DRC/LVS-style net of checks a generated
    layout must pass before anyone trusts its extracted metrics:
    everything inside the outline, trunks inside their channels, distinct
    tracks not colliding, every capacitor's net present, via bundles
    consistent with the parallel-wire plan.  [run] returns all violations;
    the empty list means clean. *)

type violation = {
  rule : string;    (** short rule id, e.g. "trunk-in-channel" *)
  detail : string;  (** human-readable description *)
}

(** [run layout] executes every check. *)
val run : Layout.t -> violation list

(** [assert_clean layout] raises [Invalid_argument] listing the first few
    violations when the layout is not clean. *)
val assert_clean : Layout.t -> unit

val pp_violation : Format.formatter -> violation -> unit
