open Ccgrid

(* categorical palette; capacitor k uses palette.(k mod len) *)
let palette =
  [| "#4e79a7"; "#f28e2b"; "#e15759"; "#76b7b2"; "#59a14f"; "#edc948";
     "#b07aa1"; "#ff9da7"; "#9c755f"; "#bab0ac"; "#1b9e77"; "#d95f02" |]

let cap_color cap =
  if cap = Placement.dummy then "#e0e0e0"
  else palette.(cap mod Array.length palette)

let layer_color = function
  | Tech.Layer.M1 -> "#d62728"
  | Tech.Layer.M2 -> "#2ca02c"
  | Tech.Layer.M3 -> "#1f77b4"

let render ?(scale = 24.) ?(show_top = true) (layout : Layout.t) =
  let buf = Buffer.create (1 lsl 16) in
  let w = layout.Layout.width *. scale in
  let h = layout.Layout.height *. scale in
  (* SVG y grows downward; flip so the driver row (y = 0) is at the bottom *)
  let px x = x *. scale in
  let py y = h -. (y *. scale) in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" \
       viewBox=\"0 0 %.2f %.2f\">\n" w h w h;
  add "<rect width=\"%.2f\" height=\"%.2f\" fill=\"#fafafa\"/>\n" w h;
  (* unit cells *)
  let tech = layout.Layout.tech in
  let cw = tech.Tech.Process.cell_width *. scale in
  let ch = tech.Tech.Process.cell_height *. scale in
  let placement = layout.Layout.placement in
  for row = 0 to placement.Placement.rows - 1 do
    for col = 0 to placement.Placement.cols - 1 do
      let cell = Cell.make ~row ~col in
      let center = Layout.cell_center layout cell in
      let id = placement.Placement.assign.(row).(col) in
      add
        "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" \
         fill=\"%s\" stroke=\"#666\" stroke-width=\"0.5\" fill-opacity=\"0.55\"/>\n"
        (px center.Geom.Point.x -. (cw /. 2.))
        (py center.Geom.Point.y -. (ch /. 2.))
        cw ch (cap_color id);
      if id <> Placement.dummy then
        add
          "<text x=\"%.2f\" y=\"%.2f\" font-size=\"%.1f\" text-anchor=\"middle\" \
           dominant-baseline=\"central\" font-family=\"monospace\">%c</text>\n"
          (px center.Geom.Point.x) (py center.Geom.Point.y) (ch /. 2.5)
          (Render.glyph id)
    done
  done;
  (* bottom-plate wires *)
  let draw_wire (wire : Layout.wire) ~opacity =
    let width =
      match wire.Layout.w_kind with
      | Layout.Branch -> 1.0
      | Layout.Stub -> 1.5
      | Layout.Trunk | Layout.Bridge -> 1.0 +. float_of_int wire.Layout.w_p
      | Layout.Top -> 1.0
    in
    add
      "<line x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\" stroke=\"%s\" \
       stroke-width=\"%.1f\" stroke-opacity=\"%.2f\"/>\n"
      (px wire.Layout.w_ax) (py wire.Layout.w_ay) (px wire.Layout.w_bx)
      (py wire.Layout.w_by)
      (layer_color wire.Layout.w_layer)
      width opacity
  in
  List.iter (fun w -> draw_wire w ~opacity:0.9) layout.Layout.wires;
  if show_top then List.iter (fun w -> draw_wire w ~opacity:0.35) layout.Layout.top_wires;
  (* vias *)
  List.iter
    (fun (v : Layout.via) ->
       add
         "<circle cx=\"%.2f\" cy=\"%.2f\" r=\"%.1f\" fill=\"#222\"/>\n"
         (px v.Layout.v_x) (py v.Layout.v_y)
         (1.2 +. (0.4 *. float_of_int v.Layout.v_p)))
    layout.Layout.vias;
  (* caption *)
  add
    "<text x=\"4\" y=\"12\" font-size=\"10\" font-family=\"monospace\" \
     fill=\"#333\">%s %d-bit, %.0fx%.0f um, %d via cuts</text>\n"
    placement.Placement.style_name placement.Placement.bits layout.Layout.width
    layout.Layout.height
    (List.fold_left
       (fun acc (v : Layout.via) -> acc + Tech.Parallel.via_count ~p:v.Layout.v_p)
       0 layout.Layout.vias);
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write ?scale ?show_top layout ~path =
  let oc = open_out path in
  (try output_string oc (render ?scale ?show_top layout)
   with e ->
     close_out oc;
     raise e);
  close_out oc
