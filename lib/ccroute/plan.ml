open Ccgrid

type route = {
  group : Group.t;
  channel : int;
  track : int;
  attach : Cell.t;
}

type t = {
  routes : route list;
  tracks_per_channel : int array;
  track_caps : int array array;
}

(* The attach cell of a follower group [q] joining a shared channel: the
   cell nearest the channel horizontally, lowest first (toward the
   drivers). *)
let attach_toward_channel (g : Group.t) ~channel =
  let distance (c : Cell.t) =
    (* channel [ch] separates columns ch-1 and ch *)
    Int.min (abs (c.Cell.col - channel)) (abs (c.Cell.col - (channel - 1)))
  in
  let key (c : Cell.t) = (distance c, c.Cell.row, c.Cell.col) in
  match g.Group.cells with
  | [] -> invalid_arg "Plan: empty group"
  | first :: rest ->
    List.fold_left (fun best c -> if key c < key best then c else best) first rest

(* Step 1: channel selection for the groups of one capacitor. *)
let select_channels_for_cap groups_of_i =
  let n = Array.length groups_of_i in
  let visited = Array.make n false in
  let chosen = ref [] in
  (* emit (group, channel, attach) *)
  let emit g channel attach = chosen := (g, channel, attach) :: !chosen in
  for j = 0 to n - 1 do
    if not visited.(j) then begin
      let p = groups_of_i.(j) in
      visited.(j) <- true;
      let c_j = ref (-1) in
      let u_p = ref None in
      let left = ref [] and right = ref [] in
      for k = 0 to n - 1 do
        if (not visited.(k)) && k <> j then begin
          let q = groups_of_i.(k) in
          if Group.col_span_overlap p q then begin
            let up, uq = Group.closest_cells p q in
            if !c_j = -1 then begin
              c_j := up.Cell.col;
              u_p := Some up
            end;
            if uq.Cell.col = !c_j - 1 || uq.Cell.col = !c_j then
              left := (k, q, uq) :: !left;
            if uq.Cell.col = !c_j || uq.Cell.col = !c_j + 1 then
              right := (k, q, uq) :: !right
          end
        end
      done;
      match !u_p with
      | None ->
        (* solo group: attach at the cell closest to the bottom, trunk in
           the channel on its left *)
        let attach =
          match p.Group.cells with
          | [] -> invalid_arg "Plan: empty group"
          | first :: rest ->
            List.fold_left
              (fun best (c : Cell.t) ->
                 if (c.Cell.row, c.Cell.col) < (best.Cell.row, best.Cell.col)
                 then c else best)
              first rest
        in
        emit p attach.Cell.col attach
      | Some up ->
        (* Algorithm 1 line 29: strictly more sharing on the left wins,
           ties route right *)
        let side_left = List.length !left > List.length !right in
        let channel = if side_left then !c_j else !c_j + 1 in
        let sharing = if side_left then !left else !right in
        emit p channel up;
        List.iter
          (fun (k, q, _uq) ->
             visited.(k) <- true;
             emit q channel (attach_toward_channel q ~channel))
          sharing
    end
  done;
  List.rev !chosen

let make (placement : Placement.t) groups =
  let cols = placement.Placement.cols in
  let per_cap_choices =
    List.concat_map
      (fun cap ->
         let gs = Array.of_list (Group.of_cap groups cap) in
         List.map
           (fun (g, channel, attach) -> (cap, g, channel, attach))
           (select_channels_for_cap gs))
      (List.init (placement.Placement.bits + 1) (fun k -> k))
  in
  (* Stub planarity repair.  Each connection straps its group to the
     trunk with an M1 stub at its attach cell's row; when capacitor A
     straps from the left column of a channel at the same row where
     capacitor B straps from the right, A's track must lie left of B's
     or the stubs overlap on M1 — a short.  These precedence constraints
     can form a cycle (A left of B at one row, B left of A at another),
     which no track order satisfies; break cycles by re-attaching one of
     the offending groups at a different channel-adjacent cell — the
     group joins the same trunk either way, only its stub row moves. *)
  let choices =
    Array.of_list
      (List.map
         (fun (cap, g, channel, attach) -> (cap, g, channel, ref attach))
         per_cap_choices)
  in
  let cyclic channel idxs =
    (* caps with their strap (side, row) pairs under the current attaches *)
    let strap = Hashtbl.create 8 in
    List.iter
      (fun i ->
         let cap, _, _, attach = choices.(i) in
         let side_row =
           ((!attach).Cell.col >= channel, (!attach).Cell.row)
         in
         Hashtbl.replace strap cap
           (side_row
            :: Option.value ~default:[] (Hashtbl.find_opt strap cap)))
      idxs;
    let caps = Hashtbl.fold (fun cap _ acc -> cap :: acc) strap [] in
    let before a b =
      a <> b
      && List.exists
           (fun (right, r) ->
              (not right)
              && List.exists (( = ) (true, r)) (Hashtbl.find strap b))
           (Hashtbl.find strap a)
    in
    (* Kahn: the constraint graph is cyclic iff some cap never drains *)
    let remaining = ref caps in
    let progress = ref true in
    while !progress do
      progress := false;
      let ready, blocked =
        List.partition
          (fun b -> not (List.exists (fun a -> before a b) !remaining))
          !remaining
      in
      if ready <> [] then progress := true;
      remaining := blocked
    done;
    !remaining <> []
  in
  let by_channel_idx = Hashtbl.create 16 in
  Array.iteri
    (fun i (_, _, channel, _) ->
       Hashtbl.replace by_channel_idx channel
         (i :: Option.value ~default:[] (Hashtbl.find_opt by_channel_idx channel)))
    choices;
  Hashtbl.iter
    (fun channel idxs ->
       if cyclic channel idxs then
         (* greedy single-move repair: try re-attaching each connection at
            another cell adjacent to the channel, nearest row first *)
         List.iter
           (fun i ->
              if cyclic channel idxs then begin
                let _, g, _, attach = choices.(i) in
                let original = !attach in
                let candidates =
                  List.filter
                    (fun (c : Cell.t) ->
                       (c.Cell.col = channel - 1 || c.Cell.col = channel)
                       && c.Cell.row <> original.Cell.row)
                    g.Group.cells
                  |> List.sort
                       (fun (a : Cell.t) (b : Cell.t) ->
                          match
                            Int.compare
                              (abs (a.Cell.row - original.Cell.row))
                              (abs (b.Cell.row - original.Cell.row))
                          with
                          | 0 -> Cell.compare a b
                          | c -> c)
                in
                let rec try_cells = function
                  | [] -> attach := original
                  | c :: rest ->
                    attach := c;
                    if cyclic channel idxs then try_cells rest
                in
                try_cells candidates
              end)
           idxs)
    by_channel_idx;
  let per_cap_choices =
    Array.to_list choices
    |> List.map (fun (cap, g, channel, attach) -> (cap, g, channel, !attach))
  in
  (* Step 2: one track per (channel, capacitor); a capacitor's groups in
     the same channel share the track (they are one electrical net).
     Lines 42-45 assign each connection the closest available track: a
     capacitor attaching from the column right of the channel takes the
     rightmost unused track, one attaching from the left takes the
     leftmost — minimising its stub length.

     Track order must also respect stub planarity.  Every strap is an M1
     stub at its attach cell's row y, from the cell pad to the track;
     when capacitor A straps from the left column at the same row where
     capacitor B straps from the right, A's track must lie left of B's
     or the two stubs overlap on M1 — a short (a capacitor strapping
     from both sides at different rows can impose several such
     constraints, which the closest-track rule alone can violate).  So
     tracks are assigned in a topological order of these precedence
     constraints, with the closest-track rule as the tie-break:
     left-only capacitors take the leftmost tracks in discovery order,
     right-only ones the rightmost. *)
  let tracks_per_channel = Array.make (cols + 1) 0 in
  (* (channel, cap) -> (left-strap rows, right-strap rows) *)
  let strap_rows = Hashtbl.create 64 in
  let channel_caps = Array.make (cols + 1) [] in
  List.iter
    (fun (cap, _g, channel, (attach : Cell.t)) ->
       let lefts, rights =
         match Hashtbl.find_opt strap_rows (channel, cap) with
         | Some lr -> lr
         | None ->
           let lr = (ref [], ref []) in
           Hashtbl.add strap_rows (channel, cap) lr;
           channel_caps.(channel) <- cap :: channel_caps.(channel);
           tracks_per_channel.(channel) <- tracks_per_channel.(channel) + 1;
           lr
       in
       (* channel ch sits left of column ch: an attach cell in column ch
          reaches the channel from the right *)
       if attach.Cell.col >= channel then
         rights := attach.Cell.row :: !rights
       else lefts := attach.Cell.row :: !lefts)
    per_cap_choices;
  let track_table = Hashtbl.create 64 in
  let track_caps =
    Array.mapi (fun ch n -> (ch, Array.make n (-1))) tracks_per_channel
    |> Array.map snd
  in
  Array.iteri
    (fun channel caps_rev ->
       let caps = Array.of_list (List.rev caps_rev) in
       let n = Array.length caps in
       let lefts i = !(fst (Hashtbl.find strap_rows (channel, caps.(i))))
       and rights i = !(snd (Hashtbl.find strap_rows (channel, caps.(i)))) in
       (* [i] must take a track left of [j]'s *)
       let before i j =
         i <> j && List.exists (fun r -> List.mem r (rights j)) (lefts i)
       in
       let indeg = Array.make n 0 in
       for i = 0 to n - 1 do
         for j = 0 to n - 1 do
           if before i j then indeg.(j) <- indeg.(j) + 1
         done
       done;
       (* closest-track tie-break: left-only strappers first (lowest
          tracks) in discovery order, right-only last in reverse
          discovery order (the first discovered ends up rightmost) *)
       let key i =
         match (lefts i, rights i) with
         | _ :: _, [] -> (0, i)
         | _ :: _, _ :: _ -> (1, i)
         | [], _ -> (2, n - i)
       in
       let assigned = Array.make n false in
       for track = 0 to n - 1 do
         let pick ~ready =
           let best = ref (-1) in
           for i = 0 to n - 1 do
             if (not assigned.(i)) && ((not ready) || indeg.(i) = 0) then
               if !best = -1 || key i < key !best then best := i
           done;
           !best
         in
         (* a precedence cycle (A left of B and B left of A) cannot be
            satisfied by track order alone; fall back to the tie-break
            and let the LVS gate report the residual overlap *)
         let i = match pick ~ready:true with -1 -> pick ~ready:false | i -> i in
         assigned.(i) <- true;
         for j = 0 to n - 1 do
           if (not assigned.(j)) && before i j then indeg.(j) <- indeg.(j) - 1
         done;
         Hashtbl.add track_table (channel, caps.(i)) track;
         track_caps.(channel).(track) <- caps.(i)
       done)
    channel_caps;
  let routes =
    List.map
      (fun (cap, group, channel, attach) ->
         { group; channel; track = Hashtbl.find track_table (channel, cap); attach })
      per_cap_choices
  in
  { routes; tracks_per_channel; track_caps }

let routes_of_cap t k =
  List.filter (fun r -> r.group.Group.cap = k) t.routes

let total_tracks t = Array.fold_left ( + ) 0 t.tracks_per_channel
