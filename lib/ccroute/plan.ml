open Ccgrid

type route = {
  group : Group.t;
  channel : int;
  track : int;
  attach : Cell.t;
}

type t = {
  routes : route list;
  tracks_per_channel : int array;
  track_caps : int array array;
}

(* The attach cell of a follower group [q] joining a shared channel: the
   cell nearest the channel horizontally, lowest first (toward the
   drivers). *)
let attach_toward_channel (g : Group.t) ~channel =
  let distance (c : Cell.t) =
    (* channel [ch] separates columns ch-1 and ch *)
    Int.min (abs (c.Cell.col - channel)) (abs (c.Cell.col - (channel - 1)))
  in
  let key (c : Cell.t) = (distance c, c.Cell.row, c.Cell.col) in
  match g.Group.cells with
  | [] -> invalid_arg "Plan: empty group"
  | first :: rest ->
    List.fold_left (fun best c -> if key c < key best then c else best) first rest

(* Step 1: channel selection for the groups of one capacitor. *)
let select_channels_for_cap groups_of_i =
  let n = Array.length groups_of_i in
  let visited = Array.make n false in
  let chosen = ref [] in
  (* emit (group, channel, attach) *)
  let emit g channel attach = chosen := (g, channel, attach) :: !chosen in
  for j = 0 to n - 1 do
    if not visited.(j) then begin
      let p = groups_of_i.(j) in
      visited.(j) <- true;
      let c_j = ref (-1) in
      let u_p = ref None in
      let left = ref [] and right = ref [] in
      for k = 0 to n - 1 do
        if (not visited.(k)) && k <> j then begin
          let q = groups_of_i.(k) in
          if Group.col_span_overlap p q then begin
            let up, uq = Group.closest_cells p q in
            if !c_j = -1 then begin
              c_j := up.Cell.col;
              u_p := Some up
            end;
            if uq.Cell.col = !c_j - 1 || uq.Cell.col = !c_j then
              left := (k, q, uq) :: !left;
            if uq.Cell.col = !c_j || uq.Cell.col = !c_j + 1 then
              right := (k, q, uq) :: !right
          end
        end
      done;
      match !u_p with
      | None ->
        (* solo group: attach at the cell closest to the bottom, trunk in
           the channel on its left *)
        let attach =
          match p.Group.cells with
          | [] -> invalid_arg "Plan: empty group"
          | first :: rest ->
            List.fold_left
              (fun best (c : Cell.t) ->
                 if (c.Cell.row, c.Cell.col) < (best.Cell.row, best.Cell.col)
                 then c else best)
              first rest
        in
        emit p attach.Cell.col attach
      | Some up ->
        (* Algorithm 1 line 29: strictly more sharing on the left wins,
           ties route right *)
        let side_left = List.length !left > List.length !right in
        let channel = if side_left then !c_j else !c_j + 1 in
        let sharing = if side_left then !left else !right in
        emit p channel up;
        List.iter
          (fun (k, q, _uq) ->
             visited.(k) <- true;
             emit q channel (attach_toward_channel q ~channel))
          sharing
    end
  done;
  List.rev !chosen

let make (placement : Placement.t) groups =
  let cols = placement.Placement.cols in
  let per_cap_choices =
    List.concat_map
      (fun cap ->
         let gs = Array.of_list (Group.of_cap groups cap) in
         List.map
           (fun (g, channel, attach) -> (cap, g, channel, attach))
           (select_channels_for_cap gs))
      (List.init (placement.Placement.bits + 1) (fun k -> k))
  in
  (* Step 2: one track per (channel, capacitor); a capacitor's groups in
     the same channel share the track (they are one electrical net).
     Lines 42-45 assign each connection the closest available track: a
     capacitor attaching from the column right of the channel takes the
     rightmost unused track, one attaching from the left takes the
     leftmost — minimising its stub length. *)
  let tracks_per_channel = Array.make (cols + 1) 0 in
  let first_attach = Hashtbl.create 64 in
  List.iter
    (fun (cap, _g, channel, (attach : Cell.t)) ->
       if not (Hashtbl.mem first_attach (channel, cap)) then begin
         Hashtbl.add first_attach (channel, cap) attach.Cell.col;
         tracks_per_channel.(channel) <- tracks_per_channel.(channel) + 1
       end)
    per_cap_choices;
  let track_table = Hashtbl.create 64 in
  let track_caps =
    Array.mapi (fun ch n -> (ch, Array.make n (-1))) tracks_per_channel
    |> Array.map snd
  in
  let low = Array.make (cols + 1) 0 in
  let high = Array.map (fun n -> n - 1) tracks_per_channel in
  List.iter
    (fun (cap, _g, channel, (_ : Cell.t)) ->
       if not (Hashtbl.mem track_table (channel, cap)) then begin
         let attach_col = Hashtbl.find first_attach (channel, cap) in
         (* channel ch sits left of column ch: an attach cell in column ch
            reaches the channel from the right, so its closest track is
            the rightmost *)
         let from_right = attach_col >= channel in
         let track =
           if from_right then begin
             let t = high.(channel) in
             high.(channel) <- t - 1;
             t
           end
           else begin
             let t = low.(channel) in
             low.(channel) <- t + 1;
             t
           end
         in
         Hashtbl.add track_table (channel, cap) track;
         track_caps.(channel).(track) <- cap
       end)
    per_cap_choices;
  let routes =
    List.map
      (fun (cap, group, channel, attach) ->
         { group; channel; track = Hashtbl.find track_table (channel, cap); attach })
      per_cap_choices
  in
  { routes; tracks_per_channel; track_caps }

let routes_of_cap t k =
  List.filter (fun r -> r.group.Group.cap = k) t.routes

let total_tracks t = Array.fold_left ( + ) 0 t.tracks_per_channel
