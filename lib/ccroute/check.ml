open Ccgrid

type violation = {
  rule : string;
  detail : string;
}

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.rule v.detail

let check_outline (layout : Layout.t) out =
  let eps = 1e-6 in
  let inside x y =
    x >= -.eps
    && x <= layout.Layout.width +. eps
    && y >= -.eps
    && y <= layout.Layout.height +. eps
  in
  List.iter
    (fun (w : Layout.wire) ->
       if not (inside w.Layout.w_ax w.Layout.w_ay && inside w.Layout.w_bx w.Layout.w_by)
       then
         out
           { rule = "wire-in-outline";
             detail =
               Printf.sprintf "net C_%d wire (%.2f,%.2f)-(%.2f,%.2f) escapes %gx%g"
                 w.Layout.w_cap w.Layout.w_ax w.Layout.w_ay w.Layout.w_bx
                 w.Layout.w_by layout.Layout.width layout.Layout.height })
    (layout.Layout.wires @ layout.Layout.top_wires);
  List.iter
    (fun (v : Layout.via) ->
       if not (inside v.Layout.v_x v.Layout.v_y) then
         out
           { rule = "via-in-outline";
             detail =
               Printf.sprintf "net C_%d via (%.2f,%.2f) escapes" v.Layout.v_cap
                 v.Layout.v_x v.Layout.v_y })
    layout.Layout.vias

(* each trunk must sit inside its channel's x extent *)
let check_trunks_in_channels (layout : Layout.t) out =
  let eps = 1e-6 in
  let channel_bounds =
    (* recompute channel left edges the way Layout laid them out *)
    let cols = layout.Layout.placement.Placement.cols in
    let pitch_x = Tech.Process.cell_pitch_x layout.Layout.tech in
    let bounds = Array.make (cols + 1) (0., 0.) in
    let cursor = ref 0. in
    for ch = 0 to cols do
      bounds.(ch) <- (!cursor, !cursor +. layout.Layout.channel_width.(ch));
      cursor := !cursor +. layout.Layout.channel_width.(ch);
      if ch < cols then cursor := !cursor +. pitch_x
    done;
    bounds
  in
  Array.iter
    (fun (net : Layout.capnet) ->
       List.iter
         (fun (tk : Layout.trunk) ->
            let lo, hi = channel_bounds.(tk.Layout.tk_channel) in
            if tk.Layout.tk_x < lo -. eps || tk.Layout.tk_x > hi +. eps then
              out
                { rule = "trunk-in-channel";
                  detail =
                    Printf.sprintf
                      "C_%d trunk x=%.3f outside channel %d [%.3f, %.3f]"
                      tk.Layout.tk_cap tk.Layout.tk_x tk.Layout.tk_channel lo hi })
         net.Layout.cn_trunks)
    layout.Layout.nets

(* two trunks in one channel must not collide: centre distance at least
   half the sum of their bundle widths *)
let check_track_separation (layout : Layout.t) out =
  let trunks_by_channel = Hashtbl.create 16 in
  Array.iter
    (fun (net : Layout.capnet) ->
       List.iter
         (fun (tk : Layout.trunk) ->
            let prev =
              Option.value ~default:[]
                (Hashtbl.find_opt trunks_by_channel tk.Layout.tk_channel)
            in
            Hashtbl.replace trunks_by_channel tk.Layout.tk_channel (tk :: prev))
         net.Layout.cn_trunks)
    layout.Layout.nets;
  Hashtbl.iter
    (fun channel trunks ->
       let sorted =
         List.sort (fun a b -> Float.compare a.Layout.tk_x b.Layout.tk_x) trunks
       in
       let rec walk = function
         | a :: (b :: _ as rest) ->
           let width tk =
             Tech.Parallel.bundle_width layout.Layout.tech
               ~p:layout.Layout.p_of_cap.(tk.Layout.tk_cap)
           in
           let min_gap = (width a +. width b) /. 2. in
           if b.Layout.tk_x -. a.Layout.tk_x < min_gap -. 1e-9 then
             out
               { rule = "track-separation";
                 detail =
                   Printf.sprintf
                     "channel %d: trunks of C_%d and C_%d %.3f um apart, need %.3f"
                     channel a.Layout.tk_cap b.Layout.tk_cap
                     (b.Layout.tk_x -. a.Layout.tk_x) min_gap };
           walk rest
         | [ _ ] | [] -> ()
       in
       walk sorted)
    trunks_by_channel

(* every capacitor must have a routed net whose groups cover its cells *)
let check_net_coverage (layout : Layout.t) out =
  let placement = layout.Layout.placement in
  Array.iter
    (fun (net : Layout.capnet) ->
       let cap = net.Layout.cn_cap in
       if net.Layout.cn_trunks = [] then
         out
           { rule = "net-routed";
             detail = Printf.sprintf "C_%d has no trunk" cap };
       let covered =
         List.fold_left
           (fun acc (g : Group.t) -> acc + Group.size g)
           0 net.Layout.cn_groups
       in
       if covered <> placement.Placement.counts.(cap) then
         out
           { rule = "net-coverage";
             detail =
               Printf.sprintf "C_%d groups cover %d of %d cells" cap covered
                 placement.Placement.counts.(cap) })
    layout.Layout.nets

(* bundle widths recorded on wires and vias must match the plan *)
let check_parallel_consistency (layout : Layout.t) out =
  List.iter
    (fun (w : Layout.wire) ->
       if w.Layout.w_cap >= 0
          && w.Layout.w_p <> layout.Layout.p_of_cap.(w.Layout.w_cap)
       then
         out
           { rule = "parallel-consistency";
             detail =
               Printf.sprintf "C_%d wire has p=%d, plan says %d"
                 w.Layout.w_cap w.Layout.w_p
                 layout.Layout.p_of_cap.(w.Layout.w_cap) })
    layout.Layout.wires;
  List.iter
    (fun (v : Layout.via) ->
       if v.Layout.v_p <> layout.Layout.p_of_cap.(v.Layout.v_cap) then
         out
           { rule = "parallel-consistency";
             detail =
               Printf.sprintf "C_%d via has p=%d, plan says %d" v.Layout.v_cap
                 v.Layout.v_p layout.Layout.p_of_cap.(v.Layout.v_cap) })
    layout.Layout.vias

(* trunk wires must be vertical on a vertical layer; bridges horizontal *)
let check_wire_directions (layout : Layout.t) out =
  List.iter
    (fun (w : Layout.wire) ->
       let layer = Tech.Process.layer layout.Layout.tech w.Layout.w_layer in
       let vertical = Float.abs (w.Layout.w_ax -. w.Layout.w_bx) < 1e-9 in
       let horizontal = Float.abs (w.Layout.w_ay -. w.Layout.w_by) < 1e-9 in
       let zero_length = vertical && horizontal in
       let matches =
         zero_length
         ||
         match w.Layout.w_kind with
         | Layout.Trunk ->
           vertical
           || Geom.Axis.equal layer.Tech.Layer.direction Geom.Axis.Horizontal
         | Layout.Bridge | Layout.Stub -> horizontal
         (* branch = abutting fingers, top plate = via-free jog allowed
            by the 3-layer MOM stack (Sec. IV-B1) *)
         | Layout.Branch | Layout.Top -> vertical || horizontal
       in
       if not matches then
         out
           { rule = "reserved-direction";
             detail =
               Printf.sprintf "C_%d %s wire violates direction" w.Layout.w_cap
                 (match w.Layout.w_kind with
                  | Layout.Branch -> "branch"
                  | Layout.Stub -> "stub"
                  | Layout.Trunk -> "trunk"
                  | Layout.Bridge -> "bridge"
                  | Layout.Top -> "top") })
    layout.Layout.wires

let compare_violation a b =
  match String.compare a.rule b.rule with
  | 0 -> String.compare a.detail b.detail
  | c -> c

let run layout =
  Telemetry.Span.with_ ~name:"route.check" (fun () ->
      let violations = ref [] in
      let out v = violations := v :: !violations in
      check_outline layout out;
      check_trunks_in_channels layout out;
      check_track_separation layout out;
      check_net_coverage layout out;
      check_parallel_consistency layout out;
      check_wire_directions layout out;
      if Telemetry.Metrics.enabled () then
        List.iter
          (fun v ->
             Telemetry.Metrics.incr ~label:v.rule
               "route/check_violations_total")
          !violations;
      (* deterministic rule-id-sorted order, independent of hash-table and
         checker iteration order *)
      List.stable_sort compare_violation !violations)

let by_rule violations =
  let tally =
    List.fold_left
      (fun acc v ->
         match acc with
         | (rule, n) :: rest when String.equal rule v.rule ->
           (rule, n + 1) :: rest
         | acc -> (v.rule, 1) :: acc)
      [] violations
  in
  List.rev tally

let assert_clean layout =
  match run layout with
  | [] -> ()
  | violations ->
    let breakdown =
      String.concat ", "
        (List.map
           (fun (rule, n) -> Printf.sprintf "%s x%d" rule n)
           (by_rule violations))
    in
    let first = List.filteri (fun i _ -> i < 5) violations in
    invalid_arg
      (Format.asprintf "Check.assert_clean: %d violations (%s); first: %a"
         (List.length violations)
         breakdown
         (Format.pp_print_list pp_violation)
         first)
