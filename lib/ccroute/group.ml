open Ccgrid

type t = {
  cap : int;
  id : int;
  cells : Cell.t list;
  tree_edges : (Cell.t * Cell.t) list;
  col_lo : int;
  col_hi : int;
  row_lo : int;
  row_hi : int;
}

module Cellset = Set.Make (struct
    type t = Cell.t
    let compare = Cell.compare
  end)

(* BFS from [seed] over the cells in [available]; returns the visited set
   and the tree edges in visit order. *)
let bfs ~rows ~cols available seed =
  let visited = ref (Cellset.singleton seed) in
  let edges = ref [] in
  let q = Queue.create () in
  Queue.add seed q;
  while not (Queue.is_empty q) do
    let c = Queue.pop q in
    let next =
      List.filter
        (fun n -> Cellset.mem n available && not (Cellset.mem n !visited))
        (Cell.neighbors ~rows ~cols c)
    in
    List.iter
      (fun n ->
         visited := Cellset.add n !visited;
         edges := (c, n) :: !edges;
         Queue.add n q)
      next
  done;
  (!visited, List.rev !edges)

type mode =
  | Connected
  | Straight_runs

let make_group ~cap ~id cells tree_edges =
  let col_lo, col_hi, row_lo, row_hi =
    List.fold_left
      (fun (cl, ch, rl, rh) (c : Cell.t) ->
         ( Int.min cl c.Cell.col, Int.max ch c.Cell.col,
           Int.min rl c.Cell.row, Int.max rh c.Cell.row ))
      (max_int, min_int, max_int, min_int) cells
  in
  { cap; id; cells; tree_edges; col_lo; col_hi; row_lo; row_hi }

(* Split a cell set into maximal straight runs along one orientation.
   [major]/[minor] project a cell to (run key, position within run). *)
let runs_along ~major ~minor cells =
  let sorted =
    List.sort
      (fun a b ->
         match Int.compare (major a) (major b) with
         | 0 -> Int.compare (minor a) (minor b)
         | c -> c)
      cells
  in
  let finish run acc = if run = [] then acc else List.rev run :: acc in
  let rec walk run acc = function
    | [] -> finish run acc
    | c :: rest ->
      (match run with
       | prev :: _ when major prev = major c && minor c = minor prev + 1 ->
         walk (c :: run) acc rest
       | [] | _ :: _ -> walk [ c ] (finish run acc) rest)
  in
  List.rev (walk [] [] sorted)

let split_runs cells =
  let horizontal =
    runs_along
      ~major:(fun (c : Cell.t) -> c.Cell.row)
      ~minor:(fun (c : Cell.t) -> c.Cell.col)
      cells
  in
  let vertical =
    runs_along
      ~major:(fun (c : Cell.t) -> c.Cell.col)
      ~minor:(fun (c : Cell.t) -> c.Cell.row)
      cells
  in
  if List.length vertical <= List.length horizontal then vertical else horizontal

(* Chain tree edges along a straight run of cells. *)
let run_edges cells =
  let rec pair = function
    | a :: (b :: _ as rest) -> (a, b) :: pair rest
    | [ _ ] | [] -> []
  in
  pair cells

let of_placement ?(mode = Connected) (p : Placement.t) =
  let rows = p.Placement.rows and cols = p.Placement.cols in
  let next_id = ref 0 in
  let groups = ref [] in
  let emit cap cells tree_edges =
    groups := make_group ~cap ~id:!next_id cells tree_edges :: !groups;
    incr next_id
  in
  for cap = 0 to p.Placement.bits do
    let remaining = ref (Cellset.of_list (Placement.cells_of p cap)) in
    while not (Cellset.is_empty !remaining) do
      let seed = Cellset.min_elt !remaining in
      let members, tree_edges = bfs ~rows ~cols !remaining seed in
      remaining := Cellset.diff !remaining members;
      let cells = Cellset.elements members in
      match mode with
      | Connected -> emit cap cells tree_edges
      | Straight_runs ->
        List.iter (fun run -> emit cap run (run_edges run)) (split_runs cells)
    done
  done;
  List.rev !groups

let of_cap groups k = List.filter (fun g -> g.cap = k) groups
let size g = List.length g.cells

let bend_cells g =
  let horizontal = Hashtbl.create 16 and vertical = Hashtbl.create 16 in
  let record (a : Cell.t) (b : Cell.t) =
    let table = if a.Cell.row = b.Cell.row then horizontal else vertical in
    Hashtbl.replace table a ();
    Hashtbl.replace table b ()
  in
  List.iter (fun (a, b) -> record a b) g.tree_edges;
  List.filter
    (fun c -> Hashtbl.mem horizontal c && Hashtbl.mem vertical c)
    g.cells

let col_span_overlap a b = a.col_lo <= b.col_hi && b.col_lo <= a.col_hi

(* Tie-break key per Algorithm 1 line 16: distance, then closeness to the
   array bottom, then row-major determinism. *)
let pair_key (a : Cell.t) (b : Cell.t) =
  let d = abs (a.Cell.row - b.Cell.row) + abs (a.Cell.col - b.Cell.col) in
  (d, a.Cell.row + b.Cell.row, a.Cell.row, a.Cell.col, b.Cell.row, b.Cell.col)

let closest_cells a b =
  let best = ref None in
  List.iter
    (fun ca ->
       List.iter
         (fun cb ->
            let key = pair_key ca cb in
            match !best with
            | Some (_, _, best_key) when best_key <= key -> ()
            | Some _ | None -> best := Some (ca, cb, key))
         b.cells)
    a.cells;
  match !best with
  | Some (ca, cb, _) -> (ca, cb)
  | None -> invalid_arg "Group.closest_cells: empty group"

let pp ppf g =
  Format.fprintf ppf "group %d of C_%d: %d cells, cols [%d,%d], rows [%d,%d]"
    g.id g.cap (size g) g.col_lo g.col_hi g.row_lo g.row_hi
