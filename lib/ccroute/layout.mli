(** Routed layout: Step 3 of Algorithm 1 plus top-plate routing, realised
    in physical coordinates.

    Coordinate frame: origin at the bottom-left of the routed block;
    y = 0 is the driver row (the switch/driver cluster sits below the
    array, Sec. IV-B3), above it the bridge-wire region, then the cell
    array.  Vertical channels between columns widen by exactly the tracks
    they carry (including parallel-wire bundles, Sec. IV-B4).

    Wire plan per capacitor net:
    - {e branch} wires connect 4-adjacent cells along each group's BFS tree
      (M1, via-free; a bend inside a tree costs one logical via);
    - a {e stub} connects each group's attach cell to its trunk (one
      logical via at the junction);
    - {e trunk} wires run vertically in channel tracks (M3); the {e primary}
      trunk of each net continues down to the driver row;
    - a {e bridge} (M1) at the net's bridge track connects multiple trunks
      (one logical via per trunk junction);
    - the driver connects through one input via at y = 0.

    A logical via made of a [p]-wire junction counts [p^2] physical cuts
    and has resistance [R_via / p^2]. *)

open Ccgrid

type wire_kind =
  | Branch
  | Stub
  | Trunk
  | Bridge
  | Top

type wire = {
  w_cap : int;            (** capacitor id; [-2] for top-plate wires *)
  w_kind : wire_kind;
  w_layer : Tech.Layer.name;
  w_ax : float;
  w_ay : float;
  w_bx : float;
  w_by : float;           (** axis-aligned endpoints, um *)
  w_p : int;              (** parallel wires in the bundle *)
}

type via = {
  v_cap : int;
  v_x : float;
  v_y : float;
  v_p : int;              (** bundle width: the junction has [v_p^2] cuts *)
}

type attach_point = {
  ap_group : int;         (** group id *)
  ap_cell : Cell.t;
  ap_x : float;           (** trunk/track x *)
  ap_y : float;           (** row y of the attach cell *)
}

type trunk = {
  tk_cap : int;
  tk_channel : int;
  tk_track : int;
  tk_x : float;
  tk_y_low : float;
  tk_y_high : float;
  tk_attaches : attach_point list;
  tk_primary : bool;      (** reaches the driver row *)
}

type capnet = {
  cn_cap : int;
  cn_groups : Group.t list;
  cn_trunks : trunk list;
  cn_bridge_y : float option;  (** present when the net has >= 2 trunks *)
  cn_driver_x : float;
}

type t = {
  placement : Placement.t;
  tech : Tech.Process.t;
  groups : Group.t list;
  plan : Plan.t;
  p_of_cap : int array;      (** parallel-wire count per capacitor *)
  col_x : float array;       (** column centre x, length cols *)
  row_y : float array;       (** row centre y, length rows *)
  channel_width : float array; (** length cols+1 *)
  bridge_height : float;
  width : float;
  height : float;
  nets : capnet array;       (** indexed by capacitor id *)
  wires : wire list;         (** every bottom-plate wire *)
  vias : via list;           (** every bottom-plate logical via *)
  top_wires : wire list;
  top_length : float;        (** total top-plate wirelength, um *)
}

(** [route tech ?p_of_cap placement] runs group formation, Algorithm 1 and
    wire creation.  [p_of_cap] maps capacitor id to its parallel-wire
    count (>= 1); default: 1 wire everywhere.  Raises [Invalid_argument]
    on a placement with zero-cell capacitors or [p_of_cap] returning
    < 1. *)
val route : Tech.Process.t -> ?p_of_cap:(int -> int) -> Placement.t -> t

(** [msb_parallel ~bits ~p] is the policy used for the paper's tables:
    the top three MSB capacitors route with [p] parallel wires (once the
    MSB is parallelised the next bits become critical, Sec. V), the rest
    with one. *)
val msb_parallel : bits:int -> p:int -> int -> int

(** [cell_center t cell] in the routed (channel-expanded) frame. *)
val cell_center : t -> Cell.t -> Geom.Point.t

(** [wire_length w] in um. *)
val wire_length : wire -> float

(** [net t k] is the routed net of capacitor [k]. *)
val net : t -> int -> capnet
