type node = int

type t = {
  mutable labels : string array;
  mutable caps : float array;
  mutable count : int;
  mutable edge_list : (int * int * float) list;  (* reversed *)
  mutable edge_count : int;
}

let create () =
  { labels = Array.make 16 ""; caps = Array.make 16 0.; count = 0;
    edge_list = []; edge_count = 0 }

let grow t =
  if t.count = Array.length t.caps then begin
    let n = 2 * t.count in
    let labels = Array.make n "" and caps = Array.make n 0. in
    Array.blit t.labels 0 labels 0 t.count;
    Array.blit t.caps 0 caps 0 t.count;
    t.labels <- labels;
    t.caps <- caps
  end

let add_node t ~label ?(cap = 0.) () =
  if cap < 0. then invalid_arg "Rctree.add_node: negative capacitance";
  grow t;
  let n = t.count in
  t.labels.(n) <- label;
  t.caps.(n) <- cap;
  t.count <- n + 1;
  n

let check_node t n =
  if n < 0 || n >= t.count then invalid_arg "Rctree: node out of range"

let add_cap t n c =
  check_node t n;
  t.caps.(n) <- t.caps.(n) +. c

let add_edge t a b ~r =
  check_node t a;
  check_node t b;
  if a = b then invalid_arg "Rctree.add_edge: self loop";
  if r < 0. then invalid_arg "Rctree.add_edge: negative resistance";
  t.edge_list <- (a, b, r) :: t.edge_list;
  t.edge_count <- t.edge_count + 1

let wire_edge t a b ~r ~c =
  if c < 0. then invalid_arg "Rctree.wire_edge: negative capacitance";
  add_edge t a b ~r;
  add_cap t a (c /. 2.);
  add_cap t b (c /. 2.)

let num_nodes t = t.count
let num_edges t = t.edge_count

let node_cap t n =
  check_node t n;
  t.caps.(n)

let total_cap t =
  let acc = ref 0. in
  for i = 0 to t.count - 1 do
    acc := !acc +. t.caps.(i)
  done;
  !acc

let label t n =
  check_node t n;
  t.labels.(n)

let edges t = List.rev t.edge_list

let node_of_int t i =
  check_node t i;
  i
