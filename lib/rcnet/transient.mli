(** Transient simulation of an RC tree — the numerical check behind the
    Elmore-based settling model (Sec. III-B).

    The driver steps from 0 to [vstep] at t = 0 through the tree's root.
    Node voltages follow [C dv/dt = -G v + b]; we integrate with backward
    Euler, which is unconditionally stable and solvable in O(nodes) per
    step on a tree (one up-sweep eliminating leaves, one down-sweep
    back-substituting).

    Units: ohm, fF, femtoseconds — consistent with {!Rctree}. *)

type waveform = {
  times_fs : float array;
  voltages : float array array;  (** [voltages.(step).(node)] *)
}

(** [simulate tree ~root ~vstep ~dt_fs ~steps] integrates the step response.
    The root is an ideal voltage source at [vstep] for t >= 0.
    Raises [Invalid_argument] on a non-tree, [dt_fs <= 0] or
    [steps < 1]. *)
val simulate :
  Rctree.t -> root:Rctree.node -> vstep:float -> dt_fs:float -> steps:int ->
  waveform

(** [settling_time_fs tree ~root ~vstep ~tolerance ~node] is the first time
    the voltage of [node] stays within [tolerance * vstep] of [vstep]
    forever after (measured on an adaptive grid sized from the Elmore
    delay).  Raises [Invalid_argument] if the node never settles within
    the simulated horizon (50x the Elmore delay). *)
val settling_time_fs :
  Rctree.t -> root:Rctree.node -> vstep:float -> tolerance:float ->
  node:Rctree.node -> float

(** [slowest_settling_fs tree ~root ~vstep ~tolerance ~over] is the largest
    {!settling_time_fs} over the given nodes. *)
val slowest_settling_fs :
  Rctree.t -> root:Rctree.node -> vstep:float -> tolerance:float ->
  over:Rctree.node list -> float
