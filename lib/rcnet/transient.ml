type waveform = {
  times_fs : float array;
  voltages : float array array;
}

(* Oriented tree for the direct solver. *)
type solver = {
  n : int;
  root : int;
  parent : int array;
  parent_g : float array;     (* conductance to parent, 1/ohm *)
  order : int array;          (* BFS order, root first *)
  cap : float array;          (* grounded capacitance per node, fF *)
}

let min_resistance = 1e-6

let make_solver tree ~root =
  let n = Rctree.num_nodes tree in
  let adj = Array.make n [] in
  List.iter
    (fun (a, b, r) ->
       let a = (a : Rctree.node :> int) and b = (b : Rctree.node :> int) in
       let g = 1. /. Float.max r min_resistance in
       adj.(a) <- (b, g) :: adj.(a);
       adj.(b) <- (a, g) :: adj.(b))
    (Rctree.edges tree);
  if Rctree.num_edges tree <> n - 1 then
    invalid_arg "Transient: edge count <> nodes - 1 (not a tree)";
  let root = (root : Rctree.node :> int) in
  let parent = Array.make n (-2) in
  let parent_g = Array.make n 0. in
  let order = Array.make n root in
  let q = Queue.create () in
  parent.(root) <- -1;
  Queue.add root q;
  let idx = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    order.(!idx) <- u;
    incr idx;
    List.iter
      (fun (v, g) ->
         if parent.(v) = -2 then begin
           parent.(v) <- u;
           parent_g.(v) <- g;
           Queue.add v q
         end)
      adj.(u)
  done;
  if !idx <> n then invalid_arg "Transient: graph is disconnected";
  let cap =
    Array.init n (fun i -> Rctree.node_cap tree (Rctree.node_of_int tree i))
  in
  { n; root; parent; parent_g; order; cap }

(* One backward-Euler step: solve
   (C_i/dt + sum g) v_i - sum g_ij v_j = C_i/dt * v_i^prev,
   with the root clamped to [vstep], by leaf elimination. *)
let step solver ~dt_fs ~vstep v_prev v_next a b =
  let { n; root; parent; parent_g; order; cap } = solver in
  for i = 0 to n - 1 do
    a.(i) <- (cap.(i) /. dt_fs) +. (if i = root then 0. else parent_g.(i));
    b.(i) <- cap.(i) /. dt_fs *. v_prev.(i)
  done;
  (* add child conductances to the diagonal *)
  for i = 0 to n - 1 do
    let p = parent.(i) in
    if p >= 0 then a.(p) <- a.(p) +. parent_g.(i)
  done;
  (* up-sweep: eliminate nodes from the leaves towards the root *)
  for idx = n - 1 downto 1 do
    let i = order.(idx) in
    let p = parent.(i) in
    let g = parent_g.(i) in
    a.(p) <- a.(p) -. (g *. g /. a.(i));
    b.(p) <- b.(p) +. (g *. b.(i) /. a.(i))
  done;
  (* down-sweep *)
  v_next.(root) <- vstep;
  for idx = 1 to n - 1 do
    let i = order.(idx) in
    let p = parent.(i) in
    v_next.(i) <- (b.(i) +. (parent_g.(i) *. v_next.(p))) /. a.(i)
  done

let simulate tree ~root ~vstep ~dt_fs ~steps =
  if dt_fs <= 0. then invalid_arg "Transient.simulate: dt must be positive";
  if steps < 1 then invalid_arg "Transient.simulate: steps must be >= 1";
  let solver = make_solver tree ~root in
  let n = solver.n in
  let a = Array.make n 0. and b = Array.make n 0. in
  let v = Array.make n 0. in
  v.(solver.root) <- vstep;
  let times = Array.make (steps + 1) 0. in
  let voltages = Array.make (steps + 1) (Array.copy v) in
  for s = 1 to steps do
    let next = Array.make n 0. in
    step solver ~dt_fs ~vstep v next a b;
    Array.blit next 0 v 0 n;
    times.(s) <- float_of_int s *. dt_fs;
    voltages.(s) <- Array.copy v
  done;
  Telemetry.Metrics.incr ~n:steps "rcnet/transient_steps_total";
  { times_fs = times; voltages }

let settling_time_fs tree ~root ~vstep ~tolerance ~node =
  if tolerance <= 0. then
    invalid_arg "Transient.settling_time_fs: tolerance must be positive";
  let elmore = Elmore.delay_to tree ~root node in
  let scale = Float.max elmore 1. in
  let dt_fs = scale /. 25. in
  let solver = make_solver tree ~root in
  let n = solver.n in
  let a = Array.make n 0. and b = Array.make n 0. in
  let v = Array.make n 0. in
  v.(solver.root) <- vstep;
  let target = Float.abs (tolerance *. vstep) in
  let node_i = (node : Rctree.node :> int) in
  let max_steps = 50 * 25 in
  let rec advance s =
    if s > max_steps then
      invalid_arg "Transient.settling_time_fs: did not settle within horizon"
    else begin
      let next = Array.make n 0. in
      step solver ~dt_fs ~vstep v next a b;
      Array.blit next 0 v 0 n;
      Telemetry.Metrics.incr "rcnet/transient_steps_total";
      if Float.abs (vstep -. v.(node_i)) <= target then
        float_of_int s *. dt_fs
      else advance (s + 1)
    end
  in
  advance 1

let slowest_settling_fs tree ~root ~vstep ~tolerance ~over =
  List.fold_left
    (fun acc node ->
       Float.max acc (settling_time_fs tree ~root ~vstep ~tolerance ~node))
    0. over
