(* Orient the tree away from the root with a BFS, then accumulate subtree
   capacitances bottom-up and delays top-down. *)

type oriented = {
  parent : int array;          (* -1 for root *)
  parent_r : float array;      (* resistance of edge to parent *)
  parent_edge : int array;     (* insertion index of the edge to parent *)
  order : int array;           (* BFS order, root first *)
}

let orient tree ~root =
  let n = Rctree.num_nodes tree in
  let adj = Array.make n [] in
  List.iteri
    (fun i (a, b, r) ->
       let a = (a : Rctree.node :> int) and b = (b : Rctree.node :> int) in
       adj.(a) <- (b, r, i) :: adj.(a);
       adj.(b) <- (a, r, i) :: adj.(b))
    (Rctree.edges tree);
  if Rctree.num_edges tree <> n - 1 then
    invalid_arg "Elmore: edge count <> nodes - 1 (not a tree)";
  let root = (root : Rctree.node :> int) in
  let parent = Array.make n (-2) in
  let parent_r = Array.make n 0. in
  let parent_edge = Array.make n (-1) in
  let order = Array.make n root in
  let q = Queue.create () in
  parent.(root) <- -1;
  Queue.add root q;
  let idx = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    order.(!idx) <- u;
    incr idx;
    List.iter
      (fun (v, r, i) ->
         if parent.(v) = -2 then begin
           parent.(v) <- u;
           parent_r.(v) <- r;
           parent_edge.(v) <- i;
           Queue.add v q
         end)
      adj.(u)
  done;
  if !idx <> n then invalid_arg "Elmore: graph is disconnected";
  { parent; parent_r; parent_edge; order }

let delays tree ~root =
  let n = Rctree.num_nodes tree in
  if Telemetry.Metrics.enabled () then begin
    Telemetry.Metrics.incr "rcnet/elmore_solves_total";
    Telemetry.Metrics.observe "rcnet/nodes" (float_of_int n);
    Telemetry.Metrics.observe "rcnet/edges"
      (float_of_int (Rctree.num_edges tree))
  end;
  let { parent; parent_r; order; _ } = orient tree ~root in
  let subtree = Array.init n (fun i -> Rctree.node_cap tree (Rctree.node_of_int tree i)) in
  (* bottom-up: reverse BFS order *)
  for i = n - 1 downto 1 do
    let u = order.(i) in
    if parent.(u) >= 0 then subtree.(parent.(u)) <- subtree.(parent.(u)) +. subtree.(u)
  done;
  let delay = Array.make n 0. in
  for i = 1 to n - 1 do
    let u = order.(i) in
    delay.(u) <- delay.(parent.(u)) +. (parent_r.(u) *. subtree.(u))
  done;
  delay

let delay_to tree ~root n = (delays tree ~root).((n : Rctree.node :> int))

let max_delay tree ~root ~over =
  let d = delays tree ~root in
  match over with
  | [] -> Array.fold_left Float.max 0. d
  | nodes ->
    List.fold_left
      (fun acc n -> Float.max acc d.((n : Rctree.node :> int)))
      0. nodes

let path_resistance tree ~root n =
  let { parent; parent_r; _ } = orient tree ~root in
  let rec walk u acc =
    if parent.(u) < 0 then acc else walk parent.(u) (acc +. parent_r.(u))
  in
  walk ((n : Rctree.node :> int)) 0.

type contribution = {
  edge : int;
  upstream : Rctree.node;
  downstream : Rctree.node;
  r : float;
  c_downstream : float;
  delay : float;
}

let breakdown tree ~root n =
  let num = Rctree.num_nodes tree in
  let { parent; parent_r; parent_edge; order } = orient tree ~root in
  let subtree =
    Array.init num (fun i -> Rctree.node_cap tree (Rctree.node_of_int tree i))
  in
  for i = num - 1 downto 1 do
    let u = order.(i) in
    if parent.(u) >= 0 then
      subtree.(parent.(u)) <- subtree.(parent.(u)) +. subtree.(u)
  done;
  (* the root->n path, root-first; each edge contributes R_e * C_subtree(e) *)
  let rec walk u acc =
    if parent.(u) < 0 then acc
    else
      let c =
        { edge = parent_edge.(u);
          upstream = Rctree.node_of_int tree parent.(u);
          downstream = Rctree.node_of_int tree u;
          r = parent_r.(u);
          c_downstream = subtree.(u);
          delay = parent_r.(u) *. subtree.(u) }
      in
      walk parent.(u) (c :: acc)
  in
  walk ((n : Rctree.node :> int)) []
