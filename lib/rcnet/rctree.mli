(** RC trees for interconnect delay analysis.

    Units: resistance in ohm, capacitance in fF, so a delay of
    1 ohm * 1 fF = 1 femtosecond; {!Elmore} reports femtoseconds.

    The builder is mutable and append-only.  The structure must be a tree
    (checked by {!Elmore.delays}); parallel-wire meshes are collapsed to
    equivalent single edges before they reach here (Sec. IV-B4: p wires
    divide wire resistance by p and via resistance by p^2, and multiply
    wire capacitance by p). *)

type t
type node = private int

val create : unit -> t

(** [add_node t ~label ?cap ()] appends a node with grounded capacitance
    [cap] (fF, default 0) and returns it.  [label] aids debugging. *)
val add_node : t -> label:string -> ?cap:float -> unit -> node

(** [add_cap t n c] adds [c] fF at node [n]. *)
val add_cap : t -> node -> float -> unit

(** [add_edge t a b ~r] connects two nodes with resistance [r] >= 0 ohm.
    Raises [Invalid_argument] on negative resistance or equal endpoints. *)
val add_edge : t -> node -> node -> r:float -> unit

(** [wire_edge t a b ~r ~c] adds an edge of resistance [r] carrying a total
    wire capacitance [c], split half to each endpoint (pi model). *)
val wire_edge : t -> node -> node -> r:float -> c:float -> unit

val num_nodes : t -> int
val num_edges : t -> int

(** [node_cap t n] current grounded capacitance at [n], fF. *)
val node_cap : t -> node -> float

(** [total_cap t] sum of node capacitances, fF. *)
val total_cap : t -> float

(** [label t n]. *)
val label : t -> node -> string

(** [edges t] as [(a, b, r)] triples in insertion order. *)
val edges : t -> (node * node * float) list

(** [node_of_int t i] casts a valid index back to a node; raises
    [Invalid_argument] when out of range. *)
val node_of_int : t -> int -> node
