(** Elmore delay of an RC tree (Sec. III-B).

    The Elmore delay from the root to node [n] is
    [sum over edges e on the root->n path of R_e * C_downstream(e)], the
    first moment of the impulse response — the standard interconnect delay
    estimate [16]. *)

(** [delays tree ~root] computes the Elmore delay (femtoseconds: ohm x fF)
    from [root] to every node, indexed by node.  Raises [Invalid_argument]
    when the graph is not a tree spanning all nodes (cycle or
    disconnected). *)
val delays : Rctree.t -> root:Rctree.node -> float array

(** [delay_to tree ~root n]. *)
val delay_to : Rctree.t -> root:Rctree.node -> Rctree.node -> float

(** [max_delay tree ~root ~over] is the maximum delay over the given
    nodes; over all nodes when [over] is empty. *)
val max_delay : Rctree.t -> root:Rctree.node -> over:Rctree.node list -> float

(** [path_resistance tree ~root n] is the total resistance (ohm) along the
    root->n path. *)
val path_resistance : Rctree.t -> root:Rctree.node -> Rctree.node -> float

(** One edge's share of an Elmore delay: the path edge's resistance times
    the capacitance of the subtree hanging below it. *)
type contribution = {
  edge : int;                (** index into {!Rctree.edges} insertion order *)
  upstream : Rctree.node;    (** endpoint closer to the root *)
  downstream : Rctree.node;
  r : float;                 (** ohm *)
  c_downstream : float;      (** fF: total capacitance below the edge *)
  delay : float;             (** [r *. c_downstream], femtoseconds *)
}

(** [breakdown tree ~root n] is the per-edge decomposition of the Elmore
    delay from [root] to [n]: the edges of the root->n path in root-first
    order, whose [delay] fields sum {e exactly} (up to float association)
    to [delay_to tree ~root n].  This is the attribution primitive behind
    [ccgen explain]: map [edge] back to the physical element that created
    it to name each wire segment's and via stack's share of the worst-bit
    delay.  Same preconditions as {!delays}. *)
val breakdown :
  Rctree.t -> root:Rctree.node -> Rctree.node -> contribution list
