(** Elmore delay of an RC tree (Sec. III-B).

    The Elmore delay from the root to node [n] is
    [sum over edges e on the root->n path of R_e * C_downstream(e)], the
    first moment of the impulse response — the standard interconnect delay
    estimate [16]. *)

(** [delays tree ~root] computes the Elmore delay (femtoseconds: ohm x fF)
    from [root] to every node, indexed by node.  Raises [Invalid_argument]
    when the graph is not a tree spanning all nodes (cycle or
    disconnected). *)
val delays : Rctree.t -> root:Rctree.node -> float array

(** [delay_to tree ~root n]. *)
val delay_to : Rctree.t -> root:Rctree.node -> Rctree.node -> float

(** [max_delay tree ~root ~over] is the maximum delay over the given
    nodes; over all nodes when [over] is empty. *)
val max_delay : Rctree.t -> root:Rctree.node -> over:Rctree.node list -> float

(** [path_resistance tree ~root n] is the total resistance (ohm) along the
    root->n path. *)
val path_resistance : Rctree.t -> root:Rctree.node -> Rctree.node -> float
