(** Text reports reproducing the paper's tables and figures. *)

(** [table1 rows] formats Table I (electrical metrics) given, per bit
    count, the four method results in {!Sweep.paper_methods} + BC order. *)
val table1 : (int * Flow.result list) list -> string

(** [table2 rows] formats Table II (area, |DNL|/|INL|, f3dB). *)
val table2 : (int * Flow.result list) list -> string

(** [table3 rows] formats Table III (place+route runtimes) given
    [(bits, spiral_seconds, bc_seconds)] triples. *)
val table3 : (int * float * float) list -> string

(** [fig6a series] formats the parallel-wire improvement factors:
    [(bits, (k, f3db_mhz) list)] with factors normalised to k = 1. *)
val fig6a : (int * (int * float) list) list -> string

(** [fig6b rows] formats f3dB of every method normalised to spiral. *)
val fig6b : (int * Flow.result list) list -> string

(** [summary r] is a one-result human-readable block (used by examples and
    the CLI). *)
val summary : Flow.result -> string
