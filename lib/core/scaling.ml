(* Cross-bit-width scaling probe: run the full flow (plus a Monte-Carlo
   stage) over a ladder of resolutions, collect per-stage wall/alloc
   series and the scheduler summary, and fit per-stage log-log power-law
   growth exponents against the unit-cell count.  An exponent near 1 is
   linear in cells, near 2 quadratic — the refactor-target signal the
   memscale ratio tables (bench memscale) could only approximate with a
   single two-point ratio. *)

type point = {
  p_bits : int;
  p_cells : int;                          (* placement rows * cols *)
  p_stage_s : (string * float) list;      (* flow stages + "mc" + "total" *)
  p_stage_alloc_mb : (string * float) list;
  p_sched : Par.Sched.summary;
  p_result : Flow.result;
}

type fit = {
  f_stage : string;
  f_exponent : float;
  f_r2 : float;
}

type t = {
  points : point list;       (* ladder order *)
  fits : fit list;           (* stage order of the first point *)
}

(* Least-squares slope of log y against log x.  Times are floored at a
   nanosecond so a stage fast enough to read 0.0 s never feeds log(0)
   into the regression. *)
let fit_loglog pairs =
  let pts =
    List.filter_map
      (fun (x, y) ->
         if Float.is_nan x || Float.is_nan y || x <= 0. then None
         else Some (Float.log x, Float.log (Float.max y 1e-9)))
      pairs
  in
  let n = List.length pts in
  let distinct_x = List.sort_uniq Float.compare (List.map fst pts) in
  if n < 2 || List.length distinct_x < 2 then None
  else begin
    let nf = float_of_int n in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0. pts in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0. pts in
    let mx = sx /. nf and my = sy /. nf in
    let sxx, sxy, syy =
      List.fold_left
        (fun (xx, xy, yy) (x, y) ->
           let dx = x -. mx and dy = y -. my in
           (xx +. (dx *. dx), xy +. (dx *. dy), yy +. (dy *. dy)))
        (0., 0., 0.) pts
    in
    let slope = sxy /. sxx in
    (* r2 = explained variance; a flat series (syy = 0) is a perfect fit
       of slope 0, not a divide-by-zero. *)
    let r2 = if syy <= 0. then 1. else sxy *. sxy /. (sxx *. syy) in
    Some (slope, r2)
  end

let cells (placement : Ccgrid.Placement.t) =
  placement.Ccgrid.Placement.rows * placement.Ccgrid.Placement.cols

(* One rung of the ladder: full flow + Monte-Carlo with GC sampling and
   scheduler recording on.  Memory sampling is forced on (the alloc
   series is half the point); scheduler recording is only observed here —
   the caller decides whether it is enabled (ccgen scale turns it on). *)
let probe ~tech ~style_of_bits ~trials ~seed ?jobs bits =
  let style = style_of_bits bits in
  let (r, mc_s, mc_mb), batches =
    Par.Sched.collect (fun () ->
        Telemetry.Memory.with_enabled true (fun () ->
            let r = Flow.run ~tech ~bits style in
            let s = Telemetry.Memory.start () in
            let t0 = Telemetry.Clock.now_ns () in
            let (_ : Dacmodel.Montecarlo.t) =
              Dacmodel.Montecarlo.run tech ~seed ?jobs ~trials
                r.Flow.placement
            in
            let mc_s = Telemetry.Clock.since_s t0 in
            let mc_mb =
              match s with
              | Some s ->
                Telemetry.Memory.allocated_mb (Telemetry.Memory.finish s)
              | None -> Float.nan
            in
            (r, mc_s, mc_mb)))
  in
  let tl = r.Flow.telemetry in
  let stage_s =
    tl.Telemetry.Summary.stages
    @ [ ("mc", mc_s); ("total", tl.Telemetry.Summary.total_s +. mc_s) ]
  in
  let stage_alloc_mb =
    List.map
      (fun (name, d) -> (name, Telemetry.Memory.allocated_mb d))
      tl.Telemetry.Summary.mem_stages
    @ [ ("mc", mc_mb);
        ( "total",
          match tl.Telemetry.Summary.mem_total with
          | Some d -> Telemetry.Memory.allocated_mb d +. mc_mb
          | None -> Float.nan ) ]
  in
  { p_bits = bits;
    p_cells = cells r.Flow.placement;
    p_stage_s = stage_s;
    p_stage_alloc_mb = stage_alloc_mb;
    p_sched = Par.Sched.summarize batches;
    p_result = r }

let fits_of_points points =
  match points with
  | [] -> []
  | first :: _ ->
    List.filter_map
      (fun (stage, _) ->
         let pairs =
           List.map
             (fun p ->
                ( float_of_int p.p_cells,
                  Option.value ~default:Float.nan
                    (List.assoc_opt stage p.p_stage_s) ))
             points
         in
         match fit_loglog pairs with
         | None -> None
         | Some (exponent, r2) ->
           Some { f_stage = stage; f_exponent = exponent; f_r2 = r2 })
      first.p_stage_s

let default_style_of_bits _ = Ccplace.Style.Spiral

let run ?(tech = Tech.Process.finfet_12nm)
    ?(style_of_bits = default_style_of_bits) ?(trials = 100) ?(seed = 1)
    ?jobs bits_list =
  if bits_list = [] then invalid_arg "Scaling.run: empty bit-width ladder";
  let points =
    List.map (probe ~tech ~style_of_bits ~trials ~seed ?jobs) bits_list
  in
  { points; fits = fits_of_points points }

let exponents t =
  List.map (fun f -> (f.f_stage, f.f_exponent)) t.fits

let sched_totals t =
  (* fold the per-point summaries into one ladder-wide summary; the
     per-batch lists are gone by now, so combine the summary fields
     directly (weighted mean for utilization, max for depth/imbalance) *)
  let open Par.Sched in
  List.fold_left
    (fun acc p ->
       let s = p.p_sched in
       let cap a = a.busy_s /. Float.max a.mean_utilization 1e-9 in
       let capacity =
         (if Float.is_nan acc.mean_utilization then 0. else cap acc)
         +. (if Float.is_nan s.mean_utilization then 0. else cap s)
       in
       let busy = acc.busy_s +. s.busy_s in
       { batches = acc.batches + s.batches;
         chunks = acc.chunks + s.chunks;
         caller_chunks = acc.caller_chunks + s.caller_chunks;
         items = acc.items + s.items;
         wall_s = acc.wall_s +. s.wall_s;
         busy_s = busy;
         caller_blocked_s = acc.caller_blocked_s +. s.caller_blocked_s;
         max_queue_depth = max acc.max_queue_depth s.max_queue_depth;
         mean_utilization =
           (if capacity > 0. then Float.min 1. (busy /. capacity)
            else Float.nan);
         worst_imbalance =
           (if Float.is_nan s.worst_imbalance then acc.worst_imbalance
            else if Float.is_nan acc.worst_imbalance then s.worst_imbalance
            else Float.max acc.worst_imbalance s.worst_imbalance) })
    (Par.Sched.summarize []) t.points

let point_to_json p =
  let table kvs =
    Telemetry.Json.Obj
      (List.map (fun (k, v) -> (k, Telemetry.Json.Num v)) kvs)
  in
  Telemetry.Json.Obj
    [ ("bits", Telemetry.Json.Num (float_of_int p.p_bits));
      ("cells", Telemetry.Json.Num (float_of_int p.p_cells));
      ("stage_s", table p.p_stage_s);
      ("stage_alloc_mb", table p.p_stage_alloc_mb);
      ("sched", Par.Sched.summary_to_json p.p_sched);
      ("f3db_mhz", Telemetry.Json.Num p.p_result.Flow.f3db_mhz);
      ("max_inl", Telemetry.Json.Num p.p_result.Flow.max_inl) ]

let fit_to_json f =
  Telemetry.Json.Obj
    [ ("stage", Telemetry.Json.Str f.f_stage);
      ("exponent", Telemetry.Json.Num f.f_exponent);
      ("r2", Telemetry.Json.Num f.f_r2) ]

let to_json t =
  Telemetry.Json.Obj
    [ ("version", Telemetry.Json.Num 1.);
      ("points", Telemetry.Json.Arr (List.map point_to_json t.points));
      ("fits", Telemetry.Json.Arr (List.map fit_to_json t.fits));
      ("sched", Par.Sched.summary_to_json (sched_totals t)) ]

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "%-10s" "stage";
  List.iter
    (fun p -> Format.fprintf ppf " %11s" (Printf.sprintf "b%d ms" p.p_bits))
    t.points;
  Format.fprintf ppf " %9s %6s@," "exponent" "r2";
  List.iter
    (fun f ->
       Format.fprintf ppf "%-10s" f.f_stage;
       List.iter
         (fun p ->
            Format.fprintf ppf " %11.2f"
              (1e3
               *. Option.value ~default:Float.nan
                    (List.assoc_opt f.f_stage p.p_stage_s)))
         t.points;
       Format.fprintf ppf " %9.2f %6.2f@," f.f_exponent f.f_r2)
    t.fits;
  Format.fprintf ppf "cells:    ";
  List.iter
    (fun p -> Format.fprintf ppf " %11d" p.p_cells)
    t.points;
  Format.fprintf ppf "@,sched: %a@]" Par.Sched.pp_summary (sched_totals t)
