let buf_table f =
  let buf = Buffer.create 1024 in
  f buf;
  Buffer.contents buf

let method_label (r : Flow.result) = Ccplace.Style.label r.Flow.style

let critical (r : Flow.result) =
  r.Flow.parasitics.Extract.Parasitics.per_bit.(r.Flow.critical_bit)

let table1 rows =
  buf_table (fun buf ->
      Buffer.add_string buf
        "Table I: CC array electrical metrics (Cu = 5 fF)\n";
      Buffer.add_string buf
        (Printf.sprintf "%-5s %-5s %10s %10s %10s %8s %9s %12s %12s\n"
           "bits" "mthd" "sumCTS fF" "sumCw fF" "sumCBB fF" "sumNV"
           "sumL um" "RV kohm" "Rtot kohm");
      List.iter
        (fun (bits, results) ->
           List.iter
             (fun (r : Flow.result) ->
                let p = r.Flow.parasitics in
                let c = critical r in
                Buffer.add_string buf
                  (Printf.sprintf
                     "%-5d %-5s %10.3f %10.2f %10.2f %8d %9.0f %12.4f %12.4f\n"
                     bits (method_label r)
                     p.Extract.Parasitics.total_top_cap
                     p.Extract.Parasitics.total_wire_cap
                     p.Extract.Parasitics.total_coupling_cap
                     p.Extract.Parasitics.total_via_cuts
                     p.Extract.Parasitics.total_wirelength
                     (c.Extract.Parasitics.bm_via_resistance /. 1000.)
                     (Extract.Parasitics.total_resistance c /. 1000.)))
             results;
           Buffer.add_char buf '\n')
        rows)

let table2 rows =
  buf_table (fun buf ->
      Buffer.add_string buf
        "Table II: CC array performance metrics (Cu = 5 fF)\n";
      Buffer.add_string buf
        (Printf.sprintf "%-5s %-5s %12s %10s %10s %12s\n" "bits" "mthd"
           "Area um^2" "|DNL| LSB" "|INL| LSB" "f3dB MHz");
      List.iter
        (fun (bits, results) ->
           List.iter
             (fun (r : Flow.result) ->
                Buffer.add_string buf
                  (Printf.sprintf "%-5d %-5s %12.0f %10.3f %10.3f %12.1f\n"
                     bits (method_label r) r.Flow.area r.Flow.max_dnl
                     r.Flow.max_inl r.Flow.f3db_mhz))
             results;
           Buffer.add_char buf '\n')
        rows)

let table3 rows =
  buf_table (fun buf ->
      Buffer.add_string buf
        "Table III: runtimes of the proposed CC layout algorithms\n";
      Buffer.add_string buf
        (Printf.sprintf "%-7s %12s %12s\n" "bits" "Spiral s" "BC s");
      List.iter
        (fun (bits, spiral_s, bc_s) ->
           Buffer.add_string buf
             (Printf.sprintf "%-7d %12.4f %12.4f\n" bits spiral_s bc_s))
        rows)

let fig6a series =
  buf_table (fun buf ->
      Buffer.add_string buf
        "Fig. 6a: f3dB improvement factor vs parallel wires (spiral)\n";
      List.iter
        (fun (bits, points) ->
           let base =
             match points with
             | (_, mhz) :: _ -> mhz
             | [] -> 1.
           in
           Buffer.add_string buf (Printf.sprintf "%d-bit: " bits);
           List.iter
             (fun (k, mhz) ->
                Buffer.add_string buf
                  (Printf.sprintf "k=%d:%.2fx " k
                     (Dacmodel.Speed.improvement_factor ~base_mhz:base ~mhz)))
             points;
           Buffer.add_char buf '\n')
        series)

let fig6b rows =
  buf_table (fun buf ->
      Buffer.add_string buf "Fig. 6b: f3dB normalised to spiral\n";
      List.iter
        (fun (bits, results) ->
           let spiral =
             List.find_opt
               (fun (r : Flow.result) ->
                  Ccplace.Style.equal r.Flow.style Ccplace.Style.Spiral)
               results
           in
           let base =
             match spiral with
             | Some r -> r.Flow.f3db_mhz
             | None -> 1.
           in
           Buffer.add_string buf (Printf.sprintf "%d-bit: " bits);
           List.iter
             (fun (r : Flow.result) ->
                Buffer.add_string buf
                  (Printf.sprintf "%s:%.4f " (method_label r)
                     (r.Flow.f3db_mhz /. base)))
             results;
           Buffer.add_char buf '\n')
        rows)

let summary (r : Flow.result) =
  let p = r.Flow.parasitics in
  let c = critical r in
  Printf.sprintf
    "%s, %d-bit (%dx%d)\n\
    \  area            : %.0f um^2\n\
    \  |INL| / |DNL|   : %.3f / %.3f LSB\n\
    \  f3dB            : %.1f MHz (critical bit C_%d, tau = %.1f ps)\n\
    \  sum C^TS        : %.3f fF\n\
    \  sum C^wire      : %.2f fF\n\
    \  sum C^BB        : %.2f fF\n\
    \  vias / length   : %d cuts / %.0f um\n\
    \  critical R_V/R  : %.1f / %.1f ohm\n\
    \  place+route     : %.4f s\n"
    r.Flow.placement.Ccgrid.Placement.style_name
    r.Flow.bits r.Flow.placement.Ccgrid.Placement.rows
    r.Flow.placement.Ccgrid.Placement.cols r.Flow.area r.Flow.max_inl
    r.Flow.max_dnl r.Flow.f3db_mhz r.Flow.critical_bit (r.Flow.tau_fs /. 1000.)
    p.Extract.Parasitics.total_top_cap p.Extract.Parasitics.total_wire_cap
    p.Extract.Parasitics.total_coupling_cap p.Extract.Parasitics.total_via_cuts
    p.Extract.Parasitics.total_wirelength
    c.Extract.Parasitics.bm_via_resistance
    (Extract.Parasitics.total_resistance c)
    r.Flow.elapsed_place_route_s
