let metrics_header =
  "bits,method,style,area_um2,max_inl_lsb,max_dnl_lsb,f3db_mhz,tau_fs,\
   critical_bit,sum_cts_ff,sum_cwire_ff,sum_cbb_ff,sum_nv,sum_l_um,\
   rv_critical_ohm,rtotal_critical_ohm,place_route_s"

(* style names like block-chess(core=6,g=4) carry commas *)
let sanitize name =
  String.map (fun c -> if c = ',' then ';' else c) name

let metrics_rows rows =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf metrics_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun (bits, results) ->
       List.iter
         (fun (r : Flow.result) ->
            let p = r.Flow.parasitics in
            let c = p.Extract.Parasitics.per_bit.(r.Flow.critical_bit) in
            Buffer.add_string buf
              (Printf.sprintf
                 "%d,%s,%s,%.2f,%.6f,%.6f,%.3f,%.1f,%d,%.4f,%.3f,%.3f,%d,%.1f,%.2f,%.2f,%.6f\n"
                 bits
                 (Ccplace.Style.label r.Flow.style)
                 (sanitize (Ccplace.Style.name r.Flow.style))
                 r.Flow.area r.Flow.max_inl r.Flow.max_dnl r.Flow.f3db_mhz
                 r.Flow.tau_fs r.Flow.critical_bit
                 p.Extract.Parasitics.total_top_cap
                 p.Extract.Parasitics.total_wire_cap
                 p.Extract.Parasitics.total_coupling_cap
                 p.Extract.Parasitics.total_via_cuts
                 p.Extract.Parasitics.total_wirelength
                 c.Extract.Parasitics.bm_via_resistance
                 (Extract.Parasitics.total_resistance c)
                 r.Flow.elapsed_place_route_s))
         results)
    rows;
  Buffer.contents buf

let parallel_sweep_csv series =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "bits,k,f3db_mhz,improvement\n";
  List.iter
    (fun (bits, points) ->
       let base =
         match points with
         | (_, f) :: _ -> f
         | [] -> 1.
       in
       List.iter
         (fun (k, f) ->
            Buffer.add_string buf
              (Printf.sprintf "%d,%d,%.3f,%.4f\n" bits k f (f /. base)))
         points)
    series;
  Buffer.contents buf

let write ~path contents =
  let oc = open_out path in
  (try output_string oc contents
   with e ->
     close_out oc;
     raise e);
  close_out oc
