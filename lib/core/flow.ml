let log_src = Logs.Src.create "ccdac.flow" ~doc:"CC layout flow"

module Log = (val Logs.src_log log_src : Logs.LOG)

type result = {
  style : Ccplace.Style.t;
  bits : int;
  tech : Tech.Process.t;
  placement : Ccgrid.Placement.t;
  layout : Ccroute.Layout.t;
  parasitics : Extract.Parasitics.t;
  nonlinearity : Dacmodel.Nonlinearity.t;
  max_inl : float;
  max_dnl : float;
  tau_fs : float;
  f3db_mhz : float;
  critical_bit : int;
  area : float;
  telemetry : Telemetry.Summary.t;
  elapsed_place_route_s : float;
}

let elapsed_place_route_s r = r.elapsed_place_route_s

let default_parallel ~bits style =
  match style with
  | Ccplace.Style.Spiral | Ccplace.Style.Block_chess _ ->
    Ccroute.Layout.msb_parallel ~bits ~p:2
  | Ccplace.Style.Chessboard | Ccplace.Style.Rowwise -> fun _ -> 1

(* One flow stage: a span named after the stage plus the per-stage wall
   time gauge, both on the monotonic clock. *)
let stage ?(attrs = []) name f =
  let t0 = Telemetry.Clock.now_ns () in
  Telemetry.Span.with_ ~attrs ~name (fun () ->
      Fun.protect
        ~finally:(fun () ->
          Telemetry.Metrics.set ~label:name "flow/stage_seconds"
            (Telemetry.Clock.since_s t0))
        f)

(* The verification gate: nothing leaves place-and-route for extraction
   unless the registry linter signs off on tech, placement and layout.
   Rejection raises [Verify.Engine.Rejected] carrying every diagnostic. *)
let verify_layout ~what (layout : Ccroute.Layout.t) =
  let t0 = Telemetry.Clock.now_ns () in
  let diags = Verify.Engine.check_artifacts layout in
  Log.debug (fun m ->
      m "%s: verification %.3f ms (%d diagnostics)" what
        (1e3 *. Telemetry.Clock.since_s t0)
        (List.length diags));
  Verify.Engine.assert_clean ~what diags

(* The LVS gate: whole-layout connectivity extraction against the
   intended netlist.  Runs after the rule linter (and, like it, outside
   the Table III place+route clock); a defect raises
   [Verify.Engine.Rejected] through the same reporting path. *)
let lvs_layout ~what layout =
  Verify.Engine.assert_clean ~what (Lvs.Check.check layout)

let place_route ?(tech = Tech.Process.finfet_12nm) ?parallel ?(verify = true)
    ~bits style =
  let parallel =
    Option.value parallel ~default:(default_parallel ~bits style)
  in
  let t0 = Telemetry.Clock.now_ns () in
  let placement = stage "place" (fun () -> Ccplace.Style.place ~bits style) in
  let t_place = Telemetry.Clock.now_ns () in
  let layout =
    stage "route" (fun () ->
        Ccroute.Layout.route tech ~p_of_cap:parallel placement)
  in
  (* Table III measurement: the clock stops before the verification gate
     runs, so linting never skews place+route timings. *)
  let t1 = Telemetry.Clock.now_ns () in
  if verify then begin
    let what = Printf.sprintf "%s %d-bit" (Ccplace.Style.name style) bits in
    stage "verify" (fun () -> verify_layout ~what layout);
    stage "lvs" (fun () -> lvs_layout ~what layout)
  end;
  Log.debug (fun m ->
      m "%s %d-bit: place %.3f ms, route %.3f ms (%d groups, %d tracks)"
        (Ccplace.Style.name style) bits
        (1e-6 *. Int64.to_float (Int64.sub t_place t0))
        (1e-6 *. Int64.to_float (Int64.sub t1 t_place))
        (List.length layout.Ccroute.Layout.groups)
        (Ccroute.Plan.total_tracks layout.Ccroute.Layout.plan));
  (layout, Telemetry.Clock.to_s (Int64.sub t1 t0))

(* analysis shared by [run] and [run_placement] *)
let analyze_layout ~tech ?sign_mode ?theta ~style ~elapsed layout =
  let placement = layout.Ccroute.Layout.placement in
  let bits = placement.Ccgrid.Placement.bits in
  let t0 = Telemetry.Clock.now_ns () in
  let parasitics =
    stage "extract" (fun () -> Extract.Parasitics.extract layout)
  in
  let nonlinearity =
    stage "analyse" (fun () ->
        Dacmodel.Nonlinearity.analyze tech ?theta ?sign_mode
          ~top_parasitic:parasitics.Extract.Parasitics.total_top_cap placement)
  in
  let tau_fs = parasitics.Extract.Parasitics.critical_elmore_fs in
  Log.debug (fun m ->
      m "%s %d-bit: extraction + nonlinearity %.3f ms (critical C_%d, tau %.1f ps)"
        (Ccplace.Style.name style) bits
        (1e3 *. Telemetry.Clock.since_s t0)
        parasitics.Extract.Parasitics.critical_bit (tau_fs /. 1e3));
  { style;
    bits;
    tech;
    placement;
    layout;
    parasitics;
    nonlinearity;
    max_inl = nonlinearity.Dacmodel.Nonlinearity.max_abs_inl;
    max_dnl = nonlinearity.Dacmodel.Nonlinearity.max_abs_dnl;
    tau_fs;
    f3db_mhz = Dacmodel.Speed.f3db_mhz ~bits ~tau_fs;
    critical_bit = parasitics.Extract.Parasitics.critical_bit;
    area = parasitics.Extract.Parasitics.area;
    telemetry = Telemetry.Summary.empty;
    elapsed_place_route_s = elapsed }

(* Record one flow invocation: fresh metric scope + span collector around
   [f], then derive the compatibility runtime from the stage table so
   [elapsed_place_route_s] is exactly place + route — the verification
   gate and the analysis stages can never leak into it. *)
let recorded ~attrs f =
  let r, telemetry = Telemetry.Summary.record ~attrs ~name:"flow" f in
  { r with
    telemetry;
    elapsed_place_route_s = Telemetry.Summary.place_route_seconds telemetry }

let run ?(tech = Tech.Process.finfet_12nm) ?parallel ?verify ?sign_mode ?theta
    ~bits style =
  recorded
    ~attrs:
      [ ("style", Telemetry.Span.Str (Ccplace.Style.name style));
        ("bits", Telemetry.Span.Int bits) ]
    (fun () ->
       Telemetry.Metrics.incr "flow/runs_total";
       let layout, elapsed = place_route ~tech ?parallel ?verify ~bits style in
       analyze_layout ~tech ?sign_mode ?theta ~style ~elapsed layout)

let run_placement ?(tech = Tech.Process.finfet_12nm) ?parallel
    ?(verify = true) ?sign_mode ?theta ?(style = Ccplace.Style.Spiral)
    placement =
  let bits = placement.Ccgrid.Placement.bits in
  let expected =
    Ccgrid.Weights.scale (Ccgrid.Weights.unit_counts ~bits)
      ~by:placement.Ccgrid.Placement.unit_multiplier
  in
  if placement.Ccgrid.Placement.counts <> expected then
    invalid_arg
      "Flow.run_placement: placement is not binary-weighted (the INL/DNL \
       and transfer models assume binary ratios)";
  let parallel =
    Option.value parallel ~default:(default_parallel ~bits style)
  in
  recorded
    ~attrs:
      [ ( "style",
          Telemetry.Span.Str placement.Ccgrid.Placement.style_name );
        ("bits", Telemetry.Span.Int bits) ]
    (fun () ->
       Telemetry.Metrics.incr "flow/runs_total";
       let t0 = Telemetry.Clock.now_ns () in
       let layout =
         stage "route" (fun () ->
             Ccroute.Layout.route tech ~p_of_cap:parallel placement)
       in
       let elapsed = Telemetry.Clock.since_s t0 in
       if verify then begin
         let what =
           Printf.sprintf "%s %d-bit (prebuilt placement)"
             placement.Ccgrid.Placement.style_name bits
         in
         stage "verify" (fun () -> verify_layout ~what layout);
         stage "lvs" (fun () -> lvs_layout ~what layout)
       end;
       analyze_layout ~tech ?sign_mode ?theta ~style ~elapsed layout)
