(** Cross-bit-width scaling probe: run the full flow (plus a Monte-Carlo
    stage) across a ladder of resolutions and fit per-stage log-log
    power-law growth exponents against the unit-cell count.

    An exponent near 1 means a stage scales linearly in cells, near 2
    quadratically; [ccgen scale] and [bench scaling] render the report
    (docs/BENCH.md), and the bench artefact lands the exponents in the
    QoR ledger (docs/QOR.md).  Each rung runs with {!Telemetry.Memory}
    sampling forced on (the allocation series is half the point) and
    inside a {!Par.Sched.collect} scope, so when scheduler recording is
    enabled the report also carries pool utilization figures. *)

(** One rung of the ladder. *)
type point = {
  p_bits : int;
  p_cells : int;                        (** placement rows x cols *)
  p_stage_s : (string * float) list;
      (** flow stage walls plus the ["mc"] stage and a ["total"] row *)
  p_stage_alloc_mb : (string * float) list;  (** same keys, MB allocated *)
  p_sched : Par.Sched.summary;          (** scheduler activity of the rung *)
  p_result : Flow.result;
}

(** One fitted stage: wall seconds ~ cells^exponent. *)
type fit = {
  f_stage : string;
  f_exponent : float;   (** log-log least-squares slope *)
  f_r2 : float;         (** goodness of the fit, [0, 1] *)
}

type t = {
  points : point list;  (** in ladder order *)
  fits : fit list;      (** in stage order *)
}

(** [fit_loglog pairs] is [Some (slope, r2)] for the least-squares line
    through [(log x, log y)] — the growth exponent of [y ~ x^slope].
    Non-positive or NaN [x] pairs are dropped; [y] is floored at 1e-9 so
    an unmeasurably fast stage never produces [log 0].  [None] when
    fewer than two distinct [x] values survive.  Pure; exposed so the
    regression convention is pinned by tests. *)
val fit_loglog : (float * float) list -> (float * float) option

(** [run ?tech ?style_of_bits ?trials ?seed ?jobs bits_list] probes each
    bit width in order and fits every stage present at the first rung.
    [style_of_bits] (default: spiral everywhere) lets the caller keep
    style parameters consistent across the ladder (e.g. block-chess core
    sizing).  [trials] (default 100) and [seed] (default 1) drive the
    Monte-Carlo stage; [jobs] is passed to it while the flow stages use
    the ambient {!Par.Jobs} default.  Raises [Invalid_argument] on an
    empty ladder. *)
val run :
  ?tech:Tech.Process.t ->
  ?style_of_bits:(int -> Ccplace.Style.t) ->
  ?trials:int ->
  ?seed:int ->
  ?jobs:int ->
  int list ->
  t

(** [exponents t] — the fitted [(stage, exponent)] table, for the QoR
    record. *)
val exponents : t -> (string * float) list

(** [sched_totals t] folds the per-rung scheduler summaries into one
    ladder-wide summary (sums; capacity-weighted mean utilization; max
    queue depth and imbalance).  All-NaN when recording was off. *)
val sched_totals : t -> Par.Sched.summary

val to_json : t -> Telemetry.Json.t

(** [pp ppf t] prints the stage x ladder wall-time table with the fitted
    exponents, the cell counts, and the scheduler summary line. *)
val pp : Format.formatter -> t -> unit
