(** Multi-configuration sweeps: the paper's tables compare four methods per
    bit count and report the best block-chessboard configuration
    (Sec. V: "Several BC structures are considered ... and the best BC
    result is reported"). *)

(** [best_block ?tech ?sign_mode ~bits ()] runs the BC family (Fig. 4
    granularities at the default core) and returns the result with the
    highest 3 dB frequency among those with |INL| and |DNL| within 0.5 LSB
    (all results, if none qualify). *)
val best_block :
  ?tech:Tech.Process.t ->
  ?sign_mode:Dacmodel.Nonlinearity.sign_mode ->
  bits:int -> unit -> Flow.result

(** [paper_methods] in table column order: [1] proxy, [7], S, BC-best. *)
val paper_methods : Ccplace.Style.t list

(** [row ?tech ?sign_mode ~bits ()] runs all four methods for one bit
    count; the BC entry is the best of its family.  Note the Rowwise
    baseline substitutes [1] (DESIGN.md). *)
val row :
  ?tech:Tech.Process.t ->
  ?sign_mode:Dacmodel.Nonlinearity.sign_mode ->
  bits:int -> unit -> Flow.result list

(** [parallel_sweep ?tech ~bits ~style ks] reruns [style] with the MSB
    parallel-wire count set to each [k] and returns
    [(k, f3db_mhz)] pairs — the data of Fig. 6a. *)
val parallel_sweep :
  ?tech:Tech.Process.t ->
  bits:int -> style:Ccplace.Style.t -> int list -> (int * float) list

(** [frontier ?tech ?style ~bits budgets] applies the mirror-pair swap
    refinement ({!Ccplace.Refine}) at each swap budget (0 = unrefined) and
    analyses the result, tracing the continuous dispersion/interconnect
    tradeoff between the paper's discrete styles.  Returns
    [(budget, result)] in input order. *)
val frontier :
  ?tech:Tech.Process.t -> ?style:Ccplace.Style.t -> bits:int -> int list ->
  (int * Flow.result) list
