(** Multi-configuration sweeps: the paper's tables compare four methods per
    bit count and report the best block-chessboard configuration
    (Sec. V: "Several BC structures are considered ... and the best BC
    result is reported").

    Every entry point takes [?jobs] (default {!Par.Jobs.default}) and
    fans its independent flow runs over a domain pool; results come back
    in the same order as the serial code and are byte-identical at any
    worker count (docs/PARALLEL.md). *)

(** [best_block ?tech ?sign_mode ?jobs ~bits ()] runs the BC family
    (Fig. 4 granularities at the default core) and returns the result
    with the highest 3 dB frequency among those with |INL| and |DNL|
    within 0.5 LSB (all results, if none qualify). *)
val best_block :
  ?tech:Tech.Process.t ->
  ?sign_mode:Dacmodel.Nonlinearity.sign_mode ->
  ?jobs:int -> bits:int -> unit -> Flow.result

(** [paper_methods] in table column order: [1] proxy, [7], S, BC-best. *)
val paper_methods : Ccplace.Style.t list

(** [row ?tech ?sign_mode ?jobs ~bits ()] runs all four methods for one
    bit count; the BC entry is the best of its family.  The three paper
    methods and the whole family run as one parallel batch.  Note the
    Rowwise baseline substitutes [1] (DESIGN.md). *)
val row :
  ?tech:Tech.Process.t ->
  ?sign_mode:Dacmodel.Nonlinearity.sign_mode ->
  ?jobs:int -> bits:int -> unit -> Flow.result list

(** [parallel_sweep ?tech ?jobs ~bits ~style ks] reruns [style] with the
    MSB parallel-wire count set to each [k] and returns
    [(k, f3db_mhz)] pairs — the data of Fig. 6a. *)
val parallel_sweep :
  ?tech:Tech.Process.t ->
  ?jobs:int -> bits:int -> style:Ccplace.Style.t -> int list ->
  (int * float) list

(** [frontier ?tech ?style ?jobs ~bits budgets] applies the mirror-pair
    swap refinement ({!Ccplace.Refine}) at each swap budget
    (0 = unrefined) and analyses the result, tracing the continuous
    dispersion/interconnect tradeoff between the paper's discrete
    styles.  Returns [(budget, result)] in input order. *)
val frontier :
  ?tech:Tech.Process.t -> ?style:Ccplace.Style.t -> ?jobs:int ->
  bits:int -> int list -> (int * Flow.result) list
