(** Yield-driven unit-capacitor sizing.

    Sec. II-A: "Increasing C_u can reduce these effects, at the cost of
    increased power.  Moreover, as C_u increases, so does the array area."
    Combined with the Monte-Carlo engine this becomes a sizing loop — the
    optimisation that [7] performs with numerical yield integrals: find
    the smallest unit capacitor whose layout meets a linearity yield
    target.

    Scaling model: MOM capacitance density is fixed, so a candidate C_u
    scales the unit-cell area linearly (side by sqrt(C_u / C_u0)); the
    relative mismatch then improves as 1/sqrt(C_u) (Pelgrom) and the
    gradient/correlation distances grow with the array. *)

type candidate = {
  unit_cap_ff : float;
  area : float;                      (** routed area at this C_u, um^2 *)
  f3db_mhz : float;
  mc : Dacmodel.Montecarlo.t;        (** Monte-Carlo linearity statistics *)
}

(** [scale_tech tech ~unit_cap] derives a technology with the given C_u
    and correspondingly scaled unit-cell geometry. *)
val scale_tech : Tech.Process.t -> unit_cap:float -> Tech.Process.t

(** [evaluate ?tech ?trials ?bound ?jobs ~bits ~style ~unit_cap ()] runs
    the flow and the Monte-Carlo analysis at one candidate C_u ([jobs]
    parallelises the Monte-Carlo trials). *)
val evaluate :
  ?tech:Tech.Process.t -> ?trials:int -> ?bound:float -> ?jobs:int ->
  bits:int -> style:Ccplace.Style.t -> unit_cap:float -> unit -> candidate

(** [minimum_unit_cap ?tech ?trials ?bound ?target_yield ?jobs ~bits
    ~style candidates] evaluates the (ascending) candidate C_u values and
    returns the first meeting the yield target (default 0.99), or [None]
    with all candidates exhausted.  Returns the evaluation trace
    alongside.

    With [jobs > 1] the walk speculates: [jobs] candidates are evaluated
    in parallel per round, and speculative work past the earliest passing
    candidate is discarded — answer and trace are byte-identical to the
    serial walk at every [jobs] value (docs/PARALLEL.md). *)
val minimum_unit_cap :
  ?tech:Tech.Process.t -> ?trials:int -> ?bound:float -> ?target_yield:float ->
  ?jobs:int -> bits:int -> style:Ccplace.Style.t -> float list ->
  candidate option * candidate list
