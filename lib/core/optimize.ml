type candidate = {
  unit_cap_ff : float;
  area : float;
  f3db_mhz : float;
  mc : Dacmodel.Montecarlo.t;
}

let scale_tech (tech : Tech.Process.t) ~unit_cap =
  if unit_cap <= 0. then invalid_arg "Optimize.scale_tech: unit_cap <= 0";
  let ratio = sqrt (unit_cap /. tech.Tech.Process.unit_cap) in
  { tech with
    Tech.Process.unit_cap;
    cell_width = tech.Tech.Process.cell_width *. ratio;
    cell_height = tech.Tech.Process.cell_height *. ratio }

let evaluate ?(tech = Tech.Process.finfet_12nm) ?(trials = 200) ?(bound = 0.5)
    ~bits ~style ~unit_cap () =
  Telemetry.Span.with_ ~name:"optimize.evaluate"
    ~attrs:
      [ ("bits", Telemetry.Span.Int bits);
        ("unit_cap_ff", Telemetry.Span.Float unit_cap) ]
  @@ fun () ->
  let tech = scale_tech tech ~unit_cap in
  let r = Flow.run ~tech ~bits style in
  let mc =
    Dacmodel.Montecarlo.run tech ~trials ~bound
      ~top_parasitic:r.Flow.parasitics.Extract.Parasitics.total_top_cap
      r.Flow.placement
  in
  { unit_cap_ff = unit_cap; area = r.Flow.area; f3db_mhz = r.Flow.f3db_mhz; mc }

let minimum_unit_cap ?tech ?trials ?bound ?(target_yield = 0.99) ~bits ~style
    candidates =
  if target_yield < 0. || target_yield > 1. then
    invalid_arg "Optimize.minimum_unit_cap: target_yield must be in [0, 1]";
  Telemetry.Span.with_ ~name:"optimize.sizing"
    ~attrs:[ ("bits", Telemetry.Span.Int bits) ]
  @@ fun () ->
  let rec walk trace = function
    | [] -> (None, List.rev trace)
    | unit_cap :: rest ->
      let c = evaluate ?tech ?trials ?bound ~bits ~style ~unit_cap () in
      let trace = c :: trace in
      if c.mc.Dacmodel.Montecarlo.yield >= target_yield then
        (Some c, List.rev trace)
      else walk trace rest
  in
  walk [] (List.sort Float.compare candidates)
