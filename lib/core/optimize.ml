type candidate = {
  unit_cap_ff : float;
  area : float;
  f3db_mhz : float;
  mc : Dacmodel.Montecarlo.t;
}

let scale_tech (tech : Tech.Process.t) ~unit_cap =
  if unit_cap <= 0. then invalid_arg "Optimize.scale_tech: unit_cap <= 0";
  let ratio = sqrt (unit_cap /. tech.Tech.Process.unit_cap) in
  { tech with
    Tech.Process.unit_cap;
    cell_width = tech.Tech.Process.cell_width *. ratio;
    cell_height = tech.Tech.Process.cell_height *. ratio }

let evaluate ?(tech = Tech.Process.finfet_12nm) ?(trials = 200) ?(bound = 0.5)
    ?jobs ~bits ~style ~unit_cap () =
  Telemetry.Span.with_ ~name:"optimize.evaluate"
    ~attrs:
      [ ("bits", Telemetry.Span.Int bits);
        ("unit_cap_ff", Telemetry.Span.Float unit_cap) ]
  @@ fun () ->
  let tech = scale_tech tech ~unit_cap in
  let r = Flow.run ~tech ~bits style in
  let mc =
    Dacmodel.Montecarlo.run tech ~trials ~bound ?jobs
      ~top_parasitic:r.Flow.parasitics.Extract.Parasitics.total_top_cap
      r.Flow.placement
  in
  { unit_cap_ff = unit_cap; area = r.Flow.area; f3db_mhz = r.Flow.f3db_mhz; mc }

(* Take the first [n] elements (all of them when the list is shorter). *)
let take n xs =
  let rec go n acc = function
    | [] -> List.rev acc
    | _ when n = 0 -> List.rev acc
    | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] xs

let drop n xs =
  let rec go n = function
    | rest when n = 0 -> rest
    | [] -> []
    | _ :: rest -> go (n - 1) rest
  in
  go n xs

(* Speculative sizing: evaluate [jobs] candidates at a time in parallel,
   then scan the chunk in ascending order and stop at the first that
   meets the yield target.  Any speculative work past the winner is
   discarded — the returned trace is truncated at the winner — so the
   (answer, trace) pair is byte-identical to the serial walk at every
   [jobs] value.  Each candidate's Monte-Carlo runs serially inside its
   task (the pool is already saturated across candidates). *)
let minimum_unit_cap ?tech ?trials ?bound ?(target_yield = 0.99) ?jobs ~bits
    ~style candidates =
  if target_yield < 0. || target_yield > 1. then
    invalid_arg "Optimize.minimum_unit_cap: target_yield must be in [0, 1]";
  Telemetry.Span.with_ ~name:"optimize.sizing"
    ~attrs:[ ("bits", Telemetry.Span.Int bits) ]
  @@ fun () ->
  let jobs = Par.Jobs.resolve jobs in
  let eval unit_cap =
    evaluate ?tech ?trials ?bound ~jobs:1 ~bits ~style ~unit_cap ()
  in
  let passes c = c.mc.Dacmodel.Montecarlo.yield >= target_yield in
  let rec scan_chunk trace = function
    | [] -> None
    | c :: rest ->
      let trace = c :: trace in
      if passes c then Some (Some c, List.rev trace)
      else scan_chunk trace rest
  and walk trace = function
    | [] -> (None, List.rev trace)
    | pending ->
      let chunk = take jobs pending in
      let evaluated = Par.Pool.map_list_exn ~jobs eval chunk in
      (match scan_chunk trace evaluated with
       | Some result -> result
       | None ->
         walk (List.rev_append evaluated trace) (drop jobs pending))
  in
  walk [] (List.sort Float.compare candidates)
