let acceptable r = r.Flow.max_inl <= 0.5 && r.Flow.max_dnl <= 0.5

let best_block ?tech ?sign_mode ~bits () =
  Telemetry.Span.with_ ~name:"sweep.best_block"
    ~attrs:[ ("bits", Telemetry.Span.Int bits) ]
  @@ fun () ->
  let candidates =
    List.map
      (fun style -> Flow.run ?tech ?sign_mode ~bits style)
      (Ccplace.Style.block_family ~bits)
  in
  let pick pool =
    List.fold_left
      (fun best r ->
         match best with
         | None -> Some r
         | Some b -> if r.Flow.f3db_mhz > b.Flow.f3db_mhz then Some r else best)
      None pool
  in
  let best =
    match pick (List.filter acceptable candidates) with
    | Some r -> Some r
    | None -> pick candidates
  in
  match best with
  | Some r -> r
  | None -> invalid_arg "Sweep.best_block: empty BC family"

let paper_methods =
  [ Ccplace.Style.Rowwise; Ccplace.Style.Chessboard; Ccplace.Style.Spiral ]

let row ?tech ?sign_mode ~bits () =
  Telemetry.Span.with_ ~name:"sweep.row"
    ~attrs:[ ("bits", Telemetry.Span.Int bits) ]
  @@ fun () ->
  List.map (fun style -> Flow.run ?tech ?sign_mode ~bits style) paper_methods
  @ [ best_block ?tech ?sign_mode ~bits () ]

let frontier ?(tech = Tech.Process.finfet_12nm) ?(style = Ccplace.Style.Spiral)
    ~bits budgets =
  Telemetry.Span.with_ ~name:"sweep.frontier"
    ~attrs:[ ("bits", Telemetry.Span.Int bits) ]
  @@ fun () ->
  let placement = Ccplace.Style.place ~bits style in
  List.map
    (fun budget ->
       if budget < 0 then invalid_arg "Sweep.frontier: negative budget";
       let refined =
         if budget = 0 then placement
         else
           fst
             (Ccplace.Refine.refine tech ~max_passes:50 ~max_swaps:budget
                placement)
       in
       (budget, Flow.run_placement ~tech ~style refined))
    budgets

let parallel_sweep ?tech ~bits ~style ks =
  Telemetry.Span.with_ ~name:"sweep.parallel"
    ~attrs:[ ("bits", Telemetry.Span.Int bits) ]
  @@ fun () ->
  List.map
    (fun k ->
       if k < 1 then invalid_arg "Sweep.parallel_sweep: k must be >= 1";
       let parallel = Ccroute.Layout.msb_parallel ~bits ~p:k in
       let r = Flow.run ?tech ~parallel ~bits style in
       (k, r.Flow.f3db_mhz))
    ks
