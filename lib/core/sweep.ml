let acceptable r = r.Flow.max_inl <= 0.5 && r.Flow.max_dnl <= 0.5

let pick pool =
  List.fold_left
    (fun best r ->
       match best with
       | None -> Some r
       | Some b -> if r.Flow.f3db_mhz > b.Flow.f3db_mhz then Some r else best)
    None pool

(* best BC: highest f3db among the linearity-clean results, falling back
   to the whole family when none qualify *)
let best_of_family candidates =
  match pick (List.filter acceptable candidates) with
  | Some r -> Some r
  | None -> pick candidates

let best_block ?tech ?sign_mode ?jobs ~bits () =
  Telemetry.Span.with_ ~name:"sweep.best_block"
    ~attrs:[ ("bits", Telemetry.Span.Int bits) ]
  @@ fun () ->
  let candidates =
    Par.Pool.map_list_exn ?jobs
      (fun style -> Flow.run ?tech ?sign_mode ~bits style)
      (Ccplace.Style.block_family ~bits)
  in
  match best_of_family candidates with
  | Some r -> r
  | None -> invalid_arg "Sweep.best_block: empty BC family"

let paper_methods =
  [ Ccplace.Style.Rowwise; Ccplace.Style.Chessboard; Ccplace.Style.Spiral ]

(* Take the first [n] elements and the rest.  [n <= length xs]. *)
let split_at n xs =
  let rec go n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] xs

let row ?tech ?sign_mode ?jobs ~bits () =
  Telemetry.Span.with_ ~name:"sweep.row"
    ~attrs:[ ("bits", Telemetry.Span.Int bits) ]
  @@ fun () ->
  (* One flat batch — the three paper methods and the whole BC family
     fan out across the pool together instead of the family waiting for
     the serial prefix to finish. *)
  let styles = paper_methods @ Ccplace.Style.block_family ~bits in
  let results =
    Par.Pool.map_list_exn ?jobs
      (fun style -> Flow.run ?tech ?sign_mode ~bits style)
      styles
  in
  let firsts, family = split_at (List.length paper_methods) results in
  match best_of_family family with
  | Some best -> firsts @ [ best ]
  | None -> invalid_arg "Sweep.row: empty BC family"

let frontier ?(tech = Tech.Process.finfet_12nm) ?(style = Ccplace.Style.Spiral)
    ?jobs ~bits budgets =
  Telemetry.Span.with_ ~name:"sweep.frontier"
    ~attrs:[ ("bits", Telemetry.Span.Int bits) ]
  @@ fun () ->
  List.iter
    (fun budget ->
       if budget < 0 then invalid_arg "Sweep.frontier: negative budget")
    budgets;
  let placement = Ccplace.Style.place ~bits style in
  Par.Pool.map_list_exn ?jobs
    (fun budget ->
       let refined =
         if budget = 0 then placement
         else
           fst
             (Ccplace.Refine.refine tech ~max_passes:50 ~max_swaps:budget
                placement)
       in
       (budget, Flow.run_placement ~tech ~style refined))
    budgets

let parallel_sweep ?tech ?jobs ~bits ~style ks =
  Telemetry.Span.with_ ~name:"sweep.parallel"
    ~attrs:[ ("bits", Telemetry.Span.Int bits) ]
  @@ fun () ->
  List.iter
    (fun k ->
       if k < 1 then invalid_arg "Sweep.parallel_sweep: k must be >= 1")
    ks;
  Par.Pool.map_list_exn ?jobs
    (fun k ->
       let parallel = Ccroute.Layout.msb_parallel ~bits ~p:k in
       let r = Flow.run ?tech ~parallel ~bits style in
       (k, r.Flow.f3db_mhz))
    ks
