(** Machine-readable (CSV) exports of the reproduction results — for
    plotting the tables/figures outside the repo. *)

(** [metrics_header] is the column list of {!metrics_rows}. *)
val metrics_header : string

(** [metrics_rows rows] renders one CSV line per (bits, method) result
    with every Table-I and Table-II quantity. *)
val metrics_rows : (int * Flow.result list) list -> string

(** [parallel_sweep_csv series] renders the Fig. 6a data:
    [bits,k,f3db_mhz,improvement]. *)
val parallel_sweep_csv : (int * (int * float) list) list -> string

(** [write ~path contents] writes a CSV file. *)
val write : path:string -> string -> unit
