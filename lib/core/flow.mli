(** End-to-end constructive CC layout flow (Sec. IV): place, route,
    extract, analyse — the library's primary entry point.

    {[
      let r = Ccdac.Flow.run ~bits:8 Ccplace.Style.Spiral in
      Format.printf "f3dB = %.0f MHz, |INL| = %.3f LSB@."
        r.Ccdac.Flow.f3db_mhz r.Ccdac.Flow.max_inl
    ]} *)

type result = {
  style : Ccplace.Style.t;
  bits : int;
  tech : Tech.Process.t;
  placement : Ccgrid.Placement.t;
  layout : Ccroute.Layout.t;
  parasitics : Extract.Parasitics.t;
  nonlinearity : Dacmodel.Nonlinearity.t;
  max_inl : float;           (** max |INL(i)|, LSB *)
  max_dnl : float;           (** max |DNL(i)|, LSB *)
  tau_fs : float;            (** worst-bit Elmore time constant *)
  f3db_mhz : float;          (** Eq. 16 *)
  critical_bit : int;
  area : float;              (** um^2 *)
  telemetry : Telemetry.Summary.t;
      (** per-stage spans and metrics for this run (see docs/TELEMETRY.md);
          {!Telemetry.Summary.empty} when the result was built outside
          {!run} / {!run_placement} *)
  elapsed_place_route_s : float;
      (** monotonic wall-clock of place+route (Table III), derived from
          [telemetry]: exactly the place and route stage times, excluding
          the verification gate and analysis *)
}

(** [elapsed_place_route_s r] — accessor for the Table III runtime; kept
    as a stable name now that per-stage timings live in [r.telemetry]. *)
val elapsed_place_route_s : result -> float

(** [run ?tech ?parallel ?verify ?sign_mode ?theta ~bits style].

    [parallel] is the per-capacitor parallel-wire count; by default the
    paper's policy: the paper's own styles (spiral and block chessboard)
    route their three MSB capacitors with 2 parallel wires, while the
    prior-work baselines ([1] proxy and [7]) use single wires, matching
    Sec. V ("Both S and BC use our parallel routing method").
    [sign_mode] defaults to [Paper].

    [verify] (default [true]) gates the flow on the {!Verify} registry
    linter: the tech description, the placement and the routed layout are
    all audited {e before} extraction, and any Error-severity diagnostic
    raises {!Verify.Engine.Rejected} — bad artifacts are rejected loudly
    rather than silently mis-measured.  Pass [~verify:false] to route
    deliberately out-of-contract artifacts (e.g. to study them with the
    linter itself). *)
val run :
  ?tech:Tech.Process.t ->
  ?parallel:(int -> int) ->
  ?verify:bool ->
  ?sign_mode:Dacmodel.Nonlinearity.sign_mode ->
  ?theta:float ->
  bits:int ->
  Ccplace.Style.t ->
  result

(** [default_parallel ~bits style] is the policy described above. *)
val default_parallel : bits:int -> Ccplace.Style.t -> int -> int

(** [run_placement ?tech ?parallel ?verify ?sign_mode ?theta ?style
    placement] routes and analyses a {e prebuilt} binary-weighted
    placement — e.g. one produced by {!Ccplace.Refine.refine} or
    hand-constructed.  [style] only labels the result (default Spiral,
    whose parallel policy is also the default).  Raises
    [Invalid_argument] when the placement's counts are not
    binary-weighted: the DAC transfer model assumes binary ratios (use
    the extraction layer directly for general ratios).  [verify] gates on
    the linter exactly as in {!run} — hand-constructed placements that
    break the common-centroid contract raise {!Verify.Engine.Rejected}
    unless [~verify:false]. *)
val run_placement :
  ?tech:Tech.Process.t ->
  ?parallel:(int -> int) ->
  ?verify:bool ->
  ?sign_mode:Dacmodel.Nonlinearity.sign_mode ->
  ?theta:float ->
  ?style:Ccplace.Style.t ->
  Ccgrid.Placement.t ->
  result

(** [place_route ?tech ?parallel ?verify ~bits style] runs only placement
    and routing, returning the layout and the wall-clock seconds — the
    Table III measurement without analysis cost.  The verification gate
    runs {e after} the clock stops, so timings stay comparable. *)
val place_route :
  ?tech:Tech.Process.t ->
  ?parallel:(int -> int) ->
  ?verify:bool ->
  bits:int ->
  Ccplace.Style.t ->
  Ccroute.Layout.t * float
