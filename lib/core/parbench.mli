(** Measured parallel speedup — the number the QoR ledger and the bench
    table record next to [jobs] (docs/PARALLEL.md).

    The probe is the Monte-Carlo engine: same seeded workload at
    [jobs = 1] and at the requested count, wall times compared.  The two
    runs are bitwise-identical by the substream determinism contract, so
    any divergence is a bug and raises. *)

type t = {
  jobs : int;          (** worker count the parallel leg ran at *)
  trials : int;
  serial_s : float;    (** wall time at [jobs = 1] *)
  parallel_s : float;  (** wall time at [jobs] *)
  speedup : float;     (** [serial_s /. parallel_s] *)
}

(** [mc_speedup ?tech ?bits ?style ?trials ?jobs ()] times the probe.
    [jobs] defaults to {!Par.Jobs.default}; at [jobs = 1] the speedup is
    ~1 by construction.  Raises [Invalid_argument] if the parallel run's
    statistics diverge from the serial run's. *)
val mc_speedup :
  ?tech:Tech.Process.t -> ?bits:int -> ?style:Ccplace.Style.t ->
  ?trials:int -> ?jobs:int -> unit -> t
