type t = {
  jobs : int;
  trials : int;
  serial_s : float;
  parallel_s : float;
  speedup : float;
}

(* The Monte-Carlo engine is the pool's heaviest client, so it is the
   speedup probe: run the same (seed, trials) workload at jobs = 1 and at
   the requested count and compare wall time.  The two runs return
   bitwise-identical statistics (the substream determinism contract), so
   the comparison is pure scheduling. *)
let mc_speedup ?(tech = Tech.Process.finfet_12nm) ?(bits = 8)
    ?(style = Ccplace.Style.Spiral) ?(trials = 400) ?jobs () =
  let jobs = Par.Jobs.resolve jobs in
  let placement = Ccplace.Style.place ~bits style in
  let time f =
    let t0 = Telemetry.Clock.now_ns () in
    let r = f () in
    (r, Telemetry.Clock.since_s t0)
  in
  let run jobs () =
    Dacmodel.Montecarlo.run tech ~jobs ~trials placement
  in
  (* warm-up amortises first-touch costs out of the comparison *)
  ignore (run 1 ());
  let serial, serial_s = time (run 1) in
  let parallel, parallel_s = time (run jobs) in
  if serial <> parallel then
    invalid_arg "Parbench.mc_speedup: parallel run diverged from serial";
  let speedup = if parallel_s > 0. then serial_s /. parallel_s else 1. in
  { jobs; trials; serial_s; parallel_s; speedup }
