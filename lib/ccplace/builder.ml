open Ccgrid

type t = {
  bits : int;
  grid_rows : int;
  grid_cols : int;
  unit_multiplier : int;
  counts : int array;
  left : int array;           (* cells still to place, per capacitor *)
  grid : int array array;     (* Placement.dummy - 1 encodes "free" *)
}

let free_mark = Placement.dummy - 1

let make ~bits ~rows ~cols ~unit_multiplier ~counts =
  if Array.length counts <> bits + 1 then
    invalid_arg "Builder.make: counts length <> bits+1";
  let total = Array.fold_left ( + ) 0 counts in
  if total > rows * cols then invalid_arg "Builder.make: grid too small";
  { bits;
    grid_rows = rows;
    grid_cols = cols;
    unit_multiplier;
    counts = Array.copy counts;
    left = Array.copy counts;
    grid = Array.make_matrix rows cols free_mark }

let rows t = t.grid_rows
let cols t = t.grid_cols

let is_free t (c : Cell.t) =
  Cell.in_bounds ~rows:t.grid_rows ~cols:t.grid_cols c
  && t.grid.(c.Cell.row).(c.Cell.col) = free_mark

let remaining t k =
  if k < 0 || k > t.bits then invalid_arg "Builder.remaining: bad capacitor id";
  t.left.(k)

let mirror t c = Cell.mirror ~rows:t.grid_rows ~cols:t.grid_cols c

let put t (c : Cell.t) id =
  if not (is_free t c) then
    invalid_arg
      (Format.asprintf "Builder: cell %a is not free" Cell.pp c);
  t.grid.(c.Cell.row).(c.Cell.col) <- id;
  if id >= 0 then begin
    if t.left.(id) <= 0 then invalid_arg "Builder: capacitor budget exhausted";
    t.left.(id) <- t.left.(id) - 1
  end

let assign_pair t c k =
  let m = mirror t c in
  if Cell.equal c m then invalid_arg "Builder.assign_pair: self-mirror cell";
  if remaining t k < 2 then
    invalid_arg "Builder.assign_pair: fewer than 2 cells remain";
  put t c k;
  put t m k

let assign_dummy_pair t c =
  let m = mirror t c in
  if Cell.equal c m then invalid_arg "Builder.assign_dummy_pair: self-mirror cell";
  put t c Placement.dummy;
  put t m Placement.dummy

let assign_split_pair t c ~at ~at_mirror =
  let m = mirror t c in
  if Cell.equal c m then
    invalid_arg "Builder.assign_split_pair: self-mirror cell";
  put t c at;
  put t m at_mirror

let reserve_center_dummy t =
  if t.grid_rows mod 2 = 1 && t.grid_cols mod 2 = 1 then begin
    let c = Cell.make ~row:(t.grid_rows / 2) ~col:(t.grid_cols / 2) in
    if is_free t c then put t c Placement.dummy
  end

let assign_center_single t k =
  if t.grid_rows mod 2 = 0 || t.grid_cols mod 2 = 0 then
    invalid_arg "Builder.assign_center_single: grid has no centre cell";
  let c = Cell.make ~row:(t.grid_rows / 2) ~col:(t.grid_cols / 2) in
  put t c k

let first_free_in t order = List.find_opt (is_free t) order

let finish t ~style_name =
  Array.iteri
    (fun k left ->
       if left <> 0 then
         invalid_arg
           (Printf.sprintf "Builder.finish: capacitor %d has %d unplaced cells"
              k left))
    t.left;
  let assign =
    Array.map
      (Array.map (fun id -> if id = free_mark then Placement.dummy else id))
      t.grid
  in
  Placement.create ~bits:t.bits ~rows:t.grid_rows ~cols:t.grid_cols
    ~unit_multiplier:t.unit_multiplier ~counts:t.counts ~assign ~style_name
