
type t =
  | Spiral
  | Chessboard
  | Block_chess of {
      core_bits : int;
      granularity : int;
    }
  | Rowwise

let block_default ~bits =
  Block_chess
    { core_bits = Block_chess.default_core_bits ~bits; granularity = 2 }

let block_family ~bits =
  let core_bits = Block_chess.default_core_bits ~bits in
  List.map
    (fun granularity -> Block_chess { core_bits; granularity })
    (Block_chess.granularities ~bits)

let name = function
  | Spiral -> "spiral"
  | Chessboard -> "chessboard"
  | Block_chess { core_bits; granularity } ->
    Printf.sprintf "block-chess(core=%d,g=%d)" core_bits granularity
  | Rowwise -> "rowwise"

let place ~bits style =
  Telemetry.Span.with_ ~name:"place.builder"
    ~attrs:
      [ ("style", Telemetry.Span.Str (name style));
        ("bits", Telemetry.Span.Int bits) ]
    (fun () ->
       let p =
         match style with
         | Spiral -> Spiral.place ~bits
         | Chessboard -> Chessboard.place ~bits
         | Block_chess { core_bits; granularity } ->
           Block_chess.place ~bits ~core_bits ~granularity ()
         | Rowwise -> Rowwise.place ~bits
       in
       Telemetry.Metrics.set "place/cells"
         (float_of_int (p.Ccgrid.Placement.rows * p.Ccgrid.Placement.cols));
       p)

let label = function
  | Spiral -> "S"
  | Chessboard -> "[7]"
  | Block_chess _ -> "BC"
  | Rowwise -> "[1]"

let equal a b =
  match a, b with
  | Spiral, Spiral | Chessboard, Chessboard | Rowwise, Rowwise -> true
  | Block_chess x, Block_chess y ->
    x.core_bits = y.core_bits && x.granularity = y.granularity
  | (Spiral | Chessboard | Block_chess _ | Rowwise), _ -> false

let pp ppf t = Format.pp_print_string ppf (name t)
