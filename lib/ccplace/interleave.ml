let next items taken =
  let best = ref None in
  Array.iteri
    (fun i (_, weight) ->
       if weight < 1 then invalid_arg "Interleave: weight must be >= 1";
       if taken.(i) < weight then begin
         let fraction_left =
           float_of_int (weight - taken.(i)) /. float_of_int weight
         in
         match !best with
         | Some (_, best_fraction) when best_fraction >= fraction_left -> ()
         | Some _ | None -> best := Some (i, fraction_left)
       end)
    items;
  Option.map fst !best

let schedule items =
  let arr = Array.of_list items in
  let taken = Array.make (Array.length arr) 0 in
  let rec loop acc =
    match next arr taken with
    | None -> List.rev acc
    | Some i ->
      taken.(i) <- taken.(i) + 1;
      let tag, _ = arr.(i) in
      loop (tag :: acc)
  in
  loop []
