(** Mirror-pair swap refinement — an optional post-pass on any placement.

    The paper's flow is purely constructive; its spiral trades dispersion
    for routing.  This pass explores the obvious follow-up: greedy
    first-improvement swaps of unit cells between the MSB capacitor and
    the others — always together with their mirror cells, so the
    common-centroid property and all capacitor counts are preserved —
    minimising the variance of the {e major-carry differential}
    [dC_N - sum dC_k], the term that dominates worst-case DNL (Sec. III-A
    with Eq. 6 covariances).

    The energy is [E = sum_{a,b} s_a s_b rho_ab] over unit cells with sign
    [+1] on MSB cells, [-1] on other capacitors' cells and [0] on dummies;
    a swap's delta is evaluated incrementally in O(cells).

    Deterministic.  Dispersion improves, routing degrades (the MSB's
    connected groups fragment): the caller re-routes and re-extracts to
    see the new tradeoff point. *)

open Ccgrid

type stats = {
  swaps : int;             (** accepted swaps *)
  passes : int;            (** full sweeps executed *)
  initial_energy : float;
  final_energy : float;    (** always <= initial *)
}

(** [refine tech ?max_passes ?max_swaps placement] runs first-improvement
    sweeps until no swap helps, [max_passes] (default 3) sweeps ran, or
    [max_swaps] swaps were accepted.  [max_swaps] is the tradeoff dial: a
    small budget nudges dispersion at little routing cost; unbounded
    refinement converges towards a chessboard-like MSB pattern. *)
val refine :
  Tech.Process.t -> ?max_passes:int -> ?max_swaps:int -> Placement.t ->
  Placement.t * stats

(** [energy tech placement] is the current major-carry interaction energy
    (exposed for tests; lower is better). *)
val energy : Tech.Process.t -> Placement.t -> float
