open Ccgrid

let validate_counts counts =
  if Array.length counts = 0 then invalid_arg "General: empty ratio list";
  Array.iteri
    (fun k n ->
       if n < 1 then
         invalid_arg
           (Printf.sprintf "General: capacitor %d has count %d (< 1)" k n))
    counts

type item =
  | Pair of int               (* two cells of one capacitor, mirrored *)
  | Split of int * int        (* odd-count partners: cell / mirror cell *)
  | Dummy_pair

(* The shared skeleton: decide centre handling, build the item multiset,
   and let [assign] place items onto a cell walk. *)
let build ~counts ~style_name ~walk_of =
  validate_counts counts;
  let bits = Array.length counts - 1 in
  let total = Array.fold_left ( + ) 0 counts in
  (* odd-count capacitors pair among themselves; a leftover single (odd
     number of odd-count capacitors) takes the centre cell, which forces
     an odd-by-odd grid *)
  let odd_caps =
    List.filter (fun k -> counts.(k) mod 2 = 1)
      (List.init (bits + 1) (fun k -> k))
  in
  let needs_center = List.length odd_caps mod 2 = 1 in
  let { Sizing.rows; cols; dummies } =
    let base = Sizing.compute ~total_units:total in
    if not needs_center then base
    else begin
      let odd n = if n mod 2 = 0 then n + 1 else n in
      let rows = odd base.Sizing.rows in
      let cols = odd ((total + rows - 1) / rows) in
      { Sizing.rows; cols; dummies = (rows * cols) - total }
    end
  in
  let b = Builder.make ~bits ~rows ~cols ~unit_multiplier:1 ~counts in
  let rec pair_up = function
    | a :: b :: rest ->
      let splits, leftover = pair_up rest in
      (Split (a, b) :: splits, leftover)
    | [ a ] -> ([], Some a)
    | [] -> ([], None)
  in
  let splits, leftover = pair_up odd_caps in
  (match leftover with
   | Some k -> Builder.assign_center_single b k
   | None -> if dummies mod 2 = 1 then Builder.reserve_center_dummy b);
  let items =
    List.concat
      [ List.concat_map
          (fun k ->
             List.init (counts.(k) / 2) (fun _ -> (Pair k, ())))
          (List.init (bits + 1) (fun k -> k))
        |> List.map fst;
        splits;
        (let even_dummies = dummies - (dummies mod 2) in
         List.init (even_dummies / 2) (fun _ -> Dummy_pair)) ]
  in
  let sequence = walk_of ~bits ~counts items in
  (b, rows, cols, sequence, style_name)

(* Typed item order matching the runtime representation Stdlib.compare
   used here historically: the constant constructor first, then blocks in
   declaration order — placements are pinned, so the order must not move. *)
let compare_item (a : item) (b : item) =
  match (a, b) with
  | Dummy_pair, Dummy_pair -> 0
  | Dummy_pair, _ -> -1
  | _, Dummy_pair -> 1
  | Pair x, Pair y -> Int.compare x y
  | Pair _, Split _ -> -1
  | Split _, Pair _ -> 1
  | Split (a1, m1), Split (a2, m2) -> begin
      match Int.compare a1 a2 with
      | 0 -> Int.compare m1 m2
      | c -> c
    end

let assign_item b item c =
  match item with
  | Pair k -> Builder.assign_pair b c k
  | Split (a, m) -> Builder.assign_split_pair b c ~at:a ~at_mirror:m
  | Dummy_pair -> Builder.assign_dummy_pair b c

(* proportional interleave of the item multiset: weight by capacitor *)
let interleave_items ~bits ~counts items =
  let tagged =
    (* group items per capacitor (splits and dummies get their own tags) *)
    let key = function
      | Pair k -> `Cap k
      | Split (a, b) -> `Split (a, b)
      | Dummy_pair -> `Dummy
    in
    let table = Hashtbl.create 16 in
    List.iter
      (fun item ->
         let k = key item in
         let prev = Option.value ~default:[] (Hashtbl.find_opt table k) in
         Hashtbl.replace table k (item :: prev))
      items;
    Hashtbl.fold (fun _ group acc -> group :: acc) table []
  in
  ignore bits;
  ignore counts;
  (* order groups deterministically: largest first, then by first item *)
  let sorted =
    List.sort
      (fun a b ->
         match Int.compare (List.length b) (List.length a) with
         | 0 -> List.compare compare_item a b
         | c -> c)
      tagged
  in
  let weighted = List.map (fun group -> (group, List.length group)) sorted in
  (* largest-remainder schedule over the groups, emitting their items *)
  let arr = Array.of_list weighted in
  let taken = Array.make (Array.length arr) 0 in
  let remaining = Array.map (fun (group, _) -> ref group) arr in
  let rec loop acc =
    match Interleave.next (Array.map (fun (g, w) -> (g, w)) arr) taken with
    | None -> List.rev acc
    | Some i ->
      taken.(i) <- taken.(i) + 1;
      (match !(remaining.(i)) with
       | item :: rest ->
         remaining.(i) := rest;
         loop (item :: acc)
       | [] -> loop acc)
  in
  loop []

(* clustered: items in capacitor-index order (splits first, nearest the
   centre, like the paper's C_0/C_1 treatment) *)
let clustered_items ~bits ~counts items =
  ignore bits;
  ignore counts;
  let rank = function
    | Split (a, _) -> (0, a)
    | Pair k -> (1, k)
    | Dummy_pair -> (2, max_int)
  in
  let compare_rank (ta, ka) (tb, kb) =
    match Int.compare ta tb with 0 -> Int.compare ka kb | c -> c
  in
  List.stable_sort (fun a b -> compare_rank (rank a) (rank b)) items

let place ~counts ~style_name ~walk_of ~order_of =
  let b, rows, cols, sequence, style_name =
    build ~counts ~style_name ~walk_of
  in
  let order = order_of ~rows ~cols in
  let remaining = ref sequence in
  List.iter
    (fun c ->
       if Builder.is_free b c then begin
         match !remaining with
         | item :: rest ->
           remaining := rest;
           assign_item b item c
         | [] -> ()
       end)
    order;
  Builder.finish b ~style_name

let boustrophedon ~rows ~cols =
  List.concat
    (List.init rows (fun row ->
         let cells = List.init cols (fun col -> Cell.make ~row ~col) in
         if row mod 2 = 0 then cells else List.rev cells))

let interleaved ~counts =
  place ~counts ~style_name:"general-interleaved" ~walk_of:interleave_items
    ~order_of:boustrophedon

let clustered ~counts =
  place ~counts ~style_name:"general-clustered" ~walk_of:clustered_items
    ~order_of:(fun ~rows ~cols -> Cell.spiral_order ~rows ~cols)
