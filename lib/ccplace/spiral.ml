open Ccgrid

let style_name = "spiral"

let place ~bits =
  let counts = Weights.unit_counts ~bits in
  let total = Weights.total_units ~bits in
  let { Sizing.rows; cols; dummies } = Sizing.compute ~total_units:total in
  let b =
    Builder.make ~bits ~rows ~cols ~unit_multiplier:1 ~counts
  in
  (* An odd number of dummies forces one onto the self-mirror centre cell,
     keeping the free set mirror-symmetric for the pair discipline. *)
  if dummies mod 2 = 1 then Builder.reserve_center_dummy b;
  let order = Cell.spiral_order ~rows ~cols in
  (* C_0 and C_1: innermost free mirror pair, diagonally opposite. *)
  (match Builder.first_free_in b order with
   | None -> invalid_arg "Spiral.place: no free cell for C_0/C_1"
   | Some c -> Builder.assign_split_pair b c ~at:0 ~at_mirror:1);
  (* C_2 .. C_N: mirrored pairs at the first empty spiral locations. *)
  for k = 2 to bits do
    while Builder.remaining b k > 0 do
      match Builder.first_free_in b order with
      | None -> invalid_arg "Spiral.place: ran out of cells"
      | Some c -> Builder.assign_pair b c k
    done
  done;
  Builder.finish b ~style_name
