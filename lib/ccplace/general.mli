(** Common-centroid placement for {e arbitrary} capacitor ratios.

    The paper targets binary-weighted arrays, but its constructive
    machinery generalises to any ratio list (the problem of Sayed &
    Dessouky, DATE'02 [4]) — segmented DACs mix a thermometer MSB bank
    (many equal capacitors) with binary LSBs, and SAR variants use
    redundant or scaled radices.  The router, extractor and Elmore
    analysis are already ratio-agnostic; this module supplies the
    placements.

    Mirror-pair discipline with arbitrary counts: capacitors with an odd
    cell count cannot be mirrored onto themselves, so odd-count capacitors
    are paired with each other (one takes a cell, its partner the mirror —
    the C_0/C_1 trick of Sec. IV-A generalised), and a single leftover odd
    cell goes to the central self-mirror cell when the grid has one.

    Raises [Invalid_argument] when the leftover odd cell exists but the
    grid has no centre cell (even dimension), or when any count is < 1. *)

open Ccgrid

(** [interleaved ~counts] deals proportionally-interleaved runs
    boustrophedon from the driver side — a dispersion-oriented layout in
    the spirit of the chessboard/row-wise styles. *)
val interleaved : counts:int array -> Placement.t

(** [clustered ~counts] walks a spiral from the centre, placing the
    capacitors in index order — an interconnect-oriented layout in the
    spirit of the spiral style (smallest capacitors nearest the centre). *)
val clustered : counts:int array -> Placement.t

(** [validate_counts counts] raises on empty or non-positive entries. *)
val validate_counts : int array -> unit
