open Ccgrid

module Cellset = Set.Make (struct
    type t = Cell.t
    let compare = Cell.compare
  end)

let default_core_bits ~bits = Int.max 1 (Int.min (bits - 2) (bits - 1))

let granularities ~bits =
  let msb_cells = 1 lsl (bits - 1) in
  List.filter (fun g -> 2 * g <= msb_cells) [ 1; 2; 4; 8 ]

let style_name ~core_bits ~granularity =
  Printf.sprintf "block-chess(core=%d,g=%d)" core_bits granularity

(* Core cells: the [core_units] cells nearest the centre, collected in
   mirrored pairs along the spiral order so the core is centred and
   mirror-symmetric. *)
let collect_core b order core_units =
  let core = ref Cellset.empty in
  let add_pair c =
    let m = Builder.mirror b c in
    if Builder.is_free b c && (not (Cellset.mem c !core))
       && not (Cell.equal c m)
    then begin
      core := Cellset.add c !core;
      core := Cellset.add m !core
    end
  in
  List.iter
    (fun c -> if Cellset.cardinal !core < core_units then add_pair c)
    order;
  if Cellset.cardinal !core < core_units then
    invalid_arg "Block_chess: not enough cells for the core";
  !core

let place ~bits ?core_bits ?granularity () =
  Weights.check_bits bits;
  let core_bits = Option.value core_bits ~default:(default_core_bits ~bits) in
  let granularity = Option.value granularity ~default:2 in
  if core_bits < 1 || core_bits > bits - 1 then
    invalid_arg "Block_chess.place: core_bits must be in [1, bits-1]";
  if granularity < 1 then invalid_arg "Block_chess.place: granularity >= 1";
  let counts = Weights.unit_counts ~bits in
  let total = Weights.total_units ~bits in
  let { Sizing.rows; cols; dummies } = Sizing.compute ~total_units:total in
  let b = Builder.make ~bits ~rows ~cols ~unit_multiplier:1 ~counts in
  if dummies mod 2 = 1 then Builder.reserve_center_dummy b;
  let order = Cell.spiral_order ~rows ~cols in
  let core_units = 1 lsl core_bits in
  let core = collect_core b order core_units in
  (* --- inner core: chessboard of C_core_bits .. C_0 --- *)
  let core_list =
    let key c = (Chessboard.rank ~rows ~cols c, c.Cell.row, c.Cell.col) in
    List.stable_sort
      (fun a b -> Chessboard.compare_rank_key (key a) (key b))
      (Cellset.elements core)
  in
  for k = core_bits downto 2 do
    while Builder.remaining b k > 1 do
      match Builder.first_free_in b core_list with
      | None -> invalid_arg "Block_chess.place: core exhausted"
      | Some c -> Builder.assign_pair b c k
    done
  done;
  (match Builder.first_free_in b core_list with
   | None -> invalid_arg "Block_chess.place: no core cells left for C_0/C_1"
   | Some c -> Builder.assign_split_pair b c ~at:1 ~at_mirror:0);
  (* --- outer corridor: blocks of MSB capacitors plus dummies --- *)
  let dummy_budget = ref (dummies - (if dummies mod 2 = 1 then 1 else 0)) in
  let corridor_caps =
    Array.init (bits - core_bits) (fun i ->
        let k = bits - i in
        (k, counts.(k)))
  in
  let items =
    if !dummy_budget > 0 then
      Array.append corridor_caps [| (Placement.dummy, !dummy_budget) |]
    else corridor_caps
  in
  let taken = Array.make (Array.length items) 0 in
  let current = ref None in
  let block_left = ref 0 in
  let cells_left id =
    if id = Placement.dummy then !dummy_budget else Builder.remaining b id
  in
  let pick_next () =
    match Interleave.next items taken with
    | None -> invalid_arg "Block_chess.place: corridor budget exhausted"
    | Some i ->
      let id, _ = items.(i) in
      current := Some (i, id);
      block_left := Int.min (2 * granularity) (cells_left id)
  in
  let assign_corridor_pair c =
    (match !current with
     | Some (_, id) when !block_left >= 2 && cells_left id >= 2 -> ()
     | Some _ | None -> pick_next ());
    match !current with
    | None -> failwith "Block_chess.place: pick_next left no current block"
    | Some (i, id) ->
      if id = Placement.dummy then begin
        Builder.assign_dummy_pair b c;
        dummy_budget := !dummy_budget - 2
      end
      else Builder.assign_pair b c id;
      taken.(i) <- taken.(i) + 2;
      block_left := !block_left - 2
  in
  List.iter (fun c -> if Builder.is_free b c then assign_corridor_pair c) order;
  Builder.finish b ~style_name:(style_name ~core_bits ~granularity)
