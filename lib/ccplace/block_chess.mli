(** Block chessboard (BC) placement (Sec. IV-A, Figs. 2c, 2d, 4) — the
    paper's tunable compromise between spiral and chessboard.

    The inner core holds the LSB capacitors C_0..C_{core_bits} (exactly
    [2^core_bits] cells) as a conventional chessboard: good dispersion, and
    although it is bend/via heavy, its RC products are small and never set
    the worst-case time constant.  The outer corridor holds the MSB
    capacitors C_{core_bits+1}..C_N (and any dummies) in blocks of
    [granularity] mirrored cell pairs, interleaved in a
    chessboard-of-blocks along the corridor: fewer vias on exactly the
    capacitors whose RC matters, at a modest dispersion cost. *)

open Ccgrid

(** [place ~bits ?core_bits ?granularity ()].
    [core_bits] defaults to [bits - 2] (clamped to at least 1) — for a
    6-bit DAC this is the 4x4 C_0..C_4 core with a 2-cell corridor shown
    in Fig. 2.  [granularity] (block size in cells per side, >= 1)
    defaults to 2.  Raises [Invalid_argument] when [core_bits] is not in
    [1, bits - 1] or [granularity < 1]. *)
val place : bits:int -> ?core_bits:int -> ?granularity:int -> unit -> Placement.t

(** Default core size, [bits - 2] clamped to at least 1. *)
val default_core_bits : bits:int -> int

(** Granularities swept when looking for the "best BC" of the paper's
    tables: 1, 2, 4, 8 capped by the MSB block count. *)
val granularities : bits:int -> int list
