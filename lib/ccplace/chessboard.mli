(** Chessboard placement of Burcea et al. [7] (Sec. IV-A, Fig. 2b) —
    the dispersion-optimised prior method used as a comparison point.

    Capacitors are assigned from the MSB down by hierarchical parity
    interleaving: C_N takes every cell of one chessboard colour, C_{N-1}
    takes alternate cells of the remaining colour, and so on — each
    capacitor's cells are maximally interspersed, so no two cells of the
    same capacitor are ever 4-adjacent (for capacitors above the last
    levels).  This gives the best dispersion and the worst via counts.

    For odd N, [7] doubles the number of unit capacitors so the array stays
    a square power of two; the doubled placement has [unit_multiplier = 2]
    and twice the area — exactly the behaviour noted under Table I. *)

open Ccgrid

val place : bits:int -> Placement.t

(** [rank ~rows ~cols cell] is the hierarchical-interleave rank in [0, 1):
    cells with rank < 1/2 form one chessboard colour, the next quarter an
    alternating half of the other colour, etc.  Exposed for tests. *)
val rank : rows:int -> cols:int -> Cell.t -> float

(** [compare_rank_key (rank, row, col) ...] — rank first ({!Float.compare},
    so the sort is typed rather than polymorphic), then row-major position
    to break ties deterministically.  Shared with {!Block_chess}, which
    sorts its inner core by the same key. *)
val compare_rank_key : float * int * int -> float * int * int -> int
