(** Placement styles evaluated in the paper (Sec. V): the baseline of
    [1] (proxy), the chessboard of [7], and the paper's spiral and
    block-chessboard families. *)



type t =
  | Spiral
  | Chessboard
  | Block_chess of {
      core_bits : int;
      granularity : int;
    }
  | Rowwise  (** constructive proxy for baseline [1]; see DESIGN.md *)

(** [block_default ~bits] is the default BC configuration for [bits]. *)
val block_default : bits:int -> t

(** [block_family ~bits] lists the BC configurations swept to find the
    paper's "best BC result" (Fig. 4 granularities). *)
val block_family : bits:int -> t list

(** [place ~bits style] runs the placement algorithm. *)
val place : bits:int -> t -> Ccgrid.Placement.t

val name : t -> string

(** Short column label used by the paper's tables: "[1]", "[7]", "S", "BC". *)
val label : t -> string

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
