(** Spiral placement (Sec. IV-A, Fig. 2a) — the paper's new
    interconnect-optimised style.

    C_0 and C_1 (one unit cell each, so individually impossible to centre)
    are placed diagonally opposite each other at the innermost free pair of
    cells.  Then C_2, C_3, ..., C_N are placed walking a spiral outwards
    from the centre: every unit cell placed at doubled-centred coordinates
    [(u, v)] is accompanied by a mirror cell at [(-u, -v)], preserving the
    common-centroid property.  Consecutive spiral positions align a
    capacitor's cells along rows and columns, which minimises routing bends
    and therefore vias (Sec. IV-A2). *)

open Ccgrid

(** [place ~bits] builds the spiral placement for an N-bit DAC on the
    Eq. 17 array (dummies fill the leftover cells for odd N). *)
val place : bits:int -> Placement.t
