(** Proportional interleaving by largest remainder.

    Both the block-chessboard corridor and the row-wise baseline need a
    sequence in which items appear proportionally to their weights and as
    evenly interleaved as possible (e.g. weights 2:1 yield
    [a; a; b; a; a; b; ...]). *)

(** [schedule items] where each item is [(tag, weight)] with [weight >= 1]
    produces a list of tags of total length [sum weights], each tag
    appearing [weight] times, interleaved by largest remaining fraction.
    Ties resolve to the earlier item, making the result deterministic. *)
val schedule : ('a * int) list -> 'a list

(** [next items taken] picks the index of the item to emit next given
    [taken.(i)] already emitted; [None] when all are exhausted.  The
    incremental form used when consumption happens cell-by-cell. *)
val next : ('a * int) array -> int array -> int option
