(** Mutable grid builder shared by all placement algorithms.

    Every constructive placement in Sec. IV-A assigns unit cells in
    mirrored pairs about the common-centroid point; the builder enforces
    that discipline.  Because all assignments are pair-wise (plus an
    optional reserved self-mirror centre cell), the set of free cells stays
    mirror-symmetric throughout construction — the invariant the
    placement algorithms rely on. *)

open Ccgrid

type t

(** [make ~bits ~rows ~cols ~unit_multiplier ~counts] starts an empty grid.
    [counts] is the per-capacitor unit-cell budget (length [bits+1]). *)
val make :
  bits:int -> rows:int -> cols:int -> unit_multiplier:int ->
  counts:int array -> t

val rows : t -> int
val cols : t -> int
val is_free : t -> Cell.t -> bool

(** [remaining t k] unit cells still to place for capacitor [k]. *)
val remaining : t -> int -> int

(** [mirror t c] is the mirror cell in this grid. *)
val mirror : t -> Cell.t -> Cell.t

(** [assign_pair t c k] places capacitor [k] on [c] and on [mirror c].
    Raises [Invalid_argument] if either cell is occupied, if [c] is its own
    mirror, or if fewer than 2 cells remain for [k]. *)
val assign_pair : t -> Cell.t -> int -> unit

(** [assign_split_pair t c ~at ~at_mirror] places capacitor [at] on [c] and
    capacitor [at_mirror] on [mirror c] — the standard trick for the two
    single-cell capacitors C_0 and C_1, which are placed diagonally
    opposite each other near the centre (Sec. IV-A). *)
val assign_split_pair : t -> Cell.t -> at:int -> at_mirror:int -> unit

(** [assign_dummy_pair t c] places dummies on [c] and [mirror c] — used by
    block-chessboard corridors, where dummies participate in the block
    interleave (Sec. IV-A: "add dummies in block chessboard fashion"). *)
val assign_dummy_pair : t -> Cell.t -> unit

(** [reserve_center_dummy t] marks the central self-mirror cell (only
    present when both dimensions are odd) as a dummy.  No-op when there is
    no such cell or it is already taken. *)
val reserve_center_dummy : t -> unit

(** [assign_center_single t k] places one cell of capacitor [k] on the
    central self-mirror cell — the only position where a lone unit cell
    keeps the common centroid exactly.  Raises [Invalid_argument] when the
    grid has no centre cell or it is taken.  Used by arbitrary-ratio
    placements with an odd total. *)
val assign_center_single : t -> int -> unit

(** [first_free_in t order] is the first cell of [order] that is free. *)
val first_free_in : t -> Cell.t list -> Cell.t option

(** [finish t ~style_name] fills every remaining free cell with dummies and
    returns the validated placement.  Raises [Invalid_argument] when some
    capacitor budget was not exhausted. *)
val finish : t -> style_name:string -> Placement.t
