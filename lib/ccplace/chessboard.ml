open Ccgrid

let style_name = "chessboard"

(* Hierarchical parity rank.  Level 1 splits the grid by chessboard colour
   (i+j mod 2); the same-colour cells form a lattice that is re-indexed to
   an [rows x cols/2] grid and split again, recursively.  A capacitor that
   receives a contiguous rank bucket is therefore maximally interspersed at
   its own scale.  A single-column grid is transposed to keep halving. *)
let rec frac ~rows ~cols i j =
  if rows <= 1 && cols <= 1 then 0.
  else if cols = 1 then frac ~rows:1 ~cols:rows j i
  else begin
    let p = (i + j) land 1 in
    let jp = (i + p) land 1 in
    let v = (j - jp) / 2 in
    let cols' = (cols - jp + 1) / 2 in
    (if p = 0 then 0. else 0.5) +. (0.5 *. frac ~rows ~cols:cols' i v)
  end

let rank ~rows ~cols (c : Cell.t) = frac ~rows ~cols c.Cell.row c.Cell.col

let compare_rank_key (ra, ia, ja) (rb, ib, jb) =
  match Float.compare ra rb with
  | 0 -> begin
      match Int.compare ia ib with
      | 0 -> Int.compare ja jb
      | c -> c
    end
  | c -> c

let sorted_cells ~rows ~cols =
  let cells = ref [] in
  for row = rows - 1 downto 0 do
    for col = cols - 1 downto 0 do
      cells := Cell.make ~row ~col :: !cells
    done
  done;
  let key c = (rank ~rows ~cols c, c.Cell.row, c.Cell.col) in
  List.stable_sort (fun a b -> compare_rank_key (key a) (key b)) !cells

let place ~bits =
  Weights.check_bits bits;
  let unit_multiplier = if bits mod 2 = 1 then 2 else 1 in
  let counts = Weights.scale (Weights.unit_counts ~bits) ~by:unit_multiplier in
  let total = Array.fold_left ( + ) 0 counts in
  let { Sizing.rows; cols; dummies } = Sizing.compute ~total_units:total in
  assert (dummies = 0 && rows = cols);
  let b = Builder.make ~bits ~rows ~cols ~unit_multiplier ~counts in
  let order = sorted_cells ~rows ~cols in
  (* Mirror cells share the same rank on even-by-even grids, so assigning
     mirrored pairs in rank order keeps each capacitor inside its bucket. *)
  let take_pairs k =
    while Builder.remaining b k > 1 do
      match Builder.first_free_in b order with
      | None -> invalid_arg "Chessboard.place: ran out of cells"
      | Some c -> Builder.assign_pair b c k
    done
  in
  for k = bits downto 2 do
    take_pairs k
  done;
  if unit_multiplier = 2 then begin
    take_pairs 1;
    take_pairs 0
  end
  else begin
    match Builder.first_free_in b order with
    | None -> invalid_arg "Chessboard.place: no cells left for C_0/C_1"
    | Some c -> Builder.assign_split_pair b c ~at:1 ~at_mirror:0
  end;
  Builder.finish b ~style_name
