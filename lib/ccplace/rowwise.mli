(** Row-wise interleaved common-centroid placement — the constructive proxy
    for the baseline [1] (Lin et al., TCAD'13).

    [1] is a stochastic-search placement whose code is not available; per
    DESIGN.md we substitute a deterministic placement with the qualitative
    profile the paper reports for it: dispersion and routing cost between
    spiral and chessboard.  Unit-cell pairs are dealt in a proportional
    interleave (largest-remainder) and filled boustrophedon from the bottom
    row, each assignment mirrored through the centroid. *)

open Ccgrid

val place : bits:int -> Placement.t
