open Ccgrid

let style_name = "rowwise"

type item =
  | Cap of int
  | Merged01        (* one cell for C_1, its mirror for C_0 *)
  | Dummy_pair

let place ~bits =
  Weights.check_bits bits;
  let counts = Weights.unit_counts ~bits in
  let total = Weights.total_units ~bits in
  let { Sizing.rows; cols; dummies } = Sizing.compute ~total_units:total in
  let b = Builder.make ~bits ~rows ~cols ~unit_multiplier:1 ~counts in
  if dummies mod 2 = 1 then Builder.reserve_center_dummy b;
  let even_dummies = dummies - (if dummies mod 2 = 1 then 1 else 0) in
  let items =
    List.concat
      [ List.init (bits - 1) (fun i ->
            let k = bits - i in
            (Cap k, counts.(k) / 2));
        [ (Merged01, 1) ];
        (if even_dummies > 0 then [ (Dummy_pair, even_dummies / 2) ] else []) ]
  in
  (* deal four pairs per turn: the [1] baseline clusters markedly more
     than the chessboard, giving it the moderate dispersion (and routing
     cost) profile the paper reports for it *)
  let sequence =
    let arr = Array.of_list items in
    let taken = Array.make (Array.length arr) 0 in
    let rec build acc =
      match Interleave.next arr taken with
      | None -> List.rev acc
      | Some i ->
        let tag, weight = arr.(i) in
        let take = Int.min 4 (weight - taken.(i)) in
        taken.(i) <- taken.(i) + take;
        let rec push acc n = if n = 0 then acc else push (tag :: acc) (n - 1) in
        build (push acc take)
    in
    ref (build [])
  in
  let boustrophedon =
    List.concat
      (List.init rows (fun row ->
           let cells = List.init cols (fun col -> Cell.make ~row ~col) in
           if row mod 2 = 0 then cells else List.rev cells))
  in
  let assign_next c =
    match !sequence with
    | [] -> invalid_arg "Rowwise.place: sequence exhausted with free cells left"
    | item :: rest ->
      sequence := rest;
      (match item with
       | Cap k -> Builder.assign_pair b c k
       | Merged01 -> Builder.assign_split_pair b c ~at:1 ~at_mirror:0
       | Dummy_pair -> Builder.assign_dummy_pair b c)
  in
  List.iter (fun c -> if Builder.is_free b c then assign_next c) boustrophedon;
  Builder.finish b ~style_name
