open Ccgrid

type stats = {
  swaps : int;
  passes : int;
  initial_energy : float;
  final_energy : float;
}

(* Internal state: flat cell arrays with signs, the pairwise correlation
   matrix, and the interaction field of every cell. *)
type state = {
  cells : Cell.t array;
  sign : float array;            (* +1 MSB, -1 other capacitor, 0 dummy *)
  cap_of : int array;            (* capacitor id or Placement.dummy *)
  rho : float array array;
  field : float array;           (* field.(a) = sum_{b<>a} sign.(b) rho.(a).(b) *)
}

let build_state tech (p : Placement.t) =
  let cells = ref [] in
  for row = p.Placement.rows - 1 downto 0 do
    for col = p.Placement.cols - 1 downto 0 do
      cells := Cell.make ~row ~col :: !cells
    done
  done;
  let cells = Array.of_list !cells in
  let n = Array.length cells in
  let positions = Array.map (Placement.position tech p) cells in
  let cap_of =
    Array.map
      (fun (c : Cell.t) -> p.Placement.assign.(c.Cell.row).(c.Cell.col))
      cells
  in
  let msb = p.Placement.bits in
  let sign =
    Array.map
      (fun id ->
         if id = Placement.dummy then 0. else if id = msb then 1. else -1.)
      cap_of
  in
  let rho =
    Array.init n (fun a ->
        Array.init n (fun b ->
            if a = b then 0.
            else Capmodel.Mismatch.correlation tech positions.(a) positions.(b)))
  in
  let field =
    Array.init n (fun a ->
        let acc = ref 0. in
        for b = 0 to n - 1 do
          acc := !acc +. (sign.(b) *. rho.(a).(b))
        done;
        !acc)
  in
  { cells; sign; cap_of; rho; field }

let total_energy st =
  let n = Array.length st.cells in
  let acc = ref 0. in
  for a = 0 to n - 1 do
    acc := !acc +. (st.sign.(a) *. st.field.(a))
  done;
  !acc /. 2.

(* Delta energy of flipping the signs of the (distinct) indices in [f]:
   dE = -2 (sum_{a in f} s_a field_a  -  sum_{a,b in f, a<b} 2 s_a s_b rho_ab / ... ).
   Within-f pair terms are counted in both fields but do not flip, so they
   must be backed out. *)
let delta_energy st f =
  let cross = ref 0. in
  List.iter (fun a -> cross := !cross +. (st.sign.(a) *. st.field.(a))) f;
  let internal = ref 0. in
  let rec pairs = function
    | a :: rest ->
      List.iter
        (fun b -> internal := !internal +. (st.sign.(a) *. st.sign.(b) *. st.rho.(a).(b)))
        rest;
      pairs rest
    | [] -> ()
  in
  pairs f;
  -2. *. (!cross -. (2. *. !internal))

let apply_flip st f =
  (* update fields first, using the pre-flip signs *)
  let n = Array.length st.cells in
  List.iter
    (fun a ->
       let s_old = st.sign.(a) in
       for b = 0 to n - 1 do
         if b <> a then st.field.(b) <- st.field.(b) -. (2. *. s_old *. st.rho.(a).(b))
       done)
    f;
  List.iter (fun a -> st.sign.(a) <- -.st.sign.(a)) f

let energy tech p = total_energy (build_state tech p)

let refine tech ?(max_passes = 3) ?(max_swaps = max_int) (p : Placement.t) =
  if max_passes < 0 then invalid_arg "Refine.refine: max_passes must be >= 0";
  if max_swaps < 0 then invalid_arg "Refine.refine: max_swaps must be >= 0";
  let st = build_state tech p in
  let n = Array.length st.cells in
  let mirror_index = Hashtbl.create n in
  Array.iteri (fun i c -> Hashtbl.replace mirror_index c i) st.cells;
  let mirror i =
    Hashtbl.find mirror_index
      (Cell.mirror ~rows:p.Placement.rows ~cols:p.Placement.cols st.cells.(i))
  in
  let initial_energy = total_energy st in
  let swaps = ref 0 and passes = ref 0 in
  let improved = ref true in
  while !improved && !passes < max_passes do
    improved := false;
    incr passes;
    for u = 0 to n - 1 do
      if st.sign.(u) > 0. then
        for v = 0 to n - 1 do
          if st.sign.(v) < 0. then begin
            let mu = mirror u and mv = mirror v in
            let f = [ u; v; mu; mv ] in
            let distinct =
              u <> v && u <> mu && u <> mv && v <> mu && v <> mv && mu <> mv
            in
            if distinct && !swaps < max_swaps
               && st.sign.(mu) > 0. && st.sign.(mv) < 0. then begin
              let de = delta_energy st f in
              if de < -1e-9 then begin
                apply_flip st f;
                (* exchange capacitor ownership pairwise *)
                let swap a b =
                  let t = st.cap_of.(a) in
                  st.cap_of.(a) <- st.cap_of.(b);
                  st.cap_of.(b) <- t
                in
                swap u v;
                swap mu mv;
                incr swaps;
                improved := true
              end
            end
          end
        done
    done
  done;
  let assign =
    Array.make_matrix p.Placement.rows p.Placement.cols Placement.dummy
  in
  Array.iteri
    (fun i (c : Cell.t) -> assign.(c.Cell.row).(c.Cell.col) <- st.cap_of.(i))
    st.cells;
  let refined =
    Placement.create ~bits:p.Placement.bits ~rows:p.Placement.rows
      ~cols:p.Placement.cols ~unit_multiplier:p.Placement.unit_multiplier
      ~counts:p.Placement.counts ~assign
      ~style_name:(p.Placement.style_name ^ "+refined")
  in
  Telemetry.Metrics.incr ~n:!swaps "place/refine_swaps_total";
  Telemetry.Metrics.incr ~n:!passes "place/refine_passes_total";
  ( refined,
    { swaps = !swaps; passes = !passes; initial_energy;
      final_energy = total_energy st } )
