(** Points in the layout plane.

    All coordinates in this code base are micrometres unless a binding's
    name says otherwise. *)

type t = {
  x : float;
  y : float;
}

val make : x:float -> y:float -> t
val origin : t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

(** [neg p] is the reflection of [p] through the origin — the common-centroid
    mirror operation when the centroid is taken as the origin. *)
val neg : t -> t

(** [midpoint a b] is the point halfway between [a] and [b]. *)
val midpoint : t -> t -> t

(** Euclidean distance, used by the correlation model (Eq. 5). *)
val distance : t -> t -> float

(** Manhattan (L1) distance, used for wirelength estimates. *)
val manhattan : t -> t -> float

(** [equal ?eps a b] compares coordinates within [eps] (default 1e-9). *)
val equal : ?eps:float -> t -> t -> bool

(** [centroid points] is the arithmetic mean of a non-empty list.
    Raises [Invalid_argument] on the empty list. *)
val centroid : t list -> t

val pp : Format.formatter -> t -> unit
