type t =
  | Horizontal
  | Vertical

let equal a b =
  match a, b with
  | Horizontal, Horizontal | Vertical, Vertical -> true
  | Horizontal, Vertical | Vertical, Horizontal -> false

let orthogonal = function
  | Horizontal -> Vertical
  | Vertical -> Horizontal

let of_delta ~dx ~dy =
  let eps = 1e-12 in
  let x_moves = Float.abs dx > eps and y_moves = Float.abs dy > eps in
  match x_moves, y_moves with
  | true, false -> Horizontal
  | false, true -> Vertical
  | true, true -> invalid_arg "Axis.of_delta: diagonal displacement"
  | false, false -> invalid_arg "Axis.of_delta: null displacement"

let to_string = function
  | Horizontal -> "horizontal"
  | Vertical -> "vertical"

let pp ppf a = Format.pp_print_string ppf (to_string a)
