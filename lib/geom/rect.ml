type t = {
  x : Interval.t;
  y : Interval.t;
}

let make (p : Point.t) (q : Point.t) =
  { x = Interval.make p.Point.x q.Point.x; y = Interval.make p.Point.y q.Point.y }

let of_intervals ~x ~y = { x; y }
let width r = Interval.length r.x
let height r = Interval.length r.y
let area r = width r *. height r

let center r =
  Point.make
    ~x:((r.x.Interval.lo +. r.x.Interval.hi) /. 2.)
    ~y:((r.y.Interval.lo +. r.y.Interval.hi) /. 2.)

let contains r (p : Point.t) =
  Interval.contains r.x p.Point.x && Interval.contains r.y p.Point.y

let hull a b = { x = Interval.hull a.x b.x; y = Interval.hull a.y b.y }

let bounding = function
  | [] -> invalid_arg "Rect.bounding: empty list"
  | p :: rest -> List.fold_left (fun r q -> hull r (make q q)) (make p p) rest

let pp ppf r = Format.fprintf ppf "%a x %a" Interval.pp r.x Interval.pp r.y
