(** Closed 1-D intervals.

    Channel-sharing decisions in the router (Algorithm 1, line 14) reduce to
    intersecting the horizontal spans of two capacitor groups; coupling
    capacitance between trunk wires reduces to the overlap length of their
    vertical extents. *)

type t = private {
  lo : float;
  hi : float;
}

(** [make a b] is the interval spanning [a] and [b] in either order. *)
val make : float -> float -> t

val length : t -> float
val contains : t -> float -> bool

(** [intersect a b] is the common sub-interval, or [None] when the intervals
    are disjoint.  Touching intervals intersect in a zero-length interval. *)
val intersect : t -> t -> t option

(** [overlap_length a b] is the length of the intersection, 0 if disjoint. *)
val overlap_length : t -> t -> float

(** [hull a b] is the smallest interval containing both. *)
val hull : t -> t -> t

(** [expand i by] grows both ends of [i] by [by] (shrinks for negative [by];
    the result may be improper if [by < -length i / 2]). *)
val expand : t -> float -> t

(** [overlaps ?eps a b] holds when the closed intervals touch or overlap,
    with [eps] slack at both ends ([eps] defaults to [0.]). *)
val overlaps : ?eps:float -> t -> t -> bool

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
