(** Routing axes.

    FinFET back-end-of-line metal stacks use reserved-direction routing:
    every metal layer carries wires along a single axis, and changing axis
    forces a layer change through a via.  This module is the common
    vocabulary for that constraint. *)

type t =
  | Horizontal  (** wires parallel to the x axis *)
  | Vertical    (** wires parallel to the y axis *)

val equal : t -> t -> bool

(** [orthogonal a] is the other axis. *)
val orthogonal : t -> t

(** [of_delta ~dx ~dy] classifies a displacement: a pure-x move is
    [Horizontal], a pure-y move is [Vertical].  Raises [Invalid_argument]
    on diagonal or null displacements, which have no routing axis. *)
val of_delta : dx:float -> dy:float -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
