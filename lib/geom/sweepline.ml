type seg = {
  sid : int;
  sx : Interval.t;
  sy : Interval.t;
}

let segment ~id ~ax ~ay ~bx ~by =
  { sid = id; sx = Interval.make ax bx; sy = Interval.make ay by }

(* Orientation of one shape under the tolerance: degenerate extents are
   points, one live extent is a segment, two is a filled rectangle (not a
   reserved-direction wire — rejected loudly). *)
type class_ =
  | Point
  | Horiz
  | Vert

let classify ~eps s =
  let wx = Interval.length s.sx > eps and wy = Interval.length s.sy > eps in
  match wx, wy with
  | false, false -> Point
  | true, false -> Horiz
  | false, true -> Vert
  | true, true ->
    invalid_arg
      (Format.asprintf "Sweepline.contacts: shape %d is not axis-aligned %a x %a"
         s.sid Interval.pp s.sx Interval.pp s.sy)

(* Pair collector: each unordered (sid, sid) pair once, self-pairs dropped. *)
let collector () =
  let seen = Hashtbl.create 256 in
  let pairs = ref [] in
  let emit a b =
    if a <> b then begin
      let key = if a < b then (a, b) else (b, a) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        pairs := key :: !pairs
      end
    end
  in
  (emit, pairs)

(* Collinear pass: shapes sharing one running coordinate (e.g. horizontal
   wires grouped by y), overlap-scanned along the other.  [cross s] is the
   fixed coordinate, [along s] the running interval.  O(g log g + k) per
   group: the open list only holds shapes still overlapping the scan
   front, so its length is bounded by the local overlap degree. *)
let collinear_pass ~eps ~cross ~along emit shapes =
  let sorted =
    List.sort
      (fun a b ->
         match Float.compare (cross a) (cross b) with
         | 0 -> Float.compare (along a).Interval.lo (along b).Interval.lo
         | c -> c)
      shapes
  in
  let scan group =
    let open_ = ref [] in
    List.iter
      (fun s ->
         let lo = (along s).Interval.lo in
         open_ :=
           List.filter
             (fun o ->
                if (along o).Interval.hi >= lo -. eps then begin
                  emit o.sid s.sid;
                  true
                end
                else false)
             !open_;
         open_ := s :: !open_)
      group
  in
  (* split into runs of equal fixed coordinate (within eps) *)
  let rec walk group anchor = function
    | [] -> scan (List.rev group)
    | s :: rest ->
      if group = [] || Float.abs (cross s -. anchor) <= eps then
        walk (s :: group) (if group = [] then cross s else anchor) rest
      else begin
        scan (List.rev group);
        walk [ s ] (cross s) rest
      end
  in
  walk [] 0. sorted

(* Crossing pass: horizontal shapes active over their x extent in a map
   keyed by (y, tag); each vertical shape queries the active band for
   y within its extent.  Insert events sort before queries before
   removals at equal x, so touching endpoints count as contact. *)
module Ymap = Map.Make (struct
    type t = float * int
    let compare (ya, ia) (yb, ib) =
      match Float.compare ya yb with
      | 0 -> Int.compare ia ib
      | c -> c
  end)

type event =
  | Insert of seg
  | Query of seg
  | Remove of seg

let event_rank = function
  | Insert _ -> 0
  | Query _ -> 1
  | Remove _ -> 2

let mid (i : Interval.t) = (i.Interval.lo +. i.Interval.hi) /. 2.

let crossing_pass ~eps emit horiz vert =
  let events =
    List.concat_map
      (fun h ->
         [ (h.sx.Interval.lo -. eps, Insert h); (h.sx.Interval.hi +. eps, Remove h) ])
      horiz
    @ List.map (fun v -> (mid v.sx, Query v)) vert
  in
  let sorted =
    List.sort
      (fun (xa, ea) (xb, eb) ->
         match Float.compare xa xb with
         | 0 -> Int.compare (event_rank ea) (event_rank eb)
         | c -> c)
      events
  in
  let active = ref Ymap.empty in
  List.iter
    (fun (_, ev) ->
       match ev with
       | Insert h -> active := Ymap.add (mid h.sy, h.sid) h !active
       | Remove h -> active := Ymap.remove (mid h.sy, h.sid) !active
       | Query v ->
         let lo = v.sy.Interval.lo -. eps and hi = v.sy.Interval.hi +. eps in
         let rec drain seq =
           match Seq.uncons seq with
           | Some (((y, _), h), rest) when y <= hi ->
             emit h.sid v.sid;
             drain rest
           | Some _ | None -> ()
         in
         drain (Ymap.to_seq_from (lo, min_int) !active))
    sorted

let contacts ?(eps = 1e-6) shapes =
  let horiz = ref [] and vert = ref [] and points = ref [] in
  List.iter
    (fun s ->
       match classify ~eps s with
       | Point -> points := s :: !points
       | Horiz -> horiz := s :: !horiz
       | Vert -> vert := s :: !vert)
    shapes;
  let emit, pairs = collector () in
  (* same-axis (and point-on-collinear-shape) overlaps *)
  collinear_pass ~eps ~cross:(fun s -> mid s.sy) ~along:(fun s -> s.sx) emit
    (!horiz @ !points);
  collinear_pass ~eps ~cross:(fun s -> mid s.sx) ~along:(fun s -> s.sy) emit
    (!vert @ !points);
  (* orthogonal crossings and T-junctions *)
  crossing_pass ~eps emit !horiz !vert;
  !pairs
