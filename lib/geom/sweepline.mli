(** Axis-aligned contact detection by plane sweep.

    The LVS extractor reduces same-layer connectivity to one question: which
    pairs of axis-aligned shapes (wire segments, via landings, plate pads
    collapsed to points) touch?  A naive all-pairs test is O(n²); this module
    answers it in O((n + k) log n) for n shapes and k contact pairs with
    three passes — two collinear overlap scans (horizontal–horizontal grouped
    by y, vertical–vertical grouped by x, points riding along in both) and
    one orthogonal-crossing sweep over x with the active horizontal set held
    in an ordered interval index keyed by y. *)

(** One shape: a closed axis-aligned box that is degenerate in at least one
    axis — a horizontal segment, a vertical segment, or a point.  [sid] is
    the caller's identifier, reported back in contact pairs. *)
type seg = private {
  sid : int;
  sx : Interval.t;
  sy : Interval.t;
}

(** [segment ~id ~ax ~ay ~bx ~by] is the shape spanning the two endpoints
    (in either order).  Endpoints equal in both axes yield a point. *)
val segment : id:int -> ax:float -> ay:float -> bx:float -> by:float -> seg

(** [contacts ?eps shapes] is every unordered pair of distinct shape ids
    whose closed extents come within [eps] of touching in both axes (for
    degenerate axis-aligned shapes, bounding-box contact is geometric
    contact).  Pairs are emitted once each, in no specified order.  [eps]
    defaults to [1e-6].

    @raise Invalid_argument on a shape extended (beyond [eps]) in both
    axes — layout shapes are reserved-direction segments, points, or vias. *)
val contacts : ?eps:float -> seg list -> (int * int) list
