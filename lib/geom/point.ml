type t = {
  x : float;
  y : float;
}

let make ~x ~y = { x; y }
let origin = { x = 0.; y = 0. }
let add a b = { x = a.x +. b.x; y = a.y +. b.y }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y }
let scale k p = { x = k *. p.x; y = k *. p.y }
let neg p = { x = -.p.x; y = -.p.y }
let midpoint a b = { x = (a.x +. b.x) /. 2.; y = (a.y +. b.y) /. 2. }
let distance a b = Float.hypot (a.x -. b.x) (a.y -. b.y)
let manhattan a b = Float.abs (a.x -. b.x) +. Float.abs (a.y -. b.y)

let equal ?(eps = 1e-9) a b =
  Float.abs (a.x -. b.x) <= eps && Float.abs (a.y -. b.y) <= eps

let centroid = function
  | [] -> invalid_arg "Point.centroid: empty list"
  | points ->
    let n = float_of_int (List.length points) in
    let sum = List.fold_left add origin points in
    scale (1. /. n) sum

let pp ppf p = Format.fprintf ppf "(%.4f, %.4f)" p.x p.y
